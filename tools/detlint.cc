// detlint v2 — determinism lint for the simulator tree.
//
// The house invariants (CLAUDE.md, docs/architecture.md §5) say: no
// wall-clock, no global RNG state, and every application-model access
// costed through MemoryHierarchy. v2 turns those conventions into
// machine-checked properties over a real token stream (tools/detlint_lexer)
// with per-file declaration tables and a per-function symbol-flow pass
// (tools/detlint_rules) — deliberately dependency-free (no libclang), and
// fast enough (<~2 host-seconds for the whole tree) to run on every push.
//
// Usage
//   detlint --root <repo>          scan src/ bench/ tests/ tools/
//   detlint <file-or-dir>...       scan explicit paths (fixture mode)
//   detlint --list-rules           print rule ids + summaries and exit
//
// Options
//   --strict                   also enforce allow-annotation hygiene: every
//                              `// detlint: allow(<rule>)` must name a known
//                              rule, carry rationale text on its comment,
//                              and actually suppress a finding.
//   --sarif=<path>             additionally write findings as SARIF 2.1.0
//                              (GitHub code-scanning annotations).
//   --baseline=<path>          suppress findings already present in a saved
//                              text report (matched by file+rule+excerpt,
//                              line numbers ignored so code may move).
//   --self-time-budget-ms=<n>  fail (exit 3) if the scan itself takes more
//                              than n host-milliseconds — the lint must stay
//                              cheap enough to run on every push.
//
// Escape hatch: a deliberate exception carries
//     // why this is sound. detlint: allow(<rule>)
// on the same line or the line directly above. Annotations are read from
// comment text only — the tag in a string literal suppresses nothing.
//
// Exit status: 0 = clean, 1 = findings, 2 = usage/IO error, 3 = over the
// self-time budget.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "tools/detlint_lexer.h"
#include "tools/detlint_rules.h"

namespace fs = std::filesystem;

namespace {

using detlint::AllowSite;
using detlint::DeclTable;
using detlint::Finding;
using detlint::RuleInfo;
using detlint::SourceFile;

// Host-side self-timing for the --self-time-budget-ms gate. Report-only
// plumbing in a host tool, mirroring the HostTimer shim convention in
// bench/common: it can never feed back into a simulated quantity.
std::int64_t NowHostMs() {
  // See above: the scan-budget gate needs real host time. detlint: allow(wall-clock)
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration_cast<std::chrono::milliseconds>(now).count();
}

struct Options {
  std::string root;
  std::vector<std::string> paths;
  bool strict = false;
  bool list_rules = false;
  std::string sarif_path;
  std::string baseline_path;
  std::int64_t self_time_budget_ms = -1;
};

bool ParseArgs(const std::vector<std::string>& args, Options* opt) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--list-rules") {
      opt->list_rules = true;
    } else if (a == "--strict") {
      opt->strict = true;
    } else if (a == "--root") {
      if (i + 1 >= args.size()) {
        return false;
      }
      opt->root = args[++i];
    } else if (a.rfind("--root=", 0) == 0) {
      opt->root = a.substr(7);
    } else if (a.rfind("--sarif=", 0) == 0) {
      opt->sarif_path = a.substr(8);
    } else if (a.rfind("--baseline=", 0) == 0) {
      opt->baseline_path = a.substr(11);
    } else if (a.rfind("--self-time-budget-ms=", 0) == 0) {
      try {
        opt->self_time_budget_ms = std::stoll(a.substr(22));
      } catch (...) {
        return false;
      }
    } else if (a.rfind("--", 0) == 0) {
      return false;
    } else {
      opt->paths.push_back(a);
    }
  }
  return true;
}

int Usage() {
  std::fprintf(stderr,
               "usage: detlint [--strict] [--sarif=<path>] [--baseline=<path>]\n"
               "               [--self-time-budget-ms=<n>]\n"
               "               (--root <repo-root> | <file-or-dir>...)\n"
               "       detlint --list-rules\n");
  return 2;
}

bool IsSourceFile(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cc" || ext == ".h";
}

void CollectTree(const fs::path& root, bool skip_fixtures, std::vector<fs::path>* files) {
  for (auto it = fs::recursive_directory_iterator(root); it != fs::recursive_directory_iterator();
       ++it) {
    if (skip_fixtures && it->is_directory() && it->path().filename() == "detlint_fixtures") {
      it.disable_recursion_pending();  // known-bad snippets are not tree code
      continue;
    }
    if (it->is_regular_file() && IsSourceFile(it->path())) {
      files->push_back(it->path());
    }
  }
}

std::string CanonicalKey(const fs::path& p) {
  std::error_code ec;
  const fs::path canon = fs::weakly_canonical(p, ec);
  return (ec ? p : canon).generic_string();
}

// Loads a saved text report; findings matching (file, rule, excerpt) are
// suppressed so a tree can adopt stricter rules incrementally. Line numbers
// are ignored on purpose: surrounding code may move.
std::set<std::string> LoadBaseline(const std::string& path, bool* ok) {
  std::set<std::string> keys;
  std::ifstream in(path);
  *ok = static_cast<bool>(in);
  for (std::string line; std::getline(in, line);) {
    const std::size_t lb = line.find(": [");
    if (lb == std::string::npos) {
      continue;
    }
    const std::size_t rb = line.find("] ", lb);
    if (rb == std::string::npos) {
      continue;
    }
    const std::size_t colon = line.rfind(':', lb - 1);
    const std::string file =
        colon == std::string::npos ? line.substr(0, lb) : line.substr(0, colon);
    const std::string rule = line.substr(lb + 3, rb - lb - 3);
    const std::string excerpt = line.substr(rb + 2);
    keys.insert(file + "\x1f" + rule + "\x1f" + excerpt);
  }
  return keys;
}

std::string BaselineKey(const Finding& f) {
  return f.file + "\x1f" + f.rule + "\x1f" + f.excerpt;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c) & 0xFF);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

bool WriteSarif(const std::string& path, const std::vector<Finding>& findings) {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out << "{\n"
      << "  \"$schema\": "
         "\"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/"
         "sarif-schema-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [\n"
      << "    {\n"
      << "      \"tool\": {\n"
      << "        \"driver\": {\n"
      << "          \"name\": \"detlint\",\n"
      << "          \"version\": \"2.0.0\",\n"
      << "          \"informationUri\": \"docs/architecture.md\",\n"
      << "          \"rules\": [\n";
  bool first = true;
  auto emit_rule = [&](const RuleInfo& r) {
    out << (first ? "" : ",\n") << "            {\"id\": \"" << r.id
        << "\", \"shortDescription\": {\"text\": \"" << JsonEscape(r.summary) << "\"}}";
    first = false;
  };
  for (const RuleInfo& r : detlint::Rules()) {
    emit_rule(r);
  }
  for (const RuleInfo& r : detlint::MetaRules()) {
    emit_rule(r);
  }
  out << "\n          ]\n        }\n      },\n      \"results\": [\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out << "        {\n"
        << "          \"ruleId\": \"" << f.rule << "\",\n"
        << "          \"level\": \"error\",\n"
        << "          \"message\": {\"text\": \"" << JsonEscape(f.excerpt) << "\"},\n"
        << "          \"locations\": [{\"physicalLocation\": {\"artifactLocation\": {\"uri\": \""
        << JsonEscape(f.file) << "\"}, \"region\": {\"startLine\": " << f.line << "}}}]\n"
        << "        }" << (i + 1 < findings.size() ? "," : "") << "\n";
  }
  out << "      ]\n    }\n  ]\n}\n";
  return static_cast<bool>(out);
}

class Scanner {
 public:
  explicit Scanner(const Options& opt) : opt_(opt) {}

  // Reads + lexes every file, builds declaration tables, resolves quoted
  // includes, then analyzes each file against its merged table.
  int Run() {
    std::vector<fs::path> paths;
    if (!GatherPaths(&paths)) {
      return 2;
    }
    std::sort(paths.begin(), paths.end());
    paths.erase(std::unique(paths.begin(), paths.end()), paths.end());

    files_.reserve(paths.size());
    for (const fs::path& p : paths) {
      std::ifstream in(p);
      if (!in) {
        std::fprintf(stderr, "detlint: cannot read %s\n", p.generic_string().c_str());
        continue;
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      SourceFile sf;
      detlint::Lex(buf.str(), p.generic_string(), &sf);
      by_key_.emplace(CanonicalKey(p), files_.size());
      dirs_.push_back(p.parent_path());
      files_.push_back(std::move(sf));
    }
    tables_.reserve(files_.size());
    for (const SourceFile& f : files_) {
      tables_.push_back(detlint::BuildDeclTable(f));
    }
    for (std::size_t i = 0; i < files_.size(); ++i) {
      AnalyzeOne(i);
    }
    return Finish();
  }

 private:
  bool GatherPaths(std::vector<fs::path>* paths) {
    if (!opt_.root.empty()) {
      if (!fs::is_directory(opt_.root)) {
        return false;
      }
      for (const char* dir : {"src", "bench", "tests", "tools"}) {
        const fs::path sub = fs::path(opt_.root) / dir;
        if (fs::is_directory(sub)) {
          CollectTree(sub, /*skip_fixtures=*/true, paths);
        }
      }
      return true;
    }
    if (opt_.paths.empty()) {
      return false;
    }
    for (const std::string& arg : opt_.paths) {
      const fs::path p(arg);
      if (fs::is_directory(p)) {
        // Explicitly-named directories are scanned as-is (fixture mode).
        CollectTree(p, /*skip_fixtures=*/false, paths);
      } else if (fs::is_regular_file(p)) {
        paths->push_back(p);
      } else {
        std::fprintf(stderr, "detlint: no such path: %s\n", arg.c_str());
        error_ = true;
      }
    }
    return !paths->empty() || !error_;
  }

  // Declaration tables merge across #include "..." edges (depth-limited
  // BFS) so members declared in a header are typed while scanning its .cc.
  DeclTable MergedTableFor(std::size_t index) {
    DeclTable merged = tables_[index];
    std::set<std::size_t> seen{index};
    std::vector<std::pair<std::size_t, int>> work{{index, 0}};
    constexpr int kMaxDepth = 4;
    while (!work.empty()) {
      const auto [cur, depth] = work.back();
      work.pop_back();
      if (depth >= kMaxDepth) {
        continue;
      }
      for (const std::string& inc : files_[cur].quoted_includes) {
        for (const fs::path& base :
             {opt_.root.empty() ? dirs_[cur] : fs::path(opt_.root), dirs_[cur]}) {
          const auto it = by_key_.find(CanonicalKey(base / inc));
          if (it == by_key_.end() || !seen.insert(it->second).second) {
            continue;
          }
          merged.Merge(tables_[it->second]);
          work.emplace_back(it->second, depth + 1);
          break;
        }
      }
    }
    return merged;
  }

  void AnalyzeOne(std::size_t index) {
    const SourceFile& f = files_[index];
    std::vector<Finding> raw = detlint::AnalyzeFile(f, MergedTableFor(index));
    std::vector<AllowSite> allows = detlint::CollectAllows(f);
    for (Finding& finding : raw) {
      // Same-line annotations take precedence over line-above ones so two
      // adjacent annotated lines each consume their own allow.
      AllowSite* match = nullptr;
      for (AllowSite& a : allows) {
        if (a.rule == finding.rule && a.line == finding.line) {
          match = &a;
          break;
        }
      }
      if (match == nullptr) {
        for (AllowSite& a : allows) {
          if (a.rule == finding.rule && a.line + 1 == finding.line) {
            match = &a;
            break;
          }
        }
      }
      if (match != nullptr) {
        match->used = true;
        continue;
      }
      if (!baseline_.empty() && baseline_.count(BaselineKey(finding)) != 0) {
        continue;
      }
      findings_.push_back(std::move(finding));
    }
    if (!opt_.strict) {
      return;
    }
    // Allow hygiene: annotations must name a real rule, say why, and pull
    // their weight — a stale allow is a hole the next violation walks
    // through unnoticed.
    for (const AllowSite& a : allows) {
      auto excerpt = [&](const std::string& detail) {
        return "allow(" + a.rule + "): " + detail;
      };
      if (!a.known_rule) {
        findings_.push_back({f.path, a.line, "allow-unknown-rule", excerpt("no such rule")});
        continue;
      }
      if (!a.has_why) {
        findings_.push_back(
            {f.path, a.line, "allow-missing-why", excerpt("annotation carries no rationale")});
      }
      if (!a.used) {
        findings_.push_back(
            {f.path, a.line, "allow-unused", excerpt("suppresses nothing — stale annotation")});
      }
    }
  }

  int Finish() {
    if (error_) {
      return 2;
    }
    std::sort(findings_.begin(), findings_.end(), [](const Finding& a, const Finding& b) {
      if (a.file != b.file) {
        return a.file < b.file;
      }
      return a.line != b.line ? a.line < b.line : a.rule < b.rule;
    });
    for (const Finding& f : findings_) {
      std::printf("%s:%u: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(), f.excerpt.c_str());
    }
    if (!opt_.sarif_path.empty() && !WriteSarif(opt_.sarif_path, findings_)) {
      std::fprintf(stderr, "detlint: cannot write SARIF to %s\n", opt_.sarif_path.c_str());
      return 2;
    }
    if (!findings_.empty()) {
      std::printf("detlint: %zu finding(s)\n", findings_.size());
      return 1;
    }
    return 0;
  }

 public:
  bool LoadBaselineFile() {
    if (opt_.baseline_path.empty()) {
      return true;
    }
    bool ok = false;
    baseline_ = LoadBaseline(opt_.baseline_path, &ok);
    if (!ok) {
      std::fprintf(stderr, "detlint: cannot read baseline %s\n", opt_.baseline_path.c_str());
    }
    return ok;
  }

  std::size_t file_count() const { return files_.size(); }

 private:
  const Options& opt_;
  std::vector<SourceFile> files_;
  std::vector<fs::path> dirs_;
  std::vector<DeclTable> tables_;
  std::map<std::string, std::size_t> by_key_;
  std::set<std::string> baseline_;
  std::vector<Finding> findings_;
  bool error_ = false;
};

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!ParseArgs(std::vector<std::string>(argv + 1, argv + argc), &opt)) {
    return Usage();
  }
  if (opt.list_rules) {
    for (const RuleInfo& r : detlint::Rules()) {
      std::printf("%-20s %s\n", r.id, r.summary);
    }
    for (const RuleInfo& r : detlint::MetaRules()) {
      std::printf("%-20s (strict) %s\n", r.id, r.summary);
    }
    return 0;
  }
  if (opt.root.empty() && opt.paths.empty()) {
    return Usage();
  }
  const std::int64_t t0 = NowHostMs();
  Scanner scanner(opt);
  if (!scanner.LoadBaselineFile()) {
    return 2;
  }
  const int rc = scanner.Run();
  const std::int64_t elapsed = NowHostMs() - t0;
  if (opt.self_time_budget_ms >= 0) {
    std::printf("detlint: scanned %zu file(s) in %lld ms (budget %lld ms)\n", scanner.file_count(),
                static_cast<long long>(elapsed), static_cast<long long>(opt.self_time_budget_ms));
    if (elapsed > opt.self_time_budget_ms && rc == 0) {
      std::fprintf(stderr, "detlint: self-time budget exceeded\n");
      return 3;
    }
  }
  return rc;
}
