// detlint — determinism lint for the simulator tree.
//
// The house invariants (CLAUDE.md) say: no wall-clock, no global RNG, and
// every simulated access costed through MemoryHierarchy. This tool turns
// those conventions into machine-checked properties. It is a file-scope
// regex/token analysis — deliberately dependency-free (no libclang), fast
// enough to run on every CI push, and conservative: string literals and
// comments are stripped before matching, so mentioning "rand()" in a doc
// comment is not a finding.
//
// Rules
//   wall-clock      host-time reads (std::chrono::{system,steady,high_
//                   resolution}_clock, time(), clock(), clock_gettime,
//                   gettimeofday) anywhere but the whitelisted host-timing
//                   shim in bench/common.{h,cc}.
//   global-rng      rand()/srand(), std::random_device, and mt19937 engines
//                   constructed without a seed, anywhere but the seeded-Rng
//                   shim src/sim/rng.h.
//   unordered-iter  range-for over a std::unordered_{map,set,multimap,
//                   multiset} variable declared in the same file: iteration
//                   order is unspecified, so any output or merge produced
//                   from it is not reproducible.
//   physmem-bypass  PhysicalMemory reads/writes in application-model code
//                   (src/nfv/, src/kvs/) with no MemoryHierarchy access
//                   nearby: the experiment silently under-costs.
//
// Escape hatch: a deliberate exception carries
//     // detlint: allow(<rule>)
// on the same line or the line directly above. Setup-time writes that
// intentionally bypass cycle accounting are the canonical use.
//
// Usage
//   detlint --root <repo>              scan src/ bench/ tests/ tools/
//   detlint <file-or-dir>...           scan explicit paths (fixture mode)
//   detlint --list-rules               print rule names and exit
//
// Exit status: 0 = clean, 1 = findings, 2 = usage/IO error.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <regex>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Finding {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string excerpt;
};

struct Rule {
  const char* name;
  std::regex pattern;
  // Substrings of the (generic, '/'-separated) path that exempt a file.
  std::vector<std::string> whitelist;
  // If non-empty, the rule only applies to paths containing one of these.
  std::vector<std::string> only_in;
};

// The one place host time may be read (report-only timing shim) and the one
// place a raw engine may live (the seeded Rng wrapper).
const std::vector<Rule>& Rules() {
  static const std::vector<Rule> rules = {
      {"wall-clock",
       std::regex(R"(std::chrono::(system_clock|steady_clock|high_resolution_clock))"
                  R"(|\bclock_gettime\b|\bgettimeofday\b|\btime\s*\(|\bclock\s*\()"),
       {"bench/common.h", "bench/common.cc"},
       {}},
      {"global-rng",
       std::regex(R"(\brand\s*\(|\bsrand\s*\(|\brandom_device\b)"
                  R"(|\bmt19937(_64)?\s+\w+\s*(;|\{\s*\}|=\s*\{\s*\}))"
                  R"(|\bmt19937(_64)?\s*(\(\s*\)|\{\s*\}))"),
       {"src/sim/rng.h"},
       {}},
      {"physmem-bypass",
       std::regex(R"(\bmemory_?\.\s*(Read|Write)(U8|U32|U64)?\s*\()"),
       {},
       {"/nfv/", "/kvs/"}},
  };
  return rules;
}

constexpr const char* kUnorderedIterRule = "unordered-iter";

// How far (in lines) a MemoryHierarchy access may sit from a PhysicalMemory
// access before the latter counts as bypassing cycle accounting.
constexpr std::size_t kHierarchyWindow = 6;

bool PathContains(const std::string& generic, const std::vector<std::string>& needles) {
  for (const std::string& n : needles) {
    if (generic.find(n) != std::string::npos) {
      return true;
    }
  }
  return false;
}

// Replaces comments and string/char literals with spaces, preserving line
// structure. `in_block` carries /* ... */ state across lines.
std::string StripCommentsAndStrings(const std::string& line, bool& in_block) {
  std::string out(line.size(), ' ');
  for (std::size_t i = 0; i < line.size(); ++i) {
    if (in_block) {
      if (line[i] == '*' && i + 1 < line.size() && line[i + 1] == '/') {
        in_block = false;
        ++i;
      }
      continue;
    }
    const char c = line[i];
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') {
      break;  // rest of line is a comment
    }
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
      in_block = true;
      ++i;
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      out[i] = quote;
      for (++i; i < line.size(); ++i) {
        if (line[i] == '\\') {
          ++i;
        } else if (line[i] == quote) {
          out[i] = quote;
          break;
        }
      }
      continue;
    }
    out[i] = c;
  }
  return out;
}

bool AllowedBy(const std::string& raw_line, const std::string& prev_raw_line,
               const std::string& rule) {
  const std::string tag = "detlint: allow(" + rule + ")";
  return raw_line.find(tag) != std::string::npos || prev_raw_line.find(tag) != std::string::npos;
}

std::string Trimmed(const std::string& s) {
  const std::size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) {
    return "";
  }
  const std::size_t e = s.find_last_not_of(" \t");
  std::string t = s.substr(b, e - b + 1);
  if (t.size() > 90) {
    t.resize(90);
  }
  return t;
}

void ScanFile(const fs::path& path, const std::string& generic, std::vector<Finding>& findings) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "detlint: cannot read %s\n", generic.c_str());
    return;
  }
  std::vector<std::string> raw;
  for (std::string line; std::getline(in, line);) {
    raw.push_back(std::move(line));
  }
  std::vector<std::string> code(raw.size());
  bool in_block = false;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    code[i] = StripCommentsAndStrings(raw[i], in_block);
  }

  // Pattern rules.
  for (const Rule& rule : Rules()) {
    if (!rule.only_in.empty() && !PathContains(generic, rule.only_in)) {
      continue;
    }
    if (PathContains(generic, rule.whitelist)) {
      continue;
    }
    const bool is_physmem = std::string(rule.name) == "physmem-bypass";
    static const std::regex hierarchy_use(R"(\bhierarchy_?\.\s*\w+\s*\()");
    for (std::size_t i = 0; i < code.size(); ++i) {
      if (!std::regex_search(code[i], rule.pattern)) {
        continue;
      }
      if (is_physmem) {
        // A PhysicalMemory access is fine when the surrounding lines charge
        // cycles through the hierarchy; only uncosted accesses are findings.
        bool costed = false;
        const std::size_t lo = i >= kHierarchyWindow ? i - kHierarchyWindow : 0;
        const std::size_t hi = std::min(code.size() - 1, i + kHierarchyWindow);
        for (std::size_t j = lo; j <= hi && !costed; ++j) {
          costed = std::regex_search(code[j], hierarchy_use);
        }
        if (costed) {
          continue;
        }
      }
      if (AllowedBy(raw[i], i > 0 ? raw[i - 1] : "", rule.name)) {
        continue;
      }
      findings.push_back({generic, i + 1, rule.name, Trimmed(raw[i])});
    }
  }

  // unordered-iter: two passes — collect unordered container variable names,
  // then flag range-for statements over them.
  static const std::regex unordered_decl(
      R"(\bunordered_(map|set|multimap|multiset)\s*<[^;{]*>\s+(\w+)\s*(;|=|\{))");
  static const std::regex range_for(R"(\bfor\s*\([^;:)]*:\s*(\w+)\s*\))");
  std::vector<std::string> unordered_names;
  for (const std::string& line : code) {
    for (std::sregex_iterator it(line.begin(), line.end(), unordered_decl), end; it != end; ++it) {
      unordered_names.push_back((*it)[2].str());
    }
  }
  if (!unordered_names.empty()) {
    for (std::size_t i = 0; i < code.size(); ++i) {
      std::smatch m;
      if (!std::regex_search(code[i], m, range_for)) {
        continue;
      }
      const std::string var = m[1].str();
      bool is_unordered = false;
      for (const std::string& name : unordered_names) {
        if (name == var) {
          is_unordered = true;
          break;
        }
      }
      if (!is_unordered || AllowedBy(raw[i], i > 0 ? raw[i - 1] : "", kUnorderedIterRule)) {
        continue;
      }
      findings.push_back({generic, i + 1, kUnorderedIterRule, Trimmed(raw[i])});
    }
  }
}

bool IsSourceFile(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cc" || ext == ".h";
}

void ScanTree(const fs::path& root, std::vector<Finding>& findings) {
  std::vector<fs::path> files;
  for (auto it = fs::recursive_directory_iterator(root); it != fs::recursive_directory_iterator();
       ++it) {
    if (it->is_directory() && it->path().filename() == "detlint_fixtures") {
      it.disable_recursion_pending();  // known-bad snippets are not tree code
      continue;
    }
    if (it->is_regular_file() && IsSourceFile(it->path())) {
      files.push_back(it->path());
    }
  }
  std::sort(files.begin(), files.end());
  for (const fs::path& f : files) {
    ScanFile(f, f.generic_string(), findings);
  }
}

int Usage() {
  std::fprintf(stderr,
               "usage: detlint --root <repo-root> | detlint <file-or-dir>... | "
               "detlint --list-rules\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) {
    return Usage();
  }
  std::vector<Finding> findings;
  if (args[0] == "--list-rules") {
    for (const Rule& rule : Rules()) {
      std::printf("%s\n", rule.name);
    }
    std::printf("%s\n", kUnorderedIterRule);
    return 0;
  }
  if (args[0] == "--root") {
    if (args.size() != 2 || !fs::is_directory(args[1])) {
      return Usage();
    }
    for (const char* dir : {"src", "bench", "tests", "tools"}) {
      const fs::path sub = fs::path(args[1]) / dir;
      if (fs::is_directory(sub)) {
        ScanTree(sub, findings);
      }
    }
  } else {
    for (const std::string& arg : args) {
      const fs::path p(arg);
      if (fs::is_directory(p)) {
        // Explicitly-named directories are scanned as-is (fixture mode): the
        // detlint_fixtures skip only applies when walking the real tree.
        std::vector<fs::path> files;
        for (const auto& entry : fs::recursive_directory_iterator(p)) {
          if (entry.is_regular_file() && IsSourceFile(entry.path())) {
            files.push_back(entry.path());
          }
        }
        std::sort(files.begin(), files.end());
        for (const fs::path& f : files) {
          ScanFile(f, f.generic_string(), findings);
        }
      } else if (fs::is_regular_file(p)) {
        ScanFile(p, p.generic_string(), findings);
      } else {
        std::fprintf(stderr, "detlint: no such path: %s\n", arg.c_str());
        return 2;
      }
    }
  }
  for (const Finding& f : findings) {
    std::printf("%s:%zu: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(), f.excerpt.c_str());
  }
  if (!findings.empty()) {
    std::printf("detlint: %zu finding(s)\n", findings.size());
    return 1;
  }
  return 0;
}
