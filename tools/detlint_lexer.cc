#include "tools/detlint_lexer.h"

#include <algorithm>
#include <cctype>

namespace detlint {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

// Multi-character operators, longest first so greedy matching is correct.
const char* const kOperators[] = {
    "<<=", ">>=", "...", "->*", "::", "->", "++", "--", "+=", "-=", "*=", "/=", "%=",
    "&=",  "|=",  "^=",  "==",  "!=", "<=", ">=", "&&", "||", "<<", ">>",
};

class Lexer {
 public:
  Lexer(const std::string& content, SourceFile* out) : src_(content), out_(out) {}

  void Run() {
    SplitRawLines();
    out_->comments.assign(out_->raw_lines.size() + 1, std::string());
    while (i_ < src_.size()) {
      const char c = src_[i_];
      if (c == '\n') {
        ++line_;
        ++i_;
        at_line_start_ = true;
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
        ++i_;
        continue;
      }
      if (at_line_start_ && c == '#') {
        LexPreprocessor();
        continue;
      }
      at_line_start_ = false;
      if (c == '/' && Peek(1) == '/') {
        LexLineComment();
        continue;
      }
      if (c == '/' && Peek(1) == '*') {
        LexBlockComment();
        continue;
      }
      if (IsIdentStart(c)) {
        LexIdentOrRawString();
        continue;
      }
      if (IsDigit(c) || (c == '.' && IsDigit(Peek(1)))) {
        LexNumber();
        continue;
      }
      if (c == '"') {
        LexString();
        continue;
      }
      if (c == '\'') {
        LexCharLit();
        continue;
      }
      LexPunct();
    }
  }

 private:
  char Peek(std::size_t ahead) const {
    return i_ + ahead < src_.size() ? src_[i_ + ahead] : '\0';
  }

  void SplitRawLines() {
    std::string cur;
    for (const char c : src_) {
      if (c == '\n') {
        out_->raw_lines.push_back(cur);
        cur.clear();
      } else if (c != '\r') {
        cur.push_back(c);
      }
    }
    if (!cur.empty()) {
      out_->raw_lines.push_back(cur);
    }
  }

  void AppendComment(std::uint32_t line, const std::string& text) {
    if (line == 0) {
      return;
    }
    if (out_->comments.size() <= line) {
      out_->comments.resize(line + 1);
    }
    std::string& slot = out_->comments[line];
    if (!slot.empty()) {
      slot.push_back(' ');
    }
    slot.append(text);
  }

  void Emit(TokKind kind, std::string text) {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.line = line_;
    t.brace_depth = brace_depth_;
    t.paren_depth = paren_depth_;
    if (kind == TokKind::kPunct) {
      if (t.text == "{") {
        ++brace_depth_;
      } else if (t.text == "}") {
        brace_depth_ = std::max(0, brace_depth_ - 1);
        t.brace_depth = brace_depth_;
      } else if (t.text == "(") {
        ++paren_depth_;
      } else if (t.text == ")") {
        paren_depth_ = std::max(0, paren_depth_ - 1);
        t.paren_depth = paren_depth_;
      }
    }
    out_->tokens.push_back(std::move(t));
  }

  void LexLineComment() {
    const std::size_t start = i_ + 2;
    std::size_t end = src_.find('\n', start);
    if (end == std::string::npos) {
      end = src_.size();
    }
    AppendComment(line_, src_.substr(start, end - start));
    i_ = end;  // leave '\n' for Run() to count
  }

  void LexBlockComment() {
    i_ += 2;
    std::string chunk;
    while (i_ < src_.size()) {
      if (src_[i_] == '*' && Peek(1) == '/') {
        i_ += 2;
        break;
      }
      if (src_[i_] == '\n') {
        AppendComment(line_, chunk);
        chunk.clear();
        ++line_;
      } else {
        chunk.push_back(src_[i_]);
      }
      ++i_;
    }
    AppendComment(line_, chunk);
  }

  // A preprocessor directive spans logical lines joined by trailing
  // backslashes. The body is not tokenized (macro bodies are not tree code
  // this lint can type), but #include "..." targets are recorded.
  void LexPreprocessor() {
    std::string directive;
    while (i_ < src_.size()) {
      const char c = src_[i_];
      if (c == '\n') {
        if (!directive.empty() && directive.back() == '\\') {
          directive.pop_back();
          directive.push_back(' ');
          ++line_;
          ++i_;
          continue;
        }
        break;  // '\n' handled by Run()
      }
      if (c == '/' && Peek(1) == '/') {
        LexLineComment();
        continue;
      }
      directive.push_back(c);
      ++i_;
    }
    const std::size_t inc = directive.find("include");
    if (inc != std::string::npos) {
      const std::size_t q0 = directive.find('"', inc);
      if (q0 != std::string::npos) {
        const std::size_t q1 = directive.find('"', q0 + 1);
        if (q1 != std::string::npos) {
          out_->quoted_includes.push_back(directive.substr(q0 + 1, q1 - q0 - 1));
        }
      }
    }
    at_line_start_ = false;
  }

  void LexIdentOrRawString() {
    std::size_t j = i_;
    while (j < src_.size() && IsIdentChar(src_[j])) {
      ++j;
    }
    std::string word = src_.substr(i_, j - i_);
    // Raw string literal: an encoding prefix ending in R directly followed
    // by a quote, e.g. R"(...)", u8R"x(...)x".
    if (j < src_.size() && src_[j] == '"' && !word.empty() && word.back() == 'R' &&
        (word == "R" || word == "u8R" || word == "uR" || word == "UR" || word == "LR")) {
      i_ = j;
      LexRawString();
      return;
    }
    i_ = j;
    Emit(TokKind::kIdent, std::move(word));
  }

  void LexRawString() {
    // At '"' of R"delim( ... )delim".
    std::size_t j = i_ + 1;
    std::string delim;
    while (j < src_.size() && src_[j] != '(' && src_[j] != '\n' && delim.size() < 16) {
      delim.push_back(src_[j]);
      ++j;
    }
    Emit(TokKind::kString, "\"raw\"");
    if (j >= src_.size() || src_[j] != '(') {
      i_ = j;  // malformed; resume
      return;
    }
    const std::string closer = ")" + delim + "\"";
    const std::size_t end = src_.find(closer, j + 1);
    if (end == std::string::npos) {
      line_ += static_cast<std::uint32_t>(std::count(src_.begin() + static_cast<std::ptrdiff_t>(j),
                                                     src_.end(), '\n'));
      i_ = src_.size();
      return;
    }
    line_ += static_cast<std::uint32_t>(std::count(src_.begin() + static_cast<std::ptrdiff_t>(j),
                                                   src_.begin() + static_cast<std::ptrdiff_t>(end),
                                                   '\n'));
    i_ = end + closer.size();
  }

  void LexNumber() {
    std::size_t j = i_;
    while (j < src_.size()) {
      const char c = src_[j];
      if (IsIdentChar(c) || c == '.') {
        ++j;
        continue;
      }
      if (c == '\'' && j > i_ && IsIdentChar(src_[j - 1]) && j + 1 < src_.size() &&
          IsIdentChar(src_[j + 1])) {
        ++j;  // digit separator
        continue;
      }
      if ((c == '+' || c == '-') && j > i_ &&
          (src_[j - 1] == 'e' || src_[j - 1] == 'E' || src_[j - 1] == 'p' || src_[j - 1] == 'P')) {
        ++j;  // exponent sign
        continue;
      }
      break;
    }
    Emit(TokKind::kNumber, src_.substr(i_, j - i_));
    i_ = j;
  }

  void LexString() {
    ++i_;
    while (i_ < src_.size()) {
      const char c = src_[i_];
      if (c == '\\') {
        i_ += 2;
        continue;
      }
      if (c == '"') {
        ++i_;
        break;
      }
      if (c == '\n') {
        break;  // unterminated; don't swallow the rest of the file
      }
      ++i_;
    }
    Emit(TokKind::kString, "\"\"");
  }

  void LexCharLit() {
    ++i_;
    while (i_ < src_.size()) {
      const char c = src_[i_];
      if (c == '\\') {
        i_ += 2;
        continue;
      }
      if (c == '\'') {
        ++i_;
        break;
      }
      if (c == '\n') {
        break;
      }
      ++i_;
    }
    Emit(TokKind::kCharLit, "''");
  }

  void LexPunct() {
    for (const char* op : kOperators) {
      const std::size_t len = std::string::traits_type::length(op);
      if (src_.compare(i_, len, op) == 0) {
        Emit(TokKind::kPunct, op);
        i_ += len;
        return;
      }
    }
    Emit(TokKind::kPunct, std::string(1, src_[i_]));
    ++i_;
  }

  const std::string& src_;
  SourceFile* out_;
  std::size_t i_ = 0;
  std::uint32_t line_ = 1;
  bool at_line_start_ = true;
  std::int32_t brace_depth_ = 0;
  std::int32_t paren_depth_ = 0;
};

}  // namespace

void Lex(const std::string& content, const std::string& path, SourceFile* out) {
  out->path = path;
  out->raw_lines.clear();
  out->comments.clear();
  out->tokens.clear();
  out->quoted_includes.clear();
  Lexer(content, out).Run();
}

std::size_t MatchingClose(const std::vector<Token>& tokens, std::size_t open) {
  if (open >= tokens.size() || tokens[open].kind != TokKind::kPunct) {
    return tokens.size();
  }
  const std::string& o = tokens[open].text;
  const char close = o == "(" ? ')' : o == "{" ? '}' : '\0';
  if (close == '\0') {
    return tokens.size();
  }
  int depth = 0;
  for (std::size_t i = open; i < tokens.size(); ++i) {
    if (tokens[i].kind != TokKind::kPunct || tokens[i].text.size() != 1) {
      continue;
    }
    const char c = tokens[i].text[0];
    if (c == o[0]) {
      ++depth;
    } else if (c == close) {
      --depth;
      if (depth == 0) {
        return i;
      }
    }
  }
  return tokens.size();
}

}  // namespace detlint
