// slice_inspect — command-line explorer for the Complex Addressing models.
//
// Usage:
//   slice_inspect machines
//       List the available machine models and their geometry.
//   slice_inspect addr <machine> <hex_physical_address>...
//       Print slice / LLC set / preferring cores for each address.
//   slice_inspect scan <machine> <hex_base> <bytes>
//       Histogram a physical range over slices (imbalance check).
//   slice_inspect matrix <machine>
//       Print the core x slice LLC-hit-latency matrix and the Table 4-style
//       primary/secondary classification.
//
// Machines: haswell | skylake | sandybridge
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "src/cache/hierarchy.h"
#include "src/hash/presets.h"
#include "src/sim/machine.h"
#include "src/slice/placement.h"

namespace cachedir {
namespace {

struct Model {
  MachineSpec spec;
  std::shared_ptr<const SliceHash> hash;
};

bool ResolveModel(const std::string& name, Model* out) {
  if (name == "haswell") {
    *out = Model{HaswellXeonE52667V3(), HaswellSliceHash()};
    return true;
  }
  if (name == "skylake") {
    *out = Model{SkylakeXeonGold6134(), SkylakeSliceHash()};
    return true;
  }
  if (name == "sandybridge") {
    *out = Model{SandyBridgeXeonQuad(), SandyBridgeSliceHash()};
    return true;
  }
  std::fprintf(stderr, "unknown machine '%s' (haswell|skylake|sandybridge)\n", name.c_str());
  return false;
}

int CmdMachines() {
  for (const char* name : {"haswell", "skylake", "sandybridge"}) {
    Model m;
    (void)ResolveModel(name, &m);
    std::printf("%-12s  %s\n", name, m.spec.name.c_str());
    std::printf("              %zu cores @ %.1f GHz, %zu slices x %zu kB (%zu-way), "
                "L2 %zu kB, %s LLC\n",
                m.spec.num_cores, m.spec.frequency.ghz(), m.spec.num_slices,
                m.spec.llc_slice.size_bytes / 1024, m.spec.llc_slice.ways,
                m.spec.l2.size_bytes / 1024,
                m.spec.inclusion == LlcInclusionPolicy::kInclusive ? "inclusive" : "victim");
  }
  return 0;
}

int CmdAddr(const Model& model, int argc, char** argv) {
  MemoryHierarchy hierarchy(model.spec, model.hash);
  SlicePlacement placement(hierarchy);
  std::printf("%-18s  %-6s  %-6s  %s\n", "Address", "Slice", "Set", "Closest cores");
  for (int i = 0; i < argc; ++i) {
    const PhysAddr addr = std::strtoull(argv[i], nullptr, 16);
    const SliceId slice = model.hash->SliceFor(addr);
    const std::size_t set = (addr >> kCacheLineBits) % model.spec.llc_slice.num_sets();
    std::string cores;
    Cycles best = ~Cycles{0};
    for (CoreId c = 0; c < model.spec.num_cores; ++c) {
      best = std::min(best, placement.Latency(c, slice));
    }
    for (CoreId c = 0; c < model.spec.num_cores; ++c) {
      if (placement.Latency(c, slice) == best) {
        cores += "C" + std::to_string(c) + " ";
      }
    }
    std::printf("0x%-16llx  %-6u  %-6zu  %s(%llu cycles)\n",
                static_cast<unsigned long long>(addr), slice, set, cores.c_str(),
                static_cast<unsigned long long>(best));
  }
  return 0;
}

int CmdScan(const Model& model, const char* base_str, const char* bytes_str) {
  const PhysAddr base = std::strtoull(base_str, nullptr, 16);
  const std::uint64_t bytes = std::strtoull(bytes_str, nullptr, 0);
  if (bytes == 0) {
    std::fprintf(stderr, "scan: byte count must be positive\n");
    return 1;
  }
  std::vector<std::uint64_t> counts(model.spec.num_slices, 0);
  std::uint64_t lines = 0;
  for (PhysAddr a = LineBase(base); a < base + bytes; a += kCacheLineSize) {
    ++counts[model.hash->SliceFor(a)];
    ++lines;
  }
  std::printf("scanned %llu lines from 0x%llx\n", static_cast<unsigned long long>(lines),
              static_cast<unsigned long long>(base));
  const double expect = static_cast<double>(lines) / model.spec.num_slices;
  for (SliceId s = 0; s < counts.size(); ++s) {
    std::printf("  slice %2u: %8llu lines (%+.2f%% vs uniform)\n", s,
                static_cast<unsigned long long>(counts[s]),
                100.0 * (static_cast<double>(counts[s]) - expect) / expect);
  }
  return 0;
}

int CmdMatrix(const Model& model) {
  MemoryHierarchy hierarchy(model.spec, model.hash);
  SlicePlacement placement(hierarchy);
  std::printf("LLC hit latency (cycles), cores x slices:\n      ");
  for (SliceId s = 0; s < model.spec.num_slices; ++s) {
    std::printf("S%-4u", s);
  }
  std::printf("\n");
  for (CoreId c = 0; c < model.spec.num_cores; ++c) {
    std::printf("C%-4u ", c);
    for (SliceId s = 0; s < model.spec.num_slices; ++s) {
      std::printf("%-5llu", static_cast<unsigned long long>(placement.Latency(c, s)));
    }
    std::printf("\n");
  }
  std::printf("\nPreferred slices per core:\n");
  for (CoreId c = 0; c < model.spec.num_cores; ++c) {
    std::printf("  C%u: primary", c);
    for (const SliceId s : placement.PrimarySlices(c)) {
      std::printf(" S%u", s);
    }
    std::printf(", secondary");
    for (const SliceId s : placement.SecondarySlices(c)) {
      std::printf(" S%u", s);
    }
    std::printf("\n");
  }
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: slice_inspect machines|addr|scan|matrix ...\n");
    return 1;
  }
  const std::string cmd = argv[1];
  if (cmd == "machines") {
    return CmdMachines();
  }
  if (argc < 3) {
    std::fprintf(stderr, "%s: missing machine argument\n", cmd.c_str());
    return 1;
  }
  Model model;
  if (!ResolveModel(argv[2], &model)) {
    return 1;
  }
  if (cmd == "addr" && argc >= 4) {
    return CmdAddr(model, argc - 3, argv + 3);
  }
  if (cmd == "scan" && argc == 5) {
    return CmdScan(model, argv[3], argv[4]);
  }
  if (cmd == "matrix") {
    return CmdMatrix(model);
  }
  std::fprintf(stderr, "bad arguments for '%s'\n", cmd.c_str());
  return 1;
}

}  // namespace
}  // namespace cachedir

int main(int argc, char** argv) { return cachedir::Main(argc, argv); }
