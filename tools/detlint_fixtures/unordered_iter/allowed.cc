// detlint fixture: order-insensitive reduction behind the escape hatch —
// zero findings.
#include <unordered_map>

int OrderInsensitiveSum() {
  std::unordered_map<int, int> m = {{1, 2}, {3, 4}};
  int sum = 0;
  // Commutative sum, any traversal order gives one answer. detlint: allow(unordered-iter)
  for (const auto& [k, v] : m) {
    sum += k + v;
  }
  return sum;
}
