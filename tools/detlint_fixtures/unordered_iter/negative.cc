// detlint fixture: point lookups into unordered containers and ordered
// traversal of *ordered* containers — zero findings.
#include <cstdio>
#include <map>
#include <unordered_map>
#include <vector>

int Lookups() {
  std::unordered_map<int, int> m = {{1, 2}};
  int sum = m.count(1) != 0 ? m.at(1) : 0;
  const auto it = m.find(1);
  if (it != m.end()) {
    sum += it->second;
  }
  std::map<int, int> ordered = {{1, 2}, {3, 4}};
  for (const auto& [k, v] : ordered) {
    sum += k + v;
  }
  std::vector<int> vec = {1, 2, 3};
  for (const int v : vec) {
    sum += v;
  }
  return sum;
}
