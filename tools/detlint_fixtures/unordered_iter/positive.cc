// detlint fixture: ordered traversal of unordered containers, including a
// member variable and algorithm forms (5 findings).
#include <algorithm>
#include <cstdio>
#include <iterator>
#include <unordered_map>
#include <unordered_set>

void PrintAll(const std::unordered_map<int, int>& ignored) {
  std::unordered_map<int, int> m = {{1, 2}, {3, 4}};
  for (const auto& [k, v] : m) {
    std::printf("%d=%d\n", k, v);
  }
  auto it = m.begin();
  (void)it;
  auto it2 = std::begin(m);
  (void)it2;
  std::ranges::for_each(m, [](const auto& kv) { std::printf("%d\n", kv.first); });
  (void)ignored;
}

class FlowCounter {
 public:
  int Total() const {
    int sum = 0;
    for (const auto& [flow, count] : counts_) {
      sum += count;
    }
    return sum;
  }

 private:
  std::unordered_map<int, int> counts_;
};
