// detlint fixture header: the container type lives here; the traversal that
// must be flagged lives in positive.cc. Zero findings in this file itself.
#ifndef DETLINT_FIXTURE_CROSS_HEADER_DECLS_H_
#define DETLINT_FIXTURE_CROSS_HEADER_DECLS_H_

#include <cstdint>
#include <unordered_map>

using FlowTable = std::unordered_map<std::uint32_t, std::uint64_t>;

struct FlowState {
  FlowTable flows_;
  std::uint64_t epoch = 0;
};

#endif  // DETLINT_FIXTURE_CROSS_HEADER_DECLS_H_
