// detlint fixture: iterates a container whose unordered type is only visible
// through the included header's alias (1 finding).
#include <cstdio>

#include "decls.h"

void DumpFlows(const FlowState& state) {
  for (const auto& [flow, packets] : state.flows_) {
    std::printf("%u: %lu\n", flow, static_cast<unsigned long>(packets));
  }
}
