// detlint fixture: a host-only corpus shuffle behind the escape hatch —
// zero findings.
#include <algorithm>
#include <random>
#include <vector>

void CorpusOrder(std::vector<int>& v, std::mt19937& gen) {
  // One-time fixture ordering on the host path only. detlint: allow(unseeded-stochastic)
  std::shuffle(v.begin(), v.end(), gen);
}
