// detlint fixture: explicitly parameterized distributions and member-named
// shuffles — zero findings.
#include <random>

struct Pool {
  void shuffle(int rounds);
};

double Configured(std::mt19937& gen) {
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::normal_distribution<double> gauss(0.0, 2.5);
  return unit(gen) + gauss(gen);
}

void MemberShuffle(Pool& pool) { pool.shuffle(3); }
