// detlint fixture: std::shuffle and default-constructed distributions
// (3 findings).
#include <algorithm>
#include <random>
#include <vector>

void ShuffleDeck(std::vector<int>& deck, std::mt19937& gen) {
  std::shuffle(deck.begin(), deck.end(), gen);
}

double DefaultDistributions(std::mt19937& gen) {
  std::uniform_real_distribution<double> unit;
  std::normal_distribution<float> gauss{};
  return unit(gen) + static_cast<double>(gauss(gen));
}
