// detlint fixture (engine path): the merge replays every staged line through
// the hierarchy before touching the backing store — zero findings.
#include <cstdint>

using PhysAddr = std::uint64_t;
using CoreId = int;
struct PhysicalMemory {
  std::uint64_t ReadU64(PhysAddr pa) const;
};
struct MemoryHierarchy {
  void Read(CoreId core, PhysAddr pa);
};

struct MergeReplayer {
  MemoryHierarchy& hierarchy_;
  PhysicalMemory& memory_;

  std::uint64_t ReplayStaged(CoreId core, PhysAddr pa) {
    hierarchy_.Read(core, pa);
    return memory_.ReadU64(pa);
  }
};
