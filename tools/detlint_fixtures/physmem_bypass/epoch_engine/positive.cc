// detlint fixture (engine path): a worker-local staging buffer drained
// straight into the backing store — the merge never charges the hierarchy,
// so the sharded run under-costs the serial engine (3 findings).
#include <cstdint>
#include <vector>

using PhysAddr = std::uint64_t;
struct PhysicalMemory {
  std::uint64_t ReadU64(PhysAddr pa) const;
  void WriteU64(PhysAddr pa, std::uint64_t v);
};
void CopyStagedLine(PhysicalMemory& memory, PhysAddr pa);

struct WorkerSlice {
  PhysicalMemory& memory_;
  std::vector<PhysAddr> staged_;

  std::uint64_t PeekStaged(PhysAddr pa) { return memory_.ReadU64(pa); }

  void DrainTo(PhysAddr dst) {
    memory_.WriteU64(dst, staged_.size());
    CopyStagedLine(memory_, dst);
  }
};
