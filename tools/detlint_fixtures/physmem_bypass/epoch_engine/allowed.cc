// detlint fixture (engine path): deliberate charge-free bookkeeping write
// behind the escape hatch — zero findings.
#include <cstdint>

using PhysAddr = std::uint64_t;
struct PhysicalMemory {
  void WriteU64(PhysAddr pa, std::uint64_t v);
};

struct JournalWriter {
  PhysicalMemory& memory_;

  void Record(PhysAddr pa, std::uint64_t before) {
    // Rollback journal entry: replay re-charges the real access, the journal
    // itself is host bookkeeping. detlint: allow(physmem-bypass)
    memory_.WriteU64(pa, before);
  }
};
