// detlint fixture (model path): deliberate control-plane bypass behind the
// escape hatch — zero findings.
#include <cstdint>

using PhysAddr = std::uint64_t;
struct PhysicalMemory {
  void WriteU64(PhysAddr pa, std::uint64_t v);
};

struct TablePopulator {
  PhysicalMemory& memory_;

  void Install(PhysAddr pa, std::uint64_t entry) {
    // Setup-phase population, datapath charges every lookup. detlint: allow(physmem-bypass)
    memory_.WriteU64(pa, entry);
  }
};
