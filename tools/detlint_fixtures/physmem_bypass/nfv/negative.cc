// detlint fixture (model path): every backing-store touch sits in a function
// that charges the same address through the hierarchy — zero findings.
#include <cstdint>

using PhysAddr = std::uint64_t;
using CoreId = int;
struct PhysicalMemory {
  std::uint64_t ReadU64(PhysAddr pa) const;
};
struct MemoryHierarchy {
  void Read(CoreId core, PhysAddr pa);
};

struct Reader {
  MemoryHierarchy& hierarchy_;
  PhysicalMemory& memory_;

  std::uint64_t CostedRead(CoreId core, PhysAddr pa) {
    hierarchy_.Read(core, pa);
    return memory_.ReadU64(pa);
  }
};
