// detlint fixture (model path): raw backing-store touches in functions that
// never charge the hierarchy (3 findings).
#include <cstdint>

using PhysAddr = std::uint64_t;
struct PhysicalMemory {
  std::uint64_t ReadU64(PhysAddr pa) const;
  void WriteU64(PhysAddr pa, std::uint64_t v);
};
void SwapMacAddresses(PhysicalMemory& memory, PhysAddr frame_pa);

struct Scrubber {
  PhysicalMemory& memory_;

  std::uint64_t PeekCounter(PhysAddr pa) { return memory_.ReadU64(pa); }

  void Touch(PhysAddr pa, std::uint64_t v) {
    memory_.WriteU64(pa, v);
    SwapMacAddresses(memory_, pa);
  }
};
