// detlint self-test fixture: the same violations as the bad_* files, each
// carrying the per-line escape hatch — this file must produce ZERO findings.
#include <chrono>
#include <random>
#include <unordered_map>

double WhitelistedTiming() {
  // detlint: allow(wall-clock)
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(now.time_since_epoch()).count();
}

unsigned DeliberateEntropy() {
  std::random_device rd;  // detlint: allow(global-rng)
  return rd();
}

int OrderInsensitiveSum() {
  std::unordered_map<int, int> m = {{1, 2}, {3, 4}};
  int sum = 0;
  // Summation is order-insensitive, a legitimate exception:
  // detlint: allow(unordered-iter)
  for (const auto& [k, v] : m) {
    sum += k + v;
  }
  return sum;
}
