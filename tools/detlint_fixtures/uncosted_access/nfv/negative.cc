// detlint fixture (model path): addresses flow into a gather batch that the
// hierarchy charges, so the raw reads are all costed — zero findings.
#include <cstdint>
#include <span>

using PhysAddr = std::uint64_t;
using CoreId = int;
struct PhysicalMemory {
  std::uint64_t ReadU64(PhysAddr pa) const;
};
struct AccessBatch {
  std::span<const PhysAddr> gather;
};
struct MemoryHierarchy {
  void ReadRange(CoreId core, const AccessBatch& batch);
};

struct Gather {
  MemoryHierarchy& hierarchy_;
  PhysicalMemory& memory_;

  std::uint64_t Sum(CoreId core, PhysAddr base) {
    PhysAddr lines[2];
    lines[0] = base;
    lines[1] = base + 64;
    AccessBatch batch;
    batch.gather = std::span<const PhysAddr>(lines, 2);
    hierarchy_.ReadRange(core, batch);
    return memory_.ReadU64(lines[0]) + memory_.ReadU64(lines[1]);
  }
};
