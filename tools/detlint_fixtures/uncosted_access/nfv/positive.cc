// detlint fixture (model path): the function charges the hierarchy, but two
// touches use addresses that derive from no charged symbol (2 findings).
#include <cstdint>

using PhysAddr = std::uint64_t;
using CoreId = int;
struct PhysicalMemory {
  std::uint64_t ReadU64(PhysAddr pa) const;
  void WriteU64(PhysAddr pa, std::uint64_t v);
};
struct MemoryHierarchy {
  void Read(CoreId core, PhysAddr pa);
};

struct Router {
  MemoryHierarchy& hierarchy_;
  PhysicalMemory& memory_;

  std::uint64_t Process(CoreId core, PhysAddr header_pa, PhysAddr side_pa) {
    hierarchy_.Read(core, header_pa);
    const std::uint64_t tag = memory_.ReadU64(header_pa);
    const PhysAddr stash = side_pa + 8;
    memory_.WriteU64(stash, tag);
    return memory_.ReadU64(side_pa);
  }
};
