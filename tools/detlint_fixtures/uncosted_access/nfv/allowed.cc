// detlint fixture (model path): a deliberately free shadow write behind the
// escape hatch — zero findings.
#include <cstdint>

using PhysAddr = std::uint64_t;
using CoreId = int;
struct PhysicalMemory {
  void WriteU64(PhysAddr pa, std::uint64_t v);
};
struct MemoryHierarchy {
  void Read(CoreId core, PhysAddr pa);
};

struct Mirror {
  MemoryHierarchy& hierarchy_;
  PhysicalMemory& memory_;

  void Record(CoreId core, PhysAddr main_pa, PhysAddr shadow_pa) {
    hierarchy_.Read(core, main_pa);
    // Debug-only mirror of the counter, intentionally free. detlint: allow(uncosted-access)
    memory_.WriteU64(shadow_pa, 1);
  }
};
