// detlint fixture (engine path): the commit charges the replayed line, but
// two touches use a worker-local scratch address that derives from no charged
// symbol (2 findings).
#include <cstdint>

using PhysAddr = std::uint64_t;
using CoreId = int;
struct PhysicalMemory {
  std::uint64_t ReadU64(PhysAddr pa) const;
  void WriteU64(PhysAddr pa, std::uint64_t v);
};
struct MemoryHierarchy {
  void Read(CoreId core, PhysAddr pa);
};

struct WorkerCommit {
  MemoryHierarchy& hierarchy_;
  PhysicalMemory& memory_;

  std::uint64_t Commit(CoreId core, PhysAddr line_pa, PhysAddr scratch_pa) {
    hierarchy_.Read(core, line_pa);
    const std::uint64_t value = memory_.ReadU64(line_pa);
    const PhysAddr slot = scratch_pa + 64;
    memory_.WriteU64(slot, value);
    return memory_.ReadU64(scratch_pa);
  }
};
