// detlint fixture (engine path): every worker-local address flows into the
// replay batch the hierarchy charges, so the raw reads are all costed — zero
// findings.
#include <cstdint>
#include <span>

using PhysAddr = std::uint64_t;
using CoreId = int;
struct PhysicalMemory {
  std::uint64_t ReadU64(PhysAddr pa) const;
};
struct ReplayBatch {
  std::span<const PhysAddr> lines;
};
struct MemoryHierarchy {
  void ReadRange(CoreId core, const ReplayBatch& batch);
};

struct WindowMerge {
  MemoryHierarchy& hierarchy_;
  PhysicalMemory& memory_;

  std::uint64_t ReplayWindow(CoreId core, PhysAddr base) {
    PhysAddr lines[2];
    lines[0] = base;
    lines[1] = base + 64;
    ReplayBatch batch;
    batch.lines = std::span<const PhysAddr>(lines, 2);
    hierarchy_.ReadRange(core, batch);
    return memory_.ReadU64(lines[0]) + memory_.ReadU64(lines[1]);
  }
};
