// detlint fixture (engine path): a deliberately free speculative-prediction
// stash behind the escape hatch — zero findings.
#include <cstdint>

using PhysAddr = std::uint64_t;
using CoreId = int;
struct PhysicalMemory {
  void WriteU64(PhysAddr pa, std::uint64_t v);
};
struct MemoryHierarchy {
  void Read(CoreId core, PhysAddr pa);
};

struct Predictor {
  MemoryHierarchy& hierarchy_;
  PhysicalMemory& memory_;

  void Observe(CoreId core, PhysAddr line_pa, PhysAddr stash_pa) {
    hierarchy_.Read(core, line_pa);
    // Prediction stash consulted before the merge; the merge re-charges the
    // real access if the guess was wrong. detlint: allow(uncosted-access)
    memory_.WriteU64(stash_pa, 1);
  }
};
