// detlint self-test fixture (application-model path): PhysicalMemory
// accesses with no MemoryHierarchy access nearby — the simulated cycles for
// these reads/writes are never charged, so the experiment under-costs.
#include <cstdint>

struct FakeMemory {
  std::uint32_t ReadU32(std::uint64_t) const { return 0; }
  void WriteU32(std::uint64_t, std::uint32_t) {}
};

struct FakeElement {
  FakeMemory memory_;

  std::uint32_t Process(std::uint64_t pa) {
    const std::uint32_t header = memory_.ReadU32(pa);
    memory_.WriteU32(pa, header + 1);
    return header;
  }
};
