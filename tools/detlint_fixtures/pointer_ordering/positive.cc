// detlint fixture: pointer-keyed ordered containers and an address-order
// sort (3 findings).
#include <algorithm>
#include <map>
#include <set>
#include <vector>

struct Mbuf;

std::map<Mbuf*, int> refcounts;
std::set<const Mbuf*> seen;

void SortByAddress(std::vector<Mbuf*>& bufs) { std::sort(bufs.begin(), bufs.end()); }
