// detlint fixture: value-keyed containers and comparator-driven sorts —
// zero findings.
#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

struct Mbuf {
  std::uint64_t stable_id = 0;
};
struct ByStableId {
  bool operator()(const Mbuf* a, const Mbuf* b) const { return a->stable_id < b->stable_id; }
};

std::map<std::uint64_t, int> by_id;

void SortById(std::vector<Mbuf*>& bufs) {
  std::sort(bufs.begin(), bufs.end(), ByStableId{});
}

void SortValues(std::vector<int>& v) { std::sort(v.begin(), v.end()); }
