// detlint fixture: identity-only pointer map behind the escape hatch —
// zero findings.
#include <map>

struct Mbuf;

// Keyed by pointer for identity lookups only, never iterated. detlint: allow(pointer-ordering)
std::map<Mbuf*, int> identity_map;
