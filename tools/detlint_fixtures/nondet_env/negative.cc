// detlint fixture: configuration from explicit inputs and member calls that
// shadow env names — zero findings.
#include <string>

struct Config {
  int threads = 1;
};
struct Env {
  std::string getenv(const std::string& key) const;
};

int ThreadsFromConfig(const Config& cfg) { return cfg.threads; }
std::string Home(const Env& env) { return env.getenv("HOME"); }
