// detlint fixture: a harness knob read behind the escape hatch — zero
// findings.
#include <cstdlib>

int WorkerOverride() {
  // Harness sizing knob, never reaches a simulated quantity. detlint: allow(nondet-env)
  const char* v = std::getenv("CACHEDIR_BENCH_THREADS");
  return v != nullptr ? std::atoi(v) : 0;
}
