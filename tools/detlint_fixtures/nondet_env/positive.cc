// detlint fixture: host-environment reads (4 findings).
#include <cstdlib>
#include <sched.h>
#include <thread>

unsigned HostShape() {
  const char* path = std::getenv("PATH");
  const auto tid = std::this_thread::get_id();
  const int cpu = sched_getcpu();
  const unsigned n = std::thread::hardware_concurrency();
  (void)path;
  (void)tid;
  return n + static_cast<unsigned>(cpu);
}
