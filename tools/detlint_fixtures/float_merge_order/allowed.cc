// detlint fixture: a documented fixed-order merge behind the escape hatch —
// zero findings.
#include <cstddef>

void ParallelFor(std::size_t lo, std::size_t hi, void (*fn)(std::size_t));
double Kernel(std::size_t i);

double Documented(std::size_t n) {
  double total = 0.0;
  ParallelFor(0, n, [&](std::size_t i) {
    // Harness joins workers in index order, so the sum is fixed. detlint: allow(float-merge-order)
    total += Kernel(i);
  });
  return total;
}
