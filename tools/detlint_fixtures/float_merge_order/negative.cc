// detlint fixture: per-iteration FP locals, integer merges, and serial FP
// reduction outside the parallel region — zero findings.
#include <cstddef>
#include <cstdint>
#include <vector>

void ParallelFor(std::size_t lo, std::size_t hi, void (*fn)(std::size_t));
double Weight(std::size_t i);

double LocalAccumulate(std::size_t n) {
  std::vector<double> per(n, 0.0);
  ParallelFor(0, n, [&](std::size_t i) {
    double local = 0.0;
    local += Weight(i);
    per[i] = local;
  });
  double total = 0.0;
  for (const double v : per) {
    total += v;
  }
  return total;
}

std::uint64_t IntMerge(std::size_t n) {
  std::uint64_t hits = 0;
  ParallelFor(0, n, [&](std::size_t i) { hits += i & 1; });
  return hits;
}
