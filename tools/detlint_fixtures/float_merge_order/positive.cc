// detlint fixture: FP accumulation into captured variables inside parallel
// merge lambdas (2 findings).
#include <cstddef>

void ParallelFor(std::size_t lo, std::size_t hi, void (*fn)(std::size_t));
void RunRepetitions(int reps, void (*fn)(int));
double Sample(int rep);

double MergeSum(std::size_t n) {
  double total = 0.0;
  ParallelFor(0, n, [&](std::size_t i) { total += static_cast<double>(i) * 0.5; });
  return total;
}

double RepMean(int reps) {
  double mean = 0.0;
  RunRepetitions(reps, [&](int rep) { mean += Sample(rep); });
  return mean;
}
