// detlint self-test fixture: every line below must trip the wall-clock rule.
#include <chrono>
#include <ctime>

double HostSecondsSinceEpoch() {
  const auto now = std::chrono::system_clock::now();
  return std::chrono::duration<double>(now.time_since_epoch()).count();
}

long MonotonicNanos() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return ts.tv_nsec;
}

long UnixSeconds() { return time(nullptr); }
