// detlint self-test fixture: range-for over unordered containers declared in
// this file — iteration order is unspecified, so any output built from it is
// not reproducible.
#include <cstdio>
#include <string>
#include <unordered_map>
#include <unordered_set>

void DumpCounters() {
  std::unordered_map<std::string, int> counters = {{"hits", 1}, {"misses", 2}};
  std::unordered_set<int> seen = {1, 2, 3};
  for (const auto& [name, value] : counters) {
    std::printf("%s=%d\n", name.c_str(), value);
  }
  int sum = 0;
  for (const int v : seen) {
    sum += v;
  }
  std::printf("%d\n", sum);
}
