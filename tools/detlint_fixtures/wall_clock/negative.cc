// detlint fixture: simulated time and member calls that merely *look* like
// clock reads — zero findings.
#include <cstdint>

struct SimClock {
  std::uint64_t cycles = 0;
  std::uint64_t time(std::uint64_t scale) const { return cycles * scale; }
};

std::uint64_t SimSeconds(const SimClock& sim, std::uint64_t clock_hz) {
  const std::uint64_t clock_speed = clock_hz;
  return sim.time(1) / clock_speed;
}
