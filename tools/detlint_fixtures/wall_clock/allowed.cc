// detlint fixture: the violation carries the escape hatch — zero findings.
#include <chrono>

double SelfTimingShim() {
  // Host-side tool self-timing, never a simulated input. detlint: allow(wall-clock)
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(now.time_since_epoch()).count();
}
