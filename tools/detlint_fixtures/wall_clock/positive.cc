// detlint fixture: every line below must trip wall-clock (4 findings).
#include <chrono>
#include <ctime>

double HostSeconds() {
  const auto a = std::chrono::steady_clock::now();
  const auto b = std::chrono::system_clock::now();
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  const auto stamp = time(nullptr);
  return std::chrono::duration<double>(b - a).count() + static_cast<double>(stamp + ts.tv_sec);
}
