// detlint fixture: deliberate entropy behind the escape hatch — zero findings.
#include <random>

unsigned DeliberateEntropy() {
  // Seeds the one-time corpus generator, not a simulation. detlint: allow(global-rng)
  std::random_device rd;
  return rd();
}
