// detlint fixture: global or unseeded randomness (7 findings).
#include <cstdlib>
#include <random>

int GlobalRand() {
  std::srand(42);
  return std::rand();
}

unsigned HardwareEntropy() {
  std::random_device rd;
  return rd();
}

unsigned UnseededPlain() {
  std::mt19937 gen;
  return gen();
}

unsigned UnseededBraced() {
  std::mt19937_64 gen{};
  return static_cast<unsigned>(gen());
}

unsigned UnseededCopyInit() {
  std::default_random_engine gen = {};
  return static_cast<unsigned>(gen());
}

unsigned UnseededTemporary() { return static_cast<unsigned>(std::minstd_rand()()); }
