// detlint fixture: explicitly seeded engines — zero findings.
#include <cstdint>
#include <random>

std::uint64_t Seeded(std::uint64_t seed) {
  std::mt19937_64 gen(seed);
  return gen();
}

std::uint64_t SeededBraced(std::uint64_t seed) {
  std::mt19937 gen{static_cast<std::uint32_t>(seed)};
  return gen();
}

std::uint64_t PassedIn(std::mt19937_64& gen) { return gen(); }
