// detlint strict fixture: the annotation names a rule that does not exist —
// clean normally, one allow-unknown-rule under --strict.
int Fine() {
  // Historical tag from a fork of this tool. detlint: allow(totally-made-up)
  return 7;
}
