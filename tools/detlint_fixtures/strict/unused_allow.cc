// detlint strict fixture: the annotation outlived the code it excused —
// clean normally, one allow-unused under --strict.
int AlsoFine() {
  // Left behind after a refactor removed the clock read. detlint: allow(wall-clock)
  return 9;
}
