// detlint strict fixture: the allow suppresses its finding but carries no
// rationale — clean normally, one allow-missing-why under --strict.
#include <random>

unsigned Entropy() {
  std::random_device rd;  // detlint: allow(global-rng)
  return rd();
}
