// detlint self-test fixture: every construct below must trip the global-rng
// rule — process-global or nondeterministically-seeded randomness.
#include <cstdlib>
#include <random>

int GlobalRand() {
  srand(42);
  return rand();
}

unsigned HardwareEntropy() {
  std::random_device rd;
  return rd();
}

unsigned UnseededEngine() {
  std::mt19937 gen;
  return gen();
}

unsigned UnseededEngine64() {
  std::mt19937_64 gen{};
  return static_cast<unsigned>(gen());
}
