#include "tools/detlint_rules.h"

#include <algorithm>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace detlint {
namespace {

// ---- rule registry ----------------------------------------------------------

const std::vector<RuleInfo> kRules = {
    {"wall-clock",
     "host time read outside the HostTimer shim (bench/common) — simulated results must never "
     "depend on the host clock"},
    {"global-rng",
     "rand()/srand(), std::random_device, or an engine constructed without a seed outside "
     "src/sim/rng.h"},
    {"unordered-iter",
     "ordered traversal (range-for, begin(), accumulate/copy) of a std::unordered_* container — "
     "iteration order is unspecified"},
    {"physmem-bypass",
     "PhysicalMemory touch in application-model code whose enclosing function never charges "
     "cycles through MemoryHierarchy"},
    {"uncosted-access",
     "PhysicalMemory touch whose address derives from no symbol the enclosing function charges "
     "through MemoryHierarchy — the access is silently uncosted"},
    {"pointer-ordering",
     "pointer-keyed std::map/std::set or std::sort over raw pointers — address order varies "
     "run to run"},
    {"float-merge-order",
     "floating-point compound accumulation into a captured variable inside a ParallelFor/"
     "RunRepetitions argument — merge order must be fixed and documented"},
    {"unseeded-stochastic",
     "std::shuffle or a default-constructed distribution outside src/sim/rng.h — every "
     "stochastic component takes an explicit seed"},
    {"nondet-env",
     "host-environment read (getenv, thread ids, sched_getcpu, hardware_concurrency) outside "
     "bench/common — nondeterministic input to a deterministic tree"},
};

const std::vector<RuleInfo> kMetaRules = {
    {"allow-unknown-rule", "detlint: allow(...) names a rule this detlint does not know"},
    {"allow-missing-why", "detlint: allow(...) carries no rationale text on its comment"},
    {"allow-unused", "detlint: allow(...) suppresses nothing — stale annotation"},
};

// Per-rule path scoping, substring-matched against the generic path.
struct Scope {
  std::vector<std::string> whitelist;  // exempt paths
  std::vector<std::string> only_in;    // if non-empty, rule applies only here
};

const Scope& ScopeFor(const std::string& rule) {
  static const std::map<std::string, Scope> scopes = {
      {"wall-clock", {{"bench/common.h", "bench/common.cc"}, {}}},
      {"global-rng", {{"src/sim/rng.h"}, {}}},
      {"unseeded-stochastic", {{"src/sim/rng.h"}, {}}},
      // host_parallel holds the promoted BenchThreadCount (hardware_concurrency
      // + CACHEDIR_BENCH_THREADS), the same carve-out bench/common had before
      // the parallel machinery moved into src/sim.
      {"nondet-env",
       {{"bench/common.h", "bench/common.cc", "src/sim/host_parallel.h",
         "src/sim/host_parallel.cc"},
        {}}},
      // The epoch engine's worker/merge path is model code too: worker-local
      // staging buffers must replay their charges through MemoryHierarchy, or
      // the sharded run silently under-costs relative to the serial engine.
      {"physmem-bypass", {{}, {"/nfv/", "/kvs/", "epoch_engine"}}},
      {"uncosted-access", {{}, {"/nfv/", "/kvs/", "epoch_engine"}}},
  };
  static const Scope everywhere;
  const auto it = scopes.find(rule);
  return it == scopes.end() ? everywhere : it->second;
}

bool PathContains(const std::string& path, const std::vector<std::string>& needles) {
  return std::any_of(needles.begin(), needles.end(), [&](const std::string& n) {
    return path.find(n) != std::string::npos;
  });
}

bool RuleAppliesTo(const std::string& rule, const std::string& path) {
  const Scope& s = ScopeFor(rule);
  if (!s.only_in.empty() && !PathContains(path, s.only_in)) {
    return false;
  }
  return !PathContains(path, s.whitelist);
}

// ---- small token utilities --------------------------------------------------

const std::set<std::string> kUnorderedTypes = {"unordered_map", "unordered_set",
                                               "unordered_multimap", "unordered_multiset"};
const std::set<std::string> kOrderedAssocTypes = {"map", "set", "multimap", "multiset"};
const std::set<std::string> kEngines = {"mt19937",      "mt19937_64",   "default_random_engine",
                                        "minstd_rand",  "minstd_rand0", "ranlux24",
                                        "ranlux48",     "knuth_b"};
const std::set<std::string> kClockNames = {"system_clock", "steady_clock",
                                           "high_resolution_clock"};
const std::set<std::string> kDistributions = {
    "uniform_int_distribution",  "uniform_real_distribution", "normal_distribution",
    "lognormal_distribution",    "exponential_distribution",  "poisson_distribution",
    "bernoulli_distribution",    "geometric_distribution",    "binomial_distribution",
    "discrete_distribution",     "cauchy_distribution",       "chi_squared_distribution",
    "student_t_distribution",    "gamma_distribution",        "weibull_distribution",
    "extreme_value_distribution"};
const std::set<std::string> kIterAlgorithms = {"accumulate", "copy",      "copy_if",
                                               "for_each",   "transform", "reduce"};
const std::set<std::string> kDeclAnnotations = {"const", "noexcept", "override", "final",
                                                "mutable"};

bool IsIdent(const Token& t) { return t.kind == TokKind::kIdent; }
bool IsPunct(const Token& t, const char* s) { return t.kind == TokKind::kPunct && t.text == s; }
bool IsMemberOp(const Token& t) {
  return t.kind == TokKind::kPunct && (t.text == "." || t.text == "->");
}

// Index just past a balanced template argument list whose "<" is at `open`;
// 0 on anything that does not look like one (comparison, unbalanced).
std::size_t SkipAngles(const std::vector<Token>& toks, std::size_t open) {
  int depth = 0;
  const std::size_t limit = std::min(toks.size(), open + 400);
  for (std::size_t i = open; i < limit; ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kPunct) {
      continue;
    }
    if (t.text == "<") {
      ++depth;
    } else if (t.text == ">") {
      if (--depth == 0) {
        return i + 1;
      }
    } else if (t.text == ">>") {
      depth -= 2;
      if (depth <= 0) {
        return i + 1;
      }
    } else if (t.text == ";" || t.text == "{" || t.text == ")") {
      return 0;  // expression context, not a template argument list
    }
  }
  return 0;
}

// Matching "[" for the "]" at `close`, searching backward.
std::size_t MatchingOpenBracket(const std::vector<Token>& toks, std::size_t close) {
  int depth = 0;
  for (std::size_t i = close + 1; i-- > 0;) {
    if (IsPunct(toks[i], "]")) {
      ++depth;
    } else if (IsPunct(toks[i], "[")) {
      if (--depth == 0) {
        return i;
      }
    }
  }
  return 0;
}

// ---- declaration table ------------------------------------------------------

void RecordDecl(DeclTable* table, const std::string& name, DeclKind kind, std::uint32_t line) {
  table->vars[name].push_back({kind, line});
}

// After a container type's closing ">", skips declarator decoration and
// returns the declared name if the next tokens look like a variable,
// member, or parameter declaration (not a function returning the type).
std::string DeclaratorName(const std::vector<Token>& toks, std::size_t j) {
  while (j < toks.size() &&
         (IsPunct(toks[j], "&") || IsPunct(toks[j], "*") ||
          (IsIdent(toks[j]) && toks[j].text == "const"))) {
    ++j;
  }
  if (j + 1 >= toks.size() || !IsIdent(toks[j])) {
    return "";
  }
  const std::string& next = toks[j + 1].text;
  if (toks[j + 1].kind == TokKind::kPunct &&
      (next == ";" || next == "=" || next == "{" || next == "," || next == ")" || next == "[")) {
    return toks[j].text;
  }
  return "";
}

bool AngleArgsEndInPointer(const std::vector<Token>& toks, std::size_t open) {
  // Whether the *last token of the first top-level template argument* is "*".
  int depth = 0;
  std::size_t last = 0;
  const std::size_t limit = std::min(toks.size(), open + 400);
  for (std::size_t i = open; i < limit; ++i) {
    const Token& t = toks[i];
    if (t.kind == TokKind::kPunct) {
      if (t.text == "<") {
        ++depth;
        continue;
      }
      if (t.text == ">" || t.text == ">>") {
        depth -= t.text == ">>" ? 2 : 1;
        if (depth <= 0) {
          break;
        }
        continue;
      }
      if (t.text == "," && depth == 1) {
        break;
      }
    }
    last = i;
  }
  return last != 0 && IsPunct(toks[last], "*");
}

}  // namespace

const std::vector<RuleInfo>& Rules() { return kRules; }
const std::vector<RuleInfo>& MetaRules() { return kMetaRules; }

bool IsKnownRule(const std::string& id) {
  return std::any_of(kRules.begin(), kRules.end(),
                     [&](const RuleInfo& r) { return id == r.id; });
}

void DeclTable::Merge(const DeclTable& other) {
  for (const auto& [name, entries] : other.vars) {
    auto& dst = vars[name];
    dst.insert(dst.end(), entries.begin(), entries.end());
  }
  for (const auto& [name, kind] : other.aliases) {
    aliases.emplace(name, kind);
  }
}

bool DeclTable::Has(const std::string& name, DeclKind kind) const {
  const auto it = vars.find(name);
  if (it == vars.end()) {
    return false;
  }
  return std::any_of(it->second.begin(), it->second.end(),
                     [&](const DeclEntry& e) { return e.kind == kind; });
}

DeclTable BuildDeclTable(const SourceFile& file) {
  DeclTable table;
  const std::vector<Token>& toks = file.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (!IsIdent(t)) {
      continue;
    }
    // `using Alias = std::unordered_map<...>;` (and vector<T*> aliases).
    if (t.text == "using" && i + 2 < toks.size() && IsIdent(toks[i + 1]) &&
        IsPunct(toks[i + 2], "=")) {
      for (std::size_t j = i + 3; j < toks.size() && !IsPunct(toks[j], ";"); ++j) {
        if (!IsIdent(toks[j])) {
          continue;
        }
        if (kUnorderedTypes.count(toks[j].text) != 0) {
          table.aliases.emplace(toks[i + 1].text, DeclKind::kUnordered);
          break;
        }
        if (toks[j].text == "vector" && j + 1 < toks.size() && IsPunct(toks[j + 1], "<") &&
            AngleArgsEndInPointer(toks, j + 1)) {
          table.aliases.emplace(toks[i + 1].text, DeclKind::kPtrVector);
          break;
        }
      }
      continue;
    }
    if (i > 0 && IsMemberOp(toks[i - 1])) {
      continue;  // member access, not a type use
    }
    // Container-typed declarations.
    DeclKind kind;
    bool is_container = false;
    if (kUnorderedTypes.count(t.text) != 0) {
      kind = DeclKind::kUnordered;
      is_container = true;
    } else if (t.text == "vector" && i + 1 < toks.size() && IsPunct(toks[i + 1], "<") &&
               AngleArgsEndInPointer(toks, i + 1)) {
      kind = DeclKind::kPtrVector;
      is_container = true;
    }
    if (is_container) {
      std::size_t j = i + 1;
      if (j < toks.size() && IsPunct(toks[j], "<")) {
        j = SkipAngles(toks, j);
        if (j == 0) {
          continue;
        }
      }
      const std::string name = DeclaratorName(toks, j);
      if (!name.empty()) {
        RecordDecl(&table, name, kind, t.line);
      }
      continue;
    }
    // float/double scalars and arrays (skip casts and function return types).
    if (t.text == "float" || t.text == "double") {
      if (i > 0 && (IsPunct(toks[i - 1], "<") || IsPunct(toks[i - 1], ","))) {
        continue;  // template argument (static_cast<double>, vector<double>)
      }
      if (i > 0 && IsPunct(toks[i - 1], "(") && i + 1 < toks.size() && IsPunct(toks[i + 1], ")")) {
        continue;  // C-style cast
      }
      std::size_t j = i + 1;
      while (j + 1 < toks.size() && IsIdent(toks[j])) {
        const std::string& name = toks[j].text;
        const Token& after = toks[j + 1];
        if (after.kind != TokKind::kPunct) {
          break;
        }
        if (after.text == ";" || after.text == "=" || after.text == "," || after.text == "[" ||
            after.text == "{" || after.text == ")") {
          RecordDecl(&table, name, DeclKind::kFloat, t.line);
        } else {
          break;  // "(" — function declaration/call
        }
        // Chained declarators: `double a = 0, b = 0;` — resume after the
        // next top-level comma, stop at ";".
        std::size_t k = j + 1;
        const std::int32_t depth = toks[j].paren_depth;
        while (k < toks.size() && !IsPunct(toks[k], ";") &&
               !(IsPunct(toks[k], ",") && toks[k].paren_depth == depth)) {
          ++k;
        }
        if (k >= toks.size() || IsPunct(toks[k], ";") || !IsIdent(toks[k + 1])) {
          break;
        }
        j = k + 1;
      }
      continue;
    }
  }
  // Declarations through same-file aliases.
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!IsIdent(toks[i]) || (i > 0 && IsMemberOp(toks[i - 1]))) {
      continue;
    }
    const auto it = table.aliases.find(toks[i].text);
    if (it == table.aliases.end()) {
      continue;
    }
    const std::string name = DeclaratorName(toks, i + 1);
    if (!name.empty()) {
      RecordDecl(&table, name, it->second, toks[i].line);
    }
  }
  return table;
}

// ---- allow annotations ------------------------------------------------------

std::vector<AllowSite> CollectAllows(const SourceFile& file) {
  std::vector<AllowSite> sites;
  for (std::size_t line = 1; line < file.comments.size(); ++line) {
    const std::string& text = file.comments[line];
    std::string stripped = text;  // tag spans removed, for the why check
    std::vector<std::string> rules;
    const std::string marker = "detlint:";
    for (std::size_t pos = text.find(marker); pos != std::string::npos;
         pos = text.find(marker, pos + marker.size())) {
      std::size_t p = pos + marker.size();
      while (p < text.size() && text[p] == ' ') {
        ++p;
      }
      const std::string kw = "allow(";
      if (text.compare(p, kw.size(), kw) != 0) {
        continue;
      }
      p += kw.size();
      std::string rule;
      while (p < text.size() &&
             ((text[p] >= 'a' && text[p] <= 'z') || (text[p] >= '0' && text[p] <= '9') ||
              text[p] == '-' || text[p] == '_')) {
        rule.push_back(text[p]);
        ++p;
      }
      if (p >= text.size() || text[p] != ')' || rule.empty()) {
        continue;
      }
      rules.push_back(rule);
      // Blank the tag in `stripped` so it doesn't count as rationale.
      const std::size_t tag_len = (p + 1) - pos;
      const std::size_t strip_at = stripped.find(text.substr(pos, tag_len));
      if (strip_at != std::string::npos) {
        stripped.replace(strip_at, tag_len, std::string(tag_len, ' '));
      }
    }
    if (rules.empty()) {
      continue;
    }
    std::size_t alpha = 0;
    for (const char c : stripped) {
      if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')) {
        ++alpha;
      }
    }
    for (std::string& rule : rules) {
      AllowSite site;
      site.line = static_cast<std::uint32_t>(line);
      site.known_rule = IsKnownRule(rule);
      site.rule = std::move(rule);
      site.has_why = alpha >= 8;
      sites.push_back(std::move(site));
    }
  }
  return sites;
}

// ---- the analyzer -----------------------------------------------------------

namespace {

class FileAnalyzer {
 public:
  FileAnalyzer(const SourceFile& file, const DeclTable& merged)
      : file_(file), toks_(file.tokens), table_(merged), own_(BuildDeclTable(file)) {
    // Resolve declarations typed by aliases that live in included files.
    for (std::size_t i = 0; i + 1 < toks_.size(); ++i) {
      if (!IsIdent(toks_[i]) || (i > 0 && IsMemberOp(toks_[i - 1]))) {
        continue;
      }
      const auto it = table_.aliases.find(toks_[i].text);
      if (it == table_.aliases.end()) {
        continue;
      }
      const std::string name = DeclaratorName(toks_, i + 1);
      if (!name.empty()) {
        RecordDecl(&table_, name, it->second, toks_[i].line);
      }
    }
  }

  std::vector<Finding> Run() {
    WallClock();
    GlobalRng();
    UnorderedIter();
    PointerOrdering();
    FloatMergeOrder();
    UnseededStochastic();
    NondetEnv();
    CycleAccounting();
    std::sort(findings_.begin(), findings_.end(), [](const Finding& a, const Finding& b) {
      return a.line != b.line ? a.line < b.line : a.rule < b.rule;
    });
    return std::move(findings_);
  }

 private:
  void Report(const char* rule, std::uint32_t line) {
    if (!RuleAppliesTo(rule, file_.path)) {
      return;
    }
    if (!reported_.insert({rule, line}).second) {
      return;
    }
    std::string excerpt;
    if (line >= 1 && line <= file_.raw_lines.size()) {
      const std::string& raw = file_.raw_lines[line - 1];
      const std::size_t b = raw.find_first_not_of(" \t");
      if (b != std::string::npos) {
        excerpt = raw.substr(b);
        if (excerpt.size() > 90) {
          excerpt.resize(90);
        }
      }
    }
    findings_.push_back({file_.path, line, rule, std::move(excerpt)});
  }

  bool PrevIsMemberOp(std::size_t i) const { return i > 0 && IsMemberOp(toks_[i - 1]); }
  // `T name(...)` — the token is being *declared*, not called: the previous
  // token reads as a type (identifier other than `return`, `*`, `&`, `>`).
  bool DeclLikePrefix(std::size_t i) const {
    if (i == 0) {
      return false;
    }
    const Token& p = toks_[i - 1];
    if (IsIdent(p)) {
      return p.text != "return";
    }
    return IsPunct(p, "*") || IsPunct(p, "&") || IsPunct(p, ">");
  }
  bool NextIs(std::size_t i, const char* s) const {
    return i + 1 < toks_.size() && IsPunct(toks_[i + 1], s);
  }

  void WallClock() {
    for (std::size_t i = 0; i < toks_.size(); ++i) {
      const Token& t = toks_[i];
      if (!IsIdent(t)) {
        continue;
      }
      if (t.text == "chrono" && NextIs(i, "::") && i + 2 < toks_.size() &&
          kClockNames.count(toks_[i + 2].text) != 0) {
        Report("wall-clock", t.line);
      } else if (t.text == "clock_gettime" || t.text == "gettimeofday") {
        Report("wall-clock", t.line);
      } else if ((t.text == "time" || t.text == "clock") && NextIs(i, "(") &&
                 !PrevIsMemberOp(i) && !DeclLikePrefix(i)) {
        Report("wall-clock", t.line);
      }
    }
  }

  void GlobalRng() {
    for (std::size_t i = 0; i < toks_.size(); ++i) {
      const Token& t = toks_[i];
      if (!IsIdent(t) || PrevIsMemberOp(i)) {
        continue;
      }
      if ((t.text == "rand" || t.text == "srand") && NextIs(i, "(")) {
        Report("global-rng", t.line);
        continue;
      }
      if (t.text == "random_device") {
        Report("global-rng", t.line);
        continue;
      }
      if (kEngines.count(t.text) == 0 || i + 1 >= toks_.size()) {
        continue;
      }
      // Engine constructed without a seed: `E e;`, `E e{}`, `E e = {}`,
      // or an unseeded temporary `E()` / `E{}`.
      const Token& n1 = toks_[i + 1];
      if (IsIdent(n1) && i + 2 < toks_.size()) {
        const Token& n2 = toks_[i + 2];
        if (IsPunct(n2, ";") || (IsPunct(n2, "{") && NextIs(i + 2, "}")) ||
            (IsPunct(n2, "=") && NextIs(i + 2, "{") && i + 4 < toks_.size() &&
             IsPunct(toks_[i + 4], "}"))) {
          Report("global-rng", t.line);
        }
      } else if ((IsPunct(n1, "(") && NextIs(i + 1, ")")) ||
                 (IsPunct(n1, "{") && NextIs(i + 1, "}"))) {
        Report("global-rng", t.line);
      }
    }
  }

  bool IsUnorderedName(const std::string& name) const {
    return table_.Has(name, DeclKind::kUnordered) || own_.Has(name, DeclKind::kUnordered);
  }

  void UnorderedIter() {
    for (std::size_t i = 0; i < toks_.size(); ++i) {
      const Token& t = toks_[i];
      if (!IsIdent(t)) {
        continue;
      }
      // Range-for (covers structured bindings) over an unordered container.
      if (t.text == "for" && NextIs(i, "(")) {
        const std::size_t open = i + 1;
        const std::size_t close = MatchingClose(toks_, open);
        if (close >= toks_.size()) {
          continue;
        }
        const std::int32_t inner = toks_[open].paren_depth + 1;
        std::size_t colon = 0;
        for (std::size_t j = open + 1; j < close; ++j) {
          if (toks_[j].paren_depth != inner || toks_[j].kind != TokKind::kPunct) {
            continue;
          }
          if (toks_[j].text == ";") {
            break;  // classic for
          }
          if (toks_[j].text == ":") {
            colon = j;
            break;
          }
        }
        if (colon != 0 && IsIdent(toks_[close - 1]) && IsUnorderedName(toks_[close - 1].text)) {
          Report("unordered-iter", toks_[colon].line);
        }
        continue;
      }
      // `x.begin()` family on an unordered container (feeds iterator loops
      // and <algorithm>/<numeric> traversals alike).
      if (IsUnorderedName(t.text) && i + 3 < toks_.size() && IsMemberOp(toks_[i + 1]) &&
          IsIdent(toks_[i + 2]) &&
          (toks_[i + 2].text == "begin" || toks_[i + 2].text == "cbegin" ||
           toks_[i + 2].text == "rbegin" || toks_[i + 2].text == "crbegin") &&
          IsPunct(toks_[i + 3], "(")) {
        Report("unordered-iter", t.line);
        continue;
      }
      // `std::begin(x)` and ranges-style algorithms taking the container.
      if ((t.text == "begin" || t.text == "cbegin" || kIterAlgorithms.count(t.text) != 0) &&
          i > 0 && IsPunct(toks_[i - 1], "::") && NextIs(i, "(") && i + 2 < toks_.size() &&
          IsIdent(toks_[i + 2]) && IsUnorderedName(toks_[i + 2].text) && i + 3 < toks_.size() &&
          (IsPunct(toks_[i + 3], ")") || IsPunct(toks_[i + 3], ","))) {
        Report("unordered-iter", t.line);
      }
    }
  }

  void PointerOrdering() {
    for (std::size_t i = 0; i < toks_.size(); ++i) {
      const Token& t = toks_[i];
      if (!IsIdent(t) || i == 0 || !IsPunct(toks_[i - 1], "::")) {
        continue;
      }
      // Pointer-keyed ordered associative container.
      if (kOrderedAssocTypes.count(t.text) != 0 && NextIs(i, "<") &&
          AngleArgsEndInPointer(toks_, i + 1)) {
        Report("pointer-ordering", t.line);
        continue;
      }
      // Comparator-less sort over a vector of raw pointers.
      if ((t.text == "sort" || t.text == "stable_sort") && NextIs(i, "(")) {
        const std::size_t open = i + 1;
        const std::size_t close = MatchingClose(toks_, open);
        if (close >= toks_.size()) {
          continue;
        }
        std::size_t commas = 0;
        const std::int32_t inner = toks_[open].paren_depth + 1;
        for (std::size_t j = open + 1; j < close; ++j) {
          if (IsPunct(toks_[j], ",") && toks_[j].paren_depth == inner) {
            ++commas;
          }
        }
        const bool ptr_range =
            open + 1 < toks_.size() && IsIdent(toks_[open + 1]) &&
            (table_.Has(toks_[open + 1].text, DeclKind::kPtrVector) ||
             own_.Has(toks_[open + 1].text, DeclKind::kPtrVector));
        if (commas == 1 && ptr_range) {
          Report("pointer-ordering", t.line);
        }
      }
    }
  }

  void FloatMergeOrder() {
    for (std::size_t i = 0; i < toks_.size(); ++i) {
      const Token& t = toks_[i];
      if (!IsIdent(t) || (t.text != "ParallelFor" && t.text != "RunRepetitions") ||
          !NextIs(i, "(")) {
        continue;
      }
      const std::size_t open = i + 1;
      const std::size_t close = MatchingClose(toks_, open);
      if (close >= toks_.size()) {
        continue;
      }
      const std::uint32_t first_line = toks_[open].line;
      const std::uint32_t last_line = toks_[close].line;
      for (std::size_t j = open + 1; j < close; ++j) {
        const Token& op = toks_[j];
        if (op.kind != TokKind::kPunct ||
            (op.text != "+=" && op.text != "-=" && op.text != "*=" && op.text != "/=")) {
          continue;
        }
        std::size_t k = j - 1;
        if (IsPunct(toks_[k], "]")) {
          const std::size_t ob = MatchingOpenBracket(toks_, k);
          if (ob == 0) {
            continue;
          }
          k = ob - 1;
        }
        if (!IsIdent(toks_[k])) {
          continue;
        }
        const std::string& name = toks_[k].text;
        // An accumulator declared inside the call's own argument list (the
        // per-repetition lambda body) is serial per repetition — fine. One
        // declared outside and captured is a cross-iteration merge.
        bool declared_inside = false;
        bool declared_float = false;
        auto scan = [&](const DeclTable& tbl) {
          const auto it = tbl.vars.find(name);
          if (it == tbl.vars.end()) {
            return;
          }
          for (const DeclEntry& e : it->second) {
            if (e.kind != DeclKind::kFloat) {
              continue;
            }
            declared_float = true;
            if (e.line >= first_line && e.line <= last_line) {
              declared_inside = true;
            }
          }
        };
        scan(own_);
        if (!declared_inside) {
          scan(table_);
        }
        if (declared_float && !declared_inside) {
          Report("float-merge-order", op.line);
        }
      }
    }
  }

  void UnseededStochastic() {
    for (std::size_t i = 0; i < toks_.size(); ++i) {
      const Token& t = toks_[i];
      if (!IsIdent(t)) {
        continue;
      }
      if ((t.text == "shuffle" || t.text == "random_shuffle") && i > 0 &&
          IsPunct(toks_[i - 1], "::")) {
        Report("unseeded-stochastic", t.line);
        continue;
      }
      if (kDistributions.count(t.text) == 0 || PrevIsMemberOp(i)) {
        continue;
      }
      std::size_t j = i + 1;
      if (j < toks_.size() && IsPunct(toks_[j], "<")) {
        j = SkipAngles(toks_, j);
        if (j == 0) {
          continue;
        }
      }
      if (j + 1 >= toks_.size() || !IsIdent(toks_[j])) {
        continue;
      }
      // `D<T> d;`, `D<T> d{}`, `D<T> d = {}` — a distribution with default
      // parameters, i.e. stochastic state with no explicit configuration.
      const Token& after = toks_[j + 1];
      if (IsPunct(after, ";") || (IsPunct(after, "{") && NextIs(j + 1, "}")) ||
          (IsPunct(after, "=") && NextIs(j + 1, "{") && j + 3 < toks_.size() &&
           IsPunct(toks_[j + 3], "}"))) {
        Report("unseeded-stochastic", t.line);
      }
    }
  }

  void NondetEnv() {
    for (std::size_t i = 0; i < toks_.size(); ++i) {
      const Token& t = toks_[i];
      if (!IsIdent(t) || PrevIsMemberOp(i)) {
        continue;
      }
      if ((t.text == "getenv" || t.text == "secure_getenv") && NextIs(i, "(") &&
          !DeclLikePrefix(i)) {
        Report("nondet-env", t.line);
      } else if (t.text == "this_thread" && NextIs(i, "::") && i + 2 < toks_.size() &&
                 toks_[i + 2].text == "get_id") {
        Report("nondet-env", t.line);
      } else if ((t.text == "pthread_self" || t.text == "sched_getcpu" || t.text == "gettid") &&
                 NextIs(i, "(") && !DeclLikePrefix(i)) {
        Report("nondet-env", t.line);
      } else if (t.text == "hardware_concurrency") {
        Report("nondet-env", t.line);
      }
    }
  }

  // ---- cycle accounting: physmem-bypass + uncosted-access -------------------

  struct MemEvent {
    std::uint32_t line = 0;
    std::set<std::string> addr_roots;
  };

  // Identifiers in [lo, hi) that are value roots: not member names (after
  // "."/"->"), which belong to their base object.
  static std::set<std::string> RootIdents(const std::vector<Token>& toks, std::size_t lo,
                                          std::size_t hi) {
    std::set<std::string> out;
    for (std::size_t i = lo; i < hi && i < toks.size(); ++i) {
      if (IsIdent(toks[i]) && !(i > 0 && IsMemberOp(toks[i - 1]))) {
        out.insert(toks[i].text);
      }
    }
    return out;
  }

  // Outermost `{...}` ranges that look like function (or lambda) bodies: the
  // "{" follows a ")" — possibly through const/noexcept/override/trailing
  // return — so namespace/class/enum/braced-init blocks are excluded, and
  // control-flow blocks inside a function are swallowed by their encloser.
  std::vector<std::pair<std::size_t, std::size_t>> FunctionRanges() const {
    std::vector<std::pair<std::size_t, std::size_t>> candidates;
    for (std::size_t i = 1; i < toks_.size(); ++i) {
      if (!IsPunct(toks_[i], "{")) {
        continue;
      }
      std::size_t j = i - 1;
      while (j > 0 && IsIdent(toks_[j]) && kDeclAnnotations.count(toks_[j].text) != 0) {
        --j;
      }
      bool is_function = IsPunct(toks_[j], ")");
      if (!is_function) {
        // Trailing return type: `) -> Type {`.
        std::size_t k = j;
        while (k > 0 && (IsIdent(toks_[k]) || IsPunct(toks_[k], "::") || IsPunct(toks_[k], "*") ||
                         IsPunct(toks_[k], "&") || IsPunct(toks_[k], "<") ||
                         IsPunct(toks_[k], ">"))) {
          --k;
        }
        is_function = k > 0 && IsPunct(toks_[k], "->") && IsPunct(toks_[k - 1], ")");
      }
      if (!is_function) {
        continue;
      }
      const std::size_t close = MatchingClose(toks_, i);
      if (close < toks_.size()) {
        candidates.emplace_back(i, close);
      }
    }
    std::vector<std::pair<std::size_t, std::size_t>> outer;
    for (const auto& c : candidates) {
      const bool contained = std::any_of(candidates.begin(), candidates.end(), [&](const auto& o) {
        return o.first < c.first && c.second < o.second;
      });
      if (!contained) {
        outer.push_back(c);
      }
    }
    return outer;
  }

  static void Expand(const std::map<std::string, std::set<std::string>>& aliases,
                     std::set<std::string>* roots) {
    std::vector<std::string> work(roots->begin(), roots->end());
    while (!work.empty()) {
      const std::string s = work.back();
      work.pop_back();
      const auto it = aliases.find(s);
      if (it == aliases.end()) {
        continue;
      }
      for (const std::string& t : it->second) {
        if (roots->insert(t).second) {
          work.push_back(t);
        }
      }
    }
  }

  void CycleAccounting() {
    if (!RuleAppliesTo("physmem-bypass", file_.path) &&
        !RuleAppliesTo("uncosted-access", file_.path)) {
      return;
    }
    for (const auto& [lb, rb] : FunctionRanges()) {
      std::map<std::string, std::set<std::string>> aliases;
      std::set<std::string> charged;
      std::vector<MemEvent> events;
      for (std::size_t j = lb + 1; j < rb; ++j) {
        const Token& t = toks_[j];
        // Local symbol flow: `L = expr;` and `base.member = expr;` make L
        // (or base) derive from every root identifier in expr.
        if (IsPunct(t, "=")) {
          std::size_t k = j - 1;
          if (IsPunct(toks_[k], "]")) {
            const std::size_t ob = MatchingOpenBracket(toks_, k);
            if (ob > 0) {
              k = ob - 1;
            }
          }
          if (IsIdent(toks_[k])) {
            std::string lhs = toks_[k].text;
            if (k >= 2 && IsMemberOp(toks_[k - 1]) && IsIdent(toks_[k - 2])) {
              lhs = toks_[k - 2].text;  // writes into a member taint the base
            }
            std::size_t end = j + 1;
            while (end < rb && !IsPunct(toks_[end], ";")) {
              ++end;
            }
            const std::set<std::string> rhs = RootIdents(toks_, j + 1, end);
            aliases[lhs].insert(rhs.begin(), rhs.end());
          }
          continue;
        }
        if (!IsIdent(t) || PrevIsMemberOp(j)) {
          continue;
        }
        // A MemoryHierarchy charge: every symbol in its arguments is costed.
        if ((t.text == "hierarchy_" || t.text == "hierarchy") && j + 3 < toks_.size() &&
            IsMemberOp(toks_[j + 1]) && IsIdent(toks_[j + 2]) && IsPunct(toks_[j + 3], "(")) {
          const std::size_t close = MatchingClose(toks_, j + 3);
          const std::set<std::string> args = RootIdents(toks_, j + 4, close);
          charged.insert(args.begin(), args.end());
          continue;
        }
        // A raw PhysicalMemory access: memory_.ReadX/WriteX(addr, ...).
        if ((t.text == "memory_" || t.text == "memory") && j + 3 < toks_.size() &&
            IsMemberOp(toks_[j + 1]) && IsIdent(toks_[j + 2]) &&
            (toks_[j + 2].text.rfind("Read", 0) == 0 || toks_[j + 2].text.rfind("Write", 0) == 0) &&
            IsPunct(toks_[j + 3], "(")) {
          const std::size_t open = j + 3;
          const std::size_t close = MatchingClose(toks_, open);
          std::size_t arg_end = close;
          const std::int32_t inner = toks_[open].paren_depth + 1;
          for (std::size_t a = open + 1; a < close; ++a) {
            if (IsPunct(toks_[a], ",") && toks_[a].paren_depth == inner) {
              arg_end = a;
              break;
            }
          }
          events.push_back({t.line, RootIdents(toks_, open + 1, arg_end)});
          continue;
        }
        // A helper taking the backing store by reference accesses memory on
        // the caller's behalf: Helper(memory_, addr...) is a payload touch
        // whose address derives from the other arguments.
        if (NextIs(j, "(") && t.text != "if" && t.text != "while" && t.text != "switch" &&
            t.text != "for" && t.text != "return") {
          const std::size_t open = j + 1;
          const std::size_t close = MatchingClose(toks_, open);
          if (close >= toks_.size()) {
            continue;
          }
          bool passes_memory = false;
          const std::int32_t inner = toks_[open].paren_depth + 1;
          for (std::size_t a = open + 1; a < close; ++a) {
            if (!IsIdent(toks_[a]) || toks_[a].text != "memory_") {
              continue;
            }
            const bool lone_before = a == open + 1 || (IsPunct(toks_[a - 1], ",") &&
                                                       toks_[a - 1].paren_depth == inner);
            const bool lone_after = a + 1 < toks_.size() &&
                                    (IsPunct(toks_[a + 1], ")") ||
                                     (IsPunct(toks_[a + 1], ",") &&
                                      toks_[a + 1].paren_depth == inner));
            if (lone_before && lone_after) {
              passes_memory = true;
              break;
            }
          }
          if (passes_memory) {
            std::set<std::string> args = RootIdents(toks_, open + 1, close);
            args.erase("memory_");
            events.push_back({t.line, std::move(args)});
          }
        }
      }
      if (events.empty()) {
        continue;
      }
      if (charged.empty()) {
        for (const MemEvent& e : events) {
          Report("physmem-bypass", e.line);
        }
        continue;
      }
      Expand(aliases, &charged);
      for (MemEvent& e : events) {
        Expand(aliases, &e.addr_roots);
        const bool costed =
            std::any_of(e.addr_roots.begin(), e.addr_roots.end(),
                        [&](const std::string& r) { return charged.count(r) != 0; });
        if (!costed) {
          Report("uncosted-access", e.line);
        }
      }
    }
  }

  const SourceFile& file_;
  const std::vector<Token>& toks_;
  DeclTable table_;  // merged (own + includes), plus alias-resolved decls
  DeclTable own_;    // this file only, for lambda-locality checks
  std::set<std::pair<std::string, std::uint32_t>> reported_;
  std::vector<Finding> findings_;
};

}  // namespace

std::vector<Finding> AnalyzeFile(const SourceFile& file, const DeclTable& merged) {
  return FileAnalyzer(file, merged).Run();
}

}  // namespace detlint
