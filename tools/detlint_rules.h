// detlint v2 rule engine — token-stream invariant rules over the lexer's
// output (docs/architecture.md §9). Three layers:
//
//   1. Declaration tables (per file): variables, members and using-aliases
//      whose types the rules care about — std::unordered_* containers,
//      pointer-keyed ordered containers, vectors of pointers, float/double
//      scalars. Tables merge across #include "..." edges so a member
//      declared in nic.h is visible while scanning nic.cc.
//   2. A per-function symbol-flow pass: local alias sets ("which symbols
//      does this value derive from"), the set of symbols charged through a
//      MemoryHierarchy call, and every raw PhysicalMemory touch — the basis
//      of the uncosted-access / physmem-bypass cycle-accounting rules.
//   3. Rules proper, each a token-pattern + table/flow query, with per-rule
//      path whitelists and only-in scopes.
//
// The `// detlint: allow(<rule>)` escape hatch is honored from comment text
// only (same line or the line directly above the finding). Strict mode adds
// allow hygiene meta-rules: unknown rule names, annotations with no "why"
// text, and annotations that no longer suppress anything.
#ifndef CACHEDIRECTOR_TOOLS_DETLINT_RULES_H_
#define CACHEDIRECTOR_TOOLS_DETLINT_RULES_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "tools/detlint_lexer.h"

namespace detlint {

struct Finding {
  std::string file;
  std::uint32_t line = 0;
  std::string rule;
  std::string excerpt;
};

struct RuleInfo {
  const char* id;
  const char* summary;
};

// The nine scan rules (four ported from v1, five new in v2).
const std::vector<RuleInfo>& Rules();
// Strict-mode allow-hygiene meta rules (allow-unknown-rule,
// allow-missing-why, allow-unused).
const std::vector<RuleInfo>& MetaRules();
bool IsKnownRule(const std::string& id);

enum class DeclKind : std::uint8_t {
  kUnordered,   // std::unordered_{map,set,multimap,multiset}
  kPtrVector,   // std::vector<T*>
  kFloat,       // float / double (scalar or array)
};

struct DeclEntry {
  DeclKind kind;
  std::uint32_t line = 0;  // declaration site in its own file
};

struct DeclTable {
  // Variable / member / parameter name -> declarations (shadowing keeps all).
  std::map<std::string, std::vector<DeclEntry>> vars;
  // using-alias name -> kind it expands to.
  std::map<std::string, DeclKind> aliases;

  void Merge(const DeclTable& other);
  bool Has(const std::string& name, DeclKind kind) const;
};

// Scans one file's tokens for declarations the rules consult. `aliases` of
// previously-built tables may be passed in `known_aliases` so `FooMap m;`
// resolves when FooMap is declared in an included header.
DeclTable BuildDeclTable(const SourceFile& file);

struct AllowSite {
  std::uint32_t line = 0;
  std::string rule;
  bool has_why = false;
  bool known_rule = false;
  bool used = false;
};

// Parses every `detlint: allow(<rule>)` annotation from a file's comments.
std::vector<AllowSite> CollectAllows(const SourceFile& file);

// Runs all nine rules over `file`. `merged` must contain the file's own
// declaration table plus those of its (transitively) included repo files.
// Findings are not yet allow-filtered; the driver matches them against
// CollectAllows so it can also detect stale annotations in strict mode.
std::vector<Finding> AnalyzeFile(const SourceFile& file, const DeclTable& merged);

}  // namespace detlint

#endif  // CACHEDIRECTOR_TOOLS_DETLINT_RULES_H_
