#!/usr/bin/env bash
# Bit-identity diff of every deterministic bench stdout between two trees.
#
# The reproduced tables and figures are claims: any substrate change
# (hierarchy, NIC, element costs, kernels) must leave every deterministic
# bench stdout byte-identical, or EXPERIMENTS.md has to be re-verified.
# PRs 3-5 re-derived this check by hand; this script automates it:
#
#   tools/bench_stdout_diff.sh <baseline-tree-or-git-rev> [<subject-tree>]
#
# * baseline: either a directory holding a source tree (e.g. a scratch
#   `git archive` export) or a git rev, which is exported to
#   .stdout_diff/baseline-tree first.
# * subject: a source tree; defaults to the repository root (your working
#   tree, including uncommitted changes).
#
# Both trees are configured + built Release into <tree>-build under
# .stdout_diff/, every bench binary is run with stdout captured (stderr —
# host timing — discarded), EXCEPT micro_benchmarks, whose stdout is host
# timing by design. Exits nonzero on the first stdout mismatch, printing the
# diff. All scratch state lives in .stdout_diff/ (gitignored).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
scratch="${repo_root}/.stdout_diff"
jobs="${JOBS:-$(nproc)}"

if [[ $# -lt 1 || $# -gt 2 ]]; then
  echo "usage: $0 <baseline-tree-or-git-rev> [<subject-tree>]" >&2
  exit 2
fi

baseline_arg="$1"
subject_tree="${2:-${repo_root}}"

mkdir -p "${scratch}"

# Resolve the baseline: an existing directory wins; otherwise treat the
# argument as a git rev and export it.
if [[ -d "${baseline_arg}" ]]; then
  baseline_tree="$(cd "${baseline_arg}" && pwd)"
else
  if ! git -C "${repo_root}" rev-parse --verify --quiet "${baseline_arg}^{commit}" >/dev/null; then
    echo "error: '${baseline_arg}' is neither a directory nor a git rev" >&2
    exit 2
  fi
  baseline_tree="${scratch}/baseline-tree"
  rm -rf "${baseline_tree}"
  mkdir -p "${baseline_tree}"
  git -C "${repo_root}" archive "${baseline_arg}" | tar -x -C "${baseline_tree}"
  echo "exported ${baseline_arg} -> ${baseline_tree}"
fi

build_tree() {
  local src="$1" build="$2"
  cmake -S "${src}" -B "${build}" -G Ninja -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build "${build}" --target bench/all -- -j "${jobs}" >/dev/null
}

run_benches() {
  local build="$1" out="$2"
  mkdir -p "${out}"
  local b name
  for b in "${build}"/bench/*; do
    [[ -f "${b}" && -x "${b}" ]] || continue
    name="$(basename "${b}")"
    # micro_benchmarks prints host-side timings: not deterministic by design.
    [[ "${name}" == "micro_benchmarks" ]] && continue
    echo "  running ${name}"
    "${b}" >"${out}/${name}.stdout" 2>/dev/null
  done
}

echo "building baseline (${baseline_tree})"
build_tree "${baseline_tree}" "${scratch}/baseline-build"
echo "building subject (${subject_tree})"
build_tree "${subject_tree}" "${scratch}/subject-build"

echo "running baseline benches"
run_benches "${scratch}/baseline-build" "${scratch}/baseline-stdout"
echo "running subject benches"
run_benches "${scratch}/subject-build" "${scratch}/subject-stdout"

status=0
for ref in "${scratch}"/baseline-stdout/*.stdout; do
  name="$(basename "${ref}")"
  sub="${scratch}/subject-stdout/${name}"
  if [[ ! -f "${sub}" ]]; then
    echo "MISSING: subject did not produce ${name}" >&2
    status=1
    continue
  fi
  if ! diff -u "${ref}" "${sub}" >"${scratch}/${name}.diff" 2>&1; then
    echo "MISMATCH: ${name} (diff in .stdout_diff/${name}.diff)" >&2
    sed -n '1,40p' "${scratch}/${name}.diff" >&2
    status=1
  else
    rm -f "${scratch}/${name}.diff"
    echo "  identical: ${name}"
  fi
done

# Benches only the subject has are new tables, not mismatches — report them.
for sub in "${scratch}"/subject-stdout/*.stdout; do
  name="$(basename "${sub}")"
  [[ -f "${scratch}/baseline-stdout/${name}" ]] || echo "NEW (subject only): ${name}"
done

if [[ ${status} -ne 0 ]]; then
  echo "bench stdout diff: FAILED — at least one bench diverged" >&2
else
  echo "bench stdout diff: all deterministic bench stdouts byte-identical"
fi
exit ${status}
