// detlint v2 lexer — a dependency-free C++ tokenizer for the determinism
// lint (docs/architecture.md §9). It is not a compiler front end: it
// produces a flat token stream with enough structure (line numbers,
// brace/paren nesting depth, per-line comment text, quoted-include targets)
// for the rule engine in detlint_rules.cc to do declaration-table and
// symbol-flow analysis without ever mistaking a string literal or a comment
// for code.
//
// Handled faithfully: // and /* */ comments (multi-line), string literals
// with escapes, raw string literals (R"delim(...)delim" with optional
// encoding prefix), char literals, digit separators (1'000'000),
// preprocessor directives (skipped as code, but #include "..." targets are
// recorded and backslash continuations are honored), and multi-character
// operators ("::", "->", "+=", ">>", ...) emitted as single punctuation
// tokens.
#ifndef CACHEDIRECTOR_TOOLS_DETLINT_LEXER_H_
#define CACHEDIRECTOR_TOOLS_DETLINT_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace detlint {

enum class TokKind : std::uint8_t {
  kIdent,    // identifiers and keywords
  kNumber,   // pp-numbers (integers, floats, with separators/suffixes)
  kString,   // string literal (text not preserved)
  kCharLit,  // character literal
  kPunct,    // operators and punctuation, multi-char ops combined
};

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string text;
  std::uint32_t line = 0;  // 1-based source line
  // Number of unclosed '{' / '(' enclosing this token. An opener and its
  // matching closer both carry the *outer* depth, so everything strictly
  // inside a pair sits one level deeper than the pair itself.
  std::int32_t brace_depth = 0;
  std::int32_t paren_depth = 0;
};

struct SourceFile {
  std::string path;  // generic ('/'-separated) display path
  std::vector<std::string> raw_lines;
  // Per-line comment text (both // and /* */ chunks, concatenated). The
  // `detlint: allow(<rule>)` escape hatch is only honored here — an allow
  // tag inside a string literal or real code never suppresses anything.
  std::vector<std::string> comments;
  std::vector<Token> tokens;
  // Targets of #include "..." directives, verbatim.
  std::vector<std::string> quoted_includes;
};

// Lexes `content` (a whole file) into `out`. Never fails: malformed input
// degrades to best-effort tokens, which is the right behavior for a lint.
void Lex(const std::string& content, const std::string& path, SourceFile* out);

// Index of the token closing the "(" or "{" at `open` (same bracket class,
// balanced). Returns tokens.size() when unbalanced.
std::size_t MatchingClose(const std::vector<Token>& tokens, std::size_t open);

}  // namespace detlint

#endif  // CACHEDIRECTOR_TOOLS_DETLINT_LEXER_H_
