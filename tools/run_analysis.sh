#!/usr/bin/env bash
# One-shot analysis driver: configure + determinism lint + clang-tidy +
# ASan/UBSan ctest + TSan ctest. This is the same gauntlet CI runs; see
# docs/architecture.md §9. Usage:
#
#   tools/run_analysis.sh            # everything
#   tools/run_analysis.sh --fast     # detlint + tidy only (no sanitizer builds)
set -euo pipefail

cd "$(dirname "$0")/.."
repo_root=$(pwd)
fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

step() { printf '\n=== %s ===\n' "$*"; }

step "configure (default preset, exports compile_commands.json)"
cmake --preset default >/dev/null

step "build detlint"
cmake --build --preset default --target detlint

step "detlint: strict determinism lint over src/ bench/ tests/ tools/"
# --strict adds allow-annotation hygiene; the self-time budget keeps the
# scan cheap enough to run on every push (exit 3 if it ever is not).
"${repo_root}/build/tools/detlint" --root "${repo_root}" --strict --self-time-budget-ms=10000
echo "detlint: clean"

step "clang-tidy (diff-aware when run-clang-tidy is available)"
if command -v run-clang-tidy >/dev/null 2>&1; then
  run-clang-tidy -p "${repo_root}/build" -quiet "${repo_root}/src/.*" "${repo_root}/tools/.*"
else
  echo "run-clang-tidy not installed; skipping (CI runs it — see .github/workflows/ci.yml)"
fi

if [[ ${fast} -eq 1 ]]; then
  step "--fast: skipping sanitizer builds"
  exit 0
fi

step "ASan+UBSan: full build + ctest"
cmake --preset asan-ubsan >/dev/null
cmake --build --preset asan-ubsan
ctest --preset asan-ubsan -j "$(nproc)"

step "TSan: full build + ctest (includes the ParallelFor stress test)"
cmake --preset tsan >/dev/null
cmake --build --preset tsan
ctest --preset tsan -j "$(nproc)"

step "all analysis layers clean"
