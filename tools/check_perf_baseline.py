#!/usr/bin/env python3
"""Compare a fresh sim_throughput_bench JSON against the committed baseline.

The committed BENCH_simcore.json keeps a "history" list of trajectory points
(oldest first); a fresh run (`build/bench/sim_throughput_bench out.json`)
writes a flat {"machine", "configs"} object. This script compares the fresh
run's accesses_per_sec against the most recent history entry, per core
count, with a generous tolerance: host-side throughput is noisy across
runners, so the check is REPORT-ONLY by default (always exits 0) and only
enforces with --enforce (e.g. on a quiet, dedicated perf machine).

Usage:
  tools/check_perf_baseline.py --baseline BENCH_simcore.json \
      --fresh /tmp/perf_fresh.json [--tolerance 0.30] [--enforce]
"""

import argparse
import json
import sys


def configs_by_cores(entry):
    return {int(c["cores"]): float(c["accesses_per_sec"]) for c in entry["configs"]}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True, help="committed BENCH_simcore.json")
    parser.add_argument("--fresh", required=True, help="JSON written by a fresh bench run")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed fractional regression before flagging (default 0.30)",
    )
    parser.add_argument(
        "--enforce",
        action="store_true",
        help="exit nonzero on regression (default: report-only)",
    )
    args = parser.parse_args()

    with open(args.baseline, encoding="utf-8") as f:
        baseline = json.load(f)
    with open(args.fresh, encoding="utf-8") as f:
        fresh = json.load(f)

    ref = baseline["history"][-1]
    ref_rates = configs_by_cores(ref)
    fresh_rates = configs_by_cores(fresh)

    print(f"baseline point: {ref.get('label', '<unlabelled>')} "
          f"(machine: {baseline.get('machine', {})})")
    print(f"fresh machine:  {fresh.get('machine', {})}")

    regressed = False
    for cores in sorted(ref_rates):
        if cores not in fresh_rates:
            print(f"cores={cores}: missing from fresh run")
            regressed = True
            continue
        ref_rate, new_rate = ref_rates[cores], fresh_rates[cores]
        ratio = new_rate / ref_rate if ref_rate > 0 else float("inf")
        floor = 1.0 - args.tolerance
        verdict = "OK" if ratio >= floor else "REGRESSION"
        if ratio < floor:
            regressed = True
        print(f"cores={cores}: baseline={ref_rate:.3e} fresh={new_rate:.3e} "
              f"ratio={ratio:.2f} (floor {floor:.2f}) {verdict}")

    if regressed:
        # GitHub Actions annotation; harmless noise elsewhere.
        print(f"::warning::sim_throughput_bench below baseline - tolerance "
              f"{args.tolerance:.0%}; see perf-smoke job log")
        if args.enforce:
            return 1
        print("report-only mode: not failing the build "
              "(runner throughput is not comparable to the baseline machine)")
    else:
        print("perf-smoke: within tolerance of the committed baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
