#!/usr/bin/env python3
"""Compare fresh bench JSONs against the committed BENCH_simcore.json baseline.

The committed BENCH_simcore.json keeps, per named bench, a "history" list of
trajectory points (oldest first) under "benches". A fresh run writes a flat
JSON tagged with its "bench" name:

  * sim_throughput_bench  -> {"bench": "sim_throughput", "machine", "configs"}
    where each config carries accesses_per_sec (higher is better);
  * sim_throughput_bench --engine-threads=N --engine-json=... -> the same
    shape tagged "sim_throughput_engine" plus "engine_threads" and per-config
    "engine" counters. When a fresh sim_throughput AND sim_throughput_engine
    pair is given, the script also reports the engine overhead ratio
    (engine rate / serial rate, same host, same invocation) — the number the
    committed sim_throughput_engine history tracks;
  * fig13_forwarding_100g --json=... -> {"bench": "fig13_forwarding_100g",
    "machine", "host_seconds"} (lower is better);
  * fig8_kvs_tps --json=... and fig14_service_chain_100g --json=... follow
    the same host_seconds shape.

Each --fresh file is matched to its baseline section by the "bench" field and
compared against that section's most recent history entry, with a generous
tolerance: host-side numbers are noisy across runners, so the check is
REPORT-ONLY by default (always exits 0). Two escalation flags:

  * --enforce: exit nonzero on regression and emit the GitHub Actions
    ::warning:: annotation (for a quiet, dedicated perf machine in CI);
  * --strict: exit nonzero on regression with a plain error line and no CI
    annotation — for local pre-commit runs on the same host that produced
    the baseline point. CI stays report-only.

Usage:
  tools/check_perf_baseline.py --baseline BENCH_simcore.json \
      --fresh /tmp/perf_fresh.json --fresh /tmp/fig13_fresh.json \
      [--tolerance 0.30] [--enforce | --strict]
"""

import argparse
import json
import sys


def configs_by_cores(entry):
    return {int(c["cores"]): float(c["accesses_per_sec"]) for c in entry["configs"]}


def compare_configs(name, ref, fresh, floor):
    """Per-core accesses_per_sec, higher is better. Returns True on regression."""
    ref_rates = configs_by_cores(ref)
    fresh_rates = configs_by_cores(fresh)
    regressed = False
    # Intersection only: CI runs a subset of core counts (--cores=1) and the
    # missing configs are a deliberate choice, not a regression.
    common = sorted(set(ref_rates) & set(fresh_rates))
    if not common:
        print(f"{name}: no core counts in common with the baseline point")
        return True
    for cores in common:
        ref_rate, new_rate = ref_rates[cores], fresh_rates[cores]
        ratio = new_rate / ref_rate if ref_rate > 0 else float("inf")
        verdict = "OK" if ratio >= floor else "REGRESSION"
        if ratio < floor:
            regressed = True
        print(f"{name} cores={cores}: baseline={ref_rate:.3e} fresh={new_rate:.3e} "
              f"ratio={ratio:.2f} (floor {floor:.2f}) {verdict}")
    return regressed


def compare_host_seconds(name, ref, fresh, floor):
    """Whole-run host_seconds, lower is better. Returns True on regression."""
    ref_s, new_s = float(ref["host_seconds"]), float(fresh["host_seconds"])
    # Express as a throughput-style ratio so one floor serves both shapes.
    ratio = ref_s / new_s if new_s > 0 else float("inf")
    verdict = "OK" if ratio >= floor else "REGRESSION"
    print(f"{name} host_seconds: baseline={ref_s:.3f}s fresh={new_s:.3f}s "
          f"speed ratio={ratio:.2f} (floor {floor:.2f}) {verdict}")
    return ratio < floor


def report_overhead_ratio(fresh_by_name, benches):
    """Engine-vs-serial overhead ratio from a paired fresh run (report-only).

    Only a serial + engine pair from the SAME invocation is meaningful: the
    ratio divides out host speed, which cross-run comparisons cannot. That is
    why this never flags a regression — the committed sim_throughput_engine
    history entry records the paired ratio measured on the baseline host.
    """
    serial = fresh_by_name.get("sim_throughput")
    engine = fresh_by_name.get("sim_throughput_engine")
    if serial is None or engine is None:
        return
    threads = engine.get("engine_threads", "?")
    serial_rates = configs_by_cores(serial)
    engine_rates = configs_by_cores(engine)
    ref_ratio = None
    engine_section = benches.get("sim_throughput_engine")
    if engine_section:
        ref_ratio = engine_section["history"][-1].get("overhead_ratio_vs_serial")
    for cores in sorted(set(serial_rates) & set(engine_rates)):
        ratio = engine_rates[cores] / serial_rates[cores] if serial_rates[cores] > 0 else 0.0
        ref = f", baseline point {ref_ratio:.2f}" if ref_ratio is not None else ""
        print(f"engine@{threads}w overhead ratio cores={cores}: {ratio:.2f} "
              f"(engine {engine_rates[cores]:.3e} / serial {serial_rates[cores]:.3e}{ref})")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True, help="committed BENCH_simcore.json")
    parser.add_argument(
        "--fresh",
        required=True,
        action="append",
        help="JSON written by a fresh bench run (repeatable, matched by 'bench' field)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed fractional regression before flagging (default 0.30)",
    )
    parser.add_argument(
        "--enforce",
        action="store_true",
        help="exit nonzero on regression, with CI annotation (default: report-only)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit nonzero on regression, plain error output for local pre-commit use",
    )
    args = parser.parse_args()

    with open(args.baseline, encoding="utf-8") as f:
        baseline = json.load(f)
    benches = baseline["benches"]
    print(f"baseline machine: {baseline.get('machine', {})}")

    floor = 1.0 - args.tolerance
    regressed = False
    fresh_by_name = {}
    for path in args.fresh:
        with open(path, encoding="utf-8") as f:
            fresh = json.load(f)
        name = fresh.get("bench")
        fresh_by_name[name] = fresh
        if name not in benches:
            known = ", ".join(sorted(benches))
            print(f"{path}: fresh run is tagged bench '{name}', which matches no "
                  f"committed section in {args.baseline} (known benches: {known}). "
                  f"Either the tag is wrong or the new bench needs a first "
                  f"history point committed.")
            regressed = True
            continue
        ref = benches[name]["history"][-1]
        print(f"{name}: baseline point '{ref.get('label', '<unlabelled>')}', "
              f"fresh machine {fresh.get('machine', {})}")
        if "configs" in fresh:
            regressed |= compare_configs(name, ref, fresh, floor)
        elif "host_seconds" in fresh:
            regressed |= compare_host_seconds(name, ref, fresh, floor)
        else:
            print(f"{path}: unrecognized fresh-run shape (no configs/host_seconds)")
            regressed = True

    report_overhead_ratio(fresh_by_name, benches)

    if regressed:
        if args.strict:
            print(f"ERROR: perf bench below baseline - tolerance {args.tolerance:.0%}")
            return 1
        # GitHub Actions annotation; harmless noise elsewhere.
        print(f"::warning::perf bench below baseline - tolerance "
              f"{args.tolerance:.0%}; see perf-smoke job log")
        if args.enforce:
            return 1
        print("report-only mode: not failing the build "
              "(runner throughput is not comparable to the baseline machine)")
    else:
        print("perf-smoke: within tolerance of the committed baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
