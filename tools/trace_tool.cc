// trace_tool — generate, inspect, and convert packet traces.
//
// Usage:
//   trace_tool gen <path> <count> campus|fixed:<size> <gbps> [seed]
//       Generate a trace file with the synthetic campus mix or fixed-size
//       frames, paced at the given rate.
//   trace_tool stats <path>
//       Print size-mix / rate statistics of a trace file.
//   trace_tool head <path> [n]
//       Print the first n (default 10) records.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/stats/summary.h"
#include "src/trace/trace_file.h"
#include "src/trace/traffic_gen.h"

namespace cachedir {
namespace {

int CmdGen(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(stderr, "gen: need <path> <count> campus|fixed:<size> <gbps> [seed]\n");
    return 1;
  }
  const std::string path = argv[0];
  const std::size_t count = std::strtoull(argv[1], nullptr, 0);
  const std::string mode = argv[2];
  TrafficConfig config;
  config.rate_gbps = std::atof(argv[3]);
  config.seed = argc >= 5 ? std::strtoull(argv[4], nullptr, 0) : 1;
  if (mode == "campus") {
    config.size_mode = TrafficConfig::SizeMode::kCampusMix;
  } else if (mode.rfind("fixed:", 0) == 0) {
    config.size_mode = TrafficConfig::SizeMode::kFixed;
    config.fixed_size = static_cast<std::uint32_t>(std::atoi(mode.c_str() + 6));
  } else {
    std::fprintf(stderr, "gen: unknown mode '%s'\n", mode.c_str());
    return 1;
  }
  TrafficGenerator gen(config);
  SaveTrace(path, gen.Generate(count));
  std::printf("wrote %zu packets to %s\n", count, path.c_str());
  return 0;
}

int CmdStats(const char* path) {
  const auto packets = LoadTrace(path);
  if (packets.empty()) {
    std::printf("%s: empty trace\n", path);
    return 0;
  }
  Samples sizes;
  std::uint64_t under100 = 0;
  std::uint64_t mid = 0;
  double bits = 0;
  for (const WirePacket& p : packets) {
    sizes.Add(p.size_bytes);
    under100 += p.size_bytes < 100 ? 1 : 0;
    mid += (p.size_bytes >= 100 && p.size_bytes < 500) ? 1 : 0;
    bits += (p.size_bytes + kWireOverheadBytes) * 8;
  }
  const double window_ns = packets.back().tx_time_ns - packets.front().tx_time_ns;
  const double n = static_cast<double>(packets.size());
  std::printf("%s: %zu packets\n", path, packets.size());
  std::printf("  sizes: mean %.1f B, median %.0f B, p95 %.0f B, max %.0f B\n",
              sizes.Mean(), sizes.Median(), sizes.Percentile(95), sizes.Max());
  std::printf("  mix  : %.1f%% <100 B, %.1f%% 100-500 B, %.1f%% >=500 B\n",
              100.0 * under100 / n, 100.0 * mid / n, 100.0 * (n - under100 - mid) / n);
  if (window_ns > 0) {
    std::printf("  rate : %.2f Gbps over %.3f ms\n", bits / window_ns, window_ns / 1e6);
  }
  return 0;
}

int CmdHead(const char* path, int n) {
  const auto packets = LoadTrace(path);
  std::printf("%-8s %-16s %-16s %-7s %-10s\n", "id", "src", "dst", "size", "t (us)");
  for (int i = 0; i < n && i < static_cast<int>(packets.size()); ++i) {
    const WirePacket& p = packets[i];
    std::printf("%-8llu %08x:%-7u %08x:%-7u %-7u %-10.3f\n",
                static_cast<unsigned long long>(p.id), p.flow.src_ip, p.flow.src_port,
                p.flow.dst_ip, p.flow.dst_port, p.size_bytes, p.tx_time_ns / 1000.0);
  }
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: trace_tool gen|stats|head <args>\n");
    return 1;
  }
  const std::string cmd = argv[1];
  try {
    if (cmd == "gen") {
      return CmdGen(argc - 2, argv + 2);
    }
    if (cmd == "stats") {
      return CmdStats(argv[2]);
    }
    if (cmd == "head") {
      return CmdHead(argv[2], argc >= 4 ? std::atoi(argv[3]) : 10);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
  return 1;
}

}  // namespace
}  // namespace cachedir

int main(int argc, char** argv) { return cachedir::Main(argc, argv); }
