#include "src/uncore/cbo.h"

#include <stdexcept>

namespace cachedir {

std::vector<std::uint64_t> CboCounterBank::LookupDelta(const std::vector<CboEvents>& before,
                                                       const std::vector<CboEvents>& after) {
  if (before.size() != after.size()) {
    throw std::invalid_argument("CboCounterBank::LookupDelta: snapshot size mismatch");
  }
  std::vector<std::uint64_t> delta(before.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    delta[i] = after[i].lookups - before[i].lookups;
  }
  return delta;
}

void CboCounterBank::Reset() {
  for (CboEvents& c : counters_) {
    c = CboEvents{};
  }
}

}  // namespace cachedir
