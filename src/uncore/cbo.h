// Simulated uncore performance-monitoring unit.
//
// Each LLC slice on Haswell exposes a CBo (C-Box) counter block; Skylake-SP
// renames it CHA. The paper's reverse-engineering step programs these to
// count LLC lookups per slice, polls one address repeatedly, and attributes
// the address to the slice whose counter moved. This bank provides exactly
// the events that method needs.
#ifndef CACHEDIRECTOR_SRC_UNCORE_CBO_H_
#define CACHEDIRECTOR_SRC_UNCORE_CBO_H_

#include <cstdint>
#include <vector>

#include "src/sim/types.h"

namespace cachedir {

struct CboEvents {
  std::uint64_t lookups = 0;  // any LLC access that reached this slice
  std::uint64_t misses = 0;   // lookups that missed
  std::uint64_t dma_fills = 0;  // lines written into this slice by DDIO

  bool operator==(const CboEvents&) const = default;
};

class CboCounterBank {
 public:
  explicit CboCounterBank(std::size_t num_slices) : counters_(num_slices) {}

  std::size_t num_slices() const { return counters_.size(); }

  // Recording hooks, driven by the cache hierarchy.
  void RecordLookup(SliceId slice, bool miss) {
    CboEvents& c = counters_[slice];
    ++c.lookups;
    if (miss) {
      ++c.misses;
    }
  }
  void RecordDmaFill(SliceId slice) { ++counters_[slice].dma_fills; }

  const CboEvents& events(SliceId slice) const { return counters_[slice]; }

  // Snapshot/delta API mirroring how perf-counter polling is really done:
  // read all counters, do the work, read again, subtract.
  std::vector<CboEvents> Snapshot() const { return counters_; }

  // Allocation-free flavour for per-window callers (the epoch engine
  // snapshots before every replayed window): copies into a caller-owned
  // buffer whose capacity persists across calls.
  void SnapshotInto(std::vector<CboEvents>& out) const { out = counters_; }

  // Restores a previously taken snapshot of this bank — the epoch engine
  // uses the pair to roll counters back when a speculative window aborts.
  void Restore(const std::vector<CboEvents>& counters) { counters_ = counters; }

  static std::vector<std::uint64_t> LookupDelta(const std::vector<CboEvents>& before,
                                                const std::vector<CboEvents>& after);

  void Reset();

 private:
  std::vector<CboEvents> counters_;
};

}  // namespace cachedir

#endif  // CACHEDIRECTOR_SRC_UNCORE_CBO_H_
