// Polling-based slice discovery (paper §2.1, "Polling").
//
// Program the per-slice CBo counters to count LLC lookups, access one
// physical address many times in a way that forces each access to reach the
// LLC, and attribute the address to the slice whose counter advanced. Works
// for any slice count and any hash — it treats the hardware as a black box,
// exactly like the real method.
#ifndef CACHEDIRECTOR_SRC_REV_POLLING_H_
#define CACHEDIRECTOR_SRC_REV_POLLING_H_

#include "src/cache/hierarchy.h"

namespace cachedir {

class SlicePoller {
 public:
  struct Params {
    CoreId core = 0;
    int repetitions = 16;  // accesses per polled address
  };

  explicit SlicePoller(MemoryHierarchy& hierarchy) : SlicePoller(hierarchy, Params{}) {}
  SlicePoller(MemoryHierarchy& hierarchy, const Params& params)
      : hierarchy_(hierarchy), params_(params) {}

  // Returns the slice serving `addr`, discovered via counters only.
  SliceId FindSlice(PhysAddr addr);

  // Number of polled addresses so far (cost accounting for the bench).
  std::uint64_t polls() const { return polls_; }

 private:
  MemoryHierarchy& hierarchy_;
  Params params_;
  std::uint64_t polls_ = 0;
};

}  // namespace cachedir

#endif  // CACHEDIRECTOR_SRC_REV_POLLING_H_
