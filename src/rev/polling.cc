#include "src/rev/polling.h"

#include <algorithm>
#include <stdexcept>

namespace cachedir {

SliceId SlicePoller::FindSlice(PhysAddr addr) {
  ++polls_;
  CboCounterBank& cbo = hierarchy_.llc().cbo();
  const auto before = cbo.Snapshot();

  for (int i = 0; i < params_.repetitions; ++i) {
    // Flush first so the read cannot be served by L1/L2 and must perform an
    // LLC lookup (which is what the counters see).
    hierarchy_.FlushLine(addr);
    hierarchy_.Read(params_.core, addr);
  }

  const auto after = cbo.Snapshot();
  const auto delta = CboCounterBank::LookupDelta(before, after);
  const auto it = std::max_element(delta.begin(), delta.end());
  if (it == delta.end() || *it == 0) {
    throw std::logic_error("SlicePoller::FindSlice: no counter advanced");
  }
  return static_cast<SliceId>(it - delta.begin());
}

}  // namespace cachedir
