// Reconstruction of the Complex Addressing hash (paper §2.1, "Constructing
// the hash function").
//
// For 2^n-slice parts the hash is XOR-linear: flipping one physical-address
// bit XORs a constant pattern into the slice id. The solver therefore flips
// each candidate bit against a base address, records the slice-id deltas,
// assembles the per-output-bit masks, and verifies the recovered function
// against fresh polled addresses. It also *detects* non-linearity (as on
// 18-slice Skylake parts, where only polling works — paper §6) by checking
// flip deltas at several bases.
#ifndef CACHEDIRECTOR_SRC_REV_HASH_SOLVER_H_
#define CACHEDIRECTOR_SRC_REV_HASH_SOLVER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/rev/polling.h"
#include "src/sim/rng.h"

namespace cachedir {

struct RecoveredXorHash {
  // True when flip deltas were consistent across bases (XOR-linear hash).
  bool linear = false;
  // masks[i] = PA bits feeding output bit i; empty when !linear.
  std::vector<std::uint64_t> masks;
  // Fraction of verification addresses where the recovered function matches
  // the polled slice (1.0 expected for linear hashes).
  double verification_accuracy = 0.0;
  // Number of polled addresses consumed.
  std::uint64_t polls = 0;
};

class HashSolver {
 public:
  struct Params {
    PhysAddr region_base = 0x1'8000'0000;  // a 1 GB hugepage's PA
    std::size_t region_size = std::size_t{1} << 30;
    unsigned min_bit = 6;   // line-offset bits cannot matter
    unsigned max_bit = 29;  // flips must stay inside the probed region
    int linearity_bases = 4;     // extra bases to cross-check flip deltas
    int verify_samples = 256;    // random addresses for final verification
    std::uint64_t seed = 42;
  };

  HashSolver(SlicePoller& poller, std::size_t num_slices)
      : HashSolver(poller, num_slices, Params{}) {}
  HashSolver(SlicePoller& poller, std::size_t num_slices, const Params& params)
      : poller_(poller), num_slices_(num_slices), params_(params) {}

  RecoveredXorHash Solve();

 private:
  SlicePoller& poller_;
  std::size_t num_slices_;
  Params params_;
};

// Renders masks as the paper's Fig. 4 matrix: one row per output bit, one
// column per PA bit, 'X' where the bit participates.
std::vector<std::string> FormatHashMatrix(const std::vector<std::uint64_t>& masks,
                                          unsigned min_bit, unsigned max_bit);

}  // namespace cachedir

#endif  // CACHEDIRECTOR_SRC_REV_HASH_SOLVER_H_
