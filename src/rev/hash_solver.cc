#include "src/rev/hash_solver.h"

#include <bit>
#include <stdexcept>
#include <string>

namespace cachedir {

RecoveredXorHash HashSolver::Solve() {
  if (!std::has_single_bit(num_slices_)) {
    // Non-power-of-two slice counts cannot be XOR-linear over slice ids.
    RecoveredXorHash out;
    out.linear = false;
    return out;
  }
  const auto out_bits = static_cast<unsigned>(std::countr_zero(num_slices_));
  Rng rng(params_.seed);

  const auto random_base = [&] {
    const PhysAddr off = LineBase(rng.UniformU64(0, params_.region_size - kCacheLineSize));
    return params_.region_base + off;
  };

  RecoveredXorHash result;

  // Flip deltas at the canonical base.
  const PhysAddr base = params_.region_base;
  const SliceId base_slice = poller_.FindSlice(base);
  std::vector<std::uint32_t> delta(params_.max_bit + 1, 0);
  for (unsigned bit = params_.min_bit; bit <= params_.max_bit; ++bit) {
    const PhysAddr flipped = base ^ (PhysAddr{1} << bit);
    delta[bit] = poller_.FindSlice(flipped) ^ base_slice;
  }

  // Linearity cross-check: the same flip must produce the same delta at
  // other bases.
  bool linear = true;
  for (int i = 0; i < params_.linearity_bases && linear; ++i) {
    const PhysAddr b = random_base();
    const SliceId s = poller_.FindSlice(b);
    for (unsigned bit = params_.min_bit; bit <= params_.max_bit; ++bit) {
      const PhysAddr flipped = b ^ (PhysAddr{1} << bit);
      // Keep flips inside the probed region so the address stays valid.
      if (flipped < params_.region_base ||
          flipped >= params_.region_base + params_.region_size) {
        continue;
      }
      if ((poller_.FindSlice(flipped) ^ s) != delta[bit]) {
        linear = false;
        break;
      }
    }
  }
  result.linear = linear;
  if (!linear) {
    result.polls = poller_.polls();
    return result;
  }

  // Assemble masks. Bits of the *base* itself also contribute a constant
  // term; for the published hashes the constant is zero when all
  // participating bits of the base are zero. Recover the constant from the
  // base slice and fold it in by checking the predicted value.
  result.masks.assign(out_bits, 0);
  for (unsigned bit = params_.min_bit; bit <= params_.max_bit; ++bit) {
    for (unsigned o = 0; o < out_bits; ++o) {
      if ((delta[bit] >> o) & 1) {
        result.masks[o] |= PhysAddr{1} << bit;
      }
    }
  }

  // Verify against fresh random addresses.
  int correct = 0;
  for (int i = 0; i < params_.verify_samples; ++i) {
    const PhysAddr addr = random_base();
    SliceId predicted = 0;
    for (unsigned o = 0; o < out_bits; ++o) {
      predicted |= ParityOf(addr, result.masks[o]) << o;
    }
    // The constant term: parity contribution of bits above max_bit shared by
    // all addresses in the region, captured via the base measurement.
    SliceId base_pred = 0;
    for (unsigned o = 0; o < out_bits; ++o) {
      base_pred |= ParityOf(base, result.masks[o]) << o;
    }
    const SliceId constant = base_pred ^ base_slice;
    predicted ^= constant;
    if (poller_.FindSlice(addr) == predicted) {
      ++correct;
    }
  }
  result.verification_accuracy =
      static_cast<double>(correct) / static_cast<double>(params_.verify_samples);
  result.polls = poller_.polls();
  return result;
}

std::vector<std::string> FormatHashMatrix(const std::vector<std::uint64_t>& masks,
                                          unsigned min_bit, unsigned max_bit) {
  std::vector<std::string> rows;
  for (std::size_t o = 0; o < masks.size(); ++o) {
    std::string row = "o" + std::to_string(o) + " ";
    for (unsigned bit = max_bit + 1; bit-- > min_bit;) {
      row += ((masks[o] >> bit) & 1) != 0 ? 'X' : '.';
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace cachedir
