#include "src/trace/packet.h"

#include <bit>
#include <cstring>

namespace cachedir {
namespace {

// Deterministic MACs derived from IPs; good enough for a simulated L2.
std::uint64_t MacForIp(std::uint32_t ip) { return 0x02'00'00'00'00'00ull | ip; }

void PackMac(std::uint8_t* out, std::uint64_t mac) {
  for (int i = 0; i < 6; ++i) {
    out[i] = static_cast<std::uint8_t>(mac >> (8 * (5 - i)));
  }
}

std::uint64_t UnpackMac(const std::uint8_t* in) {
  std::uint64_t mac = 0;
  for (int i = 0; i < 6; ++i) {
    mac = (mac << 8) | in[i];
  }
  return mac;
}

}  // namespace

void WritePacketHeader(PhysicalMemory& mem, PhysAddr data_pa, const WirePacket& packet) {
  // The written fields form two contiguous runs — [0, 28) and the timestamp
  // at [32, 40) — serialised as two span writes so the page-table lookup is
  // paid twice per header instead of once per field. Bytes in the gap keep
  // whatever the recycled buffer held, exactly as the per-field writes did.
  std::uint8_t fields[kSrcPortOffset + 4];
  PackMac(fields + kDstMacOffset, MacForIp(packet.flow.dst_ip));
  PackMac(fields + kSrcMacOffset, MacForIp(packet.flow.src_ip));
  fields[kEthertypeOffset] = 0x08;
  fields[kEthertypeOffset + 1] = 0x00;  // IPv4
  std::memcpy(fields + kSrcIpOffset, &packet.flow.src_ip, 4);
  std::memcpy(fields + kDstIpOffset, &packet.flow.dst_ip, 4);
  fields[kProtoOffset] = packet.flow.proto;
  fields[kTtlOffset] = 64;
  const std::uint32_t ports = static_cast<std::uint32_t>(packet.flow.src_port) |
                              (static_cast<std::uint32_t>(packet.flow.dst_port) << 16);
  std::memcpy(fields + kSrcPortOffset, &ports, 4);
  mem.Write(data_pa, fields);
  const std::uint64_t stamp = std::bit_cast<std::uint64_t>(packet.tx_time_ns);
  std::uint8_t stamp_bytes[sizeof(stamp)];
  std::memcpy(stamp_bytes, &stamp, sizeof(stamp));
  mem.Write(data_pa + kTimestampOffset, stamp_bytes);
}

ParsedHeader ReadPacketHeader(const PhysicalMemory& mem, PhysAddr data_pa) {
  std::uint8_t raw[kTimestampOffset + 8] = {};
  mem.Read(data_pa, raw);
  ParsedHeader h;
  h.dst_mac = UnpackMac(raw + kDstMacOffset);
  h.src_mac = UnpackMac(raw + kSrcMacOffset);
  std::memcpy(&h.flow.src_ip, raw + kSrcIpOffset, 4);
  std::memcpy(&h.flow.dst_ip, raw + kDstIpOffset, 4);
  h.flow.proto = raw[kProtoOffset];
  h.ttl = raw[kTtlOffset];
  std::uint32_t ports = 0;
  std::memcpy(&ports, raw + kSrcPortOffset, 4);
  h.flow.src_port = static_cast<std::uint16_t>(ports & 0xFFFF);
  h.flow.dst_port = static_cast<std::uint16_t>(ports >> 16);
  std::uint64_t stamp = 0;
  std::memcpy(&stamp, raw + kTimestampOffset, sizeof(stamp));
  h.timestamp_ns = std::bit_cast<Nanoseconds>(stamp);
  return h;
}

void SwapMacAddresses(PhysicalMemory& mem, PhysAddr data_pa) {
  std::uint8_t macs[12] = {};
  mem.Read(data_pa + kDstMacOffset, macs);
  std::uint8_t swapped[12];
  std::memcpy(swapped, macs + 6, 6);
  std::memcpy(swapped + 6, macs, 6);
  mem.Write(data_pa + kDstMacOffset, swapped);
}

void RewriteIpAndPort(PhysicalMemory& mem, PhysAddr data_pa, std::uint32_t new_ip,
                      std::uint16_t new_port, bool rewrite_source) {
  if (rewrite_source) {
    mem.WriteU32(data_pa + kSrcIpOffset, new_ip);
    const std::uint32_t ports = mem.ReadU32(data_pa + kSrcPortOffset);
    mem.WriteU32(data_pa + kSrcPortOffset, (ports & 0xFFFF'0000u) | new_port);
  } else {
    mem.WriteU32(data_pa + kDstIpOffset, new_ip);
    const std::uint32_t ports = mem.ReadU32(data_pa + kSrcPortOffset);
    mem.WriteU32(data_pa + kSrcPortOffset,
                 (ports & 0xFFFFu) | (static_cast<std::uint32_t>(new_port) << 16));
  }
}

void DecrementTtl(PhysicalMemory& mem, PhysAddr data_pa) {
  const std::uint8_t ttl = mem.ReadU8(data_pa + kTtlOffset);
  mem.WriteU8(data_pa + kTtlOffset,
              ttl == 0 ? std::uint8_t{0} : static_cast<std::uint8_t>(ttl - 1));
}

}  // namespace cachedir
