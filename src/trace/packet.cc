#include "src/trace/packet.h"

#include <bit>
#include <cstring>

namespace cachedir {
namespace {

// Deterministic MACs derived from IPs; good enough for a simulated L2.
std::uint64_t MacForIp(std::uint32_t ip) { return 0x02'00'00'00'00'00ull | ip; }

void WriteMac(PhysicalMemory& mem, PhysAddr addr, std::uint64_t mac) {
  std::uint8_t bytes[6];
  for (int i = 0; i < 6; ++i) {
    bytes[i] = static_cast<std::uint8_t>(mac >> (8 * (5 - i)));
  }
  mem.Write(addr, bytes);
}

std::uint64_t ReadMac(const PhysicalMemory& mem, PhysAddr addr) {
  std::uint8_t bytes[6] = {};
  mem.Read(addr, bytes);
  std::uint64_t mac = 0;
  for (int i = 0; i < 6; ++i) {
    mac = (mac << 8) | bytes[i];
  }
  return mac;
}

}  // namespace

void WritePacketHeader(PhysicalMemory& mem, PhysAddr data_pa, const WirePacket& packet) {
  WriteMac(mem, data_pa + kDstMacOffset, MacForIp(packet.flow.dst_ip));
  WriteMac(mem, data_pa + kSrcMacOffset, MacForIp(packet.flow.src_ip));
  mem.WriteU8(data_pa + kEthertypeOffset, 0x08);
  mem.WriteU8(data_pa + kEthertypeOffset + 1, 0x00);  // IPv4
  mem.WriteU32(data_pa + kSrcIpOffset, packet.flow.src_ip);
  mem.WriteU32(data_pa + kDstIpOffset, packet.flow.dst_ip);
  mem.WriteU8(data_pa + kProtoOffset, packet.flow.proto);
  mem.WriteU8(data_pa + kTtlOffset, 64);
  mem.WriteU32(data_pa + kSrcPortOffset,
               static_cast<std::uint32_t>(packet.flow.src_port) |
                   (static_cast<std::uint32_t>(packet.flow.dst_port) << 16));
  mem.WriteU64(data_pa + kTimestampOffset, std::bit_cast<std::uint64_t>(packet.tx_time_ns));
}

ParsedHeader ReadPacketHeader(const PhysicalMemory& mem, PhysAddr data_pa) {
  ParsedHeader h;
  h.dst_mac = ReadMac(mem, data_pa + kDstMacOffset);
  h.src_mac = ReadMac(mem, data_pa + kSrcMacOffset);
  h.flow.src_ip = mem.ReadU32(data_pa + kSrcIpOffset);
  h.flow.dst_ip = mem.ReadU32(data_pa + kDstIpOffset);
  h.flow.proto = mem.ReadU8(data_pa + kProtoOffset);
  h.ttl = mem.ReadU8(data_pa + kTtlOffset);
  const std::uint32_t ports = mem.ReadU32(data_pa + kSrcPortOffset);
  h.flow.src_port = static_cast<std::uint16_t>(ports & 0xFFFF);
  h.flow.dst_port = static_cast<std::uint16_t>(ports >> 16);
  h.timestamp_ns = std::bit_cast<Nanoseconds>(mem.ReadU64(data_pa + kTimestampOffset));
  return h;
}

void SwapMacAddresses(PhysicalMemory& mem, PhysAddr data_pa) {
  const std::uint64_t dst = ReadMac(mem, data_pa + kDstMacOffset);
  const std::uint64_t src = ReadMac(mem, data_pa + kSrcMacOffset);
  WriteMac(mem, data_pa + kDstMacOffset, src);
  WriteMac(mem, data_pa + kSrcMacOffset, dst);
}

void RewriteIpAndPort(PhysicalMemory& mem, PhysAddr data_pa, std::uint32_t new_ip,
                      std::uint16_t new_port, bool rewrite_source) {
  if (rewrite_source) {
    mem.WriteU32(data_pa + kSrcIpOffset, new_ip);
    const std::uint32_t ports = mem.ReadU32(data_pa + kSrcPortOffset);
    mem.WriteU32(data_pa + kSrcPortOffset, (ports & 0xFFFF'0000u) | new_port);
  } else {
    mem.WriteU32(data_pa + kDstIpOffset, new_ip);
    const std::uint32_t ports = mem.ReadU32(data_pa + kSrcPortOffset);
    mem.WriteU32(data_pa + kSrcPortOffset,
                 (ports & 0xFFFFu) | (static_cast<std::uint32_t>(new_port) << 16));
  }
}

void DecrementTtl(PhysicalMemory& mem, PhysAddr data_pa) {
  const std::uint8_t ttl = mem.ReadU8(data_pa + kTtlOffset);
  mem.WriteU8(data_pa + kTtlOffset,
              ttl == 0 ? std::uint8_t{0} : static_cast<std::uint8_t>(ttl - 1));
}

}  // namespace cachedir
