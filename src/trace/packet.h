// Wire-level packet representation and the in-memory header layout.
//
// The load generator produces WirePackets (flow, size, departure timestamp);
// the simulated NIC materialises each one into mbuf memory by writing an
// Ethernet/IPv4/TCP-style header into the first 64 B of the data area plus
// the LoadGen timestamp in the payload — the measurement method of §5
// ("black box" latency: timestamp written by LoadGen, read back on return).
#ifndef CACHEDIRECTOR_SRC_TRACE_PACKET_H_
#define CACHEDIRECTOR_SRC_TRACE_PACKET_H_

#include <cstdint>
#include <functional>

#include "src/mem/physical_memory.h"
#include "src/sim/types.h"

namespace cachedir {

// 5-tuple identifying a flow.
struct FlowKey {
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t proto = 6;  // TCP

  bool operator==(const FlowKey&) const = default;
};

struct FlowKeyHash {
  std::size_t operator()(const FlowKey& k) const {
    // FNV-1a over the tuple fields; also reused as the NIC's RSS hash.
    std::uint64_t h = 0xcbf29ce484222325ull;
    const auto mix = [&h](std::uint64_t v) {
      h ^= v;
      h *= 0x100000001b3ull;
    };
    mix(k.src_ip);
    mix(k.dst_ip);
    mix(k.src_port);
    mix(k.dst_port);
    mix(k.proto);
    return static_cast<std::size_t>(h);
  }
};

// A packet on the wire, before it touches the DuT.
struct WirePacket {
  std::uint64_t id = 0;
  FlowKey flow;
  std::uint32_t size_bytes = 64;   // L2 frame size
  Nanoseconds tx_time_ns = 0;      // LoadGen departure timestamp
};

// Byte offsets of header fields inside the packet data area. The entire
// header (plus the measurement timestamp) fits in the first cache line,
// which is the 64 B unit CacheDirector steers.
inline constexpr std::size_t kDstMacOffset = 0;    // 6 B
inline constexpr std::size_t kSrcMacOffset = 6;    // 6 B
inline constexpr std::size_t kEthertypeOffset = 12;  // 2 B
inline constexpr std::size_t kSrcIpOffset = 14;    // 4 B
inline constexpr std::size_t kDstIpOffset = 18;    // 4 B
inline constexpr std::size_t kProtoOffset = 22;    // 1 B
inline constexpr std::size_t kTtlOffset = 23;      // 1 B
inline constexpr std::size_t kSrcPortOffset = 24;  // 2 B
inline constexpr std::size_t kDstPortOffset = 26;  // 2 B
inline constexpr std::size_t kTimestampOffset = 32;  // 8 B, LoadGen stamp
inline constexpr std::size_t kHeaderBytes = 64;

// Serialises the header fields of `packet` into simulated memory at
// `data_pa` (the start of an mbuf's data area).
void WritePacketHeader(PhysicalMemory& mem, PhysAddr data_pa, const WirePacket& packet);

// Parsed view read back from simulated memory.
struct ParsedHeader {
  std::uint64_t dst_mac = 0;
  std::uint64_t src_mac = 0;
  FlowKey flow;
  std::uint8_t ttl = 0;
  Nanoseconds timestamp_ns = 0;
};

ParsedHeader ReadPacketHeader(const PhysicalMemory& mem, PhysAddr data_pa);

// Header mutators used by the network functions.
void SwapMacAddresses(PhysicalMemory& mem, PhysAddr data_pa);
void RewriteIpAndPort(PhysicalMemory& mem, PhysAddr data_pa, std::uint32_t new_ip,
                      std::uint16_t new_port, bool rewrite_source);
void DecrementTtl(PhysicalMemory& mem, PhysAddr data_pa);

}  // namespace cachedir

#endif  // CACHEDIRECTOR_SRC_TRACE_PACKET_H_
