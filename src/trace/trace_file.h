// Packet-trace serialisation.
//
// The paper replays a real campus trace; this repo generates a synthetic
// equivalent, but users with their own traces (or who want byte-identical
// reruns across machines) can persist and reload them. Simple versioned
// binary format: fixed header, then one fixed-size record per packet.
#ifndef CACHEDIRECTOR_SRC_TRACE_TRACE_FILE_H_
#define CACHEDIRECTOR_SRC_TRACE_TRACE_FILE_H_

#include <string>
#include <vector>

#include "src/trace/packet.h"

namespace cachedir {

// Writes the trace to `path`. Throws std::runtime_error on I/O failure.
void SaveTrace(const std::string& path, const std::vector<WirePacket>& packets);

// Reads a trace written by SaveTrace. Throws std::runtime_error on I/O
// failure, bad magic/version, or a truncated file.
std::vector<WirePacket> LoadTrace(const std::string& path);

}  // namespace cachedir

#endif  // CACHEDIRECTOR_SRC_TRACE_TRACE_FILE_H_
