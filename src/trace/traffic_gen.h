// Synthetic load generator.
//
// Stands in for the paper's LoadGen server replaying a campus trace: the
// size mix matches the published statistics (26.9% of frames < 100 B, 11.8%
// in 100-500 B, the rest >= 500 B), flows are drawn from a configurable flow
// population, and departures are paced to an offered rate in Gbps (counting
// the 20 B Ethernet preamble+IFG overhead, as wire-rate math must) or to a
// fixed packets-per-second rate (the paper's 1000 pps low-rate runs).
#ifndef CACHEDIRECTOR_SRC_TRACE_TRAFFIC_GEN_H_
#define CACHEDIRECTOR_SRC_TRACE_TRAFFIC_GEN_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/sim/rng.h"
#include "src/trace/packet.h"

namespace cachedir {

struct TrafficConfig {
  enum class SizeMode {
    kFixed,      // all frames `fixed_size` bytes
    kCampusMix,  // the paper's trace mix
  };
  enum class RateMode {
    kGbps,  // offered load in Gbps on the wire
    kPps,   // fixed packets per second
  };
  enum class Spacing {
    kPaced,    // deterministic inter-departure gaps
    kPoisson,  // exponential gaps with the same mean
  };

  SizeMode size_mode = SizeMode::kCampusMix;
  std::uint32_t fixed_size = 64;
  RateMode rate_mode = RateMode::kGbps;
  double rate_gbps = 100.0;
  double rate_pps = 1000.0;
  Spacing spacing = Spacing::kPaced;
  std::size_t num_flows = 4096;
  std::uint64_t seed = 1;
};

// Ethernet preamble + inter-frame gap charged per frame on the wire.
inline constexpr double kWireOverheadBytes = 20.0;

class TrafficGenerator {
 public:
  explicit TrafficGenerator(const TrafficConfig& config);

  // Next packet; departure timestamps increase monotonically.
  WirePacket Next();

  // Block production for the burst dataplane: fills `out` with the next
  // out.size() packets — the exact sequence repeated Next() calls produce —
  // into caller-owned storage, so a bench harness can reuse one buffer
  // across warm-up/measurement phases and repetitions without reallocating.
  void GenerateBlock(std::span<WirePacket> out);

  // Convenience: materialise a whole run.
  std::vector<WirePacket> Generate(std::size_t count);

  const TrafficConfig& config() const { return config_; }

  // Size-mix accounting over everything generated so far (Table 2 check).
  struct SizeMixStats {
    std::uint64_t total = 0;
    std::uint64_t under_100 = 0;
    std::uint64_t from_100_to_500 = 0;
    std::uint64_t over_500 = 0;
    double mean_size = 0;
  };
  SizeMixStats size_mix() const;

 private:
  std::uint32_t SampleSize();
  double GapForSize(std::uint32_t size_bytes);

  TrafficConfig config_;
  Rng rng_;
  std::vector<FlowKey> flows_;
  std::uint64_t next_id_ = 0;
  Nanoseconds clock_ns_ = 0;
  std::uint64_t size_sum_ = 0;
  SizeMixStats mix_;
};

}  // namespace cachedir

#endif  // CACHEDIRECTOR_SRC_TRACE_TRAFFIC_GEN_H_
