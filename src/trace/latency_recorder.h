// End-to-end measurement capture on the LoadGen side.
//
// Mirrors the paper's black-box method: the DuT returns each packet carrying
// its original departure timestamp; latency is return time minus departure
// time; throughput is delivered wire bits over the observation window. The
// constant "loopback" component (LoadGen queuing + link) is modelled as a
// configured offset so benches can either add or subtract it exactly the way
// the paper reports its numbers.
#ifndef CACHEDIRECTOR_SRC_TRACE_LATENCY_RECORDER_H_
#define CACHEDIRECTOR_SRC_TRACE_LATENCY_RECORDER_H_

#include <cstdint>
#include <span>

#include "src/stats/summary.h"
#include "src/sim/types.h"
#include "src/trace/traffic_gen.h"

namespace cachedir {

// One delivery staged by the burst dataplane for a batched append.
struct DeliveryRecord {
  WirePacket wire;
  Nanoseconds return_ns = 0;
  Nanoseconds latency_start_ns = 0;
};

class LatencyRecorder {
 public:
  LatencyRecorder() = default;

  // Records a delivery. `latency_start_ns` is the reference the latency is
  // measured from: the LoadGen departure stamp for raw end-to-end numbers,
  // or the DuT-port arrival for the paper's loopback-subtracted numbers.
  void RecordDelivery(const WirePacket& packet, Nanoseconds return_time_ns,
                      Nanoseconds latency_start_ns) {
    latencies_us_.Add((return_time_ns - latency_start_ns) / 1000.0);
    delivered_bits_ += (packet.size_bytes + kWireOverheadBytes) * 8.0;
    if (return_time_ns > last_return_ns_) {
      last_return_ns_ = return_time_ns;
    }
    if (packet.tx_time_ns < first_tx_ns_ || count_ == 0) {
      first_tx_ns_ = packet.tx_time_ns;
    }
    ++count_;
  }

  void RecordDelivery(const WirePacket& packet, Nanoseconds return_time_ns) {
    RecordDelivery(packet, return_time_ns, packet.tx_time_ns);
  }

  // Batched append from the burst dataplane: identical member updates in
  // record order, so recorder state is bit-identical to per-packet calls
  // (the latency sum and window extrema are order-sensitive only across
  // records, and the order is preserved).
  void RecordDeliveryBatch(std::span<const DeliveryRecord> records) {
    for (const DeliveryRecord& r : records) {
      RecordDelivery(r.wire, r.return_ns, r.latency_start_ns);
    }
  }

  void RecordDrop() { ++drops_; }

  // Pre-sizes the sample store (the NFV runtime knows its measured packet
  // budget up front; hotpath_alloc_test relies on a warm recorder staying
  // allocation-free).
  void Reserve(std::size_t n) { latencies_us_.Reserve(n); }

  // Latency samples in microseconds (the unit of every figure).
  const Samples& latencies_us() const { return latencies_us_; }

  // Yields the sample store, leaving the recorder empty. The NFV driver
  // moves per-run samples (plus their lazily built sort cache) into the
  // cross-run aggregate instead of copying ~2x20k doubles per run.
  Samples TakeLatencies() { return std::move(latencies_us_); }

  std::uint64_t delivered() const { return count_; }
  std::uint64_t drops() const { return drops_; }

  // Goodput over the observation window, in Gbps on the wire.
  double ThroughputGbps() const {
    const double window_ns = last_return_ns_ - first_tx_ns_;
    return window_ns <= 0 ? 0.0 : delivered_bits_ / window_ns;
  }

 private:
  Samples latencies_us_;
  double delivered_bits_ = 0;
  Nanoseconds first_tx_ns_ = 0;
  Nanoseconds last_return_ns_ = 0;
  std::uint64_t count_ = 0;
  std::uint64_t drops_ = 0;
};

}  // namespace cachedir

#endif  // CACHEDIRECTOR_SRC_TRACE_LATENCY_RECORDER_H_
