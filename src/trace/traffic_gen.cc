#include "src/trace/traffic_gen.h"

#include <stdexcept>

namespace cachedir {

TrafficGenerator::TrafficGenerator(const TrafficConfig& config)
    : config_(config), rng_(config.seed) {
  if (config_.num_flows == 0) {
    throw std::invalid_argument("TrafficGenerator: need at least one flow");
  }
  if (config_.size_mode == TrafficConfig::SizeMode::kFixed &&
      (config_.fixed_size < 64 || config_.fixed_size > 1500)) {
    throw std::invalid_argument("TrafficGenerator: frame size must be in 64..1500");
  }
  flows_.reserve(config_.num_flows);
  for (std::size_t i = 0; i < config_.num_flows; ++i) {
    FlowKey f;
    f.src_ip = 0x0A00'0000u + static_cast<std::uint32_t>(rng_.UniformU64(1, 0xFFFFFE));
    f.dst_ip = 0xC0A8'0000u + static_cast<std::uint32_t>(rng_.UniformU64(1, 0xFFFE));
    f.src_port = static_cast<std::uint16_t>(rng_.UniformU64(1024, 65535));
    f.dst_port = static_cast<std::uint16_t>(rng_.UniformU64(1, 1023));
    f.proto = 6;
    flows_.push_back(f);
  }
}

std::uint32_t TrafficGenerator::SampleSize() {
  if (config_.size_mode == TrafficConfig::SizeMode::kFixed) {
    return config_.fixed_size;
  }
  // Campus mix: 26.9% < 100 B; 11.8% in [100, 500); 61.3% >= 500 B. Within
  // the large band most bytes travel in MTU-sized frames.
  const double u = rng_.UniformDouble();
  if (u < 0.269) {
    return static_cast<std::uint32_t>(rng_.UniformU64(64, 99));
  }
  if (u < 0.269 + 0.118) {
    return static_cast<std::uint32_t>(rng_.UniformU64(100, 499));
  }
  if (rng_.Bernoulli(0.7)) {
    return 1500;
  }
  return static_cast<std::uint32_t>(rng_.UniformU64(500, 1499));
}

double TrafficGenerator::GapForSize(std::uint32_t size_bytes) {
  double mean_gap_ns = 0;
  if (config_.rate_mode == TrafficConfig::RateMode::kPps) {
    mean_gap_ns = 1e9 / config_.rate_pps;
  } else {
    const double bits = (static_cast<double>(size_bytes) + kWireOverheadBytes) * 8.0;
    mean_gap_ns = bits / config_.rate_gbps;  // Gbps == bits per ns
  }
  if (config_.spacing == TrafficConfig::Spacing::kPoisson) {
    return rng_.Exponential(mean_gap_ns);
  }
  return mean_gap_ns;
}

WirePacket TrafficGenerator::Next() {
  WirePacket p;
  p.id = next_id_++;
  p.flow = flows_[rng_.UniformIndex(flows_.size())];
  p.size_bytes = SampleSize();
  clock_ns_ += GapForSize(p.size_bytes);
  p.tx_time_ns = clock_ns_;

  ++mix_.total;
  size_sum_ += p.size_bytes;
  if (p.size_bytes < 100) {
    ++mix_.under_100;
  } else if (p.size_bytes < 500) {
    ++mix_.from_100_to_500;
  } else {
    ++mix_.over_500;
  }
  return p;
}

void TrafficGenerator::GenerateBlock(std::span<WirePacket> out) {
  for (WirePacket& slot : out) {
    slot = Next();
  }
}

std::vector<WirePacket> TrafficGenerator::Generate(std::size_t count) {
  std::vector<WirePacket> out(count);
  GenerateBlock(out);
  return out;
}

TrafficGenerator::SizeMixStats TrafficGenerator::size_mix() const {
  SizeMixStats s = mix_;
  s.mean_size = s.total == 0 ? 0 : static_cast<double>(size_sum_) / static_cast<double>(s.total);
  return s;
}

}  // namespace cachedir
