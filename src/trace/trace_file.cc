#include "src/trace/trace_file.h"

#include <bit>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace cachedir {
namespace {

constexpr std::uint32_t kMagic = 0x43445452;  // "CDTR"
constexpr std::uint32_t kVersion = 1;

// 40-byte on-disk record, explicitly packed by hand (no struct punning, so
// the format is independent of compiler layout).
constexpr std::size_t kRecordBytes = 40;

void PutU32(std::uint8_t* p, std::uint32_t v) { std::memcpy(p, &v, 4); }
void PutU64(std::uint8_t* p, std::uint64_t v) { std::memcpy(p, &v, 8); }
std::uint32_t GetU32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
std::uint64_t GetU64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

}  // namespace

void SaveTrace(const std::string& path, const std::vector<WirePacket>& packets) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("SaveTrace: cannot open " + path);
  }
  std::uint8_t header[16];
  PutU32(header, kMagic);
  PutU32(header + 4, kVersion);
  PutU64(header + 8, packets.size());
  out.write(reinterpret_cast<const char*>(header), sizeof(header));

  std::uint8_t rec[kRecordBytes];
  for (const WirePacket& p : packets) {
    PutU64(rec, p.id);
    PutU32(rec + 8, p.flow.src_ip);
    PutU32(rec + 12, p.flow.dst_ip);
    PutU32(rec + 16, (static_cast<std::uint32_t>(p.flow.src_port)) |
                         (static_cast<std::uint32_t>(p.flow.dst_port) << 16));
    PutU32(rec + 20, p.flow.proto);
    PutU32(rec + 24, p.size_bytes);
    PutU32(rec + 28, 0);  // reserved
    PutU64(rec + 32, std::bit_cast<std::uint64_t>(p.tx_time_ns));
    out.write(reinterpret_cast<const char*>(rec), sizeof(rec));
  }
  if (!out) {
    throw std::runtime_error("SaveTrace: write failed for " + path);
  }
}

std::vector<WirePacket> LoadTrace(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("LoadTrace: cannot open " + path);
  }
  std::uint8_t header[16];
  in.read(reinterpret_cast<char*>(header), sizeof(header));
  if (!in || in.gcount() != sizeof(header)) {
    throw std::runtime_error("LoadTrace: truncated header in " + path);
  }
  if (GetU32(header) != kMagic) {
    throw std::runtime_error("LoadTrace: bad magic in " + path);
  }
  if (GetU32(header + 4) != kVersion) {
    throw std::runtime_error("LoadTrace: unsupported version in " + path);
  }
  const std::uint64_t count = GetU64(header + 8);

  std::vector<WirePacket> packets;
  packets.reserve(count);
  std::uint8_t rec[kRecordBytes];
  for (std::uint64_t i = 0; i < count; ++i) {
    in.read(reinterpret_cast<char*>(rec), sizeof(rec));
    if (!in || in.gcount() != sizeof(rec)) {
      throw std::runtime_error("LoadTrace: truncated record in " + path);
    }
    WirePacket p;
    p.id = GetU64(rec);
    p.flow.src_ip = GetU32(rec + 8);
    p.flow.dst_ip = GetU32(rec + 12);
    const std::uint32_t ports = GetU32(rec + 16);
    p.flow.src_port = static_cast<std::uint16_t>(ports & 0xFFFF);
    p.flow.dst_port = static_cast<std::uint16_t>(ports >> 16);
    p.flow.proto = static_cast<std::uint8_t>(GetU32(rec + 20));
    p.size_bytes = GetU32(rec + 24);
    p.tx_time_ns = std::bit_cast<Nanoseconds>(GetU64(rec + 32));
    packets.push_back(p);
  }
  return packets;
}

}  // namespace cachedir
