#include "src/mem/hugepage.h"

#include <new>

namespace cachedir {

void Pagemap::Add(const Mapping& m) { by_va_.emplace(m.va, m); }

PhysAddr Pagemap::Translate(VirtAddr va) const {
  PhysAddr pa = 0;
  if (!TryTranslate(va, &pa)) {
    throw std::out_of_range("Pagemap::Translate: unmapped virtual address");
  }
  return pa;
}

bool Pagemap::TryTranslate(VirtAddr va, PhysAddr* out) const {
  auto it = by_va_.upper_bound(va);
  if (it == by_va_.begin()) {
    return false;
  }
  --it;
  const Mapping& m = it->second;
  if (!m.ContainsVa(va)) {
    return false;
  }
  *out = m.pa + (va - m.va);
  return true;
}

HugepageAllocator::HugepageAllocator() : HugepageAllocator(Params{}) {}

HugepageAllocator::HugepageAllocator(const Params& params)
    : params_(params), next_pa_(params.phys_base), next_va_(params.virt_base) {}

namespace {

std::uint64_t RoundUp(std::uint64_t value, std::uint64_t align) {
  return (value + align - 1) / align * align;
}

}  // namespace

Mapping HugepageAllocator::Allocate(std::size_t bytes, PageSize page_size) {
  const std::uint64_t page = static_cast<std::uint64_t>(page_size);
  const std::uint64_t size = RoundUp(bytes == 0 ? 1 : bytes, page);

  const PhysAddr pa = RoundUp(next_pa_, page);
  if (pa + size > params_.phys_limit) {
    throw std::bad_alloc();
  }
  const VirtAddr va = RoundUp(next_va_, page);

  next_pa_ = pa + size;
  next_va_ = va + size;
  bytes_allocated_ += size;

  Mapping m;
  m.va = va;
  m.pa = pa;
  m.size = size;
  m.page_size = page_size;
  pagemap_.Add(m);
  return m;
}

}  // namespace cachedir
