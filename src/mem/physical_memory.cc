#include "src/mem/physical_memory.h"

#include <algorithm>
#include <cstring>

namespace cachedir {

PhysicalMemory::Page& PhysicalMemory::PageFor(PhysAddr addr) {
  const std::uint64_t frame = addr / kPageSize;
  if (frame == memo_frame_) {
    return *memo_page_;
  }
  auto& slot = pages_[frame];
  if (slot == nullptr) {
    slot = std::make_unique<Page>();
    slot->fill(0);
  }
  memo_frame_ = frame;
  memo_page_ = slot.get();
  return *slot;
}

const PhysicalMemory::Page* PhysicalMemory::PageForIfPresent(PhysAddr addr) const {
  const std::uint64_t frame = addr / kPageSize;
  if (frame == memo_frame_) {
    return memo_page_;
  }
  const auto it = pages_.find(frame);
  if (it == pages_.end()) {
    return nullptr;  // absent pages are not memoized; a later Write creates them
  }
  memo_frame_ = frame;
  memo_page_ = it->second.get();
  return memo_page_;
}

void PhysicalMemory::Write(PhysAddr addr, std::span<const std::uint8_t> data) {
  if (data.empty()) {
    return;
  }
  const std::size_t first_offset = addr % kPageSize;
  if (first_offset + data.size() <= kPageSize) {
    // Single-page fast path — nearly every header/field access lands here.
    std::memcpy(PageFor(addr).data() + first_offset, data.data(), data.size());
    return;
  }
  std::size_t written = 0;
  while (written < data.size()) {
    const PhysAddr cur = addr + written;
    const std::size_t offset = cur % kPageSize;
    const std::size_t chunk = std::min(data.size() - written, kPageSize - offset);
    Page& page = PageFor(cur);
    std::memcpy(page.data() + offset, data.data() + written, chunk);
    written += chunk;
  }
}

void PhysicalMemory::Read(PhysAddr addr, std::span<std::uint8_t> out) const {
  if (out.empty()) {
    return;
  }
  const std::size_t first_offset = addr % kPageSize;
  if (first_offset + out.size() <= kPageSize) {
    if (const Page* page = PageForIfPresent(addr)) {
      std::memcpy(out.data(), page->data() + first_offset, out.size());
    } else {
      std::memset(out.data(), 0, out.size());
    }
    return;
  }
  std::size_t read = 0;
  while (read < out.size()) {
    const PhysAddr cur = addr + read;
    const std::size_t offset = cur % kPageSize;
    const std::size_t chunk = std::min(out.size() - read, kPageSize - offset);
    if (const Page* page = PageForIfPresent(cur)) {
      std::memcpy(out.data() + read, page->data() + offset, chunk);
    } else {
      std::memset(out.data() + read, 0, chunk);
    }
    read += chunk;
  }
}

void PhysicalMemory::WriteU64(PhysAddr addr, std::uint64_t value) {
  std::uint8_t buf[sizeof(value)];
  std::memcpy(buf, &value, sizeof(value));
  Write(addr, buf);
}

std::uint64_t PhysicalMemory::ReadU64(PhysAddr addr) const {
  std::uint8_t buf[sizeof(std::uint64_t)] = {};
  Read(addr, buf);
  std::uint64_t value = 0;
  std::memcpy(&value, buf, sizeof(value));
  return value;
}

void PhysicalMemory::WriteU32(PhysAddr addr, std::uint32_t value) {
  std::uint8_t buf[sizeof(value)];
  std::memcpy(buf, &value, sizeof(value));
  Write(addr, buf);
}

std::uint32_t PhysicalMemory::ReadU32(PhysAddr addr) const {
  std::uint8_t buf[sizeof(std::uint32_t)] = {};
  Read(addr, buf);
  std::uint32_t value = 0;
  std::memcpy(&value, buf, sizeof(value));
  return value;
}

void PhysicalMemory::WriteU8(PhysAddr addr, std::uint8_t value) { Write(addr, {&value, 1}); }

std::uint8_t PhysicalMemory::ReadU8(PhysAddr addr) const {
  std::uint8_t value = 0;
  Read(addr, {&value, 1});
  return value;
}

}  // namespace cachedir
