// Sparse simulated physical memory.
//
// Backing storage for everything the simulated applications touch (KVS
// values, packet bytes, routing tables). Pages are materialised on first
// write; reads of untouched memory return zeroes, like freshly faulted
// anonymous pages.
#ifndef CACHEDIRECTOR_SRC_MEM_PHYSICAL_MEMORY_H_
#define CACHEDIRECTOR_SRC_MEM_PHYSICAL_MEMORY_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <unordered_map>

#include "src/sim/types.h"

namespace cachedir {

class PhysicalMemory {
 public:
  static constexpr std::size_t kPageSize = 4096;

  PhysicalMemory() = default;

  // Non-copyable: a machine has one physical memory.
  PhysicalMemory(const PhysicalMemory&) = delete;
  PhysicalMemory& operator=(const PhysicalMemory&) = delete;

  void Write(PhysAddr addr, std::span<const std::uint8_t> data);
  void Read(PhysAddr addr, std::span<std::uint8_t> out) const;

  void WriteU64(PhysAddr addr, std::uint64_t value);
  std::uint64_t ReadU64(PhysAddr addr) const;

  void WriteU32(PhysAddr addr, std::uint32_t value);
  std::uint32_t ReadU32(PhysAddr addr) const;

  void WriteU8(PhysAddr addr, std::uint8_t value);
  std::uint8_t ReadU8(PhysAddr addr) const;

  // Number of 4 kB pages materialised so far (for tests / footprint checks).
  std::size_t resident_pages() const { return pages_.size(); }

 private:
  using Page = std::array<std::uint8_t, kPageSize>;

  Page& PageFor(PhysAddr addr);
  const Page* PageForIfPresent(PhysAddr addr) const;

  std::unordered_map<std::uint64_t, std::unique_ptr<Page>> pages_;
  // Last-touched-page memo: packet-header and KVS accesses cluster on one
  // page, so most lookups skip the hash map. Page storage is stable (owned
  // by unique_ptr, never erased), so the cached pointer cannot dangle. Each
  // simulation owns its memory exclusively (the parallel bench harness gives
  // every repetition its own), so the mutable memo is not shared.
  mutable std::uint64_t memo_frame_ = ~std::uint64_t{0};
  mutable Page* memo_page_ = nullptr;
};

}  // namespace cachedir

#endif  // CACHEDIRECTOR_SRC_MEM_PHYSICAL_MEMORY_H_
