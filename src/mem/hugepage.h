// Simulated hugepage allocation and virtual -> physical translation.
//
// The paper's slice-aware allocator works by (1) mmap-ing a buffer backed by a
// 1 GB hugepage, (2) reading the page's physical address from
// /proc/self/pagemap, and (3) picking the cache lines inside it that hash to
// the wanted slice. This module provides the equivalents: HugepageAllocator
// hands out physically-contiguous regions of the simulated address space, and
// Pagemap translates simulated virtual addresses back to physical ones.
#ifndef CACHEDIRECTOR_SRC_MEM_HUGEPAGE_H_
#define CACHEDIRECTOR_SRC_MEM_HUGEPAGE_H_

#include <cstddef>
#include <map>
#include <stdexcept>
#include <vector>

#include "src/sim/types.h"

namespace cachedir {

enum class PageSize : std::uint64_t {
  k4K = 4ull * 1024,
  k2M = 2ull * 1024 * 1024,
  k1G = 1024ull * 1024 * 1024,
};

// A mapped, physically-contiguous region.
struct Mapping {
  VirtAddr va = 0;
  PhysAddr pa = 0;
  std::size_t size = 0;
  PageSize page_size = PageSize::k4K;

  VirtAddr va_end() const { return va + size; }
  bool ContainsVa(VirtAddr a) const { return a >= va && a < va_end(); }
};

// Translates simulated virtual addresses to physical ones; the stand-in for
// /proc/self/pagemap.
class Pagemap {
 public:
  void Add(const Mapping& m);

  // Throws std::out_of_range for unmapped addresses (a segfault, were this
  // real memory).
  PhysAddr Translate(VirtAddr va) const;

  // Translation when the caller is unsure whether the address is mapped.
  bool TryTranslate(VirtAddr va, PhysAddr* out) const;

  std::size_t num_mappings() const { return by_va_.size(); }

 private:
  std::map<VirtAddr, Mapping> by_va_;  // keyed by mapping start
};

// Hands out hugepage-backed mappings from a simulated zone of free physical
// memory. Physical placement is deliberately *not* at address zero and not
// consecutive across allocations of different page sizes, so tests cannot
// accidentally rely on trivial PA == VA behaviour.
class HugepageAllocator {
 public:
  struct Params {
    PhysAddr phys_base = 0x1'8000'0000;  // 6 GB: above the simulated DMA zone
    PhysAddr phys_limit = 0x20'0000'0000;  // 128 GB socket
    VirtAddr virt_base = 0x7f00'0000'0000;
  };

  HugepageAllocator();
  explicit HugepageAllocator(const Params& params);

  // Allocates `bytes` rounded up to whole pages of `page_size`, physically
  // contiguous, aligned to the page size. Throws std::bad_alloc when the
  // simulated zone is exhausted.
  Mapping Allocate(std::size_t bytes, PageSize page_size);

  const Pagemap& pagemap() const { return pagemap_; }

  std::size_t bytes_allocated() const { return bytes_allocated_; }

 private:
  Params params_;
  PhysAddr next_pa_;
  VirtAddr next_va_;
  std::size_t bytes_allocated_ = 0;
  Pagemap pagemap_;
};

}  // namespace cachedir

#endif  // CACHEDIRECTOR_SRC_MEM_HUGEPAGE_H_
