#include "src/netio/mempool.h"

#include <algorithm>
#include <stdexcept>

namespace cachedir {

Mempool::Mempool(HugepageAllocator& backing, std::size_t num_mbufs,
                 const CacheDirector& director) {
  if (num_mbufs == 0) {
    throw std::invalid_argument("Mempool: need at least one mbuf");
  }
  const std::size_t bytes = num_mbufs * kMbufElementBytes;
  const PageSize page =
      bytes > (512u << 20) ? PageSize::k1G : (bytes > (1u << 21) ? PageSize::k2M : PageSize::k4K);
  const Mapping m = backing.Allocate(bytes, page);

  mbufs_.resize(num_mbufs);
  free_.reserve(num_mbufs);
  for (std::size_t i = 0; i < num_mbufs; ++i) {
    Mbuf& mbuf = mbufs_[i];
    mbuf.struct_pa = m.pa + i * kMbufElementBytes;
    mbuf.buf_pa = mbuf.struct_pa + kMbufStructBytes;
    mbuf.headroom = kDefaultHeadroomBytes;
    director.PrepareMbuf(mbuf);
  }
  // LIFO: hand out low addresses first.
  for (std::size_t i = num_mbufs; i-- > 0;) {
    free_.push_back(&mbufs_[i]);
  }
}

Mbuf* Mempool::Alloc() {
  if (free_.empty()) {
    return nullptr;
  }
  Mbuf* mbuf = free_.back();
  free_.pop_back();
  return mbuf;
}

void Mempool::Free(Mbuf* mbuf) {
  if (mbuf == nullptr) {
    throw std::invalid_argument("Mempool::Free: null mbuf");
  }
  mbuf->data_len = 0;
  free_.push_back(mbuf);
}

std::size_t Mempool::AllocBurst(CoreId /*core*/, std::span<Mbuf*> out) {
  const std::size_t n = std::min(out.size(), free_.size());
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = free_.back();
    free_.pop_back();
  }
  return n;
}

void Mempool::FreeBurst(std::span<Mbuf* const> mbufs) {
  for (Mbuf* mbuf : mbufs) {
    if (mbuf == nullptr) {
      throw std::invalid_argument("Mempool::FreeBurst: null mbuf");
    }
    mbuf->data_len = 0;
    free_.push_back(mbuf);
  }
}

}  // namespace cachedir
