// Simulated DPDK packet buffers (rte_mbuf).
//
// Layout in simulated physical memory mirrors DPDK (paper Fig. 9/10): a
// 128 B metadata struct (two cache lines, one of which holds udata64), then
// a buffer region of headroom + data. Traditional DPDK uses a fixed 128 B
// headroom; CacheDirector reserves up to 832 B (the maximum it measured on
// a campus trace) and slides the data start line-by-line so the packet's
// first 64 B land in the desired LLC slice.
#ifndef CACHEDIRECTOR_SRC_NETIO_MBUF_H_
#define CACHEDIRECTOR_SRC_NETIO_MBUF_H_

#include <array>
#include <cstdint>

#include "src/sim/types.h"
#include "src/trace/packet.h"

namespace cachedir {

// Metadata struct size: two cache lines, like rte_mbuf.
inline constexpr std::size_t kMbufStructBytes = 128;
// Traditional DPDK default headroom (RTE_PKTMBUF_HEADROOM).
inline constexpr std::size_t kDefaultHeadroomBytes = 128;
// CacheDirector's reserved headroom: 13 cache lines (832 B), the maximum
// observed need in the paper's §4.2 trace experiment.
inline constexpr std::size_t kMaxHeadroomBytes = 832;
// Data area preserved after the largest possible headroom.
inline constexpr std::size_t kMbufDataBytes = 2048;
// Full element stride inside a mempool.
inline constexpr std::size_t kMbufElementBytes =
    kMbufStructBytes + kMaxHeadroomBytes + kMbufDataBytes;
// Cache lines the buffer region (headroom + data) can overlap, +1 in case
// buf_pa is not line-aligned.
inline constexpr std::size_t kMbufBufLines =
    (kMaxHeadroomBytes + kMbufDataBytes) / kCacheLineSize + 1;

struct Mbuf {
  // First byte of the metadata struct (2 lines) in simulated memory.
  PhysAddr struct_pa = 0;
  // First byte of the buffer region (headroom + data).
  PhysAddr buf_pa = 0;
  // Current headroom: data starts at buf_pa + headroom.
  std::uint32_t headroom = kDefaultHeadroomBytes;
  // Bytes of packet data currently stored.
  std::uint32_t data_len = 0;
  // DPDK's spare 64-bit user field; CacheDirector packs one 4-bit headroom
  // line count per core here (16 cores max — the paper's scalability note).
  std::uint64_t udata64 = 0;
  // The logical wire packet carried by this buffer (simulation side-car).
  WirePacket wire;
  // When the frame reached the DuT port (after any PAUSE throttling) and
  // when its DMA completed — the reference points for DuT-side latency.
  Nanoseconds nic_rx_start_ns = 0;
  Nanoseconds rx_ready_ns = 0;
  // Per-buffer slice LUT: buf_slices[i] is the LLC slice of line
  // LineBase(buf_pa) + i * kCacheLineSize, filled lazily by the NIC from the hierarchy's
  // own hash on first DMA (host-side memo of a pure address function — the
  // same idea as CacheDirector's udata64 precomputation, extended to every
  // line DMA touches).
  std::array<SliceId, kMbufBufLines> buf_slices{};
  bool buf_slices_ready = false;

  PhysAddr data_pa() const { return buf_pa + headroom; }
};

}  // namespace cachedir

#endif  // CACHEDIRECTOR_SRC_NETIO_MBUF_H_
