#include "src/netio/sorted_mempool.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace cachedir {

SortedMempoolSet::SortedMempoolSet(HugepageAllocator& backing, std::size_t total_mbufs,
                                   std::shared_ptr<const SliceHash> hash,
                                   const SlicePlacement& placement) {
  if (total_mbufs == 0) {
    throw std::invalid_argument("SortedMempoolSet: need at least one mbuf");
  }
  if (hash == nullptr) {
    throw std::invalid_argument("SortedMempoolSet: null slice hash");
  }
  const std::size_t cores = placement.num_cores();
  pools_.resize(cores);
  pool_slice_.resize(cores);
  for (CoreId c = 0; c < cores; ++c) {
    pool_slice_[c] = placement.ClosestSlice(c);
  }

  // For any slice, the core that should receive mbufs landing there: the
  // core with the lowest latency to it (lowest id breaks ties).
  const std::size_t slices = placement.num_slices();
  std::vector<CoreId> core_for_slice(slices, 0);
  for (SliceId s = 0; s < slices; ++s) {
    Cycles best = std::numeric_limits<Cycles>::max();
    for (CoreId c = 0; c < cores; ++c) {
      if (placement.Latency(c, s) < best) {
        best = placement.Latency(c, s);
        core_for_slice[s] = c;
      }
    }
  }

  // Allocate the one big mempool and sort its mbufs (the element layout
  // matches Mempool's so buffers are interchangeable).
  const Mapping m = backing.Allocate(total_mbufs * kMbufElementBytes,
                                     total_mbufs * kMbufElementBytes > (512u << 20)
                                         ? PageSize::k1G
                                         : PageSize::k2M);
  mbufs_.resize(total_mbufs);
  for (std::size_t i = 0; i < total_mbufs; ++i) {
    Mbuf& mbuf = mbufs_[i];
    mbuf.struct_pa = m.pa + i * kMbufElementBytes;
    mbuf.buf_pa = mbuf.struct_pa + kMbufStructBytes;
    mbuf.headroom = kDefaultHeadroomBytes;  // fixed forever: that's the point
    const SliceId data_slice = hash->SliceFor(mbuf.data_pa());
    const CoreId home = core_for_slice[data_slice];
    pools_[home].push_back(&mbuf);
    home_.emplace(&mbuf, home);
  }

  // Fallback order per core: other pools by ascending latency from this
  // core to *their* slice (used only when a pool runs dry).
  fallback_.resize(cores);
  for (CoreId c = 0; c < cores; ++c) {
    std::vector<CoreId> order(cores);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](CoreId a, CoreId b) {
      return placement.Latency(c, pool_slice_[a]) < placement.Latency(c, pool_slice_[b]);
    });
    fallback_[c] = std::move(order);
  }
}

Mbuf* SortedMempoolSet::AllocFor(CoreId core) {
  if (core >= pools_.size()) {
    throw std::invalid_argument("SortedMempoolSet::AllocFor: core out of range");
  }
  for (const CoreId candidate : fallback_[core]) {
    auto& pool = pools_[candidate];
    if (!pool.empty()) {
      Mbuf* mbuf = pool.back();
      pool.pop_back();
      return mbuf;
    }
  }
  return nullptr;
}

void SortedMempoolSet::Free(Mbuf* mbuf) {
  if (mbuf == nullptr) {
    throw std::invalid_argument("SortedMempoolSet::Free: null mbuf");
  }
  mbuf->data_len = 0;
  mbuf->headroom = kDefaultHeadroomBytes;
  pools_[home_.at(mbuf)].push_back(mbuf);
}

std::size_t SortedMempoolSet::AllocBurst(CoreId core, std::span<Mbuf*> out) {
  if (core >= pools_.size()) {
    throw std::invalid_argument("SortedMempoolSet::AllocBurst: core out of range");
  }
  // The theft order re-evaluates from the closest pool after every grab,
  // exactly like repeated AllocFor (a Free between two grabs can refill a
  // closer pool, and the scalar loop would notice) — so walk the fallback
  // list per slot, not per burst.
  std::size_t n = 0;
  while (n < out.size()) {
    Mbuf* mbuf = nullptr;
    for (const CoreId candidate : fallback_[core]) {
      auto& pool = pools_[candidate];
      if (!pool.empty()) {
        mbuf = pool.back();
        pool.pop_back();
        break;
      }
    }
    if (mbuf == nullptr) {
      break;
    }
    out[n++] = mbuf;
  }
  return n;
}

void SortedMempoolSet::FreeBurst(std::span<Mbuf* const> mbufs) {
  for (Mbuf* mbuf : mbufs) {
    Free(mbuf);
  }
}

}  // namespace cachedir
