// CacheDirector (paper §4): slice-aware placement of packet headers.
//
// At mempool-initialisation time, PrepareMbuf computes — for every possible
// consuming core — how many cache lines of headroom make the mbuf's data
// start address land in the best LLC slice that core can reach within the
// headroom window, and packs those counts into udata64 (4 bits per core).
// At descriptor-refill time the NIC driver calls ApplyHeadroom with the
// core that owns the RX queue, which is a single shifted nibble load — the
// paper's "mitigating calculation overhead" design.
#ifndef CACHEDIRECTOR_SRC_NETIO_CACHE_DIRECTOR_H_
#define CACHEDIRECTOR_SRC_NETIO_CACHE_DIRECTOR_H_

#include <memory>

#include "src/hash/slice_hash.h"
#include "src/netio/mbuf.h"
#include "src/slice/placement.h"

namespace cachedir {

class CacheDirector {
 public:
  // Maximum cores encodable in udata64 (4 bits each).
  static constexpr std::size_t kMaxCores = 16;
  // Headroom search window in lines: 0..13 (832 B).
  static constexpr std::uint32_t kMaxHeadroomLines = kMaxHeadroomBytes / kCacheLineSize;

  struct Options {
    bool enabled = true;
    // 0: steer every packet to the single closest slice (the paper's main
    // design). >0: spread packets across ALL slices within `near_tolerance`
    // cycles of the closest — §8's mitigation for DDIO-partition eviction
    // under MTU traffic ("one can use multiple slices for memory allocation
    // as LLC access times are bimodal").
    Cycles near_tolerance = 0;
  };

  // `enabled` false gives a pass-through director (traditional DPDK):
  // headroom is pinned to the 128 B default and udata64 is untouched.
  CacheDirector(std::shared_ptr<const SliceHash> hash, const SlicePlacement& placement,
                bool enabled);
  CacheDirector(std::shared_ptr<const SliceHash> hash, const SlicePlacement& placement,
                const Options& options);

  bool enabled() const { return options_.enabled; }
  const Options& options() const { return options_; }

  // Initialisation-time precomputation (called once per mbuf by the pool).
  void PrepareMbuf(Mbuf& mbuf) const;

  // Driver hook: set the actual headroom for the core about to receive into
  // this mbuf. Runtime cost is one nibble extract.
  void ApplyHeadroom(Mbuf& mbuf, CoreId core) const;

  // The slice the mbuf's data start will occupy for `core` (for tests and
  // the headroom-distribution bench).
  SliceId DataSliceFor(const Mbuf& mbuf, CoreId core) const;

 private:
  std::uint32_t BestHeadroomLines(PhysAddr buf_pa, CoreId core) const;
  std::uint32_t SpreadHeadroomLines(PhysAddr buf_pa, CoreId core) const;

  std::shared_ptr<const SliceHash> hash_;
  const SlicePlacement* placement_;
  Options options_;
};

}  // namespace cachedir

#endif  // CACHEDIRECTOR_SRC_NETIO_CACHE_DIRECTOR_H_
