#include "src/netio/cache_director.h"

#include <limits>
#include <stdexcept>
#include <vector>

namespace cachedir {

CacheDirector::CacheDirector(std::shared_ptr<const SliceHash> hash,
                             const SlicePlacement& placement, bool enabled)
    : CacheDirector(std::move(hash), placement, Options{enabled, 0}) {}

CacheDirector::CacheDirector(std::shared_ptr<const SliceHash> hash,
                             const SlicePlacement& placement, const Options& options)
    : hash_(std::move(hash)), placement_(&placement), options_(options) {
  if (hash_ == nullptr) {
    throw std::invalid_argument("CacheDirector: null slice hash");
  }
  if (placement_->num_cores() > kMaxCores) {
    // udata64 holds 16 nibbles; the paper notes this bounds one-CPU scaling.
    throw std::invalid_argument("CacheDirector: more cores than udata64 nibbles");
  }
}

std::uint32_t CacheDirector::BestHeadroomLines(PhysAddr buf_pa, CoreId core) const {
  std::uint32_t best_lines = 0;
  Cycles best_latency = std::numeric_limits<Cycles>::max();
  for (std::uint32_t k = 0; k <= kMaxHeadroomLines; ++k) {
    const SliceId s = hash_->SliceFor(buf_pa + k * kCacheLineSize);
    const Cycles lat = placement_->Latency(core, s);
    if (lat < best_latency) {
      best_latency = lat;
      best_lines = k;
    }
  }
  return best_lines;
}

std::uint32_t CacheDirector::SpreadHeadroomLines(PhysAddr buf_pa, CoreId core) const {
  // Collect the near-slice set: everything within near_tolerance of the
  // closest. On the Haswell ring with the default tolerance this is the
  // whole cheap parity band (4 slices), quartering the per-slice DDIO
  // pressure that single-slice steering concentrates.
  const SliceId closest = placement_->ClosestSlice(core);
  const Cycles best = placement_->Latency(core, closest);
  std::vector<SliceId> near;
  for (SliceId s = 0; s < placement_->num_slices(); ++s) {
    if (placement_->Latency(core, s) <= best + options_.near_tolerance) {
      near.push_back(s);
    }
  }
  // Deterministic per-mbuf rotation spreads consecutive buffers over the set.
  const SliceId target = near[(buf_pa / kMbufElementBytes) % near.size()];
  for (std::uint32_t k = 0; k <= kMaxHeadroomLines; ++k) {
    if (hash_->SliceFor(buf_pa + k * kCacheLineSize) == target) {
      return k;
    }
  }
  // Rotation target unreachable in this buffer's window: fall back to the
  // best reachable slice.
  return BestHeadroomLines(buf_pa, core);
}

void CacheDirector::PrepareMbuf(Mbuf& mbuf) const {
  if (!options_.enabled) {
    return;
  }
  // The headroom window's slice routing depends only on the buffer address,
  // so hash its 14 lines once and reuse the block for every core instead of
  // re-running the virtual hash cores × 14 times. Selection logic (strict-<
  // keeps the earliest minimum, spread falls back to best) is unchanged.
  SliceId window[kMaxHeadroomLines + 1];
  for (std::uint32_t k = 0; k <= kMaxHeadroomLines; ++k) {
    window[k] = hash_->SliceFor(mbuf.buf_pa + k * kCacheLineSize);
  }
  std::uint64_t packed = 0;
  for (CoreId core = 0; core < placement_->num_cores(); ++core) {
    std::uint64_t lines = 0;
    if (options_.near_tolerance == 0) {
      Cycles best_latency = std::numeric_limits<Cycles>::max();
      for (std::uint32_t k = 0; k <= kMaxHeadroomLines; ++k) {
        const Cycles lat = placement_->Latency(core, window[k]);
        if (lat < best_latency) {
          best_latency = lat;
          lines = k;
        }
      }
    } else {
      lines = SpreadHeadroomLines(mbuf.buf_pa, core);
    }
    packed |= lines << (4 * core);
  }
  mbuf.udata64 = packed;
}

void CacheDirector::ApplyHeadroom(Mbuf& mbuf, CoreId core) const {
  if (!options_.enabled) {
    mbuf.headroom = kDefaultHeadroomBytes;
    return;
  }
  const auto lines = static_cast<std::uint32_t>((mbuf.udata64 >> (4 * core)) & 0xF);
  mbuf.headroom = lines * static_cast<std::uint32_t>(kCacheLineSize);
}

SliceId CacheDirector::DataSliceFor(const Mbuf& mbuf, CoreId core) const {
  Mbuf copy = mbuf;
  ApplyHeadroom(copy, core);
  return hash_->SliceFor(copy.data_pa());
}

}  // namespace cachedir
