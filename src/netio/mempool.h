// Fixed-size mbuf pool carved out of hugepage memory (librte_mempool).
//
// All elements are laid out contiguously inside one hugepage-backed mapping;
// CacheDirector's per-mbuf precomputation runs once here, at pool-creation
// time, so the data path never searches for slices.
#ifndef CACHEDIRECTOR_SRC_NETIO_MEMPOOL_H_
#define CACHEDIRECTOR_SRC_NETIO_MEMPOOL_H_

#include <span>
#include <vector>

#include "src/mem/hugepage.h"
#include "src/netio/cache_director.h"
#include "src/netio/mbuf.h"

namespace cachedir {

// Source of RX buffers for the NIC driver. Implementations: Mempool (one
// shared pool, paper's application-agnostic design) and SortedMempoolSet
// (per-core pools pre-sorted by slice, the paper's §4.2 alternative).
class MbufSource {
 public:
  virtual ~MbufSource() = default;

  // An mbuf suitable for a packet that core `core` will consume, or nullptr
  // when exhausted.
  virtual Mbuf* AllocFor(CoreId core) = 0;

  virtual void Free(Mbuf* mbuf) = 0;

  // Bulk variants for the burst dataplane. Both are semantically the plain
  // loop (AllocBurst hands out the same buffers in the same order as
  // repeated AllocFor; FreeBurst returns them in span order), so free-list
  // state is bit-identical whichever path a driver takes. AllocBurst stops
  // at exhaustion and returns how many slots it filled.
  virtual std::size_t AllocBurst(CoreId core, std::span<Mbuf*> out) {
    std::size_t n = 0;
    while (n < out.size()) {
      Mbuf* mbuf = AllocFor(core);
      if (mbuf == nullptr) {
        break;
      }
      out[n++] = mbuf;
    }
    return n;
  }

  virtual void FreeBurst(std::span<Mbuf* const> mbufs) {
    for (Mbuf* mbuf : mbufs) {
      Free(mbuf);
    }
  }
};

class Mempool : public MbufSource {
 public:
  // `director` may be a disabled pass-through; it must outlive the pool.
  Mempool(HugepageAllocator& backing, std::size_t num_mbufs, const CacheDirector& director);

  // Pops a free mbuf or nullptr when the pool is exhausted.
  Mbuf* Alloc();

  // Returns an mbuf to the pool. Resets data_len; headroom is re-applied by
  // the driver on the next descriptor post.
  void Free(Mbuf* mbuf) override;

  Mbuf* AllocFor(CoreId /*core*/) override { return Alloc(); }

  // Fused LIFO pops/pushes: one virtual dispatch and one bounds computation
  // per burst, same buffers in the same order as the scalar loop.
  std::size_t AllocBurst(CoreId core, std::span<Mbuf*> out) override;
  void FreeBurst(std::span<Mbuf* const> mbufs) override;

  std::size_t capacity() const { return mbufs_.size(); }
  std::size_t available() const { return free_.size(); }

  // Direct element access for tests and pool-level tools.
  const Mbuf& element(std::size_t i) const { return mbufs_[i]; }

 private:
  std::vector<Mbuf> mbufs_;
  std::vector<Mbuf*> free_;  // LIFO free list, like rte_mempool's cache
};

}  // namespace cachedir

#endif  // CACHEDIRECTOR_SRC_NETIO_MEMPOOL_H_
