// Application-level sorted mempools — the paper's §4.2 alternative to the
// driver-level dynamic headroom:
//
//   "an application can allocate one large mempool containing mbufs. Then,
//    it can sort mbufs across multiple mempools, each of which is dedicated
//    to one CPU core, based on their LLC slice mappings."
//
// With a FIXED default headroom, each mbuf's data start already lands in
// some slice; this class bins every mbuf into the pool of the core that
// prefers that slice, so the NIC driver's per-packet headroom write is
// eliminated and no headroom memory is wasted (trade-off: pool sizes follow
// the hash's slice distribution rather than being equal).
#ifndef CACHEDIRECTOR_SRC_NETIO_SORTED_MEMPOOL_H_
#define CACHEDIRECTOR_SRC_NETIO_SORTED_MEMPOOL_H_

#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/hash/slice_hash.h"
#include "src/mem/hugepage.h"
#include "src/netio/mbuf.h"
#include "src/netio/mempool.h"
#include "src/slice/placement.h"

namespace cachedir {

class SortedMempoolSet final : public MbufSource {
 public:
  SortedMempoolSet(HugepageAllocator& backing, std::size_t total_mbufs,
                   std::shared_ptr<const SliceHash> hash, const SlicePlacement& placement);

  // An mbuf whose data start (at the fixed 128 B headroom) maps to the best
  // slice available for `core`; exact-match pools first, then the fallback
  // order established at construction.
  Mbuf* AllocFor(CoreId core) override;

  void Free(Mbuf* mbuf) override;

  // Bulk variants: identical pool/theft-order state evolution to the scalar
  // loop, one virtual dispatch per burst.
  std::size_t AllocBurst(CoreId core, std::span<Mbuf*> out) override;
  void FreeBurst(std::span<Mbuf* const> mbufs) override;

  std::size_t available(CoreId core) const { return pools_[core].size(); }
  std::size_t capacity() const { return mbufs_.size(); }

  // The slice each core's pool serves (== the core's closest slice).
  SliceId PoolSlice(CoreId core) const { return pool_slice_[core]; }

 private:
  std::vector<Mbuf> mbufs_;
  std::vector<std::vector<Mbuf*>> pools_;          // per core
  std::vector<SliceId> pool_slice_;                // per core
  std::vector<std::vector<CoreId>> fallback_;      // per core: theft order
  std::unordered_map<const Mbuf*, CoreId> home_;   // mbuf -> owning pool
};

}  // namespace cachedir

#endif  // CACHEDIRECTOR_SRC_NETIO_SORTED_MEMPOOL_H_
