// Growable power-of-two ring used for the NIC's RX descriptor rings and the
// TX completion queue.
//
// std::deque allocates and frees its block nodes as the head and tail move,
// which puts one hidden heap round-trip on the packet path every few dozen
// entries; this ring reaches its high-water capacity once and then recycles
// in place, keeping the NFV steady state allocation-free
// (tests/hotpath_alloc_test.cc) with plain index arithmetic on the hot
// push/pop paths.
#ifndef CACHEDIRECTOR_SRC_NETIO_RING_QUEUE_H_
#define CACHEDIRECTOR_SRC_NETIO_RING_QUEUE_H_

#include <bit>
#include <cstddef>
#include <vector>

namespace cachedir {

template <typename T>
class RingQueue {
 public:
  RingQueue() = default;
  explicit RingQueue(std::size_t initial_capacity) { Reserve(initial_capacity); }

  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_; }
  std::size_t capacity() const { return buf_.size(); }

  const T& front() const { return buf_[head_]; }
  T& front() { return buf_[head_]; }

  void push_back(const T& value) {
    if (count_ == buf_.size()) {
      Reserve(count_ == 0 ? kMinCapacity : 2 * count_);
    }
    buf_[(head_ + count_) & (buf_.size() - 1)] = value;
    ++count_;
  }

  void pop_front() {
    head_ = (head_ + 1) & (buf_.size() - 1);
    --count_;
  }

  void clear() {
    head_ = 0;
    count_ = 0;
  }

  // Grows storage to at least `capacity` slots (rounded up to a power of
  // two); existing entries keep their order.
  void Reserve(std::size_t capacity) {
    if (capacity <= buf_.size()) {
      return;
    }
    std::vector<T> grown(std::bit_ceil(capacity < kMinCapacity ? kMinCapacity : capacity));
    for (std::size_t i = 0; i < count_; ++i) {
      grown[i] = buf_[(head_ + i) & (buf_.size() - 1)];
    }
    buf_ = std::move(grown);
    head_ = 0;
  }

 private:
  static constexpr std::size_t kMinCapacity = 8;

  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

}  // namespace cachedir

#endif  // CACHEDIRECTOR_SRC_NETIO_RING_QUEUE_H_
