// Simulated 100 GbE NIC with DDIO, RSS and FlowDirector steering.
//
// RX path: packets arrive in departure order; the NIC serialises them
// through a per-packet processing stage (modelling the Mellanox small-packet
// limit the paper cites for its ~76 Gbps ceiling), steers each to a queue,
// takes an mbuf from the queue's descriptor ring, applies the CacheDirector
// headroom for the queue's owning core, writes the packet into simulated
// memory and DMA-fills the touched lines into the LLC via DDIO (only the
// first kDdioLines of large packets go through DDIO's way partition — the
// whole packet still lands in LLC, which is what makes 1500 B traffic evict
// aggressively, §8).
//
// TX path: the NIC DMA-reads the packet bytes and returns the mbuf to the
// pool.
#ifndef CACHEDIRECTOR_SRC_NETIO_NIC_H_
#define CACHEDIRECTOR_SRC_NETIO_NIC_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/cache/hierarchy.h"
#include "src/mem/physical_memory.h"
#include "src/netio/cache_director.h"
#include "src/netio/mempool.h"
#include "src/netio/ring_queue.h"
#include "src/trace/packet.h"

namespace cachedir {

enum class NicSteering {
  kRss,           // queue = hash(5-tuple) % num_queues
  kFlowDirector,  // per-flow rules, least-loaded assignment on first packet
};

struct NicQueueStats {
  std::uint64_t delivered = 0;
  std::uint64_t dropped_ring_full = 0;
  std::uint64_t dropped_no_mbuf = 0;
  std::uint64_t dropped_ingress = 0;  // MAC FIFO overflow (NIC pps cap)
};

// A packet sitting in an RX ring, ready for the core at `ready_ns`.
struct RxEntry {
  Mbuf* mbuf = nullptr;
  Nanoseconds ready_ns = 0;
};

class SimNic {
 public:
  struct Config {
    std::size_t num_queues = 8;
    std::size_t ring_size = 512;
    NicSteering steering = NicSteering::kRss;
    // Per-packet RX processing floor. 1e3/10.8 ns/packet caps the NIC at
    // ~10.8 Mpps, which on the campus mix reproduces the ~76 Gbps ceiling
    // of Table 3.
    double min_packet_gap_ns = 92.6;
    // Bound on how far the RX engine may lag the wire before frames are
    // lost. The default (effectively infinite) models Ethernet PAUSE
    // frames — enabled on the paper's testbed — where the LoadGen throttles
    // instead of the NIC dropping; set a finite bound to model a MAC FIFO
    // without flow control.
    double max_ingress_delay_ns = 1e15;
    // Fixed RX pipeline latency (MAC + PCIe + DMA engine) added to every
    // frame's ready time.
    double rx_pipeline_latency_ns = 1500.0;
    // Egress line rate; TX frames serialise at wire pace and buffers are
    // reclaimed only once transmitted.
    double tx_line_rate_gbps = 100.0;
  };

  SimNic(const Config& config, MemoryHierarchy& hierarchy, PhysicalMemory& memory,
         MbufSource& pool, const CacheDirector& director);

  std::size_t num_queues() const { return config_.num_queues; }

  // Queue -> core mapping is the identity (run-to-completion model).
  static CoreId CoreForQueue(std::size_t queue) { return static_cast<CoreId>(queue); }

  std::size_t QueueForPacket(const WirePacket& packet);

  // Pushes one wire packet through the RX pipeline. Returns true if it was
  // placed in a ring, false if dropped.
  bool Deliver(const WirePacket& packet);

  // Descriptor burst: pushes `packets` through the RX pipeline in order
  // (each frame's lines still reach the LLC via one fused DmaWriteRange)
  // and returns how many landed in a ring. Identical per-packet serialisation
  // and drop decisions to calling Deliver in a loop.
  std::size_t DeliverBurst(std::span<const WirePacket> packets);

  // Queue index the most recent successful Deliver enqueued to (the runtime
  // uses it to refresh its per-queue scheduling memo).
  std::size_t last_rx_queue() const { return last_rx_queue_; }

  // Core-side ring access (the PMD polls these).
  bool RxEmpty(std::size_t queue) const { return rx_[queue].empty(); }
  const RxEntry& RxHead(std::size_t queue) const { return rx_[queue].front(); }
  Mbuf* RxPop(std::size_t queue);

  // Pops up to out.size() packets from the front of `queue` in ring order —
  // the same buffers repeated RxPop would return. Each popped mbuf's
  // rx_ready_ns equals the ring entry's ready time.
  std::size_t RxPopBurst(std::size_t queue, std::span<Mbuf*> out);

  // TX: DMA-read the frame and recycle the buffer immediately (tests and
  // simple drivers).
  void Transmit(Mbuf* mbuf);

  // TX with wire serialisation: the frame occupies the egress line from
  // max(tx busy, now); the buffer returns to the pool once transmitted.
  // Returns the wire-departure time (the DuT-side end of the packet's
  // latency). Also reclaims previously completed TX buffers.
  Nanoseconds TransmitAt(Mbuf* mbuf, Nanoseconds now);

  // TransmitAt, split for deferred-timing callers (the NFV runtime's
  // epoch-engine drain): TxDma issues the frame's DMA read — the only
  // simulated-memory work, so it can be captured while `now` is still
  // unknown — and TxWireAt later schedules the wire occupancy and reclaims
  // completed buffers. TransmitAt(m, t) == TxDma(m) then TxWireAt(m, t):
  // ReclaimTx commutes with the DMA because it only touches the buffer pool.
  void TxDma(Mbuf* mbuf);
  Nanoseconds TxWireAt(Mbuf* mbuf, Nanoseconds now);

  // Returns buffers whose TX completed by `now` to the pool.
  void ReclaimTx(Nanoseconds now);
  // Drains the TX queue unconditionally (end of a simulation run).
  void FlushTx();
  std::size_t tx_in_flight() const { return tx_pending_.size(); }

  const NicQueueStats& queue_stats(std::size_t queue) const { return stats_[queue]; }
  NicQueueStats TotalStats() const;

  Nanoseconds nic_time_ns() const { return nic_time_ns_; }

  // How many lines of each packet DDIO writes through its way partition.
  static constexpr std::size_t kMaxDmaLines = 24;  // 1500 B

 private:
  // The mbuf's slice LUT starting at `addr`'s line, filling it on first use
  // (each buffer is hashed once per simulation, then every RX/TX DMA of it
  // skips the per-line Complex Addressing hash). Inline: sits on the
  // per-packet RX and TX paths.
  std::span<const SliceId> BufSlices(Mbuf& mbuf, PhysAddr addr) {
    const PhysAddr base = LineBase(mbuf.buf_pa);
    if (!mbuf.buf_slices_ready) {
      for (std::size_t i = 0; i < kMbufBufLines; ++i) {
        mbuf.buf_slices[i] = hierarchy_.llc().SliceOf(base + i * kCacheLineSize);
      }
      mbuf.buf_slices_ready = true;
    }
    const std::size_t offset = (LineBase(addr) - base) / kCacheLineSize;
    return {mbuf.buf_slices.data() + offset, kMbufBufLines - offset};
  }

  Config config_;
  MemoryHierarchy& hierarchy_;
  PhysicalMemory& memory_;
  MbufSource& pool_;
  const CacheDirector& director_;

  struct TxEntry {
    Mbuf* mbuf = nullptr;
    Nanoseconds done_ns = 0;
  };

  std::vector<RingQueue<RxEntry>> rx_;
  std::vector<NicQueueStats> stats_;
  std::unordered_map<FlowKey, std::size_t, FlowKeyHash> flow_rules_;
  std::vector<std::uint64_t> queue_load_;  // FlowDirector least-loaded state
  Nanoseconds nic_time_ns_ = 0;
  Nanoseconds tx_time_ns_ = 0;
  RingQueue<TxEntry> tx_pending_;
  std::size_t last_rx_queue_ = 0;
};

}  // namespace cachedir

#endif  // CACHEDIRECTOR_SRC_NETIO_NIC_H_
