#include "src/netio/nic.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "src/trace/traffic_gen.h"  // kWireOverheadBytes

namespace cachedir {

SimNic::SimNic(const Config& config, MemoryHierarchy& hierarchy, PhysicalMemory& memory,
               MbufSource& pool, const CacheDirector& director)
    : config_(config),
      hierarchy_(hierarchy),
      memory_(memory),
      pool_(pool),
      director_(director),
      rx_(config.num_queues),
      stats_(config.num_queues),
      queue_load_(config.num_queues, 0) {
  if (config_.num_queues == 0 || config_.num_queues > hierarchy.spec().num_cores) {
    throw std::invalid_argument("SimNic: queues must be 1..num_cores");
  }
  if (config_.ring_size == 0) {
    throw std::invalid_argument("SimNic: ring_size must be positive");
  }
  // Rings never hold more than ring_size entries (Deliver checks first), so
  // sizing them here keeps the whole RX path allocation-free afterwards.
  for (RingQueue<RxEntry>& ring : rx_) {
    ring.Reserve(config_.ring_size);
  }
}

std::size_t SimNic::QueueForPacket(const WirePacket& packet) {
  if (config_.steering == NicSteering::kRss) {
    return FlowKeyHash{}(packet.flow) % config_.num_queues;
  }
  // FlowDirector: a matched rule pins the flow; new flows get the currently
  // least-loaded queue (modelling the better balance the paper observed).
  const auto it = flow_rules_.find(packet.flow);
  if (it != flow_rules_.end()) {
    ++queue_load_[it->second];
    return it->second;
  }
  const std::size_t queue =
      std::min_element(queue_load_.begin(), queue_load_.end()) - queue_load_.begin();
  flow_rules_.emplace(packet.flow, queue);
  ++queue_load_[queue];
  return queue;
}

bool SimNic::Deliver(const WirePacket& packet) {
  // NIC RX engine serialisation: one packet at a time, bounded rate.
  const Nanoseconds start = std::max(nic_time_ns_, packet.tx_time_ns);

  const std::size_t queue = QueueForPacket(packet);
  if (start - packet.tx_time_ns > config_.max_ingress_delay_ns) {
    // The RX engine is too far behind the wire: the MAC FIFO overflowed.
    ++stats_[queue].dropped_ingress;
    return false;
  }
  nic_time_ns_ = start + config_.min_packet_gap_ns;
  if (rx_[queue].size() >= config_.ring_size) {
    ++stats_[queue].dropped_ring_full;
    return false;
  }
  Mbuf* mbuf = pool_.AllocFor(CoreForQueue(queue));
  if (mbuf == nullptr) {
    ++stats_[queue].dropped_no_mbuf;
    return false;
  }

  // The driver posted this descriptor with the headroom pre-set for the
  // queue's owning core (paper: "just before giving the address to the NIC").
  director_.ApplyHeadroom(*mbuf, CoreForQueue(queue));

  mbuf->wire = packet;
  mbuf->nic_rx_start_ns = start;
  mbuf->rx_ready_ns = nic_time_ns_ + config_.rx_pipeline_latency_ns;
  mbuf->data_len = std::min<std::uint32_t>(packet.size_bytes, kMbufDataBytes);
  WritePacketHeader(memory_, mbuf->data_pa(), packet);

  // DDIO: every line of the frame is written into the LLC in one fused batch.
  hierarchy_.DmaWriteRange(mbuf->data_pa(), mbuf->data_len, BufSlices(*mbuf, mbuf->data_pa()));

  rx_[queue].push_back(RxEntry{mbuf, mbuf->rx_ready_ns});
  ++stats_[queue].delivered;
  last_rx_queue_ = queue;
  return true;
}

std::size_t SimNic::DeliverBurst(std::span<const WirePacket> packets) {
  std::size_t delivered = 0;
  for (const WirePacket& packet : packets) {
    delivered += Deliver(packet) ? 1 : 0;
  }
  return delivered;
}

Mbuf* SimNic::RxPop(std::size_t queue) {
  if (rx_[queue].empty()) {
    return nullptr;
  }
  Mbuf* mbuf = rx_[queue].front().mbuf;
  rx_[queue].pop_front();
  return mbuf;
}

std::size_t SimNic::RxPopBurst(std::size_t queue, std::span<Mbuf*> out) {
  RingQueue<RxEntry>& ring = rx_[queue];
  const std::size_t n = std::min(out.size(), ring.size());
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = ring.front().mbuf;
    ring.pop_front();
  }
  return n;
}

void SimNic::Transmit(Mbuf* mbuf) {
  if (mbuf == nullptr) {
    throw std::invalid_argument("SimNic::Transmit: null mbuf");
  }
  hierarchy_.DmaReadRange(mbuf->data_pa(), mbuf->data_len, BufSlices(*mbuf, mbuf->data_pa()));
  pool_.Free(mbuf);
}

Nanoseconds SimNic::TransmitAt(Mbuf* mbuf, Nanoseconds now) {
  TxDma(mbuf);
  return TxWireAt(mbuf, now);
}

void SimNic::TxDma(Mbuf* mbuf) {
  if (mbuf == nullptr) {
    throw std::invalid_argument("SimNic::TxDma: null mbuf");
  }
  hierarchy_.DmaReadRange(mbuf->data_pa(), mbuf->data_len, BufSlices(*mbuf, mbuf->data_pa()));
}

Nanoseconds SimNic::TxWireAt(Mbuf* mbuf, Nanoseconds now) {
  ReclaimTx(now);
  const double wire_ns =
      (static_cast<double>(mbuf->data_len) + kWireOverheadBytes) * 8.0 /
      config_.tx_line_rate_gbps;
  const Nanoseconds start = std::max(tx_time_ns_, now);
  tx_time_ns_ = start + wire_ns;
  tx_pending_.push_back(TxEntry{mbuf, tx_time_ns_});
  return tx_time_ns_;
}

void SimNic::ReclaimTx(Nanoseconds now) {
  // Completed buffers return to the pool through FreeBurst in completion
  // order — the free-list state matches per-buffer Free calls exactly.
  constexpr std::size_t kFreeBurst = 64;
  Mbuf* done[kFreeBurst];
  std::size_t n = 0;
  while (!tx_pending_.empty() && tx_pending_.front().done_ns <= now) {
    done[n++] = tx_pending_.front().mbuf;
    tx_pending_.pop_front();
    if (n == kFreeBurst) {
      pool_.FreeBurst({done, n});
      n = 0;
    }
  }
  if (n > 0) {
    pool_.FreeBurst({done, n});
  }
}

void SimNic::FlushTx() {
  ReclaimTx(std::numeric_limits<Nanoseconds>::infinity());
}

NicQueueStats SimNic::TotalStats() const {
  NicQueueStats total;
  for (const NicQueueStats& s : stats_) {
    total.delivered += s.delivered;
    total.dropped_ring_full += s.dropped_ring_full;
    total.dropped_no_mbuf += s.dropped_no_mbuf;
    total.dropped_ingress += s.dropped_ingress;
  }
  return total;
}

}  // namespace cachedir
