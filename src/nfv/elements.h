// Concrete network functions: MAC-swap forwarding, an LPM router, NAPT, and
// a flow-based round-robin load balancer — the NFs of the paper's evaluation
// (§5.1 simple forwarding, §5.2 Router-NAPT-LB).
#ifndef CACHEDIRECTOR_SRC_NFV_ELEMENTS_H_
#define CACHEDIRECTOR_SRC_NFV_ELEMENTS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/cache/hierarchy.h"
#include "src/mem/hugepage.h"
#include "src/mem/physical_memory.h"
#include "src/nfv/element.h"
#include "src/sim/rng.h"
#include "src/trace/packet.h"

namespace cachedir {

// Swaps source and destination MACs and returns the frame — the paper's
// stateless "simple forwarding" application.
class MacSwap final : public Element {
 public:
  MacSwap(MemoryHierarchy& hierarchy, PhysicalMemory& memory)
      : hierarchy_(hierarchy), memory_(memory) {}

  std::string name() const override { return "MacSwap"; }
  ProcessResult Process(CoreId core, Mbuf& mbuf) override;
  void ProcessBurst(CoreId core, std::span<Mbuf* const> burst,
                    std::span<ProcessResult> results) override;

  // Per-packet instruction cost of the full Metron/FastClick forwarding
  // path (classification, batching, element traversal, TX bookkeeping).
  // Calibrated so eight cores run just below the NIC's ~10.8 Mpps feed on
  // the campus mix — the near-critical regime where the paper operates
  // (its delivered rate equals its service capability at ~76 Gbps).
  static constexpr Cycles kFixedCycles = 2050;

 private:
  MemoryHierarchy& hierarchy_;
  PhysicalMemory& memory_;
};

// IPv4 router with a DIR-24-8-style lookup table in simulated memory,
// populated with `num_routes` random /24 routes (the paper's table has 3120
// entries). With `hw_offloaded` the table lookup is done by the NIC's
// FlowDirector (Metron's offloading), leaving only TTL + MAC rewriting in
// software.
class IpRouter final : public Element {
 public:
  struct Params {
    std::size_t num_routes = 3120;
    bool hw_offloaded = false;
    std::uint64_t seed = 101;
  };

  IpRouter(MemoryHierarchy& hierarchy, PhysicalMemory& memory, HugepageAllocator& backing,
           const Params& params);

  std::string name() const override { return "IpRouter"; }
  ProcessResult Process(CoreId core, Mbuf& mbuf) override;
  void ProcessBurst(CoreId core, std::span<Mbuf* const> burst,
                    std::span<ProcessResult> results) override;

  // Installs a /24 route (prefix24 = dst_ip >> 8).
  void InstallRoute(std::uint32_t prefix24, std::uint16_t next_hop);

  std::uint16_t LookupNextHopForTest(std::uint32_t dst_ip) const;

  // Software routing: classification + LPM + header rewrite instructions.
  static constexpr Cycles kFixedCycles = 700;
  // With FlowDirector H/W offloading only TTL/MAC rewriting stays on the CPU.
  static constexpr Cycles kOffloadedFixedCycles = 400;

 private:
  PhysAddr EntryPa(std::uint32_t dst_ip) const {
    return tbl24_.pa + 2 * static_cast<PhysAddr>(dst_ip >> 8);
  }

  MemoryHierarchy& hierarchy_;
  PhysicalMemory& memory_;
  Mapping tbl24_;  // 2^24 x 2 B next-hop entries
  bool hw_offloaded_;
};

// Network Address and Port Translation: per-flow entries in a hash-indexed
// table held in simulated memory; first packet of a flow allocates a
// translation, later packets reuse it. Rewrites source IP:port.
class Napt final : public Element {
 public:
  struct Params {
    std::size_t num_buckets = 1 << 16;  // one cache line per bucket
    std::uint32_t public_ip = 0xC6'33'64'01;  // 198.51.100.1
    std::uint64_t seed = 202;
  };

  Napt(MemoryHierarchy& hierarchy, PhysicalMemory& memory, HugepageAllocator& backing,
       const Params& params);

  std::string name() const override { return "NAPT"; }
  ProcessResult Process(CoreId core, Mbuf& mbuf) override;
  void ProcessBurst(CoreId core, std::span<Mbuf* const> burst,
                    std::span<ProcessResult> results) override;

  std::uint64_t flows_created() const { return flows_created_; }

  static constexpr Cycles kFixedCycles = 780;

 private:
  PhysAddr BucketPa(const FlowKey& flow) const {
    return table_.pa + kCacheLineSize * (FlowKeyHash{}(flow) % num_buckets_);
  }

  MemoryHierarchy& hierarchy_;
  PhysicalMemory& memory_;
  Mapping table_;
  std::size_t num_buckets_;
  std::uint32_t public_ip_;
  std::uint16_t next_port_ = 1024;
  std::uint64_t flows_created_ = 0;
};

// Flow-based round-robin load balancer over `num_backends` servers; sticky
// per flow via a hash-indexed table, rewrites the destination IP.
class LoadBalancer final : public Element {
 public:
  struct Params {
    std::size_t num_buckets = 1 << 16;
    std::uint32_t num_backends = 8;
    std::uint32_t backend_base_ip = 0x0A'63'00'01;  // 10.99.0.1
  };

  LoadBalancer(MemoryHierarchy& hierarchy, PhysicalMemory& memory, HugepageAllocator& backing,
               const Params& params);

  std::string name() const override { return "LoadBalancer"; }
  ProcessResult Process(CoreId core, Mbuf& mbuf) override;
  void ProcessBurst(CoreId core, std::span<Mbuf* const> burst,
                    std::span<ProcessResult> results) override;

  static constexpr Cycles kFixedCycles = 780;

 private:
  PhysAddr BucketPa(const FlowKey& flow) const {
    return table_.pa + kCacheLineSize * (FlowKeyHash{}(flow) % num_buckets_);
  }

  MemoryHierarchy& hierarchy_;
  PhysicalMemory& memory_;
  Mapping table_;
  Mapping rr_counter_;  // one line holding the round-robin cursor
  std::size_t num_buckets_;
  std::uint32_t num_backends_;
  std::uint32_t backend_base_ip_;
};

}  // namespace cachedir

#endif  // CACHEDIRECTOR_SRC_NFV_ELEMENTS_H_
