// Packet-processing element interface (FastClick/Metron style).
//
// Elements run to completion on the core that polled the packet. Every
// element reports the simulated cycles it consumed; memory-induced cycles
// come from MemoryHierarchy accesses (so cache behaviour — and therefore
// CacheDirector — shows up in service time), plus a small fixed
// instruction cost per element.
#ifndef CACHEDIRECTOR_SRC_NFV_ELEMENT_H_
#define CACHEDIRECTOR_SRC_NFV_ELEMENT_H_

#include <span>
#include <string>

#include "src/netio/mbuf.h"
#include "src/sim/types.h"

namespace cachedir {

struct ProcessResult {
  Cycles cycles = 0;
  bool drop = false;
};

class Element {
 public:
  Element() = default;
  virtual ~Element() = default;

  virtual std::string name() const = 0;

  // Processes one packet on `core`, mutating header bytes in simulated
  // memory as needed.
  virtual ProcessResult Process(CoreId core, Mbuf& mbuf) = 0;

  // Burst entry point: processes `burst` packets in order, writing one
  // ProcessResult per packet into `results` (which must be at least as
  // long as `burst`). Overrides MUST issue exactly the hierarchy accesses
  // Process would issue, packet by packet in burst order — the burst path
  // amortises host-side costs (virtual dispatch, per-call setup), never
  // reorders simulated work; burst_equivalence_test holds every element to
  // bit-identical results against the scalar loop.
  virtual void ProcessBurst(CoreId core, std::span<Mbuf* const> burst,
                            std::span<ProcessResult> results) {
    for (std::size_t i = 0; i < burst.size(); ++i) {
      results[i] = Process(core, *burst[i]);
    }
  }

 protected:
  // Copying through a base reference would slice the derived element; keep
  // copy/move protected so only concrete types expose value semantics.
  Element(const Element&) = default;
  Element& operator=(const Element&) = default;
};

}  // namespace cachedir

#endif  // CACHEDIRECTOR_SRC_NFV_ELEMENT_H_
