#include "src/nfv/elements.h"

#include <span>

namespace cachedir {

// ---- MacSwap ----

ProcessResult MacSwap::Process(CoreId core, Mbuf& mbuf) {
  ProcessResult r;
  // Parse: the header is the first 64 B of the data area — one line.
  r.cycles += hierarchy_.Read(core, mbuf.data_pa()).cycles;
  SwapMacAddresses(memory_, mbuf.data_pa());
  // The swap writes the same line (now present in L1).
  r.cycles += hierarchy_.Write(core, mbuf.data_pa()).cycles;
  r.cycles += kFixedCycles;
  return r;
}

void MacSwap::ProcessBurst(CoreId core, std::span<Mbuf* const> burst,
                           std::span<ProcessResult> results) {
  // Qualified calls devirtualize: one virtual dispatch per burst, the same
  // per-packet access sequence as the scalar path (Element contract).
  for (std::size_t i = 0; i < burst.size(); ++i) {
    results[i] = MacSwap::Process(core, *burst[i]);
  }
}

// ---- IpRouter ----

IpRouter::IpRouter(MemoryHierarchy& hierarchy, PhysicalMemory& memory,
                   HugepageAllocator& backing, const Params& params)
    : hierarchy_(hierarchy), memory_(memory), hw_offloaded_(params.hw_offloaded) {
  // 2^24 two-byte entries = 32 MB; only entries for installed routes are
  // materialised in the sparse simulated memory.
  tbl24_ = backing.Allocate(std::size_t{2} << 24, PageSize::k2M);
  Rng rng(params.seed);
  for (std::size_t i = 0; i < params.num_routes; ++i) {
    const auto prefix24 = static_cast<std::uint32_t>(rng.UniformU64(0, (1u << 24) - 1));
    const auto next_hop = static_cast<std::uint16_t>(rng.UniformU64(1, 255));
    InstallRoute(prefix24, next_hop);
  }
}

void IpRouter::InstallRoute(std::uint32_t prefix24, std::uint16_t next_hop) {
  // Control-plane table population, deliberately uncosted (the datapath in
  // Process() charges every lookup through the hierarchy).
  const PhysAddr entry = tbl24_.pa + 2 * static_cast<PhysAddr>(prefix24);
  // Setup-phase table write, not datapath. detlint: allow(physmem-bypass)
  const std::uint32_t old_entry = memory_.ReadU32(entry);
  // Setup-phase table write, not datapath. detlint: allow(physmem-bypass)
  memory_.WriteU32(entry, (old_entry & 0xFFFF'0000u) | next_hop);
}

std::uint16_t IpRouter::LookupNextHopForTest(std::uint32_t dst_ip) const {
  // Test-only oracle, deliberately uncosted. detlint: allow(physmem-bypass)
  return static_cast<std::uint16_t>(memory_.ReadU32(EntryPa(dst_ip)) & 0xFFFF);
}

ProcessResult IpRouter::Process(CoreId core, Mbuf& mbuf) {
  ProcessResult r;
  // Header parse (backing-store read, uncosted) happens up front so the
  // header line and the tbl24 probe go through the hierarchy as one gather
  // batch — same access order (header, then table entry) as the scalar path.
  const std::uint32_t dst_ip = memory_.ReadU32(mbuf.data_pa() + kDstIpOffset);
  // Software LPM: one tbl24 probe (next_hop 0 means the default route);
  // offloaded routers only touch the header.
  const PhysAddr reads[2] = {mbuf.data_pa(), hw_offloaded_ ? 0 : EntryPa(dst_ip)};
  AccessBatch batch;
  batch.gather = std::span<const PhysAddr>(reads, hw_offloaded_ ? 1 : 2);
  r.cycles += hierarchy_.ReadRange(core, batch).cycles;
  DecrementTtl(memory_, mbuf.data_pa());
  SwapMacAddresses(memory_, mbuf.data_pa());  // rewrite L2 for the next hop
  r.cycles += hierarchy_.Write(core, mbuf.data_pa()).cycles;
  r.cycles += hw_offloaded_ ? kOffloadedFixedCycles : kFixedCycles;
  // A TTL that reaches zero drops the packet.
  if (memory_.ReadU8(mbuf.data_pa() + kTtlOffset) == 0) {
    r.drop = true;
  }
  return r;
}

void IpRouter::ProcessBurst(CoreId core, std::span<Mbuf* const> burst,
                            std::span<ProcessResult> results) {
  for (std::size_t i = 0; i < burst.size(); ++i) {
    results[i] = IpRouter::Process(core, *burst[i]);
  }
}

// ---- NAPT ----

Napt::Napt(MemoryHierarchy& hierarchy, PhysicalMemory& memory, HugepageAllocator& backing,
           const Params& params)
    : hierarchy_(hierarchy),
      memory_(memory),
      num_buckets_(params.num_buckets),
      public_ip_(params.public_ip) {
  table_ = backing.Allocate(num_buckets_ * kCacheLineSize, PageSize::k2M);
}

ProcessResult Napt::Process(CoreId core, Mbuf& mbuf) {
  ProcessResult r;
  // Parse first (uncosted backing-store read), then charge the header line
  // and the flow-table probe as one gather batch in the scalar order.
  const ParsedHeader h = ReadPacketHeader(memory_, mbuf.data_pa());
  const PhysAddr bucket = BucketPa(h.flow);

  const PhysAddr reads[2] = {mbuf.data_pa(), bucket};
  AccessBatch batch;
  batch.gather = std::span<const PhysAddr>(reads, 2);
  r.cycles += hierarchy_.ReadRange(core, batch).cycles;
  std::uint16_t mapped_port = static_cast<std::uint16_t>(memory_.ReadU32(bucket) & 0xFFFF);
  const bool present = (memory_.ReadU32(bucket) >> 16) == 1;
  if (!present) {
    // New flow: allocate a translation and write the entry back.
    mapped_port = next_port_;
    next_port_ = next_port_ == 65535 ? 1024 : static_cast<std::uint16_t>(next_port_ + 1);
    memory_.WriteU32(bucket, (1u << 16) | mapped_port);
    r.cycles += hierarchy_.Write(core, bucket).cycles;
    ++flows_created_;
  }

  RewriteIpAndPort(memory_, mbuf.data_pa(), public_ip_, mapped_port, /*rewrite_source=*/true);
  r.cycles += hierarchy_.Write(core, mbuf.data_pa()).cycles;
  r.cycles += kFixedCycles;
  return r;
}

void Napt::ProcessBurst(CoreId core, std::span<Mbuf* const> burst,
                        std::span<ProcessResult> results) {
  for (std::size_t i = 0; i < burst.size(); ++i) {
    results[i] = Napt::Process(core, *burst[i]);
  }
}

// ---- LoadBalancer ----

LoadBalancer::LoadBalancer(MemoryHierarchy& hierarchy, PhysicalMemory& memory,
                           HugepageAllocator& backing, const Params& params)
    : hierarchy_(hierarchy),
      memory_(memory),
      num_buckets_(params.num_buckets),
      num_backends_(params.num_backends),
      backend_base_ip_(params.backend_base_ip) {
  table_ = backing.Allocate(num_buckets_ * kCacheLineSize, PageSize::k2M);
  rr_counter_ = backing.Allocate(kCacheLineSize, PageSize::k4K);
}

ProcessResult LoadBalancer::Process(CoreId core, Mbuf& mbuf) {
  ProcessResult r;
  // Parse first (uncosted backing-store read), then charge the header line
  // and the flow-table probe as one gather batch in the scalar order.
  const ParsedHeader h = ReadPacketHeader(memory_, mbuf.data_pa());
  const PhysAddr bucket = BucketPa(h.flow);

  const PhysAddr reads[2] = {mbuf.data_pa(), bucket};
  AccessBatch batch;
  batch.gather = std::span<const PhysAddr>(reads, 2);
  r.cycles += hierarchy_.ReadRange(core, batch).cycles;
  std::uint32_t backend = memory_.ReadU32(bucket);
  if (backend == 0) {
    // New flow: round-robin assignment (shared cursor line).
    r.cycles += hierarchy_.Read(core, rr_counter_.pa).cycles;
    const std::uint32_t cursor = memory_.ReadU32(rr_counter_.pa);
    memory_.WriteU32(rr_counter_.pa, cursor + 1);
    r.cycles += hierarchy_.Write(core, rr_counter_.pa).cycles;
    backend = 1 + (cursor % num_backends_);
    memory_.WriteU32(bucket, backend);
    r.cycles += hierarchy_.Write(core, bucket).cycles;
  }

  RewriteIpAndPort(memory_, mbuf.data_pa(), backend_base_ip_ + backend - 1,
                   h.flow.dst_port, /*rewrite_source=*/false);
  r.cycles += hierarchy_.Write(core, mbuf.data_pa()).cycles;
  r.cycles += kFixedCycles;
  return r;
}

void LoadBalancer::ProcessBurst(CoreId core, std::span<Mbuf* const> burst,
                                std::span<ProcessResult> results) {
  for (std::size_t i = 0; i < burst.size(); ++i) {
    results[i] = LoadBalancer::Process(core, *burst[i]);
  }
}

}  // namespace cachedir
