// Run-to-completion NFV runtime with queueing (Metron model).
//
// One RX queue per core, one shared service chain. The runtime interleaves
// NIC deliveries and core processing in simulated-time order: before each
// packet passes the NIC, every core consumes whatever was ready earlier.
// Per-packet latency is (processing completion time - LoadGen departure
// time); queueing delay emerges when the offered rate approaches a core's
// service rate — which is exactly what bends the paper's Fig. 15 curve.
#ifndef CACHEDIRECTOR_SRC_NFV_RUNTIME_H_
#define CACHEDIRECTOR_SRC_NFV_RUNTIME_H_

#include <limits>
#include <span>
#include <vector>

#include "src/netio/nic.h"
#include "src/nfv/chain.h"
#include "src/trace/latency_recorder.h"

namespace cachedir {

class EpochEngine;

class NfvRuntime {
 public:
  struct Config {
    // Fixed per-packet software cost outside the chain: PMD poll, descriptor
    // handling, buffer refill bookkeeping.
    Cycles per_packet_overhead_cycles = 120;
    // true  -> latency measured from the frame's arrival at the DuT port
    //          (the paper's convention: end-to-end minus minimum loopback,
    //          i.e. LoadGen-side queueing excluded);
    // false -> raw end-to-end from the LoadGen departure stamp.
    bool measure_from_dut_port = true;
    // Burst dataplane (docs/architecture.md §12): drain-phase RX pops and
    // latency-record appends run in bursts of up to kMaxBurst packets.
    // Simulated results are bit-identical either way — false keeps the
    // packet-at-a-time reference path burst_equivalence_test compares
    // against.
    bool burst = true;
    // Optional epoch engine attached to the same hierarchy (must be built
    // with keep_line_results). The drain phase then captures every remaining
    // packet's memory work first and settles it through the engine's
    // parallel epochs, replaying the per-packet clockwork — core time, wire
    // serialisation, buffer reclaim, latency records — once the cycles are
    // known; simulated results stay bit-identical (§14). Finite-horizon
    // processing needs each packet's cycles immediately and settles per
    // packet. The runtime retires the engine's settled per-line results
    // after each drain.
    EpochEngine* engine = nullptr;
  };

  NfvRuntime(const Config& config, MemoryHierarchy& hierarchy, SimNic& nic,
             ServiceChain& chain);

  // Feeds `packets` (ascending tx_time) through NIC and cores. When
  // `recorder` is null the traffic still runs (cache/queue warm-up) but
  // nothing is measured. Core clocks and NIC time persist across calls.
  void Run(std::span<const WirePacket> packets, LatencyRecorder* recorder);

  // Simulated time at which every queue drained (max over cores).
  Nanoseconds CompletionTimeNs() const;

  std::uint64_t packets_processed() const { return processed_; }
  std::uint64_t packets_dropped() const { return dropped_; }

  // RX burst width, the DPDK idiom the element model cites.
  static constexpr std::size_t kMaxBurst = 32;

 private:
  void ProcessQueuesUntil(Nanoseconds horizon, LatencyRecorder* recorder);
  void ProcessQueueUntil(std::size_t queue, Nanoseconds horizon, LatencyRecorder* recorder);
  // Drain path (infinite horizon): every remaining ring entry is provably
  // processable, so RX pops run in bursts.
  void DrainQueue(std::size_t queue, LatencyRecorder* recorder);
  // Engine drain: capture pass (memory work, bracketed per packet), settle,
  // timing pass (clockwork + records).
  void DrainQueueDeferred(std::size_t queue, LatencyRecorder* recorder);
  void ProcessOnePacket(CoreId core, std::size_t queue, Mbuf* mbuf, Nanoseconds start,
                        LatencyRecorder* recorder, DeliveryRecord* staged, std::size_t& staged_n);
  void FlushStaged(LatencyRecorder* recorder, const DeliveryRecord* staged, std::size_t& staged_n);

  Config config_;
  MemoryHierarchy& hierarchy_;
  SimNic& nic_;
  ServiceChain& chain_;
  CpuFrequency freq_;
  std::vector<Nanoseconds> core_time_ns_;  // indexed by queue (== core)
  // Earliest simulated time the queue's head packet can start service —
  // +inf for an empty ring. Exact, not a heuristic: it only changes when the
  // head or the core clock does, and every such point refreshes it. Lets
  // ProcessQueuesUntil skip the (num_queues - 1) rings per wire packet that
  // provably cannot act before the horizon, without touching them.
  std::vector<Nanoseconds> queue_next_start_;
  std::uint64_t processed_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace cachedir

#endif  // CACHEDIRECTOR_SRC_NFV_RUNTIME_H_
