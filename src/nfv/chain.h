// Service chain: an ordered list of elements a packet traverses on one core.
#ifndef CACHEDIRECTOR_SRC_NFV_CHAIN_H_
#define CACHEDIRECTOR_SRC_NFV_CHAIN_H_

#include <memory>
#include <string>
#include <vector>

#include "src/nfv/element.h"

namespace cachedir {

class ServiceChain {
 public:
  ServiceChain() = default;

  void Append(std::unique_ptr<Element> element) { elements_.push_back(std::move(element)); }

  std::size_t size() const { return elements_.size(); }

  // Total chain cost for one packet; stops early on a drop verdict.
  ProcessResult Process(CoreId core, Mbuf& mbuf) {
    ProcessResult total;
    for (const auto& element : elements_) {
      const ProcessResult r = element->Process(core, mbuf);
      total.cycles += r.cycles;
      if (r.drop) {
        total.drop = true;
        break;
      }
    }
    return total;
  }

  // Chain-wide burst, bit-identical to calling Process per packet in order
  // (burst_equivalence_test). Single-element chains hand the whole burst to
  // the element's fused ProcessBurst. Longer chains run packet-major: a
  // packet traverses every element (dropping compacts it out of the rest of
  // its chain) before the next packet starts — element-major sweeps would
  // interleave the cache accesses of neighbouring packets differently,
  // moving LRU/eviction state and with it per-packet cycle charges
  // (docs/architecture.md §12).
  void ProcessBurst(CoreId core, std::span<Mbuf* const> burst, std::span<ProcessResult> results) {
    if (elements_.size() == 1) {
      elements_.front()->ProcessBurst(core, burst, results);
      return;
    }
    for (std::size_t i = 0; i < burst.size(); ++i) {
      results[i] = Process(core, *burst[i]);
    }
  }

  std::string Describe() const {
    std::string out;
    for (const auto& element : elements_) {
      if (!out.empty()) {
        out += "-";
      }
      out += element->name();
    }
    return out;
  }

 private:
  std::vector<std::unique_ptr<Element>> elements_;
};

}  // namespace cachedir

#endif  // CACHEDIRECTOR_SRC_NFV_CHAIN_H_
