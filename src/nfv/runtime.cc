#include "src/nfv/runtime.h"

#include <algorithm>

namespace cachedir {

NfvRuntime::NfvRuntime(const Config& config, MemoryHierarchy& hierarchy, SimNic& nic,
                       ServiceChain& chain)
    : config_(config),
      hierarchy_(hierarchy),
      nic_(nic),
      chain_(chain),
      freq_(hierarchy.spec().frequency),
      core_time_ns_(nic.num_queues(), 0.0) {}

void NfvRuntime::Run(std::span<const WirePacket> packets, LatencyRecorder* recorder) {
  for (const WirePacket& packet : packets) {
    // Everything the NIC queued earlier than this packet's NIC passage is
    // fair game for the cores first, keeping simulated time causally
    // ordered between DMA writes and core reads.
    const Nanoseconds horizon = std::max(nic_.nic_time_ns(), packet.tx_time_ns);
    ProcessQueuesUntil(horizon, recorder);
    if (!nic_.Deliver(packet)) {
      ++dropped_;
      if (recorder != nullptr) {
        recorder->RecordDrop();
      }
    }
  }
  ProcessQueuesUntil(std::numeric_limits<Nanoseconds>::infinity(), recorder);
  nic_.FlushTx();  // all buffers home before the next run/measurement phase
}

void NfvRuntime::ProcessQueuesUntil(Nanoseconds horizon, LatencyRecorder* recorder) {
  for (std::size_t queue = 0; queue < nic_.num_queues(); ++queue) {
    ProcessQueueUntil(queue, horizon, recorder);
  }
}

void NfvRuntime::ProcessQueueUntil(std::size_t queue, Nanoseconds horizon,
                                   LatencyRecorder* recorder) {
  const CoreId core = SimNic::CoreForQueue(queue);
  while (!nic_.RxEmpty(queue)) {
    const RxEntry& head = nic_.RxHead(queue);
    const Nanoseconds start = std::max(core_time_ns_[queue], head.ready_ns);
    if (start >= horizon) {
      return;
    }
    Mbuf* mbuf = nic_.RxPop(queue);

    // PMD + driver: fetch the descriptor/metadata line, fixed software cost.
    Cycles cycles = config_.per_packet_overhead_cycles;
    cycles += hierarchy_.Read(core, mbuf->struct_pa).cycles;

    const ProcessResult chain_result = chain_.Process(core, *mbuf);
    cycles += chain_result.cycles;

    const Nanoseconds finish = start + freq_.ToNanoseconds(cycles);
    core_time_ns_[queue] = finish;
    ++processed_;

    // TX: the packet leaves the DuT when the egress wire finishes it; the
    // buffer is reclaimed then, not now.
    const bool drop = chain_result.drop;
    const WirePacket wire = mbuf->wire;
    const Nanoseconds latency_start =
        config_.measure_from_dut_port ? mbuf->nic_rx_start_ns : wire.tx_time_ns;
    const Nanoseconds departed = nic_.TransmitAt(mbuf, finish);
    if (!drop && recorder != nullptr) {
      recorder->RecordDelivery(wire, departed, latency_start);
    }
  }
}

Nanoseconds NfvRuntime::CompletionTimeNs() const {
  Nanoseconds latest = 0;
  for (const Nanoseconds t : core_time_ns_) {
    latest = std::max(latest, t);
  }
  return latest;
}

}  // namespace cachedir
