#include "src/nfv/runtime.h"

#include <algorithm>
#include <vector>

#include "src/sim/epoch_engine.h"

namespace cachedir {

NfvRuntime::NfvRuntime(const Config& config, MemoryHierarchy& hierarchy, SimNic& nic,
                       ServiceChain& chain)
    : config_(config),
      hierarchy_(hierarchy),
      nic_(nic),
      chain_(chain),
      freq_(hierarchy.spec().frequency),
      core_time_ns_(nic.num_queues(), 0.0),
      queue_next_start_(nic.num_queues(), 0.0) {}

void NfvRuntime::Run(std::span<const WirePacket> packets, LatencyRecorder* recorder) {
  for (const WirePacket& packet : packets) {
    // Everything the NIC queued earlier than this packet's NIC passage is
    // fair game for the cores first, keeping simulated time causally
    // ordered between DMA writes and core reads.
    const Nanoseconds horizon = std::max(nic_.nic_time_ns(), packet.tx_time_ns);
    ProcessQueuesUntil(horizon, recorder);
    if (!nic_.Deliver(packet)) {
      ++dropped_;
      if (recorder != nullptr) {
        recorder->RecordDrop();
      }
    } else {
      // The enqueue may have given an idle ring a new head; refresh that
      // queue's memo so ProcessQueuesUntil sees it again.
      const std::size_t queue = nic_.last_rx_queue();
      queue_next_start_[queue] =
          std::max(core_time_ns_[queue], nic_.RxHead(queue).ready_ns);
    }
  }
  ProcessQueuesUntil(std::numeric_limits<Nanoseconds>::infinity(), recorder);
  nic_.FlushTx();  // all buffers home before the next run/measurement phase
}

void NfvRuntime::ProcessQueuesUntil(Nanoseconds horizon, LatencyRecorder* recorder) {
  for (std::size_t queue = 0; queue < nic_.num_queues(); ++queue) {
    // The memo is the exact start time of the queue's head packet (+inf when
    // empty); skipping here elides only calls that would return without any
    // side effect, so simulated state is untouched. The final drain passes
    // horizon = +inf and `inf < inf` is false, which is also right: a queue
    // whose memo is +inf is empty and has nothing to drain.
    if (queue_next_start_[queue] < horizon) {
      ProcessQueueUntil(queue, horizon, recorder);
    }
  }
}

void NfvRuntime::ProcessQueueUntil(std::size_t queue, Nanoseconds horizon,
                                   LatencyRecorder* recorder) {
  if (config_.burst && horizon == std::numeric_limits<Nanoseconds>::infinity()) {
    DrainQueue(queue, recorder);
    return;
  }
  const CoreId core = SimNic::CoreForQueue(queue);
  DeliveryRecord staged[kMaxBurst];
  std::size_t staged_n = 0;
  while (!nic_.RxEmpty(queue)) {
    const RxEntry& head = nic_.RxHead(queue);
    const Nanoseconds start = std::max(core_time_ns_[queue], head.ready_ns);
    if (start >= horizon) {
      queue_next_start_[queue] = start;
      FlushStaged(recorder, staged, staged_n);
      return;
    }
    Mbuf* mbuf = nic_.RxPop(queue);
    ProcessOnePacket(core, queue, mbuf, start, recorder, staged, staged_n);
  }
  queue_next_start_[queue] = std::numeric_limits<Nanoseconds>::infinity();
  FlushStaged(recorder, staged, staged_n);
}

void NfvRuntime::DrainQueue(std::size_t queue, LatencyRecorder* recorder) {
  if (config_.engine != nullptr) {
    DrainQueueDeferred(queue, recorder);
    return;
  }
  // Infinite horizon: every entry already in the ring is processable, so the
  // per-packet stop check disappears and pops run in ring-order bursts. The
  // per-packet work (descriptor read, chain, TX DMA) still interleaves
  // exactly as in the scalar loop — deferring any of it past the next
  // packet's accesses would move LLC state (docs/architecture.md §12).
  const CoreId core = SimNic::CoreForQueue(queue);
  Mbuf* burst[kMaxBurst];
  DeliveryRecord staged[kMaxBurst];
  std::size_t staged_n = 0;
  for (;;) {
    const std::size_t n = nic_.RxPopBurst(queue, burst);
    if (n == 0) {
      break;
    }
    for (std::size_t i = 0; i < n; ++i) {
      Mbuf* mbuf = burst[i];
      const Nanoseconds start = std::max(core_time_ns_[queue], mbuf->rx_ready_ns);
      ProcessOnePacket(core, queue, mbuf, start, recorder, staged, staged_n);
    }
  }
  queue_next_start_[queue] = std::numeric_limits<Nanoseconds>::infinity();
  FlushStaged(recorder, staged, staged_n);
}

void NfvRuntime::ProcessOnePacket(CoreId core, std::size_t queue, Mbuf* mbuf, Nanoseconds start,
                                  LatencyRecorder* recorder, DeliveryRecord* staged,
                                  std::size_t& staged_n) {
  // PMD + driver: fetch the descriptor/metadata line, fixed software cost.
  // Under an epoch engine the hierarchy returns placeholder results, so the
  // memory share of `cycles` is read back through a per-packet line-op
  // bracket instead — which settles the engine: the finite-horizon path
  // needs each packet's finish time before the next scheduling decision.
  EpochEngine* const engine = config_.engine;
  const std::uint64_t mark = engine != nullptr ? engine->line_op_count() : 0;
  Cycles cycles = config_.per_packet_overhead_cycles;
  cycles += hierarchy_.Read(core, mbuf->struct_pa).cycles;

  const ProcessResult chain_result = chain_.Process(core, *mbuf);
  cycles += chain_result.cycles;
  if (engine != nullptr) {
    cycles += engine->CyclesInRange(mark, engine->line_op_count());
  }

  const Nanoseconds finish = start + freq_.ToNanoseconds(cycles);
  core_time_ns_[queue] = finish;
  ++processed_;

  // TX: the packet leaves the DuT when the egress wire finishes it; the
  // buffer is reclaimed then, not now. Dropped packets still pass through
  // TransmitAt (the frame occupies the egress wire either way).
  const bool drop = chain_result.drop;
  const WirePacket wire = mbuf->wire;
  const Nanoseconds latency_start =
      config_.measure_from_dut_port ? mbuf->nic_rx_start_ns : wire.tx_time_ns;
  const Nanoseconds departed = nic_.TransmitAt(mbuf, finish);
  if (!drop && recorder != nullptr) {
    if (config_.burst) {
      staged[staged_n++] = DeliveryRecord{wire, departed, latency_start};
      if (staged_n == kMaxBurst) {
        recorder->RecordDeliveryBatch({staged, staged_n});
        staged_n = 0;
      }
    } else {
      recorder->RecordDelivery(wire, departed, latency_start);
    }
  }
}

void NfvRuntime::DrainQueueDeferred(std::size_t queue, LatencyRecorder* recorder) {
  EpochEngine& engine = *config_.engine;
  const CoreId core = SimNic::CoreForQueue(queue);
  // One drained packet whose memory work is captured but not yet timed.
  struct Pending {
    Mbuf* mbuf = nullptr;
    WirePacket wire;
    Nanoseconds rx_ready_ns = 0;
    Nanoseconds latency_start = 0;
    Cycles fixed_cycles = 0;      // overhead + element fixed costs
    std::uint64_t begin = 0;      // line-op bracket of the memory share
    std::uint64_t end = 0;
    bool drop = false;
  };
  // Capture pass: issue every remaining packet's memory work — descriptor
  // read, chain, TX DMA — in exactly the serial drain's order. Nothing here
  // needs simulated time, so it all lands in the engine's capture buffer.
  std::vector<Pending> pending;
  Mbuf* burst[kMaxBurst];
  for (;;) {
    const std::size_t n = nic_.RxPopBurst(queue, burst);
    if (n == 0) {
      break;
    }
    for (std::size_t i = 0; i < n; ++i) {
      Mbuf* mbuf = burst[i];
      Pending p;
      p.mbuf = mbuf;
      p.wire = mbuf->wire;
      p.rx_ready_ns = mbuf->rx_ready_ns;
      p.latency_start =
          config_.measure_from_dut_port ? mbuf->nic_rx_start_ns : mbuf->wire.tx_time_ns;
      p.begin = engine.line_op_count();
      hierarchy_.Read(core, mbuf->struct_pa);
      const ProcessResult chain_result = chain_.Process(core, *mbuf);
      p.fixed_cycles = config_.per_packet_overhead_cycles + chain_result.cycles;
      p.drop = chain_result.drop;
      // Bracket closes before the TX DMA: TransmitAt discards the DMA read's
      // cycles (wire pace, not core time), so the packet must not be charged
      // for it — but the DMA still captures here to keep LLC state evolving
      // in the serial drain's op order.
      p.end = engine.line_op_count();
      nic_.TxDma(mbuf);
      pending.push_back(p);
    }
  }
  // Timing pass: settle (the parallel epochs run here), then replay the
  // clockwork serially — core clock, wire serialisation, buffer reclaim and
  // latency records happen in the same per-packet order with the same cycle
  // values as the serial drain.
  engine.Flush();
  DeliveryRecord staged[kMaxBurst];
  std::size_t staged_n = 0;
  for (const Pending& p : pending) {
    const Cycles cycles = p.fixed_cycles + engine.CyclesInRange(p.begin, p.end);
    const Nanoseconds start = std::max(core_time_ns_[queue], p.rx_ready_ns);
    const Nanoseconds finish = start + freq_.ToNanoseconds(cycles);
    core_time_ns_[queue] = finish;
    ++processed_;
    const Nanoseconds departed = nic_.TxWireAt(p.mbuf, finish);
    if (!p.drop && recorder != nullptr) {
      staged[staged_n++] = DeliveryRecord{p.wire, departed, p.latency_start};
      if (staged_n == kMaxBurst) {
        recorder->RecordDeliveryBatch({staged, staged_n});
        staged_n = 0;
      }
    }
  }
  queue_next_start_[queue] = std::numeric_limits<Nanoseconds>::infinity();
  FlushStaged(recorder, staged, staged_n);
  engine.DropSettledResults();
}

void NfvRuntime::FlushStaged(LatencyRecorder* recorder, const DeliveryRecord* staged,
                             std::size_t& staged_n) {
  if (staged_n > 0) {
    recorder->RecordDeliveryBatch({staged, staged_n});
    staged_n = 0;
  }
}

Nanoseconds NfvRuntime::CompletionTimeNs() const {
  Nanoseconds latest = 0;
  for (const Nanoseconds t : core_time_ns_) {
    latest = std::max(latest, t);
  }
  return latest;
}

}  // namespace cachedir
