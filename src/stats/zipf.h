// Zipf-distributed key generator.
//
// The paper generates skewed KVS keys with MICA's Zipf(0.99) generator over
// 2^24 keys. This implementation uses Hörmann's rejection-inversion sampling,
// which is O(1) per sample and O(1) memory, so key spaces of 2^24 and beyond
// cost nothing to set up.
#ifndef CACHEDIRECTOR_SRC_STATS_ZIPF_H_
#define CACHEDIRECTOR_SRC_STATS_ZIPF_H_

#include <cstdint>

#include "src/sim/rng.h"

namespace cachedir {

// Samples ranks in [0, n) with P(rank = k) proportional to 1 / (k+1)^theta.
// theta == 0 degenerates to a uniform distribution.
class ZipfGenerator {
 public:
  ZipfGenerator(std::uint64_t n, double theta, std::uint64_t seed);

  std::uint64_t Next();

  std::uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  double H(double x) const;
  double HInverse(double x) const;

  std::uint64_t n_;
  double theta_;
  Rng rng_;

  // Rejection-inversion constants (Hörmann 2000).
  double h_x1_ = 0;
  double h_n_ = 0;
  double s_ = 0;
};

}  // namespace cachedir

#endif  // CACHEDIRECTOR_SRC_STATS_ZIPF_H_
