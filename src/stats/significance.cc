#include "src/stats/significance.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace cachedir {
namespace {

// Complementary CDF of the standard normal via erfc.
double NormalSf(double z) { return 0.5 * std::erfc(z / std::sqrt(2.0)); }

}  // namespace

MannWhitneyResult MannWhitneyU(std::span<const double> a, std::span<const double> b) {
  const std::size_t n1 = a.size();
  const std::size_t n2 = b.size();
  if (n1 < 4 || n2 < 4) {
    throw std::invalid_argument("MannWhitneyU: need >= 4 observations per sample");
  }

  // Pool, sort, assign mid-ranks to ties.
  struct Obs {
    double value;
    bool from_a;
  };
  std::vector<Obs> pooled;
  pooled.reserve(n1 + n2);
  for (const double v : a) {
    pooled.push_back({v, true});
  }
  for (const double v : b) {
    pooled.push_back({v, false});
  }
  std::sort(pooled.begin(), pooled.end(),
            [](const Obs& x, const Obs& y) { return x.value < y.value; });

  double rank_sum_a = 0;
  double tie_term = 0;  // sum over tie groups of t^3 - t
  std::size_t i = 0;
  while (i < pooled.size()) {
    std::size_t j = i;
    while (j < pooled.size() && pooled[j].value == pooled[i].value) {
      ++j;
    }
    const double mid_rank = (static_cast<double>(i + 1) + static_cast<double>(j)) / 2.0;
    const double t = static_cast<double>(j - i);
    if (t > 1) {
      tie_term += t * t * t - t;
    }
    for (std::size_t k = i; k < j; ++k) {
      if (pooled[k].from_a) {
        rank_sum_a += mid_rank;
      }
    }
    i = j;
  }

  const double n1d = static_cast<double>(n1);
  const double n2d = static_cast<double>(n2);
  const double u1 = rank_sum_a - n1d * (n1d + 1) / 2.0;

  MannWhitneyResult result;
  result.u = u1;
  result.prob_a_less = 1.0 - u1 / (n1d * n2d);

  const double mean_u = n1d * n2d / 2.0;
  const double n = n1d + n2d;
  const double variance =
      n1d * n2d / 12.0 * ((n + 1) - tie_term / (n * (n - 1)));
  if (variance <= 0) {
    // All observations identical: no evidence of any difference.
    result.z = 0;
    result.p_value = 1.0;
    return result;
  }
  // Continuity correction toward the mean.
  const double diff = u1 - mean_u;
  const double corrected = diff > 0.5 ? diff - 0.5 : (diff < -0.5 ? diff + 0.5 : 0.0);
  result.z = corrected / std::sqrt(variance);
  result.p_value = 2.0 * NormalSf(std::fabs(result.z));
  if (result.p_value > 1.0) {
    result.p_value = 1.0;
  }
  return result;
}

}  // namespace cachedir
