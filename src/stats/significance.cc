#include "src/stats/significance.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace cachedir {
namespace {

// Complementary CDF of the standard normal via erfc.
double NormalSf(double z) { return 0.5 * std::erfc(z / std::sqrt(2.0)); }

}  // namespace

MannWhitneyResult MannWhitneyU(std::span<const double> a, std::span<const double> b) {
  const std::size_t n1 = a.size();
  const std::size_t n2 = b.size();
  if (n1 < 4 || n2 < 4) {
    throw std::invalid_argument("MannWhitneyU: need >= 4 observations per sample");
  }

  // Sort each sample separately (plain doubles sort ~2x faster than a pooled
  // array of tagged 16-byte records) and walk the two sorted runs as a
  // merge, handing out mid-ranks per tie group. The arithmetic is the exact
  // FP sequence the pooled-sort formulation performed: each group
  // contributes the same repeated `rank_sum_a += mid_rank` additions in the
  // same group order, so results are bit-identical.
  std::vector<double> sa(a.begin(), a.end());
  std::vector<double> sb(b.begin(), b.end());
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());

  double rank_sum_a = 0;
  double tie_term = 0;  // sum over tie groups of t^3 - t
  std::size_t ia = 0;
  std::size_t ib = 0;
  std::size_t pos = 0;  // pooled rank position consumed so far
  while (ia < n1 || ib < n2) {
    const double value = ib >= n2 || (ia < n1 && sa[ia] <= sb[ib]) ? sa[ia] : sb[ib];
    std::size_t count_a = 0;
    while (ia < n1 && sa[ia] == value) {
      ++ia;
      ++count_a;
    }
    std::size_t count_b = 0;
    while (ib < n2 && sb[ib] == value) {
      ++ib;
      ++count_b;
    }
    const std::size_t group = count_a + count_b;
    const double mid_rank =
        (static_cast<double>(pos + 1) + static_cast<double>(pos + group)) / 2.0;
    const double t = static_cast<double>(group);
    if (t > 1) {
      tie_term += t * t * t - t;
    }
    for (std::size_t k = 0; k < count_a; ++k) {
      rank_sum_a += mid_rank;
    }
    pos += group;
  }

  const double n1d = static_cast<double>(n1);
  const double n2d = static_cast<double>(n2);
  const double u1 = rank_sum_a - n1d * (n1d + 1) / 2.0;

  MannWhitneyResult result;
  result.u = u1;
  result.prob_a_less = 1.0 - u1 / (n1d * n2d);

  const double mean_u = n1d * n2d / 2.0;
  const double n = n1d + n2d;
  const double variance =
      n1d * n2d / 12.0 * ((n + 1) - tie_term / (n * (n - 1)));
  if (variance <= 0) {
    // All observations identical: no evidence of any difference.
    result.z = 0;
    result.p_value = 1.0;
    return result;
  }
  // Continuity correction toward the mean.
  const double diff = u1 - mean_u;
  const double corrected = diff > 0.5 ? diff - 0.5 : (diff < -0.5 ? diff + 0.5 : 0.0);
  result.z = corrected / std::sqrt(variance);
  result.p_value = 2.0 * NormalSf(std::fabs(result.z));
  if (result.p_value > 1.0) {
    result.p_value = 1.0;
  }
  return result;
}

}  // namespace cachedir
