// Sample summaries: percentiles, quartiles, mean, CDF, skewness.
//
// Every latency figure in the paper reports medians of 50 runs with quartile
// error bars, plus 75/90/95/99th percentiles; this is the shared machinery.
#ifndef CACHEDIRECTOR_SRC_STATS_SUMMARY_H_
#define CACHEDIRECTOR_SRC_STATS_SUMMARY_H_

#include <cstddef>
#include <span>
#include <vector>

namespace cachedir {

// Accumulates samples; summary queries sort lazily.
class Samples {
 public:
  Samples() = default;
  explicit Samples(std::vector<double> values);

  void Add(double v);
  // Bulk append; one cache invalidation instead of one per sample. The NFV
  // driver pools ~3*10^5 per-run latencies per arm through this.
  void Append(std::span<const double> vs);
  void Reserve(std::size_t n) { values_.reserve(n); }

  std::size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  // Percentile in [0, 100] with linear interpolation between order statistics.
  // Requires at least one sample.
  double Percentile(double p) const;

  double Median() const { return Percentile(50.0); }
  double Min() const;
  double Max() const;
  double Mean() const;
  double Stddev() const;  // sample standard deviation (n-1)

  // Fisher-Pearson adjusted skewness; 0 for fewer than 3 samples.
  double Skewness() const;

  // Empirical CDF evaluated at `x`: fraction of samples <= x.
  double CdfAt(double x) const;

  // Sorted copy of the samples (for CDF plotting).
  std::vector<double> Sorted() const;

  const std::vector<double>& values() const { return values_; }

 private:
  void EnsureSorted() const;

  std::vector<double> values_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

// One row of a percentile table (used by the figure benches).
struct PercentileRow {
  double p75 = 0;
  double p90 = 0;
  double p95 = 0;
  double p99 = 0;
  double mean = 0;
};

PercentileRow SummarizePercentiles(const Samples& s);

}  // namespace cachedir

#endif  // CACHEDIRECTOR_SRC_STATS_SUMMARY_H_
