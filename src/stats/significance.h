// Nonparametric significance testing for A/B latency comparisons.
//
// The benches report medians of N seeded runs per configuration; the
// Mann-Whitney U test (normal approximation, two-sided) says whether the
// DPDK-vs-CacheDirector difference is larger than run-to-run noise. Latency
// distributions are heavy-tailed, so a rank test is the right tool — no
// normality assumption.
#ifndef CACHEDIRECTOR_SRC_STATS_SIGNIFICANCE_H_
#define CACHEDIRECTOR_SRC_STATS_SIGNIFICANCE_H_

#include <span>

namespace cachedir {

struct MannWhitneyResult {
  double u = 0;        // U statistic of sample A
  double z = 0;        // normal-approximation z score (tie-corrected)
  double p_value = 1;  // two-sided
  // Common-language effect size: P(a < b) + 0.5 P(a == b); 0.5 = no effect.
  double prob_a_less = 0.5;
};

// Requires at least 4 observations per side (the normal approximation is
// meaningless below that; throws std::invalid_argument).
MannWhitneyResult MannWhitneyU(std::span<const double> a, std::span<const double> b);

}  // namespace cachedir

#endif  // CACHEDIRECTOR_SRC_STATS_SIGNIFICANCE_H_
