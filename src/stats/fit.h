// Least-squares fits used by the evaluation benches.
//
// Fig. 15 of the paper fits tail-latency-vs-throughput data to a piecewise
// curve: linear below the 37 Gbps knee, quadratic above, reporting R^2 for
// both pieces. These helpers implement ordinary least squares for degree 1
// and 2 polynomials plus that piecewise composition.
#ifndef CACHEDIRECTOR_SRC_STATS_FIT_H_
#define CACHEDIRECTOR_SRC_STATS_FIT_H_

#include <span>
#include <vector>

namespace cachedir {

struct LinearFit {
  double intercept = 0;  // a in a + b*x
  double slope = 0;      // b
  double r2 = 0;

  double operator()(double x) const { return intercept + slope * x; }
};

struct QuadraticFit {
  double c0 = 0;  // c0 + c1*x + c2*x^2
  double c1 = 0;
  double c2 = 0;
  double r2 = 0;

  double operator()(double x) const { return c0 + x * (c1 + x * c2); }
};

// Requires at least 2 points with distinct x.
LinearFit FitLinear(std::span<const double> x, std::span<const double> y);

// Requires at least 3 points with distinct x.
QuadraticFit FitQuadratic(std::span<const double> x, std::span<const double> y);

// Piecewise fit around a knee: linear for x < knee, quadratic for x >= knee.
struct PiecewiseKneeFit {
  double knee = 0;
  LinearFit below;
  QuadraticFit above;

  double operator()(double x) const { return x < knee ? below(x) : above(x); }
};

PiecewiseKneeFit FitPiecewiseKnee(std::span<const double> x, std::span<const double> y,
                                  double knee);

}  // namespace cachedir

#endif  // CACHEDIRECTOR_SRC_STATS_FIT_H_
