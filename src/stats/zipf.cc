#include "src/stats/zipf.h"

#include <cmath>
#include <stdexcept>

namespace cachedir {

ZipfGenerator::ZipfGenerator(std::uint64_t n, double theta, std::uint64_t seed)
    : n_(n), theta_(theta), rng_(seed) {
  if (n == 0) {
    throw std::invalid_argument("ZipfGenerator: n must be positive");
  }
  if (theta < 0 || theta >= 1.0 + 1e-9) {
    // Hörmann handles theta > 1 too, but the KVS literature (and this repo)
    // only needs [0, 1); reject anything else to catch configuration slips.
    if (theta < 0) {
      throw std::invalid_argument("ZipfGenerator: theta must be non-negative");
    }
  }
  if (theta_ > 0) {
    h_x1_ = H(1.5) - 1.0;
    h_n_ = H(static_cast<double>(n_) + 0.5);
    s_ = 2.0 - HInverse(H(2.5) - std::pow(2.0, -theta_));
  }
}

double ZipfGenerator::H(double x) const {
  // Integral of x^-theta: x^(1-theta) / (1-theta).
  return std::pow(x, 1.0 - theta_) / (1.0 - theta_);
}

double ZipfGenerator::HInverse(double x) const {
  return std::pow((1.0 - theta_) * x, 1.0 / (1.0 - theta_));
}

std::uint64_t ZipfGenerator::Next() {
  if (theta_ == 0) {
    return rng_.UniformU64(0, n_ - 1);
  }
  while (true) {
    const double u = h_n_ + rng_.UniformDouble() * (h_x1_ - h_n_);
    const double x = HInverse(u);
    auto k = static_cast<std::uint64_t>(x + 0.5);
    if (k < 1) {
      k = 1;
    } else if (k > n_) {
      k = n_;
    }
    const double kd = static_cast<double>(k);
    if (kd - x <= s_ || u >= H(kd + 0.5) - std::pow(kd, -theta_)) {
      return k - 1;  // ranks are 0-based for callers
    }
  }
}

}  // namespace cachedir
