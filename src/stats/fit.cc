#include "src/stats/fit.h"

#include <array>
#include <cmath>
#include <stdexcept>

namespace cachedir {
namespace {

double RSquared(std::span<const double> x, std::span<const double> y,
                const auto& predict) {
  double mean = 0;
  for (const double v : y) {
    mean += v;
  }
  mean /= static_cast<double>(y.size());
  double ss_res = 0;
  double ss_tot = 0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    const double r = y[i] - predict(x[i]);
    ss_res += r * r;
    ss_tot += (y[i] - mean) * (y[i] - mean);
  }
  if (ss_tot == 0) {
    return ss_res == 0 ? 1.0 : 0.0;
  }
  return 1.0 - ss_res / ss_tot;
}

// Solves the 3x3 symmetric normal equations by Gaussian elimination with
// partial pivoting. Small and fixed-size; no linear-algebra dependency needed.
std::array<double, 3> Solve3(std::array<std::array<double, 4>, 3> m) {
  for (int col = 0; col < 3; ++col) {
    int pivot = col;
    for (int row = col + 1; row < 3; ++row) {
      if (std::fabs(m[row][col]) > std::fabs(m[pivot][col])) {
        pivot = row;
      }
    }
    std::swap(m[col], m[pivot]);
    if (std::fabs(m[col][col]) < 1e-12) {
      throw std::invalid_argument("FitQuadratic: singular normal equations");
    }
    for (int row = col + 1; row < 3; ++row) {
      const double f = m[row][col] / m[col][col];
      for (int k = col; k < 4; ++k) {
        m[row][k] -= f * m[col][k];
      }
    }
  }
  std::array<double, 3> out{};
  for (int row = 2; row >= 0; --row) {
    double acc = m[row][3];
    for (int k = row + 1; k < 3; ++k) {
      acc -= m[row][k] * out[k];
    }
    out[row] = acc / m[row][row];
  }
  return out;
}

}  // namespace

LinearFit FitLinear(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size() || x.size() < 2) {
    throw std::invalid_argument("FitLinear: need >= 2 paired points");
  }
  const double n = static_cast<double>(x.size());
  double sx = 0;
  double sy = 0;
  double sxx = 0;
  double sxy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  if (std::fabs(denom) < 1e-12) {
    throw std::invalid_argument("FitLinear: x values are all identical");
  }
  LinearFit fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  fit.r2 = RSquared(x, y, fit);
  return fit;
}

QuadraticFit FitQuadratic(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size() || x.size() < 3) {
    throw std::invalid_argument("FitQuadratic: need >= 3 paired points");
  }
  double s0 = static_cast<double>(x.size());
  double s1 = 0;
  double s2 = 0;
  double s3 = 0;
  double s4 = 0;
  double t0 = 0;
  double t1 = 0;
  double t2 = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double xi = x[i];
    const double x2 = xi * xi;
    s1 += xi;
    s2 += x2;
    s3 += x2 * xi;
    s4 += x2 * x2;
    t0 += y[i];
    t1 += y[i] * xi;
    t2 += y[i] * x2;
  }
  const auto sol = Solve3({{{s0, s1, s2, t0}, {s1, s2, s3, t1}, {s2, s3, s4, t2}}});
  QuadraticFit fit;
  fit.c0 = sol[0];
  fit.c1 = sol[1];
  fit.c2 = sol[2];
  fit.r2 = RSquared(x, y, fit);
  return fit;
}

PiecewiseKneeFit FitPiecewiseKnee(std::span<const double> x, std::span<const double> y,
                                  double knee) {
  std::vector<double> lx;
  std::vector<double> ly;
  std::vector<double> hx;
  std::vector<double> hy;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] < knee) {
      lx.push_back(x[i]);
      ly.push_back(y[i]);
    } else {
      hx.push_back(x[i]);
      hy.push_back(y[i]);
    }
  }
  PiecewiseKneeFit fit;
  fit.knee = knee;
  fit.below = FitLinear(lx, ly);
  fit.above = FitQuadratic(hx, hy);
  return fit;
}

}  // namespace cachedir
