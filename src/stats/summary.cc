#include "src/stats/summary.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cachedir {

Samples::Samples(std::vector<double> values) : values_(std::move(values)) {}

void Samples::Add(double v) {
  values_.push_back(v);
  sorted_valid_ = false;
}

void Samples::EnsureSorted() const {
  if (!sorted_valid_) {
    sorted_ = values_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double Samples::Percentile(double p) const {
  if (values_.empty()) {
    throw std::logic_error("Samples::Percentile on empty sample set");
  }
  EnsureSorted();
  if (p <= 0) {
    return sorted_.front();
  }
  if (p >= 100) {
    return sorted_.back();
  }
  // Linear interpolation between closest ranks. The floor is taken in
  // double precision *before* narrowing to an index: a bare
  // static_cast<std::size_t>(rank) would also truncate, but only for values
  // that fit — std::floor keeps the rounding explicit and the subsequent
  // cast provably in range (rank < size-1 <= 2^53 here).
  const double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  const double rank_floor = std::floor(rank);
  const auto lo = static_cast<std::size_t>(rank_floor);
  const double frac = rank - rank_floor;
  if (lo + 1 >= sorted_.size()) {
    return sorted_.back();
  }
  return sorted_[lo] * (1.0 - frac) + sorted_[lo + 1] * frac;
}

double Samples::Min() const {
  EnsureSorted();
  return sorted_.empty() ? 0.0 : sorted_.front();
}

double Samples::Max() const {
  EnsureSorted();
  return sorted_.empty() ? 0.0 : sorted_.back();
}

double Samples::Mean() const {
  if (values_.empty()) {
    return 0.0;
  }
  double sum = 0;
  for (const double v : values_) {
    sum += v;
  }
  return sum / static_cast<double>(values_.size());
}

double Samples::Stddev() const {
  if (values_.size() < 2) {
    return 0.0;
  }
  const double mean = Mean();
  double sq = 0;
  for (const double v : values_) {
    sq += (v - mean) * (v - mean);
  }
  return std::sqrt(sq / static_cast<double>(values_.size() - 1));
}

double Samples::Skewness() const {
  const std::size_t n = values_.size();
  if (n < 3) {
    return 0.0;
  }
  const double mean = Mean();
  double m2 = 0;
  double m3 = 0;
  for (const double v : values_) {
    const double d = v - mean;
    m2 += d * d;
    m3 += d * d * d;
  }
  m2 /= static_cast<double>(n);
  m3 /= static_cast<double>(n);
  if (m2 == 0) {
    return 0.0;
  }
  const double g1 = m3 / std::pow(m2, 1.5);
  const double nd = static_cast<double>(n);
  return std::sqrt(nd * (nd - 1)) / (nd - 2) * g1;
}

double Samples::CdfAt(double x) const {
  if (values_.empty()) {
    return 0.0;
  }
  EnsureSorted();
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

std::vector<double> Samples::Sorted() const {
  EnsureSorted();
  return sorted_;
}

PercentileRow SummarizePercentiles(const Samples& s) {
  PercentileRow row;
  row.p75 = s.Percentile(75);
  row.p90 = s.Percentile(90);
  row.p95 = s.Percentile(95);
  row.p99 = s.Percentile(99);
  row.mean = s.Mean();
  return row;
}

}  // namespace cachedir
