#include "src/stats/summary.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstdint>
#include <stdexcept>

namespace cachedir {
namespace {

// Below this size introsort's constant factor wins; above it the O(n) radix
// passes do (the figure benches sort 10^4..10^5-sample latency arrays).
constexpr std::size_t kRadixMinSize = 256;

bool AllNonNegativeBits(const std::vector<double>& v) {
  std::uint64_t ors = 0;
  for (const double d : v) {
    ors |= std::bit_cast<std::uint64_t>(d);
  }
  return (ors >> 63) == 0;
}

// LSD radix sort on the raw IEEE-754 bit patterns. For doubles with clear
// sign bits, unsigned bit order equals numeric order, and ties are
// bit-identical values, so the result is byte-for-byte what std::sort
// produces. Negative values (and -0.0) invert under bit order; callers must
// pre-check with AllNonNegativeBits and fall back to std::sort.
void RadixSortNonNegative(std::vector<double>& data) {
  const std::size_t n = data.size();
  std::vector<double> scratch(n);
  std::array<std::array<std::uint32_t, 256>, 8> counts{};
  for (const double d : data) {
    const std::uint64_t bits = std::bit_cast<std::uint64_t>(d);
    for (std::size_t pass = 0; pass < 8; ++pass) {
      ++counts[pass][(bits >> (8 * pass)) & 0xffU];
    }
  }
  double* src = data.data();
  double* dst = scratch.data();
  for (std::size_t pass = 0; pass < 8; ++pass) {
    const std::array<std::uint32_t, 256>& count = counts[pass];
    // Every key sharing one byte value makes the pass a no-op permutation —
    // common in latency data, whose exponents span only a few octaves.
    bool trivial = false;
    for (const std::uint32_t c : count) {
      if (c == n) {
        trivial = true;
        break;
      }
    }
    if (trivial) {
      continue;
    }
    std::array<std::uint32_t, 256> offset;
    std::uint32_t running = 0;
    for (std::size_t b = 0; b < 256; ++b) {
      offset[b] = running;
      running += count[b];
    }
    const std::size_t shift = 8 * pass;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t bits = std::bit_cast<std::uint64_t>(src[i]);
      dst[offset[(bits >> shift) & 0xffU]++] = src[i];
    }
    std::swap(src, dst);
  }
  if (src != data.data()) {
    std::copy(src, src + n, data.data());
  }
}

}  // namespace

Samples::Samples(std::vector<double> values) : values_(std::move(values)) {}

void Samples::Add(double v) {
  values_.push_back(v);
  sorted_valid_ = false;
}

void Samples::Append(std::span<const double> vs) {
  values_.insert(values_.end(), vs.begin(), vs.end());
  sorted_valid_ = false;
}

void Samples::EnsureSorted() const {
  if (!sorted_valid_) {
    sorted_ = values_;
    // The radix histograms count in 32 bits; anything larger (never hit in
    // practice) keeps the comparison sort.
    if (sorted_.size() >= kRadixMinSize && sorted_.size() <= UINT32_MAX &&
        AllNonNegativeBits(sorted_)) {
      RadixSortNonNegative(sorted_);
    } else {
      std::sort(sorted_.begin(), sorted_.end());
    }
    sorted_valid_ = true;
  }
}

double Samples::Percentile(double p) const {
  if (values_.empty()) {
    throw std::logic_error("Samples::Percentile on empty sample set");
  }
  EnsureSorted();
  if (p <= 0) {
    return sorted_.front();
  }
  if (p >= 100) {
    return sorted_.back();
  }
  // Linear interpolation between closest ranks. The floor is taken in
  // double precision *before* narrowing to an index: a bare
  // static_cast<std::size_t>(rank) would also truncate, but only for values
  // that fit — std::floor keeps the rounding explicit and the subsequent
  // cast provably in range (rank < size-1 <= 2^53 here).
  const double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  const double rank_floor = std::floor(rank);
  const auto lo = static_cast<std::size_t>(rank_floor);
  const double frac = rank - rank_floor;
  if (lo + 1 >= sorted_.size()) {
    return sorted_.back();
  }
  return sorted_[lo] * (1.0 - frac) + sorted_[lo + 1] * frac;
}

double Samples::Min() const {
  EnsureSorted();
  return sorted_.empty() ? 0.0 : sorted_.front();
}

double Samples::Max() const {
  EnsureSorted();
  return sorted_.empty() ? 0.0 : sorted_.back();
}

double Samples::Mean() const {
  if (values_.empty()) {
    return 0.0;
  }
  double sum = 0;
  for (const double v : values_) {
    sum += v;
  }
  return sum / static_cast<double>(values_.size());
}

double Samples::Stddev() const {
  if (values_.size() < 2) {
    return 0.0;
  }
  const double mean = Mean();
  double sq = 0;
  for (const double v : values_) {
    sq += (v - mean) * (v - mean);
  }
  return std::sqrt(sq / static_cast<double>(values_.size() - 1));
}

double Samples::Skewness() const {
  const std::size_t n = values_.size();
  if (n < 3) {
    return 0.0;
  }
  const double mean = Mean();
  double m2 = 0;
  double m3 = 0;
  for (const double v : values_) {
    const double d = v - mean;
    m2 += d * d;
    m3 += d * d * d;
  }
  m2 /= static_cast<double>(n);
  m3 /= static_cast<double>(n);
  if (m2 == 0) {
    return 0.0;
  }
  const double g1 = m3 / std::pow(m2, 1.5);
  const double nd = static_cast<double>(n);
  return std::sqrt(nd * (nd - 1)) / (nd - 2) * g1;
}

double Samples::CdfAt(double x) const {
  if (values_.empty()) {
    return 0.0;
  }
  EnsureSorted();
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

std::vector<double> Samples::Sorted() const {
  EnsureSorted();
  return sorted_;
}

PercentileRow SummarizePercentiles(const Samples& s) {
  PercentileRow row;
  row.p75 = s.Percentile(75);
  row.p90 = s.Percentile(90);
  row.p95 = s.Percentile(95);
  row.p99 = s.Percentile(99);
  row.mean = s.Mean();
  return row;
}

}  // namespace cachedir
