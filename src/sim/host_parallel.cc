#include "src/sim/host_parallel.h"

#include <atomic>
#include <cstdlib>

namespace cachedir {

std::size_t BenchThreadCount(std::size_t n) {
  // Host capacity probe + env override: report-only scheduling input, never a
  // simulated quantity (this file is on detlint's nondet-env whitelist, the
  // same carve-out bench/common held before the machinery moved here).
  std::size_t threads = std::thread::hardware_concurrency();
  if (const char* env = std::getenv("CACHEDIR_BENCH_THREADS"); env != nullptr) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) {
      threads = static_cast<std::size_t>(parsed);
    }
  }
  if (threads == 0) {
    threads = 1;
  }
  return threads < n ? threads : n;
}

void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& body) {
  if (n == 0) {
    return;
  }
  const std::size_t threads = BenchThreadCount(n);
  if (threads <= 1) {
    for (std::size_t i = 0; i < n; ++i) {
      body(i);
    }
    return;
  }
  // Work-stealing by atomic ticket: which thread runs which repetition is
  // scheduling-dependent, but repetitions are independent and results land
  // in per-repetition slots, so the merged output is deterministic.
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    pool.emplace_back([&] {
      while (true) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) {
          return;
        }
        body(i);
      }
    });
  }
  for (std::thread& worker : pool) {
    worker.join();
  }
}

WorkerPool::WorkerPool(std::size_t num_threads) : num_threads_(num_threads == 0 ? 1 : num_threads) {
  threads_.reserve(num_threads_ > 0 ? num_threads_ - 1 : 0);
  for (std::size_t i = 1; i < num_threads_; ++i) {
    threads_.emplace_back([this, i] { WorkerMain(i); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
}

void WorkerPool::RunImpl(Trampoline call, void* fn) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    call_ = call;
    fn_ = fn;
    pending_ = num_threads_ - 1;
    ++generation_;
  }
  work_cv_.notify_all();
  call(fn, 0);
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return pending_ == 0; });
  call_ = nullptr;
  fn_ = nullptr;
}

void WorkerPool::WorkerMain(std::size_t index) {
  std::uint64_t seen_generation = 0;
  while (true) {
    Trampoline call = nullptr;
    void* fn = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock,
                    [&] { return shutdown_ || (generation_ != seen_generation && fn_ != nullptr); });
      if (shutdown_) {
        return;
      }
      seen_generation = generation_;
      call = call_;
      fn = fn_;
    }
    call(fn, index);
    bool last = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      last = (--pending_ == 0);
    }
    if (last) {
      done_cv_.notify_one();
    }
  }
}

}  // namespace cachedir
