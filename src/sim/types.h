// Fundamental simulation types shared by every module.
//
// The simulator models time in CPU cycles of the simulated machine; wall-clock
// quantities (nanoseconds) are derived through CpuFrequency. Identifiers are
// plain integer aliases: strong enough for readability, cheap enough for the
// hot paths of the cache simulator.
#ifndef CACHEDIRECTOR_SRC_SIM_TYPES_H_
#define CACHEDIRECTOR_SRC_SIM_TYPES_H_

#include <cstddef>
#include <cstdint>

namespace cachedir {

// Simulated CPU cycles. All latency accounting in the repo uses this unit.
using Cycles = std::uint64_t;

// Simulated wall-clock time in nanoseconds (derived from Cycles via
// CpuFrequency; kept as double to represent sub-cycle-resolution times such as
// packet inter-arrival gaps at 100 Gbps).
using Nanoseconds = double;

// Index of a CPU core on the simulated socket.
using CoreId = std::uint32_t;

// Index of an LLC slice.
using SliceId = std::uint32_t;

// A simulated physical address.
using PhysAddr = std::uint64_t;

// A simulated virtual address (process address space of the simulated app).
using VirtAddr = std::uint64_t;

// Size of one cache line in bytes on every modelled micro-architecture.
inline constexpr std::size_t kCacheLineSize = 64;

// log2(kCacheLineSize); number of offset bits inside a line.
inline constexpr std::uint32_t kCacheLineBits = 6;

// Returns the physical address of the cache line containing `addr`.
constexpr PhysAddr LineBase(PhysAddr addr) { return addr & ~PhysAddr{kCacheLineSize - 1}; }

// Returns true if `addr` is the first byte of a cache line.
constexpr bool IsLineAligned(PhysAddr addr) { return (addr & (kCacheLineSize - 1)) == 0; }

// Clock frequency of the simulated CPU; converts between cycles and ns.
class CpuFrequency {
 public:
  constexpr explicit CpuFrequency(double ghz) : ghz_(ghz) {}

  constexpr double ghz() const { return ghz_; }

  constexpr Nanoseconds ToNanoseconds(Cycles cycles) const {
    return static_cast<double>(cycles) / ghz_;
  }

  constexpr Cycles ToCycles(Nanoseconds ns) const {
    // Round up: an event that takes any fraction of a cycle occupies it fully.
    const double cycles = ns * ghz_;
    const auto whole = static_cast<Cycles>(cycles);
    return (static_cast<double>(whole) < cycles) ? whole + 1 : whole;
  }

 private:
  double ghz_;
};

}  // namespace cachedir

#endif  // CACHEDIRECTOR_SRC_SIM_TYPES_H_
