// Deterministic, explicitly-seeded random number generation.
//
// Every stochastic component in the simulator takes an Rng (or a seed) as a
// constructor argument; there is no global random state, so every experiment
// in bench/ is reproducible bit-for-bit.
#ifndef CACHEDIRECTOR_SRC_SIM_RNG_H_
#define CACHEDIRECTOR_SRC_SIM_RNG_H_

#include <cstdint>
#include <random>

namespace cachedir {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  // Uniform integer in [lo, hi] (inclusive).
  std::uint64_t UniformU64(std::uint64_t lo, std::uint64_t hi) {
    return std::uniform_int_distribution<std::uint64_t>(lo, hi)(engine_);
  }

  // Uniform index in [0, n). Requires n > 0.
  std::size_t UniformIndex(std::size_t n) { return UniformU64(0, n - 1); }

  // Uniform double in [0, 1).
  double UniformDouble() { return std::uniform_real_distribution<double>(0.0, 1.0)(engine_); }

  // True with probability p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  // Exponentially distributed value with the given mean (for Poisson arrivals).
  double Exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  // Derives an independent child generator; used to give each simulated core
  // or run its own stream without correlation.
  Rng Fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace cachedir

#endif  // CACHEDIRECTOR_SRC_SIM_RNG_H_
