// Per-core cycle clocks.
//
// The simulator is not event-driven at instruction granularity: each core owns
// a monotonically increasing cycle counter that is advanced by the latency of
// every simulated memory access (plus fixed instruction costs charged by the
// application models). Queueing behaviour emerges by synchronising a core's
// clock with packet arrival timestamps (see nfv/runtime.h).
#ifndef CACHEDIRECTOR_SRC_SIM_CLOCK_H_
#define CACHEDIRECTOR_SRC_SIM_CLOCK_H_

#include "src/sim/types.h"

namespace cachedir {

class CoreClock {
 public:
  CoreClock() = default;

  Cycles now() const { return now_; }

  // Advances the clock by `delta` cycles and returns the new time.
  Cycles Advance(Cycles delta) {
    now_ += delta;
    return now_;
  }

  // Moves the clock forward to `t` if `t` is in the future (e.g. an idle core
  // waiting for the next packet arrival). Never moves backwards.
  void AdvanceTo(Cycles t) {
    if (t > now_) {
      now_ = t;
    }
  }

  void Reset() { now_ = 0; }

 private:
  Cycles now_ = 0;
};

}  // namespace cachedir

#endif  // CACHEDIRECTOR_SRC_SIM_CLOCK_H_
