// Deterministic epoch-based in-run parallel simulation (PDES engine).
//
// The serial MemoryHierarchy charges every access synchronously, which pins
// one simulated run to one host thread. This engine shards a *single* run
// across a host worker pool while keeping every simulated output — cycles,
// stats, per-slice CBo events, directory and tag-array state — bit-identical
// to the serial engine (epoch_equivalence_test). See docs/architecture.md
// §14 for the full design and determinism argument. In brief:
//
//  * Capture. The engine attaches to the hierarchy as a HierarchyCaptureSink;
//    accesses are buffered (in submission order, each line numbered by a
//    global sequence) instead of executed, until a window of ops is settled
//    at an epoch barrier.
//  * Phase 1 (parallel over cores). Each worker executes its cores' ops
//    against their own L1/L2 in-place (journaling pre-images), predicts the
//    snoop/LLC branch of misses from the frozen pre-window shared state, and
//    emits micro-ops — keyed (seq << 2 | sub) so intra-access order is total
//    — into per-(worker, slice) queues.
//  * Phase 2 (parallel over slices). Each worker k-way-merges its slice's
//    queues by key and replays them against the authoritative LLC slice and
//    the slice-sharded directory, in exactly the serial code's op order,
//    validating every phase-1 claim/prediction against the directory (which
//    mirrors the tag arrays exactly). Remote-core cache updates are not
//    applied but emitted as keyed effects.
//  * Phase 3 (verdict + commit). A window aborts if any validation failed or
//    an effect lands in a set a core filled after the effect's key (the
//    fill's victim choice could differ serially). On commit, effects apply
//    in key order and stats/cycles merge in fixed order. On abort, all
//    journals roll back and the window re-executes serially through the
//    public API — so a misspeculation costs time, never correctness.
//
// The serial reference path stays selectable (EpochEngineOptions::
// force_serial, same pattern as CACHEDIR_GENERIC_ONLY): it settles every
// window through the public API with capture suspended, which is trivially
// bit-identical and is what the speculative path is tested against.
#ifndef CACHEDIRECTOR_SRC_SIM_EPOCH_ENGINE_H_
#define CACHEDIRECTOR_SRC_SIM_EPOCH_ENGINE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "src/cache/hierarchy.h"
#include "src/sim/host_parallel.h"
#include "src/sim/rng.h"

namespace cachedir {

struct EpochEngineOptions {
  // Host worker threads for the parallel phases. 1 still runs the full
  // epoch/merge protocol (the reference shape the ISSUE describes), just
  // inline on the calling thread.
  std::size_t num_threads = 1;
  // Auto-settle budget: a window settles once it holds this many line ops.
  // One captured op always stays whole (a larger DMA range widens its
  // window) so windows never split a range. With adaptive_window this is the
  // controller's starting budget.
  std::size_t window_line_ops = 4096;
  // Deterministic adaptive window sizing: the budget is halved after an
  // aborted window and doubled after a streak of clean low-sharing windows,
  // within [min_window_line_ops, max_window_line_ops]. The controller reads
  // only simulated-stream facts (abort verdicts, emitted-effect counts),
  // never host time, so the window schedule — and, by window-schedule
  // invariance, every simulated output — is identical across host worker
  // counts and across reruns (epoch_equivalence_test).
  bool adaptive_window = true;
  std::size_t min_window_line_ops = 64;   // clamped to window_line_ops if smaller
  std::size_t max_window_line_ops = 0;    // 0: 64 * window_line_ops
  // Settle every window through the serial public API instead of the
  // speculative phases — the selectable serial reference.
  bool force_serial = false;
  // Retain settled per-line cycle results so CyclesInRange() can answer for
  // any settled span (the NFV runtime's per-packet accounting needs this;
  // throughput benches leave it off and read total_cycles()).
  bool keep_line_results = false;
};

struct EpochEngineStats {
  std::uint64_t captured_line_ops = 0;
  std::uint64_t windows = 0;             // windows settled, by any path
  std::uint64_t speculative_windows = 0; // settled through the parallel phases
  std::uint64_t fast_commit_windows = 0; // speculative, no-contention: committed
                                         // without the phase-2 replay/validation pass
  std::uint64_t aborted_windows = 0;     // speculative windows re-run serially
  std::uint64_t effects_applied = 0;     // cross-core cache ops deferred+committed
  std::uint64_t merged_micro_ops = 0;    // micro-ops k-way-merged and replayed in phase 2
  std::uint64_t journal_rows_saved = 0;  // set-row pre-images copied for rollback
  // Adaptive controller trajectory: the budget after each change, starting
  // with the initial budget (bounded; growth stops recording once full).
  std::vector<std::uint32_t> window_size_trajectory;
};

// One engine drives one MemoryHierarchy; it attaches at construction and
// detaches (after settling) at destruction. The application model stays
// single-threaded: it issues accesses exactly as before, and the engine
// parallelises *between* its calls. Restrictions: specs with
// l2_next_line_prefetch run serial windows (no preset enables it), and CAT
// reconfiguration (SetCosWayMask/AssignCoreToCos) must not happen while ops
// are pending — call Flush() first.
class EpochEngine final : public HierarchyCaptureSink {
 public:
  EpochEngine(MemoryHierarchy& hierarchy, const EpochEngineOptions& options);
  ~EpochEngine();

  EpochEngine(const EpochEngine&) = delete;
  EpochEngine& operator=(const EpochEngine&) = delete;

  // HierarchyCaptureSink — called by the hierarchy, not by applications.
  AccessResult OnAccess(CoreId core, PhysAddr addr, bool is_write) override;
  BatchResult OnAccessRange(CoreId core, const AccessBatch& batch, bool is_write) override;
  Cycles OnDmaRange(PhysAddr addr, std::size_t bytes, bool is_write) override;
  void OnSerialPoint() override { Flush(); }

  // Settles every pending captured op. After this, hierarchy state and stats
  // equal the serial execution of everything issued so far.
  void Flush();

  // Line ops captured so far (monotonic; also counts settled ones). Callers
  // bracket a span of work with two readings and charge it via
  // CyclesInRange.
  std::uint64_t line_op_count() const { return next_seq_; }

  // Sum of simulated cycles of line ops in [begin, end) (line_op_count
  // readings). Settles pending work first. Requires keep_line_results and
  // that the span has not been dropped. Exact at op boundaries: the serial
  // fallback attributes a multi-line range's cycles to its first line.
  Cycles CyclesInRange(std::uint64_t begin, std::uint64_t end);

  // Frees settled per-line results up to line_op_count(); subsequent
  // CyclesInRange spans must start at or after this point.
  void DropSettledResults();

  // Total simulated cycles over every settled line op.
  Cycles total_cycles() const { return total_cycles_; }

  const EpochEngineStats& engine_stats() const { return engine_stats_; }
  std::size_t num_threads() const { return pool_.num_threads(); }

 private:
  struct CapturedOp {
    enum class Kind : std::uint8_t { kCoreAccess, kDmaWrite, kDmaRead };
    Kind kind = Kind::kCoreAccess;
    bool is_write = false;  // core accesses only
    CoreId core = 0;        // core accesses only
    PhysAddr addr = 0;      // line base (core) / range base (DMA)
    std::size_t bytes = 0;  // DMA ranges only
    std::uint64_t first_seq = 0;
    std::uint32_t lines = 1;
  };

  // A micro-op: the shared-state portion of one captured line op, routed to
  // the queue of the slice whose LLC/directory shard it touches. The key
  // orders the whole window totally: (global line seq << 2) | sub, where sub
  // separates an access's primary op (0) from its L2-victim (1) and
  // L1-victim (2) side ops, exactly the serial code's in-access order.
  // One flat record — a single push per emit, a single pointer per merge
  // cursor (an SoA split measured as pure overhead here: the merge reads the
  // payload right after the key either way).
  //
  // DMA kinds are *block* micro-ops: one record covers every line of a
  // 64-line captured-range chunk that hashes to this slice (`mask` bit i =
  // line at `line + i*kCacheLineSize`, key = the first masked line's key).
  // A captured range owns a contiguous seq span, so no foreign key can land
  // between two masked lines and the block replays as an uninterrupted key
  // run — same total order as per-line emission at a third of the stream.
  struct MicroOp {
    std::uint64_t key = 0;
    PhysAddr line = 0;   // the line; DMA blocks: chunk base line
    std::uint64_t mask = 0;  // DMA blocks only: this slice's lines in the chunk
    CoreId core = 0;
    std::uint8_t kind = 0;
    std::uint8_t flags = 0;
  };

  // One per-(worker, slice) micro-op arena with window-tagged recycling: a
  // stale tag means "logically empty", so windows reuse capacity without a
  // per-window clear sweep and without steady-state heap allocations
  // (hotpath_alloc_test probes this).
  struct MicroQueue {
    std::vector<MicroOp> ops;  // key-ascending within the queue
    std::uint32_t tag = 0;

    std::size_t SizeIn(std::uint32_t window) const { return tag == window ? ops.size() : 0; }
    void Append(std::uint32_t window, const MicroOp& op) {
      if (tag != window) {
        tag = window;
        ops.clear();
      }
      ops.push_back(op);
    }
  };

  // MicroOp kinds.
  static constexpr std::uint8_t kOpHitL1 = 0;
  static constexpr std::uint8_t kOpHitL2 = 1;
  static constexpr std::uint8_t kOpMiss = 2;
  static constexpr std::uint8_t kOpL2Evict = 3;
  static constexpr std::uint8_t kOpL1Evict = 4;
  static constexpr std::uint8_t kOpDmaWrite = 5;
  static constexpr std::uint8_t kOpDmaRead = 6;

  // MicroOp flags: claims (phase-1 observations of its own L1/L2, validated
  // against the directory) and predictions (frozen-state guesses about the
  // shared branch, validated against the authoritative replay).
  static constexpr std::uint8_t kFlagIsWrite = 1u << 0;
  static constexpr std::uint8_t kFlagObservedDirty = 1u << 1;   // own-probe dirty bit
  static constexpr std::uint8_t kFlagPredRemote = 1u << 2;      // dirty-elsewhere snoop
  static constexpr std::uint8_t kFlagPredFillDirty = 1u << 3;   // remote read / victim hit
  static constexpr std::uint8_t kFlagPredLlcHit = 1u << 4;      // victim mode only
  static constexpr std::uint8_t kFlagEvictedDirty = 1u << 5;    // victim's own dirty bit
  static constexpr std::uint8_t kFlagCompanionPresent = 1u << 6; // L1Evict: in L2; L2Evict: in L1
  static constexpr std::uint8_t kFlagCompanionDirty = 1u << 7;   // L2Evict: L1 copy dirty

  // A deferred remote-core cache update, emitted by phase 2 and applied (in
  // key order) at commit.
  struct Effect {
    std::uint64_t key = 0;
    PhysAddr line = 0;
    bool invalidate = false;  // false: mark clean (M -> S downgrade)
  };

  // One journaled set row: enough to restore a SetAssocCache set bit-exactly
  // (tags + SetScalars + LRU stamps live in words_ at word_offset).
  struct RowRecord {
    SetAssocCache* cache = nullptr;
    std::uint32_t set = 0;
    std::uint32_t word_offset = 0;
  };

  // One journaled directory line: pre-image, restored in reverse order.
  struct DirRecord {
    PhysAddr line = 0;
    LineDirectoryEntry entry;
    bool existed = false;
  };

  // A drain cursor over one queue during the phase-2 merge.
  struct MergeCursor {
    const MicroOp* p = nullptr;
    const MicroOp* end = nullptr;
  };

  // Phase-1 context of one worker (owns cores c with c % W == w and DMA ops
  // i with i % W == w).
  struct WorkerCtx {
    std::vector<MicroQueue> queues;  // [slice]
    HierarchyStats stats;
    std::vector<RowRecord> rows;
    std::vector<std::uint64_t> row_words;
    // Phase 3: merged, key-ordered effects for each of this worker's cores
    // (vector index: core / W), reused between the verdict and commit steps.
    std::vector<std::vector<Effect>> merged_effects;
    // Phase-2 merge scratch (worker w replays slices w, w+W, ...): the
    // merged stream, contributor cursors, and the loser tree, all persistent
    // across windows so the merge allocates nothing in steady state.
    std::vector<MicroOp> merge_ops;
    std::vector<MergeCursor> merge_cur;
    std::vector<std::uint32_t> merge_tree;
    // Phase-1 DMA chunk scratch ([slice]): the per-slice line mask and
    // first-line index of the chunk being routed (see Phase1Dma).
    std::vector<std::uint64_t> dma_mask;
    std::vector<std::uint32_t> dma_first;
    Cycles own_total = 0;  // phase-1 cycle share when !keep_line_results
    bool fast_ok = true;   // every op so far is fast-commit-safe (see Settle)
    bool abort = false;
  };

  // Phase-2 context of one slice (worker s % W replays slices s).
  struct SliceCtx {
    HierarchyStats stats;
    std::vector<RowRecord> rows;
    std::vector<std::uint64_t> row_words;
    std::vector<DirRecord> dir_records;
    std::vector<std::vector<Effect>> effects;  // [core] -> key-ascending effects
    Rng rng_snapshot{0};                       // kRandom only
    Cycles shared_total = 0;   // phase-2 cycle share when !keep_line_results
    std::uint64_t merged_ops = 0;  // micro-ops replayed this window
    bool abort = false;
  };

  // Per-(core cache) window-tagged tables: set-row journal dedup and the
  // phase-3 fill-conflict check (max key at which phase 1 filled each set).
  struct CoreCacheTables {
    std::vector<std::uint32_t> journal_tag;
    std::vector<std::uint32_t> fill_tag;
    std::vector<std::uint64_t> fill_key;
  };

  static constexpr std::uint64_t Key(std::uint64_t seq, unsigned sub) {
    return (seq << 2) | sub;
  }

  void CaptureCoreLine(CoreId core, PhysAddr addr, bool is_write);
  void ReserveWindow(std::size_t incoming_lines);
  void Settle();
  void PrepareWindow();
  void ReplaySerial();
  void AdaptWindowLimit(bool aborted, std::uint64_t window_effects);

  // Phase 1.
  void Phase1(std::size_t worker);
  void Phase1Access(WorkerCtx& ctx, const CapturedOp& op);
  void Phase1Dma(WorkerCtx& ctx, const CapturedOp& op);
  void LocalFillL1(WorkerCtx& ctx, CoreId core, PhysAddr line, bool dirty, std::uint64_t seq,
                   unsigned fill_sub, unsigned evict_sub);
  void LocalFillL2(WorkerCtx& ctx, CoreId core, PhysAddr line, bool dirty, std::uint64_t seq);
  void Emit(WorkerCtx& ctx, SliceId slice, const MicroOp& op) {
    ctx.queues[slice].Append(window_id_, op);
  }
  void AddOwn(WorkerCtx& ctx, std::uint64_t seq, Cycles cycles) {
    if (track_line_cycles_) {
      own_cycles_[seq - window_base_] += cycles;
    } else {
      ctx.own_total += cycles;
    }
  }

  // Fast commit: every micro-op in the window is an L1 hit that cannot touch
  // shared state (read, or write that observed its own line already dirty),
  // so phases 2+3 are skipped entirely (see Settle for the soundness note).
  void FastCommit();

  // Phase 2.
  void Phase2(std::size_t worker);
  void ReplaySlice(std::size_t worker, SliceCtx& ctx, SliceId slice);
  static void TwoWayMerge(MergeCursor a, MergeCursor b, std::vector<MicroOp>& out);
  static void LoserTreeMerge(std::vector<MergeCursor>& cur, std::vector<std::uint32_t>& tree,
                             std::vector<MicroOp>& out);
  void ReplayRun(SliceCtx& ctx, SliceId slice, const MicroOp* run, std::size_t count);
  void ReplayHitL1(SliceCtx& ctx, SliceId slice, const MicroOp& op);
  void ReplayHitL2(SliceCtx& ctx, SliceId slice, const MicroOp& op);
  void ReplayMiss(SliceCtx& ctx, SliceId slice, const MicroOp& op);
  void ReplayL2Evict(SliceCtx& ctx, SliceId slice, const MicroOp& op);
  void ReplayL1Evict(SliceCtx& ctx, SliceId slice, const MicroOp& op);
  void ReplayDmaWrite(SliceCtx& ctx, SliceId slice, const MicroOp& op);
  void ReplayDmaRead(SliceCtx& ctx, SliceId slice, const MicroOp& op);
  void ReplayDirRemove(SliceCtx& ctx, CoreId core, PhysAddr line, bool is_l1);
  void ReplayInvalidateElsewhere(SliceCtx& ctx, std::uint64_t key, CoreId core, PhysAddr line);
  void ReplayDowngradeElsewhere(SliceCtx& ctx, std::uint64_t key, CoreId core, PhysAddr line);
  void ReplayBackInvalidate(SliceCtx& ctx, std::uint64_t key, PhysAddr line);
  void ReplayLlcEviction(SliceCtx& ctx, std::uint64_t key, SliceId slice,
                         const std::optional<EvictedLine>& evicted);
  void DirFill(SliceCtx& ctx, PhysAddr line, CoreId core, bool to_l1, bool dirty, SliceId slice);
  // Journals `line`'s directory pre-image. The *Entry flavour reuses an
  // already-found entry pointer instead of a second directory lookup.
  void RecordDir(SliceCtx& ctx, PhysAddr line);
  void RecordDirEntry(SliceCtx& ctx, PhysAddr line, const LineDirectoryEntry* entry);
  void AddShared(SliceCtx& ctx, std::uint64_t key, Cycles cycles) {
    if (track_line_cycles_) {
      shared_cycles_[(key >> 2) - window_base_] += cycles;
    } else {
      ctx.shared_total += cycles;
    }
  }

  // Phase 3.
  void Phase3Verdict(std::size_t worker);
  void Phase3Commit(std::size_t worker);
  void MergeEffects(std::size_t worker);
  std::uint64_t CommitWindow();  // returns this window's applied-effect count
  void RollbackWindow();

  // Journaling.
  void JournalCoreRow(WorkerCtx& ctx, CoreId core, bool is_l1, std::size_t set);
  void JournalLlcRow(SliceCtx& ctx, SliceId slice, std::size_t set);
  static void SaveRow(const SetAssocCache& cache, std::size_t set, std::vector<std::uint64_t>& out);
  static void RestoreRow(SetAssocCache& cache, std::size_t set, const std::uint64_t* words);
  static std::size_t RowWords(const SetAssocCache& cache);
  void NoteFill(CoreId core, bool is_l1, std::size_t set, std::uint64_t key);

  static SliceId DirSliceFn(const void* ctx, PhysAddr line);

  MemoryHierarchy& hierarchy_;
  const EpochEngineOptions options_;
  WorkerPool pool_;
  const bool serial_only_;  // force_serial or an engine-unsupported spec
  const bool random_repl_;  // snapshot/restore RNGs around windows

  // Capture state.
  std::vector<CapturedOp> ops_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t window_base_ = 0;   // global seq of the window's first line
  std::size_t window_lines_ = 0;

  // Adaptive window controller (deterministic: driven only by abort verdicts
  // and emitted-effect counts — see EpochEngineOptions::adaptive_window).
  std::size_t window_limit_ = 0;  // current auto-settle budget
  std::size_t min_limit_ = 0;
  std::size_t max_limit_ = 0;
  std::uint32_t clean_streak_ = 0;
  const bool track_line_cycles_;  // keep_line_results: per-rel cycle arrays

  // Per-window scratch, sized to the window's line count.
  std::vector<Cycles> own_cycles_;     // phase-1 (core-local) cycle share, by rel seq
  std::vector<Cycles> shared_cycles_;  // phase-2 (shared-state) cycle share, by rel seq

  std::vector<WorkerCtx> workers_;
  std::vector<SliceCtx> slice_ctx_;
  std::vector<CoreCacheTables> l1_tables_;
  std::vector<CoreCacheTables> l2_tables_;
  std::vector<std::uint32_t> llc_journal_tag_;  // [slice * sets + set]
  std::size_t llc_sets_ = 0;                    // sets per LLC slice (uniform)
  std::uint32_t window_id_ = 0;

  std::vector<CboEvents> cbo_snapshot_;
  std::vector<Rng> core_rng_snapshot_;  // [core * 2 + level], kRandom only

  // Settled results.
  Cycles total_cycles_ = 0;
  std::vector<Cycles> results_;        // per settled line, when keep_line_results
  std::uint64_t results_base_ = 0;     // global seq of results_[0]
  EpochEngineStats engine_stats_;
};

}  // namespace cachedir

#endif  // CACHEDIRECTOR_SRC_SIM_EPOCH_ENGINE_H_
