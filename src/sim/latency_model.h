// Fixed latency parameters of the simulated memory hierarchy.
//
// Values are calibrated against the paper's test machines: Intel documents
// 4-cycle L1 and ~12-cycle L2 hits; the paper measures 34-54 cycles to LLC
// slices (Fig. 5a) and quotes ~60 ns DRAM (~192 cycles at 3.2 GHz). The
// per-slice component comes from the Interconnect model, not from here.
#ifndef CACHEDIRECTOR_SRC_SIM_LATENCY_MODEL_H_
#define CACHEDIRECTOR_SRC_SIM_LATENCY_MODEL_H_

#include "src/sim/types.h"

namespace cachedir {

struct LatencyModel {
  Cycles l1_hit = 4;
  Cycles l2_hit = 12;
  // Slice-local LLC pipeline latency; Interconnect::SlicePenalty is added.
  Cycles llc_base = 34;
  // Full DRAM round trip, charged on an LLC miss (on top of the LLC lookup
  // that discovered the miss).
  Cycles dram = 192;
  // Retiring a store that hits the store buffer / L1 (write-back policy makes
  // stores complete at L1 regardless of where the line lives — Fig. 5b).
  Cycles store_commit = 1;
  // Cost charged to the core when a dirty line must be written back on the
  // miss path (models write-buffer backpressure under sustained stores; this
  // is what makes slice distance visible to write workloads in Fig. 6b).
  Cycles writeback_busy = 4;
  // Extra cycles for a cache-to-cache transfer when another core holds the
  // line Modified (snoop + forward, on top of the LLC path).
  Cycles snoop_transfer = 26;
  // Extra cycles for a store that hits a Shared line: the bus upgrade that
  // invalidates the other copies (paid on top of the LLC round trip).
  Cycles upgrade = 0;
};

}  // namespace cachedir

#endif  // CACHEDIRECTOR_SRC_SIM_LATENCY_MODEL_H_
