// Replacement-policy selector. Lives in sim (not cache) so MachineSpec can
// carry the socket's policy without a layering cycle.
#ifndef CACHEDIRECTOR_SRC_SIM_REPLACEMENT_KIND_H_
#define CACHEDIRECTOR_SRC_SIM_REPLACEMENT_KIND_H_

namespace cachedir {

enum class ReplacementKind {
  kLru,       // true LRU (default; what the paper's reasoning assumes)
  kTreePlru,  // binary-tree pseudo-LRU (closer to shipped silicon)
  kRandom,    // pessimistic baseline for ablations
};

}  // namespace cachedir

#endif  // CACHEDIRECTOR_SRC_SIM_REPLACEMENT_KIND_H_
