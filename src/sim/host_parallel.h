// Host-side parallel execution machinery shared by the bench harness and the
// epoch engine (promoted out of bench/common.* so src/ code can use it).
//
// Two layers:
//  * ParallelFor / BenchThreadCount — the deterministic repetition fan-out the
//    benches have always used (spawn-join, atomic ticket, per-slot results).
//  * WorkerPool — a persistent pool with generation barriers for the epoch
//    engine, which runs many short phases per simulation and cannot afford a
//    thread spawn per phase.
//
// Nothing here reads the host clock; thread scheduling never influences a
// simulated quantity (callers must keep results in per-index slots or merge
// them in a fixed order — see docs/architecture.md §9 and §14).
#ifndef CACHEDIRECTOR_SRC_SIM_HOST_PARALLEL_H_
#define CACHEDIRECTOR_SRC_SIM_HOST_PARALLEL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace cachedir {

// Number of worker threads: min(n, hardware threads), overridable with the
// CACHEDIR_BENCH_THREADS environment variable (1 forces the serial path).
std::size_t BenchThreadCount(std::size_t n);

// Runs body(0..n-1), each index exactly once, on a fresh spawn-join pool.
// body must not touch shared mutable state except its own result slot.
void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& body);

// Persistent worker pool with generation barriers.
//
// `Run(fn)` executes fn(0..num_threads-1) — index 0 on the calling thread,
// the rest on persistent workers — and returns only after every index
// finished (a full barrier, which also sequences the workers' writes before
// the caller's next read: release/acquire through the pool mutex).
//
// Run dispatches through a borrowed (object, trampoline) pair rather than a
// std::function: the epoch engine launches several phases per settled
// window, and the hot path must stay free of type-erasure allocations and
// indirect-copy overhead. The callable only needs to outlive the Run call —
// a stack lambda is fine.
//
// Workers sleep on a condition variable between phases (no spin-waiting):
// an oversubscribed host — CI runners, the 1-vCPU baseline container — must
// not burn its only core in a spin loop while the simulation makes progress
// on another thread.
class WorkerPool {
 public:
  // `num_threads` counts the calling thread; 0 is clamped to 1. With 1, Run
  // executes fn(0) inline and no threads are ever created.
  explicit WorkerPool(std::size_t num_threads);
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;
  ~WorkerPool();

  std::size_t num_threads() const { return num_threads_; }

  // Barrier-executes fn(index) for every index in [0, num_threads()).
  // fn must partition its work by index; the pool adds no ordering beyond
  // the final barrier.
  template <typename Fn>
  void Run(Fn&& fn) {
    if (num_threads_ == 1) {
      fn(std::size_t{0});
      return;
    }
    using Decayed = std::remove_reference_t<Fn>;
    RunImpl(&TrampolineFor<Decayed>, const_cast<Decayed*>(std::addressof(fn)));
  }

 private:
  using Trampoline = void (*)(void*, std::size_t);

  template <typename Fn>
  static void TrampolineFor(void* fn, std::size_t index) {
    (*static_cast<Fn*>(fn))(index);
  }

  void RunImpl(Trampoline call, void* fn);
  void WorkerMain(std::size_t index);

  const std::size_t num_threads_;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  Trampoline call_ = nullptr;                             // guarded by mu_
  void* fn_ = nullptr;                                    // guarded by mu_
  std::uint64_t generation_ = 0;                          // guarded by mu_
  std::size_t pending_ = 0;                               // guarded by mu_
  bool shutdown_ = false;                                 // guarded by mu_
};

}  // namespace cachedir

#endif  // CACHEDIRECTOR_SRC_SIM_HOST_PARALLEL_H_
