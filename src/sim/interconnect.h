// On-die interconnect models: the NUCA latency between a core and an LLC slice.
//
// Haswell-class parts place cores and LLC slices on a bi-directional ring;
// Skylake-SP parts use a 2D mesh with more slices than active cores. Both are
// modelled as a pure function (core, slice) -> extra cycles on top of the base
// LLC pipeline latency. The parameters are calibrated so that the access-time
// benches reproduce the shape of the paper's Fig. 5a (bimodal ring, ~20-cycle
// spread) and Fig. 16 (mesh, wider spread, multiple near slices per core).
#ifndef CACHEDIRECTOR_SRC_SIM_INTERCONNECT_H_
#define CACHEDIRECTOR_SRC_SIM_INTERCONNECT_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "src/sim/types.h"

namespace cachedir {

class Interconnect {
 public:
  Interconnect() = default;
  virtual ~Interconnect() = default;

  virtual std::size_t num_cores() const = 0;
  virtual std::size_t num_slices() const = 0;

  // Extra cycles incurred when `core` accesses LLC slice `slice`, on top of
  // the slice-local pipeline latency. Deterministic.
  virtual Cycles SlicePenalty(CoreId core, SliceId slice) const = 0;

 protected:
  // Protected copy/move: copying through the base would slice the concrete
  // topology (ring vs mesh).
  Interconnect(const Interconnect&) = default;
  Interconnect& operator=(const Interconnect&) = default;
};

// Bi-directional ring with one stop per (core, slice) pair, as on Haswell-EP.
//
// The penalty combines hop distance on the ring with a parity term that models
// the dual-ring polarity (requests whose source and destination stops have
// different parity must cross to the other ring direction at a cost). This
// yields the bimodal per-slice latency the paper measures from core 0: even
// slices cheap, odd slices expensive.
class RingInterconnect final : public Interconnect {
 public:
  struct Params {
    std::size_t num_stops = 8;      // cores == slices == stops
    Cycles hop_cost = 2;            // cycles per ring hop
    Cycles parity_penalty = 10;     // ring-direction crossing cost
    // With 8 stops the worst same-parity distance is 4 hops (8 cycles), so a
    // crossing penalty of 10 keeps every cross-parity slice strictly slower
    // than every same-parity one — the clean bimodal split of Fig. 5a.
  };

  explicit RingInterconnect(const Params& params) : params_(params) {}

  std::size_t num_cores() const override { return params_.num_stops; }
  std::size_t num_slices() const override { return params_.num_stops; }

  Cycles SlicePenalty(CoreId core, SliceId slice) const override {
    const std::size_t n = params_.num_stops;
    const std::size_t a = core % n;
    const std::size_t b = slice % n;
    const std::size_t forward = (b + n - a) % n;
    const std::size_t hops = forward < n - forward ? forward : n - forward;
    const Cycles parity = ((a + b) & 1) != 0 ? params_.parity_penalty : 0;
    return params_.hop_cost * hops + parity;
  }

 private:
  Params params_;
};

// 2D mesh with explicit tile coordinates, as on Skylake-SP.
//
// Slices occupy fixed grid positions; each active core is co-located with one
// tile. The number of slices may exceed the number of cores (Xeon Gold 6134:
// 8 cores, 18 slices). Penalty is hop_cost * Manhattan distance.
class MeshInterconnect final : public Interconnect {
 public:
  struct Coord {
    int row = 0;
    int col = 0;
  };

  struct Params {
    std::vector<Coord> core_pos;   // indexed by CoreId
    std::vector<Coord> slice_pos;  // indexed by SliceId
    Cycles hop_cost = 2;
  };

  explicit MeshInterconnect(Params params) : params_(std::move(params)) {}

  std::size_t num_cores() const override { return params_.core_pos.size(); }
  std::size_t num_slices() const override { return params_.slice_pos.size(); }

  Cycles SlicePenalty(CoreId core, SliceId slice) const override {
    const Coord c = params_.core_pos[core];
    const Coord s = params_.slice_pos[slice];
    const int dist = Abs(c.row - s.row) + Abs(c.col - s.col);
    return params_.hop_cost * static_cast<Cycles>(dist);
  }

 private:
  static constexpr int Abs(int v) { return v < 0 ? -v : v; }

  Params params_;
};

}  // namespace cachedir

#endif  // CACHEDIRECTOR_SRC_SIM_INTERCONNECT_H_
