// Epoch engine implementation. The phase-2 replay handlers below mirror
// MemoryHierarchy::Access and its helpers (src/cache/hierarchy.cc) operation
// for operation — every directory/LLC/CBo mutation happens in the same order
// the serial code performs it, which is what makes the merge bit-identical.
// Any deviation from the serial path must fail a validation (A1/A2/A3 below)
// and abort the window into the serial fallback; epoch_equivalence_test
// compares full simulated state against the serial engine either way.
#include "src/sim/epoch_engine.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace cachedir {
namespace {

constexpr std::uint64_t Bit(CoreId core) { return std::uint64_t{1} << core; }

// Bound on recorded window-size trajectory points (EpochEngineStats): enough
// to show the controller's full ramp, small enough that the stats stay flat.
constexpr std::size_t kTrajectoryCap = 64;

}  // namespace

SliceId EpochEngine::DirSliceFn(const void* ctx, PhysAddr line) {
  return static_cast<const SlicedLlc*>(ctx)->SliceOf(line);
}

EpochEngine::EpochEngine(MemoryHierarchy& hierarchy, const EpochEngineOptions& options)
    : hierarchy_(hierarchy),
      options_(options),
      pool_(options.num_threads),
      serial_only_(options.force_serial || hierarchy.spec().l2_next_line_prefetch),
      random_repl_(hierarchy.spec().replacement == ReplacementKind::kRandom),
      track_line_cycles_(options.keep_line_results) {
  if (hierarchy_.capture_ != nullptr) {
    throw std::logic_error("EpochEngine: hierarchy already has a capture sink");
  }
  if (options_.window_line_ops == 0) {
    throw std::invalid_argument("EpochEngine: window_line_ops must be positive");
  }
  window_limit_ = options_.window_line_ops;
  if (options_.adaptive_window && !serial_only_) {
    min_limit_ = std::max<std::size_t>(
        1, std::min(options_.min_window_line_ops, options_.window_line_ops));
    // The default cap is a generous 64x: the window-set journal's dedupe
    // factor scales with how much of a streaming workload's set space one
    // window revisits, and an abort walks the budget back down in halves.
    max_limit_ = options_.max_window_line_ops == 0
                     ? options_.window_line_ops * 64
                     : std::max(options_.max_window_line_ops, options_.window_line_ops);
  } else {
    min_limit_ = window_limit_;
    max_limit_ = window_limit_;
  }
  engine_stats_.window_size_trajectory.reserve(kTrajectoryCap);
  engine_stats_.window_size_trajectory.push_back(static_cast<std::uint32_t>(window_limit_));
  if (!serial_only_) {
    const MachineSpec& spec = hierarchy_.spec();
    const std::size_t cores = spec.num_cores;
    const std::size_t slices = spec.num_slices;
    const std::size_t num_workers = pool_.num_threads();
    hierarchy_.directory_.EnableSliceSharding(static_cast<std::uint32_t>(slices), &DirSliceFn,
                                              &hierarchy_.llc_);
    workers_.resize(num_workers);
    for (WorkerCtx& ctx : workers_) {
      ctx.queues.resize(slices);
      ctx.merged_effects.resize((cores + num_workers - 1) / num_workers);
      ctx.merge_cur.reserve(num_workers);
      ctx.merge_tree.reserve(num_workers);
      ctx.dma_mask.assign(slices, 0);
      ctx.dma_first.assign(slices, 0);
    }
    slice_ctx_.resize(slices);
    for (SliceCtx& ctx : slice_ctx_) {
      ctx.effects.resize(cores);
    }
    l1_tables_.resize(cores);
    l2_tables_.resize(cores);
    for (std::size_t c = 0; c < cores; ++c) {
      const std::size_t l1_sets = hierarchy_.l1_[c].num_sets();
      const std::size_t l2_sets = hierarchy_.l2_[c].num_sets();
      l1_tables_[c].journal_tag.assign(l1_sets, 0);
      l1_tables_[c].fill_tag.assign(l1_sets, 0);
      l1_tables_[c].fill_key.assign(l1_sets, 0);
      l2_tables_[c].journal_tag.assign(l2_sets, 0);
      l2_tables_[c].fill_tag.assign(l2_sets, 0);
      l2_tables_[c].fill_key.assign(l2_sets, 0);
    }
    llc_sets_ = hierarchy_.llc_.slices_[0].num_sets();
    llc_journal_tag_.assign(slices * llc_sets_, 0);
    if (random_repl_) {
      core_rng_snapshot_.assign(cores * 2, Rng(0));
    }
  }
  ops_.reserve(max_limit_ + 64);
  hierarchy_.AttachCaptureSink(this);
}

EpochEngine::~EpochEngine() {
  Flush();
  if (hierarchy_.capture_ == this) {
    hierarchy_.AttachCaptureSink(nullptr);
  }
}

// ---------------------------------------------------------------------------
// Capture.

AccessResult EpochEngine::OnAccess(CoreId core, PhysAddr addr, bool is_write) {
  CaptureCoreLine(core, addr, is_write);
  return AccessResult{};
}

BatchResult EpochEngine::OnAccessRange(CoreId core, const AccessBatch& batch, bool is_write) {
  if (!batch.per_line.empty()) {
    // The caller wants individual AccessResults now, which capture cannot
    // provide: settle everything pending, then run the batch in place. The
    // batch stays outside engine numbering — its real result goes back to
    // the caller directly, exactly as without an engine.
    Flush();
    hierarchy_.capture_ = nullptr;
    const BatchResult result =
        is_write ? hierarchy_.WriteRange(core, batch) : hierarchy_.ReadRange(core, batch);
    hierarchy_.capture_ = this;
    return result;
  }
  BatchResult result;
  if (!batch.gather.empty()) {
    // Reserve once so the whole batch lands in one window; batches are
    // equivalent to their scalar expansion by contract, so each address
    // captures as its own line op.
    ReserveWindow(batch.gather.size());
    for (const PhysAddr addr : batch.gather) {
      CapturedOp op;
      op.kind = CapturedOp::Kind::kCoreAccess;
      op.is_write = is_write;
      op.core = core;
      op.addr = LineBase(addr);
      op.first_seq = next_seq_;
      ops_.push_back(op);
      ++next_seq_;
      ++window_lines_;
    }
    engine_stats_.captured_line_ops += batch.gather.size();
    result.lines = batch.gather.size();
  } else {
    const PhysAddr first = LineBase(batch.addr);
    const PhysAddr last = LineBase(batch.addr + (batch.bytes == 0 ? 0 : batch.bytes - 1));
    const std::size_t n = static_cast<std::size_t>((last - first) / kCacheLineSize) + 1;
    ReserveWindow(n);
    for (PhysAddr line = first; line <= last; line += kCacheLineSize) {
      CapturedOp op;
      op.kind = CapturedOp::Kind::kCoreAccess;
      op.is_write = is_write;
      op.core = core;
      op.addr = line;
      op.first_seq = next_seq_;
      ops_.push_back(op);
      ++next_seq_;
      ++window_lines_;
    }
    engine_stats_.captured_line_ops += n;
    result.lines = n;
  }
  return result;
}

Cycles EpochEngine::OnDmaRange(PhysAddr addr, std::size_t bytes, bool is_write) {
  const PhysAddr first = LineBase(addr);
  const PhysAddr last = LineBase(addr + (bytes == 0 ? 0 : bytes - 1));
  const std::size_t n = static_cast<std::size_t>((last - first) / kCacheLineSize) + 1;
  ReserveWindow(n);
  CapturedOp op;
  op.kind = is_write ? CapturedOp::Kind::kDmaWrite : CapturedOp::Kind::kDmaRead;
  op.addr = addr;  // original address: bytes are measured from here on replay
  op.bytes = bytes;
  op.first_seq = next_seq_;
  op.lines = static_cast<std::uint32_t>(n);
  ops_.push_back(op);
  next_seq_ += n;
  window_lines_ += n;
  engine_stats_.captured_line_ops += n;
  return 0;
}

void EpochEngine::CaptureCoreLine(CoreId core, PhysAddr addr, bool is_write) {
  ReserveWindow(1);
  CapturedOp op;
  op.kind = CapturedOp::Kind::kCoreAccess;
  op.is_write = is_write;
  op.core = core;
  op.addr = LineBase(addr);
  op.first_seq = next_seq_;
  ops_.push_back(op);
  ++next_seq_;
  ++window_lines_;
  ++engine_stats_.captured_line_ops;
}

void EpochEngine::ReserveWindow(std::size_t incoming_lines) {
  if (window_lines_ != 0 && window_lines_ + incoming_lines > window_limit_) {
    Settle();
  }
}

void EpochEngine::Flush() { Settle(); }

Cycles EpochEngine::CyclesInRange(std::uint64_t begin, std::uint64_t end) {
  Flush();
  if (!options_.keep_line_results) {
    throw std::logic_error("EpochEngine::CyclesInRange requires keep_line_results");
  }
  if (begin > end || begin < results_base_ || end > results_base_ + results_.size()) {
    throw std::out_of_range("EpochEngine::CyclesInRange: span outside retained results");
  }
  Cycles total = 0;
  for (std::uint64_t i = begin; i < end; ++i) {
    total += results_[i - results_base_];
  }
  return total;
}

void EpochEngine::DropSettledResults() {
  Flush();
  results_base_ += results_.size();
  results_.clear();
}

// ---------------------------------------------------------------------------
// Settling.

void EpochEngine::Settle() {
  if (window_lines_ == 0) {
    return;
  }
  ++engine_stats_.windows;
  if (serial_only_) {
    ReplaySerial();
  } else {
    ++engine_stats_.speculative_windows;
    PrepareWindow();
    pool_.Run([this](std::size_t w) { Phase1(w); });
    bool fast = true;
    std::uint64_t rows = 0;
    for (const WorkerCtx& ctx : workers_) {
      fast = fast && ctx.fast_ok;
      rows += ctx.rows.size();
    }
    if (fast) {
      ++engine_stats_.fast_commit_windows;
      engine_stats_.journal_rows_saved += rows;
      FastCommit();
      AdaptWindowLimit(/*aborted=*/false, /*window_effects=*/0);
    } else {
      // Shared-state rollback points, taken only now: phase 1 never touches
      // the CBo bank or the slice RNGs, so deferring the snapshots past the
      // fast-window check keeps them entirely off the fast path.
      hierarchy_.llc_.cbo().SnapshotInto(cbo_snapshot_);
      if (random_repl_) {
        for (std::size_t s = 0; s < slice_ctx_.size(); ++s) {
          slice_ctx_[s].rng_snapshot = hierarchy_.llc_.slices_[s].rng_;
        }
      }
      pool_.Run([this](std::size_t w) { Phase2(w); });
      bool abort = false;
      for (SliceCtx& ctx : slice_ctx_) {
        abort = abort || ctx.abort;
        rows += ctx.rows.size();
        engine_stats_.merged_micro_ops += ctx.merged_ops;
      }
      engine_stats_.journal_rows_saved += rows;
      if (!abort) {
        pool_.Run([this](std::size_t w) { Phase3Verdict(w); });
        for (const WorkerCtx& ctx : workers_) {
          abort = abort || ctx.abort;
        }
      }
      if (!abort) {
        pool_.Run([this](std::size_t w) { Phase3Commit(w); });
        AdaptWindowLimit(/*aborted=*/false, CommitWindow());
      } else {
        ++engine_stats_.aborted_windows;
        RollbackWindow();
        ReplaySerial();
        AdaptWindowLimit(/*aborted=*/true, /*window_effects=*/0);
      }
    }
  }
  ops_.clear();
  window_base_ = next_seq_;
  window_lines_ = 0;
}

void EpochEngine::AdaptWindowLimit(bool aborted, std::uint64_t window_effects) {
  // Deterministic controller: inputs are the abort verdict and the window's
  // applied-effect count — simulated-stream facts that are identical across
  // host worker counts and reruns — never host time. Aborts halve the budget
  // (a misspeculation re-runs the whole window serially, so the blast radius
  // shrinks); a streak of clean windows with little cross-core sharing earns
  // a doubling back toward the cap.
  if (min_limit_ == max_limit_) {
    return;
  }
  const std::size_t old_limit = window_limit_;
  if (aborted) {
    window_limit_ = std::max(min_limit_, window_limit_ / 2);
    clean_streak_ = 0;
  } else if (window_effects * 8 <= window_lines_) {
    if (++clean_streak_ >= 4 && window_limit_ < max_limit_) {
      window_limit_ = std::min(max_limit_, window_limit_ * 2);
      clean_streak_ = 0;
    }
  } else {
    clean_streak_ = 0;
  }
  if (window_limit_ != old_limit &&
      engine_stats_.window_size_trajectory.size() < kTrajectoryCap) {
    engine_stats_.window_size_trajectory.push_back(static_cast<std::uint32_t>(window_limit_));
  }
}

void EpochEngine::ReplaySerial() {
  // The reference path (and the abort fallback): run the window through the
  // public API with capture suspended — byte-for-byte the execution that
  // would have happened without an engine attached.
  HierarchyCaptureSink* const saved = hierarchy_.capture_;
  hierarchy_.capture_ = nullptr;
  Cycles window_total = 0;
  for (const CapturedOp& op : ops_) {
    Cycles cycles = 0;
    switch (op.kind) {
      case CapturedOp::Kind::kCoreAccess:
        cycles = (op.is_write ? hierarchy_.Write(op.core, op.addr)
                              : hierarchy_.Read(op.core, op.addr))
                     .cycles;
        break;
      case CapturedOp::Kind::kDmaWrite:
        cycles = hierarchy_.DmaWriteRange(op.addr, op.bytes);
        break;
      case CapturedOp::Kind::kDmaRead:
        cycles = hierarchy_.DmaReadRange(op.addr, op.bytes);
        break;
    }
    window_total += cycles;
    if (options_.keep_line_results) {
      // A multi-line range's cost is attributed to its first line; spans
      // taken at op boundaries (the contract) sum identically either way.
      results_.push_back(cycles);
      for (std::uint32_t i = 1; i < op.lines; ++i) {
        results_.push_back(0);
      }
    }
  }
  hierarchy_.capture_ = saved;
  total_cycles_ += window_total;
}

void EpochEngine::PrepareWindow() {
  ++window_id_;
  if (window_id_ == 0) {
    // Tag wraparound after 2^32 windows: flush every window-tagged table —
    // including the micro-op queues, whose recycled capacity is gated by the
    // same tag — so a stale tag can never alias the new window.
    for (std::vector<CoreCacheTables>* tables : {&l1_tables_, &l2_tables_}) {
      for (CoreCacheTables& t : *tables) {
        std::fill(t.journal_tag.begin(), t.journal_tag.end(), 0u);
        std::fill(t.fill_tag.begin(), t.fill_tag.end(), 0u);
      }
    }
    std::fill(llc_journal_tag_.begin(), llc_journal_tag_.end(), 0u);
    for (WorkerCtx& ctx : workers_) {
      for (MicroQueue& queue : ctx.queues) {
        queue.tag = 0;
        queue.ops.clear();
      }
    }
    window_id_ = 1;
  }
  if (track_line_cycles_) {
    own_cycles_.assign(window_lines_, 0);
    shared_cycles_.assign(window_lines_, 0);
  }
  for (WorkerCtx& ctx : workers_) {
    ctx.stats = HierarchyStats{};
    ctx.rows.clear();
    ctx.row_words.clear();
    ctx.own_total = 0;
    ctx.fast_ok = true;
    ctx.abort = false;
  }
  for (SliceCtx& ctx : slice_ctx_) {
    ctx.stats = HierarchyStats{};
    ctx.rows.clear();
    ctx.row_words.clear();
    ctx.dir_records.clear();
    for (std::vector<Effect>& effects : ctx.effects) {
      effects.clear();
    }
    ctx.shared_total = 0;
    ctx.merged_ops = 0;
    ctx.abort = false;
  }
  if (random_repl_) {
    // The L1/L2 RNG pre-images must be taken before phase 1 (kRandom Insert
    // consumes them there); the slice RNGs and the CBo bank are phase-2
    // state, snapshotted in Settle only when a window actually goes slow.
    const std::size_t cores = hierarchy_.l1_.size();
    for (std::size_t c = 0; c < cores; ++c) {
      core_rng_snapshot_[c * 2] = hierarchy_.l1_[c].rng_;
      core_rng_snapshot_[c * 2 + 1] = hierarchy_.l2_[c].rng_;
    }
  }
}

void EpochEngine::FastCommit() {
  // Soundness of skipping phases 2+3 wholesale: every micro-op in the window
  // is an L1 hit whose write (if any) observed its own line already dirty.
  //  * No effects exist (hits emit none), so no claim can go stale -> A1
  //    cannot fire: the directory mirrors the tag arrays at the window
  //    boundary, and recency-only phase-1 mutations keep that invariant.
  //  * There are no predictions (A2) and no fills (A3).
  //  * The replay of such an op mutates nothing: a dirty write-hit's
  //    l1_dirty |= self is a no-op (A1 equality), and the only other
  //    candidate — the directory's slice-id memo — is a host-side cache of
  //    the Complex Addressing hash with no simulated effect.
  // So the window commits as: worker stats + phase-1 cycle shares, done.
  for (const WorkerCtx& ctx : workers_) {
    hierarchy_.stats_ += ctx.stats;
  }
  Cycles window_total = 0;
  if (track_line_cycles_) {
    for (std::size_t rel = 0; rel < window_lines_; ++rel) {
      const Cycles cycles = own_cycles_[rel];
      window_total += cycles;
      results_.push_back(cycles);
    }
  } else {
    for (const WorkerCtx& ctx : workers_) {
      window_total += ctx.own_total;
    }
  }
  total_cycles_ += window_total;
}

// ---------------------------------------------------------------------------
// Phase 1: core-local execution + prediction.

void EpochEngine::Phase1(std::size_t worker) {
  WorkerCtx& ctx = workers_[worker];
  const std::size_t num_workers = pool_.num_threads();
  const std::size_t n = ops_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const CapturedOp& op = ops_[i];
    if (op.kind == CapturedOp::Kind::kCoreAccess) {
      if (op.core % num_workers == worker) {
        Phase1Access(ctx, op);
      }
    } else if (i % num_workers == worker) {
      // DMA ranges round-robin by op index: their dominant cost is the
      // per-line Complex Addressing hash, which parallelises here.
      Phase1Dma(ctx, op);
    }
  }
}

void EpochEngine::Phase1Access(WorkerCtx& ctx, const CapturedOp& op) {
  const CoreId core = op.core;
  const PhysAddr line = op.addr;
  const bool is_write = op.is_write;
  const std::uint64_t seq = op.first_seq;
  const LatencyModel& lat = hierarchy_.spec_.latency;
  // Pure hash, never the directory memo — the memo write is a phase-2
  // (directory) mutation and must happen there.
  const SliceId slice = hierarchy_.llc_.SliceOf(line);

  MicroOp micro;
  micro.key = Key(seq, 0);
  micro.line = line;
  micro.core = core;
  if (is_write) {
    micro.flags |= kFlagIsWrite;
  }

  // L1 (journal first: a hit's promotion mutates the row).
  SetAssocCache& l1 = hierarchy_.l1_[core];
  JournalCoreRow(ctx, core, /*is_l1=*/true, l1.SetIndexOf(line));
  if (const auto r1 = l1.Probe(line); r1.hit) {
    ++ctx.stats.l1_hits;
    micro.kind = kOpHitL1;
    if (r1.dirty) {
      micro.flags |= kFlagObservedDirty;
    }
    if (is_write) {
      AddOwn(ctx, seq, lat.store_commit);
      l1.MarkDirty(line);
      // A clean write-hit upgrades through the directory; only dirty-observed
      // writes (and reads) are fast-commit-safe.
      ctx.fast_ok = ctx.fast_ok && r1.dirty;
    } else {
      AddOwn(ctx, seq, lat.l1_hit);
    }
    Emit(ctx, slice, micro);
    return;
  }
  ++ctx.stats.l1_misses;
  ctx.fast_ok = false;

  // L2.
  SetAssocCache& l2 = hierarchy_.l2_[core];
  JournalCoreRow(ctx, core, /*is_l1=*/false, l2.SetIndexOf(line));
  if (const auto r2 = l2.Probe(line); r2.hit) {
    ++ctx.stats.l2_hits;
    micro.kind = kOpHitL2;
    if (r2.dirty) {
      micro.flags |= kFlagObservedDirty;
    }
    AddOwn(ctx, seq, lat.l2_hit);
    Emit(ctx, slice, micro);
    LocalFillL1(ctx, core, line, /*dirty=*/is_write, seq, /*fill_sub=*/0, /*evict_sub=*/1);
    return;
  }
  ++ctx.stats.l2_misses;

  // Miss: predict the shared branch from the frozen pre-window state (reads
  // only — phase 1 never mutates shared structures); phase 2 validates every
  // prediction against the authoritative replay and aborts on mismatch.
  micro.kind = kOpMiss;
  const LineDirectory& directory = hierarchy_.directory_;
  const LineDirectoryEntry* entry = directory.Find(line);
  const std::uint64_t dirty_others = entry != nullptr ? entry->dirty() & ~Bit(core) : 0;
  const bool pred_remote = dirty_others != 0;
  bool fill_dirty_l2 = false;
  bool fill_dirty_l1 = is_write;
  if (pred_remote) {
    micro.flags |= kFlagPredRemote;
    if (!is_write) {
      // Serial: fill_dirty = !llc.MarkDirtyOnSlice — the dirt rides on our
      // copy iff the line is not LLC-resident.
      const bool pred_fill_dirty = !hierarchy_.llc_.ContainsOnSlice(slice, line);
      if (pred_fill_dirty) {
        micro.flags |= kFlagPredFillDirty;
      }
      fill_dirty_l2 = pred_fill_dirty;
      fill_dirty_l1 = pred_fill_dirty;
    }
    // Write: the remote Modified copy dies and its dirt transfers to the L1
    // copy (fill_dirty_l1 == true already; the L2 copy fills clean).
  } else if (hierarchy_.spec_.inclusion == LlcInclusionPolicy::kVictim) {
    const SetAssocCache& llc_slice = hierarchy_.llc_.slices_[slice];
    if (llc_slice.Contains(line)) {
      micro.flags |= kFlagPredLlcHit;
      if (llc_slice.IsDirty(line)) {
        micro.flags |= kFlagPredFillDirty;
        fill_dirty_l2 = true;
      }
    }
  }
  // Inclusive non-remote: the L2 copy always fills clean (serial passes
  // fill_dirty == false on that path), so there is nothing to predict.
  Emit(ctx, slice, micro);
  LocalFillL2(ctx, core, line, fill_dirty_l2, seq);
  LocalFillL1(ctx, core, line, fill_dirty_l1, seq, /*fill_sub=*/2, /*evict_sub=*/2);
}

void EpochEngine::Phase1Dma(WorkerCtx& ctx, const CapturedOp& op) {
  ctx.fast_ok = false;
  const bool is_write = op.kind == CapturedOp::Kind::kDmaWrite;
  const PhysAddr first = LineBase(op.addr);
  // Route the range to slices in 64-line chunks: hash every line (the hash
  // dominates phase-1 DMA cost, exactly as in the serial two-pass loop),
  // accumulate a per-slice line mask, then emit ONE block micro-op per
  // (chunk, slice) — a third of the per-line stream on an MTU-sized packet.
  SliceId touched[64];
  MicroOp micro;
  micro.kind = is_write ? kOpDmaWrite : kOpDmaRead;
  for (std::uint32_t chunk = 0; chunk < op.lines; chunk += 64) {
    const std::uint32_t n = std::min<std::uint32_t>(64, op.lines - chunk);
    std::size_t num_touched = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
      const PhysAddr line = first + std::uint64_t{chunk + i} * kCacheLineSize;
      const SliceId slice = hierarchy_.llc_.SliceOf(line);
      if (ctx.dma_mask[slice] == 0) {
        touched[num_touched++] = slice;
        ctx.dma_first[slice] = i;
      }
      ctx.dma_mask[slice] |= std::uint64_t{1} << i;
    }
    micro.line = first + std::uint64_t{chunk} * kCacheLineSize;
    for (std::size_t t = 0; t < num_touched; ++t) {
      const SliceId slice = touched[t];
      micro.key = Key(op.first_seq + chunk + ctx.dma_first[slice], 0);
      micro.mask = ctx.dma_mask[slice];
      ctx.dma_mask[slice] = 0;
      Emit(ctx, slice, micro);
    }
  }
}

void EpochEngine::LocalFillL1(WorkerCtx& ctx, CoreId core, PhysAddr line, bool dirty,
                              std::uint64_t seq, unsigned fill_sub, unsigned evict_sub) {
  // The tag-array half of MemoryHierarchy::FillL1; the directory half replays
  // in phase 2 (kOpHitL2/kOpMiss primaries carry the fill's dir bits, the
  // victim's go with the kOpL1Evict micro-op).
  SetAssocCache& l1 = hierarchy_.l1_[core];
  const std::size_t set = l1.SetIndexOf(line);
  JournalCoreRow(ctx, core, /*is_l1=*/true, set);
  const auto evicted = l1.Insert(line, dirty);
  NoteFill(core, /*is_l1=*/true, set, Key(seq, fill_sub));
  if (!evicted.has_value()) {
    return;
  }
  const PhysAddr victim = evicted->line;
  bool in_l2 = false;
  if (evicted->dirty) {
    // L1 victims land in L2 when it still holds the line; phase 2 validates
    // the in_l2 claim and routes the dirt onward when it does not.
    SetAssocCache& l2 = hierarchy_.l2_[core];
    JournalCoreRow(ctx, core, /*is_l1=*/false, l2.SetIndexOf(victim));
    in_l2 = l2.MarkDirty(victim);
  }
  MicroOp micro;
  micro.key = Key(seq, evict_sub);
  micro.line = victim;
  micro.core = core;
  micro.kind = kOpL1Evict;
  if (evicted->dirty) {
    micro.flags |= kFlagEvictedDirty;
  }
  if (in_l2) {
    micro.flags |= kFlagCompanionPresent;
  }
  Emit(ctx, hierarchy_.llc_.SliceOf(victim), micro);
}

void EpochEngine::LocalFillL2(WorkerCtx& ctx, CoreId core, PhysAddr line, bool dirty,
                              std::uint64_t seq) {
  SetAssocCache& l2 = hierarchy_.l2_[core];
  const std::size_t set = l2.SetIndexOf(line);
  JournalCoreRow(ctx, core, /*is_l1=*/false, set);
  const auto evicted = l2.Insert(line, dirty);
  NoteFill(core, /*is_l1=*/false, set, Key(seq, 1));
  if (!evicted.has_value()) {
    return;
  }
  // Serial FillL2's victim handling: the victim leaves L1 too (subset),
  // carrying its dirt. Directory + LLC halves replay as kOpL2Evict.
  const PhysAddr victim = evicted->line;
  SetAssocCache& l1 = hierarchy_.l1_[core];
  JournalCoreRow(ctx, core, /*is_l1=*/true, l1.SetIndexOf(victim));
  const auto l1_state = l1.Invalidate(victim);
  const bool victim_dirty = evicted->dirty || l1_state.was_dirty;
  const SliceId victim_slice = hierarchy_.llc_.SliceOf(victim);
  MicroOp micro;
  micro.key = Key(seq, 1);
  micro.line = victim;
  micro.core = core;
  micro.kind = kOpL2Evict;
  if (evicted->dirty) {
    micro.flags |= kFlagEvictedDirty;
  }
  if (l1_state.was_present) {
    micro.flags |= kFlagCompanionPresent;
  }
  if (l1_state.was_dirty) {
    micro.flags |= kFlagCompanionDirty;
  }
  Emit(ctx, victim_slice, micro);
  if (victim_dirty) {
    // Both inclusion modes charge the same write-back busy cost to the core
    // (hierarchy.cc FillL2); the slice equals the victim's memoized id.
    AddOwn(ctx, seq,
           hierarchy_.spec_.latency.writeback_busy + hierarchy_.SlicePenalty(core, victim_slice));
  }
}

// ---------------------------------------------------------------------------
// Phase 2: authoritative replay, one worker per slice shard.

void EpochEngine::Phase2(std::size_t worker) {
  const std::size_t num_workers = pool_.num_threads();
  for (std::size_t s = worker; s < slice_ctx_.size(); s += num_workers) {
    ReplaySlice(worker, slice_ctx_[s], static_cast<SliceId>(s));
  }
}

void EpochEngine::ReplaySlice(std::size_t worker, SliceCtx& ctx, SliceId slice) {
  // Merge of the (key-ascending) per-worker queues: total order per slice ==
  // the serial execution's op order restricted to this slice. The merged
  // stream lands in the replaying worker's persistent scratch so the replay
  // loop can stream it with prefetch lookahead (ReplayRun); the dominant
  // single-contributor case (always, with one worker) replays the queue's
  // arrays in place instead, zero copies.
  WorkerCtx& wctx = workers_[worker];
  std::vector<MergeCursor>& cur = wctx.merge_cur;
  cur.clear();
  for (const WorkerCtx& w : workers_) {
    const MicroQueue& queue = w.queues[slice];
    const std::size_t n = queue.SizeIn(window_id_);
    if (n != 0) {
      cur.push_back(MergeCursor{queue.ops.data(), queue.ops.data() + n});
    }
  }
  if (cur.empty()) {
    return;
  }
  if (cur.size() == 1) {
    ReplayRun(ctx, slice, cur[0].p, static_cast<std::size_t>(cur[0].end - cur[0].p));
    return;
  }
  std::vector<MicroOp>& out = wctx.merge_ops;
  out.clear();
  if (cur.size() == 2) {
    TwoWayMerge(cur[0], cur[1], out);
  } else {
    LoserTreeMerge(cur, wctx.merge_tree, out);
  }
  ReplayRun(ctx, slice, out.data(), out.size());
}

void EpochEngine::TwoWayMerge(MergeCursor a, MergeCursor b, std::vector<MicroOp>& out) {
  while (a.p != a.end && b.p != b.end) {
    // Keys are globally unique, so strict-less is a total tiebreak.
    MergeCursor& next = a.p->key < b.p->key ? a : b;
    out.push_back(*next.p++);
  }
  for (const MergeCursor* rest : {&a, &b}) {
    out.insert(out.end(), rest->p, rest->end);
  }
}

void EpochEngine::LoserTreeMerge(std::vector<MergeCursor>& cur, std::vector<std::uint32_t>& tree,
                                 std::vector<MicroOp>& out) {
  // Loser tree in the classic complete-binary-tree layout: internal nodes
  // 1..k-1 hold losers, conceptual leaves k..2k-1 hold the k cursors, and
  // popping the winner replays only its root path — log k comparisons per
  // op, versus the k-way linear scan the first engine version paid. Keys
  // are globally unique so ties cannot occur; an exhausted cursor presents
  // a sentinel that loses to every real key.
  static constexpr std::uint64_t kDone = ~std::uint64_t{0};
  const std::size_t k = cur.size();
  const auto key_of = [&cur](std::uint32_t s) {
    return cur[s].p != cur[s].end ? cur[s].p->key : kDone;
  };
  tree.assign(k, 0);
  const auto build = [&](auto&& self, std::size_t node) -> std::uint32_t {
    if (node >= k) {
      return static_cast<std::uint32_t>(node - k);
    }
    const std::uint32_t a = self(self, 2 * node);
    const std::uint32_t b = self(self, 2 * node + 1);
    if (key_of(a) <= key_of(b)) {
      tree[node] = b;
      return a;
    }
    tree[node] = a;
    return b;
  };
  std::uint32_t winner = build(build, std::size_t{1});
  while (cur[winner].p != cur[winner].end) {
    out.push_back(*cur[winner].p++);
    std::uint32_t cand = winner;
    for (std::size_t node = (k + winner) / 2; node >= 1; node /= 2) {
      if (key_of(tree[node]) < key_of(cand)) {
        std::swap(cand, tree[node]);
      }
    }
    winner = cand;
  }
}

void EpochEngine::ReplayRun(SliceCtx& ctx, SliceId slice, const MicroOp* run, std::size_t count) {
  ctx.merged_ops += count;
  // A plain dispatch loop, deliberately with no host prefetching: both an
  // interleaved one-op lookahead and the serial DMA path's chunked two-pass
  // shape measured as net losses here — the merged stream revisits metadata
  // that capture and phase 1 just touched, so it is warm already and the
  // prefetch pass is pure front-end overhead.
  for (std::size_t i = 0; i < count && !ctx.abort; ++i) {
    const MicroOp& op = run[i];
    switch (op.kind) {
      case kOpHitL1:
        ReplayHitL1(ctx, slice, op);
        break;
      case kOpHitL2:
        ReplayHitL2(ctx, slice, op);
        break;
      case kOpMiss:
        ReplayMiss(ctx, slice, op);
        break;
      case kOpL2Evict:
        ReplayL2Evict(ctx, slice, op);
        break;
      case kOpL1Evict:
        ReplayL1Evict(ctx, slice, op);
        break;
      case kOpDmaWrite:
        ReplayDmaWrite(ctx, slice, op);
        break;
      case kOpDmaRead:
        ReplayDmaRead(ctx, slice, op);
        break;
      default:
        ctx.abort = true;  // unreachable; abort (not throw) — this runs on a worker
    }
  }
}

void EpochEngine::ReplayHitL1(SliceCtx& ctx, SliceId slice, const MicroOp& op) {
  const PhysAddr line = op.line;
  const std::uint64_t self = Bit(op.core);
  LineDirectoryEntry* entry = hierarchy_.directory_.Find(line);
  // Serial access top: the slice memo fills on first touch of the entry.
  if (entry != nullptr && entry->slice_cache == LineDirectoryEntry::kNoSlice) {
    RecordDirEntry(ctx, line, entry);
    entry->slice_cache = slice;
  }
  // A1: phase 1 claims an L1 hit; the directory mirrors the tag arrays
  // exactly, so a stale claim (an unapplied invalidate effect) shows here.
  if (entry == nullptr || (entry->l1_sharers & self) == 0) {
    ctx.abort = true;
    return;
  }
  if ((op.flags & kFlagIsWrite) == 0) {
    return;  // clean read hit: no shared-state work, phase 1 paid the cycles
  }
  const bool observed_dirty = (op.flags & kFlagObservedDirty) != 0;
  if (observed_dirty != ((entry->l1_dirty & self) != 0)) {
    ctx.abort = true;  // A1: the upgrade branch hangs off this bit
    return;
  }
  const std::uint64_t others = entry->sharers() & ~self;
  if (!observed_dirty && others != 0) {
    ++ctx.stats.upgrades;
    // Keeps `entry` alive and in place: self's own L1 bit survives the mask,
    // so the entry never empties, and nothing is inserted.
    ReplayInvalidateElsewhere(ctx, op.key, op.core, line);
    AddShared(ctx, op.key,
              hierarchy_.LlcHitLatency(op.core, slice) + hierarchy_.spec_.latency.upgrade);
  }
  RecordDirEntry(ctx, line, entry);
  entry->l1_dirty |= self;
}

void EpochEngine::ReplayHitL2(SliceCtx& ctx, SliceId slice, const MicroOp& op) {
  const PhysAddr line = op.line;
  const std::uint64_t self = Bit(op.core);
  const bool is_write = (op.flags & kFlagIsWrite) != 0;
  const bool observed_dirty = (op.flags & kFlagObservedDirty) != 0;
  LineDirectoryEntry* entry = hierarchy_.directory_.Find(line);
  if (entry != nullptr && entry->slice_cache == LineDirectoryEntry::kNoSlice) {
    RecordDirEntry(ctx, line, entry);
    entry->slice_cache = slice;
  }
  // A1: L1 missed, L2 hit, and (writes) the observed L2 dirty bit agrees.
  if (entry == nullptr || (entry->l1_sharers & self) != 0 || (entry->l2_sharers & self) == 0 ||
      (is_write && observed_dirty != ((entry->l2_dirty & self) != 0))) {
    ctx.abort = true;
    return;
  }
  if (entry->prefetched) {
    RecordDirEntry(ctx, line, entry);
    entry->prefetched = false;
    ++ctx.stats.prefetch_hits;
  }
  const std::uint64_t others = entry->sharers() & ~self;
  if (is_write && !observed_dirty && others != 0) {
    ++ctx.stats.upgrades;
    ReplayInvalidateElsewhere(ctx, op.key, op.core, line);
    AddShared(ctx, op.key,
              hierarchy_.LlcHitLatency(op.core, slice) + hierarchy_.spec_.latency.upgrade);
  }
  // FillL1's directory half (the tag-array half ran in phase 1). `entry`
  // survives the upgrade above (self's L2 bit is kept), so reuse it.
  RecordDirEntry(ctx, line, entry);
  entry->l1_sharers |= self;
  if (is_write) {
    entry->l1_dirty |= self;
  }
  entry->slice_cache = slice;
}

void EpochEngine::ReplayMiss(SliceCtx& ctx, SliceId slice, const MicroOp& op) {
  const PhysAddr line = op.line;
  const CoreId core = op.core;
  const std::uint64_t self = Bit(core);
  const bool is_write = (op.flags & kFlagIsWrite) != 0;
  const LatencyModel& lat = hierarchy_.spec_.latency;
  SlicedLlc& llc = hierarchy_.llc_;

  LineDirectoryEntry* entry = hierarchy_.directory_.Find(line);
  if (entry != nullptr && entry->slice_cache == LineDirectoryEntry::kNoSlice) {
    RecordDirEntry(ctx, line, entry);
    entry->slice_cache = slice;
  }
  // A1: a full private miss (phase 1's own L1/L2 state is a superset of the
  // serial state, so this can only trip on a stale claim).
  if (entry != nullptr && ((entry->l1_sharers | entry->l2_sharers) & self) != 0) {
    ctx.abort = true;
    return;
  }
  const std::uint64_t dirty_others = entry != nullptr ? entry->dirty() & ~self : 0;
  const bool actual_remote = dirty_others != 0;
  if (actual_remote != ((op.flags & kFlagPredRemote) != 0)) {
    ctx.abort = true;  // A2: snoop branch predicted from frozen state
    return;
  }

  if (actual_remote) {
    ++ctx.stats.remote_forwards;
    const Cycles shared = hierarchy_.LlcHitLatency(core, slice) + lat.snoop_transfer;
    bool fill_dirty;
    if (is_write) {
      ReplayInvalidateElsewhere(ctx, op.key, core, line);
      fill_dirty = true;
    } else {
      ReplayDowngradeElsewhere(ctx, op.key, core, line);
      JournalLlcRow(ctx, slice, llc.slices_[slice].SetIndexOf(line));
      fill_dirty = !llc.MarkDirtyOnSlice(slice, line);
      if (fill_dirty != ((op.flags & kFlagPredFillDirty) != 0)) {
        ctx.abort = true;  // A2: phase 1 filled its L1/L2 with this bit
        return;
      }
    }
    if (hierarchy_.spec_.inclusion == LlcInclusionPolicy::kInclusive) {
      JournalLlcRow(ctx, slice, llc.slices_[slice].SetIndexOf(line));
      llc.LookupAndTouchOnSlice(slice, line);
    }
    DirFill(ctx, line, core, /*to_l1=*/false, fill_dirty && !is_write, slice);
    DirFill(ctx, line, core, /*to_l1=*/true, is_write || fill_dirty, slice);
    AddShared(ctx, op.key, shared);
    return;
  }

  // LLC.
  Cycles shared = hierarchy_.LlcHitLatency(core, slice);
  JournalLlcRow(ctx, slice, llc.slices_[slice].SetIndexOf(line));
  const bool llc_hit = llc.LookupAndTouchOnSlice(slice, line);
  const bool victim_mode = hierarchy_.spec_.inclusion == LlcInclusionPolicy::kVictim;
  bool fill_dirty = false;
  if (llc_hit) {
    ++ctx.stats.llc_hits;
    if (victim_mode) {
      const auto inv = llc.InvalidateOnSlice(slice, line);  // same set, journaled above
      fill_dirty = inv.was_dirty;
    }
  } else {
    ++ctx.stats.llc_misses;
    shared += lat.dram;
    if (!victim_mode) {
      const auto evicted = llc.InsertForCoreOnSlice(core, slice, line, /*dirty=*/false);
      ReplayLlcEviction(ctx, op.key, slice, evicted);
    }
  }
  if (victim_mode) {
    // A2: phase 1 predicted the LLC outcome to pick its L2 fill dirt.
    if (llc_hit != ((op.flags & kFlagPredLlcHit) != 0) ||
        fill_dirty != ((op.flags & kFlagPredFillDirty) != 0)) {
      ctx.abort = true;
      return;
    }
  }
  if (is_write) {
    ReplayInvalidateElsewhere(ctx, op.key, core, line);
  }
  DirFill(ctx, line, core, /*to_l1=*/false, fill_dirty, slice);
  DirFill(ctx, line, core, /*to_l1=*/true, /*dirty=*/is_write, slice);
  AddShared(ctx, op.key, shared);
}

void EpochEngine::ReplayL2Evict(SliceCtx& ctx, SliceId slice, const MicroOp& op) {
  const PhysAddr line = op.line;
  const CoreId core = op.core;
  const std::uint64_t self = Bit(core);
  const bool evicted_dirty = (op.flags & kFlagEvictedDirty) != 0;
  const bool l1_present = (op.flags & kFlagCompanionPresent) != 0;
  const bool l1_dirty = (op.flags & kFlagCompanionDirty) != 0;
  const LineDirectoryEntry* entry = hierarchy_.directory_.Find(line);
  // A1: the victim's own L2 dirty bit and its L1 companion state must agree
  // with the directory — they decide where the dirt goes.
  if (entry == nullptr || (entry->l2_sharers & self) == 0 ||
      evicted_dirty != ((entry->l2_dirty & self) != 0) ||
      l1_present != ((entry->l1_sharers & self) != 0) ||
      (l1_present && l1_dirty != ((entry->l1_dirty & self) != 0))) {
    ctx.abort = true;
    return;
  }
  // Serial order: DirRemoveL2, (local L1 invalidate — ran in phase 1),
  // DirRemoveL1.
  ReplayDirRemove(ctx, core, line, /*is_l1=*/false);
  ReplayDirRemove(ctx, core, line, /*is_l1=*/true);
  const bool victim_dirty = evicted_dirty || l1_dirty;
  SlicedLlc& llc = hierarchy_.llc_;
  if (hierarchy_.spec_.inclusion == LlcInclusionPolicy::kInclusive) {
    if (victim_dirty) {
      ++ctx.stats.dirty_writebacks;
      JournalLlcRow(ctx, slice, llc.slices_[slice].SetIndexOf(line));
      llc.MarkDirtyOnSlice(slice, line);
    }
    return;
  }
  JournalLlcRow(ctx, slice, llc.slices_[slice].SetIndexOf(line));
  const auto llc_evicted = llc.FillFromL2OnSlice(core, slice, line, victim_dirty);
  ReplayLlcEviction(ctx, op.key, slice, llc_evicted);
  if (victim_dirty) {
    ++ctx.stats.dirty_writebacks;
  }
}

void EpochEngine::ReplayL1Evict(SliceCtx& ctx, SliceId slice, const MicroOp& op) {
  const PhysAddr line = op.line;
  const CoreId core = op.core;
  const std::uint64_t self = Bit(core);
  const bool evicted_dirty = (op.flags & kFlagEvictedDirty) != 0;
  const bool in_l2 = (op.flags & kFlagCompanionPresent) != 0;
  LineDirectoryEntry* entry = hierarchy_.directory_.Find(line);
  if (entry == nullptr || (entry->l1_sharers & self) == 0 ||
      evicted_dirty != ((entry->l1_dirty & self) != 0) ||
      (evicted_dirty && in_l2 != ((entry->l2_sharers & self) != 0))) {
    ctx.abort = true;
    return;
  }
  ReplayDirRemove(ctx, core, line, /*is_l1=*/true);
  if (!evicted_dirty) {
    return;
  }
  if (in_l2) {
    // Phase 1 already set the L2 dirty bit in the tag array; mirror it here.
    // `entry` survives the L1 removal — self's L2 bit keeps it non-empty —
    // and removal never relocates the removed line's own slot.
    RecordDirEntry(ctx, line, entry);
    entry->l2_dirty |= self;
  } else {
    JournalLlcRow(ctx, slice, hierarchy_.llc_.slices_[slice].SetIndexOf(line));
    if (!hierarchy_.llc_.MarkDirtyOnSlice(slice, line)) {
      ++ctx.stats.dirty_writebacks;  // nowhere below: straight to DRAM
    }
  }
}

void EpochEngine::ReplayDmaWrite(SliceCtx& ctx, SliceId slice, const MicroOp& op) {
  // Block micro-op: replay every masked line of the chunk, ascending bit
  // order == ascending seq order (the serial order). Per-line keys
  // reconstruct from the record key, which belongs to the first masked line.
  SlicedLlc& llc = hierarchy_.llc_;
  SetAssocCache& llc_slice = llc.slices_[slice];
  const std::uint64_t base_seq = (op.key >> 2) - std::countr_zero(op.mask);
  const Cycles per_line =
      hierarchy_.spec_.latency.llc_base + hierarchy_.SlicePenalty(0, slice);
  ctx.stats.dma_line_writes += static_cast<std::uint64_t>(std::popcount(op.mask));
  for (std::uint64_t m = op.mask; m != 0; m &= m - 1) {
    const auto i = static_cast<std::uint32_t>(std::countr_zero(m));
    const PhysAddr line = op.line + std::uint64_t{i} * kCacheLineSize;
    const std::uint64_t key = Key(base_seq + i, 0);
    ReplayBackInvalidate(ctx, key, line);
    JournalLlcRow(ctx, slice, llc_slice.SetIndexOf(line));
    const auto evicted = llc.DmaFillOnSlice(slice, line);
    ReplayLlcEviction(ctx, key, slice, evicted);
    AddShared(ctx, key, per_line);
  }
}

void EpochEngine::ReplayDmaRead(SliceCtx& ctx, SliceId slice, const MicroOp& op) {
  SlicedLlc& llc = hierarchy_.llc_;
  SetAssocCache& llc_slice = llc.slices_[slice];
  const std::uint64_t base_seq = (op.key >> 2) - std::countr_zero(op.mask);
  const LatencyModel& lat = hierarchy_.spec_.latency;
  ctx.stats.dma_line_reads += static_cast<std::uint64_t>(std::popcount(op.mask));
  for (std::uint64_t m = op.mask; m != 0; m &= m - 1) {
    const auto i = static_cast<std::uint32_t>(std::countr_zero(m));
    const PhysAddr line = op.line + std::uint64_t{i} * kCacheLineSize;
    JournalLlcRow(ctx, slice, llc_slice.SetIndexOf(line));
    const bool hit = llc.LookupAndTouchOnSlice(slice, line);
    AddShared(ctx, Key(base_seq + i, 0), lat.llc_base + (hit ? 0 : lat.dram));
  }
}

void EpochEngine::ReplayDirRemove(SliceCtx& ctx, CoreId core, PhysAddr line, bool is_l1) {
  LineDirectory& directory = hierarchy_.directory_;
  LineDirectoryEntry* entry = directory.Find(line);
  if (entry == nullptr) {
    return;
  }
  RecordDirEntry(ctx, line, entry);
  const std::uint64_t keep = ~Bit(core);
  if (is_l1) {
    entry->l1_sharers &= keep;
    entry->l1_dirty &= keep;
  } else {
    entry->l2_sharers &= keep;
    entry->l2_dirty &= keep;
  }
  if (entry->empty()) {
    directory.Erase(line);
  }
}

void EpochEngine::ReplayInvalidateElsewhere(SliceCtx& ctx, std::uint64_t key, CoreId core,
                                            PhysAddr line) {
  LineDirectory& directory = hierarchy_.directory_;
  LineDirectoryEntry* entry = directory.Find(line);
  if (entry == nullptr) {
    return;
  }
  RecordDirEntry(ctx, line, entry);
  const std::uint64_t self = Bit(core);
  std::uint64_t others = entry->sharers() & ~self;
  // Serial counts cores whose L1 or L2 held a copy; every sharer-mask bit is
  // such a core (the directory is exact), so the popcount matches.
  ctx.stats.invalidations_sent += static_cast<std::uint64_t>(std::popcount(others));
  while (others != 0) {
    const auto c = static_cast<CoreId>(std::countr_zero(others));
    others &= others - 1;
    ctx.effects[c].push_back(Effect{key, line, /*invalidate=*/true});
  }
  entry->l1_sharers &= self;
  entry->l2_sharers &= self;
  entry->l1_dirty &= self;
  entry->l2_dirty &= self;
  entry->prefetched = false;
  if (entry->empty()) {
    directory.Erase(line);
  }
}

void EpochEngine::ReplayDowngradeElsewhere(SliceCtx& ctx, std::uint64_t key, CoreId core,
                                           PhysAddr line) {
  LineDirectoryEntry* entry = hierarchy_.directory_.Find(line);
  if (entry == nullptr) {
    return;
  }
  RecordDirEntry(ctx, line, entry);
  const std::uint64_t self = Bit(core);
  std::uint64_t targets = entry->dirty() & ~self;
  while (targets != 0) {
    const auto c = static_cast<CoreId>(std::countr_zero(targets));
    targets &= targets - 1;
    ctx.effects[c].push_back(Effect{key, line, /*invalidate=*/false});
  }
  entry->l1_dirty &= self;
  entry->l2_dirty &= self;
}

void EpochEngine::ReplayBackInvalidate(SliceCtx& ctx, std::uint64_t key, PhysAddr line) {
  LineDirectory& directory = hierarchy_.directory_;
  LineDirectoryEntry* entry = directory.Find(line);
  if (entry == nullptr) {
    return;
  }
  RecordDirEntry(ctx, line, entry);
  std::uint64_t sharers = entry->sharers();
  while (sharers != 0) {
    const auto c = static_cast<CoreId>(std::countr_zero(sharers));
    sharers &= sharers - 1;
    ctx.effects[c].push_back(Effect{key, line, /*invalidate=*/true});
  }
  directory.Erase(line);
}

void EpochEngine::ReplayLlcEviction(SliceCtx& ctx, std::uint64_t key, SliceId slice,
                                    const std::optional<EvictedLine>& evicted) {
  if (!evicted.has_value()) {
    return;
  }
  if (evicted->dirty) {
    ++ctx.stats.dirty_writebacks;
  }
  if (hierarchy_.spec_.inclusion == LlcInclusionPolicy::kInclusive) {
    // The evicted line came out of this slice's tag array, so its directory
    // entry lives in this slice's shard — safe to walk here.
    ReplayBackInvalidate(ctx, key, evicted->line);
  }
  (void)slice;
}

void EpochEngine::DirFill(SliceCtx& ctx, PhysAddr line, CoreId core, bool to_l1, bool dirty,
                          SliceId slice) {
  LineDirectory& directory = hierarchy_.directory_;
  LineDirectoryEntry* found = directory.Find(line);
  RecordDirEntry(ctx, line, found);
  LineDirectoryEntry& entry = found != nullptr ? *found : directory.GetOrCreate(line);
  const std::uint64_t self = Bit(core);
  if (to_l1) {
    entry.l1_sharers |= self;
    if (dirty) {
      entry.l1_dirty |= self;
    }
  } else {
    entry.l2_sharers |= self;
    if (dirty) {
      entry.l2_dirty |= self;
    }
  }
  entry.slice_cache = slice;
}

void EpochEngine::RecordDir(SliceCtx& ctx, PhysAddr line) {
  RecordDirEntry(ctx, line, hierarchy_.directory_.Find(line));
}

void EpochEngine::RecordDirEntry(SliceCtx& ctx, PhysAddr line, const LineDirectoryEntry* entry) {
  DirRecord record;
  record.line = line;
  if (entry != nullptr) {
    record.existed = true;
    record.entry = *entry;
  }
  ctx.dir_records.push_back(record);
}

// ---------------------------------------------------------------------------
// Phase 3: verdict, commit, rollback.

void EpochEngine::MergeEffects(std::size_t worker) {
  WorkerCtx& ctx = workers_[worker];
  const std::size_t num_workers = workers_.size();
  const std::size_t cores = hierarchy_.l1_.size();
  for (std::size_t c = worker; c < cores; c += num_workers) {
    std::vector<Effect>& merged = ctx.merged_effects[c / num_workers];
    merged.clear();
    for (const SliceCtx& sctx : slice_ctx_) {
      merged.insert(merged.end(), sctx.effects[c].begin(), sctx.effects[c].end());
    }
    std::sort(merged.begin(), merged.end(),
              [](const Effect& a, const Effect& b) { return a.key < b.key; });
  }
}

void EpochEngine::Phase3Verdict(std::size_t worker) {
  MergeEffects(worker);
  WorkerCtx& ctx = workers_[worker];
  const std::size_t num_workers = workers_.size();
  const std::size_t cores = hierarchy_.l1_.size();
  for (std::size_t c = worker; c < cores && !ctx.abort; c += num_workers) {
    const CoreCacheTables& t1 = l1_tables_[c];
    const CoreCacheTables& t2 = l2_tables_[c];
    const SetAssocCache& l1 = hierarchy_.l1_[c];
    const SetAssocCache& l2 = hierarchy_.l2_[c];
    for (const Effect& effect : ctx.merged_effects[c / num_workers]) {
      if (!effect.invalidate) {
        continue;  // downgrades are recency-neutral; divergence trips A1
      }
      // A3: phase 1 filled the effect's set *after* the effect's key — the
      // serial victim choice could have differed (the invalidated way would
      // have been free). Abort; commit order cannot repair this.
      const std::size_t s1 = l1.SetIndexOf(effect.line);
      if (t1.fill_tag[s1] == window_id_ && t1.fill_key[s1] > effect.key) {
        ctx.abort = true;
        break;
      }
      const std::size_t s2 = l2.SetIndexOf(effect.line);
      if (t2.fill_tag[s2] == window_id_ && t2.fill_key[s2] > effect.key) {
        ctx.abort = true;
        break;
      }
    }
  }
}

void EpochEngine::Phase3Commit(std::size_t worker) {
  WorkerCtx& ctx = workers_[worker];
  const std::size_t num_workers = workers_.size();
  const std::size_t cores = hierarchy_.l1_.size();
  for (std::size_t c = worker; c < cores; c += num_workers) {
    SetAssocCache& l1 = hierarchy_.l1_[c];
    SetAssocCache& l2 = hierarchy_.l2_[c];
    for (const Effect& effect : ctx.merged_effects[c / num_workers]) {
      if (effect.invalidate) {
        l1.Invalidate(effect.line);
        l2.Invalidate(effect.line);
      } else {
        l1.MarkClean(effect.line);
        l2.MarkClean(effect.line);
      }
    }
  }
}

std::uint64_t EpochEngine::CommitWindow() {
  // Fixed merge order: workers' phase-1 blocks, then slices' phase-2 blocks.
  // uint64 counter sums are associative + commutative, so the totals equal
  // the serial per-access bumps — and for the same reason the per-context
  // cycle accumulators below sum to the serial total regardless of how ops
  // were partitioned across workers.
  std::uint64_t window_effects = 0;
  for (const WorkerCtx& ctx : workers_) {
    hierarchy_.stats_ += ctx.stats;
    for (const std::vector<Effect>& merged : ctx.merged_effects) {
      window_effects += merged.size();
    }
  }
  engine_stats_.effects_applied += window_effects;
  for (const SliceCtx& ctx : slice_ctx_) {
    hierarchy_.stats_ += ctx.stats;
  }
  Cycles window_total = 0;
  if (track_line_cycles_) {
    for (std::size_t rel = 0; rel < window_lines_; ++rel) {
      const Cycles cycles = own_cycles_[rel] + shared_cycles_[rel];
      window_total += cycles;
      results_.push_back(cycles);
    }
  } else {
    for (const WorkerCtx& ctx : workers_) {
      window_total += ctx.own_total;
    }
    for (const SliceCtx& ctx : slice_ctx_) {
      window_total += ctx.shared_total;
    }
  }
  total_cycles_ += window_total;
  return window_effects;
}

void EpochEngine::RollbackWindow() {
  // Set rows are deduplicated per window (first-touch journaling), so each
  // row has exactly one pre-image and restore order does not matter.
  const auto restore_rows = [](const std::vector<RowRecord>& rows,
                               const std::vector<std::uint64_t>& words) {
    for (const RowRecord& record : rows) {
      RestoreRow(*record.cache, record.set, words.data() + record.word_offset);
    }
  };
  for (const WorkerCtx& ctx : workers_) {
    restore_rows(ctx.rows, ctx.row_words);
  }
  for (const SliceCtx& ctx : slice_ctx_) {
    restore_rows(ctx.rows, ctx.row_words);
  }
  // Directory records are not deduplicated: walk each slice's log newest to
  // oldest so a line's oldest pre-image lands last. A line's records are
  // confined to one slice's log (shard exclusivity), so per-slice ordering
  // is total per line.
  LineDirectory& directory = hierarchy_.directory_;
  for (const SliceCtx& ctx : slice_ctx_) {
    for (auto it = ctx.dir_records.rbegin(); it != ctx.dir_records.rend(); ++it) {
      if (it->existed) {
        directory.GetOrCreate(it->line) = it->entry;
      } else {
        directory.Erase(it->line);
      }
    }
  }
  hierarchy_.llc_.cbo().Restore(cbo_snapshot_);
  if (random_repl_) {
    const std::size_t cores = hierarchy_.l1_.size();
    for (std::size_t c = 0; c < cores; ++c) {
      hierarchy_.l1_[c].rng_ = core_rng_snapshot_[c * 2];
      hierarchy_.l2_[c].rng_ = core_rng_snapshot_[c * 2 + 1];
    }
    for (std::size_t s = 0; s < slice_ctx_.size(); ++s) {
      hierarchy_.llc_.slices_[s].rng_ = slice_ctx_[s].rng_snapshot;
    }
  }
}

// ---------------------------------------------------------------------------
// Journaling.

void EpochEngine::JournalCoreRow(WorkerCtx& ctx, CoreId core, bool is_l1, std::size_t set) {
  CoreCacheTables& tables = is_l1 ? l1_tables_[core] : l2_tables_[core];
  if (tables.journal_tag[set] == window_id_) {
    return;
  }
  tables.journal_tag[set] = window_id_;
  SetAssocCache& cache = is_l1 ? hierarchy_.l1_[core] : hierarchy_.l2_[core];
  RowRecord record;
  record.cache = &cache;
  record.set = static_cast<std::uint32_t>(set);
  record.word_offset = static_cast<std::uint32_t>(ctx.row_words.size());
  ctx.rows.push_back(record);
  SaveRow(cache, set, ctx.row_words);
}

void EpochEngine::JournalLlcRow(SliceCtx& ctx, SliceId slice, std::size_t set) {
  std::uint32_t& tag = llc_journal_tag_[slice * llc_sets_ + set];
  if (tag == window_id_) {
    return;
  }
  tag = window_id_;
  SetAssocCache& cache = hierarchy_.llc_.slices_[slice];
  RowRecord record;
  record.cache = &cache;
  record.set = static_cast<std::uint32_t>(set);
  record.word_offset = static_cast<std::uint32_t>(ctx.row_words.size());
  ctx.rows.push_back(record);
  SaveRow(cache, set, ctx.row_words);
}

std::size_t EpochEngine::RowWords(const SetAssocCache& cache) {
  return cache.ways_ + 4 + (cache.repl_ == ReplacementKind::kLru ? cache.ways_ : 0);
}

void EpochEngine::SaveRow(const SetAssocCache& cache, std::size_t set,
                          std::vector<std::uint64_t>& out) {
  // One resize, then raw stores: this runs once per touched set per window
  // and was a measurable slice of phase 2 as a chain of insert/push_back
  // calls, each re-checking capacity.
  const std::size_t base = set * cache.ways_;
  const std::size_t ways = cache.ways_;
  const bool lru = cache.repl_ == ReplacementKind::kLru;
  const std::size_t old_size = out.size();
  out.resize(old_size + ways + 4 + (lru ? ways : 0));
  std::uint64_t* dst = out.data() + old_size;
  std::copy_n(cache.tags_.data() + base, ways, dst);
  const auto& scalars = cache.scalars_[set];
  dst[ways] = scalars.valid;
  dst[ways + 1] = scalars.dirty;
  dst[ways + 2] = scalars.ticks;
  dst[ways + 3] = scalars.plru;
  if (lru) {
    std::copy_n(cache.stamps_.data() + base, ways, dst + ways + 4);
  }
}

void EpochEngine::RestoreRow(SetAssocCache& cache, std::size_t set, const std::uint64_t* words) {
  const std::size_t base = set * cache.ways_;
  const std::size_t ways = cache.ways_;
  std::copy(words, words + ways, cache.tags_.begin() + static_cast<std::ptrdiff_t>(base));
  auto& scalars = cache.scalars_[set];
  const int delta = std::popcount(words[ways]) - std::popcount(scalars.valid);
  scalars.valid = words[ways];
  scalars.dirty = words[ways + 1];
  scalars.ticks = words[ways + 2];
  scalars.plru = words[ways + 3];
  if (cache.repl_ == ReplacementKind::kLru) {
    std::copy(words + ways + 4, words + ways + 4 + ways,
              cache.stamps_.begin() + static_cast<std::ptrdiff_t>(base));
  }
  cache.resident_ = static_cast<std::size_t>(static_cast<std::ptrdiff_t>(cache.resident_) + delta);
}

void EpochEngine::NoteFill(CoreId core, bool is_l1, std::size_t set, std::uint64_t key) {
  // Keys ascend within a worker's pass, so the table ends up holding the
  // *latest* fill key of each set — exactly what the A3 check compares.
  CoreCacheTables& tables = is_l1 ? l1_tables_[core] : l2_tables_[core];
  tables.fill_tag[set] = window_id_;
  tables.fill_key[set] = key;
}

}  // namespace cachedir
