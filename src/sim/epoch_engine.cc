// Epoch engine implementation. The phase-2 replay handlers below mirror
// MemoryHierarchy::Access and its helpers (src/cache/hierarchy.cc) operation
// for operation — every directory/LLC/CBo mutation happens in the same order
// the serial code performs it, which is what makes the merge bit-identical.
// Any deviation from the serial path must fail a validation (A1/A2/A3 below)
// and abort the window into the serial fallback; epoch_equivalence_test
// compares full simulated state against the serial engine either way.
#include "src/sim/epoch_engine.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace cachedir {
namespace {

constexpr std::uint64_t Bit(CoreId core) { return std::uint64_t{1} << core; }

}  // namespace

SliceId EpochEngine::DirSliceFn(const void* ctx, PhysAddr line) {
  return static_cast<const SlicedLlc*>(ctx)->SliceOf(line);
}

EpochEngine::EpochEngine(MemoryHierarchy& hierarchy, const EpochEngineOptions& options)
    : hierarchy_(hierarchy),
      options_(options),
      pool_(options.num_threads),
      serial_only_(options.force_serial || hierarchy.spec().l2_next_line_prefetch),
      random_repl_(hierarchy.spec().replacement == ReplacementKind::kRandom) {
  if (hierarchy_.capture_ != nullptr) {
    throw std::logic_error("EpochEngine: hierarchy already has a capture sink");
  }
  if (options_.window_line_ops == 0) {
    throw std::invalid_argument("EpochEngine: window_line_ops must be positive");
  }
  if (!serial_only_) {
    const MachineSpec& spec = hierarchy_.spec();
    const std::size_t cores = spec.num_cores;
    const std::size_t slices = spec.num_slices;
    const std::size_t num_workers = pool_.num_threads();
    hierarchy_.directory_.EnableSliceSharding(static_cast<std::uint32_t>(slices), &DirSliceFn,
                                              &hierarchy_.llc_);
    workers_.resize(num_workers);
    for (WorkerCtx& ctx : workers_) {
      ctx.queues.resize(slices);
      ctx.merged_effects.resize((cores + num_workers - 1) / num_workers);
    }
    slice_ctx_.resize(slices);
    for (SliceCtx& ctx : slice_ctx_) {
      ctx.effects.resize(cores);
    }
    l1_tables_.resize(cores);
    l2_tables_.resize(cores);
    for (std::size_t c = 0; c < cores; ++c) {
      const std::size_t l1_sets = hierarchy_.l1_[c].num_sets();
      const std::size_t l2_sets = hierarchy_.l2_[c].num_sets();
      l1_tables_[c].journal_tag.assign(l1_sets, 0);
      l1_tables_[c].fill_tag.assign(l1_sets, 0);
      l1_tables_[c].fill_key.assign(l1_sets, 0);
      l2_tables_[c].journal_tag.assign(l2_sets, 0);
      l2_tables_[c].fill_tag.assign(l2_sets, 0);
      l2_tables_[c].fill_key.assign(l2_sets, 0);
    }
    llc_sets_ = hierarchy_.llc_.slices_[0].num_sets();
    llc_journal_tag_.assign(slices * llc_sets_, 0);
    if (random_repl_) {
      core_rng_snapshot_.assign(cores * 2, Rng(0));
    }
  }
  ops_.reserve(options_.window_line_ops + 64);
  hierarchy_.AttachCaptureSink(this);
}

EpochEngine::~EpochEngine() {
  Flush();
  if (hierarchy_.capture_ == this) {
    hierarchy_.AttachCaptureSink(nullptr);
  }
}

// ---------------------------------------------------------------------------
// Capture.

AccessResult EpochEngine::OnAccess(CoreId core, PhysAddr addr, bool is_write) {
  CaptureCoreLine(core, addr, is_write);
  return AccessResult{};
}

BatchResult EpochEngine::OnAccessRange(CoreId core, const AccessBatch& batch, bool is_write) {
  if (!batch.per_line.empty()) {
    // The caller wants individual AccessResults now, which capture cannot
    // provide: settle everything pending, then run the batch in place. The
    // batch stays outside engine numbering — its real result goes back to
    // the caller directly, exactly as without an engine.
    Flush();
    hierarchy_.capture_ = nullptr;
    const BatchResult result =
        is_write ? hierarchy_.WriteRange(core, batch) : hierarchy_.ReadRange(core, batch);
    hierarchy_.capture_ = this;
    return result;
  }
  BatchResult result;
  if (!batch.gather.empty()) {
    // Reserve once so the whole batch lands in one window; batches are
    // equivalent to their scalar expansion by contract, so each address
    // captures as its own line op.
    ReserveWindow(batch.gather.size());
    for (const PhysAddr addr : batch.gather) {
      CapturedOp op;
      op.kind = CapturedOp::Kind::kCoreAccess;
      op.is_write = is_write;
      op.core = core;
      op.addr = LineBase(addr);
      op.first_seq = next_seq_;
      ops_.push_back(op);
      ++next_seq_;
      ++window_lines_;
    }
    engine_stats_.captured_line_ops += batch.gather.size();
    result.lines = batch.gather.size();
  } else {
    const PhysAddr first = LineBase(batch.addr);
    const PhysAddr last = LineBase(batch.addr + (batch.bytes == 0 ? 0 : batch.bytes - 1));
    const std::size_t n = static_cast<std::size_t>((last - first) / kCacheLineSize) + 1;
    ReserveWindow(n);
    for (PhysAddr line = first; line <= last; line += kCacheLineSize) {
      CapturedOp op;
      op.kind = CapturedOp::Kind::kCoreAccess;
      op.is_write = is_write;
      op.core = core;
      op.addr = line;
      op.first_seq = next_seq_;
      ops_.push_back(op);
      ++next_seq_;
      ++window_lines_;
    }
    engine_stats_.captured_line_ops += n;
    result.lines = n;
  }
  return result;
}

Cycles EpochEngine::OnDmaRange(PhysAddr addr, std::size_t bytes, bool is_write) {
  const PhysAddr first = LineBase(addr);
  const PhysAddr last = LineBase(addr + (bytes == 0 ? 0 : bytes - 1));
  const std::size_t n = static_cast<std::size_t>((last - first) / kCacheLineSize) + 1;
  ReserveWindow(n);
  CapturedOp op;
  op.kind = is_write ? CapturedOp::Kind::kDmaWrite : CapturedOp::Kind::kDmaRead;
  op.addr = addr;  // original address: bytes are measured from here on replay
  op.bytes = bytes;
  op.first_seq = next_seq_;
  op.lines = static_cast<std::uint32_t>(n);
  ops_.push_back(op);
  next_seq_ += n;
  window_lines_ += n;
  engine_stats_.captured_line_ops += n;
  return 0;
}

void EpochEngine::CaptureCoreLine(CoreId core, PhysAddr addr, bool is_write) {
  ReserveWindow(1);
  CapturedOp op;
  op.kind = CapturedOp::Kind::kCoreAccess;
  op.is_write = is_write;
  op.core = core;
  op.addr = LineBase(addr);
  op.first_seq = next_seq_;
  ops_.push_back(op);
  ++next_seq_;
  ++window_lines_;
  ++engine_stats_.captured_line_ops;
}

void EpochEngine::ReserveWindow(std::size_t incoming_lines) {
  if (window_lines_ != 0 && window_lines_ + incoming_lines > options_.window_line_ops) {
    Settle();
  }
}

void EpochEngine::Flush() { Settle(); }

Cycles EpochEngine::CyclesInRange(std::uint64_t begin, std::uint64_t end) {
  Flush();
  if (!options_.keep_line_results) {
    throw std::logic_error("EpochEngine::CyclesInRange requires keep_line_results");
  }
  if (begin > end || begin < results_base_ || end > results_base_ + results_.size()) {
    throw std::out_of_range("EpochEngine::CyclesInRange: span outside retained results");
  }
  Cycles total = 0;
  for (std::uint64_t i = begin; i < end; ++i) {
    total += results_[i - results_base_];
  }
  return total;
}

void EpochEngine::DropSettledResults() {
  Flush();
  results_base_ += results_.size();
  results_.clear();
}

// ---------------------------------------------------------------------------
// Settling.

void EpochEngine::Settle() {
  if (window_lines_ == 0) {
    return;
  }
  ++engine_stats_.windows;
  if (serial_only_) {
    ReplaySerial();
  } else {
    ++engine_stats_.speculative_windows;
    PrepareWindow();
    pool_.Run([this](std::size_t w) { Phase1(w); });
    pool_.Run([this](std::size_t w) { Phase2(w); });
    bool abort = false;
    for (const SliceCtx& ctx : slice_ctx_) {
      abort = abort || ctx.abort;
    }
    if (!abort) {
      pool_.Run([this](std::size_t w) { Phase3Verdict(w); });
      for (const WorkerCtx& ctx : workers_) {
        abort = abort || ctx.abort;
      }
    }
    if (!abort) {
      pool_.Run([this](std::size_t w) { Phase3Commit(w); });
      CommitWindow();
    } else {
      ++engine_stats_.aborted_windows;
      RollbackWindow();
      ReplaySerial();
    }
  }
  ops_.clear();
  window_base_ = next_seq_;
  window_lines_ = 0;
}

void EpochEngine::ReplaySerial() {
  // The reference path (and the abort fallback): run the window through the
  // public API with capture suspended — byte-for-byte the execution that
  // would have happened without an engine attached.
  HierarchyCaptureSink* const saved = hierarchy_.capture_;
  hierarchy_.capture_ = nullptr;
  Cycles window_total = 0;
  for (const CapturedOp& op : ops_) {
    Cycles cycles = 0;
    switch (op.kind) {
      case CapturedOp::Kind::kCoreAccess:
        cycles = (op.is_write ? hierarchy_.Write(op.core, op.addr)
                              : hierarchy_.Read(op.core, op.addr))
                     .cycles;
        break;
      case CapturedOp::Kind::kDmaWrite:
        cycles = hierarchy_.DmaWriteRange(op.addr, op.bytes);
        break;
      case CapturedOp::Kind::kDmaRead:
        cycles = hierarchy_.DmaReadRange(op.addr, op.bytes);
        break;
    }
    window_total += cycles;
    if (options_.keep_line_results) {
      // A multi-line range's cost is attributed to its first line; spans
      // taken at op boundaries (the contract) sum identically either way.
      results_.push_back(cycles);
      for (std::uint32_t i = 1; i < op.lines; ++i) {
        results_.push_back(0);
      }
    }
  }
  hierarchy_.capture_ = saved;
  total_cycles_ += window_total;
}

void EpochEngine::PrepareWindow() {
  ++window_id_;
  if (window_id_ == 0) {
    // Tag wraparound after 2^32 windows: flush every window-tagged table so
    // a stale tag can never alias the new window.
    for (std::vector<CoreCacheTables>* tables : {&l1_tables_, &l2_tables_}) {
      for (CoreCacheTables& t : *tables) {
        std::fill(t.journal_tag.begin(), t.journal_tag.end(), 0u);
        std::fill(t.fill_tag.begin(), t.fill_tag.end(), 0u);
      }
    }
    std::fill(llc_journal_tag_.begin(), llc_journal_tag_.end(), 0u);
    window_id_ = 1;
  }
  own_cycles_.assign(window_lines_, 0);
  shared_cycles_.assign(window_lines_, 0);
  for (WorkerCtx& ctx : workers_) {
    for (std::vector<MicroOp>& queue : ctx.queues) {
      queue.clear();
    }
    ctx.stats = HierarchyStats{};
    ctx.rows.clear();
    ctx.row_words.clear();
    ctx.abort = false;
  }
  for (SliceCtx& ctx : slice_ctx_) {
    ctx.stats = HierarchyStats{};
    ctx.rows.clear();
    ctx.row_words.clear();
    ctx.dir_records.clear();
    for (std::vector<Effect>& effects : ctx.effects) {
      effects.clear();
    }
    ctx.abort = false;
  }
  cbo_snapshot_ = hierarchy_.llc_.cbo().Snapshot();
  if (random_repl_) {
    const std::size_t cores = hierarchy_.l1_.size();
    for (std::size_t c = 0; c < cores; ++c) {
      core_rng_snapshot_[c * 2] = hierarchy_.l1_[c].rng_;
      core_rng_snapshot_[c * 2 + 1] = hierarchy_.l2_[c].rng_;
    }
    for (std::size_t s = 0; s < slice_ctx_.size(); ++s) {
      slice_ctx_[s].rng_snapshot = hierarchy_.llc_.slices_[s].rng_;
    }
  }
}

// ---------------------------------------------------------------------------
// Phase 1: core-local execution + prediction.

void EpochEngine::Phase1(std::size_t worker) {
  WorkerCtx& ctx = workers_[worker];
  const std::size_t num_workers = pool_.num_threads();
  const std::size_t n = ops_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const CapturedOp& op = ops_[i];
    if (op.kind == CapturedOp::Kind::kCoreAccess) {
      if (op.core % num_workers == worker) {
        Phase1Access(ctx, op);
      }
    } else if (i % num_workers == worker) {
      // DMA ranges round-robin by op index: their dominant cost is the
      // per-line Complex Addressing hash, which parallelises here.
      Phase1Dma(ctx, op);
    }
  }
}

void EpochEngine::Phase1Access(WorkerCtx& ctx, const CapturedOp& op) {
  const CoreId core = op.core;
  const PhysAddr line = op.addr;
  const bool is_write = op.is_write;
  const std::uint64_t seq = op.first_seq;
  const std::uint64_t rel = seq - window_base_;
  const LatencyModel& lat = hierarchy_.spec_.latency;
  // Pure hash, never the directory memo — reading an entry here would race
  // with phase 2 of a previous... there is no overlap between phases, but
  // the memo write is a phase-2 (directory) mutation and must happen there.
  const SliceId slice = hierarchy_.llc_.SliceOf(line);

  MicroOp micro;
  micro.key = Key(seq, 0);
  micro.line = line;
  micro.core = core;
  if (is_write) {
    micro.flags |= kFlagIsWrite;
  }

  // L1 (journal first: a hit's promotion mutates the row).
  SetAssocCache& l1 = hierarchy_.l1_[core];
  JournalCoreRow(ctx, core, /*is_l1=*/true, l1.SetIndexOf(line));
  if (const auto r1 = l1.Probe(line); r1.hit) {
    ++ctx.stats.l1_hits;
    micro.kind = kOpHitL1;
    if (r1.dirty) {
      micro.flags |= kFlagObservedDirty;
    }
    if (is_write) {
      own_cycles_[rel] = lat.store_commit;
      l1.MarkDirty(line);
    } else {
      own_cycles_[rel] = lat.l1_hit;
    }
    Emit(ctx, slice, micro);
    return;
  }
  ++ctx.stats.l1_misses;

  // L2.
  SetAssocCache& l2 = hierarchy_.l2_[core];
  JournalCoreRow(ctx, core, /*is_l1=*/false, l2.SetIndexOf(line));
  if (const auto r2 = l2.Probe(line); r2.hit) {
    ++ctx.stats.l2_hits;
    micro.kind = kOpHitL2;
    if (r2.dirty) {
      micro.flags |= kFlagObservedDirty;
    }
    own_cycles_[rel] = lat.l2_hit;
    Emit(ctx, slice, micro);
    LocalFillL1(ctx, core, line, /*dirty=*/is_write, seq, /*fill_sub=*/0, /*evict_sub=*/1);
    return;
  }
  ++ctx.stats.l2_misses;

  // Miss: predict the shared branch from the frozen pre-window state (reads
  // only — phase 1 never mutates shared structures); phase 2 validates every
  // prediction against the authoritative replay and aborts on mismatch.
  micro.kind = kOpMiss;
  const LineDirectory& directory = hierarchy_.directory_;
  const LineDirectoryEntry* entry = directory.Find(line);
  const std::uint64_t dirty_others = entry != nullptr ? entry->dirty() & ~Bit(core) : 0;
  const bool pred_remote = dirty_others != 0;
  bool fill_dirty_l2 = false;
  bool fill_dirty_l1 = is_write;
  if (pred_remote) {
    micro.flags |= kFlagPredRemote;
    if (!is_write) {
      // Serial: fill_dirty = !llc.MarkDirtyOnSlice — the dirt rides on our
      // copy iff the line is not LLC-resident.
      const bool pred_fill_dirty = !hierarchy_.llc_.ContainsOnSlice(slice, line);
      if (pred_fill_dirty) {
        micro.flags |= kFlagPredFillDirty;
      }
      fill_dirty_l2 = pred_fill_dirty;
      fill_dirty_l1 = pred_fill_dirty;
    }
    // Write: the remote Modified copy dies and its dirt transfers to the L1
    // copy (fill_dirty_l1 == true already; the L2 copy fills clean).
  } else if (hierarchy_.spec_.inclusion == LlcInclusionPolicy::kVictim) {
    const SetAssocCache& llc_slice = hierarchy_.llc_.slices_[slice];
    if (llc_slice.Contains(line)) {
      micro.flags |= kFlagPredLlcHit;
      if (llc_slice.IsDirty(line)) {
        micro.flags |= kFlagPredFillDirty;
        fill_dirty_l2 = true;
      }
    }
  }
  // Inclusive non-remote: the L2 copy always fills clean (serial passes
  // fill_dirty == false on that path), so there is nothing to predict.
  Emit(ctx, slice, micro);
  LocalFillL2(ctx, core, line, fill_dirty_l2, seq);
  LocalFillL1(ctx, core, line, fill_dirty_l1, seq, /*fill_sub=*/2, /*evict_sub=*/2);
}

void EpochEngine::Phase1Dma(WorkerCtx& ctx, const CapturedOp& op) {
  const bool is_write = op.kind == CapturedOp::Kind::kDmaWrite;
  const PhysAddr first = LineBase(op.addr);
  MicroOp micro;
  micro.kind = is_write ? kOpDmaWrite : kOpDmaRead;
  for (std::uint32_t i = 0; i < op.lines; ++i) {
    const PhysAddr line = first + std::uint64_t{i} * kCacheLineSize;
    micro.key = Key(op.first_seq + i, 0);
    micro.line = line;
    Emit(ctx, hierarchy_.llc_.SliceOf(line), micro);
  }
}

void EpochEngine::LocalFillL1(WorkerCtx& ctx, CoreId core, PhysAddr line, bool dirty,
                              std::uint64_t seq, unsigned fill_sub, unsigned evict_sub) {
  // The tag-array half of MemoryHierarchy::FillL1; the directory half replays
  // in phase 2 (kOpHitL2/kOpMiss primaries carry the fill's dir bits, the
  // victim's go with the kOpL1Evict micro-op).
  SetAssocCache& l1 = hierarchy_.l1_[core];
  const std::size_t set = l1.SetIndexOf(line);
  JournalCoreRow(ctx, core, /*is_l1=*/true, set);
  const auto evicted = l1.Insert(line, dirty);
  NoteFill(core, /*is_l1=*/true, set, Key(seq, fill_sub));
  if (!evicted.has_value()) {
    return;
  }
  const PhysAddr victim = evicted->line;
  bool in_l2 = false;
  if (evicted->dirty) {
    // L1 victims land in L2 when it still holds the line; phase 2 validates
    // the in_l2 claim and routes the dirt onward when it does not.
    SetAssocCache& l2 = hierarchy_.l2_[core];
    JournalCoreRow(ctx, core, /*is_l1=*/false, l2.SetIndexOf(victim));
    in_l2 = l2.MarkDirty(victim);
  }
  MicroOp micro;
  micro.key = Key(seq, evict_sub);
  micro.line = victim;
  micro.core = core;
  micro.kind = kOpL1Evict;
  if (evicted->dirty) {
    micro.flags |= kFlagEvictedDirty;
  }
  if (in_l2) {
    micro.flags |= kFlagCompanionPresent;
  }
  Emit(ctx, hierarchy_.llc_.SliceOf(victim), micro);
}

void EpochEngine::LocalFillL2(WorkerCtx& ctx, CoreId core, PhysAddr line, bool dirty,
                              std::uint64_t seq) {
  SetAssocCache& l2 = hierarchy_.l2_[core];
  const std::size_t set = l2.SetIndexOf(line);
  JournalCoreRow(ctx, core, /*is_l1=*/false, set);
  const auto evicted = l2.Insert(line, dirty);
  NoteFill(core, /*is_l1=*/false, set, Key(seq, 1));
  if (!evicted.has_value()) {
    return;
  }
  // Serial FillL2's victim handling: the victim leaves L1 too (subset),
  // carrying its dirt. Directory + LLC halves replay as kOpL2Evict.
  const PhysAddr victim = evicted->line;
  SetAssocCache& l1 = hierarchy_.l1_[core];
  JournalCoreRow(ctx, core, /*is_l1=*/true, l1.SetIndexOf(victim));
  const auto l1_state = l1.Invalidate(victim);
  const bool victim_dirty = evicted->dirty || l1_state.was_dirty;
  const SliceId victim_slice = hierarchy_.llc_.SliceOf(victim);
  MicroOp micro;
  micro.key = Key(seq, 1);
  micro.line = victim;
  micro.core = core;
  micro.kind = kOpL2Evict;
  if (evicted->dirty) {
    micro.flags |= kFlagEvictedDirty;
  }
  if (l1_state.was_present) {
    micro.flags |= kFlagCompanionPresent;
  }
  if (l1_state.was_dirty) {
    micro.flags |= kFlagCompanionDirty;
  }
  Emit(ctx, victim_slice, micro);
  if (victim_dirty) {
    // Both inclusion modes charge the same write-back busy cost to the core
    // (hierarchy.cc FillL2); the slice equals the victim's memoized id.
    own_cycles_[seq - window_base_] +=
        hierarchy_.spec_.latency.writeback_busy + hierarchy_.SlicePenalty(core, victim_slice);
  }
}

// ---------------------------------------------------------------------------
// Phase 2: authoritative replay, one worker per slice shard.

void EpochEngine::Phase2(std::size_t worker) {
  const std::size_t num_workers = pool_.num_threads();
  for (std::size_t s = worker; s < slice_ctx_.size(); s += num_workers) {
    ReplaySlice(slice_ctx_[s], static_cast<SliceId>(s));
  }
}

void EpochEngine::ReplaySlice(SliceCtx& ctx, SliceId slice) {
  // K-way merge of the (key-ascending) per-worker queues: total order per
  // slice == the serial execution's op order restricted to this slice.
  const std::size_t num_workers = workers_.size();
  std::vector<std::size_t> head(num_workers, 0);
  while (!ctx.abort) {
    const MicroOp* best = nullptr;
    std::size_t best_worker = 0;
    for (std::size_t w = 0; w < num_workers; ++w) {
      const std::vector<MicroOp>& queue = workers_[w].queues[slice];
      if (head[w] < queue.size()) {
        const MicroOp& cand = queue[head[w]];
        if (best == nullptr || cand.key < best->key) {
          best = &cand;
          best_worker = w;
        }
      }
    }
    if (best == nullptr) {
      break;
    }
    ++head[best_worker];
    switch (best->kind) {
      case kOpHitL1:
        ReplayHitL1(ctx, slice, *best);
        break;
      case kOpHitL2:
        ReplayHitL2(ctx, slice, *best);
        break;
      case kOpMiss:
        ReplayMiss(ctx, slice, *best);
        break;
      case kOpL2Evict:
        ReplayL2Evict(ctx, slice, *best);
        break;
      case kOpL1Evict:
        ReplayL1Evict(ctx, slice, *best);
        break;
      case kOpDmaWrite:
        ReplayDmaWrite(ctx, slice, *best);
        break;
      case kOpDmaRead:
        ReplayDmaRead(ctx, slice, *best);
        break;
      default:
        ctx.abort = true;  // unreachable; abort (not throw) — this runs on a worker
    }
  }
}

void EpochEngine::ReplayHitL1(SliceCtx& ctx, SliceId slice, const MicroOp& op) {
  LineDirectory& directory = hierarchy_.directory_;
  const PhysAddr line = op.line;
  const std::uint64_t self = Bit(op.core);
  LineDirectoryEntry* entry = directory.Find(line);
  // Serial access top: the slice memo fills on first touch of the entry.
  if (entry != nullptr && entry->slice_cache == LineDirectoryEntry::kNoSlice) {
    RecordDir(ctx, line);
    entry->slice_cache = slice;
  }
  // A1: phase 1 claims an L1 hit; the directory mirrors the tag arrays
  // exactly, so a stale claim (an unapplied invalidate effect) shows here.
  if (entry == nullptr || (entry->l1_sharers & self) == 0) {
    ctx.abort = true;
    return;
  }
  if ((op.flags & kFlagIsWrite) == 0) {
    return;  // clean read hit: no shared-state work, phase 1 paid the cycles
  }
  const bool observed_dirty = (op.flags & kFlagObservedDirty) != 0;
  if (observed_dirty != ((entry->l1_dirty & self) != 0)) {
    ctx.abort = true;  // A1: the upgrade branch hangs off this bit
    return;
  }
  const std::uint64_t others = entry->sharers() & ~self;
  Cycles shared = 0;
  if (!observed_dirty && others != 0) {
    ++ctx.stats.upgrades;
    ReplayInvalidateElsewhere(ctx, op.key, op.core, line);
    shared = hierarchy_.LlcHitLatency(op.core, slice) + hierarchy_.spec_.latency.upgrade;
  }
  RecordDir(ctx, line);
  directory.GetOrCreate(line).l1_dirty |= self;
  shared_cycles_[(op.key >> 2) - window_base_] = shared;
}

void EpochEngine::ReplayHitL2(SliceCtx& ctx, SliceId slice, const MicroOp& op) {
  LineDirectory& directory = hierarchy_.directory_;
  const PhysAddr line = op.line;
  const std::uint64_t self = Bit(op.core);
  const bool is_write = (op.flags & kFlagIsWrite) != 0;
  const bool observed_dirty = (op.flags & kFlagObservedDirty) != 0;
  LineDirectoryEntry* entry = directory.Find(line);
  if (entry != nullptr && entry->slice_cache == LineDirectoryEntry::kNoSlice) {
    RecordDir(ctx, line);
    entry->slice_cache = slice;
  }
  // A1: L1 missed, L2 hit, and (writes) the observed L2 dirty bit agrees.
  if (entry == nullptr || (entry->l1_sharers & self) != 0 || (entry->l2_sharers & self) == 0 ||
      (is_write && observed_dirty != ((entry->l2_dirty & self) != 0))) {
    ctx.abort = true;
    return;
  }
  if (entry->prefetched) {
    RecordDir(ctx, line);
    entry->prefetched = false;
    ++ctx.stats.prefetch_hits;
  }
  Cycles shared = 0;
  const std::uint64_t others = entry->sharers() & ~self;
  if (is_write && !observed_dirty && others != 0) {
    ++ctx.stats.upgrades;
    ReplayInvalidateElsewhere(ctx, op.key, op.core, line);
    shared = hierarchy_.LlcHitLatency(op.core, slice) + hierarchy_.spec_.latency.upgrade;
  }
  // FillL1's directory half (the tag-array half ran in phase 1).
  DirFill(ctx, line, op.core, /*to_l1=*/true, /*dirty=*/is_write, slice);
  shared_cycles_[(op.key >> 2) - window_base_] = shared;
}

void EpochEngine::ReplayMiss(SliceCtx& ctx, SliceId slice, const MicroOp& op) {
  LineDirectory& directory = hierarchy_.directory_;
  const PhysAddr line = op.line;
  const CoreId core = op.core;
  const std::uint64_t self = Bit(core);
  const bool is_write = (op.flags & kFlagIsWrite) != 0;
  const LatencyModel& lat = hierarchy_.spec_.latency;
  const std::uint64_t rel = (op.key >> 2) - window_base_;
  SlicedLlc& llc = hierarchy_.llc_;

  LineDirectoryEntry* entry = directory.Find(line);
  if (entry != nullptr && entry->slice_cache == LineDirectoryEntry::kNoSlice) {
    RecordDir(ctx, line);
    entry->slice_cache = slice;
  }
  // A1: a full private miss (phase 1's own L1/L2 state is a superset of the
  // serial state, so this can only trip on a stale claim).
  if (entry != nullptr && ((entry->l1_sharers | entry->l2_sharers) & self) != 0) {
    ctx.abort = true;
    return;
  }
  const std::uint64_t dirty_others = entry != nullptr ? entry->dirty() & ~self : 0;
  const bool actual_remote = dirty_others != 0;
  if (actual_remote != ((op.flags & kFlagPredRemote) != 0)) {
    ctx.abort = true;  // A2: snoop branch predicted from frozen state
    return;
  }

  if (actual_remote) {
    ++ctx.stats.remote_forwards;
    const Cycles shared = hierarchy_.LlcHitLatency(core, slice) + lat.snoop_transfer;
    bool fill_dirty;
    if (is_write) {
      ReplayInvalidateElsewhere(ctx, op.key, core, line);
      fill_dirty = true;
    } else {
      ReplayDowngradeElsewhere(ctx, op.key, core, line);
      JournalLlcRow(ctx, slice, llc.slices_[slice].SetIndexOf(line));
      fill_dirty = !llc.MarkDirtyOnSlice(slice, line);
      if (fill_dirty != ((op.flags & kFlagPredFillDirty) != 0)) {
        ctx.abort = true;  // A2: phase 1 filled its L1/L2 with this bit
        return;
      }
    }
    if (hierarchy_.spec_.inclusion == LlcInclusionPolicy::kInclusive) {
      JournalLlcRow(ctx, slice, llc.slices_[slice].SetIndexOf(line));
      llc.LookupAndTouchOnSlice(slice, line);
    }
    DirFill(ctx, line, core, /*to_l1=*/false, fill_dirty && !is_write, slice);
    DirFill(ctx, line, core, /*to_l1=*/true, is_write || fill_dirty, slice);
    shared_cycles_[rel] = shared;
    return;
  }

  // LLC.
  Cycles shared = hierarchy_.LlcHitLatency(core, slice);
  JournalLlcRow(ctx, slice, llc.slices_[slice].SetIndexOf(line));
  const bool llc_hit = llc.LookupAndTouchOnSlice(slice, line);
  const bool victim_mode = hierarchy_.spec_.inclusion == LlcInclusionPolicy::kVictim;
  bool fill_dirty = false;
  if (llc_hit) {
    ++ctx.stats.llc_hits;
    if (victim_mode) {
      const auto inv = llc.InvalidateOnSlice(slice, line);  // same set, journaled above
      fill_dirty = inv.was_dirty;
    }
  } else {
    ++ctx.stats.llc_misses;
    shared += lat.dram;
    if (!victim_mode) {
      const auto evicted = llc.InsertForCoreOnSlice(core, slice, line, /*dirty=*/false);
      ReplayLlcEviction(ctx, op.key, slice, evicted);
    }
  }
  if (victim_mode) {
    // A2: phase 1 predicted the LLC outcome to pick its L2 fill dirt.
    if (llc_hit != ((op.flags & kFlagPredLlcHit) != 0) ||
        fill_dirty != ((op.flags & kFlagPredFillDirty) != 0)) {
      ctx.abort = true;
      return;
    }
  }
  if (is_write) {
    ReplayInvalidateElsewhere(ctx, op.key, core, line);
  }
  DirFill(ctx, line, core, /*to_l1=*/false, fill_dirty, slice);
  DirFill(ctx, line, core, /*to_l1=*/true, /*dirty=*/is_write, slice);
  shared_cycles_[rel] = shared;
}

void EpochEngine::ReplayL2Evict(SliceCtx& ctx, SliceId slice, const MicroOp& op) {
  LineDirectory& directory = hierarchy_.directory_;
  const PhysAddr line = op.line;
  const CoreId core = op.core;
  const std::uint64_t self = Bit(core);
  const bool evicted_dirty = (op.flags & kFlagEvictedDirty) != 0;
  const bool l1_present = (op.flags & kFlagCompanionPresent) != 0;
  const bool l1_dirty = (op.flags & kFlagCompanionDirty) != 0;
  LineDirectoryEntry* entry = directory.Find(line);
  // A1: the victim's own L2 dirty bit and its L1 companion state must agree
  // with the directory — they decide where the dirt goes.
  if (entry == nullptr || (entry->l2_sharers & self) == 0 ||
      evicted_dirty != ((entry->l2_dirty & self) != 0) ||
      l1_present != ((entry->l1_sharers & self) != 0) ||
      (l1_present && l1_dirty != ((entry->l1_dirty & self) != 0))) {
    ctx.abort = true;
    return;
  }
  // Serial order: DirRemoveL2, (local L1 invalidate — ran in phase 1),
  // DirRemoveL1.
  ReplayDirRemove(ctx, core, line, /*is_l1=*/false);
  ReplayDirRemove(ctx, core, line, /*is_l1=*/true);
  const bool victim_dirty = evicted_dirty || l1_dirty;
  SlicedLlc& llc = hierarchy_.llc_;
  if (hierarchy_.spec_.inclusion == LlcInclusionPolicy::kInclusive) {
    if (victim_dirty) {
      ++ctx.stats.dirty_writebacks;
      JournalLlcRow(ctx, slice, llc.slices_[slice].SetIndexOf(line));
      llc.MarkDirtyOnSlice(slice, line);
    }
    return;
  }
  JournalLlcRow(ctx, slice, llc.slices_[slice].SetIndexOf(line));
  const auto llc_evicted = llc.FillFromL2OnSlice(core, slice, line, victim_dirty);
  ReplayLlcEviction(ctx, op.key, slice, llc_evicted);
  if (victim_dirty) {
    ++ctx.stats.dirty_writebacks;
  }
}

void EpochEngine::ReplayL1Evict(SliceCtx& ctx, SliceId slice, const MicroOp& op) {
  LineDirectory& directory = hierarchy_.directory_;
  const PhysAddr line = op.line;
  const CoreId core = op.core;
  const std::uint64_t self = Bit(core);
  const bool evicted_dirty = (op.flags & kFlagEvictedDirty) != 0;
  const bool in_l2 = (op.flags & kFlagCompanionPresent) != 0;
  LineDirectoryEntry* entry = directory.Find(line);
  if (entry == nullptr || (entry->l1_sharers & self) == 0 ||
      evicted_dirty != ((entry->l1_dirty & self) != 0) ||
      (evicted_dirty && in_l2 != ((entry->l2_sharers & self) != 0))) {
    ctx.abort = true;
    return;
  }
  ReplayDirRemove(ctx, core, line, /*is_l1=*/true);
  if (!evicted_dirty) {
    return;
  }
  if (in_l2) {
    // Phase 1 already set the L2 dirty bit in the tag array; mirror it here.
    RecordDir(ctx, line);
    hierarchy_.directory_.GetOrCreate(line).l2_dirty |= self;
  } else {
    JournalLlcRow(ctx, slice, hierarchy_.llc_.slices_[slice].SetIndexOf(line));
    if (!hierarchy_.llc_.MarkDirtyOnSlice(slice, line)) {
      ++ctx.stats.dirty_writebacks;  // nowhere below: straight to DRAM
    }
  }
}

void EpochEngine::ReplayDmaWrite(SliceCtx& ctx, SliceId slice, const MicroOp& op) {
  const PhysAddr line = op.line;
  ++ctx.stats.dma_line_writes;
  ReplayBackInvalidate(ctx, op.key, line);
  SlicedLlc& llc = hierarchy_.llc_;
  JournalLlcRow(ctx, slice, llc.slices_[slice].SetIndexOf(line));
  const auto evicted = llc.DmaFillOnSlice(slice, line);
  ReplayLlcEviction(ctx, op.key, slice, evicted);
  shared_cycles_[(op.key >> 2) - window_base_] =
      hierarchy_.spec_.latency.llc_base + hierarchy_.SlicePenalty(0, slice);
}

void EpochEngine::ReplayDmaRead(SliceCtx& ctx, SliceId slice, const MicroOp& op) {
  const PhysAddr line = op.line;
  ++ctx.stats.dma_line_reads;
  SlicedLlc& llc = hierarchy_.llc_;
  JournalLlcRow(ctx, slice, llc.slices_[slice].SetIndexOf(line));
  const bool hit = llc.LookupAndTouchOnSlice(slice, line);
  const LatencyModel& lat = hierarchy_.spec_.latency;
  shared_cycles_[(op.key >> 2) - window_base_] = lat.llc_base + (hit ? 0 : lat.dram);
}

void EpochEngine::ReplayDirRemove(SliceCtx& ctx, CoreId core, PhysAddr line, bool is_l1) {
  LineDirectory& directory = hierarchy_.directory_;
  LineDirectoryEntry* entry = directory.Find(line);
  if (entry == nullptr) {
    return;
  }
  RecordDir(ctx, line);
  const std::uint64_t keep = ~Bit(core);
  if (is_l1) {
    entry->l1_sharers &= keep;
    entry->l1_dirty &= keep;
  } else {
    entry->l2_sharers &= keep;
    entry->l2_dirty &= keep;
  }
  if (entry->empty()) {
    directory.Erase(line);
  }
}

void EpochEngine::ReplayInvalidateElsewhere(SliceCtx& ctx, std::uint64_t key, CoreId core,
                                            PhysAddr line) {
  LineDirectory& directory = hierarchy_.directory_;
  LineDirectoryEntry* entry = directory.Find(line);
  if (entry == nullptr) {
    return;
  }
  RecordDir(ctx, line);
  const std::uint64_t self = Bit(core);
  std::uint64_t others = entry->sharers() & ~self;
  // Serial counts cores whose L1 or L2 held a copy; every sharer-mask bit is
  // such a core (the directory is exact), so the popcount matches.
  ctx.stats.invalidations_sent += static_cast<std::uint64_t>(std::popcount(others));
  while (others != 0) {
    const auto c = static_cast<CoreId>(std::countr_zero(others));
    others &= others - 1;
    ctx.effects[c].push_back(Effect{key, line, /*invalidate=*/true});
  }
  entry->l1_sharers &= self;
  entry->l2_sharers &= self;
  entry->l1_dirty &= self;
  entry->l2_dirty &= self;
  entry->prefetched = false;
  if (entry->empty()) {
    directory.Erase(line);
  }
}

void EpochEngine::ReplayDowngradeElsewhere(SliceCtx& ctx, std::uint64_t key, CoreId core,
                                           PhysAddr line) {
  LineDirectory& directory = hierarchy_.directory_;
  LineDirectoryEntry* entry = directory.Find(line);
  if (entry == nullptr) {
    return;
  }
  RecordDir(ctx, line);
  const std::uint64_t self = Bit(core);
  std::uint64_t targets = entry->dirty() & ~self;
  while (targets != 0) {
    const auto c = static_cast<CoreId>(std::countr_zero(targets));
    targets &= targets - 1;
    ctx.effects[c].push_back(Effect{key, line, /*invalidate=*/false});
  }
  entry->l1_dirty &= self;
  entry->l2_dirty &= self;
}

void EpochEngine::ReplayBackInvalidate(SliceCtx& ctx, std::uint64_t key, PhysAddr line) {
  LineDirectory& directory = hierarchy_.directory_;
  LineDirectoryEntry* entry = directory.Find(line);
  if (entry == nullptr) {
    return;
  }
  RecordDir(ctx, line);
  std::uint64_t sharers = entry->sharers();
  while (sharers != 0) {
    const auto c = static_cast<CoreId>(std::countr_zero(sharers));
    sharers &= sharers - 1;
    ctx.effects[c].push_back(Effect{key, line, /*invalidate=*/true});
  }
  directory.Erase(line);
}

void EpochEngine::ReplayLlcEviction(SliceCtx& ctx, std::uint64_t key, SliceId slice,
                                    const std::optional<EvictedLine>& evicted) {
  if (!evicted.has_value()) {
    return;
  }
  if (evicted->dirty) {
    ++ctx.stats.dirty_writebacks;
  }
  if (hierarchy_.spec_.inclusion == LlcInclusionPolicy::kInclusive) {
    // The evicted line came out of this slice's tag array, so its directory
    // entry lives in this slice's shard — safe to walk here.
    ReplayBackInvalidate(ctx, key, evicted->line);
  }
  (void)slice;
}

void EpochEngine::DirFill(SliceCtx& ctx, PhysAddr line, CoreId core, bool to_l1, bool dirty,
                          SliceId slice) {
  RecordDir(ctx, line);
  LineDirectoryEntry& entry = hierarchy_.directory_.GetOrCreate(line);
  const std::uint64_t self = Bit(core);
  if (to_l1) {
    entry.l1_sharers |= self;
    if (dirty) {
      entry.l1_dirty |= self;
    }
  } else {
    entry.l2_sharers |= self;
    if (dirty) {
      entry.l2_dirty |= self;
    }
  }
  entry.slice_cache = slice;
}

void EpochEngine::RecordDir(SliceCtx& ctx, PhysAddr line) {
  DirRecord record;
  record.line = line;
  const LineDirectoryEntry* entry = hierarchy_.directory_.Find(line);
  if (entry != nullptr) {
    record.existed = true;
    record.entry = *entry;
  }
  ctx.dir_records.push_back(record);
}

// ---------------------------------------------------------------------------
// Phase 3: verdict, commit, rollback.

void EpochEngine::MergeEffects(std::size_t worker) {
  WorkerCtx& ctx = workers_[worker];
  const std::size_t num_workers = workers_.size();
  const std::size_t cores = hierarchy_.l1_.size();
  for (std::size_t c = worker; c < cores; c += num_workers) {
    std::vector<Effect>& merged = ctx.merged_effects[c / num_workers];
    merged.clear();
    for (const SliceCtx& sctx : slice_ctx_) {
      merged.insert(merged.end(), sctx.effects[c].begin(), sctx.effects[c].end());
    }
    std::sort(merged.begin(), merged.end(),
              [](const Effect& a, const Effect& b) { return a.key < b.key; });
  }
}

void EpochEngine::Phase3Verdict(std::size_t worker) {
  MergeEffects(worker);
  WorkerCtx& ctx = workers_[worker];
  const std::size_t num_workers = workers_.size();
  const std::size_t cores = hierarchy_.l1_.size();
  for (std::size_t c = worker; c < cores && !ctx.abort; c += num_workers) {
    const CoreCacheTables& t1 = l1_tables_[c];
    const CoreCacheTables& t2 = l2_tables_[c];
    const SetAssocCache& l1 = hierarchy_.l1_[c];
    const SetAssocCache& l2 = hierarchy_.l2_[c];
    for (const Effect& effect : ctx.merged_effects[c / num_workers]) {
      if (!effect.invalidate) {
        continue;  // downgrades are recency-neutral; divergence trips A1
      }
      // A3: phase 1 filled the effect's set *after* the effect's key — the
      // serial victim choice could have differed (the invalidated way would
      // have been free). Abort; commit order cannot repair this.
      const std::size_t s1 = l1.SetIndexOf(effect.line);
      if (t1.fill_tag[s1] == window_id_ && t1.fill_key[s1] > effect.key) {
        ctx.abort = true;
        break;
      }
      const std::size_t s2 = l2.SetIndexOf(effect.line);
      if (t2.fill_tag[s2] == window_id_ && t2.fill_key[s2] > effect.key) {
        ctx.abort = true;
        break;
      }
    }
  }
}

void EpochEngine::Phase3Commit(std::size_t worker) {
  WorkerCtx& ctx = workers_[worker];
  const std::size_t num_workers = workers_.size();
  const std::size_t cores = hierarchy_.l1_.size();
  for (std::size_t c = worker; c < cores; c += num_workers) {
    SetAssocCache& l1 = hierarchy_.l1_[c];
    SetAssocCache& l2 = hierarchy_.l2_[c];
    for (const Effect& effect : ctx.merged_effects[c / num_workers]) {
      if (effect.invalidate) {
        l1.Invalidate(effect.line);
        l2.Invalidate(effect.line);
      } else {
        l1.MarkClean(effect.line);
        l2.MarkClean(effect.line);
      }
    }
  }
}

void EpochEngine::CommitWindow() {
  // Fixed merge order: workers' phase-1 blocks, then slices' phase-2 blocks.
  // uint64 counter sums are associative + commutative, so the totals equal
  // the serial per-access bumps.
  for (const WorkerCtx& ctx : workers_) {
    hierarchy_.stats_ += ctx.stats;
    for (const std::vector<Effect>& merged : ctx.merged_effects) {
      engine_stats_.effects_applied += merged.size();
    }
  }
  for (const SliceCtx& ctx : slice_ctx_) {
    hierarchy_.stats_ += ctx.stats;
  }
  Cycles window_total = 0;
  for (std::size_t rel = 0; rel < window_lines_; ++rel) {
    const Cycles cycles = own_cycles_[rel] + shared_cycles_[rel];
    window_total += cycles;
    if (options_.keep_line_results) {
      results_.push_back(cycles);
    }
  }
  total_cycles_ += window_total;
}

void EpochEngine::RollbackWindow() {
  // Set rows are deduplicated per window (first-touch journaling), so each
  // row has exactly one pre-image and restore order does not matter.
  const auto restore_rows = [](const std::vector<RowRecord>& rows,
                               const std::vector<std::uint64_t>& words) {
    for (const RowRecord& record : rows) {
      RestoreRow(*record.cache, record.set, words.data() + record.word_offset);
    }
  };
  for (const WorkerCtx& ctx : workers_) {
    restore_rows(ctx.rows, ctx.row_words);
  }
  for (const SliceCtx& ctx : slice_ctx_) {
    restore_rows(ctx.rows, ctx.row_words);
  }
  // Directory records are not deduplicated: walk each slice's log newest to
  // oldest so a line's oldest pre-image lands last. A line's records are
  // confined to one slice's log (shard exclusivity), so per-slice ordering
  // is total per line.
  LineDirectory& directory = hierarchy_.directory_;
  for (const SliceCtx& ctx : slice_ctx_) {
    for (auto it = ctx.dir_records.rbegin(); it != ctx.dir_records.rend(); ++it) {
      if (it->existed) {
        directory.GetOrCreate(it->line) = it->entry;
      } else {
        directory.Erase(it->line);
      }
    }
  }
  hierarchy_.llc_.cbo().Restore(cbo_snapshot_);
  if (random_repl_) {
    const std::size_t cores = hierarchy_.l1_.size();
    for (std::size_t c = 0; c < cores; ++c) {
      hierarchy_.l1_[c].rng_ = core_rng_snapshot_[c * 2];
      hierarchy_.l2_[c].rng_ = core_rng_snapshot_[c * 2 + 1];
    }
    for (std::size_t s = 0; s < slice_ctx_.size(); ++s) {
      hierarchy_.llc_.slices_[s].rng_ = slice_ctx_[s].rng_snapshot;
    }
  }
}

// ---------------------------------------------------------------------------
// Journaling.

void EpochEngine::JournalCoreRow(WorkerCtx& ctx, CoreId core, bool is_l1, std::size_t set) {
  CoreCacheTables& tables = is_l1 ? l1_tables_[core] : l2_tables_[core];
  if (tables.journal_tag[set] == window_id_) {
    return;
  }
  tables.journal_tag[set] = window_id_;
  SetAssocCache& cache = is_l1 ? hierarchy_.l1_[core] : hierarchy_.l2_[core];
  RowRecord record;
  record.cache = &cache;
  record.set = static_cast<std::uint32_t>(set);
  record.word_offset = static_cast<std::uint32_t>(ctx.row_words.size());
  ctx.rows.push_back(record);
  SaveRow(cache, set, ctx.row_words);
}

void EpochEngine::JournalLlcRow(SliceCtx& ctx, SliceId slice, std::size_t set) {
  std::uint32_t& tag = llc_journal_tag_[slice * llc_sets_ + set];
  if (tag == window_id_) {
    return;
  }
  tag = window_id_;
  SetAssocCache& cache = hierarchy_.llc_.slices_[slice];
  RowRecord record;
  record.cache = &cache;
  record.set = static_cast<std::uint32_t>(set);
  record.word_offset = static_cast<std::uint32_t>(ctx.row_words.size());
  ctx.rows.push_back(record);
  SaveRow(cache, set, ctx.row_words);
}

std::size_t EpochEngine::RowWords(const SetAssocCache& cache) {
  return cache.ways_ + 4 + (cache.repl_ == ReplacementKind::kLru ? cache.ways_ : 0);
}

void EpochEngine::SaveRow(const SetAssocCache& cache, std::size_t set,
                          std::vector<std::uint64_t>& out) {
  const std::size_t base = set * cache.ways_;
  out.insert(out.end(), cache.tags_.begin() + static_cast<std::ptrdiff_t>(base),
             cache.tags_.begin() + static_cast<std::ptrdiff_t>(base + cache.ways_));
  const auto& scalars = cache.scalars_[set];
  out.push_back(scalars.valid);
  out.push_back(scalars.dirty);
  out.push_back(scalars.ticks);
  out.push_back(scalars.plru);
  if (cache.repl_ == ReplacementKind::kLru) {
    out.insert(out.end(), cache.stamps_.begin() + static_cast<std::ptrdiff_t>(base),
               cache.stamps_.begin() + static_cast<std::ptrdiff_t>(base + cache.ways_));
  }
}

void EpochEngine::RestoreRow(SetAssocCache& cache, std::size_t set, const std::uint64_t* words) {
  const std::size_t base = set * cache.ways_;
  const std::size_t ways = cache.ways_;
  std::copy(words, words + ways, cache.tags_.begin() + static_cast<std::ptrdiff_t>(base));
  auto& scalars = cache.scalars_[set];
  const int delta = std::popcount(words[ways]) - std::popcount(scalars.valid);
  scalars.valid = words[ways];
  scalars.dirty = words[ways + 1];
  scalars.ticks = words[ways + 2];
  scalars.plru = words[ways + 3];
  if (cache.repl_ == ReplacementKind::kLru) {
    std::copy(words + ways + 4, words + ways + 4 + ways,
              cache.stamps_.begin() + static_cast<std::ptrdiff_t>(base));
  }
  cache.resident_ = static_cast<std::size_t>(static_cast<std::ptrdiff_t>(cache.resident_) + delta);
}

void EpochEngine::NoteFill(CoreId core, bool is_l1, std::size_t set, std::uint64_t key) {
  // Keys ascend within a worker's pass, so the table ends up holding the
  // *latest* fill key of each set — exactly what the A3 check compares.
  CoreCacheTables& tables = is_l1 ? l1_tables_[core] : l2_tables_[core];
  tables.fill_tag[set] = window_id_;
  tables.fill_key[set] = key;
}

}  // namespace cachedir
