// Machine presets: geometry + interconnect + latency for the two CPUs the
// paper evaluates.
#ifndef CACHEDIRECTOR_SRC_SIM_MACHINE_H_
#define CACHEDIRECTOR_SRC_SIM_MACHINE_H_

#include <cstddef>
#include <memory>
#include <string>

#include "src/sim/interconnect.h"
#include "src/sim/latency_model.h"
#include "src/sim/replacement_kind.h"
#include "src/sim/types.h"

namespace cachedir {

// How L2 and LLC interact.
enum class LlcInclusionPolicy {
  // Haswell: LLC is inclusive of L2/L1; fills allocate in LLC and L2/L1.
  kInclusive,
  // Skylake-SP: LLC is a non-inclusive victim cache; demand fills go to L2
  // and lines enter LLC only on L2 eviction (DDIO still writes into LLC).
  kVictim,
};

// Which probe/fill implementation a MemoryHierarchy built from this spec
// runs (docs/architecture.md §13). The policies a machine fixes for its
// lifetime — slice-hash family, replacement policy, inclusion mode — are
// re-decided on every access by the generic reference path; kAuto instead
// selects, once at construction, a kernel instantiated with all three as
// compile-time constants (falling back to generic for combinations outside
// the instantiation matrix, e.g. an unrecognised SliceHash subclass).
// Simulated results are bit-identical either way (kernel_equivalence_test);
// kGeneric exists for that test's reference arm and for debugging. Building
// with -DCACHEDIR_GENERIC_ONLY=ON forces kGeneric tree-wide.
enum class HierarchyKernelMode {
  kAuto,     // specialized kernel when the configuration has one (default)
  kGeneric,  // always the runtime-dispatched reference path
};

struct CacheGeometry {
  std::size_t size_bytes = 0;
  std::size_t ways = 0;

  std::size_t num_sets() const { return size_bytes / (ways * kCacheLineSize); }
};

// Full description of a simulated socket.
struct MachineSpec {
  std::string name;
  std::size_t num_cores = 0;
  std::size_t num_slices = 0;
  CpuFrequency frequency{3.2};

  CacheGeometry l1;
  CacheGeometry l2;
  CacheGeometry llc_slice;  // geometry of ONE slice

  LlcInclusionPolicy inclusion = LlcInclusionPolicy::kInclusive;
  LatencyModel latency;
  // Replacement policy used by every cache level (varied by ablations).
  ReplacementKind replacement = ReplacementKind::kLru;
  // L2 next-line hardware prefetcher (Intel's "L2 adjacent cache line /
  // streamer" family, simplified): on an L2 demand miss, the following line
  // is fetched into L2 in the background. Off by default so experiments
  // isolate the slice effects; the prefetcher ablation turns it on (§8
  // discusses how prefetching interacts with slice-aware layouts).
  bool l2_next_line_prefetch = false;

  // Number of LLC ways DDIO may allocate into (Intel default: 2 of 20).
  std::size_t ddio_ways = 2;

  // Probe/fill implementation selection; see HierarchyKernelMode above.
  HierarchyKernelMode kernel_mode = HierarchyKernelMode::kAuto;

  std::shared_ptr<const Interconnect> interconnect;
};

// Intel Xeon E5-2667 v3 (Haswell): 8 cores @ 3.2 GHz, 8 x 2.5 MB 20-way LLC
// slices on a ring, 256 kB 8-way L2, 32 kB 8-way L1d, inclusive LLC.
MachineSpec HaswellXeonE52667V3();

// Intel Xeon Gold 6134 (Skylake-SP): 8 cores @ 3.2 GHz, 18 x 1.375 MB 11-way
// LLC slices on a mesh, 1 MB 16-way L2, 32 kB 8-way L1d, victim LLC.
MachineSpec SkylakeXeonGold6134();

// Haswell-derived scale-up part: `num_cores` cores (1..64) sharing the
// E5-2667 v3 uncore — 8 LLC slices on the same 8-stop ring, identical cache
// geometry and latency calibration. Cores beyond the 8 physical ring stops
// share stops modulo 8 (RingInterconnect folds CoreId the same way), so the
// NUCA penalty distribution per core repeats with period 8 instead of
// inventing an uncalibrated topology. This is a *simulation* configuration
// for core-count scaling studies (sim_throughput --cores=16/32/64), not a
// shipping SKU; 64 is the LineDirectory sharer-bitmask limit. Throws
// std::invalid_argument outside [1, 64].
MachineSpec HaswellDerivedManyCore(std::size_t num_cores);

// A Sandy Bridge-class quad core (the generation where sliced LLCs and
// Complex Addressing first shipped; Maurice et al. reverse-engineered the
// 2-output-bit variant there): 4 cores @ 2.4 GHz, 4 x 2.5 MB 20-way slices
// on a ring, inclusive LLC. Included to demonstrate the method generalises
// across generations.
MachineSpec SandyBridgeXeonQuad();

}  // namespace cachedir

#endif  // CACHEDIRECTOR_SRC_SIM_MACHINE_H_
