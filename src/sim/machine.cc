#include "src/sim/machine.h"

#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace cachedir {
namespace {

// Skylake mesh floorplan. Eight active cores are each co-located with one LLC
// tile; the remaining tiles host slices only. Tile clusters are laid out so
// that the *measured* nearest/next-nearest slices per core match the paper's
// Table 4 (e.g. core 0 -> primary S0, secondaries S2 & S6). Clusters are
// separated by >= 3 hops so no foreign slice ties with a listed secondary.
MeshInterconnect::Params SkylakeMeshParams() {
  using Coord = MeshInterconnect::Coord;
  MeshInterconnect::Params p;
  p.hop_cost = 2;
  p.slice_pos.resize(18);
  // Cluster for core 0: S0 primary, S2 & S6 secondary.
  p.slice_pos[0] = Coord{0, 0};
  p.slice_pos[2] = Coord{0, 1};
  p.slice_pos[6] = Coord{1, 0};
  // Core 1: S4 primary, S1 secondary.
  p.slice_pos[4] = Coord{0, 4};
  p.slice_pos[1] = Coord{0, 5};
  // Core 2: S8 primary, S11 secondary.
  p.slice_pos[8] = Coord{0, 8};
  p.slice_pos[11] = Coord{0, 9};
  // Core 3: S12 primary, S13 secondary.
  p.slice_pos[12] = Coord{4, 0};
  p.slice_pos[13] = Coord{4, 1};
  // Core 4: S10 primary, S7 & S9 secondary.
  p.slice_pos[10] = Coord{4, 4};
  p.slice_pos[7] = Coord{4, 5};
  p.slice_pos[9] = Coord{5, 4};
  // Core 5: S14 primary, S16 secondary.
  p.slice_pos[14] = Coord{4, 8};
  p.slice_pos[16] = Coord{4, 9};
  // Core 6: S3 primary, S5 secondary.
  p.slice_pos[3] = Coord{8, 0};
  p.slice_pos[5] = Coord{8, 1};
  // Core 7: S15 primary, S17 secondary.
  p.slice_pos[15] = Coord{8, 4};
  p.slice_pos[17] = Coord{8, 5};

  p.core_pos = {
      p.slice_pos[0],  p.slice_pos[4],  p.slice_pos[8],  p.slice_pos[12],
      p.slice_pos[10], p.slice_pos[14], p.slice_pos[3],  p.slice_pos[15],
  };
  return p;
}

}  // namespace

MachineSpec HaswellXeonE52667V3() {
  MachineSpec m;
  m.name = "Intel Xeon E5-2667 v3 (Haswell)";
  m.num_cores = 8;
  m.num_slices = 8;
  m.frequency = CpuFrequency(3.2);
  m.l1 = CacheGeometry{32 * 1024, 8};           // 64 sets
  m.l2 = CacheGeometry{256 * 1024, 8};          // 512 sets
  m.llc_slice = CacheGeometry{2560 * 1024, 20};  // 2048 sets per slice
  m.inclusion = LlcInclusionPolicy::kInclusive;
  m.ddio_ways = 2;
  RingInterconnect::Params ring;
  ring.num_stops = 8;
  ring.hop_cost = 2;
  ring.parity_penalty = 10;
  m.interconnect = std::make_shared<RingInterconnect>(ring);
  return m;
}

MachineSpec HaswellDerivedManyCore(std::size_t num_cores) {
  if (num_cores == 0 || num_cores > 64) {
    throw std::invalid_argument("HaswellDerivedManyCore: num_cores must be in [1, 64]");
  }
  MachineSpec m = HaswellXeonE52667V3();
  m.name = "Haswell-derived " + std::to_string(num_cores) + "-core (8-slice ring)";
  m.num_cores = num_cores;
  return m;
}

MachineSpec SandyBridgeXeonQuad() {
  MachineSpec m;
  m.name = "Intel Xeon E5 quad (Sandy Bridge)";
  m.num_cores = 4;
  m.num_slices = 4;
  m.frequency = CpuFrequency(2.4);
  m.l1 = CacheGeometry{32 * 1024, 8};
  m.l2 = CacheGeometry{256 * 1024, 8};
  m.llc_slice = CacheGeometry{2560 * 1024, 20};
  m.inclusion = LlcInclusionPolicy::kInclusive;
  m.ddio_ways = 2;
  RingInterconnect::Params ring;
  ring.num_stops = 4;
  ring.hop_cost = 2;
  ring.parity_penalty = 8;
  m.interconnect = std::make_shared<RingInterconnect>(ring);
  return m;
}

MachineSpec SkylakeXeonGold6134() {
  MachineSpec m;
  m.name = "Intel Xeon Gold 6134 (Skylake-SP)";
  m.num_cores = 8;
  m.num_slices = 18;
  m.frequency = CpuFrequency(3.2);
  m.l1 = CacheGeometry{32 * 1024, 8};
  m.l2 = CacheGeometry{1024 * 1024, 16};
  m.llc_slice = CacheGeometry{1408 * 1024, 11};  // 1.375 MB, 11-way, 2048 sets
  m.inclusion = LlcInclusionPolicy::kVictim;
  m.ddio_ways = 2;
  m.latency.llc_base = 40;  // mesh LLC is slower than the ring's best case
  m.interconnect = std::make_shared<MeshInterconnect>(SkylakeMeshParams());
  return m;
}

}  // namespace cachedir
