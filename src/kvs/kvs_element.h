// KVS-over-DPDK: the paper's Fig. 8 setup served GET/SET requests arriving
// as 128 B TCP packets through DPDK on one core. This element closes the
// loop in the simulator: it parses the request key out of the packet header
// (one charged header-line read — which is exactly the line CacheDirector
// steers), executes it against an EmulatedKvs value store, and writes the
// reply into the same buffer.
//
// Request encoding: the key rides in the destination IP (the request
// generator in bench/ encodes Zipf-sampled keys there); the low bit of the
// source port selects GET (0) or SET (1).
#ifndef CACHEDIRECTOR_SRC_KVS_KVS_ELEMENT_H_
#define CACHEDIRECTOR_SRC_KVS_KVS_ELEMENT_H_

#include "src/kvs/kvs.h"
#include "src/mem/physical_memory.h"
#include "src/nfv/element.h"
#include "src/trace/packet.h"

namespace cachedir {

class KvsServerElement final : public Element {
 public:
  KvsServerElement(MemoryHierarchy& hierarchy, PhysicalMemory& memory, EmulatedKvs& kvs)
      : hierarchy_(hierarchy), memory_(memory), kvs_(kvs) {}

  std::string name() const override { return "KvsServer"; }

  ProcessResult Process(CoreId core, Mbuf& mbuf) override {
    ProcessResult r;
    // Parse the request: the header line is the 64 B CacheDirector steers.
    r.cycles += hierarchy_.Read(core, mbuf.data_pa()).cycles;
    const std::uint32_t dst_ip = memory_.ReadU32(mbuf.data_pa() + kDstIpOffset);
    const std::uint32_t ports = memory_.ReadU32(mbuf.data_pa() + kSrcPortOffset);
    const std::uint64_t key = dst_ip % kvs_.num_values();
    const bool is_set = (ports & 1) != 0;

    r.cycles += is_set ? kvs_.Set(core, key) : kvs_.Get(core, key);
    ++(is_set ? sets_ : gets_);

    // Build the reply in place: swap L2/L3 endpoints (one line write).
    SwapMacAddresses(memory_, mbuf.data_pa());
    r.cycles += hierarchy_.Write(core, mbuf.data_pa()).cycles;
    return r;
  }

  // One virtual dispatch per burst; the per-packet access sequence (header
  // read, value-store gathers, header write) is exactly the scalar one.
  void ProcessBurst(CoreId core, std::span<Mbuf* const> burst,
                    std::span<ProcessResult> results) override {
    for (std::size_t i = 0; i < burst.size(); ++i) {
      results[i] = KvsServerElement::Process(core, *burst[i]);
    }
  }

  std::uint64_t gets() const { return gets_; }
  std::uint64_t sets() const { return sets_; }

 private:
  MemoryHierarchy& hierarchy_;
  PhysicalMemory& memory_;
  EmulatedKvs& kvs_;
  std::uint64_t gets_ = 0;
  std::uint64_t sets_ = 0;
};

}  // namespace cachedir

#endif  // CACHEDIRECTOR_SRC_KVS_KVS_ELEMENT_H_
