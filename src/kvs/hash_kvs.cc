#include "src/kvs/hash_kvs.h"

#include <algorithm>
#include <array>
#include <bit>
#include <stdexcept>

#include "src/slice/slice_mapper.h"

namespace cachedir {
namespace {

// value_bytes <= 4096 (checked in the constructor), so a value's gather list
// always fits on the stack.
constexpr std::size_t kMaxValueLines = 4096 / kCacheLineSize;

}  // namespace

HashKvs::HashKvs(MemoryHierarchy& hierarchy, PhysicalMemory& memory,
                 HugepageAllocator& backing, const Config& config)
    : hierarchy_(hierarchy), memory_(memory), config_(config) {
  if (!std::has_single_bit(config_.num_buckets)) {
    throw std::invalid_argument("HashKvs: num_buckets must be a power of two");
  }
  if (config_.max_values == 0 || config_.max_values > config_.num_buckets / 2) {
    // Cap load factor at 0.5 so linear probing stays short.
    throw std::invalid_argument("HashKvs: max_values must be in 1..num_buckets/2");
  }
  if (config_.value_bytes == 0 || config_.value_bytes > 4096) {
    throw std::invalid_argument("HashKvs: value_bytes must be in 1..4096");
  }
  lines_per_value_ = (config_.value_bytes + kCacheLineSize - 1) / kCacheLineSize;

  index_ = backing.Allocate(config_.num_buckets * kBucketBytes, PageSize::k2M);
  const std::size_t value_bytes_total =
      config_.max_values * lines_per_value_ * kCacheLineSize;
  if (config_.slice_aware) {
    if (config_.target_slice >= hierarchy.spec().num_slices) {
      throw std::invalid_argument("HashKvs: target slice out of range");
    }
    values_ = std::make_unique<SliceBuffer>(
        GatherSliceLines(backing, hierarchy.llc().hash(), config_.target_slice,
                         config_.max_values * lines_per_value_,
                         value_bytes_total >= (std::size_t{1} << 27) ? PageSize::k1G
                                                                     : PageSize::k2M));
  } else {
    values_ = std::make_unique<ContiguousBuffer>(
        backing.Allocate(value_bytes_total, PageSize::k2M).pa, value_bytes_total);
  }
}

std::uint64_t HashKvs::HashKey(std::uint64_t key) {
  // Fibonacci-style 64-bit mixer; deterministic and well spread.
  std::uint64_t h = key * 0x9E37'79B9'7F4A'7C15ull;
  h ^= h >> 32;
  h *= 0xD6E8'FEB8'6659'FD93ull;
  h ^= h >> 32;
  return h;
}

HashKvs::ProbeResult HashKvs::Probe(CoreId core, std::uint64_t key, Cycles* cycles) {
  const std::size_t mask = config_.num_buckets - 1;
  std::size_t index = HashKey(key) & mask;
  std::size_t first_insertable = config_.num_buckets;  // "none yet"
  ++operations_;
  for (std::size_t step = 0; step < config_.num_buckets; ++step) {
    ++probes_;
    const PhysAddr pa = BucketPa(index);
    *cycles += hierarchy_.Read(core, pa).cycles;
    const std::uint64_t stored = memory_.ReadU64(pa);
    if (stored == kEmpty) {
      ProbeResult r;
      r.bucket = first_insertable != config_.num_buckets ? first_insertable : index;
      r.found = false;
      return r;
    }
    if (stored == kTombstone) {
      if (first_insertable == config_.num_buckets) {
        first_insertable = index;
      }
    } else if (stored == key + 1) {
      return ProbeResult{index, true, false};
    }
    index = (index + 1) & mask;
  }
  ProbeResult r;
  r.full = first_insertable == config_.num_buckets;
  r.bucket = r.full ? 0 : first_insertable;
  return r;
}

HashKvs::OpResult HashKvs::Set(CoreId core, std::uint64_t key,
                               std::span<const std::uint8_t> value) {
  OpResult result;
  result.cycles = config_.fixed_request_cycles;
  const ProbeResult probe = Probe(core, key, &result.cycles);
  if (probe.full) {
    return result;  // index exhausted
  }

  std::uint64_t slot = 0;
  const PhysAddr bucket_pa = BucketPa(probe.bucket);
  if (probe.found) {
    // Re-reads a bucket line Probe() already charged.
    slot = memory_.ReadU64(bucket_pa + 8) - 1;  // overwrite in place
  } else {
    if (next_slot_ >= config_.max_values) {
      return result;  // value store exhausted
    }
    slot = next_slot_++;
    memory_.WriteU64(bucket_pa, key + 1);
    memory_.WriteU64(bucket_pa + 8, slot + 1);
    result.cycles += hierarchy_.Write(core, bucket_pa).cycles;
    ++size_;
  }

  // Write the value bytes, zero-padded to value_bytes, into the backing
  // store line by line, then charge every (possibly slice-scattered) value
  // line through the hierarchy as one gather batch — same access order.
  std::uint8_t line_buf[kCacheLineSize];
  std::array<PhysAddr, kMaxValueLines> value_lines;
  std::size_t written = 0;
  for (std::size_t i = 0; i < lines_per_value_; ++i) {
    const std::size_t line_bytes =
        std::min(kCacheLineSize, config_.value_bytes - i * kCacheLineSize);
    for (std::size_t b = 0; b < line_bytes; ++b) {
      line_buf[b] = written < value.size() ? value[written] : 0;
      ++written;
    }
    value_lines[i] = ValueSlotPa(slot, i * kCacheLineSize);
    memory_.Write(value_lines[i], std::span<const std::uint8_t>(line_buf, line_bytes));
  }
  AccessBatch value_batch;
  value_batch.gather = std::span<const PhysAddr>(value_lines.data(), lines_per_value_);
  result.cycles += hierarchy_.WriteRange(core, value_batch).cycles;
  result.ok = true;
  return result;
}

HashKvs::OpResult HashKvs::Get(CoreId core, std::uint64_t key, std::span<std::uint8_t> out) {
  OpResult result;
  result.cycles = config_.fixed_request_cycles;
  const ProbeResult probe = Probe(core, key, &result.cycles);
  if (!probe.found) {
    return result;
  }
  // Re-reads a bucket line Probe() already charged.
  const std::uint64_t slot = memory_.ReadU64(BucketPa(probe.bucket) + 8) - 1;
  // Copy out of the backing store line by line, then charge the touched
  // value lines through the hierarchy as one gather batch.
  std::array<PhysAddr, kMaxValueLines> value_lines;
  std::size_t read = 0;
  std::size_t num_lines = 0;
  for (std::size_t i = 0; i < lines_per_value_ && read < out.size(); ++i) {
    const std::size_t line_bytes =
        std::min({kCacheLineSize, config_.value_bytes - i * kCacheLineSize,
                  out.size() - read});
    value_lines[num_lines] = ValueSlotPa(slot, i * kCacheLineSize);
    // Charged by the ReadRange gather below.
    memory_.Read(value_lines[num_lines], out.subspan(read, line_bytes));
    ++num_lines;
    read += line_bytes;
  }
  if (num_lines > 0) {  // an empty `out` touches no value lines at all
    AccessBatch value_batch;
    value_batch.gather = std::span<const PhysAddr>(value_lines.data(), num_lines);
    result.cycles += hierarchy_.ReadRange(core, value_batch).cycles;
  }
  result.ok = true;
  return result;
}

HashKvs::OpResult HashKvs::Erase(CoreId core, std::uint64_t key) {
  OpResult result;
  result.cycles = config_.fixed_request_cycles;
  const ProbeResult probe = Probe(core, key, &result.cycles);
  if (!probe.found) {
    return result;
  }
  const PhysAddr bucket_pa = BucketPa(probe.bucket);
  memory_.WriteU64(bucket_pa, kTombstone);
  result.cycles += hierarchy_.Write(core, bucket_pa).cycles;
  --size_;
  // The value slot is leaked until a rebuild — documented simplification
  // (MICA-style log stores reclaim in bulk too).
  result.ok = true;
  return result;
}

}  // namespace cachedir
