// A complete (non-emulated) key-value store over simulated memory — the
// "more complete implementation and evaluation of slice-aware KVS" the paper
// leaves as future work (§3.1).
//
// Unlike EmulatedKvs (dense keys, latency-only), HashKvs is a real store:
// an open-addressing index in simulated memory maps arbitrary 64-bit keys
// to value slots; SET writes the value bytes into simulated physical memory
// and GET reads them back, with every index probe and value line charged
// through the cache hierarchy. The value store can be slice-aware
// (scattered lines in the serving core's slice, any value size — the §8
// extension) or a normal contiguous region.
#ifndef CACHEDIRECTOR_SRC_KVS_HASH_KVS_H_
#define CACHEDIRECTOR_SRC_KVS_HASH_KVS_H_

#include <memory>
#include <span>

#include "src/cache/hierarchy.h"
#include "src/mem/hugepage.h"
#include "src/mem/physical_memory.h"
#include "src/slice/buffers.h"

namespace cachedir {

class HashKvs {
 public:
  struct Config {
    std::size_t num_buckets = std::size_t{1} << 16;  // power of two
    std::size_t max_values = std::size_t{1} << 15;   // value-store capacity
    std::size_t value_bytes = 64;                    // rounded up to lines
    bool slice_aware = false;
    SliceId target_slice = 0;
    Cycles fixed_request_cycles = 48;  // parse/dispatch per request
  };

  struct OpResult {
    Cycles cycles = 0;
    bool ok = false;  // GET/ERASE: key existed; SET: stored
  };

  HashKvs(MemoryHierarchy& hierarchy, PhysicalMemory& memory, HugepageAllocator& backing,
          const Config& config);

  // Stores `value` (truncated/zero-padded to value_bytes) under `key`.
  // Fails (ok = false) when the value store or index is full.
  OpResult Set(CoreId core, std::uint64_t key, std::span<const std::uint8_t> value);

  // Reads the value into `out` (up to value_bytes).
  OpResult Get(CoreId core, std::uint64_t key, std::span<std::uint8_t> out);

  // Removes the key (tombstone).
  OpResult Erase(CoreId core, std::uint64_t key);

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return config_.max_values; }
  std::size_t lines_per_value() const { return lines_per_value_; }

  // Average index probes per operation so far (hash quality / load metric).
  double AverageProbes() const {
    return operations_ == 0 ? 0.0
                            : static_cast<double>(probes_) / static_cast<double>(operations_);
  }

 private:
  // One bucket is 16 B: [key+1 | 0 empty | ~0 tombstone][value slot + 1].
  static constexpr std::size_t kBucketBytes = 16;
  static constexpr std::uint64_t kEmpty = 0;
  static constexpr std::uint64_t kTombstone = ~std::uint64_t{0};

  PhysAddr BucketPa(std::size_t index) const { return index_.pa + index * kBucketBytes; }
  static std::uint64_t HashKey(std::uint64_t key);

  // Probes for `key`. Returns the bucket index holding it, or the first
  // insertable slot (empty/tombstone) when absent; accumulates access cost.
  struct ProbeResult {
    std::size_t bucket = 0;
    bool found = false;
    bool full = false;
  };
  ProbeResult Probe(CoreId core, std::uint64_t key, Cycles* cycles);

  PhysAddr ValueSlotPa(std::uint64_t slot, std::size_t offset) const {
    return values_->PaForOffset((slot * lines_per_value_) * kCacheLineSize + offset);
  }

  MemoryHierarchy& hierarchy_;
  PhysicalMemory& memory_;
  Config config_;
  std::size_t lines_per_value_;
  Mapping index_;
  std::unique_ptr<MemoryBuffer> values_;
  std::uint64_t next_slot_ = 0;
  std::size_t size_ = 0;
  std::uint64_t probes_ = 0;
  std::uint64_t operations_ = 0;
};

}  // namespace cachedir

#endif  // CACHEDIRECTOR_SRC_KVS_HASH_KVS_H_
