// Emulated in-memory key-value store (paper §3.1).
//
// Matches the paper's emulation: 64 B keys/values, keys are dense ids in
// [0, num_values), the value store is a flat array of one cache line per
// value. Layout is either *normal* (one contiguous hugepage-backed region,
// values spread over all LLC slices by Complex Addressing) or *slice-aware*
// (every value line hashes to the serving core's closest slice). GET reads
// the value line; SET writes it; both pay a fixed per-request software cost
// for the DPDK RX/parse path.
#ifndef CACHEDIRECTOR_SRC_KVS_KVS_H_
#define CACHEDIRECTOR_SRC_KVS_KVS_H_

#include <memory>

#include "src/cache/hierarchy.h"
#include "src/mem/hugepage.h"
#include "src/slice/buffers.h"

namespace cachedir {

class EmulatedKvs {
 public:
  struct Config {
    std::size_t num_values = std::size_t{1} << 22;
    bool slice_aware = false;
    SliceId target_slice = 0;
    // Bytes per value, rounded up to whole cache lines. The paper's
    // emulation is limited to 64 B values (§8, "the current implementation
    // of KVS cannot map values greater than 64 B to the appropriate LLC
    // slice"); this implementation lifts that limit by scattering each
    // value over multiple slice-resident lines, the §8 proposal.
    std::size_t value_bytes = 64;
    // Per-request software cost: RX descriptor + request parse + reply
    // build. Tuned so the normal/skewed configuration serves a request in
    // roughly the paper's ~194 cycles.
    Cycles fixed_request_cycles = 96;
  };

  EmulatedKvs(MemoryHierarchy& hierarchy, HugepageAllocator& backing, const Config& config);

  // Value lines may be slice-scattered (SliceBuffer), so multi-line values
  // go through the hierarchy as one gather batch per request.
  Cycles Get(CoreId core, std::uint64_t key);
  Cycles Set(CoreId core, std::uint64_t key);

  // value_bytes <= 4096 (checked in the constructor), so a value's line
  // addresses always fit on the stack.
  static constexpr std::size_t kMaxValueLines = 4096 / kCacheLineSize;

  // Physical address of byte `offset` within `key`'s value.
  PhysAddr ValuePa(std::uint64_t key, std::size_t offset = 0) const {
    return values_->PaForOffset(key * lines_per_value_ * kCacheLineSize + offset);
  }

  std::size_t lines_per_value() const { return lines_per_value_; }
  std::size_t num_values() const { return config_.num_values; }
  const Config& config() const { return config_; }
  const MemoryHierarchy& hierarchy() const { return hierarchy_; }

 private:
  MemoryHierarchy& hierarchy_;
  Config config_;
  std::size_t lines_per_value_ = 1;
  std::unique_ptr<MemoryBuffer> values_;
};

}  // namespace cachedir

#endif  // CACHEDIRECTOR_SRC_KVS_KVS_H_
