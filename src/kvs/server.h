// Single-core KVS request-serving loop and TPS measurement (the paper's
// Fig. 8 methodology: server-side transactions per second, networking
// bottlenecks excluded).
#ifndef CACHEDIRECTOR_SRC_KVS_SERVER_H_
#define CACHEDIRECTOR_SRC_KVS_SERVER_H_

#include <cstdint>

#include "src/kvs/kvs.h"
#include "src/stats/zipf.h"

namespace cachedir {

struct KvsWorkload {
  double get_fraction = 1.0;   // 1.0 / 0.95 / 0.50 in Fig. 8
  double zipf_theta = 0.99;    // 0 for the uniform workload
  std::uint64_t requests = 1'000'000;
  std::uint64_t seed = 1;
};

struct KvsResult {
  std::uint64_t requests = 0;
  double total_cycles = 0;
  double avg_cycles_per_request = 0;
  double tps_millions = 0;  // at the simulated core frequency
};

class KvsServer {
 public:
  KvsServer(EmulatedKvs& kvs, CoreId core) : kvs_(kvs), core_(core) {}

  KvsResult Run(const KvsWorkload& workload);

 private:
  EmulatedKvs& kvs_;
  CoreId core_;
};

}  // namespace cachedir

#endif  // CACHEDIRECTOR_SRC_KVS_SERVER_H_
