#include "src/kvs/server.h"

#include "src/sim/rng.h"

namespace cachedir {

KvsResult KvsServer::Run(const KvsWorkload& workload) {
  ZipfGenerator keys(kvs_.num_values(), workload.zipf_theta, workload.seed);
  Rng ops(workload.seed + 0x9E3779B97F4A7C15ull);

  KvsResult result;
  result.requests = workload.requests;
  std::uint64_t cycles = 0;
  for (std::uint64_t i = 0; i < workload.requests; ++i) {
    const std::uint64_t key = keys.Next();
    if (ops.Bernoulli(workload.get_fraction)) {
      cycles += kvs_.Get(core_, key);
    } else {
      cycles += kvs_.Set(core_, key);
    }
  }
  result.total_cycles = static_cast<double>(cycles);
  result.avg_cycles_per_request =
      result.total_cycles / static_cast<double>(workload.requests);
  // TPS = f / cycles-per-request, at the simulated core frequency.
  const double hz = kvs_.hierarchy().spec().frequency.ghz() * 1e9;
  result.tps_millions = hz / result.avg_cycles_per_request / 1e6;
  return result;
}

}  // namespace cachedir
