#include "src/kvs/kvs.h"

#include <array>
#include <span>
#include <stdexcept>

#include "src/slice/slice_mapper.h"

namespace cachedir {

EmulatedKvs::EmulatedKvs(MemoryHierarchy& hierarchy, HugepageAllocator& backing,
                         const Config& config)
    : hierarchy_(hierarchy), config_(config) {
  if (config_.num_values == 0) {
    throw std::invalid_argument("EmulatedKvs: need at least one value");
  }
  if (config_.value_bytes == 0 || config_.value_bytes > 4096) {
    throw std::invalid_argument("EmulatedKvs: value_bytes must be in 1..4096");
  }
  lines_per_value_ = (config_.value_bytes + kCacheLineSize - 1) / kCacheLineSize;
  const std::size_t bytes = config_.num_values * lines_per_value_ * kCacheLineSize;
  if (config_.slice_aware) {
    if (config_.target_slice >= hierarchy.spec().num_slices) {
      throw std::invalid_argument("EmulatedKvs: target slice out of range");
    }
    const PageSize page = bytes >= (std::size_t{1} << 27) ? PageSize::k1G : PageSize::k2M;
    values_ = std::make_unique<SliceBuffer>(
        GatherSliceLines(backing, hierarchy.llc().hash(), config_.target_slice,
                         config_.num_values * lines_per_value_, page));
  } else {
    const PageSize page = bytes > (std::size_t{1} << 21) ? PageSize::k1G : PageSize::k2M;
    values_ = std::make_unique<ContiguousBuffer>(backing.Allocate(bytes, page).pa, bytes);
  }
}

Cycles EmulatedKvs::Get(CoreId core, std::uint64_t key) {
  if (key >= config_.num_values) {
    throw std::out_of_range("EmulatedKvs::Get: key out of range");
  }
  // Slice-aware values are scattered line by line, so the batch is a gather
  // over the value's resolved line addresses, not a contiguous range.
  std::array<PhysAddr, kMaxValueLines> lines;
  for (std::size_t i = 0; i < lines_per_value_; ++i) {
    lines[i] = ValuePa(key, i * kCacheLineSize);
  }
  AccessBatch batch;
  batch.gather = std::span<const PhysAddr>(lines.data(), lines_per_value_);
  return config_.fixed_request_cycles + hierarchy_.ReadRange(core, batch).cycles;
}

Cycles EmulatedKvs::Set(CoreId core, std::uint64_t key) {
  if (key >= config_.num_values) {
    throw std::out_of_range("EmulatedKvs::Set: key out of range");
  }
  std::array<PhysAddr, kMaxValueLines> lines;
  for (std::size_t i = 0; i < lines_per_value_; ++i) {
    lines[i] = ValuePa(key, i * kCacheLineSize);
  }
  AccessBatch batch;
  batch.gather = std::span<const PhysAddr>(lines.data(), lines_per_value_);
  return config_.fixed_request_cycles + hierarchy_.WriteRange(core, batch).cycles;
}

}  // namespace cachedir
