// Devirtualized Complex Addressing dispatch.
//
// `SliceHash` is an abstract interface, which priced every simulated memory
// access with a virtual `SliceFor` call — measurable overhead once the SoA
// tag store (docs/architecture.md §10) made the probe itself cheap.
// `FastSliceHash` seals the concrete hash exactly once, at construction: it
// recognises the three preset families (`XorSliceHash`, `XorLutSliceHash`,
// `ModuloSliceHash` — all `final`, so the dynamic_cast is an exact-type
// test), copies their parameters into fixed-size inline storage, and
// dispatches through a plain switch that the compiler inlines into the
// hierarchy's access loops. Unknown SliceHash subclasses keep working
// through a stored pointer — they just stay virtual.
//
// The sealed `Kind` doubles as a template parameter for the specialized
// hierarchy kernels (docs/architecture.md §13): `SliceForKind<K>` is the
// single implementation body, compiled with the hash family fixed, and the
// runtime `SliceFor` is a switch over the same instantiations — so the
// specialized and generic paths cannot diverge at the hash layer.
//
// The mapping is a pure function of the address, so sealing cannot change
// any simulated result; `hash_test` pins FastSliceHash against the virtual
// implementation over every preset.
#ifndef CACHEDIRECTOR_SRC_HASH_FAST_SLICE_HASH_H_
#define CACHEDIRECTOR_SRC_HASH_FAST_SLICE_HASH_H_

#include <array>
#include <cstdint>

#include "src/hash/slice_hash.h"
#include "src/sim/types.h"

namespace cachedir {

class FastSliceHash {
 public:
  // The sealed hash family. Public: the hierarchy's kernel factory keys its
  // instantiation matrix on this (hash kind × replacement × inclusion).
  enum class Kind : std::uint8_t { kXor, kXorLut, kModulo, kVirtual };

  // `hash` must outlive this object (the SlicedLlc owns it via shared_ptr).
  explicit FastSliceHash(const SliceHash& hash) : fallback_(&hash) {
    num_slices_ = hash.num_slices();
    if (const auto* xor_hash = dynamic_cast<const XorSliceHash*>(&hash);
        xor_hash != nullptr && xor_hash->masks().size() <= kMaxMasks) {
      kind_ = Kind::kXor;
      CopyMasks(xor_hash->masks());
      return;
    }
    if (const auto* lut_hash = dynamic_cast<const XorLutSliceHash*>(&hash);
        lut_hash != nullptr && lut_hash->masks().size() <= kMaxLutMasks) {
      kind_ = Kind::kXorLut;
      CopyMasks(lut_hash->masks());
      for (std::size_t i = 0; i < lut_hash->lut().size(); ++i) {
        lut_[i] = lut_hash->lut()[i];
      }
      return;
    }
    if (const auto* mod_hash = dynamic_cast<const ModuloSliceHash*>(&hash);
        mod_hash != nullptr) {
      kind_ = Kind::kModulo;
      return;
    }
    kind_ = Kind::kVirtual;
  }

  std::size_t num_slices() const { return num_slices_; }
  Kind kind() const { return kind_; }

  // Compile-time-kind evaluation: the one implementation body. `K` must
  // equal `kind()` for the non-virtual cases — the kernel factory guarantees
  // that by selecting instantiations off `kind()` itself.
  template <Kind K>
  SliceId SliceForKind(PhysAddr addr) const {
    const PhysAddr line = LineBase(addr);
    if constexpr (K == Kind::kXor) {
      SliceId slice = 0;
      for (std::uint32_t i = 0; i < num_masks_; ++i) {
        slice |= ParityOf(line, masks_[i]) << i;
      }
      return slice;
    } else if constexpr (K == Kind::kXorLut) {
      std::uint32_t index = 0;
      for (std::uint32_t i = 0; i < num_masks_; ++i) {
        index |= ParityOf(line, masks_[i]) << i;
      }
      return lut_[index];
    } else if constexpr (K == Kind::kModulo) {
      return static_cast<SliceId>((line >> kCacheLineBits) % num_slices_);
    } else {
      return fallback_->SliceFor(addr);
    }
  }

  SliceId SliceFor(PhysAddr addr) const {
    switch (kind_) {
      case Kind::kXor:
        return SliceForKind<Kind::kXor>(addr);
      case Kind::kXorLut:
        return SliceForKind<Kind::kXorLut>(addr);
      case Kind::kModulo:
        return SliceForKind<Kind::kModulo>(addr);
      case Kind::kVirtual:
        break;
    }
    return SliceForKind<Kind::kVirtual>(addr);
  }

 private:
  // Pure-XOR hashes address up to 2^8 slices; LUT hashes are bounded by the
  // inline table (2^6 entries covers the 18-slice Skylake preset). Larger
  // configurations fall back to the virtual call.
  static constexpr std::size_t kMaxMasks = 8;
  static constexpr std::size_t kMaxLutMasks = 6;

  void CopyMasks(std::span<const std::uint64_t> masks) {
    num_masks_ = static_cast<std::uint32_t>(masks.size());
    for (std::size_t i = 0; i < masks.size(); ++i) {
      masks_[i] = masks[i];
    }
  }

  Kind kind_ = Kind::kVirtual;
  std::uint32_t num_masks_ = 0;
  std::size_t num_slices_ = 0;
  std::array<std::uint64_t, kMaxMasks> masks_{};
  std::array<SliceId, std::size_t{1} << kMaxLutMasks> lut_{};
  const SliceHash* fallback_;
};

}  // namespace cachedir

#endif  // CACHEDIRECTOR_SRC_HASH_FAST_SLICE_HASH_H_
