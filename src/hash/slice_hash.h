// Models of Intel's "Complex Addressing": the undocumented hash that maps a
// physical cache-line address to an LLC slice.
//
// Maurice et al. (RAID '15) showed the hash for 2^n-core parts is a set of
// XOR parity functions over physical-address bits; the paper reproduces that
// result (its Fig. 4) and this module implements the same functional form.
// For parts whose slice count is not a power of two (Skylake-SP, 18 slices)
// we model a two-stage hash: parity bits select an entry in a fixed lookup
// table of slice ids, which matches the behaviour observed by follow-on
// reverse-engineering work (near-uniform with a small residual imbalance —
// an imbalance the paper itself discusses in §8).
#ifndef CACHEDIRECTOR_SRC_HASH_SLICE_HASH_H_
#define CACHEDIRECTOR_SRC_HASH_SLICE_HASH_H_

#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "src/sim/types.h"

namespace cachedir {

// Parity of the bits of `value` selected by `mask`.
constexpr std::uint32_t ParityOf(std::uint64_t value, std::uint64_t mask) {
  return static_cast<std::uint32_t>(std::popcount(value & mask) & 1);
}

class SliceHash {
 public:
  SliceHash() = default;
  virtual ~SliceHash() = default;

  virtual std::size_t num_slices() const = 0;

  // Slice holding the cache line that contains `addr`. Only bits >= 6 may
  // influence the result (all bytes of a line live in one slice).
  virtual SliceId SliceFor(PhysAddr addr) const = 0;

 protected:
  // Protected copy/move: assigning through a SliceHash reference would
  // slice the concrete hash. Concrete types keep value semantics.
  SliceHash(const SliceHash&) = default;
  SliceHash& operator=(const SliceHash&) = default;
};

// Pure XOR hash: output bit i is the parity of (addr & masks[i]). Number of
// slices is 2^masks.size(). This is the documented Haswell-class form.
class XorSliceHash final : public SliceHash {
 public:
  explicit XorSliceHash(std::vector<std::uint64_t> masks);

  std::size_t num_slices() const override { return std::size_t{1} << masks_.size(); }

  SliceId SliceFor(PhysAddr addr) const override {
    const PhysAddr line = LineBase(addr);
    SliceId slice = 0;
    for (std::size_t i = 0; i < masks_.size(); ++i) {
      slice |= ParityOf(line, masks_[i]) << i;
    }
    return slice;
  }

  std::span<const std::uint64_t> masks() const { return masks_; }

 private:
  std::vector<std::uint64_t> masks_;
};

// Two-stage hash: parity bits index a lookup table of slice ids. Supports any
// slice count; table entries are as balanced as 2^k mod num_slices permits.
class XorLutSliceHash final : public SliceHash {
 public:
  XorLutSliceHash(std::vector<std::uint64_t> masks, std::vector<SliceId> lut,
                  std::size_t num_slices);

  std::size_t num_slices() const override { return num_slices_; }

  SliceId SliceFor(PhysAddr addr) const override {
    const PhysAddr line = LineBase(addr);
    std::uint32_t index = 0;
    for (std::size_t i = 0; i < masks_.size(); ++i) {
      index |= ParityOf(line, masks_[i]) << i;
    }
    return lut_[index];
  }

  std::span<const std::uint64_t> masks() const { return masks_; }
  std::span<const SliceId> lut() const { return lut_; }

 private:
  std::vector<std::uint64_t> masks_;
  std::vector<SliceId> lut_;
  std::size_t num_slices_;
};

// Naive baseline used by tests and ablations: slice = line index mod n.
// Real hardware does NOT do this (it would make all lines of a page-strided
// array collide); comparing against it shows why the XOR form matters.
class ModuloSliceHash final : public SliceHash {
 public:
  explicit ModuloSliceHash(std::size_t num_slices) : num_slices_(num_slices) {}

  std::size_t num_slices() const override { return num_slices_; }

  SliceId SliceFor(PhysAddr addr) const override {
    return static_cast<SliceId>((addr >> kCacheLineBits) % num_slices_);
  }

 private:
  std::size_t num_slices_;
};

}  // namespace cachedir

#endif  // CACHEDIRECTOR_SRC_HASH_SLICE_HASH_H_
