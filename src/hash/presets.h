// Concrete Complex Addressing instances for the two modelled CPUs.
#ifndef CACHEDIRECTOR_SRC_HASH_PRESETS_H_
#define CACHEDIRECTOR_SRC_HASH_PRESETS_H_

#include <memory>

#include "src/hash/slice_hash.h"

namespace cachedir {

// Builds a bit mask selecting the listed physical-address bit positions.
std::uint64_t MaskOfBits(std::initializer_list<unsigned> bits);

// Haswell-EP 8-slice hash (the paper's Fig. 4 form): three XOR parity
// functions over PA bits 6..37.
std::shared_ptr<const SliceHash> HaswellSliceHash();

// Skylake-SP 18-slice hash: six parity functions selecting into a fixed
// 64-entry LUT of slice ids. Deterministic; near-uniform (each slice owns
// 3 or 4 of the 64 LUT entries).
std::shared_ptr<const SliceHash> SkylakeSliceHash();

// Sandy Bridge-class 4-slice hash: the first two parity functions of the
// family (Maurice et al. showed the 2^n-slice hashes nest: the k-slice-bit
// variant uses the first k functions).
std::shared_ptr<const SliceHash> SandyBridgeSliceHash();

}  // namespace cachedir

#endif  // CACHEDIRECTOR_SRC_HASH_PRESETS_H_
