#include "src/hash/presets.h"

#include <initializer_list>
#include <vector>

namespace cachedir {

std::uint64_t MaskOfBits(std::initializer_list<unsigned> bits) {
  std::uint64_t mask = 0;
  for (const unsigned b : bits) {
    mask |= std::uint64_t{1} << b;
  }
  return mask;
}

std::shared_ptr<const SliceHash> HaswellSliceHash() {
  // The three parity functions published by Maurice et al. for 8-slice parts,
  // truncated to PA bits <= 37 (a 256 GB physical space, ample for the
  // simulated 128 GB socket).
  std::vector<std::uint64_t> masks;
  masks.push_back(
      MaskOfBits({6, 10, 12, 14, 16, 17, 18, 20, 22, 24, 25, 26, 27, 28, 30, 32, 33, 35, 36}));
  masks.push_back(
      MaskOfBits({7, 11, 13, 15, 17, 19, 20, 21, 22, 23, 24, 26, 28, 29, 31, 33, 34, 35, 37}));
  masks.push_back(MaskOfBits({8, 12, 13, 16, 19, 22, 23, 26, 27, 30, 31, 34, 35, 36, 37}));
  return std::make_shared<XorSliceHash>(std::move(masks));
}

std::shared_ptr<const SliceHash> SandyBridgeSliceHash() {
  std::vector<std::uint64_t> masks;
  masks.push_back(
      MaskOfBits({6, 10, 12, 14, 16, 17, 18, 20, 22, 24, 25, 26, 27, 28, 30, 32, 33, 35, 36}));
  masks.push_back(
      MaskOfBits({7, 11, 13, 15, 17, 19, 20, 21, 22, 23, 24, 26, 28, 29, 31, 33, 34, 35, 37}));
  return std::make_shared<XorSliceHash>(std::move(masks));
}

std::shared_ptr<const SliceHash> SkylakeSliceHash() {
  // Six parity functions over a wider bit range feed a 64-entry LUT. 64 is
  // not divisible by 18, so ten slices own four entries and eight own three —
  // the small residual imbalance the paper notes for real parts (§8).
  std::vector<std::uint64_t> masks;
  masks.push_back(MaskOfBits({6, 11, 13, 16, 19, 21, 24, 27, 30, 33, 36}));
  masks.push_back(MaskOfBits({7, 12, 14, 17, 20, 22, 25, 28, 31, 34, 37}));
  masks.push_back(MaskOfBits({8, 13, 15, 18, 21, 23, 26, 29, 32, 35}));
  masks.push_back(MaskOfBits({9, 14, 16, 19, 22, 24, 27, 30, 33, 36}));
  masks.push_back(MaskOfBits({10, 15, 17, 20, 23, 25, 28, 31, 34, 37}));
  masks.push_back(MaskOfBits({11, 16, 18, 21, 24, 26, 29, 32, 35}));

  // Fixed pseudo-random permutation of slice ids across the 64 entries
  // (generated once with a Fisher-Yates shuffle, then frozen here so the
  // mapping is part of the machine definition, as on silicon).
  const std::vector<SliceId> lut = {
      7,  12, 3,  16, 9,  0,  14, 5,  11, 2,  17, 8,  13, 4,  10, 1,   //
      15, 6,  0,  12, 7,  17, 2,  9,  14, 5,  11, 16, 3,  8,  13, 10,  //
      1,  6,  15, 4,  9,  0,  17, 12, 5,  14, 2,  7,  16, 11, 3,  8,   //
      13, 1,  10, 6,  15, 4,  0,  9,  17, 2,  12, 7,  5,  14, 16, 11,
  };
  return std::make_shared<XorLutSliceHash>(std::move(masks), lut, 18);
}

}  // namespace cachedir
