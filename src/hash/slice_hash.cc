#include "src/hash/slice_hash.h"

#include <stdexcept>

namespace cachedir {

XorSliceHash::XorSliceHash(std::vector<std::uint64_t> masks) : masks_(std::move(masks)) {
  if (masks_.empty() || masks_.size() > 6) {
    throw std::invalid_argument("XorSliceHash: need 1..6 mask bits");
  }
  for (const std::uint64_t mask : masks_) {
    if ((mask & ((std::uint64_t{1} << kCacheLineBits) - 1)) != 0) {
      throw std::invalid_argument("XorSliceHash: masks must not select line-offset bits");
    }
  }
}

XorLutSliceHash::XorLutSliceHash(std::vector<std::uint64_t> masks, std::vector<SliceId> lut,
                                 std::size_t num_slices)
    : masks_(std::move(masks)), lut_(std::move(lut)), num_slices_(num_slices) {
  if (lut_.size() != (std::size_t{1} << masks_.size())) {
    throw std::invalid_argument("XorLutSliceHash: LUT size must be 2^num_masks");
  }
  for (const SliceId s : lut_) {
    if (s >= num_slices_) {
      throw std::invalid_argument("XorLutSliceHash: LUT entry out of range");
    }
  }
  for (const std::uint64_t mask : masks_) {
    if ((mask & ((std::uint64_t{1} << kCacheLineBits) - 1)) != 0) {
      throw std::invalid_argument("XorLutSliceHash: masks must not select line-offset bits");
    }
  }
}

}  // namespace cachedir
