#include "src/slice/slice_mapper.h"

namespace cachedir {

std::vector<SliceLine> LinesForSlice(const SliceHash& hash, const Mapping& mapping,
                                     SliceId slice, std::size_t max_lines) {
  std::vector<SliceLine> out;
  out.reserve(max_lines);
  for (std::size_t off = 0; off + kCacheLineSize <= mapping.size && out.size() < max_lines;
       off += kCacheLineSize) {
    const PhysAddr pa = mapping.pa + off;
    if (hash.SliceFor(pa) == slice) {
      out.push_back(SliceLine{mapping.va + off, pa});
    }
  }
  return out;
}

std::vector<SliceLine> LinesForSliceAndSet(const SliceHash& hash, const Mapping& mapping,
                                           SliceId slice, std::size_t set_index,
                                           std::size_t num_sets, std::size_t max_lines) {
  std::vector<SliceLine> out;
  out.reserve(max_lines);
  const std::size_t set_mask = num_sets - 1;
  for (std::size_t off = 0; off + kCacheLineSize <= mapping.size && out.size() < max_lines;
       off += kCacheLineSize) {
    const PhysAddr pa = mapping.pa + off;
    if (((pa >> kCacheLineBits) & set_mask) != set_index) {
      continue;
    }
    if (hash.SliceFor(pa) == slice) {
      out.push_back(SliceLine{mapping.va + off, pa});
    }
  }
  return out;
}

std::vector<SliceLine> GatherSliceLines(HugepageAllocator& backing, const SliceHash& hash,
                                        SliceId slice, std::size_t count,
                                        PageSize page_size) {
  std::vector<SliceLine> out;
  out.reserve(count);
  while (out.size() < count) {
    const Mapping m = backing.Allocate(static_cast<std::size_t>(page_size), page_size);
    for (std::size_t off = 0; off + kCacheLineSize <= m.size && out.size() < count;
         off += kCacheLineSize) {
      const PhysAddr pa = m.pa + off;
      if (hash.SliceFor(pa) == slice) {
        out.push_back(SliceLine{m.va + off, pa});
      }
    }
  }
  return out;
}

std::vector<std::size_t> SliceHistogram(const SliceHash& hash, const Mapping& mapping,
                                        std::size_t max_lines) {
  std::vector<std::size_t> histogram(hash.num_slices(), 0);
  std::size_t seen = 0;
  for (std::size_t off = 0; off + kCacheLineSize <= mapping.size; off += kCacheLineSize) {
    if (max_lines != 0 && seen >= max_lines) {
      break;
    }
    ++histogram[hash.SliceFor(mapping.pa + off)];
    ++seen;
  }
  return histogram;
}

}  // namespace cachedir
