// Slice-level cache partitioning between tenants (paper §7).
//
// The paper proposes slice isolation as a CAT alternative and suggests
// hypervisors could "allocate different LLC slices to different virtual
// machines". This manager does exactly that for the simulated socket:
// tenants register with a set of cores; the manager assigns each tenant a
// disjoint set of LLC slices (preferring slices close to the tenant's
// cores) and serves all of the tenant's allocations from those slices only.
#ifndef CACHEDIRECTOR_SRC_SLICE_ISOLATION_H_
#define CACHEDIRECTOR_SRC_SLICE_ISOLATION_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/slice/placement.h"
#include "src/slice/slice_allocator.h"

namespace cachedir {

class SliceIsolationManager {
 public:
  SliceIsolationManager(const SlicePlacement& placement, SliceAwareAllocator& allocator);

  // Registers a tenant owning `cores` and grants it `num_slices` LLC slices
  // chosen greedily by proximity to its cores from the unassigned set.
  // Returns the granted slices. Throws if the name is taken, cores overlap
  // an existing tenant, or not enough slices remain.
  std::vector<SliceId> RegisterTenant(const std::string& name,
                                      const std::vector<CoreId>& cores,
                                      std::size_t num_slices);

  // Allocates `bytes` for the tenant, spread round-robin over its slices.
  SliceBuffer Allocate(const std::string& name, std::size_t bytes);

  const std::vector<SliceId>& SlicesOf(const std::string& name) const;
  const std::vector<CoreId>& CoresOf(const std::string& name) const;

  // Slices not granted to any tenant (usable as shared/best-effort space).
  std::vector<SliceId> UnassignedSlices() const;

  std::size_t num_tenants() const { return tenants_.size(); }

 private:
  struct Tenant {
    std::vector<CoreId> cores;
    std::vector<SliceId> slices;
    std::size_t next_slice_cursor = 0;
  };

  const Tenant& Find(const std::string& name) const;

  const SlicePlacement* placement_;
  SliceAwareAllocator* allocator_;
  std::map<std::string, Tenant> tenants_;
  std::vector<bool> slice_taken_;
  std::vector<bool> core_taken_;
};

}  // namespace cachedir

#endif  // CACHEDIRECTOR_SRC_SLICE_ISOLATION_H_
