// Slice placement policy: which LLC slice(s) should a core's hot data live in?
//
// On the ring (Haswell) each core has one best slice (its own stop); on the
// mesh (Skylake, 18 slices / 8 cores) each core has a primary slice and one
// or two secondaries (paper Table 4). The ranking is derived from measured
// (here: modelled) LLC hit latencies, exactly as an application using the
// library would derive it from the §2.2 timing experiment.
#ifndef CACHEDIRECTOR_SRC_SLICE_PLACEMENT_H_
#define CACHEDIRECTOR_SRC_SLICE_PLACEMENT_H_

#include <vector>

#include "src/cache/hierarchy.h"

namespace cachedir {

class SlicePlacement {
 public:
  explicit SlicePlacement(const MemoryHierarchy& hierarchy);

  std::size_t num_cores() const { return latency_.size(); }
  std::size_t num_slices() const { return latency_.empty() ? 0 : latency_[0].size(); }

  // LLC hit latency from `core` to `slice` (cycles).
  Cycles Latency(CoreId core, SliceId slice) const { return latency_[core][slice]; }

  // The single cheapest slice for `core` (lowest id wins ties).
  SliceId ClosestSlice(CoreId core) const;

  // All slices sorted by ascending latency (stable: ties by slice id).
  std::vector<SliceId> RankedSlices(CoreId core) const;

  // Slices whose latency equals the minimum ("primary") and those within
  // `tolerance` cycles of it ("secondary") — the Table 4 classification.
  std::vector<SliceId> PrimarySlices(CoreId core) const;
  std::vector<SliceId> SecondarySlices(CoreId core, Cycles tolerance = 4) const;

  // Best compromise slice for data shared by several cores: minimises the
  // maximum latency over the group (ties: minimise the sum, then id).
  SliceId CompromiseSlice(const std::vector<CoreId>& cores) const;

 private:
  std::vector<std::vector<Cycles>> latency_;  // [core][slice]
};

}  // namespace cachedir

#endif  // CACHEDIRECTOR_SRC_SLICE_PLACEMENT_H_
