#include "src/slice/placement.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace cachedir {

SlicePlacement::SlicePlacement(const MemoryHierarchy& hierarchy) {
  const std::size_t cores = hierarchy.spec().num_cores;
  const std::size_t slices = hierarchy.spec().num_slices;
  latency_.assign(cores, std::vector<Cycles>(slices, 0));
  for (CoreId c = 0; c < cores; ++c) {
    for (SliceId s = 0; s < slices; ++s) {
      latency_[c][s] = hierarchy.LlcHitLatency(c, s);
    }
  }
}

SliceId SlicePlacement::ClosestSlice(CoreId core) const {
  const auto& row = latency_[core];
  return static_cast<SliceId>(std::min_element(row.begin(), row.end()) - row.begin());
}

std::vector<SliceId> SlicePlacement::RankedSlices(CoreId core) const {
  std::vector<SliceId> order(num_slices());
  std::iota(order.begin(), order.end(), 0);
  const auto& row = latency_[core];
  std::stable_sort(order.begin(), order.end(),
                   [&row](SliceId a, SliceId b) { return row[a] < row[b]; });
  return order;
}

std::vector<SliceId> SlicePlacement::PrimarySlices(CoreId core) const {
  const auto& row = latency_[core];
  const Cycles best = *std::min_element(row.begin(), row.end());
  std::vector<SliceId> out;
  for (SliceId s = 0; s < row.size(); ++s) {
    if (row[s] == best) {
      out.push_back(s);
    }
  }
  return out;
}

std::vector<SliceId> SlicePlacement::SecondarySlices(CoreId core, Cycles tolerance) const {
  const auto& row = latency_[core];
  const Cycles best = *std::min_element(row.begin(), row.end());
  std::vector<SliceId> out;
  for (SliceId s = 0; s < row.size(); ++s) {
    if (row[s] > best && row[s] <= best + tolerance) {
      out.push_back(s);
    }
  }
  return out;
}

SliceId SlicePlacement::CompromiseSlice(const std::vector<CoreId>& cores) const {
  if (cores.empty()) {
    throw std::invalid_argument("SlicePlacement::CompromiseSlice: empty core group");
  }
  SliceId best_slice = 0;
  Cycles best_max = std::numeric_limits<Cycles>::max();
  Cycles best_sum = std::numeric_limits<Cycles>::max();
  for (SliceId s = 0; s < num_slices(); ++s) {
    Cycles max_lat = 0;
    Cycles sum = 0;
    for (const CoreId c : cores) {
      max_lat = std::max(max_lat, latency_[c][s]);
      sum += latency_[c][s];
    }
    if (max_lat < best_max || (max_lat == best_max && sum < best_sum)) {
      best_max = max_lat;
      best_sum = sum;
      best_slice = s;
    }
  }
  return best_slice;
}

}  // namespace cachedir
