// Helpers for locating cache lines with specific (slice, set) placement
// inside a physically-contiguous mapping — the building block of the paper's
// §2.2 access-time experiment, which needs 20 lines in one particular set of
// one particular slice.
#ifndef CACHEDIRECTOR_SRC_SLICE_SLICE_MAPPER_H_
#define CACHEDIRECTOR_SRC_SLICE_SLICE_MAPPER_H_

#include <cstddef>
#include <vector>

#include "src/hash/slice_hash.h"
#include "src/mem/hugepage.h"
#include "src/slice/buffers.h"

namespace cachedir {

// First `max_lines` lines of `mapping` that hash to `slice`, in address order.
std::vector<SliceLine> LinesForSlice(const SliceHash& hash, const Mapping& mapping,
                                     SliceId slice, std::size_t max_lines);

// Lines that hash to `slice` AND fall into LLC set `set_index` (set selected
// by address bits [6, 6+log2(num_sets))). Used to build same-set eviction
// groups.
std::vector<SliceLine> LinesForSliceAndSet(const SliceHash& hash, const Mapping& mapping,
                                           SliceId slice, std::size_t set_index,
                                           std::size_t num_sets, std::size_t max_lines);

// Distribution of the mapping's lines over slices (histogram; uniformity
// checks and the §8 slice-imbalance discussion).
std::vector<std::size_t> SliceHistogram(const SliceHash& hash, const Mapping& mapping,
                                        std::size_t max_lines = 0);

// Allocates hugepages from `backing` until `count` lines hashing to `slice`
// have been gathered (streaming; no per-slice pooling of the rejects). Used
// by bulk consumers like the slice-aware KVS, where pooling every other
// slice's lines would waste host memory. Throws std::bad_alloc when the
// simulated zone is exhausted first.
std::vector<SliceLine> GatherSliceLines(HugepageAllocator& backing, const SliceHash& hash,
                                        SliceId slice, std::size_t count,
                                        PageSize page_size = PageSize::k1G);

}  // namespace cachedir

#endif  // CACHEDIRECTOR_SRC_SLICE_SLICE_MAPPER_H_
