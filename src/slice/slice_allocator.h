// The slice-aware memory manager — the paper's core library (§3).
//
// Backed by 1 GB hugepages: every allocated hugepage is scanned once with the
// Complex Addressing hash and its cache lines are binned into per-slice free
// pools. AllocateLines() then serves any slice from its pool, growing by
// another hugepage when a pool runs dry. The cost of slice-awareness —
// roughly (num_slices - 1)/num_slices of each page is left for *other*
// slices, i.e. memory fragmentation rather than waste — is visible through
// the accounting queries, matching the paper's §7/§8 discussion.
#ifndef CACHEDIRECTOR_SRC_SLICE_SLICE_ALLOCATOR_H_
#define CACHEDIRECTOR_SRC_SLICE_SLICE_ALLOCATOR_H_

#include <deque>
#include <memory>
#include <vector>

#include "src/hash/slice_hash.h"
#include "src/mem/hugepage.h"
#include "src/slice/buffers.h"

namespace cachedir {

class SliceAwareAllocator {
 public:
  struct Params {
    PageSize page_size = PageSize::k1G;
    // Lines scanned per refill; a full 1 GB page is 16 Mi lines, which is
    // more than any experiment needs, so refills scan in chunks.
    std::size_t scan_chunk_lines = 1 << 20;
  };

  SliceAwareAllocator(HugepageAllocator& backing, std::shared_ptr<const SliceHash> hash);
  SliceAwareAllocator(HugepageAllocator& backing, std::shared_ptr<const SliceHash> hash,
                      const Params& params);

  // `count` lines, every one mapping to `slice`. Throws std::bad_alloc if
  // backing memory is exhausted.
  SliceBuffer AllocateLines(SliceId slice, std::size_t count);

  // `bytes` rounded up to whole lines, all mapping to `slice`.
  SliceBuffer AllocateBytes(SliceId slice, std::size_t bytes);

  // Lines currently sitting in free pools (fragmentation accounting).
  std::size_t FreeLines(SliceId slice) const;
  std::size_t TotalFreeLines() const;

  // Raw bytes obtained from the backing allocator so far.
  std::size_t bytes_reserved() const { return bytes_reserved_; }

  const SliceHash& hash() const { return *hash_; }

 private:
  void Refill();

  HugepageAllocator& backing_;
  std::shared_ptr<const SliceHash> hash_;
  Params params_;
  std::vector<std::deque<SliceLine>> pools_;
  // Scan cursor into the most recent hugepage.
  Mapping current_{};
  std::size_t scan_offset_ = 0;
  std::size_t bytes_reserved_ = 0;
};

}  // namespace cachedir

#endif  // CACHEDIRECTOR_SRC_SLICE_SLICE_ALLOCATOR_H_
