#include "src/slice/hot_migrator.h"

#include <algorithm>
#include <stdexcept>

namespace cachedir {
namespace {

constexpr std::uint64_t kNoOwner = ~std::uint64_t{0};

ContiguousBuffer MakeColdStore(HugepageAllocator& backing, std::size_t num_objects) {
  const std::size_t bytes = num_objects * kCacheLineSize;
  const PageSize page = bytes > (1u << 21) ? PageSize::k1G : PageSize::k2M;
  return ContiguousBuffer(backing.Allocate(bytes, page).pa, bytes);
}

}  // namespace

HotDataMigrator::HotDataMigrator(MemoryHierarchy& hierarchy, PhysicalMemory& memory,
                                 HugepageAllocator& backing,
                                 SliceAwareAllocator& slice_allocator, const Params& params)
    : hierarchy_(hierarchy),
      memory_(memory),
      params_(params),
      cold_store_(MakeColdStore(backing, params.num_objects)),
      hot_store_(slice_allocator.AllocateLines(params.target_slice, params.hot_capacity)),
      epoch_counts_(params.num_objects, 0),
      hot_slot_owner_(params.hot_capacity, kNoOwner) {
  if (params_.num_objects == 0 || params_.hot_capacity == 0) {
    throw std::invalid_argument("HotDataMigrator: need objects and hot capacity");
  }
  if (params_.hot_capacity > params_.num_objects) {
    throw std::invalid_argument("HotDataMigrator: hot capacity exceeds object count");
  }
  if (params_.epoch_accesses == 0) {
    throw std::invalid_argument("HotDataMigrator: epoch must be positive");
  }
}

PhysAddr HotDataMigrator::HomeOf(std::uint64_t id) const {
  const auto it = promoted_.find(id);
  if (it != promoted_.end()) {
    return hot_store_.line(it->second).pa;
  }
  return cold_store_.PaForOffset(id * kCacheLineSize);
}

Cycles HotDataMigrator::CopyObject(CoreId core, PhysAddr from, PhysAddr to) {
  std::uint8_t buf[kCacheLineSize];
  memory_.Read(from, buf);
  memory_.Write(to, buf);
  if (!params_.charge_migration) {
    return 0;
  }
  return hierarchy_.Read(core, from).cycles + hierarchy_.Write(core, to).cycles;
}

Cycles HotDataMigrator::RunEpochMigration(CoreId core) {
  // Rank this epoch's objects by access count.
  std::vector<std::uint64_t> order;
  order.reserve(256);
  for (std::uint64_t id = 0; id < epoch_counts_.size(); ++id) {
    if (epoch_counts_[id] > 0) {
      order.push_back(id);
    }
  }
  const std::size_t want = std::min(params_.hot_capacity, order.size());
  std::partial_sort(order.begin(), order.begin() + want, order.end(),
                    [this](std::uint64_t a, std::uint64_t b) {
                      return epoch_counts_[a] > epoch_counts_[b];
                    });
  order.resize(want);

  Cycles cycles = 0;
  // Demote promoted objects that fell out of the new hot set.
  std::vector<bool> keep(hot_slot_owner_.size(), false);
  for (const std::uint64_t id : order) {
    const auto it = promoted_.find(id);
    if (it != promoted_.end()) {
      keep[it->second] = true;
    }
  }
  for (std::size_t slot = 0; slot < hot_slot_owner_.size(); ++slot) {
    if (hot_slot_owner_[slot] != kNoOwner && !keep[slot]) {
      const std::uint64_t id = hot_slot_owner_[slot];
      cycles += CopyObject(core, hot_store_.line(slot).pa,
                           cold_store_.PaForOffset(id * kCacheLineSize));
      promoted_.erase(id);
      hot_slot_owner_[slot] = kNoOwner;
      ++migrations_;
    }
  }
  // Promote new hot objects into free slots.
  std::size_t next_free = 0;
  for (const std::uint64_t id : order) {
    if (promoted_.count(id) != 0) {
      continue;
    }
    while (next_free < hot_slot_owner_.size() && hot_slot_owner_[next_free] != kNoOwner) {
      ++next_free;
    }
    if (next_free == hot_slot_owner_.size()) {
      break;
    }
    cycles += CopyObject(core, cold_store_.PaForOffset(id * kCacheLineSize),
                         hot_store_.line(next_free).pa);
    promoted_.emplace(id, next_free);
    hot_slot_owner_[next_free] = id;
    ++migrations_;
  }

  std::fill(epoch_counts_.begin(), epoch_counts_.end(), 0);
  return cycles;
}

Cycles HotDataMigrator::Access(CoreId core, std::uint64_t id, bool write) {
  if (id >= epoch_counts_.size()) {
    throw std::out_of_range("HotDataMigrator::Access: object id out of range");
  }
  ++epoch_counts_[id];
  const PhysAddr pa = HomeOf(id);
  Cycles cycles = write ? hierarchy_.Write(core, pa).cycles : hierarchy_.Read(core, pa).cycles;
  if (++accesses_in_epoch_ >= params_.epoch_accesses) {
    accesses_in_epoch_ = 0;
    cycles += RunEpochMigration(core);
  }
  return cycles;
}

}  // namespace cachedir
