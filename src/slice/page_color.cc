#include "src/slice/page_color.h"

#include <stdexcept>

namespace cachedir {

namespace {
constexpr std::size_t kPage = 4096;
}  // namespace

PageColorAllocator::PageColorAllocator(HugepageAllocator& backing,
                                       std::uint32_t set_index_bits)
    : backing_(backing) {
  if (set_index_bits <= 6 || set_index_bits > 20) {
    throw std::invalid_argument("PageColorAllocator: set_index_bits must be in 7..20");
  }
  // Bits [12, 6 + set_index_bits) are both page-number and set-index bits.
  num_colors_ = std::uint32_t{1} << (6 + set_index_bits - 12);
  pools_.resize(num_colors_);
}

void PageColorAllocator::Refill() {
  if (current_.size == 0 || scan_offset_ >= current_.size) {
    current_ = backing_.Allocate(std::size_t{2} << 20, PageSize::k2M);
    scan_offset_ = 0;
  }
  const std::size_t end = std::min(current_.size, scan_offset_ + (std::size_t{1} << 20));
  for (; scan_offset_ < end; scan_offset_ += kPage) {
    Mapping page;
    page.va = current_.va + scan_offset_;
    page.pa = current_.pa + scan_offset_;
    page.size = kPage;
    page.page_size = PageSize::k4K;
    pools_[ColorOf(page.pa)].push_back(page);
  }
}

SliceBuffer PageColorAllocator::AllocateBytes(std::uint32_t color, std::size_t bytes) {
  if (color >= num_colors_) {
    throw std::invalid_argument("PageColorAllocator: color out of range");
  }
  const std::size_t lines_needed = (bytes + kCacheLineSize - 1) / kCacheLineSize;
  std::vector<SliceLine> lines;
  lines.reserve(lines_needed);
  while (lines.size() < lines_needed) {
    auto& pool = pools_[color];
    if (pool.empty()) {
      Refill();
      continue;
    }
    const Mapping page = pool.back();
    pool.pop_back();
    for (std::size_t off = 0; off < kPage && lines.size() < lines_needed;
         off += kCacheLineSize) {
      lines.push_back(SliceLine{page.va + off, page.pa + off});
    }
  }
  return SliceBuffer(std::move(lines));
}

}  // namespace cachedir
