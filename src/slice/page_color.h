// Classic page-coloring allocation — the pre-Complex-Addressing partitioning
// technique the paper's related work discusses (§9: traditional coloring
// "will not be as effective ... on newer architectures, as the mapping
// between LLC slices and physical addresses changes at a finer granularity
// than 4k-pages").
//
// A page's color is the overlap of its physical page number with the cache
// set index; allocating disjoint colors to different applications used to
// partition a physically-indexed cache. This allocator implements that
// faithfully so benches can show WHY it stopped working on sliced LLCs:
// within any 4 kB page, Complex Addressing scatters the 64 lines over all
// slices, so colors no longer confine anything slice-wise.
#ifndef CACHEDIRECTOR_SRC_SLICE_PAGE_COLOR_H_
#define CACHEDIRECTOR_SRC_SLICE_PAGE_COLOR_H_

#include <cstdint>
#include <vector>

#include "src/mem/hugepage.h"
#include "src/slice/buffers.h"

namespace cachedir {

class PageColorAllocator {
 public:
  // `set_index_bits` is log2(sets) of the cache being partitioned (for an
  // LLC slice with 2048 sets: 11). Colors are the set-index bits above the
  // page offset: bits [12, 6 + set_index_bits).
  PageColorAllocator(HugepageAllocator& backing, std::uint32_t set_index_bits);

  std::uint32_t num_colors() const { return num_colors_; }

  // Color of the 4 kB page containing `pa`.
  std::uint32_t ColorOf(PhysAddr pa) const {
    return static_cast<std::uint32_t>((pa >> 12) & (num_colors_ - 1));
  }

  // Allocates `bytes` using only 4 kB pages of the given color. The result
  // is page-granular and non-contiguous (like a recolored page table).
  SliceBuffer AllocateBytes(std::uint32_t color, std::size_t bytes);

 private:
  void Refill();

  HugepageAllocator& backing_;
  std::uint32_t num_colors_;
  std::vector<std::vector<Mapping>> pools_;  // 4 kB page descriptors by color
  Mapping current_{};
  std::size_t scan_offset_ = 0;
};

}  // namespace cachedir

#endif  // CACHEDIRECTOR_SRC_SLICE_PAGE_COLOR_H_
