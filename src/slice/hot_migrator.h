// Hot-data monitoring and migration (paper §8):
//
//   "applications which only use slice-aware memory management for the
//    'hot' data due to their very large working set should employ
//    monitoring/migration techniques to deal with variability of hot data."
//
// HotDataMigrator fronts an object store whose objects live in ordinary
// (contiguous) memory; it counts accesses per object in epochs, and at each
// epoch boundary promotes the hottest objects into cache lines of the
// consuming core's slice (copying the bytes and switching an indirection
// entry) while demoting objects that went cold. Applications address
// objects by id; the migrator resolves the current physical home.
#ifndef CACHEDIRECTOR_SRC_SLICE_HOT_MIGRATOR_H_
#define CACHEDIRECTOR_SRC_SLICE_HOT_MIGRATOR_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/cache/hierarchy.h"
#include "src/mem/physical_memory.h"
#include "src/slice/buffers.h"
#include "src/slice/slice_allocator.h"

namespace cachedir {

class HotDataMigrator {
 public:
  struct Params {
    std::size_t num_objects = 0;        // object id space; each one line
    SliceId target_slice = 0;           // where hot objects are promoted
    std::size_t hot_capacity = 1024;    // max promoted objects (slice lines)
    std::uint64_t epoch_accesses = 10000;  // accesses between migrations
    // Charge the copy cost of each migration to the core (a real system
    // pays it; set false to model an idle-time/DMA-engine migrator).
    bool charge_migration = true;
  };

  HotDataMigrator(MemoryHierarchy& hierarchy, PhysicalMemory& memory,
                  HugepageAllocator& backing, SliceAwareAllocator& slice_allocator,
                  const Params& params);

  // Access object `id` on `core` (read or write); returns cycles including
  // any epoch migration work triggered by this access.
  Cycles Access(CoreId core, std::uint64_t id, bool write);

  // Current physical home of the object (for tests).
  PhysAddr HomeOf(std::uint64_t id) const;
  bool IsPromoted(std::uint64_t id) const { return promoted_.count(id) != 0; }

  std::uint64_t migrations() const { return migrations_; }
  std::size_t promoted_count() const { return promoted_.size(); }

 private:
  Cycles RunEpochMigration(CoreId core);
  Cycles CopyObject(CoreId core, PhysAddr from, PhysAddr to);

  MemoryHierarchy& hierarchy_;
  PhysicalMemory& memory_;
  Params params_;

  ContiguousBuffer cold_store_;
  SliceBuffer hot_store_;
  std::vector<std::uint32_t> epoch_counts_;      // per object, this epoch
  std::unordered_map<std::uint64_t, std::size_t> promoted_;  // id -> hot slot
  std::vector<std::uint64_t> hot_slot_owner_;    // slot -> id (or ~0)
  std::uint64_t accesses_in_epoch_ = 0;
  std::uint64_t migrations_ = 0;
};

}  // namespace cachedir

#endif  // CACHEDIRECTOR_SRC_SLICE_HOT_MIGRATOR_H_
