#include "src/slice/isolation.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace cachedir {

SliceIsolationManager::SliceIsolationManager(const SlicePlacement& placement,
                                             SliceAwareAllocator& allocator)
    : placement_(&placement),
      allocator_(&allocator),
      slice_taken_(placement.num_slices(), false),
      core_taken_(placement.num_cores(), false) {}

std::vector<SliceId> SliceIsolationManager::RegisterTenant(const std::string& name,
                                                           const std::vector<CoreId>& cores,
                                                           std::size_t num_slices) {
  if (tenants_.count(name) != 0) {
    throw std::invalid_argument("SliceIsolationManager: tenant name already registered");
  }
  if (cores.empty() || num_slices == 0) {
    throw std::invalid_argument("SliceIsolationManager: need at least one core and slice");
  }
  for (const CoreId c : cores) {
    if (c >= core_taken_.size()) {
      throw std::invalid_argument("SliceIsolationManager: core id out of range");
    }
    if (core_taken_[c]) {
      throw std::invalid_argument("SliceIsolationManager: core already owned by a tenant");
    }
  }
  const std::size_t free_slices =
      std::count(slice_taken_.begin(), slice_taken_.end(), false);
  if (num_slices > free_slices) {
    throw std::invalid_argument("SliceIsolationManager: not enough free slices");
  }

  // Greedy: repeatedly grant the free slice with the lowest worst-case
  // latency over the tenant's cores.
  Tenant tenant;
  tenant.cores = cores;
  for (std::size_t granted = 0; granted < num_slices; ++granted) {
    SliceId best_slice = 0;
    Cycles best_cost = std::numeric_limits<Cycles>::max();
    for (SliceId s = 0; s < slice_taken_.size(); ++s) {
      if (slice_taken_[s]) {
        continue;
      }
      Cycles worst = 0;
      for (const CoreId c : cores) {
        worst = std::max(worst, placement_->Latency(c, s));
      }
      if (worst < best_cost) {
        best_cost = worst;
        best_slice = s;
      }
    }
    slice_taken_[best_slice] = true;
    tenant.slices.push_back(best_slice);
  }
  for (const CoreId c : cores) {
    core_taken_[c] = true;
  }
  const auto [it, inserted] = tenants_.emplace(name, std::move(tenant));
  (void)inserted;
  return it->second.slices;
}

SliceBuffer SliceIsolationManager::Allocate(const std::string& name, std::size_t bytes) {
  const auto it = tenants_.find(name);
  if (it == tenants_.end()) {
    throw std::invalid_argument("SliceIsolationManager: unknown tenant");
  }
  Tenant& tenant = it->second;
  const std::size_t lines = (bytes + kCacheLineSize - 1) / kCacheLineSize;

  // Round-robin across the tenant's slices, interleaving lines so the load
  // (and the LLC footprint) spreads evenly over the granted slices.
  std::vector<std::vector<SliceLine>> per_slice(tenant.slices.size());
  const std::size_t base = lines / tenant.slices.size();
  const std::size_t extra = lines % tenant.slices.size();
  for (std::size_t i = 0; i < tenant.slices.size(); ++i) {
    const std::size_t want = base + (i < extra ? 1 : 0);
    if (want == 0) {
      continue;
    }
    const SliceBuffer chunk = allocator_->AllocateLines(tenant.slices[i], want);
    per_slice[i] = chunk.lines();
  }
  std::vector<SliceLine> interleaved;
  interleaved.reserve(lines);
  for (std::size_t round = 0; interleaved.size() < lines; ++round) {
    for (std::size_t i = 0; i < per_slice.size(); ++i) {
      if (round < per_slice[i].size()) {
        interleaved.push_back(per_slice[i][round]);
      }
    }
  }
  // Rotate the starting slice so successive allocations balance.
  tenant.next_slice_cursor = (tenant.next_slice_cursor + 1) % tenant.slices.size();
  return SliceBuffer(std::move(interleaved));
}

const SliceIsolationManager::Tenant& SliceIsolationManager::Find(
    const std::string& name) const {
  const auto it = tenants_.find(name);
  if (it == tenants_.end()) {
    throw std::invalid_argument("SliceIsolationManager: unknown tenant");
  }
  return it->second;
}

const std::vector<SliceId>& SliceIsolationManager::SlicesOf(const std::string& name) const {
  return Find(name).slices;
}

const std::vector<CoreId>& SliceIsolationManager::CoresOf(const std::string& name) const {
  return Find(name).cores;
}

std::vector<SliceId> SliceIsolationManager::UnassignedSlices() const {
  std::vector<SliceId> out;
  for (SliceId s = 0; s < slice_taken_.size(); ++s) {
    if (!slice_taken_[s]) {
      out.push_back(s);
    }
  }
  return out;
}

}  // namespace cachedir
