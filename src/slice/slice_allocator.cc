#include "src/slice/slice_allocator.h"

#include <new>
#include <stdexcept>

namespace cachedir {

SliceAwareAllocator::SliceAwareAllocator(HugepageAllocator& backing,
                                         std::shared_ptr<const SliceHash> hash)
    : SliceAwareAllocator(backing, std::move(hash), Params{}) {}

SliceAwareAllocator::SliceAwareAllocator(HugepageAllocator& backing,
                                         std::shared_ptr<const SliceHash> hash,
                                         const Params& params)
    : backing_(backing), hash_(std::move(hash)), params_(params),
      pools_(hash_->num_slices()) {
  if (params_.scan_chunk_lines == 0) {
    throw std::invalid_argument("SliceAwareAllocator: scan_chunk_lines must be positive");
  }
}

void SliceAwareAllocator::Refill() {
  if (current_.size == 0 || scan_offset_ >= current_.size) {
    current_ = backing_.Allocate(static_cast<std::size_t>(params_.page_size),
                                 params_.page_size);
    bytes_reserved_ += current_.size;
    scan_offset_ = 0;
  }
  const std::size_t end =
      std::min(current_.size, scan_offset_ + params_.scan_chunk_lines * kCacheLineSize);
  for (; scan_offset_ < end; scan_offset_ += kCacheLineSize) {
    const PhysAddr pa = current_.pa + scan_offset_;
    const SliceId s = hash_->SliceFor(pa);
    pools_[s].push_back(SliceLine{current_.va + scan_offset_, pa});
  }
}

SliceBuffer SliceAwareAllocator::AllocateLines(SliceId slice, std::size_t count) {
  if (slice >= pools_.size()) {
    throw std::invalid_argument("SliceAwareAllocator: slice id out of range");
  }
  std::vector<SliceLine> lines;
  lines.reserve(count);
  while (lines.size() < count) {
    auto& pool = pools_[slice];
    if (pool.empty()) {
      Refill();  // throws std::bad_alloc when backing memory is gone
      continue;
    }
    lines.push_back(pool.front());
    pool.pop_front();
  }
  return SliceBuffer(std::move(lines));
}

SliceBuffer SliceAwareAllocator::AllocateBytes(SliceId slice, std::size_t bytes) {
  return AllocateLines(slice, (bytes + kCacheLineSize - 1) / kCacheLineSize);
}

std::size_t SliceAwareAllocator::FreeLines(SliceId slice) const {
  return pools_[slice].size();
}

std::size_t SliceAwareAllocator::TotalFreeLines() const {
  std::size_t total = 0;
  for (const auto& pool : pools_) {
    total += pool.size();
  }
  return total;
}

}  // namespace cachedir
