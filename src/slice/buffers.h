// Buffer abstractions over simulated memory.
//
// Slice-aware allocation yields *non-contiguous* physical lines that all hash
// to the chosen slice(s); normal allocation yields one contiguous region.
// Applications (KVS, the array benches) address both through the same
// logical-offset interface so the two layouts are drop-in interchangeable.
#ifndef CACHEDIRECTOR_SRC_SLICE_BUFFERS_H_
#define CACHEDIRECTOR_SRC_SLICE_BUFFERS_H_

#include <cstddef>
#include <vector>

#include "src/mem/hugepage.h"
#include "src/sim/types.h"

namespace cachedir {

// One usable cache line handed out by the allocator.
struct SliceLine {
  VirtAddr va = 0;
  PhysAddr pa = 0;
};

// Logical byte-addressable buffer; implementations map logical offsets to
// simulated physical addresses.
class MemoryBuffer {
 public:
  MemoryBuffer() = default;
  virtual ~MemoryBuffer() = default;

  virtual std::size_t size_bytes() const = 0;

  // Physical address backing logical offset `off` (off < size_bytes()).
  virtual PhysAddr PaForOffset(std::size_t off) const = 0;

 protected:
  // Protected copy/move: buffers are passed around by value as concrete
  // types (SliceBuffer, ContiguousBuffer); copying through the base would
  // slice them.
  MemoryBuffer(const MemoryBuffer&) = default;
  MemoryBuffer& operator=(const MemoryBuffer&) = default;
};

// Contiguous buffer: ordinary allocation from a hugepage. Deliberately
// takes an explicit size — mappings are page-rounded, and a 1.375 MB
// working set backed by a 1 GB hugepage must not become a 1 GB sweep.
class ContiguousBuffer final : public MemoryBuffer {
 public:
  ContiguousBuffer(PhysAddr base, std::size_t size) : base_(base), size_(size) {}

  std::size_t size_bytes() const override { return size_; }
  PhysAddr PaForOffset(std::size_t off) const override { return base_ + off; }

 private:
  PhysAddr base_;
  std::size_t size_;
};

// Slice-aware buffer: an ordered list of 64 B lines, all mapped to the
// desired slice(s); logical offsets stride across them.
class SliceBuffer final : public MemoryBuffer {
 public:
  SliceBuffer() = default;
  explicit SliceBuffer(std::vector<SliceLine> lines) : lines_(std::move(lines)) {}

  std::size_t size_bytes() const override { return lines_.size() * kCacheLineSize; }

  PhysAddr PaForOffset(std::size_t off) const override {
    return lines_[off / kCacheLineSize].pa + off % kCacheLineSize;
  }

  std::size_t num_lines() const { return lines_.size(); }
  const SliceLine& line(std::size_t i) const { return lines_[i]; }
  const std::vector<SliceLine>& lines() const { return lines_; }

 private:
  std::vector<SliceLine> lines_;
};

}  // namespace cachedir

#endif  // CACHEDIRECTOR_SRC_SLICE_BUFFERS_H_
