// The full simulated memory hierarchy of one socket: per-core L1d and L2,
// a shared sliced LLC, and DRAM — with cycle-cost accounting per access.
//
// Two organisations are modelled, selected by MachineSpec::inclusion:
//  * kInclusive (Haswell): LLC is inclusive of all L1/L2; demand fills
//    allocate at every level; an LLC eviction back-invalidates the core
//    caches.
//  * kVictim (Skylake-SP): demand fills go to L2/L1 only; lines enter the
//    LLC when evicted from an L2; an LLC hit moves the line (back) into L2
//    — exclusive behaviour, so L2 and LLC capacities add. (The paper's §6
//    notes a line *can* remain in the LLC on Skylake; we model the
//    capacity-exclusive common case, which the paper's own Fig. 17 working
//    set sizing — three quarters of a slice plus L2 — relies on.)
//
// Stores use write-back + write-allocate semantics: a store that hits L1
// retires in ~1 cycle regardless of where the line lives (the paper's flat
// Fig. 5b); a store miss pays the read-for-ownership latency of wherever the
// line is found, and dirty L2 victims pay a write-back busy cost to their
// destination slice — which is how slice distance becomes visible to
// sustained write workloads (Fig. 6b).
//
// DMA traffic models DDIO: writes allocate directly in the LLC but only
// within the DDIO way partition; reads are served from LLC or DRAM without
// allocating.
#ifndef CACHEDIRECTOR_SRC_CACHE_HIERARCHY_H_
#define CACHEDIRECTOR_SRC_CACHE_HIERARCHY_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/cache/line_directory.h"
#include "src/cache/set_assoc_cache.h"
#include "src/cache/sliced_llc.h"
#include "src/hash/slice_hash.h"
#include "src/sim/machine.h"

namespace cachedir {

enum class ServedBy {
  kL1,
  kL2,
  kLlc,
  kDram,
  kRemoteCache,  // cache-to-cache forward from another core's Modified copy
};

struct AccessResult {
  Cycles cycles = 0;
  ServedBy level = ServedBy::kL1;
  SliceId slice = 0;  // meaningful when the access reached the LLC
};

struct HierarchyStats {
  std::uint64_t l1_hits = 0;
  std::uint64_t l1_misses = 0;
  std::uint64_t l2_hits = 0;
  std::uint64_t l2_misses = 0;
  std::uint64_t llc_hits = 0;
  std::uint64_t llc_misses = 0;
  std::uint64_t dirty_writebacks = 0;
  std::uint64_t dma_line_writes = 0;
  std::uint64_t dma_line_reads = 0;
  std::uint64_t prefetches_issued = 0;
  std::uint64_t prefetch_hits = 0;  // demand accesses served by a prefetch
  std::uint64_t remote_forwards = 0;   // reads served from another core's M copy
  std::uint64_t invalidations_sent = 0;  // copies killed by stores (coherence)
  std::uint64_t upgrades = 0;            // stores that hit Shared lines
};

class MemoryHierarchy {
 public:
  // `hash` routes lines to LLC slices; its slice count must match the spec.
  MemoryHierarchy(const MachineSpec& spec, std::shared_ptr<const SliceHash> hash,
                  std::uint64_t seed = 1);

  const MachineSpec& spec() const { return spec_; }

  AccessResult Read(CoreId core, PhysAddr addr);
  AccessResult Write(CoreId core, PhysAddr addr);

  // DDIO write of one cache line by the NIC. Returns the modelled LLC-side
  // occupancy cost (charged to the NIC's DMA engine, never to a core).
  Cycles DmaWriteLine(PhysAddr addr);
  // DDIO write of an arbitrary byte range (every overlapped line).
  Cycles DmaWrite(PhysAddr addr, std::size_t bytes);

  // NIC TX read; served from LLC or DRAM, never allocates.
  Cycles DmaReadLine(PhysAddr addr);
  Cycles DmaRead(PhysAddr addr, std::size_t bytes);

  // clflush: removes the line from every cache (contents reach DRAM).
  void FlushLine(PhysAddr addr);
  // Flushes everything (wbinvd-style; used between experiment repetitions).
  void FlushAll();

  SlicedLlc& llc() { return llc_; }
  const SlicedLlc& llc() const { return llc_; }

  // Read-only views of the private caches and the coherence directory, for
  // placement logic, tests and the directory/tag-array cross-check.
  const SetAssocCache& l1_cache(CoreId core) const { return l1_[core]; }
  const SetAssocCache& l2_cache(CoreId core) const { return l2_[core]; }
  const LineDirectory& directory() const { return directory_; }

  const HierarchyStats& stats() const { return stats_; }
  void ResetStats() { stats_ = HierarchyStats{}; }

  // NUCA penalty between a core and a slice (exposed for placement logic).
  Cycles SlicePenalty(CoreId core, SliceId slice) const {
    return spec_.interconnect->SlicePenalty(core, slice);
  }

  Cycles LlcHitLatency(CoreId core, SliceId slice) const {
    return spec_.latency.llc_base + SlicePenalty(core, slice);
  }

 private:
  AccessResult Access(CoreId core, PhysAddr addr, bool is_write);

  // Fills `line` into core's L1, propagating any displaced dirty victim.
  void FillL1(CoreId core, PhysAddr line, bool dirty);
  // Fills `line` into core's L2; may trigger an L2 victim write-back whose
  // cost is added to *extra_cycles (dirty victims only).
  void FillL2(CoreId core, PhysAddr line, bool dirty, Cycles* extra_cycles);
  // Inclusive mode: LLC eviction invalidates the line in every core cache.
  void BackInvalidate(PhysAddr line);
  void HandleLlcEviction(const std::optional<EvictedLine>& evicted);
  // Background next-line prefetch into L2 (no cycles charged to the core).
  void PrefetchNextLine(CoreId core, PhysAddr line);

  // Coherence (write-invalidate, MESI-flavoured). All four helpers are O(1)
  // directory lookups (plus O(sharers) tag updates for the mutating two) —
  // they never scan the other cores' tag arrays.
  // True if any core other than `core` holds the line in L1 or L2.
  bool HeldElsewhere(CoreId core, PhysAddr line) const;
  // True if any core other than `core` holds the line dirty (Modified).
  bool DirtyElsewhere(CoreId core, PhysAddr line) const;
  // Invalidates the line in every sharer but `core`; returns true if any
  // displaced copy was dirty (the dirt transfers to the requester).
  bool InvalidateElsewhere(CoreId core, PhysAddr line);
  // Downgrades remote Modified copies to clean Shared (read snooping).
  void DowngradeElsewhere(CoreId core, PhysAddr line);

  // Directory maintenance at the tag-array mutation points. The directory
  // must mirror the tag arrays exactly; `directory_property_test` enforces
  // the invariant against brute-force scans.
  void DirRemoveL1(CoreId core, PhysAddr line);
  void DirRemoveL2(CoreId core, PhysAddr line);

  MachineSpec spec_;
  std::vector<SetAssocCache> l1_;
  std::vector<SetAssocCache> l2_;
  SlicedLlc llc_;
  HierarchyStats stats_;
  LineDirectory directory_;  // line -> sharer/dirty masks + prefetched flag
};

}  // namespace cachedir

#endif  // CACHEDIRECTOR_SRC_CACHE_HIERARCHY_H_
