// The full simulated memory hierarchy of one socket: per-core L1d and L2,
// a shared sliced LLC, and DRAM — with cycle-cost accounting per access.
//
// Two organisations are modelled, selected by MachineSpec::inclusion:
//  * kInclusive (Haswell): LLC is inclusive of all L1/L2; demand fills
//    allocate at every level; an LLC eviction back-invalidates the core
//    caches.
//  * kVictim (Skylake-SP): demand fills go to L2/L1 only; lines enter the
//    LLC when evicted from an L2; an LLC hit moves the line (back) into L2
//    — exclusive behaviour, so L2 and LLC capacities add. (The paper's §6
//    notes a line *can* remain in the LLC on Skylake; we model the
//    capacity-exclusive common case, which the paper's own Fig. 17 working
//    set sizing — three quarters of a slice plus L2 — relies on.)
//
// Stores use write-back + write-allocate semantics: a store that hits L1
// retires in ~1 cycle regardless of where the line lives (the paper's flat
// Fig. 5b); a store miss pays the read-for-ownership latency of wherever the
// line is found, and dirty L2 victims pay a write-back busy cost to their
// destination slice — which is how slice distance becomes visible to
// sustained write workloads (Fig. 6b).
//
// DMA traffic models DDIO: writes allocate directly in the LLC but only
// within the DDIO way partition; reads are served from LLC or DRAM without
// allocating.
#ifndef CACHEDIRECTOR_SRC_CACHE_HIERARCHY_H_
#define CACHEDIRECTOR_SRC_CACHE_HIERARCHY_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/cache/line_directory.h"
#include "src/cache/set_assoc_cache.h"
#include "src/cache/sliced_llc.h"
#include "src/hash/fast_slice_hash.h"
#include "src/hash/slice_hash.h"
#include "src/sim/machine.h"

namespace cachedir {

enum class ServedBy {
  kL1,
  kL2,
  kLlc,
  kDram,
  kRemoteCache,  // cache-to-cache forward from another core's Modified copy
};

struct AccessResult {
  Cycles cycles = 0;
  ServedBy level = ServedBy::kL1;
  SliceId slice = 0;  // meaningful when the access reached the LLC

  bool operator==(const AccessResult&) const = default;
};

struct HierarchyStats {
  std::uint64_t l1_hits = 0;
  std::uint64_t l1_misses = 0;
  std::uint64_t l2_hits = 0;
  std::uint64_t l2_misses = 0;
  std::uint64_t llc_hits = 0;
  std::uint64_t llc_misses = 0;
  std::uint64_t dirty_writebacks = 0;
  std::uint64_t dma_line_writes = 0;
  std::uint64_t dma_line_reads = 0;
  std::uint64_t prefetches_issued = 0;
  std::uint64_t prefetch_hits = 0;  // demand accesses served by a prefetch
  std::uint64_t remote_forwards = 0;   // reads served from another core's M copy
  std::uint64_t invalidations_sent = 0;  // copies killed by stores (coherence)
  std::uint64_t upgrades = 0;            // stores that hit Shared lines

  // Counters are plain modular sums, so accumulating a batch into a local
  // block and flushing it once is bit-identical to bumping the members
  // per access — the property batch_equivalence_test locks in.
  HierarchyStats& operator+=(const HierarchyStats& other) {
    l1_hits += other.l1_hits;
    l1_misses += other.l1_misses;
    l2_hits += other.l2_hits;
    l2_misses += other.l2_misses;
    llc_hits += other.llc_hits;
    llc_misses += other.llc_misses;
    dirty_writebacks += other.dirty_writebacks;
    dma_line_writes += other.dma_line_writes;
    dma_line_reads += other.dma_line_reads;
    prefetches_issued += other.prefetches_issued;
    prefetch_hits += other.prefetch_hits;
    remote_forwards += other.remote_forwards;
    invalidations_sent += other.invalidations_sent;
    upgrades += other.upgrades;
    return *this;
  }

  bool operator==(const HierarchyStats&) const = default;
};

// Request descriptor for the batched fast path. Exactly one addressing form
// is used per batch:
//  * `gather` non-empty: one access per listed address, in order — for
//    consumers whose lines are scattered (slice-aware KVS values, replay
//    streams).
//  * otherwise: the contiguous byte range [addr, addr + bytes); every
//    overlapped cache line is accessed once, in ascending order. Like the
//    scalar DmaWrite/DmaRead ranges always did, `bytes == 0` still touches
//    the single line containing `addr`.
// `per_line` is optional caller-provided storage for the individual
// AccessResults: the first min(lines, per_line.size()) results are written.
// Caller-owned storage keeps the batch path allocation-free in steady state
// (hotpath_alloc_test).
struct AccessBatch {
  PhysAddr addr = 0;
  std::size_t bytes = 0;
  std::span<const PhysAddr> gather;
  std::span<AccessResult> per_line;
};

// Aggregate outcome of one batch.
struct BatchResult {
  Cycles cycles = 0;      // summed over every line in the batch
  std::size_t lines = 0;  // lines accessed

  bool operator==(const BatchResult&) const = default;
};

// Capture hook for the epoch engine (src/sim/epoch_engine.h). While a sink
// is attached, every public access entry point forwards its request to the
// sink instead of executing it; the sink buffers requests and replays them
// later — in submission order — through the very same code below, so every
// simulated result stays bit-identical (epoch_equivalence_test). Captured
// calls return placeholder results (cycles == 0): callers that opt into an
// engine read settled cycle totals from it instead of from return values.
// An abstract interface rather than a concrete engine reference keeps this
// library free of any dependency on the engine's implementation.
class HierarchyCaptureSink {
 public:
  virtual AccessResult OnAccess(CoreId core, PhysAddr addr, bool is_write) = 0;
  virtual BatchResult OnAccessRange(CoreId core, const AccessBatch& batch, bool is_write) = 0;
  // One DMA range (bytes == 0 touches the single line holding addr, like the
  // range entry points themselves). Slice LUTs are dropped at capture: the
  // LUT is the same pure function of the address by contract, so the replay
  // just re-derives the slices.
  virtual Cycles OnDmaRange(PhysAddr addr, std::size_t bytes, bool is_write) = 0;
  // Announces an operation the sink cannot defer (clflush, wbinvd): the sink
  // must settle everything buffered before the caller proceeds in place.
  virtual void OnSerialPoint() = 0;

 protected:
  ~HierarchyCaptureSink() = default;  // never owned through the interface
};

class MemoryHierarchy;

// Dispatch table of one specialized hierarchy kernel (docs/architecture.md
// §13): every entry is a HierarchyKernel<Hash, Repl, Inclusion> static
// function with the three policies baked in as compile-time constants, so
// the steady state behind one indirect call carries zero per-access policy
// branches and the whole probe → directory → fill → replacement chain
// inlines into one flat loop per batch. Selected exactly once, when the
// MemoryHierarchy is constructed (SelectHierarchyKernel below); a null
// table means the generic runtime-dispatched reference path runs instead.
struct HierarchyKernelOps {
  AccessResult (*access)(MemoryHierarchy&, CoreId, PhysAddr, bool is_write);
  BatchResult (*access_range)(MemoryHierarchy&, CoreId, const AccessBatch&, bool is_write);
  Cycles (*dma_write_line)(MemoryHierarchy&, PhysAddr);
  Cycles (*dma_read_line)(MemoryHierarchy&, PhysAddr);
  Cycles (*dma_write_range)(MemoryHierarchy&, PhysAddr, std::size_t);
  Cycles (*dma_read_range)(MemoryHierarchy&, PhysAddr, std::size_t);
  Cycles (*dma_write_range_lut)(MemoryHierarchy&, PhysAddr, std::size_t,
                                std::span<const SliceId>);
  Cycles (*dma_read_range_lut)(MemoryHierarchy&, PhysAddr, std::size_t,
                               std::span<const SliceId>);
  const char* name;  // e.g. "xor+lru+inclusive" — for tests and diagnostics
};

// Config-time kernel factory (defined in src/cache/kernels/kernel_table.cc,
// where every instantiation of the matrix lives): returns the specialized
// table for (hash family × replacement × inclusion), or nullptr when the
// combination is outside the matrix (an unrecognised SliceHash subclass —
// FastSliceHash::Kind::kVirtual) and the generic path must serve.
const HierarchyKernelOps* SelectHierarchyKernel(FastSliceHash::Kind hash_kind,
                                                ReplacementKind replacement,
                                                LlcInclusionPolicy inclusion);

// The specialized kernel family itself; defined in
// src/cache/kernels/hierarchy_kernel.h (a friend of MemoryHierarchy).
template <FastSliceHash::Kind H, ReplacementKind R, LlcInclusionPolicy I>
struct HierarchyKernel;

class MemoryHierarchy {
 public:
  // `hash` routes lines to LLC slices; its slice count must match the spec.
  MemoryHierarchy(const MachineSpec& spec, std::shared_ptr<const SliceHash> hash,
                  std::uint64_t seed = 1);

  const MachineSpec& spec() const { return spec_; }

  AccessResult Read(CoreId core, PhysAddr addr);
  AccessResult Write(CoreId core, PhysAddr addr);

  // Batched fast path (docs/architecture.md §11): the per-line loop is fused
  // inside the hierarchy — one local stats block flushed per batch, no
  // re-entry through the scalar entry points. Simulated results (cycles,
  // per-line AccessResults, stats, CBo events) are bit-identical to issuing
  // the equivalent scalar calls line by line; batch_equivalence_test
  // enforces that over randomized streams.
  BatchResult ReadRange(CoreId core, const AccessBatch& batch);
  BatchResult WriteRange(CoreId core, const AccessBatch& batch);
  // Contiguous-range conveniences.
  BatchResult ReadRange(CoreId core, PhysAddr addr, std::size_t bytes);
  BatchResult WriteRange(CoreId core, PhysAddr addr, std::size_t bytes);

  // DDIO write of one cache line by the NIC. Returns the modelled LLC-side
  // occupancy cost (charged to the NIC's DMA engine, never to a core).
  Cycles DmaWriteLine(PhysAddr addr);
  // DDIO write of an arbitrary byte range (every overlapped line), fused
  // like ReadRange/WriteRange. DmaWrite is a synonym kept for callers that
  // predate the range API.
  Cycles DmaWriteRange(PhysAddr addr, std::size_t bytes);
  Cycles DmaWrite(PhysAddr addr, std::size_t bytes) { return DmaWriteRange(addr, bytes); }

  // NIC TX read; served from LLC or DRAM, never allocates.
  Cycles DmaReadLine(PhysAddr addr);
  Cycles DmaReadRange(PhysAddr addr, std::size_t bytes);
  Cycles DmaRead(PhysAddr addr, std::size_t bytes) { return DmaReadRange(addr, bytes); }

  // Slice-precomputed DMA ranges for callers that DMA the same buffers over
  // and over (the NIC keeps a per-mbuf LUT): `line_slices[i]` must equal
  // llc().SliceOf(LineBase(addr) + i * kCacheLineSize) — i.e. be the same
  // pure function of the address the plain overloads evaluate — so results
  // are bit-identical, the Complex Addressing hash just isn't re-run per
  // line. The span must cover every line the range overlaps.
  Cycles DmaWriteRange(PhysAddr addr, std::size_t bytes, std::span<const SliceId> line_slices);
  Cycles DmaReadRange(PhysAddr addr, std::size_t bytes, std::span<const SliceId> line_slices);

  // clflush: removes the line from every cache (contents reach DRAM).
  void FlushLine(PhysAddr addr);
  // Flushes everything (wbinvd-style; used between experiment repetitions).
  void FlushAll();

  SlicedLlc& llc() { return llc_; }
  const SlicedLlc& llc() const { return llc_; }

  // Read-only views of the private caches and the coherence directory, for
  // placement logic, tests and the directory/tag-array cross-check.
  const SetAssocCache& l1_cache(CoreId core) const { return l1_[core]; }
  const SetAssocCache& l2_cache(CoreId core) const { return l2_[core]; }
  const LineDirectory& directory() const { return directory_; }

  const HierarchyStats& stats() const { return stats_; }
  void ResetStats() { stats_ = HierarchyStats{}; }

  // NUCA penalty between a core and a slice (exposed for placement logic).
  // Interconnect distances are a pure function of (core, slice), so the
  // virtual Interconnect::SlicePenalty is evaluated once per pair at
  // construction into a flat table — no virtual dispatch on the access path.
  Cycles SlicePenalty(CoreId core, SliceId slice) const {
    return slice_penalty_[static_cast<std::size_t>(core) * spec_.num_slices + slice];
  }

  Cycles LlcHitLatency(CoreId core, SliceId slice) const {
    return spec_.latency.llc_base + SlicePenalty(core, slice);
  }

  // Whether the steady state runs a specialized HierarchyKernel (true) or
  // the generic reference path (false — kernel_mode == kGeneric, a build
  // with CACHEDIR_GENERIC_ONLY, or a configuration outside the matrix).
  // Either way every simulated result is bit-identical
  // (kernel_equivalence_test).
  bool uses_specialized_kernel() const { return kernel_ != nullptr; }
  const char* kernel_name() const { return kernel_ != nullptr ? kernel_->name : "generic"; }

  // Attaches (or, with nullptr, detaches) a capture sink; see
  // HierarchyCaptureSink above. At most one sink at a time; the epoch engine
  // attaches itself for its lifetime.
  void AttachCaptureSink(HierarchyCaptureSink* sink) { capture_ = sink; }
  HierarchyCaptureSink* capture_sink() const { return capture_; }

 private:
  template <FastSliceHash::Kind H, ReplacementKind R, LlcInclusionPolicy I>
  friend struct HierarchyKernel;
  // The epoch engine journals and replays through the private structures
  // directly (src/sim/epoch_engine.cc); it reuses this class's semantics
  // rather than duplicating them where it can.
  friend class EpochEngine;

  // A slice id recovered from a directory entry's memo, or "unknown" when
  // the line had no entry (the caller re-hashes on demand).
  struct CachedSlice {
    bool known = false;
    SliceId slice = 0;
  };

  // Every scalar and batched access funnels here; `stats` is either the
  // member block (scalar calls) or a batch-local accumulator.
  AccessResult Access(CoreId core, PhysAddr addr, bool is_write, HierarchyStats& stats);
  BatchResult AccessRange(CoreId core, const AccessBatch& batch, bool is_write);
  Cycles DmaWriteLineTo(PhysAddr line, SliceId slice, HierarchyStats& stats);
  Cycles DmaReadLineTo(PhysAddr line, SliceId slice, HierarchyStats& stats);

  // The batched loops know their future line addresses, so they pipeline
  // host-side software prefetches of the metadata those lines will touch
  // (directory slot, L2 set row, LLC slice set row) a few iterations ahead —
  // the structures span megabytes and miss the host cache otherwise. Pure
  // __builtin_prefetch hints: simulated state and results are untouched.
  static constexpr std::size_t kBatchLookahead = 8;
  // The DMA range loops work in fixed-size chunks: pass one hashes each
  // line's slice (exactly once) into a stack block and prefetches the
  // metadata the fill/probe will touch; pass two replays the chunk against
  // the memoized slices. Slice routing is a pure function of the address,
  // so the reordering of *hash* work cannot move any simulated result.
  static constexpr std::size_t kDmaChunkLines = 64;
  void PrefetchCoreAccessMeta(CoreId core, PhysAddr addr) const {
    const PhysAddr line = LineBase(addr);
    directory_.PrefetchEntry(line);
    l2_[core].PrefetchSetMeta(line);
    llc_.PrefetchSliceMeta(llc_.SliceOf(line), line);
  }
  // Memoized slice lookup: reads (and on a miss, fills) the slice-id cache
  // of `entry`, which must be the directory entry for `line` — or nullptr,
  // in which case the Complex Addressing hash runs. The pointer must predate
  // any structural directory mutation.
  SliceId SliceOfLine(LineDirectoryEntry* entry, PhysAddr line) {
    if (entry != nullptr) {
      if (entry->slice_cache != LineDirectoryEntry::kNoSlice) {
        return entry->slice_cache;
      }
      entry->slice_cache = llc_.SliceOf(line);
      return entry->slice_cache;
    }
    return llc_.SliceOf(line);
  }

  // Fills `line` (routed to `slice`) into core's L1, propagating any
  // displaced dirty victim.
  void FillL1(CoreId core, PhysAddr line, bool dirty, SliceId slice, HierarchyStats& stats);
  // Fills `line` into core's L2; may trigger an L2 victim write-back whose
  // cost is added to *extra_cycles (dirty victims only).
  void FillL2(CoreId core, PhysAddr line, bool dirty, SliceId slice, Cycles* extra_cycles,
              HierarchyStats& stats);
  // Inclusive mode: LLC eviction invalidates the line in every core cache.
  // Returns the line's memoized slice id before the entry dies. Split so the
  // dominant no-sharers case inlines into the batched DMA loops: the
  // directory only holds core-resident lines, so the two calls per DMA fill
  // (incoming line, displaced victim) almost always resolve on the
  // directory's filter byte; only a real sharer pays the outlined walk.
  CachedSlice BackInvalidate(PhysAddr line) {
    LineDirectoryEntry* entry = directory_.Find(line);
    if (entry == nullptr) {
      return {};
    }
    return BackInvalidateEntry(line, entry);
  }
  CachedSlice BackInvalidateEntry(PhysAddr line, LineDirectoryEntry* entry);
  void HandleLlcEviction(const std::optional<EvictedLine>& evicted, HierarchyStats& stats);
  // Background next-line prefetch into L2 (no cycles charged to the core).
  void PrefetchNextLine(CoreId core, PhysAddr line, HierarchyStats& stats);

  // Coherence (write-invalidate, MESI-flavoured). O(1) directory lookups
  // (plus O(sharers) tag updates) — they never scan the other cores' tag
  // arrays. The non-mutating "held/dirty elsewhere?" questions are answered
  // inline in Access from the entry found at the top of the access.
  // Invalidates the line in every sharer but `core`; returns true if any
  // displaced copy was dirty (the dirt transfers to the requester).
  bool InvalidateElsewhere(CoreId core, PhysAddr line, HierarchyStats& stats);
  // Downgrades remote Modified copies to clean Shared (read snooping).
  void DowngradeElsewhere(CoreId core, PhysAddr line);

  // Directory maintenance at the tag-array mutation points. The directory
  // must mirror the tag arrays exactly; `directory_property_test` enforces
  // the invariant against brute-force scans. Both return the victim line's
  // memoized slice id so eviction paths skip re-hashing it.
  CachedSlice DirRemoveL1(CoreId core, PhysAddr line);
  CachedSlice DirRemoveL2(CoreId core, PhysAddr line);

  MachineSpec spec_;
  // Specialized kernel dispatch table, selected once in the constructor from
  // (hash kind, replacement, inclusion); nullptr runs the generic path.
  const HierarchyKernelOps* kernel_ = nullptr;
  // Attached capture sink, or nullptr (the common case: direct execution).
  HierarchyCaptureSink* capture_ = nullptr;
  std::vector<SetAssocCache> l1_;
  std::vector<SetAssocCache> l2_;
  SlicedLlc llc_;
  HierarchyStats stats_;
  LineDirectory directory_;  // line -> sharer/dirty masks + prefetched flag
  std::vector<Cycles> slice_penalty_;  // [core * num_slices + slice], sealed in ctor
};

}  // namespace cachedir

#endif  // CACHEDIRECTOR_SRC_CACHE_HIERARCHY_H_
