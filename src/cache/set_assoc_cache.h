// A single set-associative cache array (tag store only — data lives in the
// simulated PhysicalMemory; the caches track presence, recency and dirtiness,
// which is all that latency accounting needs).
#ifndef CACHEDIRECTOR_SRC_CACHE_SET_ASSOC_CACHE_H_
#define CACHEDIRECTOR_SRC_CACHE_SET_ASSOC_CACHE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/cache/replacement.h"
#include "src/sim/rng.h"
#include "src/sim/types.h"

namespace cachedir {

// Outcome of inserting a line: the displaced victim, if any.
struct EvictedLine {
  PhysAddr line = 0;
  bool dirty = false;
};

class SetAssocCache {
 public:
  struct Config {
    std::size_t num_sets = 0;   // power of two
    std::size_t num_ways = 0;   // 1..64
    ReplacementKind replacement = ReplacementKind::kLru;
    std::uint64_t seed = 1;     // for kRandom only
  };

  explicit SetAssocCache(const Config& config);

  std::size_t num_sets() const { return sets_.size(); }
  std::size_t num_ways() const { return ways_; }
  std::size_t capacity_bytes() const { return num_sets() * ways_ * kCacheLineSize; }

  std::size_t SetIndexOf(PhysAddr addr) const {
    return (addr >> kCacheLineBits) & set_mask_;
  }

  // Presence test without touching replacement state.
  bool Contains(PhysAddr addr) const;

  // Lookup that promotes the line on hit. Returns true on hit.
  bool Touch(PhysAddr addr);

  // Touch and dirty-bit read in a single tag probe — the hierarchy's L1/L2
  // hit paths need both and would otherwise scan the set twice.
  struct TouchResult {
    bool hit = false;
    bool dirty = false;
  };
  TouchResult Probe(PhysAddr addr);

  // Marks a present line dirty (no-op if absent). Returns true if present.
  bool MarkDirty(PhysAddr addr);

  // Clears the dirty bit of a present line (coherence downgrade M -> S).
  // Returns true if the line was present and dirty.
  bool MarkClean(PhysAddr addr);

  // Returns whether the line is present AND dirty.
  bool IsDirty(PhysAddr addr) const;

  // Inserts the line (must not already be present — call Touch first).
  // Allocation and victim choice are restricted to the ways enabled in
  // `way_mask` (used for CAT / DDIO partitions). Returns the displaced line,
  // if one had to be evicted.
  std::optional<EvictedLine> Insert(PhysAddr addr, bool dirty,
                                    std::uint64_t way_mask = ~std::uint64_t{0});

  // Removes the line if present; reports whether it was present and dirty.
  struct InvalidateResult {
    bool was_present = false;
    bool was_dirty = false;
  };
  InvalidateResult Invalidate(PhysAddr addr);

  // Drops every line (clflush of the whole array). Dirty contents are
  // considered written back to memory (data already lives there).
  void Clear();

  // All currently-resident lines of one set, as (line address, dirty) pairs;
  // used by inclusive back-invalidation and by tests.
  std::vector<EvictedLine> LinesInSet(std::size_t set_index) const;

  std::size_t resident_lines() const { return resident_; }

 private:
  struct Way {
    PhysAddr line = 0;
    bool valid = false;
    bool dirty = false;
  };

  struct Set {
    std::vector<Way> ways;
    ReplacementState repl;

    Set(ReplacementKind kind, std::uint32_t num_ways)
        : ways(num_ways), repl(kind, num_ways) {}
  };

  const Way* FindWay(PhysAddr line, std::size_t* way_out) const;

  std::size_t ways_;
  std::size_t set_mask_;
  std::vector<Set> sets_;
  mutable Rng rng_;
  std::size_t resident_ = 0;
};

}  // namespace cachedir

#endif  // CACHEDIRECTOR_SRC_CACHE_SET_ASSOC_CACHE_H_
