// A single set-associative cache array (tag store only — data lives in the
// simulated PhysicalMemory; the caches track presence, recency and dirtiness,
// which is all that latency accounting needs).
//
// Layout is struct-of-arrays (docs/architecture.md §10): one contiguous tag
// array indexed by set * ways + way, per-set valid/dirty bits packed into
// uint64 way-masks (ways <= 64 by construction), and replacement metadata in
// flat arrays sized per policy. A probe is a mask-guided scan over the set's
// contiguous tag row; there is no per-set object and no per-set heap block,
// so the host-side hot path touches two or three cache lines per set instead
// of chasing a vector-of-structs. Every access/eviction path below is
// allocation-free in steady state (enforced by tests/hotpath_alloc_test.cc).
#ifndef CACHEDIRECTOR_SRC_CACHE_SET_ASSOC_CACHE_H_
#define CACHEDIRECTOR_SRC_CACHE_SET_ASSOC_CACHE_H_

#include <bit>
#include <cstdint>
#include <optional>
#include <vector>

#include "src/cache/replacement.h"
#include "src/sim/rng.h"
#include "src/sim/types.h"

namespace cachedir {

// Outcome of inserting a line: the displaced victim, if any.
struct EvictedLine {
  PhysAddr line = 0;
  bool dirty = false;
};

class SetAssocCache {
 public:
  struct Config {
    std::size_t num_sets = 0;   // power of two
    std::size_t num_ways = 0;   // 1..64
    ReplacementKind replacement = ReplacementKind::kLru;
    std::uint64_t seed = 1;     // for kRandom only
  };

  explicit SetAssocCache(const Config& config);

  std::size_t num_sets() const { return set_mask_ + 1; }
  std::size_t num_ways() const { return ways_; }
  std::size_t capacity_bytes() const { return num_sets() * ways_ * kCacheLineSize; }

  std::size_t SetIndexOf(PhysAddr addr) const {
    return (addr >> kCacheLineBits) & set_mask_;
  }

  // Presence test without touching replacement state.
  bool Contains(PhysAddr addr) const {
    const PhysAddr line = LineBase(addr);
    return FindWay(SetIndexOf(line), line) != kNoWay;
  }

  // Lookup that promotes the line on hit. Returns true on hit.
  bool Touch(PhysAddr addr) { return Probe(addr).hit; }

  // Touch and dirty-bit read in a single tag probe — the hierarchy's L1/L2
  // hit paths need both and would otherwise scan the set twice.
  struct TouchResult {
    bool hit = false;
    bool dirty = false;
  };
  TouchResult Probe(PhysAddr addr) {
    const PhysAddr line = LineBase(addr);
    const std::size_t set = SetIndexOf(line);
    const std::uint32_t way = FindWay(set, line);
    if (way == kNoWay) {
      return TouchResult{};
    }
    TouchWay(set, way);
    return TouchResult{true, ((dirty_[set] >> way) & 1) != 0};
  }

  // Marks a present line dirty (no-op if absent). Returns true if present.
  bool MarkDirty(PhysAddr addr) {
    const PhysAddr line = LineBase(addr);
    const std::size_t set = SetIndexOf(line);
    const std::uint32_t way = FindWay(set, line);
    if (way == kNoWay) {
      return false;
    }
    dirty_[set] |= std::uint64_t{1} << way;
    return true;
  }

  // Clears the dirty bit of a present line (coherence downgrade M -> S).
  // Returns true if the line was present and dirty.
  bool MarkClean(PhysAddr addr) {
    const PhysAddr line = LineBase(addr);
    const std::size_t set = SetIndexOf(line);
    const std::uint32_t way = FindWay(set, line);
    if (way == kNoWay) {
      return false;
    }
    const std::uint64_t bit = std::uint64_t{1} << way;
    const bool was_dirty = (dirty_[set] & bit) != 0;
    dirty_[set] &= ~bit;
    return was_dirty;
  }

  // Returns whether the line is present AND dirty.
  bool IsDirty(PhysAddr addr) const {
    const PhysAddr line = LineBase(addr);
    const std::size_t set = SetIndexOf(line);
    const std::uint32_t way = FindWay(set, line);
    return way != kNoWay && ((dirty_[set] >> way) & 1) != 0;
  }

  // Inserts the line (must not already be present — call Touch first).
  // Allocation and victim choice are restricted to the ways enabled in
  // `way_mask` (used for CAT / DDIO partitions). Returns the displaced line,
  // if one had to be evicted.
  std::optional<EvictedLine> Insert(PhysAddr addr, bool dirty,
                                    std::uint64_t way_mask = ~std::uint64_t{0});

  // Single-scan fill for the LLC paths that would otherwise pay a Contains
  // probe followed by an Insert/MarkDirty re-scan: if the line is present,
  // sets its dirty bit when `dirty` and promotes it when `promote_on_hit`;
  // if absent, inserts it within `way_mask` exactly like Insert.
  struct FillResult {
    bool was_present = false;
    std::optional<EvictedLine> evicted;  // only when !was_present
  };
  FillResult Fill(PhysAddr addr, bool dirty, std::uint64_t way_mask, bool promote_on_hit);

  // Removes the line if present; reports whether it was present and dirty.
  struct InvalidateResult {
    bool was_present = false;
    bool was_dirty = false;
  };
  InvalidateResult Invalidate(PhysAddr addr);

  // Drops every line (clflush of the whole array). Dirty contents are
  // considered written back to memory (data already lives there).
  void Clear();

  // Allocation-free enumeration of one set's resident lines, in way order;
  // `fn` receives each line as an EvictedLine (line address, dirty).
  template <typename Fn>
  void ForEachLineInSet(std::size_t set_index, Fn&& fn) const {
    const PhysAddr* tags = tags_.data() + set_index * ways_;
    const std::uint64_t dirty = dirty_[set_index];
    std::uint64_t live = valid_[set_index];
    while (live != 0) {
      const auto way = static_cast<std::uint32_t>(std::countr_zero(live));
      live &= live - 1;
      fn(EvictedLine{tags[way], ((dirty >> way) & 1) != 0});
    }
  }

  // Test-facing convenience over ForEachLineInSet: materialises the set's
  // resident lines as a vector. Nothing on a simulation path calls this —
  // it allocates.
  std::vector<EvictedLine> LinesInSet(std::size_t set_index) const;

  std::size_t resident_lines() const { return resident_; }

 private:
  // Sentinel way index: "not found". Ways are always < 64.
  static constexpr std::uint32_t kNoWay = 64;

  // Mask-guided scan over the set's contiguous tag row: only valid ways are
  // compared, invalid ones are skipped by the bit iteration.
  std::uint32_t FindWay(std::size_t set, PhysAddr line) const {
    const PhysAddr* tags = tags_.data() + set * ways_;
    std::uint64_t live = valid_[set];
    while (live != 0) {
      const auto way = static_cast<std::uint32_t>(std::countr_zero(live));
      if (tags[way] == line) {
        return way;
      }
      live &= live - 1;
    }
    return kNoWay;
  }

  // Promote `way` to most-recently-used under the configured policy.
  void TouchWay(std::size_t set, std::uint32_t way) {
    switch (repl_) {
      case ReplacementKind::kLru:
        stamps_[set * ways_ + way] = ++ticks_[set];
        break;
      case ReplacementKind::kTreePlru:
        replacement::PlruTouch(plru_[set], ways32_, way);
        break;
      case ReplacementKind::kRandom:
        break;
    }
  }

  std::uint32_t ChooseVictim(std::size_t set, std::uint64_t candidate_mask);
  std::optional<EvictedLine> FillAbsent(std::size_t set, PhysAddr line, bool dirty,
                                        std::uint64_t way_mask);

  std::size_t ways_;
  std::uint32_t ways32_;
  std::size_t set_mask_;
  ReplacementKind repl_;
  std::vector<PhysAddr> tags_;          // num_sets * ways, indexed set * ways + way
  std::vector<std::uint64_t> valid_;    // per-set way mask (dirty ⊆ valid invariant)
  std::vector<std::uint64_t> dirty_;    // per-set way mask
  std::vector<std::uint64_t> stamps_;   // kLru only: num_sets * ways access stamps
  std::vector<std::uint64_t> ticks_;    // kLru only: per-set tick counter
  std::vector<std::uint64_t> plru_;     // kTreePlru only: per-set node bits
  mutable Rng rng_;
  std::size_t resident_ = 0;
};

}  // namespace cachedir

#endif  // CACHEDIRECTOR_SRC_CACHE_SET_ASSOC_CACHE_H_
