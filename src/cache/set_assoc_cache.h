// A single set-associative cache array (tag store only — data lives in the
// simulated PhysicalMemory; the caches track presence, recency and dirtiness,
// which is all that latency accounting needs).
//
// Layout is struct-of-arrays (docs/architecture.md §10-§11): one contiguous
// tag array indexed by set * ways + way, and all word-sized per-set state
// (valid/dirty way masks, LRU tick, PLRU bits; ways <= 64 by construction)
// packed into one 32-byte SetScalars record so a probe or fill touches one
// host cache line for it. A probe walks only the valid ways of the set's tag
// row; there is no per-set object and no per-set heap block. The hot
// probe/fill path is defined inline in this header so the hierarchy's
// batched loops compile into one flat function. Every access/eviction path
// below is allocation-free in steady state (enforced by
// tests/hotpath_alloc_test.cc).
//
// The replacement policy is a compile-time parameter of the internals
// (docs/architecture.md §13): `ProbeT`/`FillT`/`InsertT`/`TouchT` take
// `ReplacementKind` as a template argument and contain no policy branch, and
// the runtime-dispatched public API is a single switch over those same
// instantiations — one implementation body, so the specialized hierarchy
// kernels and the generic reference path cannot diverge at this layer.
#ifndef CACHEDIRECTOR_SRC_CACHE_SET_ASSOC_CACHE_H_
#define CACHEDIRECTOR_SRC_CACHE_SET_ASSOC_CACHE_H_

#include <bit>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <vector>

#include "src/cache/replacement.h"
#include "src/sim/rng.h"
#include "src/sim/types.h"

namespace cachedir {

// Outcome of inserting a line: the displaced victim, if any.
struct EvictedLine {
  PhysAddr line = 0;
  bool dirty = false;
};

class SetAssocCache {
 public:
  struct Config {
    std::size_t num_sets = 0;   // power of two
    std::size_t num_ways = 0;   // 1..64
    ReplacementKind replacement = ReplacementKind::kLru;
    std::uint64_t seed = 1;     // for kRandom only
  };

  explicit SetAssocCache(const Config& config);

  std::size_t num_sets() const { return set_mask_ + 1; }
  std::size_t num_ways() const { return ways_; }
  std::size_t capacity_bytes() const { return num_sets() * ways_ * kCacheLineSize; }

  std::size_t SetIndexOf(PhysAddr addr) const {
    return (addr >> kCacheLineBits) & set_mask_;
  }

  // Presence test without touching replacement state.
  bool Contains(PhysAddr addr) const {
    const PhysAddr line = LineBase(addr);
    return FindWay(SetIndexOf(line), line) != kNoWay;
  }

  // Lookup that promotes the line on hit. Returns true on hit.
  bool Touch(PhysAddr addr) { return Probe(addr).hit; }

  // Compile-time-policy Touch for the specialized kernels. `R` must equal
  // the configured replacement kind.
  template <ReplacementKind R>
  bool TouchT(PhysAddr addr) {
    return ProbeT<R>(addr).hit;
  }

  // Touch and dirty-bit read in a single tag probe — the hierarchy's L1/L2
  // hit paths need both and would otherwise scan the set twice.
  struct TouchResult {
    bool hit = false;
    bool dirty = false;
  };
  TouchResult Probe(PhysAddr addr) {
    switch (repl_) {
      case ReplacementKind::kLru:
        return ProbeT<ReplacementKind::kLru>(addr);
      case ReplacementKind::kTreePlru:
        return ProbeT<ReplacementKind::kTreePlru>(addr);
      case ReplacementKind::kRandom:
        return ProbeT<ReplacementKind::kRandom>(addr);
    }
    throw std::logic_error("SetAssocCache::Probe: unknown replacement kind");
  }
  template <ReplacementKind R>
  TouchResult ProbeT(PhysAddr addr) {
    const PhysAddr line = LineBase(addr);
    const std::size_t set = SetIndexOf(line);
    const std::uint32_t way = FindWay(set, line);
    if (way == kNoWay) {
      return TouchResult{};
    }
    TouchWay<R>(set, way);
    return TouchResult{true, ((scalars_[set].dirty >> way) & 1) != 0};
  }

  // Marks a present line dirty (no-op if absent). Returns true if present.
  bool MarkDirty(PhysAddr addr) {
    const PhysAddr line = LineBase(addr);
    const std::size_t set = SetIndexOf(line);
    const std::uint32_t way = FindWay(set, line);
    if (way == kNoWay) {
      return false;
    }
    scalars_[set].dirty |= std::uint64_t{1} << way;
    return true;
  }

  // Clears the dirty bit of a present line (coherence downgrade M -> S).
  // Returns true if the line was present and dirty.
  bool MarkClean(PhysAddr addr) {
    const PhysAddr line = LineBase(addr);
    const std::size_t set = SetIndexOf(line);
    const std::uint32_t way = FindWay(set, line);
    if (way == kNoWay) {
      return false;
    }
    const std::uint64_t bit = std::uint64_t{1} << way;
    const bool was_dirty = (scalars_[set].dirty & bit) != 0;
    scalars_[set].dirty &= ~bit;
    return was_dirty;
  }

  // Returns whether the line is present AND dirty.
  bool IsDirty(PhysAddr addr) const {
    const PhysAddr line = LineBase(addr);
    const std::size_t set = SetIndexOf(line);
    const std::uint32_t way = FindWay(set, line);
    return way != kNoWay && ((scalars_[set].dirty >> way) & 1) != 0;
  }

  // Inserts the line (must not already be present — call Touch first).
  // Allocation and victim choice are restricted to the ways enabled in
  // `way_mask` (used for CAT / DDIO partitions). Returns the displaced line,
  // if one had to be evicted.
  std::optional<EvictedLine> Insert(PhysAddr addr, bool dirty,
                                    std::uint64_t way_mask = ~std::uint64_t{0}) {
    switch (repl_) {
      case ReplacementKind::kLru:
        return InsertT<ReplacementKind::kLru>(addr, dirty, way_mask);
      case ReplacementKind::kTreePlru:
        return InsertT<ReplacementKind::kTreePlru>(addr, dirty, way_mask);
      case ReplacementKind::kRandom:
        return InsertT<ReplacementKind::kRandom>(addr, dirty, way_mask);
    }
    throw std::logic_error("SetAssocCache::Insert: unknown replacement kind");
  }
  template <ReplacementKind R>
  std::optional<EvictedLine> InsertT(PhysAddr addr, bool dirty,
                                     std::uint64_t way_mask = ~std::uint64_t{0}) {
    const PhysAddr line = LineBase(addr);
    const std::size_t set = SetIndexOf(line);
    if (FindWay(set, line) != kNoWay) {
      throw std::logic_error("SetAssocCache::Insert: line already present");
    }
    return FillAbsent<R>(set, line, dirty, way_mask);
  }

  // Single-scan fill for the LLC paths that would otherwise pay a Contains
  // probe followed by an Insert/MarkDirty re-scan: if the line is present,
  // sets its dirty bit when `dirty` and promotes it when `promote_on_hit`;
  // if absent, inserts it within `way_mask` exactly like Insert.
  struct FillResult {
    bool was_present = false;
    std::optional<EvictedLine> evicted;  // only when !was_present
  };
  FillResult Fill(PhysAddr addr, bool dirty, std::uint64_t way_mask, bool promote_on_hit) {
    switch (repl_) {
      case ReplacementKind::kLru:
        return FillT<ReplacementKind::kLru>(addr, dirty, way_mask, promote_on_hit);
      case ReplacementKind::kTreePlru:
        return FillT<ReplacementKind::kTreePlru>(addr, dirty, way_mask, promote_on_hit);
      case ReplacementKind::kRandom:
        return FillT<ReplacementKind::kRandom>(addr, dirty, way_mask, promote_on_hit);
    }
    throw std::logic_error("SetAssocCache::Fill: unknown replacement kind");
  }
  template <ReplacementKind R>
  FillResult FillT(PhysAddr addr, bool dirty, std::uint64_t way_mask, bool promote_on_hit) {
    const PhysAddr line = LineBase(addr);
    const std::size_t set = SetIndexOf(line);
    const std::uint32_t way = FindWay(set, line);
    FillResult result;
    if (way != kNoWay) {
      result.was_present = true;
      if (dirty) {
        scalars_[set].dirty |= std::uint64_t{1} << way;
      }
      if (promote_on_hit) {
        TouchWay<R>(set, way);
      }
      return result;
    }
    result.evicted = FillAbsent<R>(set, line, dirty, way_mask);
    return result;
  }

  // Removes the line if present; reports whether it was present and dirty.
  struct InvalidateResult {
    bool was_present = false;
    bool was_dirty = false;
  };
  InvalidateResult Invalidate(PhysAddr addr);

  // Drops every line (clflush of the whole array). Dirty contents are
  // considered written back to memory (data already lives there).
  void Clear();

  // Allocation-free enumeration of one set's resident lines, in way order;
  // `fn` receives each line as an EvictedLine (line address, dirty).
  template <typename Fn>
  void ForEachLineInSet(std::size_t set_index, Fn&& fn) const {
    const PhysAddr* tags = tags_.data() + set_index * ways_;
    const std::uint64_t dirty = scalars_[set_index].dirty;
    std::uint64_t live = scalars_[set_index].valid;
    while (live != 0) {
      const auto way = static_cast<std::uint32_t>(std::countr_zero(live));
      live &= live - 1;
      fn(EvictedLine{tags[way], ((dirty >> way) & 1) != 0});
    }
  }

  // Test-facing convenience over ForEachLineInSet: materialises the set's
  // resident lines as a vector. Nothing on a simulation path calls this —
  // it allocates.
  std::vector<EvictedLine> LinesInSet(std::size_t set_index) const;

  std::size_t resident_lines() const { return resident_; }

  ReplacementKind replacement() const { return repl_; }

  // Host-side hint for the batched fast path: prefetches the metadata the
  // next probe/fill of `addr`'s set will touch — the tag row, the
  // valid/dirty way-masks, and the LRU stamps. Purely a host cache hint
  // issued a few batch iterations ahead; simulated state is untouched, so
  // results are bit-identical with or without it.
  void PrefetchSetMeta(PhysAddr addr) const {
    const std::size_t set = SetIndexOf(LineBase(addr));
    __builtin_prefetch(scalars_.data() + set);
    // Cover the whole tag row: 8 tags per 64-byte host line, and LLC rows
    // run up to 20 ways, so step through every line the row spans.
    for (std::size_t way = 0; way < ways_; way += 8) {
      __builtin_prefetch(tags_.data() + set * ways_ + way);
    }
    if (repl_ == ReplacementKind::kLru) {
      for (std::size_t way = 0; way < ways_; way += 8) {
        __builtin_prefetch(stamps_.data() + set * ways_ + way);
      }
    }
  }

  // Narrower hint for fills restricted to a way partition (DDIO, CAT): the
  // probe still compares the whole tag row, but victim choice and promotion
  // only ever read/write the LRU stamps of the partition's ways, so pulling
  // the full stamp row (three host lines for a 20-way LLC set) wastes
  // host-cache bandwidth on exactly the hottest loops. Prefetches the tag
  // row, the way-mask record, and only the stamp lines `way_mask` spans.
  void PrefetchSetMetaForFill(PhysAddr addr, std::uint64_t way_mask) const {
    const std::size_t set = SetIndexOf(LineBase(addr));
    __builtin_prefetch(scalars_.data() + set, 1);  // fill writes valid/dirty/ticks
    for (std::size_t way = 0; way < ways_; way += 8) {
      __builtin_prefetch(tags_.data() + set * ways_ + way);
    }
    if (repl_ == ReplacementKind::kLru) {
      // One 64-byte stamp line covers 8 ways; visit each spanned line once.
      std::uint64_t lines = 0;
      std::uint64_t mask = way_mask & (ways_ >= 64 ? ~std::uint64_t{0}
                                                   : ((std::uint64_t{1} << ways_) - 1));
      while (mask != 0) {
        const auto way = static_cast<std::uint32_t>(std::countr_zero(mask));
        mask &= mask - 1;
        const std::uint64_t line_bit = std::uint64_t{1} << (way / 8);
        if ((lines & line_bit) == 0) {
          lines |= line_bit;
          __builtin_prefetch(stamps_.data() + set * ways_ + (way & ~std::uint32_t{7}), 1);
          __builtin_prefetch(tags_.data() + set * ways_ + (way & ~std::uint32_t{7}), 1);
        }
      }
    }
  }

 private:
  // The epoch engine (src/sim/epoch_engine.cc) journals set rows — tag row,
  // SetScalars, LRU stamps — as raw pre-images so a misspeculated window can
  // be rolled back bit-exactly, and snapshots rng_ for kRandom.
  friend class EpochEngine;

  // The word-sized per-set state, packed into one 32-byte record so a probe
  // or fill touches a single host cache line instead of one per array: the
  // valid/dirty way masks (dirty ⊆ valid invariant), the LRU tick counter,
  // and the tree-PLRU node bits (each replacement policy uses its own field
  // and ignores the other). alignas(32) keeps a record from straddling a
  // host line.
  struct alignas(32) SetScalars {
    std::uint64_t valid = 0;
    std::uint64_t dirty = 0;
    std::uint64_t ticks = 0;
    std::uint64_t plru = 0;
  };

  // Sentinel way index: "not found". Ways are always < 64.
  static constexpr std::uint32_t kNoWay = 64;

  // Probe of the set's contiguous tag row: full tags are compared for the
  // valid ways only, iterating the valid-mask bits.
  std::uint32_t FindWay(std::size_t set, PhysAddr line) const {
    const PhysAddr* tags = tags_.data() + set * ways_;
    std::uint64_t cand = scalars_[set].valid;
    while (cand != 0) {
      const auto way = static_cast<std::uint32_t>(std::countr_zero(cand));
      if (tags[way] == line) {
        return way;
      }
      cand &= cand - 1;
    }
    return kNoWay;
  }

  // Promote `way` to most-recently-used under policy `R` (compile-time).
  template <ReplacementKind R>
  void TouchWay(std::size_t set, std::uint32_t way) {
    if constexpr (R == ReplacementKind::kLru) {
      stamps_[set * ways_ + way] = ++scalars_[set].ticks;
    } else if constexpr (R == ReplacementKind::kTreePlru) {
      replacement::PlruTouch(scalars_[set].plru, ways32_, way);
    } else {
      static_assert(R == ReplacementKind::kRandom);
    }
  }

  template <ReplacementKind R>
  std::uint32_t ChooseVictim(std::size_t set, std::uint64_t candidate_mask) {
    if constexpr (R == ReplacementKind::kLru) {
      return replacement::LruVictim(stamps_.data() + set * ways_, ways32_, candidate_mask);
    } else if constexpr (R == ReplacementKind::kTreePlru) {
      return replacement::PlruVictim(scalars_[set].plru, ways32_, candidate_mask);
    } else {
      static_assert(R == ReplacementKind::kRandom);
      return replacement::RandomVictim(ways32_, candidate_mask, rng_);
    }
  }

  // Allocates `line` in `set`: an invalid way inside the partition if one
  // exists, else the policy's victim among the partition's ways. The line
  // must not be present in the set.
  template <ReplacementKind R>
  std::optional<EvictedLine> FillAbsent(std::size_t set, PhysAddr line, bool dirty,
                                        std::uint64_t way_mask) {
    const std::uint64_t usable =
        ways_ >= 64 ? way_mask : (way_mask & ((std::uint64_t{1} << ways_) - 1));
    if (usable == 0) {
      throw std::invalid_argument("SetAssocCache::Insert: empty way mask");
    }
    const std::size_t base = set * ways_;

    // Prefer an invalid way inside the partition (the dirty bit of an
    // invalid way is clear by invariant).
    const std::uint64_t free = usable & ~scalars_[set].valid;
    if (free != 0) {
      const auto way = static_cast<std::uint32_t>(std::countr_zero(free));
      const std::uint64_t bit = std::uint64_t{1} << way;
      tags_[base + way] = line;
      scalars_[set].valid |= bit;
      if (dirty) {
        scalars_[set].dirty |= bit;
      }
      TouchWay<R>(set, way);
      ++resident_;
      return std::nullopt;
    }

    const std::uint32_t victim = ChooseVictim<R>(set, usable);
    const std::uint64_t bit = std::uint64_t{1} << victim;
    EvictedLine evicted{tags_[base + victim], (scalars_[set].dirty & bit) != 0};
    tags_[base + victim] = line;
    if (dirty) {
      scalars_[set].dirty |= bit;
    } else {
      scalars_[set].dirty &= ~bit;
    }
    TouchWay<R>(set, victim);
    return evicted;
  }

  std::size_t ways_;
  std::uint32_t ways32_;
  std::size_t set_mask_;
  ReplacementKind repl_;
  std::vector<PhysAddr> tags_;          // num_sets * ways, indexed set * ways + way
  std::vector<SetScalars> scalars_;     // per-set word-sized state, one record
  std::vector<std::uint64_t> stamps_;   // kLru only: num_sets * ways access stamps
  mutable Rng rng_;
  std::size_t resident_ = 0;
};

}  // namespace cachedir

#endif  // CACHEDIRECTOR_SRC_CACHE_SET_ASSOC_CACHE_H_

