#include "src/cache/hierarchy.h"

#include <bit>
#include <stdexcept>

namespace cachedir {
namespace {

constexpr std::uint64_t Bit(CoreId core) { return std::uint64_t{1} << core; }

}  // namespace

MemoryHierarchy::MemoryHierarchy(const MachineSpec& spec,
                                 std::shared_ptr<const SliceHash> hash, std::uint64_t seed)
    : spec_(spec),
      llc_(
          [&] {
            SlicedLlc::Config c;
            c.num_sets = spec.llc_slice.num_sets();
            c.num_ways = spec.llc_slice.ways;
            c.replacement = spec.replacement;
            c.ddio_ways = spec.ddio_ways;
            c.seed = seed;
            return c;
          }(),
          hash) {
  if (hash == nullptr) {
    throw std::invalid_argument("MemoryHierarchy: null slice hash");
  }
  if (hash->num_slices() != spec.num_slices) {
    throw std::invalid_argument("MemoryHierarchy: hash slice count != machine slice count");
  }
  if (spec.num_cores > 64) {
    throw std::invalid_argument("MemoryHierarchy: directory sharer masks support <= 64 cores");
  }
  SetAssocCache::Config l1c;
  l1c.num_sets = spec.l1.num_sets();
  l1c.num_ways = spec.l1.ways;
  l1c.replacement = spec.replacement;
  SetAssocCache::Config l2c;
  l2c.num_sets = spec.l2.num_sets();
  l2c.num_ways = spec.l2.ways;
  l2c.replacement = spec.replacement;
  l1_.reserve(spec.num_cores);
  l2_.reserve(spec.num_cores);
  for (std::size_t i = 0; i < spec.num_cores; ++i) {
    l1c.seed = seed + 1000 + i;
    l2c.seed = seed + 2000 + i;
    l1_.emplace_back(l1c);
    l2_.emplace_back(l2c);
  }
  // Seal the interconnect: NUCA penalties are a pure function of the
  // (core, slice) pair, so the virtual SlicePenalty runs exactly once per
  // pair here instead of once per simulated access.
  if (spec_.interconnect != nullptr) {
    slice_penalty_.reserve(spec.num_cores * spec.num_slices);
    for (std::size_t core = 0; core < spec.num_cores; ++core) {
      for (std::size_t slice = 0; slice < spec.num_slices; ++slice) {
        slice_penalty_.push_back(spec_.interconnect->SlicePenalty(
            static_cast<CoreId>(core), static_cast<SliceId>(slice)));
      }
    }
  }
  // Seal the probe/fill implementation (docs/architecture.md §13): the three
  // policies this spec fixed for the hierarchy's lifetime pick one
  // specialized kernel here, or nullptr — the generic path below — when the
  // spec opted out or the configuration is outside the instantiation matrix.
#ifndef CACHEDIR_GENERIC_ONLY
  if (spec_.kernel_mode == HierarchyKernelMode::kAuto) {
    kernel_ =
        SelectHierarchyKernel(llc_.fast_hash().kind(), spec_.replacement, spec_.inclusion);
  }
#endif
}

AccessResult MemoryHierarchy::Read(CoreId core, PhysAddr addr) {
  if (capture_ != nullptr) [[unlikely]] {
    return capture_->OnAccess(core, addr, /*is_write=*/false);
  }
  if (kernel_ != nullptr) {
    return kernel_->access(*this, core, addr, /*is_write=*/false);
  }
  return Access(core, addr, /*is_write=*/false, stats_);
}

AccessResult MemoryHierarchy::Write(CoreId core, PhysAddr addr) {
  if (capture_ != nullptr) [[unlikely]] {
    return capture_->OnAccess(core, addr, /*is_write=*/true);
  }
  if (kernel_ != nullptr) {
    return kernel_->access(*this, core, addr, /*is_write=*/true);
  }
  return Access(core, addr, /*is_write=*/true, stats_);
}

BatchResult MemoryHierarchy::ReadRange(CoreId core, const AccessBatch& batch) {
  if (capture_ != nullptr) [[unlikely]] {
    return capture_->OnAccessRange(core, batch, /*is_write=*/false);
  }
  if (kernel_ != nullptr) {
    return kernel_->access_range(*this, core, batch, /*is_write=*/false);
  }
  return AccessRange(core, batch, /*is_write=*/false);
}

BatchResult MemoryHierarchy::WriteRange(CoreId core, const AccessBatch& batch) {
  if (capture_ != nullptr) [[unlikely]] {
    return capture_->OnAccessRange(core, batch, /*is_write=*/true);
  }
  if (kernel_ != nullptr) {
    return kernel_->access_range(*this, core, batch, /*is_write=*/true);
  }
  return AccessRange(core, batch, /*is_write=*/true);
}

BatchResult MemoryHierarchy::ReadRange(CoreId core, PhysAddr addr, std::size_t bytes) {
  AccessBatch batch;
  batch.addr = addr;
  batch.bytes = bytes;
  return ReadRange(core, batch);
}

BatchResult MemoryHierarchy::WriteRange(CoreId core, PhysAddr addr, std::size_t bytes) {
  AccessBatch batch;
  batch.addr = addr;
  batch.bytes = bytes;
  return WriteRange(core, batch);
}

BatchResult MemoryHierarchy::AccessRange(CoreId core, const AccessBatch& batch, bool is_write) {
  // The fused loop: per-line counters accumulate in a local block and flush
  // into stats_ once. uint64 counter sums are associative, so the flush is
  // bit-identical to bumping the members per access.
  HierarchyStats local;
  BatchResult result;
  const std::size_t stored = batch.per_line.size();
  if (!batch.gather.empty()) {
    const std::size_t n = batch.gather.size();
    for (std::size_t i = 0; i < n && i < kBatchLookahead; ++i) {
      PrefetchCoreAccessMeta(core, batch.gather[i]);
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (kBatchLookahead > 0 && i + kBatchLookahead < n) {
        PrefetchCoreAccessMeta(core, batch.gather[i + kBatchLookahead]);
      }
      const AccessResult r = Access(core, batch.gather[i], is_write, local);
      result.cycles += r.cycles;
      if (i < stored) {
        batch.per_line[i] = r;
      }
    }
    result.lines = n;
  } else {
    const PhysAddr first = LineBase(batch.addr);
    const PhysAddr last = LineBase(batch.addr + (batch.bytes == 0 ? 0 : batch.bytes - 1));
    constexpr PhysAddr kAheadBytes = kBatchLookahead * kCacheLineSize;
    for (PhysAddr line = first; line <= last && line - first < kAheadBytes;
         line += kCacheLineSize) {
      PrefetchCoreAccessMeta(core, line);
    }
    std::size_t i = 0;
    for (PhysAddr line = first; line <= last; line += kCacheLineSize, ++i) {
      if (kBatchLookahead > 0 && last - line >= kAheadBytes) {
        PrefetchCoreAccessMeta(core, line + kAheadBytes);
      }
      const AccessResult r = Access(core, line, is_write, local);
      result.cycles += r.cycles;
      if (i < stored) {
        batch.per_line[i] = r;
      }
    }
    result.lines = i;
  }
  stats_ += local;
  return result;
}

AccessResult MemoryHierarchy::Access(CoreId core, PhysAddr addr, bool is_write,
                                     HierarchyStats& stats) {
  const PhysAddr line = LineBase(addr);
  const LatencyModel& lat = spec_.latency;
  // One directory lookup up front answers the slice-id memo and both
  // coherence questions ("held/dirty elsewhere?") for this access. The
  // sharer masks are copied out as values here; the entry pointer itself is
  // only dereferenced before the first structural directory mutation
  // (fills, invalidations and erases all invalidate Find pointers).
  LineDirectoryEntry* entry = directory_.Find(line);
  const SliceId slice = SliceOfLine(entry, line);
  const std::uint64_t others = entry != nullptr ? entry->sharers() & ~Bit(core) : 0;
  const std::uint64_t dirty_others = entry != nullptr ? entry->dirty() & ~Bit(core) : 0;
  AccessResult result;
  result.slice = slice;

  // L1. Probe returns hit + dirty in one tag scan; a clean read hit (the
  // hottest path) finishes on the masks copied above.
  if (const auto l1 = l1_[core].Probe(line); l1.hit) {
    ++stats.l1_hits;
    if (is_write) {
      result.cycles = lat.store_commit;
      if (!l1.dirty && others != 0) {
        // Store to a Shared line: bus upgrade invalidates the other copies.
        ++stats.upgrades;
        InvalidateElsewhere(core, line, stats);
        result.cycles += LlcHitLatency(core, slice) + lat.upgrade;
      }
      l1_[core].MarkDirty(line);
      directory_.GetOrCreate(line).l1_dirty |= Bit(core);
    } else {
      result.cycles = lat.l1_hit;
    }
    result.level = ServedBy::kL1;
    return result;
  }
  ++stats.l1_misses;

  // L2.
  if (const auto l2 = l2_[core].Probe(line); l2.hit) {
    ++stats.l2_hits;
    if (entry != nullptr && entry->prefetched) {
      entry->prefetched = false;
      ++stats.prefetch_hits;
    }
    result.cycles = lat.l2_hit;
    if (is_write && !l2.dirty && others != 0) {
      ++stats.upgrades;
      InvalidateElsewhere(core, line, stats);
      result.cycles += LlcHitLatency(core, slice) + lat.upgrade;
    }
    result.level = ServedBy::kL2;
    FillL1(core, line, /*dirty=*/is_write, slice, stats);
    return result;
  }
  ++stats.l2_misses;

  // Coherence snoop: another core may hold the line Modified; if so it
  // forwards the data cache-to-cache (faster than DRAM, slower than a plain
  // LLC hit).
  if (dirty_others != 0) {
    ++stats.remote_forwards;
    Cycles cycles = LlcHitLatency(core, slice) + lat.snoop_transfer;
    bool fill_dirty;
    if (is_write) {
      // RFO: the remote Modified copy dies; its dirt transfers to us.
      InvalidateElsewhere(core, line, stats);
      fill_dirty = true;
    } else {
      // Read: the owner downgrades to clean Shared; the dirt moves into the
      // LLC if the line is resident there, otherwise it rides on our copy.
      DowngradeElsewhere(core, line);
      fill_dirty = !llc_.MarkDirtyOnSlice(slice, line);
    }
    // The forward also refreshes the (inclusive) LLC copy's recency.
    if (spec_.inclusion == LlcInclusionPolicy::kInclusive) {
      llc_.LookupAndTouchOnSlice(slice, line);
    }
    FillL2(core, line, fill_dirty && !is_write, slice, &cycles, stats);
    FillL1(core, line, /*dirty=*/is_write || fill_dirty, slice, stats);
    result.cycles = cycles;
    result.level = ServedBy::kRemoteCache;
    return result;
  }

  // LLC.
  Cycles cycles = LlcHitLatency(core, slice);
  const bool llc_hit = llc_.LookupAndTouchOnSlice(slice, line);
  bool fill_dirty = false;
  if (llc_hit) {
    ++stats.llc_hits;
    result.level = ServedBy::kLlc;
    if (spec_.inclusion == LlcInclusionPolicy::kVictim) {
      // Exclusive victim behaviour: the line moves to L2 rather than being
      // duplicated (so L2 + LLC capacities add up — without this, a working
      // set of slice-size + L2, the paper's Fig. 17 sizing, would thrash).
      const auto inv = llc_.InvalidateOnSlice(slice, line);
      fill_dirty = inv.was_dirty;
    }
  } else {
    ++stats.llc_misses;
    cycles += lat.dram;
    result.level = ServedBy::kDram;
    if (spec_.inclusion == LlcInclusionPolicy::kInclusive) {
      // Demand fill allocates in the LLC too.
      HandleLlcEviction(llc_.InsertForCoreOnSlice(core, slice, line, /*dirty=*/false), stats);
    }
    // Victim mode: the line bypasses the LLC on a demand fill and will enter
    // it when evicted from L2.
  }
  if (is_write) {
    // RFO: clean Shared copies elsewhere are invalidated (no forward needed,
    // the cost is part of the miss round trip already paid).
    InvalidateElsewhere(core, line, stats);
  }

  FillL2(core, line, fill_dirty, slice, &cycles, stats);
  FillL1(core, line, /*dirty=*/is_write, slice, stats);
  if (spec_.l2_next_line_prefetch) {
    PrefetchNextLine(core, line, stats);
  }
  result.cycles = cycles;
  return result;
}

bool MemoryHierarchy::InvalidateElsewhere(CoreId core, PhysAddr line, HierarchyStats& stats) {
  LineDirectoryEntry* entry = directory_.Find(line);
  if (entry == nullptr) {
    return false;
  }
  bool dirty = false;
  std::uint64_t others = entry->sharers() & ~Bit(core);
  while (others != 0) {
    const auto c = static_cast<CoreId>(std::countr_zero(others));
    others &= others - 1;
    const auto r1 = l1_[c].Invalidate(line);
    const auto r2 = l2_[c].Invalidate(line);
    if (r1.was_present || r2.was_present) {
      ++stats.invalidations_sent;
    }
    dirty = dirty || r1.was_dirty || r2.was_dirty;
  }
  entry->l1_sharers &= Bit(core);
  entry->l2_sharers &= Bit(core);
  entry->l1_dirty &= Bit(core);
  entry->l2_dirty &= Bit(core);
  // The prefetched copy (if any) died with the invalidation.
  entry->prefetched = false;
  if (entry->empty()) {
    directory_.Erase(line);
  }
  return dirty;
}

void MemoryHierarchy::DowngradeElsewhere(CoreId core, PhysAddr line) {
  LineDirectoryEntry* entry = directory_.Find(line);
  if (entry == nullptr) {
    return;
  }
  std::uint64_t others = entry->dirty() & ~Bit(core);
  while (others != 0) {
    const auto c = static_cast<CoreId>(std::countr_zero(others));
    others &= others - 1;
    (void)l1_[c].MarkClean(line);
    (void)l2_[c].MarkClean(line);
  }
  entry->l1_dirty &= Bit(core);
  entry->l2_dirty &= Bit(core);
}

void MemoryHierarchy::PrefetchNextLine(CoreId core, PhysAddr line, HierarchyStats& stats) {
  const PhysAddr next = line + kCacheLineSize;
  LineDirectoryEntry* entry = directory_.Find(next);
  if (entry != nullptr && (entry->sharers() & Bit(core)) != 0) {
    return;  // already resident in this core's L1 or L2
  }
  ++stats.prefetches_issued;
  // The prefetch engine walks the same path as a demand fill, but in the
  // background: its latency is not charged to the core.
  const SliceId next_slice = SliceOfLine(entry, next);
  bool dirty = false;
  if (llc_.LookupAndTouchOnSlice(next_slice, next)) {
    if (spec_.inclusion == LlcInclusionPolicy::kVictim) {
      dirty = llc_.InvalidateOnSlice(next_slice, next).was_dirty;  // exclusive move to L2
    }
  } else if (spec_.inclusion == LlcInclusionPolicy::kInclusive) {
    HandleLlcEviction(llc_.InsertForCoreOnSlice(core, next_slice, next, /*dirty=*/false),
                      stats);
  }
  Cycles uncharged = 0;
  FillL2(core, next, dirty, next_slice, &uncharged, stats);
  directory_.GetOrCreate(next).prefetched = true;
}

void MemoryHierarchy::FillL1(CoreId core, PhysAddr line, bool dirty, SliceId slice,
                             HierarchyStats& stats) {
  const auto evicted = l1_[core].Insert(line, dirty);
  {
    LineDirectoryEntry& entry = directory_.GetOrCreate(line);
    entry.l1_sharers |= Bit(core);
    entry.slice_cache = slice;
    if (dirty) {
      entry.l1_dirty |= Bit(core);
    }
  }
  if (evicted.has_value()) {
    const CachedSlice victim = DirRemoveL1(core, evicted->line);
    if (evicted->dirty) {
      // L1 victims land in L2 (which contains them by construction; if a race
      // with an L2 eviction removed the copy, push the dirt to the LLC).
      if (l2_[core].MarkDirty(evicted->line)) {
        directory_.GetOrCreate(evicted->line).l2_dirty |= Bit(core);
      } else {
        const bool in_llc = victim.known ? llc_.MarkDirtyOnSlice(victim.slice, evicted->line)
                                         : llc_.MarkDirty(evicted->line);
        if (!in_llc) {
          // Line is nowhere below: the write-back goes straight to DRAM.
          ++stats.dirty_writebacks;
        }
      }
    }
  }
}

void MemoryHierarchy::FillL2(CoreId core, PhysAddr line, bool dirty, SliceId slice,
                             Cycles* extra_cycles, HierarchyStats& stats) {
  const auto evicted = l2_[core].Insert(line, dirty);
  {
    LineDirectoryEntry& entry = directory_.GetOrCreate(line);
    entry.l2_sharers |= Bit(core);
    entry.slice_cache = slice;
    if (dirty) {
      entry.l2_dirty |= Bit(core);
    }
  }
  if (!evicted.has_value()) {
    return;
  }
  // The victim's memoized slice id is read off the directory before the
  // sharer bits (and possibly the entry) go away.
  const CachedSlice cached = DirRemoveL2(core, evicted->line);
  // Keep L1 subset of L2: the victim leaves L1 as well, carrying its dirt.
  const auto l1_state = l1_[core].Invalidate(evicted->line);
  DirRemoveL1(core, evicted->line);
  const bool victim_dirty = evicted->dirty || l1_state.was_dirty;

  if (spec_.inclusion == LlcInclusionPolicy::kInclusive) {
    // The victim is still resident in the (inclusive) LLC; just mark dirt.
    if (victim_dirty) {
      const SliceId victim_slice = cached.known ? cached.slice : llc_.SliceOf(evicted->line);
      ++stats.dirty_writebacks;
      llc_.MarkDirtyOnSlice(victim_slice, evicted->line);
      *extra_cycles += spec_.latency.writeback_busy + SlicePenalty(core, victim_slice);
    }
    return;
  }

  // Victim (Skylake) mode: L2 evictions fill the LLC. One fused tag scan: a
  // resident copy just absorbs the dirt, an absent line allocates under the
  // core's CAT mask (possibly displacing an LLC victim).
  const SliceId victim_slice = cached.known ? cached.slice : llc_.SliceOf(evicted->line);
  HandleLlcEviction(llc_.FillFromL2OnSlice(core, victim_slice, evicted->line, victim_dirty),
                    stats);
  if (victim_dirty) {
    ++stats.dirty_writebacks;
    *extra_cycles += spec_.latency.writeback_busy + SlicePenalty(core, victim_slice);
  }
}

MemoryHierarchy::CachedSlice MemoryHierarchy::BackInvalidateEntry(PhysAddr line,
                                                                  LineDirectoryEntry* entry) {
  CachedSlice cached;
  if (entry->slice_cache != LineDirectoryEntry::kNoSlice) {
    cached.known = true;
    cached.slice = entry->slice_cache;
  }
  std::uint64_t sharers = entry->sharers();
  while (sharers != 0) {
    const auto c = static_cast<CoreId>(std::countr_zero(sharers));
    sharers &= sharers - 1;
    l1_[c].Invalidate(line);
    l2_[c].Invalidate(line);
  }
  // Kills any pending-prefetch record too: back-invalidation (DMA ownership,
  // inclusive LLC eviction, clflush) must not leak prefetch state.
  directory_.Erase(line);
  return cached;
}

void MemoryHierarchy::HandleLlcEviction(const std::optional<EvictedLine>& evicted,
                                        HierarchyStats& stats) {
  if (!evicted.has_value()) {
    return;
  }
  if (evicted->dirty) {
    ++stats.dirty_writebacks;  // written to DRAM by the LLC, off the core path
  }
  if (spec_.inclusion == LlcInclusionPolicy::kInclusive) {
    BackInvalidate(evicted->line);
  }
}

Cycles MemoryHierarchy::DmaWriteLine(PhysAddr addr) {
  if (capture_ != nullptr) [[unlikely]] {
    return capture_->OnDmaRange(addr, 0, /*is_write=*/true);
  }
  if (kernel_ != nullptr) {
    return kernel_->dma_write_line(*this, addr);
  }
  const PhysAddr line = LineBase(addr);
  return DmaWriteLineTo(line, llc_.SliceOf(line), stats_);
}

Cycles MemoryHierarchy::DmaWriteLineTo(PhysAddr line, SliceId slice, HierarchyStats& stats) {
  ++stats.dma_line_writes;
  // DMA takes ownership: stale copies leave the core caches.
  BackInvalidate(line);
  // Fused DDIO fill: dirties + promotes a resident line, allocates in the
  // DDIO ways otherwise — one tag scan instead of probe + touch + insert.
  HandleLlcEviction(llc_.DmaFillOnSlice(slice, line), stats);
  return spec_.latency.llc_base + SlicePenalty(0, slice);
}

Cycles MemoryHierarchy::DmaWriteRange(PhysAddr addr, std::size_t bytes) {
  if (capture_ != nullptr) [[unlikely]] {
    return capture_->OnDmaRange(addr, bytes, /*is_write=*/true);
  }
  if (kernel_ != nullptr) {
    return kernel_->dma_write_range(*this, addr, bytes);
  }
  HierarchyStats local;
  Cycles total = 0;
  const PhysAddr first = LineBase(addr);
  const PhysAddr last = LineBase(addr + (bytes == 0 ? 0 : bytes - 1));
  // Chunked two-pass loop: hash every line's slice exactly once into a stack
  // block while prefetching the metadata its fill will touch, then run the
  // fills against the memoized slices. The slice of a line is a pure
  // function of its address, so memoization cannot change results.
  SliceId slices[kDmaChunkLines];
  for (PhysAddr chunk = first; chunk <= last; chunk += kDmaChunkLines * kCacheLineSize) {
    const std::size_t lines_left = (last - chunk) / kCacheLineSize + 1;
    const std::size_t n = lines_left < kDmaChunkLines ? lines_left : kDmaChunkLines;
    for (std::size_t i = 0; i < n; ++i) {
      const PhysAddr line = chunk + i * kCacheLineSize;
      slices[i] = llc_.SliceOf(line);
      directory_.PrefetchEntry(line);
      llc_.PrefetchSliceMetaForDma(slices[i], line);
    }
    for (std::size_t i = 0; i < n; ++i) {
      total += DmaWriteLineTo(chunk + i * kCacheLineSize, slices[i], local);
    }
  }
  stats_ += local;
  return total;
}

Cycles MemoryHierarchy::DmaWriteRange(PhysAddr addr, std::size_t bytes,
                                      std::span<const SliceId> line_slices) {
  if (capture_ != nullptr) [[unlikely]] {
    // line_slices == SliceOf per line by contract; the replay re-derives it.
    return capture_->OnDmaRange(addr, bytes, /*is_write=*/true);
  }
  if (kernel_ != nullptr) {
    return kernel_->dma_write_range_lut(*this, addr, bytes, line_slices);
  }
  HierarchyStats local;
  Cycles total = 0;
  const PhysAddr first = LineBase(addr);
  const PhysAddr last = LineBase(addr + (bytes == 0 ? 0 : bytes - 1));
  // Same chunked two-pass shape as the hashing overload, with the caller's
  // precomputed slices (== SliceOf by contract) in place of pass-one hashes.
  for (PhysAddr chunk = first; chunk <= last; chunk += kDmaChunkLines * kCacheLineSize) {
    const std::size_t lines_left = (last - chunk) / kCacheLineSize + 1;
    const std::size_t n = lines_left < kDmaChunkLines ? lines_left : kDmaChunkLines;
    const SliceId* slices = line_slices.data() + (chunk - first) / kCacheLineSize;
    for (std::size_t i = 0; i < n; ++i) {
      const PhysAddr line = chunk + i * kCacheLineSize;
      directory_.PrefetchEntry(line);
      llc_.PrefetchSliceMetaForDma(slices[i], line);
    }
    for (std::size_t i = 0; i < n; ++i) {
      total += DmaWriteLineTo(chunk + i * kCacheLineSize, slices[i], local);
    }
  }
  stats_ += local;
  return total;
}

Cycles MemoryHierarchy::DmaReadLine(PhysAddr addr) {
  if (capture_ != nullptr) [[unlikely]] {
    return capture_->OnDmaRange(addr, 0, /*is_write=*/false);
  }
  if (kernel_ != nullptr) {
    return kernel_->dma_read_line(*this, addr);
  }
  const PhysAddr line = LineBase(addr);
  return DmaReadLineTo(line, llc_.SliceOf(line), stats_);
}

Cycles MemoryHierarchy::DmaReadLineTo(PhysAddr line, SliceId slice, HierarchyStats& stats) {
  ++stats.dma_line_reads;
  if (llc_.LookupAndTouchOnSlice(slice, line)) {
    return spec_.latency.llc_base;
  }
  return spec_.latency.llc_base + spec_.latency.dram;
}

Cycles MemoryHierarchy::DmaReadRange(PhysAddr addr, std::size_t bytes) {
  if (capture_ != nullptr) [[unlikely]] {
    return capture_->OnDmaRange(addr, bytes, /*is_write=*/false);
  }
  if (kernel_ != nullptr) {
    return kernel_->dma_read_range(*this, addr, bytes);
  }
  HierarchyStats local;
  Cycles total = 0;
  const PhysAddr first = LineBase(addr);
  const PhysAddr last = LineBase(addr + (bytes == 0 ? 0 : bytes - 1));
  // Same chunked two-pass shape as DmaWriteRange: one hash per line, with
  // the slice's set metadata prefetched a chunk ahead of the probes.
  SliceId slices[kDmaChunkLines];
  for (PhysAddr chunk = first; chunk <= last; chunk += kDmaChunkLines * kCacheLineSize) {
    const std::size_t lines_left = (last - chunk) / kCacheLineSize + 1;
    const std::size_t n = lines_left < kDmaChunkLines ? lines_left : kDmaChunkLines;
    for (std::size_t i = 0; i < n; ++i) {
      const PhysAddr line = chunk + i * kCacheLineSize;
      slices[i] = llc_.SliceOf(line);
      llc_.PrefetchSliceMeta(slices[i], line);
    }
    for (std::size_t i = 0; i < n; ++i) {
      total += DmaReadLineTo(chunk + i * kCacheLineSize, slices[i], local);
    }
  }
  stats_ += local;
  return total;
}

Cycles MemoryHierarchy::DmaReadRange(PhysAddr addr, std::size_t bytes,
                                     std::span<const SliceId> line_slices) {
  if (capture_ != nullptr) [[unlikely]] {
    return capture_->OnDmaRange(addr, bytes, /*is_write=*/false);
  }
  if (kernel_ != nullptr) {
    return kernel_->dma_read_range_lut(*this, addr, bytes, line_slices);
  }
  HierarchyStats local;
  Cycles total = 0;
  const PhysAddr first = LineBase(addr);
  const PhysAddr last = LineBase(addr + (bytes == 0 ? 0 : bytes - 1));
  for (PhysAddr chunk = first; chunk <= last; chunk += kDmaChunkLines * kCacheLineSize) {
    const std::size_t lines_left = (last - chunk) / kCacheLineSize + 1;
    const std::size_t n = lines_left < kDmaChunkLines ? lines_left : kDmaChunkLines;
    const SliceId* slices = line_slices.data() + (chunk - first) / kCacheLineSize;
    for (std::size_t i = 0; i < n; ++i) {
      llc_.PrefetchSliceMeta(slices[i], chunk + i * kCacheLineSize);
    }
    for (std::size_t i = 0; i < n; ++i) {
      total += DmaReadLineTo(chunk + i * kCacheLineSize, slices[i], local);
    }
  }
  stats_ += local;
  return total;
}

void MemoryHierarchy::FlushLine(PhysAddr addr) {
  if (capture_ != nullptr) [[unlikely]] {
    capture_->OnSerialPoint();  // settle pending captured work, then flush in place
  }
  const PhysAddr line = LineBase(addr);
  const CachedSlice cached = BackInvalidate(line);
  if (cached.known) {
    llc_.InvalidateOnSlice(cached.slice, line);
  } else {
    llc_.Invalidate(line);
  }
}

void MemoryHierarchy::FlushAll() {
  if (capture_ != nullptr) [[unlikely]] {
    capture_->OnSerialPoint();
  }
  for (std::size_t core = 0; core < l1_.size(); ++core) {
    l1_[core].Clear();
    l2_[core].Clear();
  }
  llc_.Clear();
  directory_.Clear();
}

MemoryHierarchy::CachedSlice MemoryHierarchy::DirRemoveL1(CoreId core, PhysAddr line) {
  LineDirectoryEntry* entry = directory_.Find(line);
  if (entry == nullptr) {
    return {};
  }
  CachedSlice cached;
  if (entry->slice_cache != LineDirectoryEntry::kNoSlice) {
    cached.known = true;
    cached.slice = entry->slice_cache;
  }
  entry->l1_sharers &= ~Bit(core);
  entry->l1_dirty &= ~Bit(core);
  if (entry->empty()) {
    directory_.Erase(line);
  }
  return cached;
}

MemoryHierarchy::CachedSlice MemoryHierarchy::DirRemoveL2(CoreId core, PhysAddr line) {
  LineDirectoryEntry* entry = directory_.Find(line);
  if (entry == nullptr) {
    return {};
  }
  CachedSlice cached;
  if (entry->slice_cache != LineDirectoryEntry::kNoSlice) {
    cached.known = true;
    cached.slice = entry->slice_cache;
  }
  entry->l2_sharers &= ~Bit(core);
  entry->l2_dirty &= ~Bit(core);
  if (entry->empty()) {
    directory_.Erase(line);
  }
  return cached;
}

}  // namespace cachedir
