#include "src/cache/hierarchy.h"

#include <bit>
#include <stdexcept>

namespace cachedir {
namespace {

constexpr std::uint64_t Bit(CoreId core) { return std::uint64_t{1} << core; }

}  // namespace

MemoryHierarchy::MemoryHierarchy(const MachineSpec& spec,
                                 std::shared_ptr<const SliceHash> hash, std::uint64_t seed)
    : spec_(spec),
      llc_(
          [&] {
            SlicedLlc::Config c;
            c.num_sets = spec.llc_slice.num_sets();
            c.num_ways = spec.llc_slice.ways;
            c.replacement = spec.replacement;
            c.ddio_ways = spec.ddio_ways;
            c.seed = seed;
            return c;
          }(),
          hash) {
  if (hash == nullptr) {
    throw std::invalid_argument("MemoryHierarchy: null slice hash");
  }
  if (hash->num_slices() != spec.num_slices) {
    throw std::invalid_argument("MemoryHierarchy: hash slice count != machine slice count");
  }
  if (spec.num_cores > 64) {
    throw std::invalid_argument("MemoryHierarchy: directory sharer masks support <= 64 cores");
  }
  SetAssocCache::Config l1c;
  l1c.num_sets = spec.l1.num_sets();
  l1c.num_ways = spec.l1.ways;
  l1c.replacement = spec.replacement;
  SetAssocCache::Config l2c;
  l2c.num_sets = spec.l2.num_sets();
  l2c.num_ways = spec.l2.ways;
  l2c.replacement = spec.replacement;
  l1_.reserve(spec.num_cores);
  l2_.reserve(spec.num_cores);
  for (std::size_t i = 0; i < spec.num_cores; ++i) {
    l1c.seed = seed + 1000 + i;
    l2c.seed = seed + 2000 + i;
    l1_.emplace_back(l1c);
    l2_.emplace_back(l2c);
  }
}

AccessResult MemoryHierarchy::Read(CoreId core, PhysAddr addr) {
  return Access(core, addr, /*is_write=*/false);
}

AccessResult MemoryHierarchy::Write(CoreId core, PhysAddr addr) {
  return Access(core, addr, /*is_write=*/true);
}

AccessResult MemoryHierarchy::Access(CoreId core, PhysAddr addr, bool is_write) {
  const PhysAddr line = LineBase(addr);
  const LatencyModel& lat = spec_.latency;
  const SliceId slice = llc_.SliceOf(line);
  AccessResult result;
  result.slice = slice;

  // L1. Probe returns hit + dirty in one tag scan; a clean read hit (the
  // hottest path) finishes without ever consulting the directory.
  if (const auto l1 = l1_[core].Probe(line); l1.hit) {
    ++stats_.l1_hits;
    if (is_write) {
      result.cycles = lat.store_commit;
      if (!l1.dirty && HeldElsewhere(core, line)) {
        // Store to a Shared line: bus upgrade invalidates the other copies.
        ++stats_.upgrades;
        InvalidateElsewhere(core, line);
        result.cycles += LlcHitLatency(core, slice) + lat.upgrade;
      }
      l1_[core].MarkDirty(line);
      directory_.GetOrCreate(line).l1_dirty |= Bit(core);
    } else {
      result.cycles = lat.l1_hit;
    }
    result.level = ServedBy::kL1;
    return result;
  }
  ++stats_.l1_misses;

  // L2.
  if (const auto l2 = l2_[core].Probe(line); l2.hit) {
    ++stats_.l2_hits;
    if (LineDirectoryEntry* entry = directory_.Find(line);
        entry != nullptr && entry->prefetched) {
      entry->prefetched = false;
      ++stats_.prefetch_hits;
    }
    result.cycles = lat.l2_hit;
    if (is_write && !l2.dirty && HeldElsewhere(core, line)) {
      ++stats_.upgrades;
      InvalidateElsewhere(core, line);
      result.cycles += LlcHitLatency(core, slice) + lat.upgrade;
    }
    result.level = ServedBy::kL2;
    FillL1(core, line, /*dirty=*/is_write);
    return result;
  }
  ++stats_.l2_misses;

  // Coherence snoop: another core may hold the line Modified; if so it
  // forwards the data cache-to-cache (faster than DRAM, slower than a plain
  // LLC hit).
  if (DirtyElsewhere(core, line)) {
    ++stats_.remote_forwards;
    Cycles cycles = LlcHitLatency(core, slice) + lat.snoop_transfer;
    bool fill_dirty;
    if (is_write) {
      // RFO: the remote Modified copy dies; its dirt transfers to us.
      InvalidateElsewhere(core, line);
      fill_dirty = true;
    } else {
      // Read: the owner downgrades to clean Shared; the dirt moves into the
      // LLC if the line is resident there, otherwise it rides on our copy.
      DowngradeElsewhere(core, line);
      fill_dirty = !llc_.MarkDirtyOnSlice(slice, line);
    }
    // The forward also refreshes the (inclusive) LLC copy's recency.
    if (spec_.inclusion == LlcInclusionPolicy::kInclusive) {
      llc_.LookupAndTouchOnSlice(slice, line);
    }
    FillL2(core, line, fill_dirty && !is_write, &cycles);
    FillL1(core, line, /*dirty=*/is_write || fill_dirty);
    result.cycles = cycles;
    result.level = ServedBy::kRemoteCache;
    return result;
  }

  // LLC.
  Cycles cycles = LlcHitLatency(core, slice);
  const bool llc_hit = llc_.LookupAndTouchOnSlice(slice, line);
  bool fill_dirty = false;
  if (llc_hit) {
    ++stats_.llc_hits;
    result.level = ServedBy::kLlc;
    if (spec_.inclusion == LlcInclusionPolicy::kVictim) {
      // Exclusive victim behaviour: the line moves to L2 rather than being
      // duplicated (so L2 + LLC capacities add up — without this, a working
      // set of slice-size + L2, the paper's Fig. 17 sizing, would thrash).
      const auto inv = llc_.InvalidateOnSlice(slice, line);
      fill_dirty = inv.was_dirty;
    }
  } else {
    ++stats_.llc_misses;
    cycles += lat.dram;
    result.level = ServedBy::kDram;
    if (spec_.inclusion == LlcInclusionPolicy::kInclusive) {
      // Demand fill allocates in the LLC too.
      HandleLlcEviction(llc_.InsertForCoreOnSlice(core, slice, line, /*dirty=*/false));
    }
    // Victim mode: the line bypasses the LLC on a demand fill and will enter
    // it when evicted from L2.
  }
  if (is_write) {
    // RFO: clean Shared copies elsewhere are invalidated (no forward needed,
    // the cost is part of the miss round trip already paid).
    InvalidateElsewhere(core, line);
  }

  FillL2(core, line, fill_dirty, &cycles);
  FillL1(core, line, /*dirty=*/is_write);
  if (spec_.l2_next_line_prefetch) {
    PrefetchNextLine(core, line);
  }
  result.cycles = cycles;
  return result;
}

bool MemoryHierarchy::HeldElsewhere(CoreId core, PhysAddr line) const {
  const LineDirectoryEntry* entry = directory_.Find(line);
  return entry != nullptr && (entry->sharers() & ~Bit(core)) != 0;
}

bool MemoryHierarchy::DirtyElsewhere(CoreId core, PhysAddr line) const {
  const LineDirectoryEntry* entry = directory_.Find(line);
  return entry != nullptr && (entry->dirty() & ~Bit(core)) != 0;
}

bool MemoryHierarchy::InvalidateElsewhere(CoreId core, PhysAddr line) {
  LineDirectoryEntry* entry = directory_.Find(line);
  if (entry == nullptr) {
    return false;
  }
  bool dirty = false;
  std::uint64_t others = entry->sharers() & ~Bit(core);
  while (others != 0) {
    const auto c = static_cast<CoreId>(std::countr_zero(others));
    others &= others - 1;
    const auto r1 = l1_[c].Invalidate(line);
    const auto r2 = l2_[c].Invalidate(line);
    if (r1.was_present || r2.was_present) {
      ++stats_.invalidations_sent;
    }
    dirty = dirty || r1.was_dirty || r2.was_dirty;
  }
  entry->l1_sharers &= Bit(core);
  entry->l2_sharers &= Bit(core);
  entry->l1_dirty &= Bit(core);
  entry->l2_dirty &= Bit(core);
  // The prefetched copy (if any) died with the invalidation.
  entry->prefetched = false;
  if (entry->empty()) {
    directory_.Erase(line);
  }
  return dirty;
}

void MemoryHierarchy::DowngradeElsewhere(CoreId core, PhysAddr line) {
  LineDirectoryEntry* entry = directory_.Find(line);
  if (entry == nullptr) {
    return;
  }
  std::uint64_t others = entry->dirty() & ~Bit(core);
  while (others != 0) {
    const auto c = static_cast<CoreId>(std::countr_zero(others));
    others &= others - 1;
    (void)l1_[c].MarkClean(line);
    (void)l2_[c].MarkClean(line);
  }
  entry->l1_dirty &= Bit(core);
  entry->l2_dirty &= Bit(core);
}

void MemoryHierarchy::PrefetchNextLine(CoreId core, PhysAddr line) {
  const PhysAddr next = line + kCacheLineSize;
  if (const LineDirectoryEntry* entry = directory_.Find(next);
      entry != nullptr && (entry->sharers() & Bit(core)) != 0) {
    return;  // already resident in this core's L1 or L2
  }
  ++stats_.prefetches_issued;
  // The prefetch engine walks the same path as a demand fill, but in the
  // background: its latency is not charged to the core.
  const SliceId next_slice = llc_.SliceOf(next);
  bool dirty = false;
  if (llc_.LookupAndTouchOnSlice(next_slice, next)) {
    if (spec_.inclusion == LlcInclusionPolicy::kVictim) {
      dirty = llc_.InvalidateOnSlice(next_slice, next).was_dirty;  // exclusive move to L2
    }
  } else if (spec_.inclusion == LlcInclusionPolicy::kInclusive) {
    HandleLlcEviction(llc_.InsertForCoreOnSlice(core, next_slice, next, /*dirty=*/false));
  }
  Cycles uncharged = 0;
  FillL2(core, next, dirty, &uncharged);
  directory_.GetOrCreate(next).prefetched = true;
}

void MemoryHierarchy::FillL1(CoreId core, PhysAddr line, bool dirty) {
  const auto evicted = l1_[core].Insert(line, dirty);
  {
    LineDirectoryEntry& entry = directory_.GetOrCreate(line);
    entry.l1_sharers |= Bit(core);
    if (dirty) {
      entry.l1_dirty |= Bit(core);
    }
  }
  if (evicted.has_value()) {
    DirRemoveL1(core, evicted->line);
    if (evicted->dirty) {
      // L1 victims land in L2 (which contains them by construction; if a race
      // with an L2 eviction removed the copy, push the dirt to the LLC).
      if (l2_[core].MarkDirty(evicted->line)) {
        directory_.GetOrCreate(evicted->line).l2_dirty |= Bit(core);
      } else if (!llc_.MarkDirty(evicted->line)) {
        // Line is nowhere below: the write-back goes straight to DRAM.
        ++stats_.dirty_writebacks;
      }
    }
  }
}

void MemoryHierarchy::FillL2(CoreId core, PhysAddr line, bool dirty, Cycles* extra_cycles) {
  const auto evicted = l2_[core].Insert(line, dirty);
  {
    LineDirectoryEntry& entry = directory_.GetOrCreate(line);
    entry.l2_sharers |= Bit(core);
    if (dirty) {
      entry.l2_dirty |= Bit(core);
    }
  }
  if (!evicted.has_value()) {
    return;
  }
  DirRemoveL2(core, evicted->line);
  // Keep L1 subset of L2: the victim leaves L1 as well, carrying its dirt.
  const auto l1_state = l1_[core].Invalidate(evicted->line);
  DirRemoveL1(core, evicted->line);
  const bool victim_dirty = evicted->dirty || l1_state.was_dirty;

  if (spec_.inclusion == LlcInclusionPolicy::kInclusive) {
    // The victim is still resident in the (inclusive) LLC; just mark dirt.
    if (victim_dirty) {
      const SliceId victim_slice = llc_.SliceOf(evicted->line);
      ++stats_.dirty_writebacks;
      llc_.MarkDirtyOnSlice(victim_slice, evicted->line);
      *extra_cycles += spec_.latency.writeback_busy + SlicePenalty(core, victim_slice);
    }
    return;
  }

  // Victim (Skylake) mode: L2 evictions fill the LLC. One fused tag scan: a
  // resident copy just absorbs the dirt, an absent line allocates under the
  // core's CAT mask (possibly displacing an LLC victim).
  const SliceId victim_slice = llc_.SliceOf(evicted->line);
  HandleLlcEviction(llc_.FillFromL2OnSlice(core, victim_slice, evicted->line, victim_dirty));
  if (victim_dirty) {
    ++stats_.dirty_writebacks;
    *extra_cycles += spec_.latency.writeback_busy + SlicePenalty(core, victim_slice);
  }
}

void MemoryHierarchy::BackInvalidate(PhysAddr line) {
  LineDirectoryEntry* entry = directory_.Find(line);
  if (entry == nullptr) {
    return;
  }
  std::uint64_t sharers = entry->sharers();
  while (sharers != 0) {
    const auto c = static_cast<CoreId>(std::countr_zero(sharers));
    sharers &= sharers - 1;
    l1_[c].Invalidate(line);
    l2_[c].Invalidate(line);
  }
  // Kills any pending-prefetch record too: back-invalidation (DMA ownership,
  // inclusive LLC eviction, clflush) must not leak prefetch state.
  directory_.Erase(line);
}

void MemoryHierarchy::HandleLlcEviction(const std::optional<EvictedLine>& evicted) {
  if (!evicted.has_value()) {
    return;
  }
  if (evicted->dirty) {
    ++stats_.dirty_writebacks;  // written to DRAM by the LLC, off the core path
  }
  if (spec_.inclusion == LlcInclusionPolicy::kInclusive) {
    BackInvalidate(evicted->line);
  }
}

Cycles MemoryHierarchy::DmaWriteLine(PhysAddr addr) {
  const PhysAddr line = LineBase(addr);
  ++stats_.dma_line_writes;
  // DMA takes ownership: stale copies leave the core caches.
  BackInvalidate(line);
  const SliceId slice = llc_.SliceOf(line);
  // Fused DDIO fill: dirties + promotes a resident line, allocates in the
  // DDIO ways otherwise — one tag scan instead of probe + touch + insert.
  HandleLlcEviction(llc_.DmaFillOnSlice(slice, line));
  return spec_.latency.llc_base + spec_.interconnect->SlicePenalty(0, slice);
}

Cycles MemoryHierarchy::DmaWrite(PhysAddr addr, std::size_t bytes) {
  Cycles total = 0;
  const PhysAddr first = LineBase(addr);
  const PhysAddr last = LineBase(addr + (bytes == 0 ? 0 : bytes - 1));
  for (PhysAddr line = first; line <= last; line += kCacheLineSize) {
    total += DmaWriteLine(line);
  }
  return total;
}

Cycles MemoryHierarchy::DmaReadLine(PhysAddr addr) {
  const PhysAddr line = LineBase(addr);
  ++stats_.dma_line_reads;
  if (llc_.LookupAndTouch(line)) {
    return spec_.latency.llc_base;
  }
  return spec_.latency.llc_base + spec_.latency.dram;
}

Cycles MemoryHierarchy::DmaRead(PhysAddr addr, std::size_t bytes) {
  Cycles total = 0;
  const PhysAddr first = LineBase(addr);
  const PhysAddr last = LineBase(addr + (bytes == 0 ? 0 : bytes - 1));
  for (PhysAddr line = first; line <= last; line += kCacheLineSize) {
    total += DmaReadLine(line);
  }
  return total;
}

void MemoryHierarchy::FlushLine(PhysAddr addr) {
  const PhysAddr line = LineBase(addr);
  BackInvalidate(line);
  llc_.Invalidate(line);
}

void MemoryHierarchy::FlushAll() {
  for (std::size_t core = 0; core < l1_.size(); ++core) {
    l1_[core].Clear();
    l2_[core].Clear();
  }
  llc_.Clear();
  directory_.Clear();
}

void MemoryHierarchy::DirRemoveL1(CoreId core, PhysAddr line) {
  LineDirectoryEntry* entry = directory_.Find(line);
  if (entry == nullptr) {
    return;
  }
  entry->l1_sharers &= ~Bit(core);
  entry->l1_dirty &= ~Bit(core);
  if (entry->empty()) {
    directory_.Erase(line);
  }
}

void MemoryHierarchy::DirRemoveL2(CoreId core, PhysAddr line) {
  LineDirectoryEntry* entry = directory_.Find(line);
  if (entry == nullptr) {
    return;
  }
  entry->l2_sharers &= ~Bit(core);
  entry->l2_dirty &= ~Bit(core);
  if (entry->empty()) {
    directory_.Erase(line);
  }
}

}  // namespace cachedir
