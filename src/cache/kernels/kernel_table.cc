// The specialized-kernel instantiation matrix (docs/architecture.md §13).
//
// Every HierarchyKernel the simulator can run is instantiated here, once:
// 3 sealed hash families (XOR — Haswell/Sandy Bridge presets, XOR+LUT —
// Skylake's 18 slices, modulo — the idealised baseline) × 3 replacement
// policies × 2 inclusion modes. SelectHierarchyKernel maps a materialized
// configuration onto this matrix; combinations outside it (an unrecognised
// SliceHash subclass stays FastSliceHash::Kind::kVirtual) get nullptr and
// run the generic reference path.
#include "src/cache/kernels/hierarchy_kernel.h"

#include "src/cache/hierarchy.h"

namespace cachedir {
namespace {

using Hash = FastSliceHash::Kind;

template <Hash H, ReplacementKind R, LlcInclusionPolicy I>
constexpr HierarchyKernelOps OpsFor(const char* name) {
  using Kernel = HierarchyKernel<H, R, I>;
  return HierarchyKernelOps{
      &Kernel::Access,        &Kernel::AccessRange,     &Kernel::DmaWriteLine,
      &Kernel::DmaReadLine,   &Kernel::DmaWriteRange,   &Kernel::DmaReadRange,
      &Kernel::DmaWriteRangeLut, &Kernel::DmaReadRangeLut, name,
  };
}

// One ops table per matrix cell, named hash+replacement+inclusion.
constexpr HierarchyKernelOps kXorLruInc =
    OpsFor<Hash::kXor, ReplacementKind::kLru, LlcInclusionPolicy::kInclusive>(
        "xor+lru+inclusive");
constexpr HierarchyKernelOps kXorLruVic =
    OpsFor<Hash::kXor, ReplacementKind::kLru, LlcInclusionPolicy::kVictim>("xor+lru+victim");
constexpr HierarchyKernelOps kXorPlruInc =
    OpsFor<Hash::kXor, ReplacementKind::kTreePlru, LlcInclusionPolicy::kInclusive>(
        "xor+plru+inclusive");
constexpr HierarchyKernelOps kXorPlruVic =
    OpsFor<Hash::kXor, ReplacementKind::kTreePlru, LlcInclusionPolicy::kVictim>(
        "xor+plru+victim");
constexpr HierarchyKernelOps kXorRandInc =
    OpsFor<Hash::kXor, ReplacementKind::kRandom, LlcInclusionPolicy::kInclusive>(
        "xor+random+inclusive");
constexpr HierarchyKernelOps kXorRandVic =
    OpsFor<Hash::kXor, ReplacementKind::kRandom, LlcInclusionPolicy::kVictim>(
        "xor+random+victim");

constexpr HierarchyKernelOps kLutLruInc =
    OpsFor<Hash::kXorLut, ReplacementKind::kLru, LlcInclusionPolicy::kInclusive>(
        "xorlut+lru+inclusive");
constexpr HierarchyKernelOps kLutLruVic =
    OpsFor<Hash::kXorLut, ReplacementKind::kLru, LlcInclusionPolicy::kVictim>(
        "xorlut+lru+victim");
constexpr HierarchyKernelOps kLutPlruInc =
    OpsFor<Hash::kXorLut, ReplacementKind::kTreePlru, LlcInclusionPolicy::kInclusive>(
        "xorlut+plru+inclusive");
constexpr HierarchyKernelOps kLutPlruVic =
    OpsFor<Hash::kXorLut, ReplacementKind::kTreePlru, LlcInclusionPolicy::kVictim>(
        "xorlut+plru+victim");
constexpr HierarchyKernelOps kLutRandInc =
    OpsFor<Hash::kXorLut, ReplacementKind::kRandom, LlcInclusionPolicy::kInclusive>(
        "xorlut+random+inclusive");
constexpr HierarchyKernelOps kLutRandVic =
    OpsFor<Hash::kXorLut, ReplacementKind::kRandom, LlcInclusionPolicy::kVictim>(
        "xorlut+random+victim");

constexpr HierarchyKernelOps kModLruInc =
    OpsFor<Hash::kModulo, ReplacementKind::kLru, LlcInclusionPolicy::kInclusive>(
        "modulo+lru+inclusive");
constexpr HierarchyKernelOps kModLruVic =
    OpsFor<Hash::kModulo, ReplacementKind::kLru, LlcInclusionPolicy::kVictim>(
        "modulo+lru+victim");
constexpr HierarchyKernelOps kModPlruInc =
    OpsFor<Hash::kModulo, ReplacementKind::kTreePlru, LlcInclusionPolicy::kInclusive>(
        "modulo+plru+inclusive");
constexpr HierarchyKernelOps kModPlruVic =
    OpsFor<Hash::kModulo, ReplacementKind::kTreePlru, LlcInclusionPolicy::kVictim>(
        "modulo+plru+victim");
constexpr HierarchyKernelOps kModRandInc =
    OpsFor<Hash::kModulo, ReplacementKind::kRandom, LlcInclusionPolicy::kInclusive>(
        "modulo+random+inclusive");
constexpr HierarchyKernelOps kModRandVic =
    OpsFor<Hash::kModulo, ReplacementKind::kRandom, LlcInclusionPolicy::kVictim>(
        "modulo+random+victim");

const HierarchyKernelOps* Pick(Hash hash, ReplacementKind repl, bool inclusive) {
  switch (hash) {
    case Hash::kXor:
      switch (repl) {
        case ReplacementKind::kLru:
          return inclusive ? &kXorLruInc : &kXorLruVic;
        case ReplacementKind::kTreePlru:
          return inclusive ? &kXorPlruInc : &kXorPlruVic;
        case ReplacementKind::kRandom:
          return inclusive ? &kXorRandInc : &kXorRandVic;
      }
      return nullptr;
    case Hash::kXorLut:
      switch (repl) {
        case ReplacementKind::kLru:
          return inclusive ? &kLutLruInc : &kLutLruVic;
        case ReplacementKind::kTreePlru:
          return inclusive ? &kLutPlruInc : &kLutPlruVic;
        case ReplacementKind::kRandom:
          return inclusive ? &kLutRandInc : &kLutRandVic;
      }
      return nullptr;
    case Hash::kModulo:
      switch (repl) {
        case ReplacementKind::kLru:
          return inclusive ? &kModLruInc : &kModLruVic;
        case ReplacementKind::kTreePlru:
          return inclusive ? &kModPlruInc : &kModPlruVic;
        case ReplacementKind::kRandom:
          return inclusive ? &kModRandInc : &kModRandVic;
      }
      return nullptr;
    case Hash::kVirtual:
      return nullptr;  // unrecognised SliceHash subclass: generic path
  }
  return nullptr;
}

}  // namespace

const HierarchyKernelOps* SelectHierarchyKernel(FastSliceHash::Kind hash_kind,
                                                ReplacementKind replacement,
                                                LlcInclusionPolicy inclusion) {
  return Pick(hash_kind, replacement, inclusion == LlcInclusionPolicy::kInclusive);
}

}  // namespace cachedir
