// Compile-time specialized probe/fill kernels for MemoryHierarchy
// (docs/architecture.md §13).
//
// `HierarchyKernel<H, R, I>` is the hierarchy's scalar/batched/DMA access
// chain compiled with the three policies a MachineSpec fixes for its
// lifetime — slice-hash family, replacement policy, LLC inclusion mode — as
// template constants. The generic path in hierarchy.cc re-decides all three
// on every access; here every policy test is `if constexpr`, every cache
// call is the compile-time-policy sibling (`ProbeT<R>`, `InsertT<R>`,
// `SliceOfKind<H>`, ...), and the whole probe → directory → LLC fill →
// replacement update chain inlines into one flat loop per batch.
//
// Bit-identity contract: each method below mirrors its hierarchy.cc
// namesake operation for operation — same directory reads/writes, same CBo
// record points, same fill ordering (FillL2's victim chain must run before
// FillL1 picks its victim), same stats bumps. The generic path stays as the
// reference implementation; kernel_equivalence_test pins every
// instantiation against it over randomized mixed streams, so a divergence
// introduced in either copy is caught, not averaged away.
//
// Only kernel_table.cc (the instantiation matrix) should include this
// header; everything else talks to the kernels through HierarchyKernelOps.
#ifndef CACHEDIRECTOR_SRC_CACHE_KERNELS_HIERARCHY_KERNEL_H_
#define CACHEDIRECTOR_SRC_CACHE_KERNELS_HIERARCHY_KERNEL_H_

#include <cstdint>
#include <optional>
#include <span>

#include "src/cache/hierarchy.h"
#include "src/cache/line_directory.h"
#include "src/cache/set_assoc_cache.h"
#include "src/hash/fast_slice_hash.h"
#include "src/sim/latency_model.h"
#include "src/sim/machine.h"
#include "src/sim/types.h"

namespace cachedir {

template <FastSliceHash::Kind H, ReplacementKind R, LlcInclusionPolicy I>
struct HierarchyKernel {
  using CachedSlice = MemoryHierarchy::CachedSlice;

  static constexpr std::uint64_t Bit(CoreId core) { return std::uint64_t{1} << core; }

  // ---- HierarchyKernelOps entry points ----

  static AccessResult Access(MemoryHierarchy& h, CoreId core, PhysAddr addr, bool is_write) {
    return is_write ? AccessImpl<true>(h, core, addr, h.stats_)
                    : AccessImpl<false>(h, core, addr, h.stats_);
  }

  static BatchResult AccessRange(MemoryHierarchy& h, CoreId core, const AccessBatch& batch,
                                 bool is_write) {
    return is_write ? AccessRangeImpl<true>(h, core, batch)
                    : AccessRangeImpl<false>(h, core, batch);
  }

  static Cycles DmaWriteLine(MemoryHierarchy& h, PhysAddr addr) {
    const PhysAddr line = LineBase(addr);
    return DmaWriteLineTo(h, line, h.llc_.SliceOfKind<H>(line), h.stats_);
  }

  static Cycles DmaReadLine(MemoryHierarchy& h, PhysAddr addr) {
    const PhysAddr line = LineBase(addr);
    return DmaReadLineTo(h, line, h.llc_.SliceOfKind<H>(line), h.stats_);
  }

  // Chunked two-pass DMA loops, mirroring hierarchy.cc: pass one hashes each
  // line's slice (exactly once, with the hash family inlined) into a stack
  // block and prefetches the metadata the fill/probe will touch; pass two
  // replays the chunk against the memoized slices.
  static Cycles DmaWriteRange(MemoryHierarchy& h, PhysAddr addr, std::size_t bytes) {
    constexpr std::size_t kChunk = MemoryHierarchy::kDmaChunkLines;
    HierarchyStats local;
    Cycles total = 0;
    const PhysAddr first = LineBase(addr);
    const PhysAddr last = LineBase(addr + (bytes == 0 ? 0 : bytes - 1));
    SliceId slices[kChunk];
    for (PhysAddr chunk = first; chunk <= last; chunk += kChunk * kCacheLineSize) {
      const std::size_t lines_left = (last - chunk) / kCacheLineSize + 1;
      const std::size_t n = lines_left < kChunk ? lines_left : kChunk;
      for (std::size_t i = 0; i < n; ++i) {
        const PhysAddr line = chunk + i * kCacheLineSize;
        slices[i] = h.llc_.SliceOfKind<H>(line);
        h.directory_.PrefetchEntry(line);
        h.llc_.PrefetchSliceMetaForDma(slices[i], line);
      }
      for (std::size_t i = 0; i < n; ++i) {
        total += DmaWriteLineTo(h, chunk + i * kCacheLineSize, slices[i], local);
      }
    }
    h.stats_ += local;
    return total;
  }

  static Cycles DmaWriteRangeLut(MemoryHierarchy& h, PhysAddr addr, std::size_t bytes,
                                 std::span<const SliceId> line_slices) {
    constexpr std::size_t kChunk = MemoryHierarchy::kDmaChunkLines;
    HierarchyStats local;
    Cycles total = 0;
    const PhysAddr first = LineBase(addr);
    const PhysAddr last = LineBase(addr + (bytes == 0 ? 0 : bytes - 1));
    for (PhysAddr chunk = first; chunk <= last; chunk += kChunk * kCacheLineSize) {
      const std::size_t lines_left = (last - chunk) / kCacheLineSize + 1;
      const std::size_t n = lines_left < kChunk ? lines_left : kChunk;
      const SliceId* slices = line_slices.data() + (chunk - first) / kCacheLineSize;
      for (std::size_t i = 0; i < n; ++i) {
        const PhysAddr line = chunk + i * kCacheLineSize;
        h.directory_.PrefetchEntry(line);
        h.llc_.PrefetchSliceMetaForDma(slices[i], line);
      }
      for (std::size_t i = 0; i < n; ++i) {
        total += DmaWriteLineTo(h, chunk + i * kCacheLineSize, slices[i], local);
      }
    }
    h.stats_ += local;
    return total;
  }

  static Cycles DmaReadRange(MemoryHierarchy& h, PhysAddr addr, std::size_t bytes) {
    constexpr std::size_t kChunk = MemoryHierarchy::kDmaChunkLines;
    HierarchyStats local;
    Cycles total = 0;
    const PhysAddr first = LineBase(addr);
    const PhysAddr last = LineBase(addr + (bytes == 0 ? 0 : bytes - 1));
    SliceId slices[kChunk];
    for (PhysAddr chunk = first; chunk <= last; chunk += kChunk * kCacheLineSize) {
      const std::size_t lines_left = (last - chunk) / kCacheLineSize + 1;
      const std::size_t n = lines_left < kChunk ? lines_left : kChunk;
      for (std::size_t i = 0; i < n; ++i) {
        const PhysAddr line = chunk + i * kCacheLineSize;
        slices[i] = h.llc_.SliceOfKind<H>(line);
        h.llc_.PrefetchSliceMeta(slices[i], line);
      }
      for (std::size_t i = 0; i < n; ++i) {
        total += DmaReadLineTo(h, chunk + i * kCacheLineSize, slices[i], local);
      }
    }
    h.stats_ += local;
    return total;
  }

  static Cycles DmaReadRangeLut(MemoryHierarchy& h, PhysAddr addr, std::size_t bytes,
                                std::span<const SliceId> line_slices) {
    constexpr std::size_t kChunk = MemoryHierarchy::kDmaChunkLines;
    HierarchyStats local;
    Cycles total = 0;
    const PhysAddr first = LineBase(addr);
    const PhysAddr last = LineBase(addr + (bytes == 0 ? 0 : bytes - 1));
    for (PhysAddr chunk = first; chunk <= last; chunk += kChunk * kCacheLineSize) {
      const std::size_t lines_left = (last - chunk) / kCacheLineSize + 1;
      const std::size_t n = lines_left < kChunk ? lines_left : kChunk;
      const SliceId* slices = line_slices.data() + (chunk - first) / kCacheLineSize;
      for (std::size_t i = 0; i < n; ++i) {
        h.llc_.PrefetchSliceMeta(slices[i], chunk + i * kCacheLineSize);
      }
      for (std::size_t i = 0; i < n; ++i) {
        total += DmaReadLineTo(h, chunk + i * kCacheLineSize, slices[i], local);
      }
    }
    h.stats_ += local;
    return total;
  }

 private:
  // Memoized slice lookup — the kernel's sibling of
  // MemoryHierarchy::SliceOfLine, hashing with the compile-time family.
  static SliceId SliceOfLine(MemoryHierarchy& h, LineDirectoryEntry* entry, PhysAddr line) {
    if (entry != nullptr) {
      if (entry->slice_cache != LineDirectoryEntry::kNoSlice) {
        return entry->slice_cache;
      }
      entry->slice_cache = h.llc_.SliceOfKind<H>(line);
      return entry->slice_cache;
    }
    return h.llc_.SliceOfKind<H>(line);
  }

  static void PrefetchCoreAccessMeta(const MemoryHierarchy& h, CoreId core, PhysAddr addr) {
    const PhysAddr line = LineBase(addr);
    h.directory_.PrefetchEntry(line);
    h.l2_[core].PrefetchSetMeta(line);
    h.llc_.PrefetchSliceMeta(h.llc_.SliceOfKind<H>(line), line);
  }

  // Mirror of MemoryHierarchy::Access with `is_write` also lifted to a
  // template constant (the generic body's last runtime policy input).
  template <bool kWrite>
  static AccessResult AccessImpl(MemoryHierarchy& h, CoreId core, PhysAddr addr,
                                 HierarchyStats& stats) {
    const PhysAddr line = LineBase(addr);
    const LatencyModel& lat = h.spec_.latency;
    // One directory lookup up front answers the slice-id memo and both
    // coherence questions for this access; the entry pointer is only
    // dereferenced before the first structural directory mutation.
    LineDirectoryEntry* entry = h.directory_.Find(line);
    const SliceId slice = SliceOfLine(h, entry, line);
    const std::uint64_t others = entry != nullptr ? entry->sharers() & ~Bit(core) : 0;
    const std::uint64_t dirty_others = entry != nullptr ? entry->dirty() & ~Bit(core) : 0;
    AccessResult result;
    result.slice = slice;

    // L1.
    if (const auto l1 = h.l1_[core].template ProbeT<R>(line); l1.hit) {
      ++stats.l1_hits;
      if constexpr (kWrite) {
        result.cycles = lat.store_commit;
        if (!l1.dirty && others != 0) {
          ++stats.upgrades;
          h.InvalidateElsewhere(core, line, stats);
          result.cycles += h.LlcHitLatency(core, slice) + lat.upgrade;
        }
        h.l1_[core].MarkDirty(line);
        h.directory_.GetOrCreate(line).l1_dirty |= Bit(core);
      } else {
        result.cycles = lat.l1_hit;
      }
      result.level = ServedBy::kL1;
      return result;
    }
    ++stats.l1_misses;

    // L2.
    if (const auto l2 = h.l2_[core].template ProbeT<R>(line); l2.hit) {
      ++stats.l2_hits;
      if (entry != nullptr && entry->prefetched) {
        entry->prefetched = false;
        ++stats.prefetch_hits;
      }
      result.cycles = lat.l2_hit;
      if (kWrite && !l2.dirty && others != 0) {
        ++stats.upgrades;
        h.InvalidateElsewhere(core, line, stats);
        result.cycles += h.LlcHitLatency(core, slice) + lat.upgrade;
      }
      result.level = ServedBy::kL2;
      FillL1(h, core, line, /*dirty=*/kWrite, slice, stats);
      return result;
    }
    ++stats.l2_misses;

    // Coherence snoop: a remote Modified copy forwards cache-to-cache.
    if (dirty_others != 0) {
      ++stats.remote_forwards;
      Cycles cycles = h.LlcHitLatency(core, slice) + lat.snoop_transfer;
      bool fill_dirty;
      if constexpr (kWrite) {
        h.InvalidateElsewhere(core, line, stats);
        fill_dirty = true;
      } else {
        h.DowngradeElsewhere(core, line);
        fill_dirty = !h.llc_.MarkDirtyOnSlice(slice, line);
      }
      if constexpr (I == LlcInclusionPolicy::kInclusive) {
        h.llc_.template LookupAndTouchOnSliceT<R>(slice, line);
      }
      FillL2(h, core, line, fill_dirty && !kWrite, slice, &cycles, stats);
      FillL1(h, core, line, /*dirty=*/kWrite || fill_dirty, slice, stats);
      result.cycles = cycles;
      result.level = ServedBy::kRemoteCache;
      return result;
    }

    // LLC.
    Cycles cycles = h.LlcHitLatency(core, slice);
    const bool llc_hit = h.llc_.template LookupAndTouchOnSliceT<R>(slice, line);
    bool fill_dirty = false;
    if (llc_hit) {
      ++stats.llc_hits;
      result.level = ServedBy::kLlc;
      if constexpr (I == LlcInclusionPolicy::kVictim) {
        // Exclusive victim behaviour: the line moves to L2.
        const auto inv = h.llc_.InvalidateOnSlice(slice, line);
        fill_dirty = inv.was_dirty;
      }
    } else {
      ++stats.llc_misses;
      cycles += lat.dram;
      result.level = ServedBy::kDram;
      if constexpr (I == LlcInclusionPolicy::kInclusive) {
        HandleLlcEviction(
            h, h.llc_.template InsertForCoreOnSliceT<R>(core, slice, line, /*dirty=*/false),
            stats);
      }
    }
    if constexpr (kWrite) {
      h.InvalidateElsewhere(core, line, stats);
    }

    FillL2(h, core, line, fill_dirty, slice, &cycles, stats);
    FillL1(h, core, line, /*dirty=*/kWrite, slice, stats);
    if (h.spec_.l2_next_line_prefetch) {
      PrefetchNextLine(h, core, line, stats);
    }
    result.cycles = cycles;
    return result;
  }

  // Mirror of MemoryHierarchy::AccessRange with the per-line call bound to
  // AccessImpl<kWrite> — the fused loop the function-pointer dispatch exists
  // to reach: one flat specialized body per batch, one stats flush.
  template <bool kWrite>
  static BatchResult AccessRangeImpl(MemoryHierarchy& h, CoreId core, const AccessBatch& batch) {
    constexpr std::size_t kLookahead = MemoryHierarchy::kBatchLookahead;
    HierarchyStats local;
    BatchResult result;
    const std::size_t stored = batch.per_line.size();
    if (!batch.gather.empty()) {
      const std::size_t n = batch.gather.size();
      for (std::size_t i = 0; i < n && i < kLookahead; ++i) {
        PrefetchCoreAccessMeta(h, core, batch.gather[i]);
      }
      for (std::size_t i = 0; i < n; ++i) {
        if (kLookahead > 0 && i + kLookahead < n) {
          PrefetchCoreAccessMeta(h, core, batch.gather[i + kLookahead]);
        }
        const AccessResult r = AccessImpl<kWrite>(h, core, batch.gather[i], local);
        result.cycles += r.cycles;
        if (i < stored) {
          batch.per_line[i] = r;
        }
      }
      result.lines = n;
    } else {
      const PhysAddr first = LineBase(batch.addr);
      const PhysAddr last = LineBase(batch.addr + (batch.bytes == 0 ? 0 : batch.bytes - 1));
      constexpr PhysAddr kAheadBytes = kLookahead * kCacheLineSize;
      for (PhysAddr line = first; line <= last && line - first < kAheadBytes;
           line += kCacheLineSize) {
        PrefetchCoreAccessMeta(h, core, line);
      }
      std::size_t i = 0;
      for (PhysAddr line = first; line <= last; line += kCacheLineSize, ++i) {
        if (kLookahead > 0 && last - line >= kAheadBytes) {
          PrefetchCoreAccessMeta(h, core, line + kAheadBytes);
        }
        const AccessResult r = AccessImpl<kWrite>(h, core, line, local);
        result.cycles += r.cycles;
        if (i < stored) {
          batch.per_line[i] = r;
        }
      }
      result.lines = i;
    }
    h.stats_ += local;
    return result;
  }

  static void FillL1(MemoryHierarchy& h, CoreId core, PhysAddr line, bool dirty, SliceId slice,
                     HierarchyStats& stats) {
    const auto evicted = h.l1_[core].template InsertT<R>(line, dirty);
    {
      LineDirectoryEntry& entry = h.directory_.GetOrCreate(line);
      entry.l1_sharers |= Bit(core);
      entry.slice_cache = slice;
      if (dirty) {
        entry.l1_dirty |= Bit(core);
      }
    }
    if (evicted.has_value()) {
      const CachedSlice victim = h.DirRemoveL1(core, evicted->line);
      if (evicted->dirty) {
        if (h.l2_[core].MarkDirty(evicted->line)) {
          h.directory_.GetOrCreate(evicted->line).l2_dirty |= Bit(core);
        } else {
          const SliceId victim_slice =
              victim.known ? victim.slice : h.llc_.SliceOfKind<H>(evicted->line);
          if (!h.llc_.MarkDirtyOnSlice(victim_slice, evicted->line)) {
            // Line is nowhere below: the write-back goes straight to DRAM.
            ++stats.dirty_writebacks;
          }
        }
      }
    }
  }

  static void FillL2(MemoryHierarchy& h, CoreId core, PhysAddr line, bool dirty, SliceId slice,
                     Cycles* extra_cycles, HierarchyStats& stats) {
    const auto evicted = h.l2_[core].template InsertT<R>(line, dirty);
    {
      LineDirectoryEntry& entry = h.directory_.GetOrCreate(line);
      entry.l2_sharers |= Bit(core);
      entry.slice_cache = slice;
      if (dirty) {
        entry.l2_dirty |= Bit(core);
      }
    }
    if (!evicted.has_value()) {
      return;
    }
    // Victim bookkeeping order matters for bit-identity: directory memo read
    // first, then the L1 subset invalidation — before any LLC mutation.
    const CachedSlice cached = h.DirRemoveL2(core, evicted->line);
    const auto l1_state = h.l1_[core].Invalidate(evicted->line);
    h.DirRemoveL1(core, evicted->line);
    const bool victim_dirty = evicted->dirty || l1_state.was_dirty;

    if constexpr (I == LlcInclusionPolicy::kInclusive) {
      // The victim is still resident in the (inclusive) LLC; just mark dirt.
      if (victim_dirty) {
        const SliceId victim_slice =
            cached.known ? cached.slice : h.llc_.SliceOfKind<H>(evicted->line);
        ++stats.dirty_writebacks;
        h.llc_.MarkDirtyOnSlice(victim_slice, evicted->line);
        *extra_cycles += h.spec_.latency.writeback_busy + h.SlicePenalty(core, victim_slice);
      }
      return;
    } else {
      // Victim (Skylake) mode: L2 evictions fill the LLC in one fused scan.
      const SliceId victim_slice =
          cached.known ? cached.slice : h.llc_.SliceOfKind<H>(evicted->line);
      HandleLlcEviction(
          h,
          h.llc_.template FillFromL2OnSliceT<R>(core, victim_slice, evicted->line, victim_dirty),
          stats);
      if (victim_dirty) {
        ++stats.dirty_writebacks;
        *extra_cycles += h.spec_.latency.writeback_busy + h.SlicePenalty(core, victim_slice);
      }
    }
  }

  static void HandleLlcEviction(MemoryHierarchy& h, const std::optional<EvictedLine>& evicted,
                                HierarchyStats& stats) {
    if (!evicted.has_value()) {
      return;
    }
    if (evicted->dirty) {
      ++stats.dirty_writebacks;
    }
    if constexpr (I == LlcInclusionPolicy::kInclusive) {
      h.BackInvalidate(evicted->line);
    }
  }

  static void PrefetchNextLine(MemoryHierarchy& h, CoreId core, PhysAddr line,
                               HierarchyStats& stats) {
    const PhysAddr next = line + kCacheLineSize;
    LineDirectoryEntry* entry = h.directory_.Find(next);
    if (entry != nullptr && (entry->sharers() & Bit(core)) != 0) {
      return;  // already resident in this core's L1 or L2
    }
    ++stats.prefetches_issued;
    const SliceId next_slice = SliceOfLine(h, entry, next);
    bool dirty = false;
    if (h.llc_.template LookupAndTouchOnSliceT<R>(next_slice, next)) {
      if constexpr (I == LlcInclusionPolicy::kVictim) {
        dirty = h.llc_.InvalidateOnSlice(next_slice, next).was_dirty;
      }
    } else if constexpr (I == LlcInclusionPolicy::kInclusive) {
      HandleLlcEviction(
          h, h.llc_.template InsertForCoreOnSliceT<R>(core, next_slice, next, /*dirty=*/false),
          stats);
    }
    Cycles uncharged = 0;
    FillL2(h, core, next, dirty, next_slice, &uncharged, stats);
    h.directory_.GetOrCreate(next).prefetched = true;
  }

  static Cycles DmaWriteLineTo(MemoryHierarchy& h, PhysAddr line, SliceId slice,
                               HierarchyStats& stats) {
    ++stats.dma_line_writes;
    // DMA takes ownership: stale copies leave the core caches, then the
    // fused DDIO fill dirties/promotes a resident line or allocates in the
    // DDIO ways.
    h.BackInvalidate(line);
    HandleLlcEviction(h, h.llc_.template DmaFillOnSliceT<R>(slice, line), stats);
    return h.spec_.latency.llc_base + h.SlicePenalty(0, slice);
  }

  static Cycles DmaReadLineTo(MemoryHierarchy& h, PhysAddr line, SliceId slice,
                              HierarchyStats& stats) {
    ++stats.dma_line_reads;
    if (h.llc_.template LookupAndTouchOnSliceT<R>(slice, line)) {
      return h.spec_.latency.llc_base;
    }
    return h.spec_.latency.llc_base + h.spec_.latency.dram;
  }
};

}  // namespace cachedir

#endif  // CACHEDIRECTOR_SRC_CACHE_KERNELS_HIERARCHY_KERNEL_H_
