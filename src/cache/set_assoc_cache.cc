#include "src/cache/set_assoc_cache.h"

#include <algorithm>
#include <stdexcept>

namespace cachedir {

SetAssocCache::SetAssocCache(const Config& config)
    : ways_(config.num_ways),
      ways32_(static_cast<std::uint32_t>(config.num_ways)),
      set_mask_(config.num_sets - 1),
      repl_(config.replacement),
      rng_(config.seed) {
  if (config.num_sets == 0 || !std::has_single_bit(config.num_sets)) {
    throw std::invalid_argument("SetAssocCache: num_sets must be a power of two");
  }
  if (config.num_ways == 0 || config.num_ways > 64) {
    throw std::invalid_argument("SetAssocCache: num_ways must be in 1..64");
  }
  tags_.assign(config.num_sets * ways_, 0);
  valid_.assign(config.num_sets, 0);
  dirty_.assign(config.num_sets, 0);
  switch (repl_) {
    case ReplacementKind::kLru:
      stamps_.assign(config.num_sets * ways_, 0);
      ticks_.assign(config.num_sets, 0);
      break;
    case ReplacementKind::kTreePlru:
      plru_.assign(config.num_sets, 0);
      break;
    case ReplacementKind::kRandom:
      break;
  }
}

std::uint32_t SetAssocCache::ChooseVictim(std::size_t set, std::uint64_t candidate_mask) {
  switch (repl_) {
    case ReplacementKind::kLru:
      return replacement::LruVictim(stamps_.data() + set * ways_, ways32_, candidate_mask);
    case ReplacementKind::kTreePlru:
      return replacement::PlruVictim(plru_[set], ways32_, candidate_mask);
    case ReplacementKind::kRandom:
      return replacement::RandomVictim(ways32_, candidate_mask, rng_);
  }
  throw std::logic_error("SetAssocCache::ChooseVictim: unknown replacement kind");
}

// Allocates `line` in `set`: an invalid way inside the partition if one
// exists, else the policy's victim among the partition's ways. The line must
// not be present in the set.
std::optional<EvictedLine> SetAssocCache::FillAbsent(std::size_t set, PhysAddr line,
                                                     bool dirty, std::uint64_t way_mask) {
  const std::uint64_t usable =
      ways_ >= 64 ? way_mask : (way_mask & ((std::uint64_t{1} << ways_) - 1));
  if (usable == 0) {
    throw std::invalid_argument("SetAssocCache::Insert: empty way mask");
  }
  const std::size_t base = set * ways_;

  // Prefer an invalid way inside the partition (the dirty bit of an invalid
  // way is clear by invariant).
  const std::uint64_t free = usable & ~valid_[set];
  if (free != 0) {
    const auto way = static_cast<std::uint32_t>(std::countr_zero(free));
    const std::uint64_t bit = std::uint64_t{1} << way;
    tags_[base + way] = line;
    valid_[set] |= bit;
    if (dirty) {
      dirty_[set] |= bit;
    }
    TouchWay(set, way);
    ++resident_;
    return std::nullopt;
  }

  const std::uint32_t victim = ChooseVictim(set, usable);
  const std::uint64_t bit = std::uint64_t{1} << victim;
  EvictedLine evicted{tags_[base + victim], (dirty_[set] & bit) != 0};
  tags_[base + victim] = line;
  if (dirty) {
    dirty_[set] |= bit;
  } else {
    dirty_[set] &= ~bit;
  }
  TouchWay(set, victim);
  return evicted;
}

std::optional<EvictedLine> SetAssocCache::Insert(PhysAddr addr, bool dirty,
                                                 std::uint64_t way_mask) {
  const PhysAddr line = LineBase(addr);
  const std::size_t set = SetIndexOf(line);
  if (FindWay(set, line) != kNoWay) {
    throw std::logic_error("SetAssocCache::Insert: line already present");
  }
  return FillAbsent(set, line, dirty, way_mask);
}

SetAssocCache::FillResult SetAssocCache::Fill(PhysAddr addr, bool dirty,
                                              std::uint64_t way_mask, bool promote_on_hit) {
  const PhysAddr line = LineBase(addr);
  const std::size_t set = SetIndexOf(line);
  const std::uint32_t way = FindWay(set, line);
  FillResult result;
  if (way != kNoWay) {
    result.was_present = true;
    if (dirty) {
      dirty_[set] |= std::uint64_t{1} << way;
    }
    if (promote_on_hit) {
      TouchWay(set, way);
    }
    return result;
  }
  result.evicted = FillAbsent(set, line, dirty, way_mask);
  return result;
}

SetAssocCache::InvalidateResult SetAssocCache::Invalidate(PhysAddr addr) {
  const PhysAddr line = LineBase(addr);
  const std::size_t set = SetIndexOf(line);
  const std::uint32_t way = FindWay(set, line);
  if (way == kNoWay) {
    return InvalidateResult{};
  }
  const std::uint64_t bit = std::uint64_t{1} << way;
  const bool was_dirty = (dirty_[set] & bit) != 0;
  valid_[set] &= ~bit;
  dirty_[set] &= ~bit;  // keep dirty ⊆ valid; the stale tag is masked off
  --resident_;
  return InvalidateResult{true, was_dirty};
}

void SetAssocCache::Clear() {
  // Replacement metadata (stamps, ticks, PLRU bits) deliberately survives,
  // matching the historical behaviour: a cleared array keeps its recency
  // history, which only influences tie-breaks among the refilled lines.
  std::fill(valid_.begin(), valid_.end(), 0);
  std::fill(dirty_.begin(), dirty_.end(), 0);
  resident_ = 0;
}

std::vector<EvictedLine> SetAssocCache::LinesInSet(std::size_t set_index) const {
  std::vector<EvictedLine> out;
  ForEachLineInSet(set_index, [&out](const EvictedLine& entry) { out.push_back(entry); });
  return out;
}

}  // namespace cachedir
