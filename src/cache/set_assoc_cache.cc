#include "src/cache/set_assoc_cache.h"

#include <bit>
#include <stdexcept>

namespace cachedir {

SetAssocCache::SetAssocCache(const Config& config)
    : ways_(config.num_ways), set_mask_(config.num_sets - 1), rng_(config.seed) {
  if (config.num_sets == 0 || !std::has_single_bit(config.num_sets)) {
    throw std::invalid_argument("SetAssocCache: num_sets must be a power of two");
  }
  if (config.num_ways == 0 || config.num_ways > 64) {
    throw std::invalid_argument("SetAssocCache: num_ways must be in 1..64");
  }
  sets_.reserve(config.num_sets);
  for (std::size_t i = 0; i < config.num_sets; ++i) {
    sets_.emplace_back(config.replacement, static_cast<std::uint32_t>(config.num_ways));
  }
}

const SetAssocCache::Way* SetAssocCache::FindWay(PhysAddr line, std::size_t* way_out) const {
  const Set& set = sets_[SetIndexOf(line)];
  for (std::size_t w = 0; w < ways_; ++w) {
    if (set.ways[w].valid && set.ways[w].line == line) {
      if (way_out != nullptr) {
        *way_out = w;
      }
      return &set.ways[w];
    }
  }
  return nullptr;
}

bool SetAssocCache::Contains(PhysAddr addr) const {
  return FindWay(LineBase(addr), nullptr) != nullptr;
}

bool SetAssocCache::Touch(PhysAddr addr) { return Probe(addr).hit; }

SetAssocCache::TouchResult SetAssocCache::Probe(PhysAddr addr) {
  const PhysAddr line = LineBase(addr);
  std::size_t way = 0;
  const Way* w = FindWay(line, &way);
  if (w == nullptr) {
    return TouchResult{};
  }
  sets_[SetIndexOf(line)].repl.OnAccess(static_cast<std::uint32_t>(way));
  return TouchResult{true, w->dirty};
}

bool SetAssocCache::MarkDirty(PhysAddr addr) {
  const PhysAddr line = LineBase(addr);
  std::size_t way = 0;
  if (FindWay(line, &way) == nullptr) {
    return false;
  }
  sets_[SetIndexOf(line)].ways[way].dirty = true;
  return true;
}

bool SetAssocCache::MarkClean(PhysAddr addr) {
  const PhysAddr line = LineBase(addr);
  std::size_t way = 0;
  if (FindWay(line, &way) == nullptr) {
    return false;
  }
  Set& set = sets_[SetIndexOf(line)];
  const bool was_dirty = set.ways[way].dirty;
  set.ways[way].dirty = false;
  return was_dirty;
}

bool SetAssocCache::IsDirty(PhysAddr addr) const {
  const PhysAddr line = LineBase(addr);
  std::size_t way = 0;
  const Way* w = FindWay(line, &way);
  return w != nullptr && w->dirty;
}

std::optional<EvictedLine> SetAssocCache::Insert(PhysAddr addr, bool dirty,
                                                 std::uint64_t way_mask) {
  const PhysAddr line = LineBase(addr);
  if (Contains(line)) {
    throw std::logic_error("SetAssocCache::Insert: line already present");
  }
  const std::uint64_t usable = ways_ >= 64 ? way_mask
                                           : (way_mask & ((std::uint64_t{1} << ways_) - 1));
  if (usable == 0) {
    throw std::invalid_argument("SetAssocCache::Insert: empty way mask");
  }
  Set& set = sets_[SetIndexOf(line)];

  // Prefer an invalid way inside the partition.
  for (std::size_t w = 0; w < ways_; ++w) {
    if (((usable >> w) & 1) != 0 && !set.ways[w].valid) {
      set.ways[w] = Way{line, true, dirty};
      set.repl.OnAccess(static_cast<std::uint32_t>(w));
      ++resident_;
      return std::nullopt;
    }
  }

  const std::uint32_t victim = set.repl.ChooseVictim(usable, rng_);
  EvictedLine evicted{set.ways[victim].line, set.ways[victim].dirty};
  set.ways[victim] = Way{line, true, dirty};
  set.repl.OnAccess(victim);
  return evicted;
}

SetAssocCache::InvalidateResult SetAssocCache::Invalidate(PhysAddr addr) {
  const PhysAddr line = LineBase(addr);
  std::size_t way = 0;
  if (FindWay(line, &way) == nullptr) {
    return InvalidateResult{};
  }
  Set& set = sets_[SetIndexOf(line)];
  const bool dirty = set.ways[way].dirty;
  set.ways[way] = Way{};
  --resident_;
  return InvalidateResult{true, dirty};
}

void SetAssocCache::Clear() {
  for (Set& set : sets_) {
    for (Way& way : set.ways) {
      way = Way{};
    }
  }
  resident_ = 0;
}

std::vector<EvictedLine> SetAssocCache::LinesInSet(std::size_t set_index) const {
  std::vector<EvictedLine> out;
  for (const Way& way : sets_[set_index].ways) {
    if (way.valid) {
      out.push_back(EvictedLine{way.line, way.dirty});
    }
  }
  return out;
}

}  // namespace cachedir
