#include "src/cache/set_assoc_cache.h"

#include <stdexcept>

namespace cachedir {

SetAssocCache::SetAssocCache(const Config& config)
    : ways_(config.num_ways),
      ways32_(static_cast<std::uint32_t>(config.num_ways)),
      set_mask_(config.num_sets - 1),
      repl_(config.replacement),
      rng_(config.seed) {
  if (config.num_sets == 0 || !std::has_single_bit(config.num_sets)) {
    throw std::invalid_argument("SetAssocCache: num_sets must be a power of two");
  }
  if (config.num_ways == 0 || config.num_ways > 64) {
    throw std::invalid_argument("SetAssocCache: num_ways must be in 1..64");
  }
  tags_.assign(config.num_sets * ways_, 0);
  scalars_.assign(config.num_sets, SetScalars{});
  if (repl_ == ReplacementKind::kLru) {
    stamps_.assign(config.num_sets * ways_, 0);
  }
}

SetAssocCache::InvalidateResult SetAssocCache::Invalidate(PhysAddr addr) {
  const PhysAddr line = LineBase(addr);
  const std::size_t set = SetIndexOf(line);
  const std::uint32_t way = FindWay(set, line);
  if (way == kNoWay) {
    return InvalidateResult{};
  }
  const std::uint64_t bit = std::uint64_t{1} << way;
  const bool was_dirty = (scalars_[set].dirty & bit) != 0;
  scalars_[set].valid &= ~bit;
  scalars_[set].dirty &= ~bit;  // keep dirty ⊆ valid; the stale tag is masked off
  --resident_;
  return InvalidateResult{true, was_dirty};
}

void SetAssocCache::Clear() {
  // Replacement metadata (stamps, ticks, PLRU bits) deliberately survives,
  // matching the historical behaviour: a cleared array keeps its recency
  // history, which only influences tie-breaks among the refilled lines.
  for (SetScalars& s : scalars_) {
    s.valid = 0;
    s.dirty = 0;
  }
  resident_ = 0;
}

std::vector<EvictedLine> SetAssocCache::LinesInSet(std::size_t set_index) const {
  std::vector<EvictedLine> out;
  ForEachLineInSet(set_index, [&out](const EvictedLine& entry) { out.push_back(entry); });
  return out;
}

}  // namespace cachedir
