// Replacement policies over flat, caller-owned metadata.
//
// Real parts use LRU approximations; the simulator offers true LRU (default,
// matching the paper's description of the eviction behaviour it relies on),
// tree-PLRU (closer to shipped silicon) and random (a pessimistic baseline
// for ablation benches).
//
// The policies are stateless inline primitives operating on metadata the
// caller owns: LRU reads a per-way stamp array and a per-set tick counter,
// tree-PLRU a single uint64 of node bits per set, random only an Rng.
// `SetAssocCache` keeps that metadata in flat arrays indexed by
// set * ways + way (see docs/architecture.md §10), so choosing a victim
// never chases a per-set object; `ReplacementState` below wraps the same
// primitives for single-set callers (policy unit tests, ablation benches).
#ifndef CACHEDIRECTOR_SRC_CACHE_REPLACEMENT_H_
#define CACHEDIRECTOR_SRC_CACHE_REPLACEMENT_H_

#include <bit>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

#include "src/sim/replacement_kind.h"
#include "src/sim/rng.h"

namespace cachedir {
namespace replacement {

// True LRU victim: the candidate way with the smallest stamp. `stamps` holds
// one last-access tick per way of the set; `candidate_mask` bit i enables
// way i and is never zero.
inline std::uint32_t LruVictim(const std::uint64_t* stamps, std::uint32_t num_ways,
                               std::uint64_t candidate_mask) {
  std::uint32_t victim = num_ways;
  std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
  // Iterate only the candidate bits — way-partitioned fills (DDIO's 2 of 20
  // ways) would otherwise scan every way of the set. Ascending bit order with
  // <= keeps the historical tie-break: equal stamps pick the highest
  // candidate way.
  std::uint64_t mask =
      num_ways >= 64 ? candidate_mask
                     : candidate_mask & ((std::uint64_t{1} << num_ways) - 1);
  while (mask != 0) {
    const auto way = static_cast<std::uint32_t>(std::countr_zero(mask));
    mask &= mask - 1;
    if (stamps[way] <= best) {
      best = stamps[way];
      victim = way;
    }
  }
  if (victim == num_ways) {
    throw std::logic_error("replacement::LruVictim: empty candidate mask");
  }
  return victim;
}

// Promotes `way` in a classic binary-tree PLRU over the next power of two
// >= num_ways. Node i has children 2i+1 / 2i+2; bit false means "left half
// is older". `bits` is the set's packed node-bit word.
inline void PlruTouch(std::uint64_t& bits, std::uint32_t num_ways, std::uint32_t way) {
  std::uint32_t span = std::bit_ceil(num_ways);
  std::uint32_t node = 0;
  std::uint32_t lo = 0;
  while (span > 1) {
    const std::uint32_t half = span / 2;
    const bool right = way >= lo + half;
    // Point away from the touched way.
    if (right) {
      bits &= ~(std::uint64_t{1} << node);
      lo += half;
      node = 2 * node + 2;
    } else {
      bits |= std::uint64_t{1} << node;
      node = 2 * node + 1;
    }
    span = half;
  }
}

// Tree-PLRU victim: walk the tree toward the "older" half, but never descend
// into a subtree with no allowed candidates.
inline std::uint32_t PlruVictim(std::uint64_t bits, std::uint32_t num_ways,
                                std::uint64_t candidate_mask) {
  const std::uint32_t full_span = std::bit_ceil(num_ways);
  std::uint32_t span = full_span;
  std::uint32_t node = 0;
  std::uint32_t lo = 0;
  const auto subtree_has_candidate = [&](std::uint32_t start, std::uint32_t len) {
    for (std::uint32_t w = start; w < start + len && w < num_ways; ++w) {
      if ((candidate_mask >> w) & 1) {
        return true;
      }
    }
    return false;
  };
  if (!subtree_has_candidate(0, full_span)) {
    throw std::logic_error("replacement::PlruVictim: empty candidate mask");
  }
  while (span > 1) {
    const std::uint32_t half = span / 2;
    bool go_right = ((bits >> node) & 1) != 0;
    if (go_right && !subtree_has_candidate(lo + half, half)) {
      go_right = false;
    } else if (!go_right && !subtree_has_candidate(lo, half)) {
      go_right = true;
    }
    if (go_right) {
      lo += half;
      node = 2 * node + 2;
    } else {
      node = 2 * node + 1;
    }
    span = half;
  }
  return lo;
}

// Uniform pick among the candidate ways; consumes exactly one Rng draw.
inline std::uint32_t RandomVictim(std::uint32_t num_ways, std::uint64_t candidate_mask,
                                  Rng& rng) {
  const int count = std::popcount(candidate_mask);
  if (count == 0) {
    throw std::logic_error("replacement::RandomVictim: empty candidate mask");
  }
  int pick = static_cast<int>(rng.UniformIndex(static_cast<std::size_t>(count)));
  for (std::uint32_t way = 0; way < num_ways; ++way) {
    if ((candidate_mask >> way) & 1) {
      if (pick-- == 0) {
        return way;
      }
    }
  }
  throw std::logic_error("replacement::RandomVictim: mask has bits beyond num_ways");
}

}  // namespace replacement

// Replacement metadata for ONE set, wrapping the flat primitives above.
// Used by the policy unit tests and the replacement ablation bench;
// `SetAssocCache` owns its metadata directly and does not instantiate this.
// The caller guarantees way indices are < num_ways.
class ReplacementState {
 public:
  ReplacementState(ReplacementKind kind, std::uint32_t num_ways);

  // Promote `way` to most-recently-used.
  void OnAccess(std::uint32_t way);

  // Pick a victim among the ways enabled in `candidate_mask` (bit i = way i).
  // `candidate_mask` is never zero. `rng` is used only by kRandom.
  std::uint32_t ChooseVictim(std::uint64_t candidate_mask, Rng& rng) const;

  ReplacementKind kind() const { return kind_; }

 private:
  ReplacementKind kind_;
  std::uint32_t num_ways_;
  std::uint64_t tick_ = 0;
  std::vector<std::uint64_t> stamps_;  // LRU: last-access tick per way
  std::uint64_t plru_bits_ = 0;        // tree-PLRU node bits
};

}  // namespace cachedir

#endif  // CACHEDIRECTOR_SRC_CACHE_REPLACEMENT_H_
