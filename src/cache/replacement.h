// Per-set replacement policies.
//
// Real parts use LRU approximations; the simulator offers true LRU (default,
// matching the paper's description of the eviction behaviour it relies on),
// tree-PLRU (closer to shipped silicon) and random (a pessimistic baseline
// for ablation benches).
#ifndef CACHEDIRECTOR_SRC_CACHE_REPLACEMENT_H_
#define CACHEDIRECTOR_SRC_CACHE_REPLACEMENT_H_

#include <cstdint>
#include <vector>

#include "src/sim/replacement_kind.h"
#include "src/sim/rng.h"

namespace cachedir {

// Replacement metadata for one cache set. One instance per set; ways are
// addressed by index. The caller guarantees way indices are < num_ways.
class ReplacementState {
 public:
  ReplacementState(ReplacementKind kind, std::uint32_t num_ways);

  // Promote `way` to most-recently-used.
  void OnAccess(std::uint32_t way);

  // Pick a victim among the ways enabled in `candidate_mask` (bit i = way i).
  // `candidate_mask` is never zero. `rng` is used only by kRandom.
  std::uint32_t ChooseVictim(std::uint64_t candidate_mask, Rng& rng) const;

  ReplacementKind kind() const { return kind_; }

 private:
  std::uint32_t LruVictim(std::uint64_t candidate_mask) const;
  std::uint32_t PlruVictim(std::uint64_t candidate_mask) const;
  void PlruTouch(std::uint32_t way);

  ReplacementKind kind_;
  std::uint32_t num_ways_;
  std::uint64_t tick_ = 0;
  std::vector<std::uint64_t> stamps_;  // LRU: last-access tick per way
  std::uint64_t plru_bits_ = 0;        // tree-PLRU node bits
};

}  // namespace cachedir

#endif  // CACHEDIRECTOR_SRC_CACHE_REPLACEMENT_H_
