#include "src/cache/sliced_llc.h"

#include <stdexcept>

namespace cachedir {
namespace {

std::shared_ptr<const SliceHash> RequireHash(std::shared_ptr<const SliceHash> hash) {
  if (hash == nullptr) {
    throw std::invalid_argument("SlicedLlc: null slice hash");
  }
  return hash;
}

}  // namespace

SlicedLlc::SlicedLlc(const Config& config, std::shared_ptr<const SliceHash> hash)
    : hash_(RequireHash(std::move(hash))),
      fast_hash_(*hash_),
      num_ways_(config.num_ways),
      ddio_mask_((std::uint64_t{1} << config.ddio_ways) - 1),
      cos_masks_(kMaxCos, (std::uint64_t{1} << config.num_ways) - 1),
      cbo_(hash_->num_slices()) {
  if (config.ddio_ways == 0 || config.ddio_ways > config.num_ways) {
    throw std::invalid_argument("SlicedLlc: ddio_ways must be in 1..num_ways");
  }
  SetAssocCache::Config slice_config;
  slice_config.num_sets = config.num_sets;
  slice_config.num_ways = config.num_ways;
  slice_config.replacement = config.replacement;
  slices_.reserve(hash_->num_slices());
  for (std::size_t i = 0; i < hash_->num_slices(); ++i) {
    slice_config.seed = config.seed + i;
    slices_.emplace_back(slice_config);
  }
}

bool SlicedLlc::IsDirty(PhysAddr addr) const { return slices_[SliceOf(addr)].IsDirty(addr); }

void SlicedLlc::Clear() {
  for (SetAssocCache& s : slices_) {
    s.Clear();
  }
}

void SlicedLlc::SetCosWayMask(std::uint32_t cos, std::uint64_t way_mask) {
  if (cos >= kMaxCos) {
    throw std::invalid_argument("SlicedLlc: COS id out of range");
  }
  const std::uint64_t full = (std::uint64_t{1} << num_ways_) - 1;
  if ((way_mask & full) == 0) {
    throw std::invalid_argument("SlicedLlc: COS way mask selects no ways");
  }
  cos_masks_[cos] = way_mask & full;
}

void SlicedLlc::AssignCoreToCos(CoreId core, std::uint32_t cos) {
  if (cos >= kMaxCos) {
    throw std::invalid_argument("SlicedLlc: COS id out of range");
  }
  if (core_cos_.size() <= core) {
    core_cos_.resize(core + 1, 0);
  }
  core_cos_[core] = cos;
}

}  // namespace cachedir
