#include "src/cache/line_directory.h"

#include <utility>

namespace cachedir {

LineDirectory::LineDirectory() : shards_(kNumShards), filter_(kFilterBuckets, 0) {
  for (Shard& shard : shards_) {
    shard.slots.resize(kInitialShardCapacity);
    shard.mask = kInitialShardCapacity - 1;
  }
}

void LineDirectory::Shard::Grow() {
  std::vector<Slot> old = std::move(slots);
  slots.assign(old.size() * 2, Slot{});
  mask = slots.size() - 1;
  for (Slot& slot : old) {
    if (!slot.used) {
      continue;
    }
    std::size_t i = HashLine(slot.key) & mask;
    while (slots[i].used) {
      i = (i + 1) & mask;
    }
    slots[i] = slot;
  }
}

LineDirectoryEntry& LineDirectory::GetOrCreate(PhysAddr addr) {
  const PhysAddr line = LineBase(addr);
  const std::uint64_t hash = HashLine(line);
  const std::size_t shard_index = ShardIndexFor(line, hash);
  Shard& shard = shards_[shard_index];
  std::size_t i = hash & shard.mask;
  while (shard.slots[i].used) {
    if (shard.slots[i].key == line) {
      return shard.slots[i].entry;
    }
    i = (i + 1) & shard.mask;
  }
  if (shard.size + 1 > shard.slots.size() - shard.slots.size() / 4) {
    shard.Grow();
    i = hash & shard.mask;
    while (shard.slots[i].used) {
      i = (i + 1) & shard.mask;
    }
  }
  shard.slots[i] = Slot{line, LineDirectoryEntry{}, true};
  ++shard.size;
  if (std::uint8_t& count = filter_[FilterByteFor(shard_index, hash)]; count != 255) {
    ++count;  // saturated buckets stay sticky at 255
  }
  return shard.slots[i].entry;
}

void LineDirectory::Erase(PhysAddr addr) {
  const PhysAddr line = LineBase(addr);
  const std::uint64_t hash = HashLine(line);
  const std::size_t shard_index = ShardIndexFor(line, hash);
  Shard& shard = shards_[shard_index];
  std::size_t i = hash & shard.mask;
  while (true) {
    if (!shard.slots[i].used) {
      return;  // absent
    }
    if (shard.slots[i].key == line) {
      break;
    }
    i = (i + 1) & shard.mask;
  }
  shard.slots[i] = Slot{};
  --shard.size;
  if (std::uint8_t& count = filter_[FilterByteFor(shard_index, hash)]; count != 255) {
    --count;  // a saturated bucket can never prove absence again
  }
  // Backward-shift deletion: pull displaced followers of the probe chain
  // back over the hole so lookups never need tombstones.
  std::size_t j = i;
  while (true) {
    j = (j + 1) & shard.mask;
    if (!shard.slots[j].used) {
      return;
    }
    const std::size_t ideal = HashLine(shard.slots[j].key) & shard.mask;
    // Move slot j into the hole at i unless its ideal slot lies cyclically
    // within (i, j] — in that case it is already as close as it may get.
    const bool stays = (i <= j) ? (ideal > i && ideal <= j) : (ideal > i || ideal <= j);
    if (!stays) {
      shard.slots[i] = shard.slots[j];
      shard.slots[j] = Slot{};
      i = j;
    }
  }
}

void LineDirectory::Clear() {
  for (Shard& shard : shards_) {
    shard.slots.assign(kInitialShardCapacity, Slot{});
    shard.mask = kInitialShardCapacity - 1;
    shard.size = 0;
  }
  filter_.assign(filter_.size(), 0);  // keeps the active layout's segment count
}

void LineDirectory::EnableSliceSharding(std::uint32_t num_slices, SliceFn fn, const void* ctx) {
  if (slice_mode_ && num_slices == shards_.size() && fn == slice_fn_ && ctx == slice_ctx_) {
    return;  // already in this layout (engine re-attach)
  }
  std::vector<Shard> old = std::move(shards_);
  slice_mode_ = true;
  slice_fn_ = fn;
  slice_ctx_ = ctx;
  // Per-shard filter segments stay exact (one counter covers one shard's
  // lines only) and total about the same 64 KiB as the flat table.
  slice_filter_buckets_ = num_slices <= 8 ? (std::size_t{1} << 13) : (std::size_t{1} << 12);
  shards_.assign(num_slices, Shard{});
  for (Shard& shard : shards_) {
    shard.slots.resize(kInitialShardCapacity);
    shard.mask = kInitialShardCapacity - 1;
  }
  filter_.assign(num_slices * slice_filter_buckets_, 0);
  for (Shard& shard : old) {
    for (Slot& slot : shard.slots) {
      if (slot.used) {
        GetOrCreate(slot.key) = slot.entry;
      }
    }
  }
}

std::size_t LineDirectory::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.size;
  }
  return total;
}

}  // namespace cachedir
