// The coherence line-state directory: an O(1) mirror of which core caches
// hold each line, replacing the O(num_cores) snoop scans over every private
// tag array that `MemoryHierarchy` used to perform on each access.
//
// One entry per line that is resident in at least one core's L1/L2 (or that
// has a pending prefetch): a sharer bitmask per level, a dirty bitmask per
// level, and the prefetched flag formerly kept in an unbounded side set. The
// hierarchy updates the entry at every tag-array mutation point, so the
// directory mirrors the tag arrays *exactly* — an invariant enforced by
// `directory_property_test`, which cross-checks it against brute-force
// per-core `Contains`/`IsDirty` scans after randomized access sequences.
//
// Storage is a sharded flat hash map: open addressing with linear probing
// and backward-shift deletion (no tombstones), shard chosen by high hash
// bits, slot by low bits. Shards keep probe chains short and resizes small;
// there is no locking — a `MemoryHierarchy` is single-threaded by design
// (the parallel bench harness gives every repetition its own hierarchy).
//
// Lookups are filtered through a small counting occupancy table (64 KiB of
// byte counters indexed by independent hash bits): the directory only holds
// core-resident lines, so the dominant DMA-path lookups miss, and a miss
// usually resolves on one always-cache-hot byte instead of a probe into the
// much larger slot arrays. Counters are exact per bucket (saturating at 255,
// then sticky — a stuck bucket only costs the fallthrough probe), so a zero
// bucket proves absence and the filter never changes results.
#ifndef CACHEDIRECTOR_SRC_CACHE_LINE_DIRECTORY_H_
#define CACHEDIRECTOR_SRC_CACHE_LINE_DIRECTORY_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/sim/types.h"

namespace cachedir {

// Per-line coherence state. Bit c of a mask refers to core c (the hierarchy
// checks num_cores <= 64 at construction).
struct LineDirectoryEntry {
  // slice_cache == kNoSlice until the hierarchy first hashes the line. The
  // slice hash is a pure function of the address, so a cached id can never
  // go stale — it simply dies with the entry. Repeat touches of resident
  // lines skip the Complex Addressing hash entirely (architecture doc §11).
  static constexpr SliceId kNoSlice = static_cast<SliceId>(-1);

  std::uint64_t l1_sharers = 0;  // cores whose L1 holds the line
  std::uint64_t l2_sharers = 0;  // cores whose L2 holds the line
  std::uint64_t l1_dirty = 0;    // subset of l1_sharers with the dirty bit
  std::uint64_t l2_dirty = 0;    // subset of l2_sharers with the dirty bit
  SliceId slice_cache = kNoSlice;  // memoized SliceOf(line), or kNoSlice
  bool prefetched = false;         // issued by the L2 prefetcher, not yet demanded

  std::uint64_t sharers() const { return l1_sharers | l2_sharers; }
  std::uint64_t dirty() const { return l1_dirty | l2_dirty; }
  // An empty entry carries no information and is erased by the hierarchy.
  // Dirty masks are subsets of the sharer masks, so they need no test here.
  // The slice cache is derivable from the key, so it carries no information
  // either and does not keep an entry alive.
  bool empty() const { return (l1_sharers | l2_sharers) == 0 && !prefetched; }
};

class LineDirectory {
 public:
  // Shard selector for slice-sharded mode: maps a line base address to its
  // LLC slice (the epoch engine passes SlicedLlc::SliceOf). Plain function
  // pointer + context, not std::function — Find is the hottest lookup.
  using SliceFn = SliceId (*)(const void* ctx, PhysAddr line);

  LineDirectory();

  // Repartitions the directory into one shard (plus a private filter
  // segment) per LLC slice, shard chosen by `fn(ctx, line)`. Existing
  // entries are rehashed into their slice shards. After this call, all
  // operations on lines of different slices touch disjoint storage, which
  // is what lets the epoch engine's per-slice replay workers mutate the
  // directory concurrently (docs/architecture.md §14). Results are
  // identical in either layout; only the shard arithmetic changes. The
  // switch is one-way for the lifetime of the directory.
  void EnableSliceSharding(std::uint32_t num_slices, SliceFn fn, const void* ctx);

  bool slice_sharded() const { return slice_mode_; }

  // Returns the entry for the line containing `addr`, or nullptr if the
  // directory has none. All lookups normalise to the line base address.
  // Inline: this is the hierarchy's single hottest lookup, and the batched
  // DMA loops flatten it away entirely on the (dominant) filtered misses.
  LineDirectoryEntry* Find(PhysAddr addr) {
    const PhysAddr line = LineBase(addr);
    const std::uint64_t hash = HashLine(line);
    const std::size_t shard_index = ShardIndexFor(line, hash);
    if (filter_[FilterByteFor(shard_index, hash)] == 0) {
      return nullptr;
    }
    Shard& shard = shards_[shard_index];
    std::size_t i = hash & shard.mask;
    while (shard.slots[i].used) {
      if (shard.slots[i].key == line) {
        return &shard.slots[i].entry;
      }
      i = (i + 1) & shard.mask;
    }
    return nullptr;
  }
  const LineDirectoryEntry* Find(PhysAddr addr) const {
    return const_cast<LineDirectory*>(this)->Find(addr);
  }

  // Returns the entry for the line containing `addr`, default-constructing
  // it if absent.
  LineDirectoryEntry& GetOrCreate(PhysAddr addr);

  // Removes the entry for the line containing `addr`, if present.
  void Erase(PhysAddr addr);

  // Drops every entry (wbinvd-style flush).
  void Clear();

  std::size_t size() const;

  // Host-cache hint for batched callers: warm the filter byte a Find of
  // `addr` tests first. The directory only holds core-resident lines, so
  // the batched DMA and range loops that issue this hint overwhelmingly
  // resolve on a zero filter byte without ever probing the slot arrays —
  // prefetching the slot itself would drag one random host line per hinted
  // address through the cache for nothing (measured as a net loss on the
  // DMA-heavy throughput bench). The rare filtered-in lookup pays the slot
  // demand miss instead. No simulated effect either way.
  void PrefetchEntry(PhysAddr addr) const {
    const PhysAddr line = LineBase(addr);
    const std::uint64_t hash = HashLine(line);
    __builtin_prefetch(filter_.data() + FilterByteFor(ShardIndexFor(line, hash), hash));
  }

 private:
  struct Slot {
    PhysAddr key = 0;
    LineDirectoryEntry entry;
    bool used = false;
  };

  struct Shard {
    std::vector<Slot> slots;
    std::size_t size = 0;
    std::size_t mask = 0;  // slots.size() - 1; capacity is a power of two

    void Grow();
  };

  static constexpr std::size_t kNumShards = 16;
  static constexpr std::size_t kInitialShardCapacity = 256;
  static constexpr std::size_t kFilterBuckets = std::size_t{1} << 16;

  // Filter bucket: hash bits 32..47 — disjoint from both the shard selector
  // (top 4 bits) and the slot index (low bits), so filter collisions are
  // independent of probe-chain collisions.
  static std::size_t FilterIndex(std::uint64_t hash) {
    return static_cast<std::size_t>(hash >> 32) & (kFilterBuckets - 1);
  }

  // splitmix64 finalizer over the line number: line addresses differ only in
  // their upper 58 bits, so mix before using low bits as the slot index.
  static std::uint64_t HashLine(PhysAddr line) {
    std::uint64_t x = line >> kCacheLineBits;
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  // Shard selection. Default layout: top 4 hash bits pick one of 16 shards
  // and the filter is one flat 64 KiB table. Slice-sharded layout: the
  // slice hash picks the shard and each shard owns a private filter
  // segment, so concurrent per-slice mutators never share a counter byte.
  std::size_t ShardIndexFor(PhysAddr line, std::uint64_t hash) const {
    if (!slice_mode_) [[likely]] {
      return static_cast<std::size_t>(hash >> 60);
    }
    return slice_fn_(slice_ctx_, line);
  }

  std::size_t FilterByteFor(std::size_t shard_index, std::uint64_t hash) const {
    if (!slice_mode_) [[likely]] {
      return FilterIndex(hash);
    }
    return shard_index * slice_filter_buckets_ + (FilterIndex(hash) & (slice_filter_buckets_ - 1));
  }

  std::vector<Shard> shards_;
  std::vector<std::uint8_t> filter_;  // exact per-bucket entry counters

  bool slice_mode_ = false;
  std::size_t slice_filter_buckets_ = 0;  // power of two, per-shard segment size
  SliceFn slice_fn_ = nullptr;
  const void* slice_ctx_ = nullptr;
};

}  // namespace cachedir

#endif  // CACHEDIRECTOR_SRC_CACHE_LINE_DIRECTORY_H_
