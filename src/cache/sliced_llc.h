// The sliced Last Level Cache.
//
// One SetAssocCache per slice; the Complex Addressing hash routes each line
// to its slice. Allocation can be restricted to way partitions: per-core CAT
// classes of service, and the fixed DDIO partition used by NIC DMA (2 of 20
// ways by default — the "10% of LLC" limit the paper discusses).
#ifndef CACHEDIRECTOR_SRC_CACHE_SLICED_LLC_H_
#define CACHEDIRECTOR_SRC_CACHE_SLICED_LLC_H_

#include <memory>
#include <optional>
#include <vector>

#include "src/cache/set_assoc_cache.h"
#include "src/hash/fast_slice_hash.h"
#include "src/hash/slice_hash.h"
#include "src/uncore/cbo.h"

namespace cachedir {

class SlicedLlc {
 public:
  struct Config {
    std::size_t num_sets = 0;   // per slice
    std::size_t num_ways = 0;   // per slice
    ReplacementKind replacement = ReplacementKind::kLru;
    std::size_t ddio_ways = 2;  // ways NIC DMA may allocate into
    std::uint64_t seed = 1;
  };

  SlicedLlc(const Config& config, std::shared_ptr<const SliceHash> hash);

  std::size_t num_slices() const { return slices_.size(); }
  std::size_t num_ways() const { return num_ways_; }
  const SliceHash& hash() const { return *hash_; }

  // Routes through the sealed FastSliceHash (devirtualized at construction;
  // bit-identical to hash().SliceFor by construction, pinned by hash_test).
  SliceId SliceOf(PhysAddr addr) const { return fast_hash_.SliceFor(addr); }

  // The sealed dispatch itself, for the kernel factory (its Kind keys the
  // specialization matrix) and for compile-time-kind hashing in the kernels.
  const FastSliceHash& fast_hash() const { return fast_hash_; }
  template <FastSliceHash::Kind K>
  SliceId SliceOfKind(PhysAddr addr) const {
    return fast_hash_.SliceForKind<K>(addr);
  }

  // Core-side lookup: records a CBo lookup event on the target slice and
  // promotes the line on hit.
  bool LookupAndTouch(PhysAddr addr) { return LookupAndTouchOnSlice(SliceOf(addr), addr); }

  bool Contains(PhysAddr addr) const { return ContainsOnSlice(SliceOf(addr), addr); }
  bool MarkDirty(PhysAddr addr) { return MarkDirtyOnSlice(SliceOf(addr), addr); }
  bool IsDirty(PhysAddr addr) const;

  // Fill on behalf of `core`, honouring the core's CAT way mask.
  std::optional<EvictedLine> InsertForCore(CoreId core, PhysAddr addr, bool dirty) {
    return InsertForCoreOnSlice(core, SliceOf(addr), addr, dirty);
  }

  // Fill on behalf of NIC DMA, honouring the DDIO way partition.
  std::optional<EvictedLine> InsertForDma(PhysAddr addr) {
    return InsertForDmaOnSlice(SliceOf(addr), addr);
  }

  // Slice-hinted variants: callers that already computed SliceOf(addr) (the
  // hierarchy does, to price the interconnect hop) pass it back in rather
  // than paying the complex-addressing hash again per probe. Defined inline:
  // they sit on the hierarchy's per-line fast path and flatten into its
  // batched loops.
  bool LookupAndTouchOnSlice(SliceId slice, PhysAddr addr) {
    const bool hit = slices_[slice].Touch(addr);
    cbo_.RecordLookup(slice, /*miss=*/!hit);
    return hit;
  }
  bool ContainsOnSlice(SliceId slice, PhysAddr addr) const {
    return slices_[slice].Contains(addr);
  }
  bool MarkDirtyOnSlice(SliceId slice, PhysAddr addr) {
    return slices_[slice].MarkDirty(addr);
  }
  std::optional<EvictedLine> InsertForCoreOnSlice(CoreId core, SliceId slice, PhysAddr addr,
                                                  bool dirty) {
    return slices_[slice].Insert(addr, dirty, WayMaskForCore(core));
  }
  std::optional<EvictedLine> InsertForDmaOnSlice(SliceId slice, PhysAddr addr) {
    cbo_.RecordDmaFill(slice);
    return slices_[slice].Insert(addr, /*dirty=*/true, ddio_mask_);
  }

  // Single-scan DDIO fill: a resident line is dirtied + promoted (counted as
  // a CBo lookup hit, as the probe-then-touch sequence used to be), an
  // absent one allocates in the DDIO ways (counted as a CBo DMA fill) and
  // returns the displaced victim. One tag scan where the hierarchy's probe +
  // insert sequence paid three.
  std::optional<EvictedLine> DmaFillOnSlice(SliceId slice, PhysAddr addr) {
    const auto fill = slices_[slice].Fill(addr, /*dirty=*/true, ddio_mask_,
                                          /*promote_on_hit=*/true);
    if (fill.was_present) {
      cbo_.RecordLookup(slice, /*miss=*/false);
      return std::nullopt;
    }
    cbo_.RecordDmaFill(slice);
    return fill.evicted;
  }

  // Single-scan L2-victim fill (victim/exclusive LLC mode): a resident line
  // only absorbs the victim's dirt (no recency promotion, no CBo event — the
  // write-back is not a lookup), an absent one allocates under the core's
  // CAT mask and returns the displaced victim.
  std::optional<EvictedLine> FillFromL2OnSlice(CoreId core, SliceId slice, PhysAddr addr,
                                               bool dirty) {
    return slices_[slice].Fill(addr, dirty, WayMaskForCore(core), /*promote_on_hit=*/false)
        .evicted;
  }

  // Compile-time-replacement siblings of the slice-hinted calls above, for
  // the specialized hierarchy kernels (docs/architecture.md §13). Same
  // bodies with the policy switch resolved at instantiation; CBo events are
  // recorded at exactly the same points.
  template <ReplacementKind R>
  bool LookupAndTouchOnSliceT(SliceId slice, PhysAddr addr) {
    const bool hit = slices_[slice].TouchT<R>(addr);
    cbo_.RecordLookup(slice, /*miss=*/!hit);
    return hit;
  }
  template <ReplacementKind R>
  std::optional<EvictedLine> InsertForCoreOnSliceT(CoreId core, SliceId slice, PhysAddr addr,
                                                   bool dirty) {
    return slices_[slice].InsertT<R>(addr, dirty, WayMaskForCore(core));
  }
  template <ReplacementKind R>
  std::optional<EvictedLine> DmaFillOnSliceT(SliceId slice, PhysAddr addr) {
    const auto fill = slices_[slice].FillT<R>(addr, /*dirty=*/true, ddio_mask_,
                                              /*promote_on_hit=*/true);
    if (fill.was_present) {
      cbo_.RecordLookup(slice, /*miss=*/false);
      return std::nullopt;
    }
    cbo_.RecordDmaFill(slice);
    return fill.evicted;
  }
  template <ReplacementKind R>
  std::optional<EvictedLine> FillFromL2OnSliceT(CoreId core, SliceId slice, PhysAddr addr,
                                                bool dirty) {
    return slices_[slice]
        .FillT<R>(addr, dirty, WayMaskForCore(core), /*promote_on_hit=*/false)
        .evicted;
  }

  SetAssocCache::InvalidateResult Invalidate(PhysAddr addr) {
    return slices_[SliceOf(addr)].Invalidate(addr);
  }
  // Slice-hinted invalidate: skips re-deriving the slice from the hash when
  // the caller already has it.
  SetAssocCache::InvalidateResult InvalidateOnSlice(SliceId slice, PhysAddr addr) {
    return slices_[slice].Invalidate(addr);
  }
  void Clear();

  // ---- Cache Allocation Technology ----
  // Classes of service; every core starts in COS 0 whose mask is all ways.
  void SetCosWayMask(std::uint32_t cos, std::uint64_t way_mask);
  void AssignCoreToCos(CoreId core, std::uint32_t cos);
  std::uint64_t WayMaskForCore(CoreId core) const {
    const std::uint32_t cos = core < core_cos_.size() ? core_cos_[core] : 0;
    return cos_masks_[cos];
  }
  std::uint64_t ddio_way_mask() const { return ddio_mask_; }

  CboCounterBank& cbo() { return cbo_; }
  const CboCounterBank& cbo() const { return cbo_; }

  const SetAssocCache& slice(SliceId s) const { return slices_[s]; }

  // Host-cache hint for batched callers: warm the slice metadata `addr`'s
  // next lookup or fill will touch. No simulated effect.
  void PrefetchSliceMeta(SliceId slice, PhysAddr addr) const {
    slices_[slice].PrefetchSetMeta(addr);
  }

  // DMA-fill flavour: stamp prefetching is narrowed to the DDIO ways — the
  // only stamps the dominant miss-and-allocate path touches. A hit that
  // promotes a line outside the DDIO ways pays its own stamp-line miss.
  void PrefetchSliceMetaForDma(SliceId slice, PhysAddr addr) const {
    slices_[slice].PrefetchSetMetaForFill(addr, ddio_mask_);
  }

 private:
  // The epoch engine needs mutable slice access for its per-slice replay
  // workers (every mutation still goes through SetAssocCache's own methods,
  // journaled for rollback).
  friend class EpochEngine;

  static constexpr std::size_t kMaxCos = 16;

  std::shared_ptr<const SliceHash> hash_;
  FastSliceHash fast_hash_;  // sealed concrete dispatch; *hash_ outlives it
  std::vector<SetAssocCache> slices_;
  std::size_t num_ways_;
  std::uint64_t ddio_mask_;
  std::vector<std::uint64_t> cos_masks_;
  std::vector<std::uint32_t> core_cos_;  // grown on demand
  CboCounterBank cbo_;
};

}  // namespace cachedir

#endif  // CACHEDIRECTOR_SRC_CACHE_SLICED_LLC_H_
