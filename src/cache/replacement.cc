#include "src/cache/replacement.h"

#include <bit>
#include <limits>
#include <stdexcept>

namespace cachedir {

ReplacementState::ReplacementState(ReplacementKind kind, std::uint32_t num_ways)
    : kind_(kind), num_ways_(num_ways) {
  if (num_ways == 0 || num_ways > 64) {
    throw std::invalid_argument("ReplacementState: ways must be in 1..64");
  }
  if (kind_ == ReplacementKind::kLru) {
    stamps_.assign(num_ways_, 0);
  }
}

void ReplacementState::OnAccess(std::uint32_t way) {
  switch (kind_) {
    case ReplacementKind::kLru:
      stamps_[way] = ++tick_;
      break;
    case ReplacementKind::kTreePlru:
      PlruTouch(way);
      break;
    case ReplacementKind::kRandom:
      break;
  }
}

std::uint32_t ReplacementState::ChooseVictim(std::uint64_t candidate_mask, Rng& rng) const {
  switch (kind_) {
    case ReplacementKind::kLru:
      return LruVictim(candidate_mask);
    case ReplacementKind::kTreePlru:
      return PlruVictim(candidate_mask);
    case ReplacementKind::kRandom: {
      const int count = std::popcount(candidate_mask);
      int pick = static_cast<int>(rng.UniformIndex(static_cast<std::size_t>(count)));
      for (std::uint32_t way = 0; way < num_ways_; ++way) {
        if ((candidate_mask >> way) & 1) {
          if (pick-- == 0) {
            return way;
          }
        }
      }
      break;
    }
  }
  throw std::logic_error("ReplacementState::ChooseVictim: empty candidate mask");
}

std::uint32_t ReplacementState::LruVictim(std::uint64_t candidate_mask) const {
  std::uint32_t victim = num_ways_;
  std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
  for (std::uint32_t way = 0; way < num_ways_; ++way) {
    if (((candidate_mask >> way) & 1) != 0 && stamps_[way] <= best) {
      // <= keeps scanning so equal stamps pick the highest allowed way; any
      // deterministic tie-break is fine.
      best = stamps_[way];
      victim = way;
    }
  }
  if (victim == num_ways_) {
    throw std::logic_error("ReplacementState::LruVictim: empty candidate mask");
  }
  return victim;
}

void ReplacementState::PlruTouch(std::uint32_t way) {
  // Classic binary-tree PLRU over the next power of two >= num_ways. Node i
  // has children 2i+1 / 2i+2; bit false means "left half is older".
  std::uint32_t span = std::bit_ceil(num_ways_);
  std::uint32_t node = 0;
  std::uint32_t lo = 0;
  while (span > 1) {
    const std::uint32_t half = span / 2;
    const bool right = way >= lo + half;
    // Point away from the touched way.
    if (right) {
      plru_bits_ &= ~(std::uint64_t{1} << node);
      lo += half;
      node = 2 * node + 2;
    } else {
      plru_bits_ |= std::uint64_t{1} << node;
      node = 2 * node + 1;
    }
    span = half;
  }
}

std::uint32_t ReplacementState::PlruVictim(std::uint64_t candidate_mask) const {
  // Walk the tree toward the "older" half, but never descend into a subtree
  // with no allowed candidates.
  const std::uint32_t full_span = std::bit_ceil(num_ways_);
  std::uint32_t span = full_span;
  std::uint32_t node = 0;
  std::uint32_t lo = 0;
  const auto subtree_has_candidate = [&](std::uint32_t start, std::uint32_t len) {
    for (std::uint32_t w = start; w < start + len && w < num_ways_; ++w) {
      if ((candidate_mask >> w) & 1) {
        return true;
      }
    }
    return false;
  };
  if (!subtree_has_candidate(0, full_span)) {
    throw std::logic_error("ReplacementState::PlruVictim: empty candidate mask");
  }
  while (span > 1) {
    const std::uint32_t half = span / 2;
    bool go_right = ((plru_bits_ >> node) & 1) != 0;
    if (go_right && !subtree_has_candidate(lo + half, half)) {
      go_right = false;
    } else if (!go_right && !subtree_has_candidate(lo, half)) {
      go_right = true;
    }
    if (go_right) {
      lo += half;
      node = 2 * node + 2;
    } else {
      node = 2 * node + 1;
    }
    span = half;
  }
  return lo;
}

}  // namespace cachedir
