#include "src/cache/replacement.h"

namespace cachedir {

ReplacementState::ReplacementState(ReplacementKind kind, std::uint32_t num_ways)
    : kind_(kind), num_ways_(num_ways) {
  if (num_ways == 0 || num_ways > 64) {
    throw std::invalid_argument("ReplacementState: ways must be in 1..64");
  }
  if (kind_ == ReplacementKind::kLru) {
    stamps_.assign(num_ways_, 0);
  }
}

void ReplacementState::OnAccess(std::uint32_t way) {
  switch (kind_) {
    case ReplacementKind::kLru:
      stamps_[way] = ++tick_;
      break;
    case ReplacementKind::kTreePlru:
      replacement::PlruTouch(plru_bits_, num_ways_, way);
      break;
    case ReplacementKind::kRandom:
      break;
  }
}

std::uint32_t ReplacementState::ChooseVictim(std::uint64_t candidate_mask, Rng& rng) const {
  switch (kind_) {
    case ReplacementKind::kLru:
      return replacement::LruVictim(stamps_.data(), num_ways_, candidate_mask);
    case ReplacementKind::kTreePlru:
      return replacement::PlruVictim(plru_bits_, num_ways_, candidate_mask);
    case ReplacementKind::kRandom:
      return replacement::RandomVictim(num_ways_, candidate_mask, rng);
  }
  throw std::logic_error("ReplacementState::ChooseVictim: unknown replacement kind");
}

}  // namespace cachedir
