// Fig. 4: reverse-engineering the Complex Addressing hash with uncore
// counters only — polling per address, single-bit flips, verification —
// then printing the recovered matrix next to the ground truth.
#include <cstdio>

#include "bench/common.h"
#include "src/cache/hierarchy.h"
#include "src/hash/presets.h"
#include "src/rev/hash_solver.h"
#include "src/sim/machine.h"

namespace cachedir {
namespace {

void Run() {
  PrintBanner("Fig 4", "reverse-engineered Complex Addressing hash (Haswell, 8 slices)");

  MemoryHierarchy hierarchy(HaswellXeonE52667V3(), HaswellSliceHash());
  SlicePoller poller(hierarchy);
  HashSolver::Params params;
  params.max_bit = 29;  // probes stay inside one simulated 1 GB hugepage
  HashSolver solver(poller, 8, params);
  const RecoveredXorHash recovered = solver.Solve();

  std::printf("linear hash detected : %s\n", recovered.linear ? "yes" : "no");
  std::printf("verification accuracy: %.1f %% over fresh random addresses\n",
              100.0 * recovered.verification_accuracy);
  std::printf("polled addresses     : %llu\n",
              static_cast<unsigned long long>(recovered.polls));
  PrintSectionRule();

  std::printf("Recovered masks (PA bits %u..%u, X = participates):\n", params.min_bit,
              params.max_bit);
  for (const auto& row : FormatHashMatrix(recovered.masks, params.min_bit, params.max_bit)) {
    std::printf("  %s\n", row.c_str());
  }
  PrintSectionRule();

  const auto truth_owner = HaswellSliceHash();
  const auto* truth = dynamic_cast<const XorSliceHash*>(truth_owner.get());
  std::printf("Ground-truth masks over the same bit window:\n");
  std::vector<std::uint64_t> truth_masks;
  const std::uint64_t window =
      ((std::uint64_t{1} << (params.max_bit + 1)) - 1) & ~((std::uint64_t{1} << 6) - 1);
  for (const std::uint64_t m : truth->masks()) {
    truth_masks.push_back(m & window);
  }
  for (const auto& row : FormatHashMatrix(truth_masks, params.min_bit, params.max_bit)) {
    std::printf("  %s\n", row.c_str());
  }
  bool exact = recovered.masks == truth_masks;
  std::printf("exact match: %s\n", exact ? "yes" : "NO — method failed");
}

}  // namespace
}  // namespace cachedir

int main() {
  cachedir::Run();
  return 0;
}
