// Shared helpers for the figure/table benches: uniform console output, and
// the deterministic parallel repetition runner every multi-run bench uses.
#ifndef CACHEDIRECTOR_BENCH_COMMON_H_
#define CACHEDIRECTOR_BENCH_COMMON_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <type_traits>
#include <vector>

#include "src/sim/host_parallel.h"

namespace cachedir {

inline void PrintBanner(const std::string& artifact, const std::string& description) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", artifact.c_str(), description.c_str());
  std::printf("==============================================================\n");
}

inline void PrintSectionRule() {
  std::printf("--------------------------------------------------------------\n");
}

// ---- Deterministic parallel repetition runner -------------------------------
//
// The multi-run benches replay dozens of *independent* repetitions: each one
// builds its own hierarchy/mempool/traffic world from a seed and returns a
// result value. These helpers fan the repetitions out over a host thread
// pool. Determinism argument: a repetition shares no mutable state with any
// other (it owns its hierarchy and RNGs), host time is never read, and the
// results vector is indexed by repetition — so merging happens in repetition
// order no matter which thread finished first. Output is bit-identical to
// the serial loop; only time-to-result changes.
//
// `BenchThreadCount` and `ParallelFor` now live in src/sim/host_parallel.h
// (promoted so the epoch engine shares the machinery); this header keeps
// re-exporting them so bench code is unchanged.

// ---- Host timing shim -------------------------------------------------------
//
// The ONE place the tree may read the host clock; detlint's wall-clock rule
// whitelists bench/common.{h,cc} and nothing else. Host time is report-only
// plumbing (stderr lines, BENCH_*.json perf baselines): it must never feed
// back into a simulated quantity, or the experiment stops being
// reproducible. The <chrono> include lives in common.cc so no other
// translation unit picks up a clock through this header.
class HostTimer {
 public:
  // Starts timing at construction.
  HostTimer();

  // Restarts the epoch.
  void Restart();

  // Host seconds elapsed since construction / the last Restart().
  double Seconds() const;

 private:
  std::uint64_t start_ns_;  // monotonic host nanoseconds
};

// Runs fn(rep, base_seed + rep) for rep in 0..n-1 in parallel and returns
// the results in repetition order.
template <typename Fn>
auto RunRepetitions(std::size_t n, std::uint64_t base_seed, Fn&& fn) {
  using Result = std::invoke_result_t<Fn&, std::size_t, std::uint64_t>;
  static_assert(!std::is_void_v<Result>, "RunRepetitions needs a result; use ParallelFor");
  std::vector<Result> results(n);
  ParallelFor(n, [&](std::size_t rep) { results[rep] = fn(rep, base_seed + rep); });
  return results;
}

}  // namespace cachedir

#endif  // CACHEDIRECTOR_BENCH_COMMON_H_
