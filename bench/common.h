// Shared console-output helpers for the figure/table benches. Every bench
// prints the rows/series of the corresponding paper artifact in a uniform,
// greppable format.
#ifndef CACHEDIRECTOR_BENCH_COMMON_H_
#define CACHEDIRECTOR_BENCH_COMMON_H_

#include <cstdio>
#include <string>

namespace cachedir {

inline void PrintBanner(const std::string& artifact, const std::string& description) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", artifact.c_str(), description.c_str());
  std::printf("==============================================================\n");
}

inline void PrintSectionRule() {
  std::printf("--------------------------------------------------------------\n");
}

}  // namespace cachedir

#endif  // CACHEDIRECTOR_BENCH_COMMON_H_
