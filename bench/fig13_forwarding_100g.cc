// Fig. 13 (+ Table 3 row 1): simple forwarding with campus-mix traffic
// offered at 100 Gbps over 8 cores with RSS — end-to-end latency
// percentiles, improvement, and delivered throughput at the NIC ceiling.
//
// With --json=PATH the bench also writes host wall-seconds for the whole
// experiment (both arms, all repetitions) through bench/common's HostTimer —
// the second point tools/check_perf_baseline.py tracks, exercising the full
// NFV element pipeline where sim_throughput_bench stresses raw hierarchy
// accesses. Report-only plumbing: stdout stays deterministic either way.
#include <cstdio>
#include <cstring>
#include <thread>

#include "bench/common.h"
#include "bench/nfv_experiment.h"

namespace cachedir {
namespace {

NfvExperiment Experiment(bool cache_director) {
  NfvExperiment e;
  e.app = NfvExperiment::App::kForwarding;
  e.cache_director = cache_director;
  e.steering = NicSteering::kRss;
  e.traffic.size_mode = TrafficConfig::SizeMode::kCampusMix;
  e.traffic.rate_mode = TrafficConfig::RateMode::kGbps;
  e.traffic.rate_gbps = 100.0;
  e.warmup_packets = 4000;
  e.measured_packets = 20000;
  e.num_runs = 15;
  return e;
}

void Run(const char* json_path) {
  PrintBanner("Fig 13", "forwarding latency, campus mix @ 100 Gbps, 8 cores, RSS");
  HostTimer timer;
  const NfvAggregate dpdk = RunNfvMany(Experiment(false));
  const NfvAggregate cd = RunNfvMany(Experiment(true));
  const double host_seconds = timer.Seconds();
  PrintComparisonRows(dpdk, cd);
  PrintSectionRule();
  std::printf("throughput: DPDK %.2f Gbps, DPDK+CD %.2f Gbps (paper: 76.58, +31 Mbps)\n",
              dpdk.median_throughput_gbps, cd.median_throughput_gbps);
  std::printf("drops per config: DPDK %llu, +CD %llu of %llu+%llu delivered\n",
              static_cast<unsigned long long>(dpdk.total_drops),
              static_cast<unsigned long long>(cd.total_drops),
              static_cast<unsigned long long>(dpdk.total_delivered),
              static_cast<unsigned long long>(cd.total_delivered));
  std::printf("paper shape: improvements grow toward higher percentiles under RSS\n");

  if (json_path == nullptr) {
    return;
  }
  FILE* json = std::fopen(json_path, "w");
  if (json == nullptr) {
    std::fprintf(stderr, "warning: cannot open %s for writing\n", json_path);
    return;
  }
  std::fprintf(json,
               "{\n  \"bench\": \"fig13_forwarding_100g\",\n"
               "  \"machine\": {\"hardware_threads\": %u, \"compiler\": \"%s\", "
               "\"build\": \"%s\"},\n"
               "  \"host_seconds\": %.6f\n}\n",
               // Host metadata sidecar only, not simulated output. detlint: allow(nondet-env)
               std::thread::hardware_concurrency(), __VERSION__,
#ifdef NDEBUG
               "release",
#else
               "debug",
#endif
               host_seconds);
  std::fclose(json);
  std::fprintf(stderr, "fig13_forwarding_100g host_s=%.3f (both arms, all runs)\n",
               host_seconds);
}

}  // namespace
}  // namespace cachedir

int main(int argc, char** argv) {
  // Optional: --json=PATH writes {"bench", "machine", "host_seconds"} for
  // tools/check_perf_baseline.py. No argument keeps legacy behaviour.
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      std::fprintf(stderr, "unknown argument: %s (want --json=PATH)\n", argv[i]);
      return 1;
    }
  }
  cachedir::Run(json_path);
  return 0;
}
