// Fig. 13 (+ Table 3 row 1): simple forwarding with campus-mix traffic
// offered at 100 Gbps over 8 cores with RSS — end-to-end latency
// percentiles, improvement, and delivered throughput at the NIC ceiling.
#include <cstdio>

#include "bench/common.h"
#include "bench/nfv_experiment.h"

namespace cachedir {
namespace {

NfvExperiment Experiment(bool cache_director) {
  NfvExperiment e;
  e.app = NfvExperiment::App::kForwarding;
  e.cache_director = cache_director;
  e.steering = NicSteering::kRss;
  e.traffic.size_mode = TrafficConfig::SizeMode::kCampusMix;
  e.traffic.rate_mode = TrafficConfig::RateMode::kGbps;
  e.traffic.rate_gbps = 100.0;
  e.warmup_packets = 4000;
  e.measured_packets = 20000;
  e.num_runs = 15;
  return e;
}

void Run() {
  PrintBanner("Fig 13", "forwarding latency, campus mix @ 100 Gbps, 8 cores, RSS");
  const NfvAggregate dpdk = RunNfvMany(Experiment(false));
  const NfvAggregate cd = RunNfvMany(Experiment(true));
  PrintComparisonRows(dpdk, cd);
  PrintSectionRule();
  std::printf("throughput: DPDK %.2f Gbps, DPDK+CD %.2f Gbps (paper: 76.58, +31 Mbps)\n",
              dpdk.median_throughput_gbps, cd.median_throughput_gbps);
  std::printf("drops per config: DPDK %llu, +CD %llu of %llu+%llu delivered\n",
              static_cast<unsigned long long>(dpdk.total_drops),
              static_cast<unsigned long long>(cd.total_drops),
              static_cast<unsigned long long>(dpdk.total_delivered),
              static_cast<unsigned long long>(cd.total_delivered));
  std::printf("paper shape: improvements grow toward higher percentiles under RSS\n");
}

}  // namespace
}  // namespace cachedir

int main() {
  cachedir::Run();
  return 0;
}
