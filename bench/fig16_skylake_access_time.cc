// Fig. 16: access time from core 0 to each of the 18 LLC slices on the
// Skylake (Xeon Gold 6134) model — measured by the same polling-era method
// as Fig. 5, without using knowledge of the hash.
#include <algorithm>
#include <cstdio>

#include "bench/access_time.h"
#include "bench/common.h"
#include "src/hash/presets.h"
#include "src/sim/machine.h"

namespace cachedir {
namespace {

void Run() {
  PrintBanner("Fig 16", "access time to 18 LLC slices from core 0 (Skylake, mesh)");
  const MachineSpec spec = SkylakeXeonGold6134();
  const AccessTimeResult r =
      MeasureSliceAccessTimes(spec, SkylakeSliceHash(), /*core=*/0, /*repetitions=*/1000);

  std::printf("%-6s  %-16s\n", "Slice", "Read (cycles)");
  PrintSectionRule();
  for (std::size_t s = 0; s < r.read_cycles.size(); ++s) {
    std::printf("%-6zu  %-16.2f\n", s, r.read_cycles[s]);
  }
  PrintSectionRule();
  const double min_read = *std::min_element(r.read_cycles.begin(), r.read_cycles.end());
  const double max_read = *std::max_element(r.read_cycles.begin(), r.read_cycles.end());
  std::printf("spread: %.1f cycles; nearest slice for core 0 is S0 with S2/S6 close\n",
              max_read - min_read);
  std::printf("paper shape: wider spread than the ring, several near slices per core\n");
}

}  // namespace
}  // namespace cachedir

int main() {
  cachedir::Run();
  return 0;
}
