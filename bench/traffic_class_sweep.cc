// §5.1 / Table 2 matrix: the paper ran the forwarding application for every
// traffic class (64/512/1024/1500 B at low and high rate) and reports that
// all classes behave like the two it plots. This bench produces the whole
// matrix: p99 latency for DPDK vs DPDK+CacheDirector per class.
#include <cstdio>

#include "bench/common.h"
#include "bench/nfv_experiment.h"

namespace cachedir {
namespace {

NfvExperiment Experiment(bool cache_director, std::uint32_t size, bool high_rate) {
  NfvExperiment e;
  e.app = NfvExperiment::App::kForwarding;
  e.cache_director = cache_director;
  e.traffic.size_mode = TrafficConfig::SizeMode::kFixed;
  e.traffic.fixed_size = size;
  if (high_rate) {
    e.traffic.rate_mode = TrafficConfig::RateMode::kPps;
    e.traffic.rate_pps = 4e6;  // the paper's "H" rate (~4 Mpps)
    e.measured_packets = 20000;
    e.warmup_packets = 4000;
  } else {
    e.traffic.rate_mode = TrafficConfig::RateMode::kPps;
    e.traffic.rate_pps = 1000;  // the paper's "L" rate
    e.measured_packets = 5000;
    e.warmup_packets = 500;
  }
  e.num_runs = 5;
  return e;
}

void Run() {
  PrintBanner("Table 2 matrix", "forwarding p99 per traffic class, L (1 kpps) / H (4 Mpps)");
  std::printf("%-8s %-6s  %-12s %-12s  %-10s\n", "Size", "Rate", "DPDK p99", "+CD p99",
              "gain");
  PrintSectionRule();
  for (const std::uint32_t size : {64u, 512u, 1024u, 1500u}) {
    for (const bool high : {false, true}) {
      const NfvAggregate dpdk = RunNfvMany(Experiment(false, size, high));
      const NfvAggregate cd = RunNfvMany(Experiment(true, size, high));
      std::printf("%-8u %-6s  %-12.3f %-12.3f  %8.2f%%\n", size, high ? "H" : "L",
                  dpdk.median.p99, cd.median.p99,
                  100.0 * (dpdk.median.p99 - cd.median.p99) / dpdk.median.p99);
    }
  }
  PrintSectionRule();
  std::printf("paper: 'all other traffic sets show the same behavior, but with\n");
  std::printf("different latency values'; 1500 B differs (§8: DDIO loads ~24 lines\n");
  std::printf("per frame, raising eviction pressure — see mtu_eviction_study)\n");
}

}  // namespace
}  // namespace cachedir

int main() {
  cachedir::Run();
  return 0;
}
