// §4.2 experiment: distribution of CacheDirector's dynamic headroom over a
// large mbuf population and all consuming cores. The paper measured (on its
// campus trace) a median of 256 B, 95th percentile 512 B, maximum 832 B and
// derived the 832 B default reservation from it.
#include <cstdio>

#include "bench/common.h"
#include "src/cache/hierarchy.h"
#include "src/hash/presets.h"
#include "src/netio/mempool.h"
#include "src/sim/machine.h"
#include "src/slice/placement.h"
#include "src/stats/summary.h"

namespace cachedir {
namespace {

void Run() {
  PrintBanner("§4.2", "distribution of CacheDirector dynamic headroom sizes");
  MemoryHierarchy hierarchy(HaswellXeonE52667V3(), HaswellSliceHash());
  SlicePlacement placement(hierarchy);
  HugepageAllocator backing;
  CacheDirector director(HaswellSliceHash(), placement, /*enabled=*/true);
  Mempool pool(backing, 16384, director);

  Samples headrooms;
  for (std::size_t i = 0; i < pool.capacity(); ++i) {
    Mbuf mbuf = pool.element(i);
    for (CoreId core = 0; core < 8; ++core) {
      director.ApplyHeadroom(mbuf, core);
      headrooms.Add(static_cast<double>(mbuf.headroom));
    }
  }
  std::printf("samples  : %zu (mbuf, core) pairs\n", headrooms.size());
  std::printf("median   : %.0f B   (paper: 256 B)\n", headrooms.Median());
  std::printf("95th     : %.0f B   (paper: 512 B)\n", headrooms.Percentile(95));
  std::printf("max      : %.0f B   (paper: 832 B — the value its default\n", headrooms.Max());
  std::printf("           reservation was derived from)\n");
  PrintSectionRule();
  std::printf("headroom histogram (lines: count):\n");
  std::vector<std::size_t> hist(CacheDirector::kMaxHeadroomLines + 1, 0);
  for (const double h : headrooms.values()) {
    ++hist[static_cast<std::size_t>(h) / kCacheLineSize];
  }
  for (std::size_t k = 0; k < hist.size(); ++k) {
    if (hist[k] != 0) {
      std::printf("  %2zu lines (%4zu B): %zu\n", k, k * kCacheLineSize, hist[k]);
    }
  }
}

}  // namespace
}  // namespace cachedir

int main() {
  cachedir::Run();
  return 0;
}
