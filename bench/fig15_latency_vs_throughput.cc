// Fig. 15: 99th-percentile latency vs offered throughput for the stateful
// chain, with the paper's piecewise fit (linear below the knee, quadratic
// above) and R^2 for both pieces and both configurations.
#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "bench/nfv_experiment.h"
#include "src/stats/fit.h"

namespace cachedir {
namespace {

NfvExperiment Experiment(bool cache_director, double gbps) {
  NfvExperiment e;
  e.app = NfvExperiment::App::kRouterNaptLb;
  e.cache_director = cache_director;
  e.steering = NicSteering::kFlowDirector;
  e.hw_offload_router = true;
  e.traffic.size_mode = TrafficConfig::SizeMode::kCampusMix;
  e.traffic.rate_mode = TrafficConfig::RateMode::kGbps;
  e.traffic.rate_gbps = gbps;
  e.warmup_packets = 3000;
  e.measured_packets = 12000;
  e.num_runs = 7;
  return e;
}

void Run() {
  PrintBanner("Fig 15", "99th-percentile latency vs throughput, stateful chain");
  const std::vector<double> rates = {5,  10, 15, 20, 25, 30, 35, 40,
                                     45, 50, 55, 60, 65, 70, 75, 80};
  std::vector<double> x_dpdk;
  std::vector<double> y_dpdk;
  std::vector<double> x_cd;
  std::vector<double> y_cd;

  std::printf("%-10s  %-12s %-12s  %-12s %-12s\n", "Offered", "DPDK-Tput", "DPDK-p99",
              "CD-Tput", "CD-p99");
  std::printf("%-10s  %-12s %-12s  %-12s %-12s\n", "(Gbps)", "(Gbps)", "(us)", "(Gbps)",
              "(us)");
  PrintSectionRule();
  for (const double rate : rates) {
    const NfvAggregate dpdk = RunNfvMany(Experiment(false, rate));
    const NfvAggregate cd = RunNfvMany(Experiment(true, rate));
    x_dpdk.push_back(dpdk.median_throughput_gbps);
    y_dpdk.push_back(dpdk.median.p99);
    x_cd.push_back(cd.median_throughput_gbps);
    y_cd.push_back(cd.median.p99);
    std::printf("%-10.0f  %-12.2f %-12.2f  %-12.2f %-12.2f\n", rate,
                dpdk.median_throughput_gbps, dpdk.median.p99, cd.median_throughput_gbps,
                cd.median.p99);
  }
  PrintSectionRule();

  // The paper fits linear below 37 Gbps and quadratic above; our knee sits
  // where the simulated cores approach saturation. Use the same convention
  // with the knee at the midpoint of the sweep that brackets the bend. The
  // 5 Gbps point is excluded from the fit: at that rate per-flow state goes
  // cold between packets, lifting the tail (a real effect, but not part of
  // the queueing curve being fitted).
  const auto drop_first = [](std::vector<double>& xs, std::vector<double>& ys) {
    xs.erase(xs.begin());
    ys.erase(ys.begin());
  };
  drop_first(x_dpdk, y_dpdk);
  drop_first(x_cd, y_cd);
  const double knee = 45.0;
  const PiecewiseKneeFit fit_dpdk = FitPiecewiseKnee(x_dpdk, y_dpdk, knee);
  const PiecewiseKneeFit fit_cd = FitPiecewiseKnee(x_cd, y_cd, knee);
  std::printf("DPDK fit : below %.0fG: %.2f + %.4f*X (R2=%.3f); above: %.1f %+.2f*X "
              "%+.4f*X^2 (R2=%.3f)\n",
              knee, fit_dpdk.below.intercept, fit_dpdk.below.slope, fit_dpdk.below.r2,
              fit_dpdk.above.c0, fit_dpdk.above.c1, fit_dpdk.above.c2, fit_dpdk.above.r2);
  std::printf("CD fit   : below %.0fG: %.2f + %.4f*X (R2=%.3f); above: %.1f %+.2f*X "
              "%+.4f*X^2 (R2=%.3f)\n",
              knee, fit_cd.below.intercept, fit_cd.below.slope, fit_cd.below.r2,
              fit_cd.above.c0, fit_cd.above.c1, fit_cd.above.c2, fit_cd.above.r2);
  std::printf("paper shape: knee where tails take off; CacheDirector shifts it right\n");
}

}  // namespace
}  // namespace cachedir

int main() {
  cachedir::Run();
  return 0;
}
