// Table 2 + §5 trace statistics: the traffic classes used by the NFV
// experiments and the achieved campus-mix composition.
#include <cstdio>

#include "bench/common.h"
#include "src/trace/traffic_gen.h"

namespace cachedir {
namespace {

void Run() {
  PrintBanner("Table 2", "traffic classes and rates used in the experiments");
  std::printf("%-16s  %s\n", "Packet size (B)", "Rates");
  PrintSectionRule();
  for (const int size : {64, 512, 1024, 1500}) {
    std::printf("%-16d  L (1000 pps), H (~4 Mpps)\n", size);
  }
  std::printf("%-16s  5-100 Gbps\n", "Mixed (campus)");
  PrintSectionRule();

  TrafficConfig config;
  config.size_mode = TrafficConfig::SizeMode::kCampusMix;
  config.seed = 42;
  TrafficGenerator gen(config);
  (void)gen.Generate(500000);
  const auto mix = gen.size_mix();
  const double total = static_cast<double>(mix.total);
  std::printf("Synthetic campus-mix over %llu frames:\n",
              static_cast<unsigned long long>(mix.total));
  std::printf("  <100 B      : %5.1f %%   (paper: 26.9 %%)\n", 100.0 * mix.under_100 / total);
  std::printf("  100-500 B   : %5.1f %%   (paper: 11.8 %%)\n",
              100.0 * mix.from_100_to_500 / total);
  std::printf("  >=500 B     : %5.1f %%   (paper: 61.3 %%)\n", 100.0 * mix.over_500 / total);
  std::printf("  mean frame  : %6.1f B\n", mix.mean_size);
}

}  // namespace
}  // namespace cachedir

int main() {
  cachedir::Run();
  return 0;
}
