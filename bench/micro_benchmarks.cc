// Micro-benchmarks (google-benchmark) of the hot primitives: the Complex
// Addressing hash, CacheDirector precompute/apply, the slice-aware
// allocator, the Zipf generator, simulated hierarchy accesses, and the
// counter-based slice poller. These quantify the §8 claim that
// slice-awareness is cheap at runtime.
#include <benchmark/benchmark.h>

#include "src/cache/hierarchy.h"
#include "src/hash/presets.h"
#include "src/mem/hugepage.h"
#include "src/netio/mempool.h"
#include "src/rev/polling.h"
#include "src/sim/machine.h"
#include "src/slice/placement.h"
#include "src/slice/slice_allocator.h"
#include "src/stats/zipf.h"

namespace cachedir {
namespace {

void BM_HaswellSliceHash(benchmark::State& state) {
  const auto hash = HaswellSliceHash();
  PhysAddr addr = 0x1'8000'0000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hash->SliceFor(addr));
    addr += kCacheLineSize;
  }
}
BENCHMARK(BM_HaswellSliceHash);

void BM_SkylakeSliceHash(benchmark::State& state) {
  const auto hash = SkylakeSliceHash();
  PhysAddr addr = 0x1'8000'0000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hash->SliceFor(addr));
    addr += kCacheLineSize;
  }
}
BENCHMARK(BM_SkylakeSliceHash);

void BM_CacheDirectorPrepareMbuf(benchmark::State& state) {
  MemoryHierarchy hierarchy(HaswellXeonE52667V3(), HaswellSliceHash());
  SlicePlacement placement(hierarchy);
  CacheDirector director(HaswellSliceHash(), placement, true);
  Mbuf mbuf;
  mbuf.buf_pa = 0x1'8000'0000;
  for (auto _ : state) {
    director.PrepareMbuf(mbuf);
    benchmark::DoNotOptimize(mbuf.udata64);
    mbuf.buf_pa += kMbufElementBytes;
  }
}
BENCHMARK(BM_CacheDirectorPrepareMbuf);

void BM_CacheDirectorApplyHeadroom(benchmark::State& state) {
  // The run-time cost the paper minimises: one nibble extract per packet.
  MemoryHierarchy hierarchy(HaswellXeonE52667V3(), HaswellSliceHash());
  SlicePlacement placement(hierarchy);
  CacheDirector director(HaswellSliceHash(), placement, true);
  Mbuf mbuf;
  mbuf.buf_pa = 0x1'8000'0000;
  director.PrepareMbuf(mbuf);
  CoreId core = 0;
  for (auto _ : state) {
    director.ApplyHeadroom(mbuf, core);
    benchmark::DoNotOptimize(mbuf.headroom);
    core = (core + 1) % 8;
  }
}
BENCHMARK(BM_CacheDirectorApplyHeadroom);

void BM_SliceAwareAllocate(benchmark::State& state) {
  HugepageAllocator backing;
  SliceAwareAllocator alloc(backing, HaswellSliceHash());
  SliceId slice = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(alloc.AllocateLines(slice, 64));
    slice = (slice + 1) % 8;
  }
}
BENCHMARK(BM_SliceAwareAllocate);

void BM_ZipfNext(benchmark::State& state) {
  ZipfGenerator gen(std::uint64_t{1} << 24, 0.99, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.Next());
  }
}
BENCHMARK(BM_ZipfNext);

void BM_HierarchyL1Hit(benchmark::State& state) {
  MemoryHierarchy hierarchy(HaswellXeonE52667V3(), HaswellSliceHash());
  (void)hierarchy.Read(0, 0x1000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hierarchy.Read(0, 0x1000).cycles);
  }
}
BENCHMARK(BM_HierarchyL1Hit);

void BM_HierarchyDramMissStream(benchmark::State& state) {
  MemoryHierarchy hierarchy(HaswellXeonE52667V3(), HaswellSliceHash());
  PhysAddr addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hierarchy.Read(0, addr).cycles);
    addr += 4096;  // new line, new set: miss path with evictions
  }
}
BENCHMARK(BM_HierarchyDramMissStream);

void BM_PollerFindSlice(benchmark::State& state) {
  MemoryHierarchy hierarchy(HaswellXeonE52667V3(), HaswellSliceHash());
  SlicePoller poller(hierarchy);
  PhysAddr addr = 0x1'8000'0000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(poller.FindSlice(addr));
    addr += kCacheLineSize;
  }
}
BENCHMARK(BM_PollerFindSlice);

}  // namespace
}  // namespace cachedir

BENCHMARK_MAIN();
