// Table 3: delivered throughput for both applications when offered the
// campus mix at 100 Gbps, and CacheDirector's average throughput improvement.
#include <cstdio>

#include "bench/common.h"
#include "bench/nfv_experiment.h"

namespace cachedir {
namespace {

NfvExperiment Experiment(NfvExperiment::App app, bool cache_director) {
  NfvExperiment e;
  e.app = app;
  e.cache_director = cache_director;
  if (app == NfvExperiment::App::kRouterNaptLb) {
    e.steering = NicSteering::kFlowDirector;
    e.hw_offload_router = true;
  }
  e.traffic.size_mode = TrafficConfig::SizeMode::kCampusMix;
  e.traffic.rate_mode = TrafficConfig::RateMode::kGbps;
  e.traffic.rate_gbps = 100.0;
  e.warmup_packets = 4000;
  e.measured_packets = 20000;
  e.num_runs = 10;
  return e;
}

void Run() {
  PrintBanner("Table 3", "throughput at 100 Gbps offered (campus mix) + CD improvement");
  std::printf("%-42s  %-14s  %-14s\n", "Scenario", "Tput (Gbps)", "Improv (Mbps)");
  PrintSectionRule();
  {
    const NfvAggregate dpdk = RunNfvMany(Experiment(NfvExperiment::App::kForwarding, false));
    const NfvAggregate cd = RunNfvMany(Experiment(NfvExperiment::App::kForwarding, true));
    std::printf("%-42s  %-14.2f  %+-14.1f\n", "Simple Forwarding",
                dpdk.median_throughput_gbps,
                1000.0 * (cd.median_throughput_gbps - dpdk.median_throughput_gbps));
  }
  {
    const NfvAggregate dpdk =
        RunNfvMany(Experiment(NfvExperiment::App::kRouterNaptLb, false));
    const NfvAggregate cd = RunNfvMany(Experiment(NfvExperiment::App::kRouterNaptLb, true));
    std::printf("%-42s  %-14.2f  %+-14.1f\n",
                "Router-NAPT-LB (FlowDirector, H/W offload)",
                dpdk.median_throughput_gbps,
                1000.0 * (cd.median_throughput_gbps - dpdk.median_throughput_gbps));
  }
  PrintSectionRule();
  std::printf("paper: 76.58 Gbps (+31.17 Mbps) and 75.94 Gbps (+27.31 Mbps);\n");
  std::printf("the ceiling is the NIC's small-packet pps limit, not the cores\n");
}

}  // namespace
}  // namespace cachedir

int main() {
  cachedir::Run();
  return 0;
}
