// §6 porting claim: "CacheDirector is still expected to be beneficial [on
// Skylake], but with lower improvements — as the size of L2 has been
// increased." Runs the stateful chain at 100 Gbps on both machine models
// and compares CacheDirector's relative gains.
#include <cstdio>

#include "bench/common.h"
#include "bench/nfv_experiment.h"

namespace cachedir {
namespace {

NfvExperiment Experiment(NfvExperiment::Machine machine, bool cache_director) {
  NfvExperiment e;
  e.app = NfvExperiment::App::kRouterNaptLb;
  e.machine = machine;
  e.cache_director = cache_director;
  e.steering = NicSteering::kFlowDirector;
  e.hw_offload_router = true;
  e.traffic.size_mode = TrafficConfig::SizeMode::kCampusMix;
  e.traffic.rate_gbps = 100.0;
  e.warmup_packets = 4000;
  e.measured_packets = 20000;
  e.num_runs = 10;
  return e;
}

void Run() {
  PrintBanner("§6 port", "CacheDirector gains: Haswell vs Skylake, chain @ 100 Gbps");
  std::printf("%-10s  %-12s %-12s  %-12s %-12s  %-10s\n", "Machine", "DPDK p90",
              "DPDK p99", "+CD p90", "+CD p99", "p90 gain");
  PrintSectionRule();
  double gain[2] = {0, 0};
  int i = 0;
  for (const auto machine :
       {NfvExperiment::Machine::kHaswell, NfvExperiment::Machine::kSkylake}) {
    const NfvAggregate dpdk = RunNfvMany(Experiment(machine, false));
    const NfvAggregate cd = RunNfvMany(Experiment(machine, true));
    gain[i] = 100.0 * (dpdk.median.p90 - cd.median.p90) / dpdk.median.p90;
    std::printf("%-10s  %-12.2f %-12.2f  %-12.2f %-12.2f  %8.2f%%\n",
                machine == NfvExperiment::Machine::kHaswell ? "Haswell" : "Skylake",
                dpdk.median.p90, dpdk.median.p99, cd.median.p90, cd.median.p99, gain[i]);
    ++i;
  }
  PrintSectionRule();
  std::printf("paper §6: gains persist on Skylake but shrink (bigger L2 absorbs\n");
  std::printf("more header reads before they ever reach the LLC)\n");
  std::printf("measured: Haswell %+.1f%%, Skylake %+.1f%% at the 90th percentile\n",
              gain[0], gain[1]);
}

}  // namespace
}  // namespace cachedir

int main() {
  cachedir::Run();
  return 0;
}
