// Ablation: how the DDIO way-partition size affects tail latency at
// 100 Gbps. The paper repeatedly points at DDIO's default 2-of-20-way limit
// (§5.2, §8) as a contention source for large packets; this bench sweeps it.
#include <cstdio>

#include "bench/common.h"
#include "bench/nfv_experiment.h"
#include "src/hash/presets.h"
#include "src/nfv/chain.h"
#include "src/nfv/elements.h"
#include "src/nfv/runtime.h"
#include "src/sim/machine.h"
#include "src/slice/placement.h"

namespace cachedir {
namespace {

PercentileRow Measure(std::size_t ddio_ways, bool cache_director) {
  MachineSpec spec = HaswellXeonE52667V3();
  spec.ddio_ways = ddio_ways;
  MemoryHierarchy hierarchy(spec, HaswellSliceHash(), 5);
  SlicePlacement placement(hierarchy);
  PhysicalMemory memory;
  HugepageAllocator backing;
  CacheDirector director(HaswellSliceHash(), placement, cache_director);
  Mempool pool(backing, 8192, director);
  SimNic::Config nic_config;
  nic_config.num_queues = 8;
  nic_config.steering = NicSteering::kFlowDirector;
  SimNic nic(nic_config, hierarchy, memory, pool, director);

  ServiceChain chain;
  IpRouter::Params router;
  router.hw_offloaded = true;
  chain.Append(std::make_unique<IpRouter>(hierarchy, memory, backing, router));
  chain.Append(std::make_unique<Napt>(hierarchy, memory, backing, Napt::Params{}));
  chain.Append(
      std::make_unique<LoadBalancer>(hierarchy, memory, backing, LoadBalancer::Params{}));
  NfvRuntime runtime(NfvRuntime::Config{}, hierarchy, nic, chain);

  TrafficConfig traffic;
  traffic.size_mode = TrafficConfig::SizeMode::kCampusMix;
  traffic.rate_gbps = 100.0;
  traffic.seed = 17;
  TrafficGenerator gen(traffic);
  runtime.Run(gen.Generate(4000), nullptr);
  LatencyRecorder recorder;
  runtime.Run(gen.Generate(20000), &recorder);
  return SummarizePercentiles(recorder.latencies_us());
}

void Run() {
  PrintBanner("Ablation", "DDIO way-partition size vs chain tail latency @ 100 Gbps");
  std::printf("%-10s  %-12s %-12s  %-12s %-12s\n", "DDIO ways", "DPDK p95", "DPDK p99",
              "+CD p95", "+CD p99");
  PrintSectionRule();
  for (const std::size_t ways : {1u, 2u, 4u, 8u, 16u}) {
    const PercentileRow base = Measure(ways, false);
    const PercentileRow cd = Measure(ways, true);
    std::printf("%-10zu  %-12.2f %-12.2f  %-12.2f %-12.2f\n", ways, base.p95, base.p99,
                cd.p95, cd.p99);
  }
  PrintSectionRule();
  std::printf("expectation: very small partitions thrash under MTU frames (24 lines\n");
  std::printf("per packet), extra ways help until core latency dominates\n");
}

}  // namespace
}  // namespace cachedir

int main() {
  cachedir::Run();
  return 0;
}
