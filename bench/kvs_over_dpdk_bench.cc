// Fig. 8 companion: the KVS served end-to-end over the DPDK path, the way
// the paper actually ran it (128 B request packets through the NIC, one
// serving core). Crosses value placement {normal, slice-aware} with
// CacheDirector steering of the request packets {off, on}: the two
// mechanisms compose — CacheDirector accelerates the header read, value
// placement accelerates the value read.
#include <cstdio>
#include <memory>

#include "bench/common.h"
#include "src/hash/presets.h"
#include "src/kvs/kvs.h"
#include "src/kvs/kvs_element.h"
#include "src/netio/nic.h"
#include "src/nfv/chain.h"
#include "src/nfv/runtime.h"
#include "src/sim/machine.h"
#include "src/slice/placement.h"
#include "src/stats/zipf.h"

namespace cachedir {
namespace {

constexpr std::size_t kNumValues = std::size_t{1} << 15;  // 2 MB: fits a slice
constexpr std::size_t kRequests = 300000;
constexpr std::size_t kWarmup = 60000;
constexpr CoreId kServerCore = 0;

// Zipf-keyed 128 B request stream aimed at one RX queue.
std::vector<WirePacket> GenerateRequests(std::size_t count, double get_fraction,
                                         double gap_ns, std::uint64_t seed) {
  ZipfGenerator keys(kNumValues, 0.99, seed);
  Rng ops(seed + 1);
  std::vector<WirePacket> out;
  out.reserve(count);
  Nanoseconds t = 0;
  for (std::size_t i = 0; i < count; ++i) {
    WirePacket p;
    p.id = i;
    p.size_bytes = 128;  // the paper's request size
    p.flow.src_ip = 0x0A000001;
    p.flow.dst_ip = static_cast<std::uint32_t>(keys.Next());
    p.flow.src_port = static_cast<std::uint16_t>(2000 | (ops.Bernoulli(get_fraction) ? 0 : 1));
    p.flow.dst_port = 11211;
    t += gap_ns;
    p.tx_time_ns = t;
    out.push_back(p);
  }
  return out;
}

struct Result {
  double mtps = 0;
  double mean_latency_us = 0;
};

Result Measure(bool slice_values, bool cache_director) {
  MemoryHierarchy hierarchy(HaswellXeonE52667V3(), HaswellSliceHash(), 67);
  SlicePlacement placement(hierarchy);
  PhysicalMemory memory;
  HugepageAllocator backing;
  CacheDirector director(HaswellSliceHash(), placement, cache_director);
  Mempool pool(backing, 4096, director);
  SimNic::Config nic_config;
  nic_config.num_queues = 1;  // one serving core, like the paper
  // The paper measures server-side TPS "so that we could ignore the
  // networking bottlenecks": give the NIC headroom beyond the server.
  nic_config.min_packet_gap_ns = 20.0;
  SimNic nic(nic_config, hierarchy, memory, pool, director);

  EmulatedKvs::Config kvs_config;
  kvs_config.num_values = kNumValues;
  kvs_config.slice_aware = slice_values;
  kvs_config.target_slice = placement.ClosestSlice(kServerCore);
  kvs_config.fixed_request_cycles = 64;  // parse/execute, RX path charged separately
  EmulatedKvs kvs(hierarchy, backing, kvs_config);

  ServiceChain chain;
  chain.Append(std::make_unique<KvsServerElement>(hierarchy, memory, kvs));
  NfvRuntime runtime(NfvRuntime::Config{}, hierarchy, nic, chain);

  // Offer requests well above the server's capacity so TPS measures the
  // server, not the generator (the paper "stresses the server").
  const double gap_ns = 50.0;
  const auto warmup = GenerateRequests(kWarmup, 0.95, gap_ns, 71);
  runtime.Run(warmup, nullptr);
  LatencyRecorder recorder;
  auto requests = GenerateRequests(kRequests, 0.95, gap_ns, 73);
  // Continue simulated time after warm-up.
  const Nanoseconds start = runtime.CompletionTimeNs();
  for (auto& p : requests) {
    p.tx_time_ns += start;
  }
  runtime.Run(requests, &recorder);

  Result r;
  // Server-side TPS: served requests over the serving window.
  const double window_ns = runtime.CompletionTimeNs() - start;
  r.mtps = static_cast<double>(recorder.delivered()) / window_ns * 1000.0;
  r.mean_latency_us = recorder.latencies_us().Mean();
  return r;
}

void Run() {
  PrintBanner("Fig 8 companion", "KVS served over the DPDK path (95% GET, Zipf 0.99)");
  std::printf("%-34s  %-10s  %-12s\n", "Configuration", "Mtps", "mean lat us");
  PrintSectionRule();
  const struct {
    const char* label;
    bool slice_values;
    bool cd;
  } rows[] = {
      {"normal values, no CD", false, false},
      {"normal values, CacheDirector", false, true},
      {"slice values, no CD", true, false},
      {"slice values, CacheDirector", true, true},
  };
  // Four independent end-to-end simulations: fan out, print in row order.
  Result results[4];
  ParallelFor(4, [&](std::size_t i) { results[i] = Measure(rows[i].slice_values, rows[i].cd); });
  for (std::size_t i = 0; i < 4; ++i) {
    std::printf("%-34s  %-10.3f  %-12.2f\n", rows[i].label, results[i].mtps,
                results[i].mean_latency_us);
  }
  PrintSectionRule();
  std::printf("expectation: the two mechanisms compose — CacheDirector speeds the\n");
  std::printf("header read, slice-aware values the value read; both lift TPS\n");
}

}  // namespace
}  // namespace cachedir

int main() {
  cachedir::Run();
  return 0;
}
