#include "bench/access_time.h"

#include <algorithm>

#include "src/cache/hierarchy.h"
#include "src/mem/hugepage.h"
#include "src/slice/slice_mapper.h"

namespace cachedir {

AccessTimeResult MeasureSliceAccessTimes(const MachineSpec& spec,
                                         std::shared_ptr<const SliceHash> hash, CoreId core,
                                         int repetitions) {
  MemoryHierarchy hierarchy(spec, hash, /*seed=*/1);
  HugepageAllocator backing;
  const Mapping page = backing.Allocate(std::size_t{1} << 30, PageSize::k1G);

  const std::size_t llc_sets = spec.llc_slice.num_sets();
  const std::size_t group = 20;  // lines per probed set (the paper's choice)
  // Timed lines must have fallen out of the private caches after the re-read
  // pass: on 8-way-L2 Haswell the first 8 qualify (the paper's method); on
  // 16-way-L2 Skylake only the first 4 do.
  const std::size_t timed = std::min<std::size_t>(8, group - spec.l2.ways);
  const std::size_t probe_set = 100;

  AccessTimeResult result;
  result.read_cycles.assign(spec.num_slices, 0);
  result.write_cycles.assign(spec.num_slices, 0);

  for (SliceId slice = 0; slice < spec.num_slices; ++slice) {
    const auto lines = LinesForSliceAndSet(*hash, page, slice, probe_set, llc_sets, group);
    if (lines.size() < group) {
      continue;  // cannot happen on a 1 GB page with these geometries
    }
    double read_sum = 0;
    double write_sum = 0;
    for (int rep = 0; rep < repetitions; ++rep) {
      // Populate, then flush the hierarchy (clflush in the paper).
      for (const SliceLine& line : lines) {
        (void)hierarchy.Write(core, line.pa);
      }
      for (const SliceLine& line : lines) {
        hierarchy.FlushLine(line.pa);
      }
      // Read all 20: everything lands in the LLC slice; only the last 8
      // survive in the 8-way L1/L2 set.
      for (const SliceLine& line : lines) {
        (void)hierarchy.Read(core, line.pa);
      }
      // Timed reads of the first 8: pure LLC-slice hits.
      for (std::size_t i = 0; i < timed; ++i) {
        read_sum += static_cast<double>(hierarchy.Read(core, lines[i].pa).cycles);
      }
      // Timed writes to the same lines (now L1-resident): store-hit cost,
      // independent of the slice — the paper's flat Fig. 5b.
      for (std::size_t i = 0; i < timed; ++i) {
        write_sum += static_cast<double>(hierarchy.Write(core, lines[i].pa).cycles);
      }
    }
    const double samples = static_cast<double>(repetitions) * static_cast<double>(timed);
    result.read_cycles[slice] = read_sum / samples;
    result.write_cycles[slice] = write_sum / samples;
  }
  return result;
}

}  // namespace cachedir
