#include "bench/access_time.h"

#include <algorithm>

#include "bench/common.h"
#include "src/cache/hierarchy.h"
#include "src/mem/hugepage.h"
#include "src/slice/slice_mapper.h"

namespace cachedir {
namespace {

// One slice's measurement, self-contained: its own hierarchy and hugepage
// backing, so the per-slice measurements can run on the bench thread pool.
// The timed accesses are pure LLC-slice hits and L1 store hits, whose costs
// are fixed by the latency model — independent of any state another slice's
// measurement could have left behind (benchlib_test pins the exact values).
struct SliceTimes {
  double read = 0;
  double write = 0;
};

SliceTimes MeasureOneSlice(const MachineSpec& spec, std::shared_ptr<const SliceHash> hash,
                           CoreId core, SliceId slice, int repetitions) {
  MemoryHierarchy hierarchy(spec, hash, /*seed=*/1);
  HugepageAllocator backing;
  const Mapping page = backing.Allocate(std::size_t{1} << 30, PageSize::k1G);

  const std::size_t llc_sets = spec.llc_slice.num_sets();
  const std::size_t group = 20;  // lines per probed set (the paper's choice)
  // Timed lines must have fallen out of the private caches after the re-read
  // pass: on 8-way-L2 Haswell the first 8 qualify (the paper's method); on
  // 16-way-L2 Skylake only the first 4 do.
  const std::size_t timed = std::min<std::size_t>(8, group - spec.l2.ways);
  const std::size_t probe_set = 100;

  const auto lines = LinesForSliceAndSet(*hash, page, slice, probe_set, llc_sets, group);
  if (lines.size() < group) {
    return SliceTimes{};  // cannot happen on a 1 GB page with these geometries
  }
  double read_sum = 0;
  double write_sum = 0;
  for (int rep = 0; rep < repetitions; ++rep) {
    // Populate, then flush the hierarchy (clflush in the paper).
    for (const SliceLine& line : lines) {
      (void)hierarchy.Write(core, line.pa);
    }
    for (const SliceLine& line : lines) {
      hierarchy.FlushLine(line.pa);
    }
    // Read all 20: everything lands in the LLC slice; only the last 8
    // survive in the 8-way L1/L2 set.
    for (const SliceLine& line : lines) {
      (void)hierarchy.Read(core, line.pa);
    }
    // Timed reads of the first 8: pure LLC-slice hits.
    for (std::size_t i = 0; i < timed; ++i) {
      read_sum += static_cast<double>(hierarchy.Read(core, lines[i].pa).cycles);
    }
    // Timed writes to the same lines (now L1-resident): store-hit cost,
    // independent of the slice — the paper's flat Fig. 5b.
    for (std::size_t i = 0; i < timed; ++i) {
      write_sum += static_cast<double>(hierarchy.Write(core, lines[i].pa).cycles);
    }
  }
  const double samples = static_cast<double>(repetitions) * static_cast<double>(timed);
  return SliceTimes{read_sum / samples, write_sum / samples};
}

}  // namespace

AccessTimeResult MeasureSliceAccessTimes(const MachineSpec& spec,
                                         std::shared_ptr<const SliceHash> hash, CoreId core,
                                         int repetitions) {
  AccessTimeResult result;
  result.read_cycles.assign(spec.num_slices, 0);
  result.write_cycles.assign(spec.num_slices, 0);
  ParallelFor(spec.num_slices, [&](std::size_t slice) {
    const SliceTimes times =
        MeasureOneSlice(spec, hash, core, static_cast<SliceId>(slice), repetitions);
    result.read_cycles[slice] = times.read;
    result.write_cycles[slice] = times.write;
  });
  return result;
}

}  // namespace cachedir
