// Reusable NFV experiment driver shared by the Figs. 1/12/13/14/15 and
// Table 3 benches: builds the full DuT (hierarchy, mempool, NIC, chain,
// runtime), replays a fresh trace per run, and aggregates percentile rows
// across runs the way the paper reports them (medians of N runs, quartile
// error bars).
#ifndef CACHEDIRECTOR_BENCH_NFV_EXPERIMENT_H_
#define CACHEDIRECTOR_BENCH_NFV_EXPERIMENT_H_

#include <cstdint>

#include "src/netio/nic.h"
#include "src/stats/significance.h"
#include "src/stats/summary.h"
#include "src/trace/traffic_gen.h"

namespace cachedir {

struct NfvExperiment {
  enum class App {
    kForwarding,    // MacSwap (paper §5.1)
    kRouterNaptLb,  // stateful chain (paper §5.2)
  };
  enum class Machine {
    kHaswell,  // the paper's DuT
    kSkylake,  // §6 porting claim: still beneficial, smaller gains
  };

  App app = App::kForwarding;
  Machine machine = Machine::kHaswell;
  bool cache_director = false;
  NicSteering steering = NicSteering::kRss;
  bool hw_offload_router = false;  // Metron FlowDirector offloading
  TrafficConfig traffic;
  std::size_t warmup_packets = 4000;
  std::size_t measured_packets = 20000;
  std::size_t num_runs = 15;
  std::size_t num_queues = 8;
  // 0 keeps the selected machine preset's core count. A value > 8 on the
  // Haswell DuT swaps in HaswellDerivedManyCore(n) so num_queues may exceed
  // the 8 physical cores (core_count_sweep --max-cores); capped at 64 by the
  // preset, rejected for the Skylake machine (no derived preset exists).
  std::size_t override_cores = 0;
  std::size_t mempool_mbufs = 8192;
  std::uint64_t base_seed = 1;
};

struct NfvRunStats {
  PercentileRow latency_us;
  Samples latencies_us;
  double throughput_gbps = 0;
  std::uint64_t delivered = 0;
  std::uint64_t drops = 0;
};

NfvRunStats RunNfvOnce(const NfvExperiment& experiment, std::uint64_t run_index);

struct NfvAggregate {
  // Median across runs, per percentile (the paper's reporting convention).
  PercentileRow median;
  // First/third quartiles of each percentile across runs (error bars).
  PercentileRow q1;
  PercentileRow q3;
  double median_throughput_gbps = 0;
  std::uint64_t total_delivered = 0;
  std::uint64_t total_drops = 0;
  // Pooled latency samples of ALL runs (for the Fig. 14a CDF).
  Samples pooled_latencies_us;
  // Per-run tail/mean observations, for significance testing across configs.
  Samples p99_per_run;
  Samples mean_per_run;
};

NfvAggregate RunNfvMany(const NfvExperiment& experiment);

// Prints the standard DPDK vs DPDK+CacheDirector comparison block used by
// the Figs. 1/12/13/14 benches: per-percentile medians, improvement in us
// and per cent.
void PrintComparisonRows(const NfvAggregate& dpdk, const NfvAggregate& cd);

}  // namespace cachedir

#endif  // CACHEDIRECTOR_BENCH_NFV_EXPERIMENT_H_
