// Ablation (paper §8, "Dealing with data larger than 64 B"): the paper's
// emulated KVS only steered 64 B values; this implementation scatters larger
// values over multiple slice-resident lines. The bench sweeps the value size
// at a slice-friendly working-set size and shows the slice-aware gain
// persists for multi-line values.
#include <cstdio>

#include "bench/common.h"
#include "src/hash/presets.h"
#include "src/kvs/kvs.h"
#include "src/kvs/server.h"
#include "src/sim/machine.h"

namespace cachedir {
namespace {

KvsResult Measure(bool slice_aware, std::size_t value_bytes, std::size_t num_values) {
  MemoryHierarchy hierarchy(HaswellXeonE52667V3(), HaswellSliceHash(), 19);
  HugepageAllocator backing;
  EmulatedKvs::Config config;
  config.num_values = num_values;
  config.value_bytes = value_bytes;
  config.slice_aware = slice_aware;
  config.target_slice = 0;
  EmulatedKvs kvs(hierarchy, backing, config);
  KvsServer server(kvs, 0);
  KvsWorkload warmup;
  warmup.zipf_theta = 0.99;
  warmup.requests = 150000;
  (void)server.Run(warmup);
  KvsWorkload workload = warmup;
  workload.requests = 400000;
  workload.seed = 77;
  return server.Run(workload);
}

void Run() {
  PrintBanner("Ablation", "slice-aware KVS with values larger than 64 B (§8 extension)");
  std::printf("%-12s  %-10s  %-12s %-12s  %-10s\n", "Value size", "Lines", "Normal",
              "Slice", "Gain");
  std::printf("%-12s  %-10s  %-25s   (Mtps)\n", "", "", "");
  PrintSectionRule();
  // Keep the total working set constant (~2 MB: fits one slice) so the
  // comparison isolates the value size.
  const std::size_t total_bytes = 2u << 20;
  for (const std::size_t value_bytes : {64u, 128u, 256u, 512u}) {
    const std::size_t num_values = total_bytes / value_bytes;
    const KvsResult normal = Measure(false, value_bytes, num_values);
    const KvsResult aware = Measure(true, value_bytes, num_values);
    std::printf("%-12zu  %-10zu  %-12.3f %-12.3f  %+8.2f%%\n", value_bytes,
                (value_bytes + 63) / 64, normal.tps_millions, aware.tps_millions,
                100.0 * (aware.tps_millions - normal.tps_millions) / normal.tps_millions);
  }
  PrintSectionRule();
  std::printf("expectation: the per-request gain grows with lines per value (each\n");
  std::printf("line saves the near-slice delta), while TPS drops for both layouts\n");
}

}  // namespace
}  // namespace cachedir

int main() {
  cachedir::Run();
  return 0;
}
