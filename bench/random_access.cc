#include "bench/random_access.h"

#include <algorithm>

namespace cachedir {
namespace {

void Warmup(MemoryHierarchy& hierarchy, const MemoryBuffer& buffer, CoreId core,
            std::size_t cap) {
  const std::size_t lines = buffer.size_bytes() / kCacheLineSize;
  const std::size_t n = cap == 0 ? 0 : std::min(lines, cap);
  for (std::size_t i = 0; i < n; ++i) {
    (void)hierarchy.Read(core, buffer.PaForOffset(i * kCacheLineSize));
  }
}

Cycles OneAccess(MemoryHierarchy& hierarchy, const MemoryBuffer& buffer, CoreId core,
                 bool write, Rng& rng) {
  const std::size_t lines = buffer.size_bytes() / kCacheLineSize;
  const std::size_t off = rng.UniformIndex(lines) * kCacheLineSize;
  const PhysAddr pa = buffer.PaForOffset(off);
  return write ? hierarchy.Write(core, pa).cycles : hierarchy.Read(core, pa).cycles;
}

}  // namespace

Cycles RunRandomAccess(MemoryHierarchy& hierarchy, const MemoryBuffer& buffer, CoreId core,
                       const RandomAccessParams& params) {
  Warmup(hierarchy, buffer, core, params.warmup_lines_cap);
  Rng rng(params.seed);
  Cycles total = 0;
  for (std::size_t i = 0; i < params.ops; ++i) {
    total += OneAccess(hierarchy, buffer, core, params.write, rng);
  }
  return total;
}

std::vector<Cycles> RunRandomAccessMultiCore(MemoryHierarchy& hierarchy,
                                             const std::vector<const MemoryBuffer*>& buffers,
                                             const RandomAccessParams& params,
                                             std::size_t batch) {
  const std::size_t cores = buffers.size();
  std::vector<Rng> rngs;
  rngs.reserve(cores);
  for (std::size_t c = 0; c < cores; ++c) {
    rngs.emplace_back(params.seed + 31 * c);
  }
  // Interleaved warm-up.
  for (std::size_t c = 0; c < cores; ++c) {
    Warmup(hierarchy, *buffers[c], static_cast<CoreId>(c), params.warmup_lines_cap);
  }
  std::vector<Cycles> totals(cores, 0);
  std::vector<std::size_t> done(cores, 0);
  bool any = true;
  while (any) {
    any = false;
    for (std::size_t c = 0; c < cores; ++c) {
      const std::size_t quota = std::min(batch, params.ops - done[c]);
      for (std::size_t i = 0; i < quota; ++i) {
        totals[c] += OneAccess(hierarchy, *buffers[c], static_cast<CoreId>(c), params.write,
                               rngs[c]);
      }
      done[c] += quota;
      any = any || done[c] < params.ops;
    }
  }
  return totals;
}

}  // namespace cachedir
