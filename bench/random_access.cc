#include "bench/random_access.h"

#include <algorithm>
#include <array>
#include <span>

namespace cachedir {
namespace {

// Replay chunk for the batched fast path: addresses are generated (or the
// next warm-up stride laid out) into a stack array, then charged through one
// ReadRange/WriteRange gather per chunk. The RNG draw order and the access
// order are exactly the scalar loop's, so results stay bit-identical.
constexpr std::size_t kReplayChunk = 64;

void Warmup(MemoryHierarchy& hierarchy, const MemoryBuffer& buffer, CoreId core,
            std::size_t cap) {
  const std::size_t lines = buffer.size_bytes() / kCacheLineSize;
  const std::size_t n = cap == 0 ? 0 : std::min(lines, cap);
  std::array<PhysAddr, kReplayChunk> chunk;
  std::size_t i = 0;
  while (i < n) {
    const std::size_t quota = std::min(kReplayChunk, n - i);
    for (std::size_t j = 0; j < quota; ++j) {
      chunk[j] = buffer.PaForOffset((i + j) * kCacheLineSize);
    }
    AccessBatch batch;
    batch.gather = std::span<const PhysAddr>(chunk.data(), quota);
    (void)hierarchy.ReadRange(core, batch);
    i += quota;
  }
}

// Draws `count` uniform random line addresses into `chunk` and charges them
// as one gather batch; returns the summed cycles.
Cycles AccessChunk(MemoryHierarchy& hierarchy, const MemoryBuffer& buffer, CoreId core,
                   bool write, Rng& rng, std::span<PhysAddr> chunk, std::size_t count) {
  const std::size_t lines = buffer.size_bytes() / kCacheLineSize;
  for (std::size_t j = 0; j < count; ++j) {
    chunk[j] = buffer.PaForOffset(rng.UniformIndex(lines) * kCacheLineSize);
  }
  AccessBatch batch;
  batch.gather = std::span<const PhysAddr>(chunk.data(), count);
  return write ? hierarchy.WriteRange(core, batch).cycles
               : hierarchy.ReadRange(core, batch).cycles;
}

}  // namespace

Cycles RunRandomAccess(MemoryHierarchy& hierarchy, const MemoryBuffer& buffer, CoreId core,
                       const RandomAccessParams& params) {
  Warmup(hierarchy, buffer, core, params.warmup_lines_cap);
  Rng rng(params.seed);
  Cycles total = 0;
  std::array<PhysAddr, kReplayChunk> chunk;
  std::size_t done = 0;
  while (done < params.ops) {
    const std::size_t quota = std::min(kReplayChunk, params.ops - done);
    total += AccessChunk(hierarchy, buffer, core, params.write, rng, chunk, quota);
    done += quota;
  }
  return total;
}

std::vector<Cycles> RunRandomAccessMultiCore(MemoryHierarchy& hierarchy,
                                             const std::vector<const MemoryBuffer*>& buffers,
                                             const RandomAccessParams& params,
                                             std::size_t batch) {
  const std::size_t cores = buffers.size();
  std::vector<Rng> rngs;
  rngs.reserve(cores);
  for (std::size_t c = 0; c < cores; ++c) {
    rngs.emplace_back(params.seed + 31 * c);
  }
  // Interleaved warm-up.
  for (std::size_t c = 0; c < cores; ++c) {
    Warmup(hierarchy, *buffers[c], static_cast<CoreId>(c), params.warmup_lines_cap);
  }
  std::vector<Cycles> totals(cores, 0);
  std::vector<std::size_t> done(cores, 0);
  std::array<PhysAddr, kReplayChunk> chunk;
  bool any = true;
  while (any) {
    any = false;
    for (std::size_t c = 0; c < cores; ++c) {
      const std::size_t quota = std::min(batch, params.ops - done[c]);
      std::size_t issued = 0;
      while (issued < quota) {
        const std::size_t n = std::min(kReplayChunk, quota - issued);
        totals[c] += AccessChunk(hierarchy, *buffers[c], static_cast<CoreId>(c), params.write,
                                 rngs[c], chunk, n);
        issued += n;
      }
      done[c] += quota;
      any = any || done[c] < params.ops;
    }
  }
  return totals;
}

}  // namespace cachedir
