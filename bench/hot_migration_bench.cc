// §8 extension bench: monitoring/migration for variable hot data.
//
// The workload accesses a 1 MB hot window uniformly inside a 64 MB object
// space; the window DRIFTS periodically. Strategies: plain contiguous
// memory, one-shot static promotion of the first window into the near
// slice, an adaptive migrator paying CPU copy costs, and an adaptive
// migrator with hardware-assisted (uncharged) migration — the H/W support
// the paper's §8 points at ([23, 45]).
#include <cstdio>

#include "bench/common.h"
#include "src/hash/presets.h"
#include "src/sim/machine.h"
#include "src/sim/rng.h"
#include "src/slice/hot_migrator.h"

namespace cachedir {
namespace {

constexpr std::size_t kObjects = 1 << 20;        // 64 MB of 64 B objects
constexpr std::size_t kWindowObjects = 1 << 14;  // 1 MB hot window
// Relocating an object costs one compulsory miss on its new home, so
// migration pays off only when each hot object is re-used enough times per
// phase (~75 accesses/object here) — the bench's point.
constexpr std::uint64_t kAccesses = 2400000;
constexpr std::uint64_t kDriftEvery = 1200000;  // window shift period
constexpr std::uint64_t kEpoch = 50000;

enum class Strategy { kNormal, kStaticPromotion, kAdaptiveCpu, kAdaptiveHw };

double MeasureCyclesPerAccess(Strategy strategy) {
  MemoryHierarchy hierarchy(HaswellXeonE52667V3(), HaswellSliceHash(), 53);
  PhysicalMemory memory;
  HugepageAllocator backing;
  SliceAwareAllocator slice_alloc(backing, HaswellSliceHash());

  HotDataMigrator::Params params;
  params.num_objects = kObjects;
  params.hot_capacity = kWindowObjects;
  params.target_slice = 0;
  params.epoch_accesses = kEpoch;
  params.charge_migration = strategy != Strategy::kAdaptiveHw;
  HotDataMigrator migrator(hierarchy, memory, backing, slice_alloc, params);

  Rng rng(61);
  Cycles total = 0;
  std::uint64_t window_base = 0;
  for (std::uint64_t i = 0; i < kAccesses; ++i) {
    if (i > 0 && i % kDriftEvery == 0) {
      window_base = (window_base + 3 * kWindowObjects) % kObjects;
    }
    const std::uint64_t object = (window_base + rng.UniformIndex(kWindowObjects)) % kObjects;
    switch (strategy) {
      case Strategy::kNormal:
        total += hierarchy.Read(0, migrator.HomeOf(object)).cycles;
        break;
      case Strategy::kStaticPromotion:
        // Let the migrator establish the first window, then freeze it.
        if (i < kEpoch) {
          total += migrator.Access(0, object, false);
        } else {
          total += hierarchy.Read(0, migrator.HomeOf(object)).cycles;
        }
        break;
      case Strategy::kAdaptiveCpu:
      case Strategy::kAdaptiveHw:
        total += migrator.Access(0, object, false);
        break;
    }
  }
  return static_cast<double>(total) / static_cast<double>(kAccesses);
}

void Run() {
  PrintBanner("§8 extension", "hot-data migration under a drifting 1 MB hot window");
  std::printf("%-26s  %-18s\n", "Strategy", "cycles/access");
  PrintSectionRule();
  const struct {
    const char* label;
    Strategy strategy;
  } rows[] = {{"normal (no slice)", Strategy::kNormal},
              {"static promotion", Strategy::kStaticPromotion},
              {"adaptive (CPU copies)", Strategy::kAdaptiveCpu},
              {"adaptive (H/W assisted)", Strategy::kAdaptiveHw}};
  for (const auto& row : rows) {
    std::printf("%-26s  %-18.1f\n", row.label, MeasureCyclesPerAccess(row.strategy));
  }
  PrintSectionRule();
  std::printf("expectation: static promotion decays when the window drifts; the\n");
  std::printf("adaptive migrator follows it — worthwhile only if migration is cheap\n");
  std::printf("(the H/W-assisted row), supporting §8's call for hardware support\n");
}

}  // namespace
}  // namespace cachedir

int main() {
  cachedir::Run();
  return 0;
}
