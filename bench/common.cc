#include "bench/common.h"

#include <chrono>  // whitelisted: the host-timing shim lives here (detlint wall-clock rule)

namespace cachedir {

namespace {

std::uint64_t MonotonicHostNanos() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

}  // namespace

HostTimer::HostTimer() : start_ns_(MonotonicHostNanos()) {}

void HostTimer::Restart() { start_ns_ = MonotonicHostNanos(); }

double HostTimer::Seconds() const {
  return static_cast<double>(MonotonicHostNanos() - start_ns_) * 1e-9;
}

}  // namespace cachedir
