#include "bench/common.h"

#include <atomic>
#include <chrono>  // whitelisted: the host-timing shim lives here (detlint wall-clock rule)
#include <cstdlib>
#include <thread>

namespace cachedir {

namespace {

std::uint64_t MonotonicHostNanos() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

}  // namespace

HostTimer::HostTimer() : start_ns_(MonotonicHostNanos()) {}

void HostTimer::Restart() { start_ns_ = MonotonicHostNanos(); }

double HostTimer::Seconds() const {
  return static_cast<double>(MonotonicHostNanos() - start_ns_) * 1e-9;
}

std::size_t BenchThreadCount(std::size_t n) {
  std::size_t threads = std::thread::hardware_concurrency();
  if (const char* env = std::getenv("CACHEDIR_BENCH_THREADS"); env != nullptr) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) {
      threads = static_cast<std::size_t>(parsed);
    }
  }
  if (threads == 0) {
    threads = 1;
  }
  return threads < n ? threads : n;
}

void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& body) {
  if (n == 0) {
    return;
  }
  const std::size_t threads = BenchThreadCount(n);
  if (threads <= 1) {
    for (std::size_t i = 0; i < n; ++i) {
      body(i);
    }
    return;
  }
  // Work-stealing by atomic ticket: which thread runs which repetition is
  // scheduling-dependent, but repetitions are independent and results land
  // in per-repetition slots, so the merged output is deterministic.
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    pool.emplace_back([&] {
      while (true) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) {
          return;
        }
        body(i);
      }
    });
  }
  for (std::thread& worker : pool) {
    worker.join();
  }
}

}  // namespace cachedir
