// Table 4: preferable (primary + secondary) LLC slices per core on the
// Skylake model, derived from measured latencies by the placement library.
#include <cstdio>

#include "bench/common.h"
#include "src/cache/hierarchy.h"
#include "src/hash/presets.h"
#include "src/sim/machine.h"
#include "src/slice/placement.h"

namespace cachedir {
namespace {

void Run() {
  PrintBanner("Table 4", "preferable slices per core, Xeon Gold 6134 (Skylake)");
  MemoryHierarchy hierarchy(SkylakeXeonGold6134(), SkylakeSliceHash());
  SlicePlacement placement(hierarchy);

  std::printf("%-6s  %-14s  %-20s\n", "Core", "Primary", "Secondary");
  PrintSectionRule();
  for (CoreId core = 0; core < 8; ++core) {
    std::string primary;
    for (const SliceId s : placement.PrimarySlices(core)) {
      primary += "S" + std::to_string(s) + " ";
    }
    std::string secondary;
    for (const SliceId s : placement.SecondarySlices(core)) {
      secondary += "S" + std::to_string(s) + " ";
    }
    std::printf("C%-5u  %-14s  %-20s\n", core, primary.c_str(), secondary.c_str());
  }
  PrintSectionRule();
  std::printf("paper: primaries S0 S4 S8 S12 S10 S14 S3 S15; secondaries\n");
  std::printf("{S2,S6} {S1} {S11} {S13} {S7,S9} {S16} {S5} {S17}\n");
}

}  // namespace
}  // namespace cachedir

int main() {
  cachedir::Run();
  return 0;
}
