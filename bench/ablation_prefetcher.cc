// Ablation (paper §8, "The impact of H/W prefetching"): slice-aware memory
// is non-contiguous, so the next-line prefetcher cannot help it — for
// *sequential* access patterns normal allocation plus prefetching can beat
// slice-awareness, while random patterns keep the slice-aware win. This
// bench quantifies both quadrants.
#include <cstdio>

#include "bench/common.h"
#include "bench/random_access.h"
#include "src/hash/presets.h"
#include "src/mem/hugepage.h"
#include "src/sim/machine.h"
#include "src/slice/slice_allocator.h"

namespace cachedir {
namespace {

constexpr std::size_t kWorkingSetBytes = 1408 * 1024;  // 1.375 MB (Fig. 6 size)
constexpr std::size_t kOps = 20000;

double MeasureCyclesPerOp(bool slice_aware, bool prefetch, bool sequential) {
  MachineSpec spec = HaswellXeonE52667V3();
  spec.l2_next_line_prefetch = prefetch;
  MemoryHierarchy hierarchy(spec, HaswellSliceHash(), 3);
  HugepageAllocator backing;

  std::unique_ptr<MemoryBuffer> buffer;
  if (slice_aware) {
    SliceAwareAllocator alloc(backing, HaswellSliceHash());
    buffer = std::make_unique<SliceBuffer>(alloc.AllocateBytes(0, kWorkingSetBytes));
  } else {
    buffer = std::make_unique<ContiguousBuffer>(
        backing.Allocate(kWorkingSetBytes, PageSize::k1G).pa, kWorkingSetBytes);
  }

  const std::size_t lines = buffer->size_bytes() / kCacheLineSize;
  Cycles total = 0;
  if (sequential) {
    // Stream the buffer repeatedly; flush between passes so every pass pays
    // the memory system (this is where the prefetcher shines).
    std::size_t done = 0;
    while (done < kOps) {
      hierarchy.FlushAll();
      for (std::size_t i = 0; i < lines && done < kOps; ++i, ++done) {
        total += hierarchy.Read(0, buffer->PaForOffset(i * kCacheLineSize)).cycles;
      }
    }
  } else {
    RandomAccessParams params;
    params.ops = kOps;
    params.seed = 9;
    params.warmup_lines_cap = 1 << 20;
    total = RunRandomAccess(hierarchy, *buffer, 0, params);
  }
  return static_cast<double>(total) / kOps;
}

void Run() {
  PrintBanner("Ablation", "H/W next-line prefetching vs slice-aware layout (Haswell)");
  std::printf("%-12s  %-10s  %-16s  %-16s\n", "Pattern", "Prefetch", "Normal (cyc/op)",
              "Slice-0 (cyc/op)");
  PrintSectionRule();
  for (const bool sequential : {false, true}) {
    for (const bool prefetch : {false, true}) {
      const double normal = MeasureCyclesPerOp(false, prefetch, sequential);
      const double aware = MeasureCyclesPerOp(true, prefetch, sequential);
      std::printf("%-12s  %-10s  %-16.1f  %-16.1f\n", sequential ? "sequential" : "random",
                  prefetch ? "on" : "off", normal, aware);
    }
  }
  PrintSectionRule();
  std::printf("expectation (paper §8): slice-aware keeps its win for random access;\n");
  std::printf("for sequential access the prefetcher rescues normal allocation, and\n");
  std::printf("slice-aware non-contiguity forfeits that help\n");
}

}  // namespace
}  // namespace cachedir

int main() {
  cachedir::Run();
  return 0;
}
