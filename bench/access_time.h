// The paper's §2.2 access-time experiment, reusable for Fig. 5 (Haswell)
// and Fig. 16 (Skylake): fill one LLC set of one slice with 20 lines from a
// 1 GB hugepage, flush, re-read all 20 (the first 12 fall out of the 8-way
// L1/L2 again), then time reads of the first 8 — which are pure LLC-slice
// hits — and writes to the same (now L1-resident) lines.
#ifndef CACHEDIRECTOR_BENCH_ACCESS_TIME_H_
#define CACHEDIRECTOR_BENCH_ACCESS_TIME_H_

#include <memory>
#include <vector>

#include "src/hash/slice_hash.h"
#include "src/sim/machine.h"

namespace cachedir {

struct AccessTimeResult {
  // Average cycles per read / per write, indexed by slice.
  std::vector<double> read_cycles;
  std::vector<double> write_cycles;
};

AccessTimeResult MeasureSliceAccessTimes(const MachineSpec& spec,
                                         std::shared_ptr<const SliceHash> hash, CoreId core,
                                         int repetitions);

}  // namespace cachedir

#endif  // CACHEDIRECTOR_BENCH_ACCESS_TIME_H_
