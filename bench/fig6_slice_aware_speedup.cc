// Fig. 6: average speedup of slice-aware allocation over normal allocation
// for core 0, per target slice, for reads and writes. The working set is
// 1.375 MB (half a slice plus L2), accessed 10000 times uniformly at random;
// reported values average several seeded runs, as in the paper's 100 runs.
#include <cstdio>

#include "bench/common.h"
#include "bench/random_access.h"
#include "src/hash/presets.h"
#include "src/mem/hugepage.h"
#include "src/sim/machine.h"
#include "src/slice/slice_allocator.h"

namespace cachedir {
namespace {

constexpr std::size_t kWorkingSetBytes = 1408 * 1024;  // 1.375 MB
constexpr std::size_t kOps = 10000;
constexpr int kRuns = 25;

double MeasureMs(bool slice_aware, SliceId slice, bool write, std::uint64_t seed) {
  MemoryHierarchy hierarchy(HaswellXeonE52667V3(), HaswellSliceHash(), seed);
  HugepageAllocator backing;
  RandomAccessParams params;
  params.ops = kOps;
  params.write = write;
  params.seed = seed;
  params.warmup_lines_cap = 1 << 20;

  Cycles cycles = 0;
  if (slice_aware) {
    SliceAwareAllocator alloc(backing, HaswellSliceHash());
    const SliceBuffer buf = alloc.AllocateBytes(slice, kWorkingSetBytes);
    cycles = RunRandomAccess(hierarchy, buf, /*core=*/0, params);
  } else {
    // Note: the mapping is page-rounded; the buffer must use the requested
    // working-set size, not the mapping size.
    const ContiguousBuffer buf(backing.Allocate(kWorkingSetBytes, PageSize::k1G).pa,
                               kWorkingSetBytes);
    cycles = RunRandomAccess(hierarchy, buf, /*core=*/0, params);
  }
  return hierarchy.spec().frequency.ToNanoseconds(cycles) / 1e6;
}

// Mean over kRuns seeded, independent runs, executed on the bench thread
// pool; summation in run order keeps the mean bit-identical to the serial
// loop.
double MeanMs(bool slice_aware, SliceId slice, bool write, std::uint64_t base_seed) {
  const auto ms = RunRepetitions(
      kRuns, base_seed, [&](std::size_t, std::uint64_t seed) {
        return MeasureMs(slice_aware, slice, write, seed);
      });
  double total = 0;
  for (const double m : ms) {
    total += m;
  }
  return total / kRuns;
}

void Run() {
  PrintBanner("Fig 6", "slice-aware vs normal allocation speedup, core 0 (Haswell)");
  std::printf("%-6s  %-20s  %-20s\n", "Slice", "Read speedup (%)", "Write speedup (%)");
  PrintSectionRule();

  const double normal_read_ms = MeanMs(false, 0, false, 1000);
  const double normal_write_ms = MeanMs(false, 0, true, 2000);

  for (SliceId slice = 0; slice < 8; ++slice) {
    const double read_ms = MeanMs(true, slice, false, 1000);
    const double write_ms = MeanMs(true, slice, true, 2000);
    std::printf("%-6u  %+-20.2f  %+-20.2f\n", slice,
                100.0 * (normal_read_ms - read_ms) / normal_read_ms,
                100.0 * (normal_write_ms - write_ms) / normal_write_ms);
  }
  PrintSectionRule();
  std::printf("normal-allocation baseline: read %.3f ms, write %.3f ms per %zu ops\n",
              normal_read_ms, normal_write_ms, kOps);
  std::printf("paper shape: near slices positive (up to ~15 %%), far slices negative\n");
}

}  // namespace
}  // namespace cachedir

int main() {
  cachedir::Run();
  return 0;
}
