// Ablation: does the slice-aware speedup (Fig. 6 setup) survive under
// different LLC replacement policies? The paper's reasoning only relies on
// hot lines staying resident; this checks LRU vs tree-PLRU vs random.
#include <cstdio>

#include "bench/common.h"
#include "bench/random_access.h"
#include "src/cache/replacement.h"
#include "src/hash/presets.h"
#include "src/mem/hugepage.h"
#include "src/sim/machine.h"
#include "src/slice/slice_allocator.h"

namespace cachedir {
namespace {

constexpr std::size_t kWorkingSetBytes = 1408 * 1024;
constexpr std::size_t kOps = 10000;
constexpr int kRuns = 10;

double MeasureMs(ReplacementKind kind, bool slice_aware, std::uint64_t seed) {
  MachineSpec spec = HaswellXeonE52667V3();
  spec.replacement = kind;
  MemoryHierarchy hierarchy(spec, HaswellSliceHash(), seed);
  HugepageAllocator backing;
  RandomAccessParams params;
  params.ops = kOps;
  params.seed = seed;
  params.warmup_lines_cap = 1 << 20;
  Cycles cycles = 0;
  if (slice_aware) {
    SliceAwareAllocator alloc(backing, HaswellSliceHash());
    const SliceBuffer buf = alloc.AllocateBytes(0, kWorkingSetBytes);
    cycles = RunRandomAccess(hierarchy, buf, 0, params);
  } else {
    const ContiguousBuffer buf(backing.Allocate(kWorkingSetBytes, PageSize::k1G).pa,
                               kWorkingSetBytes);
    cycles = RunRandomAccess(hierarchy, buf, 0, params);
  }
  return hierarchy.spec().frequency.ToNanoseconds(cycles) / 1e6;
}

void Run() {
  PrintBanner("Ablation", "slice-aware read speedup under different replacement policies");
  std::printf("%-10s  %-14s  %-14s  %-10s\n", "Policy", "Normal (ms)", "Slice-0 (ms)",
              "Speedup");
  PrintSectionRule();
  for (const auto& [label, kind] :
       {std::pair{"LRU", ReplacementKind::kLru}, std::pair{"PLRU", ReplacementKind::kTreePlru},
        std::pair{"Random", ReplacementKind::kRandom}}) {
    double normal = 0;
    double aware = 0;
    for (int run = 0; run < kRuns; ++run) {
      normal += MeasureMs(kind, false, 100 + run);
      aware += MeasureMs(kind, true, 100 + run);
    }
    normal /= kRuns;
    aware /= kRuns;
    std::printf("%-10s  %-14.3f  %-14.3f  %+8.2f%%\n", label, normal, aware,
                100.0 * (normal - aware) / normal);
  }
  PrintSectionRule();
  std::printf("expectation: the speedup is a latency effect, not a replacement\n");
  std::printf("effect — it survives all three policies\n");
}

}  // namespace
}  // namespace cachedir

int main() {
  cachedir::Run();
  return 0;
}
