// Fig. 7: aggregate operations per second of 8 cores doing uniform random
// accesses, sweeping the per-core array size from 32 kB to 128 MB, for
// normal vs slice-aware allocation (each core's array in its closest slice).
// The slice-aware win appears while the working set fits a slice and fades
// into DRAM-bound territory.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/common.h"
#include "bench/random_access.h"
#include "src/hash/presets.h"
#include "src/mem/hugepage.h"
#include "src/sim/machine.h"
#include "src/slice/placement.h"
#include "src/slice/slice_mapper.h"

namespace cachedir {
namespace {

constexpr std::size_t kOpsPerCore = 20000;

double MeasureMops(std::size_t array_bytes, bool slice_aware, bool write,
                   std::uint64_t seed) {
  MemoryHierarchy hierarchy(HaswellXeonE52667V3(), HaswellSliceHash(), seed);
  SlicePlacement placement(hierarchy);
  HugepageAllocator backing;

  std::vector<std::unique_ptr<MemoryBuffer>> owned;
  std::vector<const MemoryBuffer*> buffers;
  const std::size_t lines = array_bytes / kCacheLineSize;
  for (CoreId core = 0; core < 8; ++core) {
    if (slice_aware) {
      owned.push_back(std::make_unique<SliceBuffer>(GatherSliceLines(
          backing, hierarchy.llc().hash(), placement.ClosestSlice(core), lines,
          array_bytes >= (64u << 20) ? PageSize::k1G : PageSize::k2M)));
    } else {
      owned.push_back(std::make_unique<ContiguousBuffer>(
          backing.Allocate(array_bytes, PageSize::k2M).pa, array_bytes));
    }
    buffers.push_back(owned.back().get());
  }

  RandomAccessParams params;
  params.ops = kOpsPerCore;
  params.write = write;
  params.seed = seed;
  params.warmup_lines_cap = 1 << 19;  // cap warm-up on DRAM-sized arrays

  const std::vector<Cycles> per_core = RunRandomAccessMultiCore(hierarchy, buffers, params);
  Cycles slowest = 0;
  for (const Cycles c : per_core) {
    slowest = std::max(slowest, c);
  }
  const double seconds = hierarchy.spec().frequency.ToNanoseconds(slowest) / 1e9;
  return 8.0 * static_cast<double>(kOpsPerCore) / seconds / 1e6;
}

void Run() {
  PrintBanner("Fig 7", "8-core OPS vs array size, normal vs slice-aware (Haswell)");
  std::printf("%-10s  %-12s %-12s  %-12s %-12s\n", "Size", "Read-Norm", "Read-Slice",
              "Write-Norm", "Write-Slice");
  std::printf("%-10s  %-25s  %-25s   (Mops)\n", "", "", "");
  PrintSectionRule();
  const std::size_t sizes[] = {32u << 10, 64u << 10,  128u << 10, 256u << 10, 512u << 10,
                               1u << 20,  2u << 20,   4u << 20,   8u << 20,   16u << 20,
                               32u << 20, 64u << 20,  128u << 20};
  const char* labels[] = {"32K", "64K", "128K", "256K", "512K", "1M",  "2M",
                          "4M",  "8M",  "16M",  "32M",  "64M",  "128M"};
  for (std::size_t i = 0; i < std::size(sizes); ++i) {
    const double rn = MeasureMops(sizes[i], false, false, 42);
    const double rs = MeasureMops(sizes[i], true, false, 42);
    const double wn = MeasureMops(sizes[i], false, true, 43);
    const double ws = MeasureMops(sizes[i], true, true, 43);
    std::printf("%-10s  %-12.1f %-12.1f  %-12.1f %-12.1f\n", labels[i], rn, rs, wn, ws);
  }
  PrintSectionRule();
  std::printf("paper shape: slice-aware wins while the per-core set fits a slice\n");
  std::printf("(<= 2.5 MB region), converges once DRAM dominates (>= 32 MB)\n");
}

}  // namespace
}  // namespace cachedir

int main() {
  cachedir::Run();
  return 0;
}
