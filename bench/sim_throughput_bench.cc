// Simulator-throughput baseline: how many simulated memory accesses per
// host second the hierarchy sustains on a coherence-heavy workload, for 1-,
// 4- and 8-core configurations.
//
// This is the one bench that reads the HOST clock — through bench/common's
// HostTimer shim, the single wall-clock site detlint whitelists. The timing
// is report-only plumbing: it goes to stderr and to a JSON file (path given
// as argv[1], default ./BENCH_simcore_fresh.json — gitignored) that
// tools/check_perf_baseline.py compares against the committed
// BENCH_simcore.json trajectory, and it never
// feeds back into any simulated quantity. stdout carries only deterministic
// simulated stats, so `for b in build/bench/*` output stays reproducible
// bit-for-bit.
//
// Workload: an NFV-style receive loop — NIC DMA into a DDIO ring, header
// reads by the cores, shared flow-counter updates. This exercises exactly
// the paths the line-state directory made O(1): BackInvalidate on DMA and
// DDIO evictions, HeldElsewhere / DirtyElsewhere on stores and misses,
// InvalidateElsewhere / DowngradeElsewhere on ownership transfers.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "src/cache/hierarchy.h"
#include "src/hash/presets.h"
#include "src/mem/hugepage.h"
#include "src/sim/epoch_engine.h"
#include "src/sim/machine.h"
#include "src/sim/rng.h"

namespace cachedir {
namespace {

// NFV-flavoured I/O loop, the paper's own coherence-heavy scenario: the NIC
// DMA-writes packets into a ring via DDIO, cores read the packet headers,
// and every eighth packet bumps a shared per-flow counter.
//
//  * Each DMA'd line back-invalidates stale core copies, and because the
//    ring exceeds the DDIO way capacity, each one also evicts an earlier
//    line from the DDIO ways — which back-invalidates again.
//  * Header reads are L2 misses that snoop for a remote dirty owner.
//  * Counter writes are upgrades / RFOs that invalidate the other cores'
//    copies and forward dirty data between cores.
//
// Every one of those consults the coherence state; the line-state directory
// answers each in O(1) where the tag arrays of every core were scanned
// before.
constexpr std::size_t kPacketBytes = 1536;       // MTU-sized: 24 lines per packet
constexpr std::size_t kRingBytes = 24u << 20;    // >> DDIO capacity (2 of 20 ways)
constexpr std::size_t kCounterLines = 64;        // shared flow counters
constexpr std::size_t kPipelineDelay = 8;        // packets in flight before a core reads
constexpr std::size_t kPackets = 300000;
constexpr std::size_t kTrials = 3;  // host timing takes the fastest trial (noise floor)

struct ConfigResult {
  std::size_t cores = 0;
  std::uint64_t accesses = 0;
  Cycles simulated_cycles = 0;
  std::uint64_t llc_misses = 0;
  std::uint64_t dma_writes = 0;
  double host_seconds = 0;  // report-only; never enters simulated results
  // Engine runs only: the per-window counters (speculative / fast-commit /
  // aborted windows, merged micro-ops, journal rows, adaptive trajectory).
  // Deterministic — identical across trials — so best-of-trials keeps them.
  EpochEngineStats engine_stats;
};

// Up to 8 cores runs the calibrated E5-2667 v3 preset; 9..64 runs the
// Haswell-derived many-core configuration (same 8-slice ring uncore).
MachineSpec SpecForCores(std::size_t cores) {
  return cores <= 8 ? HaswellXeonE52667V3() : HaswellDerivedManyCore(cores);
}

// engine_threads == 0 runs the serial engine; > 0 shards the same run across
// that many host worker threads through the EpochEngine. Simulated outputs
// are bit-identical either way (epoch_equivalence_test); Run() double-checks
// the printed columns and aborts on any mismatch.
ConfigResult RunConfig(std::size_t cores, std::size_t engine_threads) {
  MemoryHierarchy hierarchy(SpecForCores(cores), HaswellSliceHash(), /*seed=*/5);
  EpochEngineOptions engine_options;
  engine_options.num_threads = engine_threads;
  std::unique_ptr<EpochEngine> engine;
  if (engine_threads > 0) {
    engine = std::make_unique<EpochEngine>(hierarchy, engine_options);
  }
  HugepageAllocator backing;
  const PhysAddr ring = backing.Allocate(kRingBytes, PageSize::k1G).pa;
  const PhysAddr counters = backing.Allocate(kCounterLines * kCacheLineSize, PageSize::k1G).pa;
  const std::size_t ring_packets = kRingBytes / kPacketBytes;

  Rng rng(17);
  ConfigResult result;
  result.cores = cores;
  Cycles cycles = 0;

  std::uint64_t accesses = 0;
  HostTimer timer;
  for (std::size_t it = 0; it < kPackets; ++it) {
    // NIC: DMA the next packet into the ring (DDIO), all 24 lines as one
    // fused batch. Back-invalidates stale core copies from the previous lap
    // and evicts an older line from the DDIO ways.
    cycles += hierarchy.DmaWriteRange(ring + (it % ring_packets) * kPacketBytes, kPacketBytes);
    accesses += kPacketBytes / kCacheLineSize;
    if (it < kPipelineDelay) {
      continue;
    }
    // A core picks up a packet DMA'd a few iterations ago and reads its
    // header line out of the DDIO ways.
    const CoreId core = static_cast<CoreId>(it % cores);
    const PhysAddr header = ring + ((it - kPipelineDelay) % ring_packets) * kPacketBytes;
    cycles += hierarchy.Read(core, header).cycles;
    ++accesses;
    if ((it & 7u) == 7u) {
      // Per-flow accounting: a write to a shared counter line, upgrading or
      // stealing ownership from whichever core bumped it last.
      const PhysAddr counter = counters + rng.UniformIndex(kCounterLines) * kCacheLineSize;
      cycles += hierarchy.Write(core, counter).cycles;
      ++accesses;
    }
  }
  if (engine != nullptr) {
    // Settle the tail window inside the timed region, then read the charges
    // the per-op returns deferred (capture-mode calls return placeholders).
    engine->Flush();
    cycles = engine->total_cycles();
    result.engine_stats = engine->engine_stats();
  }
  result.host_seconds = timer.Seconds();

  result.accesses = accesses;
  result.simulated_cycles = cycles;
  result.llc_misses = hierarchy.stats().llc_misses;
  result.dma_writes = hierarchy.stats().dma_line_writes;
  return result;
}

// Fastest-of-kTrials run of one configuration. The simulation is
// deterministic, so every trial produces identical simulated state; only the
// host-side wall time varies. Reporting the fastest trial filters scheduler
// noise out of the throughput number.
ConfigResult BestOfTrials(std::size_t cores, std::size_t engine_threads) {
  ConfigResult best = RunConfig(cores, engine_threads);
  for (std::size_t t = 1; t < kTrials; ++t) {
    const ConfigResult trial = RunConfig(cores, engine_threads);
    if (trial.host_seconds < best.host_seconds) {
      best = trial;
    }
  }
  return best;
}

void PrintResultRow(const ConfigResult& r) {
  // Deterministic, replacement for the figure tables: simulated state only.
  std::printf("%-6zu  %-12llu  %-14llu  %-12llu  %-12llu\n", r.cores,
              static_cast<unsigned long long>(r.accesses),
              static_cast<unsigned long long>(r.simulated_cycles),
              static_cast<unsigned long long>(r.llc_misses),
              static_cast<unsigned long long>(r.dma_writes));
}

// Host-side throughput: stderr + JSON only (stdout must stay deterministic).
// The JSON schema matches the "configs" arrays inside the committed
// BENCH_simcore.json history entries, so tools/check_perf_baseline.py can
// compare a fresh run against the checked-in trajectory point.
void WriteHostTiming(const char* json_path, const char* bench_name,
                     const std::vector<ConfigResult>& results, std::size_t engine_threads) {
  FILE* json = std::fopen(json_path, "w");
  if (json == nullptr) {
    std::fprintf(stderr, "warning: cannot open %s for writing\n", json_path);
  } else {
    std::fprintf(json,
                 "{\n  \"bench\": \"%s\",\n"
                 "  \"machine\": {\"hardware_threads\": %u, \"compiler\": \"%s\", "
                 "\"build\": \"%s\"},\n",
                 bench_name,
                 // Host metadata sidecar only, not simulated output. detlint: allow(nondet-env)
                 std::thread::hardware_concurrency(), __VERSION__,
#ifdef NDEBUG
                 "release"
#else
                 "debug"
#endif
    );
    if (engine_threads > 0) {
      std::fprintf(json, "  \"engine_threads\": %zu,\n", engine_threads);
    }
    std::fprintf(json, "  \"configs\": [\n");
  }
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ConfigResult& r = results[i];
    const double rate = r.host_seconds > 0 ? static_cast<double>(r.accesses) / r.host_seconds
                                           : 0.0;
    std::fprintf(stderr, "%s cores=%zu accesses=%llu host_s=%.3f accesses_per_sec=%.3e\n",
                 bench_name, r.cores, static_cast<unsigned long long>(r.accesses),
                 r.host_seconds, rate);
    if (json == nullptr) {
      continue;
    }
    std::fprintf(json,
                 "    {\"cores\": %zu, \"accesses\": %llu, \"host_seconds\": %.6f, "
                 "\"accesses_per_sec\": %.1f",
                 r.cores, static_cast<unsigned long long>(r.accesses), r.host_seconds, rate);
    if (engine_threads > 0) {
      // The engine's per-window telemetry: how the window was settled
      // (fast-commit / full replay / abort), how much phase-2 work the merge
      // did, and the adaptive controller's budget trajectory. Deterministic
      // simulated facts — safe next to the host-timing numbers.
      const EpochEngineStats& es = r.engine_stats;
      std::fprintf(json,
                   ",\n     \"engine\": {\"windows\": %llu, \"speculative_windows\": %llu, "
                   "\"fast_commit_windows\": %llu, \"aborted_windows\": %llu, "
                   "\"effects_applied\": %llu, \"merged_micro_ops\": %llu, "
                   "\"journal_rows_saved\": %llu,\n      \"window_size_trajectory\": [",
                   static_cast<unsigned long long>(es.windows),
                   static_cast<unsigned long long>(es.speculative_windows),
                   static_cast<unsigned long long>(es.fast_commit_windows),
                   static_cast<unsigned long long>(es.aborted_windows),
                   static_cast<unsigned long long>(es.effects_applied),
                   static_cast<unsigned long long>(es.merged_micro_ops),
                   static_cast<unsigned long long>(es.journal_rows_saved));
      for (std::size_t t = 0; t < es.window_size_trajectory.size(); ++t) {
        std::fprintf(json, "%s%u", t == 0 ? "" : ", ", es.window_size_trajectory[t]);
      }
      std::fprintf(json, "]}");
    }
    std::fprintf(json, "}%s\n", i + 1 < results.size() ? "," : "");
  }
  if (json != nullptr) {
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
  }
}

int Run(const char* json_path, const char* engine_json_path,
        const std::vector<std::size_t>& configs, std::size_t engine_threads) {
  PrintBanner("simcore", "simulator throughput: coherence-heavy accesses per host second");
  std::printf("%-6s  %-12s  %-14s  %-12s  %-12s\n", "Cores", "Accesses", "Sim cycles",
              "LLC misses", "DMA writes");
  PrintSectionRule();

  std::vector<ConfigResult> results(configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    results[i] = BestOfTrials(configs[i], /*engine_threads=*/0);
    PrintResultRow(results[i]);
  }
  PrintSectionRule();
  std::printf("host-side accesses/sec on stderr; baseline in BENCH_simcore.json\n");

  std::vector<ConfigResult> engine_results;
  if (engine_threads > 0) {
    // Same run sharded across host workers by the epoch engine. The rows must
    // be byte-identical to the serial rows above — the engine's determinism
    // contract — so any simulated-column mismatch is a hard failure, not a
    // report.
    std::printf("epoch engine, %zu host thread%s: same simulated run\n", engine_threads,
                engine_threads == 1 ? "" : "s");
    PrintSectionRule();
    engine_results.resize(configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
      engine_results[i] = BestOfTrials(configs[i], engine_threads);
      PrintResultRow(engine_results[i]);
      const ConfigResult& s = results[i];
      const ConfigResult& e = engine_results[i];
      if (e.accesses != s.accesses || e.simulated_cycles != s.simulated_cycles ||
          e.llc_misses != s.llc_misses || e.dma_writes != s.dma_writes) {
        std::fprintf(stderr,
                     "FATAL: epoch engine diverged from the serial engine at cores=%zu\n",
                     configs[i]);
        return 1;
      }
    }
    PrintSectionRule();
    std::printf("engine rows verified bit-identical to the serial rows\n");
  }

  WriteHostTiming(json_path, "sim_throughput", results, /*engine_threads=*/0);
  if (engine_threads > 0) {
    WriteHostTiming(engine_json_path, "sim_throughput_engine", engine_results, engine_threads);
  }
  return 0;
}

}  // namespace
}  // namespace cachedir

int main(int argc, char** argv) {
  // Arguments, in any order:
  //  * --cores=N[,N...]       run only the listed core counts (default:
  //    1,4,8 — perf-smoke CI passes --cores=1 to keep hosted runs quick).
  //    Up to 8 cores is the calibrated Haswell preset; 9..64 runs the
  //    Haswell-derived many-core configuration, and 64 is the LineDirectory
  //    sharer-mask limit no preset can exceed.
  //  * --engine-threads=N     additionally rerun every config through the
  //    epoch engine with N host worker threads (1..64) and verify the rows
  //    are bit-identical; host timing goes to --engine-json. Default off,
  //    so a plain `for b in build/bench/*` sweep's stdout is unchanged.
  //  * --engine-json=PATH     engine-run host-timing JSON (default
  //    BENCH_simcore_engine_fresh.json, gitignored like the serial one).
  //  * anything else          path for the serial host-timing JSON. The
  //    default is a gitignored name so a sweep never clobbers the committed
  //    BENCH_simcore.json trajectory.
  const char* json_path = "BENCH_simcore_fresh.json";
  const char* engine_json_path = "BENCH_simcore_engine_fresh.json";
  std::size_t engine_threads = 0;
  std::vector<std::size_t> configs = {1, 4, 8};
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--cores=", 8) == 0) {
      configs.clear();
      const char* p = argv[i] + 8;
      while (*p != '\0') {
        char* end = nullptr;
        const unsigned long cores = std::strtoul(p, &end, 10);
        if (end == p || cores == 0 || cores > 64) {
          std::fprintf(stderr, "bad --cores value: %s (want 1..64, comma-separated)\n",
                       argv[i]);
          return 1;
        }
        configs.push_back(cores);
        p = *end == ',' ? end + 1 : end;
      }
      if (configs.empty()) {
        std::fprintf(stderr, "bad --cores value: %s (empty list)\n", argv[i]);
        return 1;
      }
    } else if (std::strncmp(argv[i], "--engine-threads=", 17) == 0) {
      char* end = nullptr;
      const unsigned long threads = std::strtoul(argv[i] + 17, &end, 10);
      if (end == argv[i] + 17 || *end != '\0' || threads == 0 || threads > 64) {
        std::fprintf(stderr, "bad --engine-threads value: %s (want 1..64)\n", argv[i]);
        return 1;
      }
      engine_threads = threads;
    } else if (std::strncmp(argv[i], "--engine-json=", 14) == 0) {
      engine_json_path = argv[i] + 14;
    } else {
      json_path = argv[i];
    }
  }
  return cachedir::Run(json_path, engine_json_path, configs, engine_threads);
}
