// The "more complete slice-aware KVS" evaluation the paper defers (§3.1):
// a real hash-table store (index probes + value bytes, all charged through
// the hierarchy) serving Zipf mixes on one core, slice-aware vs normal
// value placement, at a slice-friendly working-set size.
#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "src/hash/presets.h"
#include "src/kvs/hash_kvs.h"
#include "src/sim/machine.h"
#include "src/stats/zipf.h"

namespace cachedir {
namespace {

struct Result {
  double mtps = 0;
  double cycles_per_request = 0;
  double avg_probes = 0;
};

Result Measure(bool slice_aware, double get_fraction) {
  MemoryHierarchy hierarchy(HaswellXeonE52667V3(), HaswellSliceHash(), 37);
  PhysicalMemory memory;
  HugepageAllocator backing;
  HashKvs::Config config;
  config.num_buckets = 1 << 17;
  config.max_values = 1 << 15;  // 32 k values x 64 B = 2 MB: fits one slice
  config.value_bytes = 64;
  config.slice_aware = slice_aware;
  config.target_slice = 0;
  HashKvs kvs(hierarchy, memory, backing, config);

  // Populate.
  std::uint8_t value[64];
  for (std::size_t b = 0; b < sizeof(value); ++b) {
    value[b] = static_cast<std::uint8_t>(b);
  }
  for (std::uint64_t k = 0; k < config.max_values; ++k) {
    if (!kvs.Set(0, k, value).ok) {
      break;
    }
  }

  // Serve.
  ZipfGenerator keys(config.max_values, 0.99, 41);
  Rng ops(43);
  std::uint8_t out[64];
  const std::uint64_t warmup = 200000;
  const std::uint64_t requests = 600000;
  Cycles cycles = 0;
  for (std::uint64_t i = 0; i < warmup + requests; ++i) {
    const std::uint64_t key = keys.Next();
    const Cycles c = ops.Bernoulli(get_fraction) ? kvs.Get(0, key, out).cycles
                                                 : kvs.Set(0, key, value).cycles;
    if (i >= warmup) {
      cycles += c;
    }
  }
  Result r;
  r.cycles_per_request = static_cast<double>(cycles) / static_cast<double>(requests);
  r.mtps = hierarchy.spec().frequency.ghz() * 1e3 / r.cycles_per_request;
  r.avg_probes = kvs.AverageProbes();
  return r;
}

void Run() {
  PrintBanner("§3.1 extension", "full hash-table KVS, Zipf(0.99), 1 core, 2 MB hot set");
  std::printf("%-22s  %-10s %-10s %-10s  %-8s\n", "Configuration", "100% GET", "95% GET",
              "50% GET", "probes");
  std::printf("%-22s  %-32s (Mtps)\n", "", "");
  PrintSectionRule();
  // 2 configurations x 3 GET ratios, each an independent simulation: fan the
  // six cells out on the bench thread pool, print in row order.
  constexpr double kGets[3] = {1.0, 0.95, 0.50};
  Result results[2][3];
  ParallelFor(6, [&](std::size_t cell) {
    results[cell / 3][cell % 3] = Measure(/*slice_aware=*/cell / 3 == 1, kGets[cell % 3]);
  });
  for (const bool slice_aware : {false, true}) {
    const Result* row = results[slice_aware ? 1 : 0];
    std::printf("%-22s  %-10.3f %-10.3f %-10.3f  %-8.2f\n",
                slice_aware ? "Slice-aware values" : "Normal values", row[0].mtps,
                row[1].mtps, row[2].mtps, row[2].avg_probes);
  }
  PrintSectionRule();
  std::printf("unlike the emulation, every request pays real index probes; the\n");
  std::printf("slice-aware gain applies to the value access only\n");
}

}  // namespace
}  // namespace cachedir

int main() {
  cachedir::Run();
  return 0;
}
