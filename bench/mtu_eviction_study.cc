// Study of the paper's §8 "noisy neighbor effect" paragraph: at 100 Gbps,
// DDIO loads entire MTU frames (~24 lines each) into the LLC's small way
// partition, so headers of long-queued packets can be evicted to DRAM before
// the core reads them. This bench measures where header reads are actually
// served from, for 64 B vs 1500 B traffic, with and without CacheDirector.
#include <cstdio>
#include <memory>

#include "bench/common.h"
#include "src/hash/presets.h"
#include "src/netio/nic.h"
#include "src/nfv/chain.h"
#include "src/nfv/elements.h"
#include "src/nfv/runtime.h"
#include "src/sim/machine.h"
#include "src/slice/placement.h"

namespace cachedir {
namespace {

struct Served {
  double llc_fraction = 0;
  double dram_fraction = 0;
};

// An instrumenting element placed first in the chain: it records where the
// header read of every packet is served from.
class HeaderProbe final : public Element {
 public:
  explicit HeaderProbe(MemoryHierarchy& hierarchy) : hierarchy_(hierarchy) {}

  std::string name() const override { return "HeaderProbe"; }

  ProcessResult Process(CoreId core, Mbuf& mbuf) override {
    ProcessResult r;
    const AccessResult access = hierarchy_.Read(core, mbuf.data_pa());
    r.cycles = access.cycles;
    ++total_;
    if (access.level == ServedBy::kLlc) {
      ++llc_;
    } else if (access.level == ServedBy::kDram) {
      ++dram_;
    }
    return r;
  }

  Served served() const {
    Served s;
    if (total_ > 0) {
      s.llc_fraction = static_cast<double>(llc_) / static_cast<double>(total_);
      s.dram_fraction = static_cast<double>(dram_) / static_cast<double>(total_);
    }
    return s;
  }

 private:
  MemoryHierarchy& hierarchy_;
  std::uint64_t total_ = 0;
  std::uint64_t llc_ = 0;
  std::uint64_t dram_ = 0;
};

enum class Mode { kOff, kSingleSlice, kNearSliceSpread };

Served Measure(std::uint32_t frame_size, Mode mode) {
  MemoryHierarchy hierarchy(HaswellXeonE52667V3(), HaswellSliceHash(), 29);
  SlicePlacement placement(hierarchy);
  PhysicalMemory memory;
  HugepageAllocator backing;
  CacheDirector::Options options;
  options.enabled = mode != Mode::kOff;
  options.near_tolerance = mode == Mode::kNearSliceSpread ? 8 : 0;
  CacheDirector director(HaswellSliceHash(), placement, options);
  Mempool pool(backing, 8192, director);
  SimNic::Config nic_config;
  nic_config.num_queues = 8;
  SimNic nic(nic_config, hierarchy, memory, pool, director);

  ServiceChain chain;
  auto probe = std::make_unique<HeaderProbe>(hierarchy);
  HeaderProbe* probe_ptr = probe.get();
  chain.Append(std::move(probe));
  chain.Append(std::make_unique<MacSwap>(hierarchy, memory));
  // A DPI-class slow function (~1.9 us/packet): the RX rings run full, so
  // each header waits behind ~512 queued packets' worth of DDIO traffic —
  // the §8 scenario.
  NfvRuntime::Config rt;
  rt.per_packet_overhead_cycles = 4000;
  NfvRuntime runtime(rt, hierarchy, nic, chain);

  TrafficConfig traffic;
  traffic.size_mode = TrafficConfig::SizeMode::kFixed;
  traffic.fixed_size = frame_size;
  traffic.rate_gbps = 100.0;
  traffic.seed = 31;
  TrafficGenerator gen(traffic);
  runtime.Run(gen.Generate(30000), nullptr);  // the probe still counts these
  return probe_ptr->served();
}

void Run() {
  PrintBanner("§8 study", "where header reads are served from at 100 Gbps");
  std::printf("%-10s  %-18s  %-22s  %-22s\n", "Frame", "CacheDirector", "header from LLC",
              "header evicted to DRAM");
  PrintSectionRule();
  const struct {
    const char* label;
    Mode mode;
  } modes[] = {{"off", Mode::kOff},
               {"single-slice", Mode::kSingleSlice},
               {"near-slice spread", Mode::kNearSliceSpread}};
  for (const std::uint32_t size : {64u, 512u, 1500u}) {
    for (const auto& m : modes) {
      const Served s = Measure(size, m.mode);
      std::printf("%-10u  %-18s  %-22.1f  %-22.1f\n", size, m.label,
                  100.0 * s.llc_fraction, 100.0 * s.dram_fraction);
    }
  }
  PrintSectionRule();
  std::printf("expectation (§8): MTU frames push ~24 lines each through the 2-way\n");
  std::printf("DDIO partition, so queued headers get evicted to DRAM far more often\n");
  std::printf("than with 64 B frames — and CacheDirector makes the eviction WORSE,\n");
  std::printf("exactly as §8 concedes: concentrating a queue's headers in one slice\n");
  std::printf("raises their eviction probability (~1/N_slices vs ~1/N_slices^2).\n");
  std::printf("The paper's suggested mitigation is allocating across multiple near\n");
  std::printf("slices (the access times are bimodal, §2.2).\n");
}

}  // namespace
}  // namespace cachedir

int main() {
  cachedir::Run();
  return 0;
}
