// Fig. 17: cache isolation under a noisy neighbor on the Skylake model —
// no isolation (NoCAT) vs CAT way isolation (2 of 11 ways) vs slice-aware
// slice isolation (slice 0 only). The main application works on a 2 MB set
// (three quarters of a slice plus L2, as in the paper); the noisy neighbor
// streams over 64 MB. Execution time of the main application is reported
// for read and write workloads.
#include <cstdio>
#include <memory>

#include "bench/common.h"
#include "src/cache/hierarchy.h"
#include "src/hash/presets.h"
#include "src/mem/hugepage.h"
#include "src/sim/machine.h"
#include "src/sim/rng.h"
#include "src/slice/buffers.h"
#include "src/slice/slice_mapper.h"

namespace cachedir {
namespace {

constexpr std::size_t kMainBytes = 2u << 20;       // 2 MB working set
constexpr std::size_t kNoisyBytes = 64u << 20;     // noisy neighbor set
constexpr std::size_t kMainOps = 120000;
// LLC fills issued by the neighbor per main-application access. A real
// streaming neighbor overlaps many outstanding misses (MLP), so its fill
// rate far exceeds its single-access latency would suggest; 12 fills per
// main op is what it takes to defeat LRU recency protection, as streaming
// workloads do on real parts.
constexpr std::size_t kNoisyOpsPerMainOp = 12;
constexpr CoreId kMainCore = 0;
constexpr CoreId kNoisyCore = 4;

enum class Scenario { kNoCat, kTwoWayIsolated, kSliceIsolated };

// Lines of `mapping` NOT hashing to slice 0 (the noisy neighbor's memory in
// the slice-isolation scenario: it pollutes every slice except slice 0).
SliceBuffer LinesAvoidingSlice0(HugepageAllocator& backing, const SliceHash& hash,
                                std::size_t count) {
  std::vector<SliceLine> lines;
  lines.reserve(count);
  while (lines.size() < count) {
    const Mapping m = backing.Allocate(std::size_t{1} << 30, PageSize::k1G);
    for (std::size_t off = 0; off + kCacheLineSize <= m.size && lines.size() < count;
         off += kCacheLineSize) {
      if (hash.SliceFor(m.pa + off) != 0) {
        lines.push_back(SliceLine{m.va + off, m.pa + off});
      }
    }
  }
  return SliceBuffer(std::move(lines));
}

double MeasureSeconds(Scenario scenario, bool write) {
  MemoryHierarchy hierarchy(SkylakeXeonGold6134(), SkylakeSliceHash(), 11);
  HugepageAllocator backing;
  const auto hash = SkylakeSliceHash();

  std::unique_ptr<MemoryBuffer> main_buf;
  std::unique_ptr<MemoryBuffer> noisy_buf;
  switch (scenario) {
    case Scenario::kNoCat:
      main_buf = std::make_unique<ContiguousBuffer>(
          backing.Allocate(kMainBytes, PageSize::k1G).pa, kMainBytes);
      noisy_buf = std::make_unique<ContiguousBuffer>(
          backing.Allocate(kNoisyBytes, PageSize::k1G).pa, kNoisyBytes);
      break;
    case Scenario::kTwoWayIsolated:
      main_buf = std::make_unique<ContiguousBuffer>(
          backing.Allocate(kMainBytes, PageSize::k1G).pa, kMainBytes);
      noisy_buf = std::make_unique<ContiguousBuffer>(
          backing.Allocate(kNoisyBytes, PageSize::k1G).pa, kNoisyBytes);
      // Main gets 2 of 11 ways (~18% of LLC); the noisy neighbor the rest.
      hierarchy.llc().SetCosWayMask(1, 0b00000000011);
      hierarchy.llc().SetCosWayMask(2, 0b11111111100);
      hierarchy.llc().AssignCoreToCos(kMainCore, 1);
      hierarchy.llc().AssignCoreToCos(kNoisyCore, 2);
      break;
    case Scenario::kSliceIsolated:
      main_buf = std::make_unique<SliceBuffer>(
          GatherSliceLines(backing, *hash, 0, kMainBytes / kCacheLineSize));
      noisy_buf = std::make_unique<SliceBuffer>(
          LinesAvoidingSlice0(backing, *hash, kNoisyBytes / kCacheLineSize));
      break;
  }

  // Warm the main set, then let the neighbor pollute the cache once in
  // full, so measurement starts from the contended steady state.
  for (std::size_t i = 0; i < kMainBytes / kCacheLineSize; ++i) {
    (void)hierarchy.Read(kMainCore, main_buf->PaForOffset(i * kCacheLineSize));
  }
  const std::size_t noisy_lines = kNoisyBytes / kCacheLineSize;
  for (std::size_t i = 0; i < noisy_lines; i += 2) {
    (void)hierarchy.Read(kNoisyCore, noisy_buf->PaForOffset(i * kCacheLineSize));
  }

  Rng main_rng(1);
  Rng noisy_rng(2);
  Cycles main_cycles = 0;
  const std::size_t main_lines = kMainBytes / kCacheLineSize;
  for (std::size_t i = 0; i < kMainOps; ++i) {
    const PhysAddr pa = main_buf->PaForOffset(main_rng.UniformIndex(main_lines) *
                                              kCacheLineSize);
    main_cycles += write ? hierarchy.Write(kMainCore, pa).cycles
                         : hierarchy.Read(kMainCore, pa).cycles;
    for (std::size_t k = 0; k < kNoisyOpsPerMainOp; ++k) {
      const PhysAddr noisy_pa =
          noisy_buf->PaForOffset(noisy_rng.UniformIndex(noisy_lines) * kCacheLineSize);
      (void)hierarchy.Read(kNoisyCore, noisy_pa);
    }
  }
  return hierarchy.spec().frequency.ToNanoseconds(main_cycles) / 1e9;
}

void Run() {
  PrintBanner("Fig 17", "noisy neighbor: NoCAT vs CAT 2-way vs slice-0 isolation (Skylake)");
  std::printf("%-18s  %-16s  %-16s\n", "Scenario", "Read time (s)", "Write time (s)");
  PrintSectionRule();
  double read_2w = 0;
  double write_2w = 0;
  double read_s0 = 0;
  double write_s0 = 0;
  const struct {
    const char* label;
    Scenario scenario;
  } rows[] = {
      {"NoCAT", Scenario::kNoCat},
      {"2W Isolated", Scenario::kTwoWayIsolated},
      {"Slice-0 Isolated", Scenario::kSliceIsolated},
  };
  // Each (scenario, direction) cell is a self-contained simulation; run all
  // six on the bench thread pool and print in row order.
  double read_secs[3];
  double write_secs[3];
  ParallelFor(6, [&](std::size_t cell) {
    const auto scenario = rows[cell / 2].scenario;
    if (cell % 2 == 0) {
      read_secs[cell / 2] = MeasureSeconds(scenario, false);
    } else {
      write_secs[cell / 2] = MeasureSeconds(scenario, true);
    }
  });
  for (std::size_t i = 0; i < 3; ++i) {
    const auto& row = rows[i];
    const double read_s = read_secs[i];
    const double write_s = write_secs[i];
    if (row.scenario == Scenario::kTwoWayIsolated) {
      read_2w = read_s;
      write_2w = write_s;
    } else if (row.scenario == Scenario::kSliceIsolated) {
      read_s0 = read_s;
      write_s0 = write_s;
    }
    std::printf("%-18s  %-16.4f  %-16.4f\n", row.label, read_s, write_s);
  }
  PrintSectionRule();
  std::printf("slice isolation vs CAT: read %+.1f %%, write %+.1f %% (paper: ~11%% both)\n",
              100.0 * (read_2w - read_s0) / read_2w,
              100.0 * (write_2w - write_s0) / write_2w);
}

}  // namespace
}  // namespace cachedir

int main() {
  cachedir::Run();
  return 0;
}
