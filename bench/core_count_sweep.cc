// §5 setup note: "we evaluate CacheDirector while the applications are
// running on different numbers of cores (i.e., from 1 to 8 CPU cores)".
// This bench sweeps the core count for the stateful chain at a fixed offered
// rate and reports delivered throughput and p99 latency per configuration.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench/common.h"
#include "bench/nfv_experiment.h"

namespace cachedir {
namespace {

NfvExperiment Experiment(bool cache_director, std::size_t cores, double gbps) {
  NfvExperiment e;
  e.app = NfvExperiment::App::kRouterNaptLb;
  e.cache_director = cache_director;
  e.steering = NicSteering::kFlowDirector;
  e.hw_offload_router = true;
  e.num_queues = cores;
  // Past the 8 physical Haswell cores, swap in the derived many-core
  // configuration (same 8-slice ring uncore) so each queue keeps its own
  // run-to-completion core.
  e.override_cores = cores > 8 ? cores : 0;
  e.traffic.size_mode = TrafficConfig::SizeMode::kCampusMix;
  e.traffic.rate_gbps = gbps;
  e.warmup_packets = 3000;
  e.measured_packets = 15000;
  e.num_runs = 5;
  return e;
}

void Run(std::size_t max_cores) {
  PrintBanner("§5 sweep", "stateful chain vs core count, campus mix @ 40 Gbps");
  std::printf("%-7s  %-12s %-12s  %-12s %-12s\n", "Cores", "DPDK Tput", "DPDK p99",
              "+CD Tput", "+CD p99");
  std::printf("%-7s  %-12s %-12s  %-12s %-12s\n", "", "(Gbps)", "(us)", "(Gbps)", "(us)");
  PrintSectionRule();
  for (std::size_t cores = 1; cores <= max_cores; cores = cores < 8 ? cores + 1 : cores * 2) {
    const NfvAggregate dpdk = RunNfvMany(Experiment(false, cores, 40.0));
    const NfvAggregate cd = RunNfvMany(Experiment(true, cores, 40.0));
    std::printf("%-7zu  %-12.2f %-12.2f  %-12.2f %-12.2f\n", cores,
                dpdk.median_throughput_gbps, dpdk.median.p99, cd.median_throughput_gbps,
                cd.median.p99);
  }
  PrintSectionRule();
  std::printf("expectation: few cores saturate (deep queues, large CD gains);\n");
  std::printf("enough cores reach the offered rate and gains shrink to the\n");
  std::printf("service-time delta\n");
}

}  // namespace
}  // namespace cachedir

int main(int argc, char** argv) {
  // --max-cores=N extends the paper's 1..8 sweep through the Haswell-derived
  // many-core preset (9..64 step by doubling: 16, 32, 64). The default stays
  // 8, keeping the stdout of a bare run byte-identical to the paper sweep.
  std::size_t max_cores = 8;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--max-cores=", 12) == 0) {
      char* end = nullptr;
      const unsigned long v = std::strtoul(argv[i] + 12, &end, 10);
      if (end == argv[i] + 12 || *end != '\0' || v == 0 || v > 64) {
        std::fprintf(stderr, "bad --max-cores value: %s (want 1..64; 64 is the directory "
                             "sharer-mask limit no preset can host past)\n", argv[i]);
        return 1;
      }
      max_cores = v;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 1;
    }
  }
  cachedir::Run(max_cores);
  return 0;
}
