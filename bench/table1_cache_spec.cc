// Table 1: cache specification of the simulated Intel Xeon E5-2667 v3.
#include <cstdio>

#include "bench/common.h"
#include "src/sim/machine.h"

namespace cachedir {
namespace {

void PrintRow(const char* level, const CacheGeometry& g) {
  // Index bits: [6 + log2(sets) - 1 .. 6], as the paper reports them.
  unsigned top = kCacheLineBits - 1;
  for (std::size_t sets = g.num_sets(); sets > 1; sets /= 2) {
    ++top;
  }
  std::printf("%-10s  %8zu kB  %5zu  %6zu  %u-%u\n", level, g.size_bytes / 1024, g.ways,
              g.num_sets(), top, kCacheLineBits);
}

void Run() {
  const MachineSpec m = HaswellXeonE52667V3();
  PrintBanner("Table 1", "Intel Xeon E5-2667 v3 — cache specification");
  std::printf("%-10s  %11s  %5s  %6s  %s\n", "Cache", "Size", "#Ways", "#Sets",
              "Index-bits[range]");
  PrintSectionRule();
  PrintRow("LLC-Slice", m.llc_slice);
  PrintRow("L2", m.l2);
  PrintRow("L1", m.l1);
  PrintSectionRule();
  std::printf("Cores: %zu   LLC slices: %zu   Frequency: %.1f GHz   DDIO ways: %zu/%zu\n",
              m.num_cores, m.num_slices, m.frequency.ghz(), m.ddio_ways, m.llc_slice.ways);
  std::printf("Paper reference: slice 2.5 MB/20 ways/2048 sets [16-6], "
              "L2 256 kB/8/512 [14-6], L1 32 kB/8/64 [11-6]\n");
}

}  // namespace
}  // namespace cachedir

int main() {
  cachedir::Run();
  return 0;
}
