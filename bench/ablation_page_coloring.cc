// Related-work ablation (§9): what page coloring can and cannot still do on
// a sliced, hashed LLC.
//
// Coloring partitions SET-index bits, and those bits are untouched by
// Complex Addressing's slice selection — so disjoint colors still isolate
// capacity (the neighbor cannot evict the app). What coloring has lost is
// the PLACEMENT dimension: every page's 64 lines scatter over all 8 slices
// (the histogram below is the smoking gun), so a colored partition runs at
// average-slice latency and cannot be steered near its core, while
// slice-aware isolation gets both protection and local-slice latency.
#include <cstdio>
#include <memory>

#include "bench/common.h"
#include "src/cache/hierarchy.h"
#include "src/hash/presets.h"
#include "src/sim/machine.h"
#include "src/sim/rng.h"
#include "src/slice/page_color.h"
#include "src/slice/slice_mapper.h"

namespace cachedir {
namespace {

constexpr std::size_t kAppBytes = 1u << 20;      // 1 MB latency-sensitive set
constexpr std::size_t kNoisyBytes = 48u << 20;   // streaming neighbor
constexpr CoreId kAppCore = 0;
constexpr CoreId kNoisyCore = 4;

enum class Scheme { kNone, kPageColoring, kSliceAware };

double Measure(Scheme scheme) {
  MemoryHierarchy hierarchy(HaswellXeonE52667V3(), HaswellSliceHash(), 83);
  HugepageAllocator backing;

  std::unique_ptr<MemoryBuffer> app;
  std::unique_ptr<MemoryBuffer> noisy;
  switch (scheme) {
    case Scheme::kNone: {
      app = std::make_unique<ContiguousBuffer>(backing.Allocate(kAppBytes, PageSize::k1G).pa,
                                               kAppBytes);
      noisy = std::make_unique<ContiguousBuffer>(
          backing.Allocate(kNoisyBytes, PageSize::k1G).pa, kNoisyBytes);
      break;
    }
    case Scheme::kPageColoring: {
      // App gets colors 0-7 of 32, neighbor the other 24 (disjoint sets).
      PageColorAllocator colors(backing, /*set_index_bits=*/11);
      std::vector<SliceLine> app_lines;
      for (std::uint32_t c = 0; c < 8; ++c) {
        const SliceBuffer part = colors.AllocateBytes(c, kAppBytes / 8);
        app_lines.insert(app_lines.end(), part.lines().begin(), part.lines().end());
      }
      app = std::make_unique<SliceBuffer>(std::move(app_lines));
      std::vector<SliceLine> noisy_lines;
      const std::size_t per_color = kNoisyBytes / 24;
      for (std::uint32_t c = 8; c < 32; ++c) {
        const SliceBuffer part = colors.AllocateBytes(c, per_color);
        noisy_lines.insert(noisy_lines.end(), part.lines().begin(), part.lines().end());
      }
      noisy = std::make_unique<SliceBuffer>(std::move(noisy_lines));
      break;
    }
    case Scheme::kSliceAware: {
      app = std::make_unique<SliceBuffer>(
          GatherSliceLines(backing, *HaswellSliceHash(), 0, kAppBytes / kCacheLineSize));
      std::vector<SliceLine> noisy_lines;
      while (noisy_lines.size() < kNoisyBytes / kCacheLineSize) {
        const Mapping m = backing.Allocate(std::size_t{1} << 30, PageSize::k1G);
        for (std::size_t off = 0;
             off + kCacheLineSize <= m.size && noisy_lines.size() < kNoisyBytes / kCacheLineSize;
             off += kCacheLineSize) {
          if (HaswellSliceHash()->SliceFor(m.pa + off) != 0) {
            noisy_lines.push_back(SliceLine{m.va + off, m.pa + off});
          }
        }
      }
      noisy = std::make_unique<SliceBuffer>(std::move(noisy_lines));
      break;
    }
  }

  // Warm the app, pollute, then measure the app under interference.
  const std::size_t app_lines = app->size_bytes() / kCacheLineSize;
  const std::size_t noisy_lines = noisy->size_bytes() / kCacheLineSize;
  for (std::size_t i = 0; i < app_lines; ++i) {
    (void)hierarchy.Read(kAppCore, app->PaForOffset(i * kCacheLineSize));
  }
  Rng app_rng(1);
  Rng noisy_rng(2);
  Cycles total = 0;
  const std::size_t ops = 60000;
  for (std::size_t i = 0; i < ops; ++i) {
    total += hierarchy
                 .Read(kAppCore,
                       app->PaForOffset(app_rng.UniformIndex(app_lines) * kCacheLineSize))
                 .cycles;
    for (int k = 0; k < 10; ++k) {
      (void)hierarchy.Read(kNoisyCore, noisy->PaForOffset(
                                           noisy_rng.UniformIndex(noisy_lines) *
                                           kCacheLineSize));
    }
  }
  return static_cast<double>(total) / ops;
}

void Run() {
  PrintBanner("§9 ablation", "page coloring vs slice-aware isolation on a hashed LLC");

  // The smoking gun: one color's lines land in EVERY slice.
  {
    HugepageAllocator backing;
    PageColorAllocator colors(backing, 11);
    const SliceBuffer one_color = colors.AllocateBytes(0, 256 * 1024);
    std::vector<std::size_t> hist(8, 0);
    const auto hash = HaswellSliceHash();
    for (std::size_t i = 0; i < one_color.num_lines(); ++i) {
      ++hist[hash->SliceFor(one_color.line(i).pa)];
    }
    std::printf("lines of ONE page color across slices:");
    for (const std::size_t c : hist) {
      std::printf(" %zu", c);
    }
    std::printf("  <- scattered everywhere\n");
    PrintSectionRule();
  }

  std::printf("%-16s  %-18s\n", "Partitioning", "app cycles/access");
  PrintSectionRule();
  const struct {
    const char* label;
    Scheme scheme;
  } rows[] = {{"none", Scheme::kNone},
              {"page coloring", Scheme::kPageColoring},
              {"slice-aware", Scheme::kSliceAware}};
  for (const auto& row : rows) {
    std::printf("%-16s  %-18.1f\n", row.label, Measure(row.scheme));
  }
  PrintSectionRule();
  std::printf("expectation (§9): coloring still isolates capacity (disjoint sets)\n");
  std::printf("but runs at average-slice latency; slice-aware isolation protects\n");
  std::printf("AND places — the latency gap between the last two rows is the\n");
  std::printf("NUCA dividend coloring cannot reach\n");
}

}  // namespace
}  // namespace cachedir

int main() {
  cachedir::Run();
  return 0;
}
