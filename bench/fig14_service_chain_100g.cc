// Figs. 1 + 14 (+ Table 3 row 2): the stateful Router-NAPT-LB chain with
// campus-mix traffic at 100 Gbps, FlowDirector steering and H/W-offloaded
// routing. Prints the percentile comparison (Fig. 1 speedups), a CDF sketch
// (Fig. 14a) and the improvement per percentile (Fig. 14b).
//
// With --json=PATH the bench also writes host wall-seconds for the whole
// experiment (both arms, all repetitions) through bench/common's HostTimer —
// the multi-element companion to fig13's point in BENCH_simcore.json: where
// fig13 stresses the single-element fast path, this one runs the stateful
// three-element chain (table probes, flow-state writes) through the same
// burst dataplane. Report-only plumbing: stdout stays deterministic.
#include <cstdio>
#include <cstring>
#include <thread>

#include "bench/common.h"
#include "bench/nfv_experiment.h"

namespace cachedir {
namespace {

NfvExperiment Experiment(bool cache_director) {
  NfvExperiment e;
  e.app = NfvExperiment::App::kRouterNaptLb;
  e.cache_director = cache_director;
  e.steering = NicSteering::kFlowDirector;
  e.hw_offload_router = true;
  e.traffic.size_mode = TrafficConfig::SizeMode::kCampusMix;
  e.traffic.rate_mode = TrafficConfig::RateMode::kGbps;
  e.traffic.rate_gbps = 100.0;
  e.warmup_packets = 4000;
  e.measured_packets = 20000;
  e.num_runs = 15;
  return e;
}

void PrintCdf(const NfvAggregate& dpdk, const NfvAggregate& cd) {
  std::printf("CDF of end-to-end latency (us at given cumulative %%):\n");
  std::printf("%-8s  %12s  %12s\n", "CDF %", "DPDK", "DPDK+CD");
  for (const double p : {10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0}) {
    std::printf("%-8.0f  %12.2f  %12.2f\n", p, dpdk.pooled_latencies_us.Percentile(p),
                cd.pooled_latencies_us.Percentile(p));
  }
}

void Run(const char* json_path) {
  PrintBanner("Fig 1 + Fig 14",
              "stateful chain Router-NAPT-LB @ 100 Gbps, FlowDirector + H/W offload");
  HostTimer timer;
  const NfvAggregate dpdk = RunNfvMany(Experiment(false));
  const NfvAggregate cd = RunNfvMany(Experiment(true));
  const double host_seconds = timer.Seconds();
  PrintComparisonRows(dpdk, cd);
  PrintSectionRule();
  PrintCdf(dpdk, cd);
  PrintSectionRule();
  std::printf("throughput: DPDK %.2f Gbps, DPDK+CD %.2f Gbps (paper: 75.94, +27 Mbps)\n",
              dpdk.median_throughput_gbps, cd.median_throughput_gbps);
  std::printf("paper shape: tail (90-99th) cut by up to ~21.5%% / 119 us;\n");
  std::printf("with FlowDirector the gain decreases toward the 99th (opposite of RSS)\n");

  if (json_path == nullptr) {
    return;
  }
  FILE* json = std::fopen(json_path, "w");
  if (json == nullptr) {
    std::fprintf(stderr, "warning: cannot open %s for writing\n", json_path);
    return;
  }
  std::fprintf(json,
               "{\n  \"bench\": \"fig14_service_chain_100g\",\n"
               "  \"machine\": {\"hardware_threads\": %u, \"compiler\": \"%s\", "
               "\"build\": \"%s\"},\n"
               "  \"host_seconds\": %.6f\n}\n",
               // Host metadata sidecar only, not simulated output. detlint: allow(nondet-env)
               std::thread::hardware_concurrency(), __VERSION__,
#ifdef NDEBUG
               "release",
#else
               "debug",
#endif
               host_seconds);
  std::fclose(json);
  std::fprintf(stderr, "fig14_service_chain_100g host_s=%.3f (both arms, all runs)\n",
               host_seconds);
}

}  // namespace
}  // namespace cachedir

int main(int argc, char** argv) {
  // Optional: --json=PATH writes {"bench", "machine", "host_seconds"} for
  // tools/check_perf_baseline.py. No argument keeps legacy behaviour.
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      std::fprintf(stderr, "unknown argument: %s (want --json=PATH)\n", argv[i]);
      return 1;
    }
  }
  cachedir::Run(json_path);
  return 0;
}
