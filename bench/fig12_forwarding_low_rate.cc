// Fig. 12: simple forwarding, five thousand 64 B packets at 1000 pps —
// queueing-free, so the numbers isolate CacheDirector's pure service-time
// effect at high percentiles.
#include <cstdio>

#include "bench/common.h"
#include "bench/nfv_experiment.h"

namespace cachedir {
namespace {

NfvExperiment Experiment(bool cache_director) {
  NfvExperiment e;
  e.app = NfvExperiment::App::kForwarding;
  e.cache_director = cache_director;
  e.steering = NicSteering::kRss;
  e.traffic.size_mode = TrafficConfig::SizeMode::kFixed;
  e.traffic.fixed_size = 64;
  e.traffic.rate_mode = TrafficConfig::RateMode::kPps;
  e.traffic.rate_pps = 1000.0;
  e.warmup_packets = 1000;
  e.measured_packets = 5000;  // the paper's five thousand packets
  e.num_runs = 50;            // the paper's 50 runs
  return e;
}

void Run() {
  PrintBanner("Fig 12", "forwarding latency, 64 B @ 1000 pps, 8 cores, RSS");
  const NfvAggregate dpdk = RunNfvMany(Experiment(false));
  const NfvAggregate cd = RunNfvMany(Experiment(true));
  PrintComparisonRows(dpdk, cd);
  PrintSectionRule();
  std::printf("IQR of 99th across runs: DPDK [%0.3f, %0.3f], +CD [%0.3f, %0.3f] us\n",
              dpdk.q1.p99, dpdk.q3.p99, cd.q1.p99, cd.q3.p99);
  std::printf("paper shape: CacheDirector below DPDK at every percentile;\n");
  std::printf("deviation: absolute gains here are the raw LLC-slice delta only\n");
  std::printf("(the paper's testbed includes NIC/driver effects we do not model).\n");
}

}  // namespace
}  // namespace cachedir

int main() {
  cachedir::Run();
  return 0;
}
