#include "bench/nfv_experiment.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <vector>

#include "bench/common.h"
#include "src/hash/presets.h"
#include "src/nfv/chain.h"
#include "src/nfv/elements.h"
#include "src/nfv/runtime.h"
#include "src/sim/machine.h"
#include "src/slice/placement.h"

namespace cachedir {
namespace {

ServiceChain BuildChain(const NfvExperiment& experiment, MemoryHierarchy& hierarchy,
                        PhysicalMemory& memory, HugepageAllocator& backing,
                        std::uint64_t seed) {
  ServiceChain chain;
  switch (experiment.app) {
    case NfvExperiment::App::kForwarding:
      chain.Append(std::make_unique<MacSwap>(hierarchy, memory));
      break;
    case NfvExperiment::App::kRouterNaptLb: {
      IpRouter::Params router;
      router.num_routes = 3120;  // the paper's routing-table size
      router.hw_offloaded = experiment.hw_offload_router;
      router.seed = seed;
      chain.Append(std::make_unique<IpRouter>(hierarchy, memory, backing, router));
      chain.Append(std::make_unique<Napt>(hierarchy, memory, backing, Napt::Params{}));
      chain.Append(
          std::make_unique<LoadBalancer>(hierarchy, memory, backing, LoadBalancer::Params{}));
      break;
    }
  }
  return chain;
}

}  // namespace

NfvRunStats RunNfvOnce(const NfvExperiment& experiment, std::uint64_t run_index) {
  const std::uint64_t seed = experiment.base_seed + 7919 * run_index;

  const bool skylake = experiment.machine == NfvExperiment::Machine::kSkylake;
  if (experiment.override_cores != 0 && skylake) {
    throw std::invalid_argument("override_cores: no derived many-core Skylake preset");
  }
  const MachineSpec spec = skylake            ? SkylakeXeonGold6134()
                           : experiment.override_cores != 0
                               ? HaswellDerivedManyCore(experiment.override_cores)
                               : HaswellXeonE52667V3();
  const std::shared_ptr<const SliceHash> hash =
      skylake ? SkylakeSliceHash() : HaswellSliceHash();
  MemoryHierarchy hierarchy(spec, hash, seed);
  SlicePlacement placement(hierarchy);
  PhysicalMemory memory;
  HugepageAllocator backing;
  CacheDirector director(hash, placement, experiment.cache_director);
  Mempool pool(backing, experiment.mempool_mbufs, director);

  SimNic::Config nic_config;
  nic_config.num_queues = experiment.num_queues;
  nic_config.steering = experiment.steering;
  SimNic nic(nic_config, hierarchy, memory, pool, director);

  ServiceChain chain = BuildChain(experiment, hierarchy, memory, backing, seed);
  NfvRuntime runtime(NfvRuntime::Config{}, hierarchy, nic, chain);

  TrafficConfig traffic = experiment.traffic;
  traffic.seed = seed;
  TrafficGenerator gen(traffic);

  // One block buffer serves both phases: GenerateBlock yields the exact
  // stream repeated Next() calls would, without a fresh vector per phase.
  std::vector<WirePacket> block(
      std::max(experiment.warmup_packets, experiment.measured_packets));

  // Warm-up: caches, flow tables, NIC steering state — unrecorded.
  gen.GenerateBlock({block.data(), experiment.warmup_packets});
  runtime.Run({block.data(), experiment.warmup_packets}, nullptr);

  LatencyRecorder recorder;
  recorder.Reserve(experiment.measured_packets);
  gen.GenerateBlock({block.data(), experiment.measured_packets});
  runtime.Run({block.data(), experiment.measured_packets}, &recorder);

  NfvRunStats stats;
  stats.latency_us = SummarizePercentiles(recorder.latencies_us());
  stats.throughput_gbps = recorder.ThroughputGbps();
  stats.delivered = recorder.delivered();
  stats.drops = recorder.drops();
  stats.latencies_us = recorder.TakeLatencies();
  return stats;
}

NfvAggregate RunNfvMany(const NfvExperiment& experiment) {
  Samples p75;
  Samples p90;
  Samples p95;
  Samples p99;
  Samples mean;
  Samples throughput;
  NfvAggregate agg;

  // Every run builds its own DuT from `run` (hierarchy, mempool, traffic),
  // so the runs execute on the bench thread pool; merging in run order keeps
  // the aggregate bit-identical to the serial loop.
  const std::vector<NfvRunStats> runs = RunRepetitions(
      experiment.num_runs, /*base_seed=*/0,
      [&experiment](std::size_t run, std::uint64_t) { return RunNfvOnce(experiment, run); });

  std::size_t pooled_samples = 0;
  for (const NfvRunStats& stats : runs) {
    pooled_samples += stats.latencies_us.size();
  }
  agg.pooled_latencies_us.Reserve(pooled_samples);

  for (const NfvRunStats& stats : runs) {
    p75.Add(stats.latency_us.p75);
    p90.Add(stats.latency_us.p90);
    p95.Add(stats.latency_us.p95);
    p99.Add(stats.latency_us.p99);
    mean.Add(stats.latency_us.mean);
    throughput.Add(stats.throughput_gbps);
    agg.total_delivered += stats.delivered;
    agg.total_drops += stats.drops;
    agg.p99_per_run.Add(stats.latency_us.p99);
    agg.mean_per_run.Add(stats.latency_us.mean);
    agg.pooled_latencies_us.Append(stats.latencies_us.values());
  }

  agg.median = PercentileRow{p75.Median(), p90.Median(), p95.Median(), p99.Median(),
                             mean.Median()};
  agg.q1 = PercentileRow{p75.Percentile(25), p90.Percentile(25), p95.Percentile(25),
                         p99.Percentile(25), mean.Percentile(25)};
  agg.q3 = PercentileRow{p75.Percentile(75), p90.Percentile(75), p95.Percentile(75),
                         p99.Percentile(75), mean.Percentile(75)};
  agg.median_throughput_gbps = throughput.Median();
  return agg;
}

void PrintComparisonRows(const NfvAggregate& dpdk, const NfvAggregate& cd) {
  struct Entry {
    const char* label;
    double base;
    double with_cd;
  };
  const Entry entries[] = {
      {"75th", dpdk.median.p75, cd.median.p75}, {"90th", dpdk.median.p90, cd.median.p90},
      {"95th", dpdk.median.p95, cd.median.p95}, {"99th", dpdk.median.p99, cd.median.p99},
      {"Mean", dpdk.median.mean, cd.median.mean},
  };
  std::printf("%-6s  %14s  %18s  %14s  %10s\n", "Pctl", "DPDK (us)", "DPDK+CD (us)",
              "Improv (us)", "Speedup %");
  for (const Entry& e : entries) {
    const double improvement = e.base - e.with_cd;
    std::printf("%-6s  %14.3f  %18.3f  %14.3f  %9.2f%%\n", e.label, e.base, e.with_cd,
                improvement, e.base == 0 ? 0.0 : 100.0 * improvement / e.base);
  }
  // Is the difference real or run-to-run noise? Rank test on per-run tails.
  if (dpdk.p99_per_run.size() >= 4 && cd.p99_per_run.size() >= 4) {
    const MannWhitneyResult mw =
        MannWhitneyU(cd.p99_per_run.values(), dpdk.p99_per_run.values());
    std::printf("per-run p99 Mann-Whitney: P(CD < DPDK) = %.2f, two-sided p = %.4f%s\n",
                mw.prob_a_less, mw.p_value,
                mw.p_value < 0.05 ? " (significant at 0.05)" : "");
  }
}

}  // namespace cachedir
