// Random-access workload driver for the Figs. 6/7/17 benches: uniform random
// reads or writes over a MemoryBuffer (contiguous or slice-aware), charged
// through the simulated hierarchy.
#ifndef CACHEDIRECTOR_BENCH_RANDOM_ACCESS_H_
#define CACHEDIRECTOR_BENCH_RANDOM_ACCESS_H_

#include <vector>

#include "src/cache/hierarchy.h"
#include "src/sim/rng.h"
#include "src/slice/buffers.h"

namespace cachedir {

struct RandomAccessParams {
  std::size_t ops = 10000;
  bool write = false;
  std::uint64_t seed = 1;
  // One sequential warm-up pass over the buffer, capped at this many lines
  // (0 = no warm-up). Uncapped warm-up on 128 MB arrays dominates wall time
  // without changing the result (they don't fit in any cache anyway).
  std::size_t warmup_lines_cap = 1 << 19;
};

// Total cycles consumed by the measured ops (warm-up excluded).
Cycles RunRandomAccess(MemoryHierarchy& hierarchy, const MemoryBuffer& buffer, CoreId core,
                       const RandomAccessParams& params);

// All cores run the same params over their own buffer, interleaved in
// batches so LLC contention is concurrent, as in the paper's Fig. 7 setup.
// Returns per-core measured cycles.
std::vector<Cycles> RunRandomAccessMultiCore(MemoryHierarchy& hierarchy,
                                             const std::vector<const MemoryBuffer*>& buffers,
                                             const RandomAccessParams& params,
                                             std::size_t batch = 64);

}  // namespace cachedir

#endif  // CACHEDIRECTOR_BENCH_RANDOM_ACCESS_H_
