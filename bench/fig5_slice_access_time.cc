// Fig. 5: access time from core 0 to each LLC slice on the Haswell model —
// (a) reads are bimodal with ~20 cycles between nearest and farthest slice;
// (b) writes are flat (write-back: stores complete at L1).
#include <algorithm>
#include <cstdio>

#include "bench/access_time.h"
#include "bench/common.h"
#include "src/hash/presets.h"
#include "src/sim/machine.h"

namespace cachedir {
namespace {

void Run() {
  PrintBanner("Fig 5", "access time to LLC slices from core 0 (Haswell)");
  const MachineSpec spec = HaswellXeonE52667V3();
  const AccessTimeResult r =
      MeasureSliceAccessTimes(spec, HaswellSliceHash(), /*core=*/0, /*repetitions=*/1000);

  std::printf("%-6s  %-18s  %-18s\n", "Slice", "Read (cycles)", "Write (cycles)");
  PrintSectionRule();
  double min_read = 1e18;
  double max_read = 0;
  for (std::size_t s = 0; s < r.read_cycles.size(); ++s) {
    std::printf("%-6zu  %-18.2f  %-18.2f\n", s, r.read_cycles[s], r.write_cycles[s]);
    min_read = std::min(min_read, r.read_cycles[s]);
    max_read = std::max(max_read, r.read_cycles[s]);
  }
  PrintSectionRule();
  std::printf("read spread (far - near): %.1f cycles (paper: ~20 cycles / 6.25 ns)\n",
              max_read - min_read);
  std::printf("write spread            : %.1f cycles (paper: flat — write-back policy)\n",
              *std::max_element(r.write_cycles.begin(), r.write_cycles.end()) -
                  *std::min_element(r.write_cycles.begin(), r.write_cycles.end()));
}

}  // namespace
}  // namespace cachedir

int main() {
  cachedir::Run();
  return 0;
}
