// Ablation (paper §4.2): driver-level dynamic headroom (CacheDirector) vs
// application-level sorted per-core mempools. Both steer packet headers to
// the consuming core's slice; sorted pools eliminate the per-packet headroom
// write and the 832 B reservation, at the cost of unequal pool sizes.
#include <cstdio>
#include <memory>

#include "bench/common.h"
#include "bench/nfv_experiment.h"
#include "src/hash/presets.h"
#include "src/netio/sorted_mempool.h"
#include "src/nfv/chain.h"
#include "src/nfv/elements.h"
#include "src/nfv/runtime.h"
#include "src/sim/machine.h"
#include "src/slice/placement.h"

namespace cachedir {
namespace {

enum class PoolMode { kShared, kCacheDirector, kSorted };

PercentileRow Measure(PoolMode mode) {
  MemoryHierarchy hierarchy(HaswellXeonE52667V3(), HaswellSliceHash(), 8);
  SlicePlacement placement(hierarchy);
  PhysicalMemory memory;
  HugepageAllocator backing;
  CacheDirector director(HaswellSliceHash(), placement,
                         /*enabled=*/mode == PoolMode::kCacheDirector);

  std::unique_ptr<MbufSource> source;
  if (mode == PoolMode::kSorted) {
    source = std::make_unique<SortedMempoolSet>(backing, 8192, HaswellSliceHash(), placement);
  } else {
    source = std::make_unique<Mempool>(backing, 8192, director);
  }

  SimNic::Config nic_config;
  nic_config.num_queues = 8;
  nic_config.steering = NicSteering::kFlowDirector;
  SimNic nic(nic_config, hierarchy, memory, *source, director);

  ServiceChain chain;
  IpRouter::Params router;
  router.hw_offloaded = true;
  chain.Append(std::make_unique<IpRouter>(hierarchy, memory, backing, router));
  chain.Append(std::make_unique<Napt>(hierarchy, memory, backing, Napt::Params{}));
  chain.Append(
      std::make_unique<LoadBalancer>(hierarchy, memory, backing, LoadBalancer::Params{}));
  NfvRuntime runtime(NfvRuntime::Config{}, hierarchy, nic, chain);

  TrafficConfig traffic;
  traffic.size_mode = TrafficConfig::SizeMode::kCampusMix;
  traffic.rate_gbps = 100.0;
  traffic.seed = 23;
  TrafficGenerator gen(traffic);
  runtime.Run(gen.Generate(4000), nullptr);
  LatencyRecorder recorder;
  runtime.Run(gen.Generate(20000), &recorder);
  return SummarizePercentiles(recorder.latencies_us());
}

void Run() {
  PrintBanner("Ablation", "shared pool vs CacheDirector vs sorted per-core pools");
  std::printf("%-22s  %-10s %-10s %-10s %-10s\n", "Buffer strategy", "p75", "p90", "p99",
              "mean");
  PrintSectionRule();
  const struct {
    const char* label;
    PoolMode mode;
  } rows[] = {
      {"shared (DPDK)", PoolMode::kShared},
      {"CacheDirector", PoolMode::kCacheDirector},
      {"sorted pools", PoolMode::kSorted},
  };
  for (const auto& row : rows) {
    const PercentileRow r = Measure(row.mode);
    std::printf("%-22s  %-10.2f %-10.2f %-10.2f %-10.2f\n", row.label, r.p75, r.p90, r.p99,
                r.mean);
  }
  PrintSectionRule();
  std::printf("expectation (§4.2): sorted pools match CacheDirector's latency while\n");
  std::printf("eliminating the per-packet headroom step; both beat the shared pool\n");
}

}  // namespace
}  // namespace cachedir

int main() {
  cachedir::Run();
  return 0;
}
