// Fig. 8: emulated KVS transactions per second on one core, for GET ratios
// 100/95/50 %, Zipf(0.99)-skewed vs uniform keys, slice-aware vs normal
// value placement.
//
// Deviation from the paper: 2^22 values (256 MB) instead of 2^24 (1 GB) to
// keep host memory bounded; the value space is still >> LLC, which is the
// property that drives the result.
//
// With --json=PATH the bench also writes host wall-seconds for the whole
// experiment (all grid cells and the sensitivity sweep) through
// bench/common's HostTimer — the KVS point tools/check_perf_baseline.py
// tracks alongside sim_throughput and fig13. Report-only plumbing: stdout
// stays deterministic either way.
#include <cstdio>
#include <cstring>
#include <thread>

#include "bench/common.h"
#include "src/hash/presets.h"
#include "src/kvs/kvs.h"
#include "src/kvs/server.h"
#include "src/sim/machine.h"

namespace cachedir {
namespace {

constexpr std::size_t kNumValues = std::size_t{1} << 22;
constexpr std::uint64_t kWarmupRequests = 400000;
constexpr std::uint64_t kRequests = 1000000;

KvsResult Measure(bool slice_aware, double get_fraction, double theta,
                  std::size_t num_values = kNumValues) {
  MemoryHierarchy hierarchy(HaswellXeonE52667V3(), HaswellSliceHash(), 7);
  HugepageAllocator backing;
  EmulatedKvs::Config config;
  config.num_values = num_values;
  config.slice_aware = slice_aware;
  config.target_slice = 0;  // serving core is core 0
  EmulatedKvs kvs(hierarchy, backing, config);
  KvsServer server(kvs, /*core=*/0);

  KvsWorkload warmup;
  warmup.get_fraction = get_fraction;
  warmup.zipf_theta = theta;
  warmup.requests = kWarmupRequests;
  warmup.seed = 99;
  (void)server.Run(warmup);

  KvsWorkload workload = warmup;
  workload.requests = kRequests;
  workload.seed = 100;
  return server.Run(workload);
}

void Run(const char* json_path) {
  PrintBanner("Fig 8", "emulated KVS TPS, 1 core (Haswell)");
  HostTimer timer;
  std::printf("%-22s  %-10s %-10s %-10s\n", "Configuration", "100% GET", "95% GET",
              "50% GET");
  std::printf("%-22s  %-32s (Mtps)\n", "", "");
  PrintSectionRule();

  struct Row {
    const char* label;
    bool slice_aware;
    double theta;
  };
  const Row rows[] = {
      {"Slice-Skewed-0.99", true, 0.99},
      {"Normal-Skewed-0.99", false, 0.99},
      {"Slice-Uniform", true, 0.0},
      {"Normal-Uniform", false, 0.0},
  };
  // 4 configurations x 3 GET ratios, each an independent simulation: fan the
  // twelve cells out on the bench thread pool, print in row order.
  constexpr double kGets[3] = {1.0, 0.95, 0.50};
  KvsResult grid[4][3];
  ParallelFor(12, [&](std::size_t cell) {
    const Row& row = rows[cell / 3];
    grid[cell / 3][cell % 3] = Measure(row.slice_aware, kGets[cell % 3], row.theta);
  });
  double cycles_slice_skew_get = 0;
  double cycles_normal_skew_get = 0;
  for (std::size_t r = 0; r < 4; ++r) {
    const Row& row = rows[r];
    if (row.theta == 0.99) {
      (row.slice_aware ? cycles_slice_skew_get : cycles_normal_skew_get) =
          grid[r][0].avg_cycles_per_request;
    }
    std::printf("%-22s  %-10.3f %-10.3f %-10.3f\n", row.label, grid[r][0].tps_millions,
                grid[r][1].tps_millions, grid[r][2].tps_millions);
  }
  PrintSectionRule();
  std::printf("100%% GET skewed: %.0f cycles/request slice-aware vs %.0f normal "
              "(paper: ~160 vs ~194)\n",
              cycles_slice_skew_get, cycles_normal_skew_get);
  std::printf("paper shape: slice-aware wins on skewed workloads (up to ~12.2 %%), "
              "uniform is a wash\n");
  PrintSectionRule();

  // Sensitivity: the paper's §3.1 applicability condition says gains require
  // the hot working set to fit one slice. Sweeping the value-space size
  // locates the crossover: slice-aware wins while the hot set fits a slice
  // and loses once confinement to one slice costs capacity misses.
  std::printf("Hot-set sensitivity (100%% GET, Zipf 0.99):\n");
  std::printf("%-14s  %-12s %-12s  %-10s\n", "Values", "Normal", "Slice", "Gain");
  constexpr std::size_t kShifts[4] = {15, 17, 19, 22};
  KvsResult sweep[4][2];
  ParallelFor(8, [&](std::size_t cell) {
    sweep[cell / 2][cell % 2] =
        Measure(/*slice_aware=*/cell % 2 == 1, 1.0, 0.99, std::size_t{1} << kShifts[cell / 2]);
  });
  for (std::size_t i = 0; i < 4; ++i) {
    const std::size_t n = std::size_t{1} << kShifts[i];
    const KvsResult& normal = sweep[i][0];
    const KvsResult& aware = sweep[i][1];
    std::printf("2^%-2zu (%4zu MB)  %-12.3f %-12.3f  %+8.2f%%\n", kShifts[i],
                n * 64 / (1u << 20), normal.tps_millions, aware.tps_millions,
                100.0 * (aware.tps_millions - normal.tps_millions) / normal.tps_millions);
  }
  const double host_seconds = timer.Seconds();

  if (json_path == nullptr) {
    return;
  }
  FILE* json = std::fopen(json_path, "w");
  if (json == nullptr) {
    std::fprintf(stderr, "warning: cannot open %s for writing\n", json_path);
    return;
  }
  std::fprintf(json,
               "{\n  \"bench\": \"fig8_kvs_tps\",\n"
               "  \"machine\": {\"hardware_threads\": %u, \"compiler\": \"%s\", "
               "\"build\": \"%s\"},\n"
               "  \"host_seconds\": %.6f\n}\n",
               // Host metadata sidecar only, not simulated output. detlint: allow(nondet-env)
               std::thread::hardware_concurrency(), __VERSION__,
#ifdef NDEBUG
               "release",
#else
               "debug",
#endif
               host_seconds);
  std::fclose(json);
  std::fprintf(stderr, "fig8_kvs_tps host_s=%.3f (grid + sensitivity sweep)\n", host_seconds);
}

}  // namespace
}  // namespace cachedir

int main(int argc, char** argv) {
  // Optional: --json=PATH writes {"bench", "machine", "host_seconds"} for
  // tools/check_perf_baseline.py. No argument keeps legacy behaviour.
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      std::fprintf(stderr, "unknown argument: %s (want --json=PATH)\n", argv[i]);
      return 1;
    }
  }
  cachedir::Run(json_path);
  return 0;
}
