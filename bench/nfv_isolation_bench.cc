// §7 applied to NFV (the scenario the ResQ line of work addresses): the
// service chain shares the socket with a cache-hungry batch job. Compares
// the chain's tail latency with no isolation, CAT way-isolation of the
// neighbor, and slice isolation (chain tables + neighbor placed in disjoint
// slices).
#include <cstdio>
#include <memory>

#include "bench/common.h"
#include "src/hash/presets.h"
#include "src/netio/nic.h"
#include "src/nfv/chain.h"
#include "src/nfv/elements.h"
#include "src/nfv/runtime.h"
#include "src/sim/machine.h"
#include "src/sim/rng.h"
#include "src/slice/placement.h"
#include "src/slice/slice_mapper.h"

namespace cachedir {
namespace {

enum class Mode { kShared, kCatIsolated, kSliceIsolated };

constexpr CoreId kNoisyCore = 7;  // chain runs on cores/queues 0-6

// A neighbor that streams over a large buffer between packet batches. To
// keep the interleave simple it runs as a chain element on its own "queue":
// instead we inject its accesses from the runtime loop via a custom element
// wrapper on queue 0's chain? Simpler and fair: interleave fixed neighbor
// work per delivered packet, as the Fig. 17 methodology does.
class NoisyInterleaver final : public Element {
 public:
  NoisyInterleaver(MemoryHierarchy& hierarchy, const MemoryBuffer& buffer, int ops_per_packet)
      : hierarchy_(hierarchy), buffer_(buffer), ops_(ops_per_packet), rng_(23) {}

  std::string name() const override { return "NoisyNeighbor"; }

  ProcessResult Process(CoreId /*core*/, Mbuf& /*mbuf*/) override {
    // The neighbor's accesses run on ITS core; they cost the chain nothing
    // directly — only through the cache state they perturb.
    const std::size_t lines = buffer_.size_bytes() / kCacheLineSize;
    for (int i = 0; i < ops_; ++i) {
      (void)hierarchy_.Read(kNoisyCore,
                            buffer_.PaForOffset(rng_.UniformIndex(lines) * kCacheLineSize));
    }
    ProcessResult r;
    r.cycles = 0;
    return r;
  }

 private:
  MemoryHierarchy& hierarchy_;
  const MemoryBuffer& buffer_;
  int ops_;
  Rng rng_;
};

PercentileRow Measure(Mode mode) {
  MemoryHierarchy hierarchy(HaswellXeonE52667V3(), HaswellSliceHash(), 77);
  SlicePlacement placement(hierarchy);
  PhysicalMemory memory;
  HugepageAllocator backing;
  CacheDirector director(HaswellSliceHash(), placement,
                         /*enabled=*/mode == Mode::kSliceIsolated);
  Mempool pool(backing, 8192, director);
  SimNic::Config nic_config;
  nic_config.num_queues = 7;  // core 7 belongs to the neighbor
  nic_config.steering = NicSteering::kFlowDirector;
  SimNic nic(nic_config, hierarchy, memory, pool, director);

  // Neighbor memory: 48 MB, either anywhere (shared / CAT) or avoiding the
  // chain cores' slices 0-6 (slice isolation confines it to slice 7).
  std::unique_ptr<MemoryBuffer> noisy_buf;
  if (mode == Mode::kSliceIsolated) {
    noisy_buf = std::make_unique<SliceBuffer>(
        GatherSliceLines(backing, *HaswellSliceHash(), 7, (48u << 20) / kCacheLineSize));
  } else {
    noisy_buf = std::make_unique<ContiguousBuffer>(
        backing.Allocate(48u << 20, PageSize::k1G).pa, 48u << 20);
  }
  if (mode == Mode::kCatIsolated) {
    // Neighbor confined to 4 of 20 ways; chain cores keep the remaining 16.
    hierarchy.llc().SetCosWayMask(1, 0b0000'0000'0000'0000'1111);
    hierarchy.llc().SetCosWayMask(2, 0b1111'1111'1111'1111'0000);
    hierarchy.llc().AssignCoreToCos(kNoisyCore, 1);
    for (CoreId c = 0; c < 7; ++c) {
      hierarchy.llc().AssignCoreToCos(c, 2);
    }
  }

  ServiceChain chain;
  IpRouter::Params router;
  router.hw_offloaded = true;
  chain.Append(std::make_unique<IpRouter>(hierarchy, memory, backing, router));
  chain.Append(std::make_unique<Napt>(hierarchy, memory, backing, Napt::Params{}));
  chain.Append(
      std::make_unique<LoadBalancer>(hierarchy, memory, backing, LoadBalancer::Params{}));
  chain.Append(std::make_unique<NoisyInterleaver>(hierarchy, *noisy_buf, 6));
  NfvRuntime runtime(NfvRuntime::Config{}, hierarchy, nic, chain);

  TrafficConfig traffic;
  traffic.size_mode = TrafficConfig::SizeMode::kCampusMix;
  traffic.rate_gbps = 70.0;  // high but under the 7-core capacity
  traffic.seed = 81;
  TrafficGenerator gen(traffic);
  runtime.Run(gen.Generate(4000), nullptr);
  LatencyRecorder recorder;
  runtime.Run(gen.Generate(20000), &recorder);
  return SummarizePercentiles(recorder.latencies_us());
}

void Run() {
  PrintBanner("§7 + §5", "service chain next to a cache-hungry neighbor (7+1 cores)");
  std::printf("%-18s  %-10s %-10s %-10s\n", "Isolation", "p90", "p99", "mean");
  PrintSectionRule();
  const struct {
    const char* label;
    Mode mode;
  } rows[] = {{"none (shared)", Mode::kShared},
              {"CAT (4-way cap)", Mode::kCatIsolated},
              {"slice (S7 only)", Mode::kSliceIsolated}};
  // The three isolation scenarios are independent simulations: run them on
  // the bench thread pool, print in row order.
  PercentileRow results[3];
  ParallelFor(3, [&](std::size_t i) { results[i] = Measure(rows[i].mode); });
  for (std::size_t i = 0; i < 3; ++i) {
    const PercentileRow& r = results[i];
    std::printf("%-18s  %-10.2f %-10.2f %-10.2f\n", rows[i].label, r.p90, r.p99, r.mean);
  }
  PrintSectionRule();
  std::printf("finding: CAT protects ALL of the chain's (contiguous) table lines, so\n");
  std::printf("it wins on mean; slice isolation leaves the tables' slice-7 stripe\n");
  std::printf("exposed to the neighbor (1/8 of lines) but adds CacheDirector's\n");
  std::printf("near-slice headers, winning at the 99th percentile — the same\n");
  std::printf("partition-granularity trade-off the paper's §7/§8 discussion draws\n");
}

}  // namespace
}  // namespace cachedir

int main() {
  cachedir::Run();
  return 0;
}
