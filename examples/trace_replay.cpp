// Example: replaying a saved packet trace through the DuT.
//
// Generates (or loads) a trace file, replays it through the forwarding
// application twice — with and without CacheDirector — and prints the
// latency comparison. Demonstrates the trace_tool / SaveTrace / LoadTrace
// workflow for users with their own captures.
//
//   $ ./build/examples/trace_replay [trace_file]
#include <cstdio>
#include <memory>
#include <string>

#include "src/hash/presets.h"
#include "src/netio/nic.h"
#include "src/nfv/chain.h"
#include "src/nfv/elements.h"
#include "src/nfv/runtime.h"
#include "src/sim/machine.h"
#include "src/slice/placement.h"
#include "src/trace/trace_file.h"
#include "src/trace/traffic_gen.h"

using namespace cachedir;

namespace {

PercentileRow Replay(const std::vector<WirePacket>& packets, bool cache_director) {
  MemoryHierarchy hierarchy(HaswellXeonE52667V3(), HaswellSliceHash(), 6);
  SlicePlacement placement(hierarchy);
  PhysicalMemory memory;
  HugepageAllocator backing;
  CacheDirector director(HaswellSliceHash(), placement, cache_director);
  Mempool pool(backing, 8192, director);
  SimNic::Config nic_config;
  SimNic nic(nic_config, hierarchy, memory, pool, director);
  ServiceChain chain;
  chain.Append(std::make_unique<MacSwap>(hierarchy, memory));
  NfvRuntime runtime(NfvRuntime::Config{}, hierarchy, nic, chain);

  // First fifth is warm-up, the rest is measured.
  const std::size_t warmup = packets.size() / 5;
  runtime.Run(std::span(packets).subspan(0, warmup), nullptr);
  LatencyRecorder recorder;
  runtime.Run(std::span(packets).subspan(warmup), &recorder);
  std::printf("  %-20s delivered %llu, dropped %llu, %.2f Gbps\n",
              cache_director ? "[DPDK+CacheDirector]" : "[DPDK]",
              static_cast<unsigned long long>(recorder.delivered()),
              static_cast<unsigned long long>(recorder.drops()),
              recorder.ThroughputGbps());
  return SummarizePercentiles(recorder.latencies_us());
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::vector<WirePacket> packets;
  if (argc > 1) {
    path = argv[1];
    packets = LoadTrace(path);
    std::printf("loaded %zu packets from %s\n", packets.size(), path.c_str());
  } else {
    path = "/tmp/cachedir_example_trace.bin";
    TrafficConfig config;
    config.size_mode = TrafficConfig::SizeMode::kCampusMix;
    config.rate_gbps = 90.0;
    config.seed = 12;
    TrafficGenerator gen(config);
    SaveTrace(path, gen.Generate(25000));
    packets = LoadTrace(path);
    std::printf("generated and reloaded %zu packets via %s\n", packets.size(), path.c_str());
  }

  const PercentileRow dpdk = Replay(packets, false);
  const PercentileRow cd = Replay(packets, true);
  std::printf("\n%-6s  %12s  %12s\n", "Pctl", "DPDK (us)", "+CD (us)");
  std::printf("%-6s  %12.2f  %12.2f\n", "90th", dpdk.p90, cd.p90);
  std::printf("%-6s  %12.2f  %12.2f\n", "99th", dpdk.p99, cd.p99);
  std::printf("%-6s  %12.2f  %12.2f\n", "mean", dpdk.mean, cd.mean);
  return 0;
}
