// Example: a stateful NFV service chain with and without CacheDirector.
//
// Builds the paper's DuT — a Router-NAPT-LoadBalancer chain behind a
// simulated 100 GbE NIC with FlowDirector steering — pushes campus-mix
// traffic through it at a configurable rate, and prints the tail-latency
// comparison.
//
//   $ ./build/examples/nfv_service_chain [rate_gbps]
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "src/hash/presets.h"
#include "src/netio/nic.h"
#include "src/nfv/chain.h"
#include "src/nfv/elements.h"
#include "src/nfv/runtime.h"
#include "src/sim/machine.h"
#include "src/slice/placement.h"
#include "src/trace/traffic_gen.h"

using namespace cachedir;

namespace {

PercentileRow RunChain(double rate_gbps, bool cache_director) {
  MemoryHierarchy hierarchy(HaswellXeonE52667V3(), HaswellSliceHash(), 1);
  SlicePlacement placement(hierarchy);
  PhysicalMemory memory;
  HugepageAllocator backing;

  // CacheDirector plugs in as a mempool/driver extension: when enabled, each
  // packet's first 64 B are steered to the consuming core's LLC slice.
  CacheDirector director(HaswellSliceHash(), placement, cache_director);
  Mempool pool(backing, 8192, director);

  SimNic::Config nic_config;
  nic_config.num_queues = 8;
  nic_config.steering = NicSteering::kFlowDirector;
  SimNic nic(nic_config, hierarchy, memory, pool, director);

  // The paper's chain: routing offloaded to the NIC (Metron-style), NAPT and
  // a flow-sticky round-robin load balancer in software.
  ServiceChain chain;
  IpRouter::Params router;
  router.num_routes = 3120;
  router.hw_offloaded = true;
  chain.Append(std::make_unique<IpRouter>(hierarchy, memory, backing, router));
  chain.Append(std::make_unique<Napt>(hierarchy, memory, backing, Napt::Params{}));
  chain.Append(
      std::make_unique<LoadBalancer>(hierarchy, memory, backing, LoadBalancer::Params{}));

  NfvRuntime runtime(NfvRuntime::Config{}, hierarchy, nic, chain);

  TrafficConfig traffic;
  traffic.size_mode = TrafficConfig::SizeMode::kCampusMix;
  traffic.rate_gbps = rate_gbps;
  traffic.seed = 7;
  TrafficGenerator gen(traffic);

  runtime.Run(gen.Generate(4000), nullptr);  // warm up caches & flow tables
  LatencyRecorder recorder;
  runtime.Run(gen.Generate(20000), &recorder);

  std::printf("  %-22s throughput %.2f Gbps, %llu drops\n",
              cache_director ? "[DPDK+CacheDirector]" : "[DPDK]",
              recorder.ThroughputGbps(),
              static_cast<unsigned long long>(recorder.drops()));
  return SummarizePercentiles(recorder.latencies_us());
}

}  // namespace

int main(int argc, char** argv) {
  const double rate = argc > 1 ? std::atof(argv[1]) : 100.0;
  std::printf("Router-NAPT-LB chain, campus mix @ %.0f Gbps, 8 cores\n", rate);

  const PercentileRow dpdk = RunChain(rate, false);
  const PercentileRow cd = RunChain(rate, true);

  std::printf("\n%-6s  %12s  %12s  %10s\n", "Pctl", "DPDK (us)", "+CD (us)", "gain");
  const struct {
    const char* label;
    double a;
    double b;
  } rows[] = {{"75th", dpdk.p75, cd.p75},
              {"90th", dpdk.p90, cd.p90},
              {"95th", dpdk.p95, cd.p95},
              {"99th", dpdk.p99, cd.p99},
              {"mean", dpdk.mean, cd.mean}};
  for (const auto& row : rows) {
    std::printf("%-6s  %12.2f  %12.2f  %9.2f%%\n", row.label, row.a, row.b,
                100.0 * (row.a - row.b) / row.a);
  }
  return 0;
}
