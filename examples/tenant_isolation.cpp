// Example: hypervisor-style slice partitioning between tenants (paper §7).
//
// Two tenants share the simulated Skylake socket. The SliceIsolationManager
// grants each a disjoint set of LLC slices near its cores; each tenant's
// allocations stay inside its grant, so one tenant streaming over a huge
// buffer cannot evict the other's working set.
//
//   $ ./build/examples/tenant_isolation
#include <cstdio>

#include "src/cache/hierarchy.h"
#include "src/hash/presets.h"
#include "src/sim/machine.h"
#include "src/sim/rng.h"
#include "src/slice/isolation.h"
#include "src/slice/placement.h"

using namespace cachedir;

namespace {

double MeasureTenantA(MemoryHierarchy& hierarchy, const MemoryBuffer& a_buf,
                      const MemoryBuffer& b_buf, CoreId a_core, CoreId b_core) {
  const std::size_t a_lines = a_buf.size_bytes() / kCacheLineSize;
  const std::size_t b_lines = b_buf.size_bytes() / kCacheLineSize;
  // Warm tenant A, then run both concurrently; B is a streaming hog.
  for (std::size_t i = 0; i < a_lines; ++i) {
    (void)hierarchy.Read(a_core, a_buf.PaForOffset(i * kCacheLineSize));
  }
  Rng a_rng(1);
  Rng b_rng(2);
  Cycles a_cycles = 0;
  const std::size_t ops = 80000;
  for (std::size_t i = 0; i < ops; ++i) {
    a_cycles += hierarchy
                    .Read(a_core, a_buf.PaForOffset(a_rng.UniformIndex(a_lines) *
                                                    kCacheLineSize))
                    .cycles;
    for (int k = 0; k < 8; ++k) {
      (void)hierarchy.Read(b_core,
                           b_buf.PaForOffset(b_rng.UniformIndex(b_lines) * kCacheLineSize));
    }
  }
  return static_cast<double>(a_cycles) / ops;
}

}  // namespace

int main() {
  std::printf("two tenants on the Skylake model: A (latency-sensitive, 1.5 MB)\n");
  std::printf("vs B (streaming, 48 MB), with and without slice partitioning\n\n");

  // --- Without isolation: both tenants in ordinary contiguous memory.
  {
    MemoryHierarchy hierarchy(SkylakeXeonGold6134(), SkylakeSliceHash(), 4);
    HugepageAllocator backing;
    const ContiguousBuffer a(backing.Allocate(1536 * 1024, PageSize::k1G).pa, 1536 * 1024);
    const ContiguousBuffer b(backing.Allocate(48u << 20, PageSize::k1G).pa, 48u << 20);
    std::printf("shared LLC           : tenant A averages %.1f cycles/access\n",
                MeasureTenantA(hierarchy, a, b, 0, 4));
  }

  // --- With isolation: the manager grants disjoint slice sets.
  {
    MemoryHierarchy hierarchy(SkylakeXeonGold6134(), SkylakeSliceHash(), 4);
    HugepageAllocator backing;
    SlicePlacement placement(hierarchy);
    SliceAwareAllocator allocator(backing, SkylakeSliceHash());
    SliceIsolationManager manager(placement, allocator);

    const auto a_slices = manager.RegisterTenant("tenant-a", {0, 1}, 2);
    const auto b_slices = manager.RegisterTenant("tenant-b", {4, 5}, 12);
    std::printf("slice partitioning   : A granted slices");
    for (const SliceId s : a_slices) {
      std::printf(" S%u", s);
    }
    std::printf("; B granted %zu slices\n", b_slices.size());

    const SliceBuffer a = manager.Allocate("tenant-a", 1536 * 1024);
    const SliceBuffer b = manager.Allocate("tenant-b", 48u << 20);
    std::printf("slice partitioning   : tenant A averages %.1f cycles/access\n",
                MeasureTenantA(hierarchy, a, b, 0, 4));
  }

  std::printf("\nisolated tenant A keeps its working set in its own nearby slices,\n");
  std::printf("untouched by B's streaming (paper §7's hypervisor proposal)\n");
  return 0;
}
