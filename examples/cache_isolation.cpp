// Example: protecting a latency-critical application from a noisy neighbor
// with slice isolation (paper §7).
//
// Runs a small working set next to a streaming neighbor on the Skylake
// model three ways — shared LLC, CAT way-isolation, slice isolation — and
// prints the main application's average access latency under each.
//
//   $ ./build/examples/cache_isolation
#include <cstdio>
#include <memory>

#include "src/cache/hierarchy.h"
#include "src/hash/presets.h"
#include "src/mem/hugepage.h"
#include "src/sim/machine.h"
#include "src/sim/rng.h"
#include "src/slice/buffers.h"
#include "src/slice/slice_mapper.h"

using namespace cachedir;

namespace {

constexpr std::size_t kMainBytes = 2u << 20;
constexpr std::size_t kNoisyBytes = 48u << 20;
constexpr CoreId kMainCore = 0;
constexpr CoreId kNoisyCore = 5;

double RunScenario(const char* label, bool use_cat, bool use_slices) {
  MemoryHierarchy hierarchy(SkylakeXeonGold6134(), SkylakeSliceHash(), 2);
  HugepageAllocator backing;
  const auto hash = SkylakeSliceHash();

  std::unique_ptr<MemoryBuffer> main_buf;
  std::unique_ptr<MemoryBuffer> noisy_buf;
  if (use_slices) {
    // Main app in slice 0; the neighbor's memory avoids slice 0 entirely.
    main_buf = std::make_unique<SliceBuffer>(
        GatherSliceLines(backing, *hash, 0, kMainBytes / kCacheLineSize));
    std::vector<SliceLine> noisy_lines;
    while (noisy_lines.size() < kNoisyBytes / kCacheLineSize) {
      const Mapping m = backing.Allocate(std::size_t{1} << 30, PageSize::k1G);
      for (std::size_t off = 0; off + kCacheLineSize <= m.size &&
                                noisy_lines.size() < kNoisyBytes / kCacheLineSize;
           off += kCacheLineSize) {
        if (hash->SliceFor(m.pa + off) != 0) {
          noisy_lines.push_back(SliceLine{m.va + off, m.pa + off});
        }
      }
    }
    noisy_buf = std::make_unique<SliceBuffer>(std::move(noisy_lines));
  } else {
    main_buf = std::make_unique<ContiguousBuffer>(
        backing.Allocate(kMainBytes, PageSize::k1G).pa, kMainBytes);
    noisy_buf = std::make_unique<ContiguousBuffer>(
        backing.Allocate(kNoisyBytes, PageSize::k1G).pa, kNoisyBytes);
    if (use_cat) {
      hierarchy.llc().SetCosWayMask(1, 0b00000000011);  // main: 2 of 11 ways
      hierarchy.llc().SetCosWayMask(2, 0b11111111100);  // neighbor: the rest
      hierarchy.llc().AssignCoreToCos(kMainCore, 1);
      hierarchy.llc().AssignCoreToCos(kNoisyCore, 2);
    }
  }

  // Warm, pollute, then measure under sustained interference.
  const std::size_t main_lines = kMainBytes / kCacheLineSize;
  const std::size_t noisy_lines = kNoisyBytes / kCacheLineSize;
  for (std::size_t i = 0; i < main_lines; ++i) {
    (void)hierarchy.Read(kMainCore, main_buf->PaForOffset(i * kCacheLineSize));
  }
  for (std::size_t i = 0; i < noisy_lines; i += 2) {
    (void)hierarchy.Read(kNoisyCore, noisy_buf->PaForOffset(i * kCacheLineSize));
  }

  Rng main_rng(1);
  Rng noisy_rng(2);
  Cycles total = 0;
  const std::size_t ops = 60000;
  for (std::size_t i = 0; i < ops; ++i) {
    total += hierarchy
                 .Read(kMainCore, main_buf->PaForOffset(main_rng.UniformIndex(main_lines) *
                                                        kCacheLineSize))
                 .cycles;
    for (int k = 0; k < 12; ++k) {
      (void)hierarchy.Read(kNoisyCore, noisy_buf->PaForOffset(
                                           noisy_rng.UniformIndex(noisy_lines) *
                                           kCacheLineSize));
    }
  }
  const double avg = static_cast<double>(total) / static_cast<double>(ops);
  std::printf("  %-24s %6.1f cycles/access\n", label, avg);
  return avg;
}

}  // namespace

int main() {
  std::printf("2 MB app vs a 48 MB streaming neighbor (Xeon Gold 6134 model)\n\n");
  const double shared = RunScenario("shared LLC (NoCAT)", false, false);
  const double cat = RunScenario("CAT, 2 of 11 ways", true, false);
  const double sliced = RunScenario("slice-0 isolation", false, true);
  std::printf("\nslice isolation is %.1f%% faster than CAT and %.1f%% faster than "
              "no isolation\n",
              100.0 * (cat - sliced) / cat, 100.0 * (shared - sliced) / shared);
  return 0;
}
