// Example: slice-aware key-value store.
//
// Spins up the emulated KVS with normal and slice-aware value layouts and
// serves Zipf-skewed GET/SET mixes on one core, printing TPS and cycles per
// request — the paper's §3.1 experiment, interactively sized.
//
//   $ ./build/examples/kvs_server [log2_num_values] [zipf_theta]
#include <cstdio>
#include <cstdlib>

#include "src/hash/presets.h"
#include "src/kvs/kvs.h"
#include "src/kvs/server.h"
#include "src/sim/machine.h"

using namespace cachedir;

namespace {

void Serve(bool slice_aware, std::size_t num_values, double theta) {
  MemoryHierarchy hierarchy(HaswellXeonE52667V3(), HaswellSliceHash(), 3);
  HugepageAllocator backing;
  EmulatedKvs::Config config;
  config.num_values = num_values;
  config.slice_aware = slice_aware;
  config.target_slice = 0;  // we serve from core 0
  EmulatedKvs kvs(hierarchy, backing, config);
  KvsServer server(kvs, /*core=*/0);

  std::printf("%s layout (%zu values, %.0f MB):\n",
              slice_aware ? "slice-aware" : "normal", kvs.num_values(),
              static_cast<double>(kvs.num_values()) * kCacheLineSize / (1 << 20));
  for (const double get_fraction : {1.0, 0.95, 0.5}) {
    KvsWorkload warmup;
    warmup.get_fraction = get_fraction;
    warmup.zipf_theta = theta;
    warmup.requests = 200000;
    (void)server.Run(warmup);
    KvsWorkload workload = warmup;
    workload.requests = 500000;
    workload.seed = 11;
    const KvsResult result = server.Run(workload);
    std::printf("  %3.0f%% GET: %7.3f Mtps  (%.0f cycles/request)\n",
                100 * get_fraction, result.tps_millions, result.avg_cycles_per_request);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t log2_values = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 18;
  const double theta = argc > 2 ? std::atof(argv[2]) : 0.99;
  if (log2_values < 6 || log2_values > 24) {
    std::fprintf(stderr, "log2_num_values must be in 6..24\n");
    return 1;
  }
  std::printf("emulated KVS, Zipf theta %.2f, 1 serving core\n\n", theta);
  Serve(false, std::size_t{1} << log2_values, theta);
  Serve(true, std::size_t{1} << log2_values, theta);
  std::printf("\nhint: gains need the hot set to fit one slice (2.5 MB) — try 15 vs 22\n");
  return 0;
}
