// Example: reverse-engineering Complex Addressing with performance counters.
//
// Treats the simulated CPU as a black box: programs the per-slice CBo
// counters, polls addresses to locate their slice, flips single physical
// address bits to recover the XOR masks, verifies the recovered function,
// and prints the Fig. 4-style matrix — the full §2.1 method.
//
//   $ ./build/examples/reverse_engineer
#include <cstdio>

#include "src/cache/hierarchy.h"
#include "src/hash/presets.h"
#include "src/mem/hugepage.h"
#include "src/rev/hash_solver.h"
#include "src/rev/polling.h"
#include "src/sim/machine.h"

using namespace cachedir;

int main() {
  MemoryHierarchy hierarchy(HaswellXeonE52667V3(), HaswellSliceHash());
  HugepageAllocator backing;
  const Mapping page = backing.Allocate(std::size_t{1} << 30, PageSize::k1G);
  std::printf("probing a 1 GB hugepage at PA 0x%llx through CBo counters only\n\n",
              static_cast<unsigned long long>(page.pa));

  // Step 1: polling — find the slice of a few addresses.
  SlicePoller poller(hierarchy);
  for (int i = 0; i < 4; ++i) {
    const PhysAddr addr = page.pa + static_cast<PhysAddr>(i) * 4096;
    std::printf("  PA 0x%llx -> slice %u\n", static_cast<unsigned long long>(addr),
                poller.FindSlice(addr));
  }

  // Step 2: reconstruct the hash from single-bit flips.
  HashSolver::Params params;
  params.region_base = page.pa;
  params.region_size = page.size;
  params.max_bit = 29;
  HashSolver solver(poller, hierarchy.spec().num_slices, params);
  const RecoveredXorHash hash = solver.Solve();

  std::printf("\nlinear: %s, verification: %.1f%%, polls used: %llu\n",
              hash.linear ? "yes" : "no", 100 * hash.verification_accuracy,
              static_cast<unsigned long long>(hash.polls));
  std::printf("recovered hash matrix (PA bits %u..%u):\n", params.min_bit, params.max_bit);
  for (const auto& row : FormatHashMatrix(hash.masks, params.min_bit, params.max_bit)) {
    std::printf("  %s\n", row.c_str());
  }

  // Step 3: use it — predict slices without touching the counters again.
  std::printf("\npredicting with the recovered function:\n");
  const auto truth = HaswellSliceHash();
  int correct = 0;
  for (int i = 0; i < 1000; ++i) {
    const PhysAddr addr = page.pa + static_cast<PhysAddr>(i) * 64 * 131;
    SliceId predicted = 0;
    for (std::size_t o = 0; o < hash.masks.size(); ++o) {
      predicted |= ParityOf(addr, hash.masks[o]) << o;
    }
    if (predicted == truth->SliceFor(addr)) {
      ++correct;
    }
  }
  std::printf("  %d / 1000 addresses predicted correctly\n", correct);
  return 0;
}
