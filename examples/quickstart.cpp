// Quickstart: the 60-second tour of the library.
//
// Builds the simulated Haswell socket, asks the placement library for the
// closest LLC slice to a core, allocates slice-aware memory there, and shows
// the access-latency difference against a normal allocation — the paper's
// core idea in ~80 lines.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "src/cache/hierarchy.h"
#include "src/hash/presets.h"
#include "src/mem/hugepage.h"
#include "src/sim/machine.h"
#include "src/sim/rng.h"
#include "src/slice/placement.h"
#include "src/slice/slice_allocator.h"

using namespace cachedir;

int main() {
  // 1. A simulated Intel Xeon E5-2667 v3: 8 cores, 8 LLC slices on a ring,
  //    Complex Addressing routing each 64 B line to a slice.
  const MachineSpec machine = HaswellXeonE52667V3();
  MemoryHierarchy hierarchy(machine, HaswellSliceHash());
  std::printf("machine: %s\n", machine.name.c_str());

  // 2. Where should core 2's hot data live? The placement library ranks
  //    slices by measured LLC hit latency.
  SlicePlacement placement(hierarchy);
  const CoreId core = 2;
  const SliceId near_slice = placement.ClosestSlice(core);
  std::printf("core %u: closest slice is %u (%llu cycles/hit); farthest costs %llu\n",
              core, near_slice,
              static_cast<unsigned long long>(placement.Latency(core, near_slice)),
              static_cast<unsigned long long>(
                  placement.Latency(core, placement.RankedSlices(core).back())));

  // 3. Allocate 512 kB that all hashes to that slice. The allocator scans
  //    hugepage-backed physical memory and pools lines per slice.
  HugepageAllocator backing;
  SliceAwareAllocator allocator(backing, HaswellSliceHash());
  const SliceBuffer hot = allocator.AllocateBytes(near_slice, 512 * 1024);
  std::printf("allocated %zu lines, every one in slice %u\n", hot.num_lines(), near_slice);

  // 4. Compare against a normal contiguous allocation under random reads.
  const std::size_t bytes = hot.size_bytes();
  const ContiguousBuffer normal(backing.Allocate(bytes, PageSize::k2M).pa, bytes);

  const auto measure = [&](const MemoryBuffer& buffer) {
    // Warm the cache, then time random reads.
    const std::size_t lines = buffer.size_bytes() / kCacheLineSize;
    for (std::size_t i = 0; i < lines; ++i) {
      (void)hierarchy.Read(core, buffer.PaForOffset(i * kCacheLineSize));
    }
    Rng rng(42);
    Cycles total = 0;
    const int ops = 20000;
    for (int i = 0; i < ops; ++i) {
      total += hierarchy.Read(core, buffer.PaForOffset(rng.UniformIndex(lines) *
                                                       kCacheLineSize)).cycles;
    }
    return static_cast<double>(total) / ops;
  };

  const double slice_cycles = measure(hot);
  const double normal_cycles = measure(normal);
  std::printf("avg read latency: slice-aware %.1f cycles, normal %.1f cycles "
              "(%.1f%% faster)\n",
              slice_cycles, normal_cycles,
              100.0 * (normal_cycles - slice_cycles) / normal_cycles);
  return 0;
}
