file(REMOVE_RECURSE
  "CMakeFiles/kvs_test.dir/kvs_test.cc.o"
  "CMakeFiles/kvs_test.dir/kvs_test.cc.o.d"
  "kvs_test"
  "kvs_test.pdb"
  "kvs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
