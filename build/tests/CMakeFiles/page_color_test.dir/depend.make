# Empty dependencies file for page_color_test.
# This may be replaced when dependencies are built.
