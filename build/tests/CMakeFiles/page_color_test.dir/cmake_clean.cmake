file(REMOVE_RECURSE
  "CMakeFiles/page_color_test.dir/page_color_test.cc.o"
  "CMakeFiles/page_color_test.dir/page_color_test.cc.o.d"
  "page_color_test"
  "page_color_test.pdb"
  "page_color_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/page_color_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
