file(REMOVE_RECURSE
  "CMakeFiles/rev_test.dir/rev_test.cc.o"
  "CMakeFiles/rev_test.dir/rev_test.cc.o.d"
  "rev_test"
  "rev_test.pdb"
  "rev_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rev_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
