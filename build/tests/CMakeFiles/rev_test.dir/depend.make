# Empty dependencies file for rev_test.
# This may be replaced when dependencies are built.
