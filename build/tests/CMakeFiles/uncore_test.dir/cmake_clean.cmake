file(REMOVE_RECURSE
  "CMakeFiles/uncore_test.dir/uncore_test.cc.o"
  "CMakeFiles/uncore_test.dir/uncore_test.cc.o.d"
  "uncore_test"
  "uncore_test.pdb"
  "uncore_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uncore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
