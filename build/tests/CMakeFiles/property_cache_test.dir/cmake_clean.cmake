file(REMOVE_RECURSE
  "CMakeFiles/property_cache_test.dir/property_cache_test.cc.o"
  "CMakeFiles/property_cache_test.dir/property_cache_test.cc.o.d"
  "property_cache_test"
  "property_cache_test.pdb"
  "property_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
