# Empty dependencies file for property_cache_test.
# This may be replaced when dependencies are built.
