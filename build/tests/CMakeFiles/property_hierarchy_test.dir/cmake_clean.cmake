file(REMOVE_RECURSE
  "CMakeFiles/property_hierarchy_test.dir/property_hierarchy_test.cc.o"
  "CMakeFiles/property_hierarchy_test.dir/property_hierarchy_test.cc.o.d"
  "property_hierarchy_test"
  "property_hierarchy_test.pdb"
  "property_hierarchy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_hierarchy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
