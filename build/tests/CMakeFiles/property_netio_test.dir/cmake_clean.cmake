file(REMOVE_RECURSE
  "CMakeFiles/property_netio_test.dir/property_netio_test.cc.o"
  "CMakeFiles/property_netio_test.dir/property_netio_test.cc.o.d"
  "property_netio_test"
  "property_netio_test.pdb"
  "property_netio_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_netio_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
