file(REMOVE_RECURSE
  "CMakeFiles/property_hash_test.dir/property_hash_test.cc.o"
  "CMakeFiles/property_hash_test.dir/property_hash_test.cc.o.d"
  "property_hash_test"
  "property_hash_test.pdb"
  "property_hash_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_hash_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
