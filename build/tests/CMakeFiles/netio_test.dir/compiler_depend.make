# Empty compiler generated dependencies file for netio_test.
# This may be replaced when dependencies are built.
