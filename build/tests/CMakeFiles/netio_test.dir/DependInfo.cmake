
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/netio_test.cc" "tests/CMakeFiles/netio_test.dir/netio_test.cc.o" "gcc" "tests/CMakeFiles/netio_test.dir/netio_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netio/CMakeFiles/cd_netio.dir/DependInfo.cmake"
  "/root/repo/build/src/slice/CMakeFiles/cd_slice.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/cd_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/cd_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/uncore/CMakeFiles/cd_uncore.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/cd_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/cd_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/cd_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cd_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
