# Empty compiler generated dependencies file for nfv_test.
# This may be replaced when dependencies are built.
