file(REMOVE_RECURSE
  "CMakeFiles/nfv_test.dir/nfv_test.cc.o"
  "CMakeFiles/nfv_test.dir/nfv_test.cc.o.d"
  "nfv_test"
  "nfv_test.pdb"
  "nfv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
