# Empty dependencies file for property_stats_test.
# This may be replaced when dependencies are built.
