# Empty dependencies file for hot_migrator_test.
# This may be replaced when dependencies are built.
