file(REMOVE_RECURSE
  "CMakeFiles/hot_migrator_test.dir/hot_migrator_test.cc.o"
  "CMakeFiles/hot_migrator_test.dir/hot_migrator_test.cc.o.d"
  "hot_migrator_test"
  "hot_migrator_test.pdb"
  "hot_migrator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hot_migrator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
