file(REMOVE_RECURSE
  "CMakeFiles/tenant_isolation.dir/tenant_isolation.cpp.o"
  "CMakeFiles/tenant_isolation.dir/tenant_isolation.cpp.o.d"
  "tenant_isolation"
  "tenant_isolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tenant_isolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
