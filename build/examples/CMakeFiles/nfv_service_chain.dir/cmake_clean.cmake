file(REMOVE_RECURSE
  "CMakeFiles/nfv_service_chain.dir/nfv_service_chain.cpp.o"
  "CMakeFiles/nfv_service_chain.dir/nfv_service_chain.cpp.o.d"
  "nfv_service_chain"
  "nfv_service_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfv_service_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
