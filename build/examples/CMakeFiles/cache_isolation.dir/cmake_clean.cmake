file(REMOVE_RECURSE
  "CMakeFiles/cache_isolation.dir/cache_isolation.cpp.o"
  "CMakeFiles/cache_isolation.dir/cache_isolation.cpp.o.d"
  "cache_isolation"
  "cache_isolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_isolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
