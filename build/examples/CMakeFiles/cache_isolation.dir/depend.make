# Empty dependencies file for cache_isolation.
# This may be replaced when dependencies are built.
