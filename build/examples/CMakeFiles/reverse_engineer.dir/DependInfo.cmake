
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/reverse_engineer.cpp" "examples/CMakeFiles/reverse_engineer.dir/reverse_engineer.cpp.o" "gcc" "examples/CMakeFiles/reverse_engineer.dir/reverse_engineer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rev/CMakeFiles/cd_rev.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/cd_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/cd_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/cd_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/uncore/CMakeFiles/cd_uncore.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cd_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
