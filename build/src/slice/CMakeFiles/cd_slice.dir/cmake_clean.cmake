file(REMOVE_RECURSE
  "CMakeFiles/cd_slice.dir/hot_migrator.cc.o"
  "CMakeFiles/cd_slice.dir/hot_migrator.cc.o.d"
  "CMakeFiles/cd_slice.dir/isolation.cc.o"
  "CMakeFiles/cd_slice.dir/isolation.cc.o.d"
  "CMakeFiles/cd_slice.dir/page_color.cc.o"
  "CMakeFiles/cd_slice.dir/page_color.cc.o.d"
  "CMakeFiles/cd_slice.dir/placement.cc.o"
  "CMakeFiles/cd_slice.dir/placement.cc.o.d"
  "CMakeFiles/cd_slice.dir/slice_allocator.cc.o"
  "CMakeFiles/cd_slice.dir/slice_allocator.cc.o.d"
  "CMakeFiles/cd_slice.dir/slice_mapper.cc.o"
  "CMakeFiles/cd_slice.dir/slice_mapper.cc.o.d"
  "libcd_slice.a"
  "libcd_slice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cd_slice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
