
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/slice/hot_migrator.cc" "src/slice/CMakeFiles/cd_slice.dir/hot_migrator.cc.o" "gcc" "src/slice/CMakeFiles/cd_slice.dir/hot_migrator.cc.o.d"
  "/root/repo/src/slice/isolation.cc" "src/slice/CMakeFiles/cd_slice.dir/isolation.cc.o" "gcc" "src/slice/CMakeFiles/cd_slice.dir/isolation.cc.o.d"
  "/root/repo/src/slice/page_color.cc" "src/slice/CMakeFiles/cd_slice.dir/page_color.cc.o" "gcc" "src/slice/CMakeFiles/cd_slice.dir/page_color.cc.o.d"
  "/root/repo/src/slice/placement.cc" "src/slice/CMakeFiles/cd_slice.dir/placement.cc.o" "gcc" "src/slice/CMakeFiles/cd_slice.dir/placement.cc.o.d"
  "/root/repo/src/slice/slice_allocator.cc" "src/slice/CMakeFiles/cd_slice.dir/slice_allocator.cc.o" "gcc" "src/slice/CMakeFiles/cd_slice.dir/slice_allocator.cc.o.d"
  "/root/repo/src/slice/slice_mapper.cc" "src/slice/CMakeFiles/cd_slice.dir/slice_mapper.cc.o" "gcc" "src/slice/CMakeFiles/cd_slice.dir/slice_mapper.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cache/CMakeFiles/cd_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/cd_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/cd_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/uncore/CMakeFiles/cd_uncore.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cd_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
