# Empty compiler generated dependencies file for cd_slice.
# This may be replaced when dependencies are built.
