file(REMOVE_RECURSE
  "libcd_slice.a"
)
