file(REMOVE_RECURSE
  "libcd_hash.a"
)
