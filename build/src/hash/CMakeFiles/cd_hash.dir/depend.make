# Empty dependencies file for cd_hash.
# This may be replaced when dependencies are built.
