file(REMOVE_RECURSE
  "CMakeFiles/cd_hash.dir/presets.cc.o"
  "CMakeFiles/cd_hash.dir/presets.cc.o.d"
  "CMakeFiles/cd_hash.dir/slice_hash.cc.o"
  "CMakeFiles/cd_hash.dir/slice_hash.cc.o.d"
  "libcd_hash.a"
  "libcd_hash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cd_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
