file(REMOVE_RECURSE
  "CMakeFiles/cd_sim.dir/machine.cc.o"
  "CMakeFiles/cd_sim.dir/machine.cc.o.d"
  "libcd_sim.a"
  "libcd_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cd_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
