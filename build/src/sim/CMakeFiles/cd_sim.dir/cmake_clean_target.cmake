file(REMOVE_RECURSE
  "libcd_sim.a"
)
