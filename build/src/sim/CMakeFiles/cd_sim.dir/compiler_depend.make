# Empty compiler generated dependencies file for cd_sim.
# This may be replaced when dependencies are built.
