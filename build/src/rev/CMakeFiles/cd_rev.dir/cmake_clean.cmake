file(REMOVE_RECURSE
  "CMakeFiles/cd_rev.dir/hash_solver.cc.o"
  "CMakeFiles/cd_rev.dir/hash_solver.cc.o.d"
  "CMakeFiles/cd_rev.dir/polling.cc.o"
  "CMakeFiles/cd_rev.dir/polling.cc.o.d"
  "libcd_rev.a"
  "libcd_rev.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cd_rev.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
