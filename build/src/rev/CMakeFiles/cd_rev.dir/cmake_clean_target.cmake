file(REMOVE_RECURSE
  "libcd_rev.a"
)
