# Empty compiler generated dependencies file for cd_rev.
# This may be replaced when dependencies are built.
