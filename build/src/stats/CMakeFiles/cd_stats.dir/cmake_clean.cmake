file(REMOVE_RECURSE
  "CMakeFiles/cd_stats.dir/fit.cc.o"
  "CMakeFiles/cd_stats.dir/fit.cc.o.d"
  "CMakeFiles/cd_stats.dir/significance.cc.o"
  "CMakeFiles/cd_stats.dir/significance.cc.o.d"
  "CMakeFiles/cd_stats.dir/summary.cc.o"
  "CMakeFiles/cd_stats.dir/summary.cc.o.d"
  "CMakeFiles/cd_stats.dir/zipf.cc.o"
  "CMakeFiles/cd_stats.dir/zipf.cc.o.d"
  "libcd_stats.a"
  "libcd_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cd_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
