file(REMOVE_RECURSE
  "libcd_trace.a"
)
