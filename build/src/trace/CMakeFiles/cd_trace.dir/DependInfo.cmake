
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/packet.cc" "src/trace/CMakeFiles/cd_trace.dir/packet.cc.o" "gcc" "src/trace/CMakeFiles/cd_trace.dir/packet.cc.o.d"
  "/root/repo/src/trace/trace_file.cc" "src/trace/CMakeFiles/cd_trace.dir/trace_file.cc.o" "gcc" "src/trace/CMakeFiles/cd_trace.dir/trace_file.cc.o.d"
  "/root/repo/src/trace/traffic_gen.cc" "src/trace/CMakeFiles/cd_trace.dir/traffic_gen.cc.o" "gcc" "src/trace/CMakeFiles/cd_trace.dir/traffic_gen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/cd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/cd_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/cd_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
