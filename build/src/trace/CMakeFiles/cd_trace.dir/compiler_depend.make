# Empty compiler generated dependencies file for cd_trace.
# This may be replaced when dependencies are built.
