file(REMOVE_RECURSE
  "CMakeFiles/cd_trace.dir/packet.cc.o"
  "CMakeFiles/cd_trace.dir/packet.cc.o.d"
  "CMakeFiles/cd_trace.dir/trace_file.cc.o"
  "CMakeFiles/cd_trace.dir/trace_file.cc.o.d"
  "CMakeFiles/cd_trace.dir/traffic_gen.cc.o"
  "CMakeFiles/cd_trace.dir/traffic_gen.cc.o.d"
  "libcd_trace.a"
  "libcd_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cd_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
