file(REMOVE_RECURSE
  "CMakeFiles/cd_cache.dir/hierarchy.cc.o"
  "CMakeFiles/cd_cache.dir/hierarchy.cc.o.d"
  "CMakeFiles/cd_cache.dir/replacement.cc.o"
  "CMakeFiles/cd_cache.dir/replacement.cc.o.d"
  "CMakeFiles/cd_cache.dir/set_assoc_cache.cc.o"
  "CMakeFiles/cd_cache.dir/set_assoc_cache.cc.o.d"
  "CMakeFiles/cd_cache.dir/sliced_llc.cc.o"
  "CMakeFiles/cd_cache.dir/sliced_llc.cc.o.d"
  "libcd_cache.a"
  "libcd_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cd_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
