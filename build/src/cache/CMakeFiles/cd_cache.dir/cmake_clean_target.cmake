file(REMOVE_RECURSE
  "libcd_cache.a"
)
