# Empty dependencies file for cd_cache.
# This may be replaced when dependencies are built.
