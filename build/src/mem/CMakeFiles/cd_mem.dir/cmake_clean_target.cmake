file(REMOVE_RECURSE
  "libcd_mem.a"
)
