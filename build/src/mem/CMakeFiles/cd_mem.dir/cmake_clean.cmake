file(REMOVE_RECURSE
  "CMakeFiles/cd_mem.dir/hugepage.cc.o"
  "CMakeFiles/cd_mem.dir/hugepage.cc.o.d"
  "CMakeFiles/cd_mem.dir/physical_memory.cc.o"
  "CMakeFiles/cd_mem.dir/physical_memory.cc.o.d"
  "libcd_mem.a"
  "libcd_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cd_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
