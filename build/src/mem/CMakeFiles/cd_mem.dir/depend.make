# Empty dependencies file for cd_mem.
# This may be replaced when dependencies are built.
