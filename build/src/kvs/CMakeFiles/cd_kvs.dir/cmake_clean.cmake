file(REMOVE_RECURSE
  "CMakeFiles/cd_kvs.dir/hash_kvs.cc.o"
  "CMakeFiles/cd_kvs.dir/hash_kvs.cc.o.d"
  "CMakeFiles/cd_kvs.dir/kvs.cc.o"
  "CMakeFiles/cd_kvs.dir/kvs.cc.o.d"
  "CMakeFiles/cd_kvs.dir/server.cc.o"
  "CMakeFiles/cd_kvs.dir/server.cc.o.d"
  "libcd_kvs.a"
  "libcd_kvs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cd_kvs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
