# Empty compiler generated dependencies file for cd_kvs.
# This may be replaced when dependencies are built.
