file(REMOVE_RECURSE
  "libcd_kvs.a"
)
