file(REMOVE_RECURSE
  "libcd_netio.a"
)
