file(REMOVE_RECURSE
  "CMakeFiles/cd_netio.dir/cache_director.cc.o"
  "CMakeFiles/cd_netio.dir/cache_director.cc.o.d"
  "CMakeFiles/cd_netio.dir/mempool.cc.o"
  "CMakeFiles/cd_netio.dir/mempool.cc.o.d"
  "CMakeFiles/cd_netio.dir/nic.cc.o"
  "CMakeFiles/cd_netio.dir/nic.cc.o.d"
  "CMakeFiles/cd_netio.dir/sorted_mempool.cc.o"
  "CMakeFiles/cd_netio.dir/sorted_mempool.cc.o.d"
  "libcd_netio.a"
  "libcd_netio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cd_netio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
