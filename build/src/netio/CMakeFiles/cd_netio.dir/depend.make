# Empty dependencies file for cd_netio.
# This may be replaced when dependencies are built.
