file(REMOVE_RECURSE
  "libcd_nfv.a"
)
