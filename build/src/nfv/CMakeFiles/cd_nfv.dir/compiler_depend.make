# Empty compiler generated dependencies file for cd_nfv.
# This may be replaced when dependencies are built.
