file(REMOVE_RECURSE
  "CMakeFiles/cd_nfv.dir/elements.cc.o"
  "CMakeFiles/cd_nfv.dir/elements.cc.o.d"
  "CMakeFiles/cd_nfv.dir/runtime.cc.o"
  "CMakeFiles/cd_nfv.dir/runtime.cc.o.d"
  "libcd_nfv.a"
  "libcd_nfv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cd_nfv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
