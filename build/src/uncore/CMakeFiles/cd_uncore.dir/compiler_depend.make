# Empty compiler generated dependencies file for cd_uncore.
# This may be replaced when dependencies are built.
