file(REMOVE_RECURSE
  "libcd_uncore.a"
)
