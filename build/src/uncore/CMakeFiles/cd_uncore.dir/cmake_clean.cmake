file(REMOVE_RECURSE
  "CMakeFiles/cd_uncore.dir/cbo.cc.o"
  "CMakeFiles/cd_uncore.dir/cbo.cc.o.d"
  "libcd_uncore.a"
  "libcd_uncore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cd_uncore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
