file(REMOVE_RECURSE
  "CMakeFiles/slice_inspect.dir/slice_inspect.cc.o"
  "CMakeFiles/slice_inspect.dir/slice_inspect.cc.o.d"
  "slice_inspect"
  "slice_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slice_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
