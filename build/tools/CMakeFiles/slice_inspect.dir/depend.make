# Empty dependencies file for slice_inspect.
# This may be replaced when dependencies are built.
