file(REMOVE_RECURSE
  "CMakeFiles/ablation_replacement_policy.dir/ablation_replacement_policy.cc.o"
  "CMakeFiles/ablation_replacement_policy.dir/ablation_replacement_policy.cc.o.d"
  "ablation_replacement_policy"
  "ablation_replacement_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_replacement_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
