# Empty compiler generated dependencies file for table1_cache_spec.
# This may be replaced when dependencies are built.
