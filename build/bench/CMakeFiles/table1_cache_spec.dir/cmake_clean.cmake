file(REMOVE_RECURSE
  "CMakeFiles/table1_cache_spec.dir/table1_cache_spec.cc.o"
  "CMakeFiles/table1_cache_spec.dir/table1_cache_spec.cc.o.d"
  "table1_cache_spec"
  "table1_cache_spec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_cache_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
