# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig14_service_chain_100g.
