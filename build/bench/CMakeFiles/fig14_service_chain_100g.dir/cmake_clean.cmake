file(REMOVE_RECURSE
  "CMakeFiles/fig14_service_chain_100g.dir/fig14_service_chain_100g.cc.o"
  "CMakeFiles/fig14_service_chain_100g.dir/fig14_service_chain_100g.cc.o.d"
  "fig14_service_chain_100g"
  "fig14_service_chain_100g.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_service_chain_100g.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
