# Empty compiler generated dependencies file for fig14_service_chain_100g.
# This may be replaced when dependencies are built.
