# Empty compiler generated dependencies file for fig4_hash_recovery.
# This may be replaced when dependencies are built.
