file(REMOVE_RECURSE
  "CMakeFiles/fig4_hash_recovery.dir/fig4_hash_recovery.cc.o"
  "CMakeFiles/fig4_hash_recovery.dir/fig4_hash_recovery.cc.o.d"
  "fig4_hash_recovery"
  "fig4_hash_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_hash_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
