file(REMOVE_RECURSE
  "CMakeFiles/core_count_sweep.dir/core_count_sweep.cc.o"
  "CMakeFiles/core_count_sweep.dir/core_count_sweep.cc.o.d"
  "core_count_sweep"
  "core_count_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_count_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
