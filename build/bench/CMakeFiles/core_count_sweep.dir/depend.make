# Empty dependencies file for core_count_sweep.
# This may be replaced when dependencies are built.
