# Empty dependencies file for fig12_forwarding_low_rate.
# This may be replaced when dependencies are built.
