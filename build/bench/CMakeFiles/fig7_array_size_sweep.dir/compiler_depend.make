# Empty compiler generated dependencies file for fig7_array_size_sweep.
# This may be replaced when dependencies are built.
