# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig7_array_size_sweep.
