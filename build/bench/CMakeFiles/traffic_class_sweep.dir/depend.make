# Empty dependencies file for traffic_class_sweep.
# This may be replaced when dependencies are built.
