file(REMOVE_RECURSE
  "CMakeFiles/traffic_class_sweep.dir/traffic_class_sweep.cc.o"
  "CMakeFiles/traffic_class_sweep.dir/traffic_class_sweep.cc.o.d"
  "traffic_class_sweep"
  "traffic_class_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_class_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
