file(REMOVE_RECURSE
  "CMakeFiles/ablation_page_coloring.dir/ablation_page_coloring.cc.o"
  "CMakeFiles/ablation_page_coloring.dir/ablation_page_coloring.cc.o.d"
  "ablation_page_coloring"
  "ablation_page_coloring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_page_coloring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
