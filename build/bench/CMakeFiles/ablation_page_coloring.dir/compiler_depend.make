# Empty compiler generated dependencies file for ablation_page_coloring.
# This may be replaced when dependencies are built.
