# Empty compiler generated dependencies file for nfv_isolation_bench.
# This may be replaced when dependencies are built.
