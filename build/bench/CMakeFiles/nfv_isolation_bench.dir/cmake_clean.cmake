file(REMOVE_RECURSE
  "CMakeFiles/nfv_isolation_bench.dir/nfv_isolation_bench.cc.o"
  "CMakeFiles/nfv_isolation_bench.dir/nfv_isolation_bench.cc.o.d"
  "nfv_isolation_bench"
  "nfv_isolation_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfv_isolation_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
