# Empty dependencies file for table4_skylake_preferences.
# This may be replaced when dependencies are built.
