file(REMOVE_RECURSE
  "CMakeFiles/table4_skylake_preferences.dir/table4_skylake_preferences.cc.o"
  "CMakeFiles/table4_skylake_preferences.dir/table4_skylake_preferences.cc.o.d"
  "table4_skylake_preferences"
  "table4_skylake_preferences.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_skylake_preferences.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
