file(REMOVE_RECURSE
  "CMakeFiles/hash_kvs_bench.dir/hash_kvs_bench.cc.o"
  "CMakeFiles/hash_kvs_bench.dir/hash_kvs_bench.cc.o.d"
  "hash_kvs_bench"
  "hash_kvs_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hash_kvs_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
