# Empty compiler generated dependencies file for hash_kvs_bench.
# This may be replaced when dependencies are built.
