file(REMOVE_RECURSE
  "CMakeFiles/table2_traffic_classes.dir/table2_traffic_classes.cc.o"
  "CMakeFiles/table2_traffic_classes.dir/table2_traffic_classes.cc.o.d"
  "table2_traffic_classes"
  "table2_traffic_classes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_traffic_classes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
