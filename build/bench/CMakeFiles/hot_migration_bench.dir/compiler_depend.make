# Empty compiler generated dependencies file for hot_migration_bench.
# This may be replaced when dependencies are built.
