file(REMOVE_RECURSE
  "CMakeFiles/hot_migration_bench.dir/hot_migration_bench.cc.o"
  "CMakeFiles/hot_migration_bench.dir/hot_migration_bench.cc.o.d"
  "hot_migration_bench"
  "hot_migration_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hot_migration_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
