file(REMOVE_RECURSE
  "libcd_benchlib.a"
)
