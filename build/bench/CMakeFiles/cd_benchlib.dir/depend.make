# Empty dependencies file for cd_benchlib.
# This may be replaced when dependencies are built.
