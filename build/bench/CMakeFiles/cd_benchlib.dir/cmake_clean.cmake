file(REMOVE_RECURSE
  "CMakeFiles/cd_benchlib.dir/access_time.cc.o"
  "CMakeFiles/cd_benchlib.dir/access_time.cc.o.d"
  "CMakeFiles/cd_benchlib.dir/nfv_experiment.cc.o"
  "CMakeFiles/cd_benchlib.dir/nfv_experiment.cc.o.d"
  "CMakeFiles/cd_benchlib.dir/random_access.cc.o"
  "CMakeFiles/cd_benchlib.dir/random_access.cc.o.d"
  "libcd_benchlib.a"
  "libcd_benchlib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cd_benchlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
