# Empty compiler generated dependencies file for ablation_value_size.
# This may be replaced when dependencies are built.
