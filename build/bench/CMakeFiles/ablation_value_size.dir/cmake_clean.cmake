file(REMOVE_RECURSE
  "CMakeFiles/ablation_value_size.dir/ablation_value_size.cc.o"
  "CMakeFiles/ablation_value_size.dir/ablation_value_size.cc.o.d"
  "ablation_value_size"
  "ablation_value_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_value_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
