# Empty compiler generated dependencies file for fig8_kvs_tps.
# This may be replaced when dependencies are built.
