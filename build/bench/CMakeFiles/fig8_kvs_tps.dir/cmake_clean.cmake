file(REMOVE_RECURSE
  "CMakeFiles/fig8_kvs_tps.dir/fig8_kvs_tps.cc.o"
  "CMakeFiles/fig8_kvs_tps.dir/fig8_kvs_tps.cc.o.d"
  "fig8_kvs_tps"
  "fig8_kvs_tps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_kvs_tps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
