file(REMOVE_RECURSE
  "CMakeFiles/fig16_skylake_access_time.dir/fig16_skylake_access_time.cc.o"
  "CMakeFiles/fig16_skylake_access_time.dir/fig16_skylake_access_time.cc.o.d"
  "fig16_skylake_access_time"
  "fig16_skylake_access_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_skylake_access_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
