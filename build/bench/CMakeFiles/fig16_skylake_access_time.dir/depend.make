# Empty dependencies file for fig16_skylake_access_time.
# This may be replaced when dependencies are built.
