# Empty compiler generated dependencies file for fig15_latency_vs_throughput.
# This may be replaced when dependencies are built.
