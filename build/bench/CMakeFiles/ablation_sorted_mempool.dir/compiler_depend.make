# Empty compiler generated dependencies file for ablation_sorted_mempool.
# This may be replaced when dependencies are built.
