file(REMOVE_RECURSE
  "CMakeFiles/ablation_sorted_mempool.dir/ablation_sorted_mempool.cc.o"
  "CMakeFiles/ablation_sorted_mempool.dir/ablation_sorted_mempool.cc.o.d"
  "ablation_sorted_mempool"
  "ablation_sorted_mempool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sorted_mempool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
