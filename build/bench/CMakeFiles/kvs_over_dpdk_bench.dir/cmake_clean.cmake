file(REMOVE_RECURSE
  "CMakeFiles/kvs_over_dpdk_bench.dir/kvs_over_dpdk_bench.cc.o"
  "CMakeFiles/kvs_over_dpdk_bench.dir/kvs_over_dpdk_bench.cc.o.d"
  "kvs_over_dpdk_bench"
  "kvs_over_dpdk_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvs_over_dpdk_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
