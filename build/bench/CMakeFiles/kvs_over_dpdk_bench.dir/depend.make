# Empty dependencies file for kvs_over_dpdk_bench.
# This may be replaced when dependencies are built.
