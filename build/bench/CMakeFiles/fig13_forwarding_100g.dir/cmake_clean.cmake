file(REMOVE_RECURSE
  "CMakeFiles/fig13_forwarding_100g.dir/fig13_forwarding_100g.cc.o"
  "CMakeFiles/fig13_forwarding_100g.dir/fig13_forwarding_100g.cc.o.d"
  "fig13_forwarding_100g"
  "fig13_forwarding_100g.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_forwarding_100g.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
