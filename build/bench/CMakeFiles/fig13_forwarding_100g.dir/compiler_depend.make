# Empty compiler generated dependencies file for fig13_forwarding_100g.
# This may be replaced when dependencies are built.
