# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for skylake_port_bench.
