# Empty compiler generated dependencies file for skylake_port_bench.
# This may be replaced when dependencies are built.
