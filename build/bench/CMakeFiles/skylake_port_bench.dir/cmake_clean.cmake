file(REMOVE_RECURSE
  "CMakeFiles/skylake_port_bench.dir/skylake_port_bench.cc.o"
  "CMakeFiles/skylake_port_bench.dir/skylake_port_bench.cc.o.d"
  "skylake_port_bench"
  "skylake_port_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skylake_port_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
