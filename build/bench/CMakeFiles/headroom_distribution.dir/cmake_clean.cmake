file(REMOVE_RECURSE
  "CMakeFiles/headroom_distribution.dir/headroom_distribution.cc.o"
  "CMakeFiles/headroom_distribution.dir/headroom_distribution.cc.o.d"
  "headroom_distribution"
  "headroom_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/headroom_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
