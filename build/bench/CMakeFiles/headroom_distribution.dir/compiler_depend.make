# Empty compiler generated dependencies file for headroom_distribution.
# This may be replaced when dependencies are built.
