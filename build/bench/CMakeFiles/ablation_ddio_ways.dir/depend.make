# Empty dependencies file for ablation_ddio_ways.
# This may be replaced when dependencies are built.
