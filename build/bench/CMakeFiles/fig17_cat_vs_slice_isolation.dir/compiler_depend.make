# Empty compiler generated dependencies file for fig17_cat_vs_slice_isolation.
# This may be replaced when dependencies are built.
