file(REMOVE_RECURSE
  "CMakeFiles/fig17_cat_vs_slice_isolation.dir/fig17_cat_vs_slice_isolation.cc.o"
  "CMakeFiles/fig17_cat_vs_slice_isolation.dir/fig17_cat_vs_slice_isolation.cc.o.d"
  "fig17_cat_vs_slice_isolation"
  "fig17_cat_vs_slice_isolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_cat_vs_slice_isolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
