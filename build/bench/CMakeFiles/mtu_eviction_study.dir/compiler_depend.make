# Empty compiler generated dependencies file for mtu_eviction_study.
# This may be replaced when dependencies are built.
