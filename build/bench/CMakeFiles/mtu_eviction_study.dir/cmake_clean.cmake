file(REMOVE_RECURSE
  "CMakeFiles/mtu_eviction_study.dir/mtu_eviction_study.cc.o"
  "CMakeFiles/mtu_eviction_study.dir/mtu_eviction_study.cc.o.d"
  "mtu_eviction_study"
  "mtu_eviction_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtu_eviction_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
