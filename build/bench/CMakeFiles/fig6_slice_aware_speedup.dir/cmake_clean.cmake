file(REMOVE_RECURSE
  "CMakeFiles/fig6_slice_aware_speedup.dir/fig6_slice_aware_speedup.cc.o"
  "CMakeFiles/fig6_slice_aware_speedup.dir/fig6_slice_aware_speedup.cc.o.d"
  "fig6_slice_aware_speedup"
  "fig6_slice_aware_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_slice_aware_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
