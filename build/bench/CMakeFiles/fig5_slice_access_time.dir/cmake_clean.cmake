file(REMOVE_RECURSE
  "CMakeFiles/fig5_slice_access_time.dir/fig5_slice_access_time.cc.o"
  "CMakeFiles/fig5_slice_access_time.dir/fig5_slice_access_time.cc.o.d"
  "fig5_slice_access_time"
  "fig5_slice_access_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_slice_access_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
