# Empty dependencies file for fig5_slice_access_time.
# This may be replaced when dependencies are built.
