#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <vector>

#include "src/stats/fit.h"
#include "src/stats/summary.h"
#include "src/stats/zipf.h"

namespace cachedir {
namespace {

TEST(SamplesTest, PercentilesInterpolate) {
  Samples s({10, 20, 30, 40, 50});
  EXPECT_DOUBLE_EQ(s.Percentile(0), 10);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 30);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 50);
  EXPECT_DOUBLE_EQ(s.Percentile(25), 20);
  EXPECT_DOUBLE_EQ(s.Percentile(12.5), 15);
}

TEST(SamplesTest, PercentileOnEmptyThrows) {
  Samples s;
  EXPECT_THROW((void)s.Percentile(50), std::logic_error);
}

TEST(SamplesTest, SummaryStatistics) {
  Samples s({1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(s.Mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.Min(), 1);
  EXPECT_DOUBLE_EQ(s.Max(), 4);
  EXPECT_NEAR(s.Stddev(), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(SamplesTest, AddInvalidatesSortCache) {
  Samples s({5, 1});
  EXPECT_DOUBLE_EQ(s.Median(), 3);
  s.Add(100);
  EXPECT_DOUBLE_EQ(s.Median(), 5);
}

TEST(SamplesTest, CdfMatchesDefinition) {
  Samples s({1, 2, 2, 3});
  EXPECT_DOUBLE_EQ(s.CdfAt(0), 0.0);
  EXPECT_DOUBLE_EQ(s.CdfAt(1), 0.25);
  EXPECT_DOUBLE_EQ(s.CdfAt(2), 0.75);
  EXPECT_DOUBLE_EQ(s.CdfAt(10), 1.0);
}

TEST(SamplesTest, SkewnessSignsAreCorrect) {
  Samples right({1, 1, 1, 1, 10});  // long right tail
  EXPECT_GT(right.Skewness(), 0);
  Samples left({10, 10, 10, 10, 1});
  EXPECT_LT(left.Skewness(), 0);
  Samples sym({1, 2, 3, 4, 5});
  EXPECT_NEAR(sym.Skewness(), 0, 1e-12);
}

TEST(SamplesTest, LargeSortMatchesStdSortBitwise) {
  // Above the radix threshold Samples sorts non-negative doubles by bit
  // pattern; the result must be byte-for-byte what std::sort produces.
  // Deterministic LCG stream with deliberate duplicates and subnormals.
  std::uint64_t state = 0x2545F4914F6CDD1DULL;
  std::vector<double> raw;
  raw.reserve(5000);
  for (int i = 0; i < 5000; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const double v = static_cast<double>(state >> 11) / 1e15;
    raw.push_back(i % 7 == 0 ? std::floor(v) : v);
  }
  raw[123] = 0.0;
  raw[456] = 5e-324;  // smallest subnormal
  std::vector<double> expected = raw;
  std::sort(expected.begin(), expected.end());

  const Samples s(raw);
  EXPECT_EQ(s.Sorted(), expected);
  EXPECT_DOUBLE_EQ(s.Min(), expected.front());
  EXPECT_DOUBLE_EQ(s.Max(), expected.back());
}

TEST(SamplesTest, NegativeValuesStillSortCorrectlyAtScale) {
  // Negative values force the comparison-sort fallback (bit order inverts
  // for set sign bits); the contract is the same sorted array either way.
  std::uint64_t state = 99;
  std::vector<double> raw;
  raw.reserve(4096);
  for (int i = 0; i < 4096; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    raw.push_back(static_cast<double>(static_cast<std::int64_t>(state)) / 1e12);
  }
  raw[7] = -0.0;
  std::vector<double> expected = raw;
  std::sort(expected.begin(), expected.end());
  const Samples s(raw);
  EXPECT_EQ(s.Sorted(), expected);
}

TEST(SamplesTest, AppendMatchesRepeatedAdd) {
  const std::vector<double> block = {3.5, 1.25, 3.5, 0.0, 9.75};
  Samples via_add({2.0});
  for (const double v : block) {
    via_add.Add(v);
  }
  Samples via_append({2.0});
  via_append.Append(block);
  EXPECT_EQ(via_append.values(), via_add.values());
  EXPECT_DOUBLE_EQ(via_append.Median(), via_add.Median());
}

TEST(SamplesTest, PercentileRowIsConsistent) {
  Samples s;
  for (int i = 1; i <= 100; ++i) {
    s.Add(i);
  }
  const PercentileRow row = SummarizePercentiles(s);
  EXPECT_LT(row.p75, row.p90);
  EXPECT_LT(row.p90, row.p95);
  EXPECT_LT(row.p95, row.p99);
  EXPECT_NEAR(row.mean, 50.5, 1e-12);
}

TEST(ZipfTest, UniformWhenThetaZero) {
  ZipfGenerator gen(100, 0.0, 42);
  std::vector<int> counts(100, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    ++counts[gen.Next()];
  }
  for (const int c : counts) {
    EXPECT_NEAR(c, n / 100.0, n / 100.0 * 0.3);
  }
}

TEST(ZipfTest, SkewConcentratesOnLowRanks) {
  ZipfGenerator gen(1 << 24, 0.99, 42);
  const int n = 200000;
  int top100 = 0;
  for (int i = 0; i < n; ++i) {
    if (gen.Next() < 100) {
      ++top100;
    }
  }
  // With theta=0.99 over 2^24 keys, the top-100 ranks absorb roughly a
  // quarter of all requests; uniform would give ~0.0006%.
  EXPECT_GT(top100, n / 10);
}

TEST(ZipfTest, RankZeroIsModalAndFrequenciesDecay) {
  ZipfGenerator gen(1000, 0.99, 7);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 200000; ++i) {
    ++counts[gen.Next()];
  }
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[500]);
}

TEST(ZipfTest, StaysInRange) {
  ZipfGenerator gen(10, 0.99, 3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(gen.Next(), 10u);
  }
}

TEST(ZipfTest, RejectsZeroKeys) {
  EXPECT_THROW(ZipfGenerator(0, 0.99, 1), std::invalid_argument);
}

TEST(FitTest, LinearRecoversExactLine) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  std::vector<double> y;
  for (const double v : x) {
    y.push_back(3.5 + 2.0 * v);
  }
  const LinearFit fit = FitLinear(x, y);
  EXPECT_NEAR(fit.intercept, 3.5, 1e-9);
  EXPECT_NEAR(fit.slope, 2.0, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(FitTest, QuadraticRecoversExactParabola) {
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 10; ++i) {
    x.push_back(i);
    y.push_back(1977.0 - 95.18 * i + 1.158 * i * i);  // the paper's DPDK fit
  }
  const QuadraticFit fit = FitQuadratic(x, y);
  EXPECT_NEAR(fit.c0, 1977.0, 1e-6);
  EXPECT_NEAR(fit.c1, -95.18, 1e-6);
  EXPECT_NEAR(fit.c2, 1.158, 1e-6);
  EXPECT_NEAR(fit.r2, 1.0, 1e-9);
}

TEST(FitTest, R2DropsForNoisyData) {
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 20; ++i) {
    x.push_back(i);
    y.push_back(2.0 * i + ((i % 2 == 0) ? 5.0 : -5.0));
  }
  const LinearFit fit = FitLinear(x, y);
  EXPECT_LT(fit.r2, 1.0);
  EXPECT_GT(fit.r2, 0.5);
}

TEST(FitTest, RejectsDegenerateInput) {
  EXPECT_THROW((void)FitLinear(std::vector<double>{1}, std::vector<double>{1}),
               std::invalid_argument);
  EXPECT_THROW((void)FitLinear(std::vector<double>{1, 1}, std::vector<double>{1, 2}),
               std::invalid_argument);
  EXPECT_THROW((void)FitQuadratic(std::vector<double>{1, 2}, std::vector<double>{1, 2}),
               std::invalid_argument);
}

TEST(FitTest, PiecewiseKneeSplitsAtKnee) {
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 80; i += 5) {
    x.push_back(i);
    const double v = i < 37 ? 15.0 + 0.24 * i : 2000.0 - 95.0 * i + 1.2 * i * i;
    y.push_back(v);
  }
  const PiecewiseKneeFit fit = FitPiecewiseKnee(x, y, 37.0);
  EXPECT_NEAR(fit.below.r2, 1.0, 1e-9);
  EXPECT_NEAR(fit.above.r2, 1.0, 1e-9);
  EXPECT_NEAR(fit(10), 15.0 + 2.4, 1e-6);
  EXPECT_NEAR(fit(60), 2000.0 - 95.0 * 60 + 1.2 * 3600, 1e-4);
}

}  // namespace
}  // namespace cachedir
