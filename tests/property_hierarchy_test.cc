// Property tests of the full memory hierarchy, parameterized over the two
// machine models: latency-value soundness, causality of levels, flush
// semantics, DMA interactions, and conservation of traffic under long random
// operation streams.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "src/cache/hierarchy.h"
#include "src/hash/presets.h"
#include "src/sim/machine.h"
#include "src/sim/rng.h"

namespace cachedir {
namespace {

struct MachineCase {
  const char* name;
  MachineSpec (*spec)();
  std::shared_ptr<const SliceHash> (*hash)();
};

class HierarchyProperties : public ::testing::TestWithParam<MachineCase> {
 protected:
  MemoryHierarchy Make() { return MemoryHierarchy(GetParam().spec(), GetParam().hash(), 9); }
};

TEST_P(HierarchyProperties, EveryReadLatencyIsOneOfTheModelValues) {
  auto h = Make();
  const MachineSpec spec = GetParam().spec();
  // The set of legal read latencies: L1, L2, LLC (base + any slice penalty),
  // DRAM (+ LLC lookup + possible write-back busy terms).
  std::set<Cycles> llc_values;
  for (CoreId c = 0; c < spec.num_cores; ++c) {
    for (SliceId s = 0; s < spec.num_slices; ++s) {
      llc_values.insert(spec.latency.llc_base + spec.interconnect->SlicePenalty(c, s));
    }
  }
  const Cycles min_llc = *llc_values.begin();
  const Cycles max_llc = *llc_values.rbegin();

  Rng rng(17);
  for (int i = 0; i < 30000; ++i) {
    const CoreId core = static_cast<CoreId>(rng.UniformIndex(spec.num_cores));
    const PhysAddr addr = rng.UniformU64(0, (4u << 20)) & ~PhysAddr{7};
    const AccessResult r = h.Read(core, addr);
    switch (r.level) {
      case ServedBy::kL1:
        ASSERT_EQ(r.cycles, spec.latency.l1_hit);
        break;
      case ServedBy::kL2:
        ASSERT_EQ(r.cycles, spec.latency.l2_hit);
        break;
      case ServedBy::kLlc:
        ASSERT_GE(r.cycles, min_llc);
        // Write-back busy terms may ride on the fill path.
        ASSERT_LE(r.cycles, max_llc + 2 * (spec.latency.writeback_busy + max_llc));
        break;
      case ServedBy::kDram:
        ASSERT_GE(r.cycles, spec.latency.dram);
        break;
      case ServedBy::kRemoteCache:
        ASSERT_GE(r.cycles, min_llc + spec.latency.snoop_transfer);
        break;
    }
  }
}

TEST_P(HierarchyProperties, RereadAfterReadIsAlwaysL1) {
  auto h = Make();
  Rng rng(23);
  for (int i = 0; i < 2000; ++i) {
    const PhysAddr addr = rng.UniformU64(0, 64u << 20);
    (void)h.Read(3, addr);
    ASSERT_EQ(h.Read(3, addr).level, ServedBy::kL1);
  }
}

TEST_P(HierarchyProperties, FlushMakesNextReadDram) {
  auto h = Make();
  Rng rng(29);
  for (int i = 0; i < 500; ++i) {
    const PhysAddr addr = rng.UniformU64(0, 8u << 20);
    (void)h.Read(1, addr);
    (void)h.Write(2, addr);
    h.FlushLine(addr);
    ASSERT_EQ(h.Read(1, addr).level, ServedBy::kDram);
  }
}

TEST_P(HierarchyProperties, StatsBalance) {
  auto h = Make();
  h.ResetStats();
  Rng rng(31);
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  for (int i = 0; i < 20000; ++i) {
    const CoreId core = static_cast<CoreId>(rng.UniformIndex(4));
    const PhysAddr addr = rng.UniformU64(0, 2u << 20);
    if (rng.Bernoulli(0.3)) {
      (void)h.Write(core, addr);
      ++writes;
    } else {
      (void)h.Read(core, addr);
      ++reads;
    }
  }
  const HierarchyStats& s = h.stats();
  EXPECT_EQ(s.l1_hits + s.l1_misses, reads + writes);
  EXPECT_EQ(s.l2_hits + s.l2_misses, s.l1_misses);
  // An L2 miss is served by the LLC, DRAM, or a remote core's cache.
  EXPECT_EQ(s.llc_hits + s.llc_misses + s.remote_forwards, s.l2_misses);
}

TEST_P(HierarchyProperties, DmaWriteAlwaysLandsInLlc) {
  auto h = Make();
  Rng rng(37);
  for (int i = 0; i < 1000; ++i) {
    const PhysAddr addr = LineBase(rng.UniformU64(0, 1u << 30));
    (void)h.DmaWriteLine(addr);
    ASSERT_TRUE(h.llc().Contains(addr));
    // And the CPU must see the DMA'd version, not a stale private copy.
    ASSERT_NE(h.Read(0, addr).level, ServedBy::kL1);
  }
}

TEST_P(HierarchyProperties, DdioChurnStaysInsideItsWayPartition) {
  auto h = Make();
  const MachineSpec spec = GetParam().spec();
  if (spec.inclusion != LlcInclusionPolicy::kInclusive) {
    GTEST_SKIP() << "victim-mode fill timing covered elsewhere";
  }
  // Pre-occupy the DDIO ways of every set with DMA traffic, so subsequent
  // demand fills allocate outside the DDIO partition — the steady state of
  // a busy server. 16 MB covers every (set, slice, ddio-way) slot w.h.p.
  for (PhysAddr a = 2u << 30; a < (2u << 30) + (16u << 20); a += kCacheLineSize) {
    (void)h.DmaWriteLine(a);
  }
  // Pin a core working set: these fills land in non-DDIO ways now.
  std::vector<PhysAddr> pinned;
  for (PhysAddr a = 0; pinned.size() < 256; a += kCacheLineSize) {
    (void)h.Read(0, a);
    pinned.push_back(a);
  }
  // Stream heavy DMA churn: the pinned lines must ALL survive, because DDIO
  // may only evict within its own 2-way partition.
  for (PhysAddr a = 1u << 30; a < (1u << 30) + (64u << 20); a += kCacheLineSize) {
    (void)h.DmaWriteLine(a);
  }
  for (const PhysAddr a : pinned) {
    ASSERT_TRUE(h.llc().Contains(a)) << "DDIO evicted a non-DDIO-way line " << a;
  }
}

TEST_P(HierarchyProperties, DeterministicGivenSeed) {
  auto run = [this] {
    auto h = Make();
    const std::size_t cores = h.spec().num_cores;
    Rng rng(41);
    Cycles total = 0;
    for (int i = 0; i < 20000; ++i) {
      const CoreId core = static_cast<CoreId>(rng.UniformIndex(cores));
      const PhysAddr addr = rng.UniformU64(0, 8u << 20);
      total += rng.Bernoulli(0.5) ? h.Read(core, addr).cycles : h.Write(core, addr).cycles;
    }
    return total;
  };
  EXPECT_EQ(run(), run());
}

INSTANTIATE_TEST_SUITE_P(
    Machines, HierarchyProperties,
    ::testing::Values(MachineCase{"Haswell", &HaswellXeonE52667V3, &HaswellSliceHash},
                      MachineCase{"Skylake", &SkylakeXeonGold6134, &SkylakeSliceHash},
                      MachineCase{"SandyBridge", &SandyBridgeXeonQuad, &SandyBridgeSliceHash}),
    [](const auto& param_info) { return param_info.param.name; });

}  // namespace
}  // namespace cachedir
