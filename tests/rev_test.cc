// Tests for the reverse-engineering pipeline: polling must agree with the
// ground-truth hash, and the solver must reconstruct the XOR masks from
// counter observations alone.
#include <gtest/gtest.h>

#include "src/cache/hierarchy.h"
#include "src/hash/presets.h"
#include "src/rev/hash_solver.h"
#include "src/rev/polling.h"
#include "src/sim/machine.h"
#include "src/sim/rng.h"

namespace cachedir {
namespace {

TEST(SlicePollerTest, AgreesWithGroundTruthHash) {
  MemoryHierarchy h(HaswellXeonE52667V3(), HaswellSliceHash());
  SlicePoller poller(h);
  const auto hash = HaswellSliceHash();
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    const PhysAddr addr = LineBase(rng.UniformU64(0, 1ull << 32));
    EXPECT_EQ(poller.FindSlice(addr), hash->SliceFor(addr)) << "addr " << addr;
  }
}

TEST(SlicePollerTest, WorksUnderBackgroundNoise) {
  // Polling must still attribute correctly while other cores produce LLC
  // traffic (the counters of other slices advance too; the polled slice
  // advances more).
  MemoryHierarchy h(HaswellXeonE52667V3(), HaswellSliceHash());
  SlicePoller::Params params;
  params.repetitions = 64;
  SlicePoller poller(h, params);
  const auto hash = HaswellSliceHash();
  Rng rng(13);
  for (int i = 0; i < 10; ++i) {
    // Noise: core 5 streams over 1 MB.
    for (PhysAddr a = 0; a < (1 << 20); a += 4096) {
      (void)h.Read(5, 0x4000'0000 + a);
    }
    const PhysAddr addr = LineBase(rng.UniformU64(0, 1ull << 32));
    EXPECT_EQ(poller.FindSlice(addr), hash->SliceFor(addr));
  }
}

TEST(SlicePollerTest, WorksOnSkylake) {
  MemoryHierarchy h(SkylakeXeonGold6134(), SkylakeSliceHash());
  SlicePoller poller(h);
  const auto hash = SkylakeSliceHash();
  Rng rng(17);
  for (int i = 0; i < 50; ++i) {
    const PhysAddr addr = LineBase(rng.UniformU64(0, 1ull << 32));
    EXPECT_EQ(poller.FindSlice(addr), hash->SliceFor(addr));
  }
}

TEST(HashSolverTest, RecoversHaswellMasksExactly) {
  MemoryHierarchy h(HaswellXeonE52667V3(), HaswellSliceHash());
  SlicePoller poller(h);
  HashSolver::Params params;
  params.region_base = 0x1'8000'0000;  // 1 GB-aligned "hugepage"
  params.max_bit = 29;                 // flips stay inside the 1 GB region
  HashSolver solver(poller, 8, params);
  const auto recovered = solver.Solve();
  ASSERT_TRUE(recovered.linear);
  ASSERT_EQ(recovered.masks.size(), 3u);
  EXPECT_EQ(recovered.verification_accuracy, 1.0);

  // The recovered masks must equal the ground truth restricted to the
  // probed bit window.
  const auto truth_owner = HaswellSliceHash();
  const auto* truth = dynamic_cast<const XorSliceHash*>(truth_owner.get());
  ASSERT_NE(truth, nullptr);
  const std::uint64_t window = ((std::uint64_t{1} << 30) - 1) & ~std::uint64_t{63};
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(recovered.masks[i], truth->masks()[i] & window) << "mask " << i;
  }
}

TEST(HashSolverTest, RecoversSandyBridgeTwoBitHash) {
  // The method generalises across generations: the 4-slice (2 output bit)
  // Sandy Bridge-class hash is recovered the same way.
  MemoryHierarchy h(SandyBridgeXeonQuad(), SandyBridgeSliceHash());
  SlicePoller poller(h);
  HashSolver::Params params;
  params.max_bit = 29;
  HashSolver solver(poller, 4, params);
  const auto recovered = solver.Solve();
  ASSERT_TRUE(recovered.linear);
  ASSERT_EQ(recovered.masks.size(), 2u);
  EXPECT_EQ(recovered.verification_accuracy, 1.0);
  const auto truth_owner = SandyBridgeSliceHash();
  const auto* truth = dynamic_cast<const XorSliceHash*>(truth_owner.get());
  const std::uint64_t window = ((std::uint64_t{1} << 30) - 1) & ~std::uint64_t{63};
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(recovered.masks[i], truth->masks()[i] & window);
  }
}

TEST(HashSolverTest, DetectsNonLinearSkylakeHash) {
  MemoryHierarchy h(SkylakeXeonGold6134(), SkylakeSliceHash());
  SlicePoller poller(h);
  HashSolver solver(poller, 18);
  const auto recovered = solver.Solve();
  // 18 slices cannot be XOR-linear over slice ids; the solver reports that
  // and the caller falls back to polling-only (paper §6).
  EXPECT_FALSE(recovered.linear);
  EXPECT_TRUE(recovered.masks.empty());
}

TEST(FormatHashMatrixTest, MarksParticipatingBits) {
  const auto rows = FormatHashMatrix({MaskOfBits({6, 8})}, 6, 8);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], "o0 X.X");
}

}  // namespace
}  // namespace cachedir
