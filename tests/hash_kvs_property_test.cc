// Model-based test of HashKvs: a long random stream of SET/GET/ERASE ops is
// mirrored into a std::unordered_map reference; the store must agree on
// presence and exact value bytes at every step, across layouts and value
// sizes.
#include <gtest/gtest.h>

#include <cstring>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "src/hash/presets.h"
#include "src/kvs/hash_kvs.h"
#include "src/sim/machine.h"
#include "src/sim/rng.h"

namespace cachedir {
namespace {

using Params = std::tuple<bool, std::size_t>;  // slice_aware, value_bytes

class HashKvsModelCheck : public ::testing::TestWithParam<Params> {};

TEST_P(HashKvsModelCheck, AgreesWithUnorderedMapOnRandomOps) {
  const auto [slice_aware, value_bytes] = GetParam();
  MemoryHierarchy hierarchy(HaswellXeonE52667V3(), HaswellSliceHash(), 2);
  PhysicalMemory memory;
  HugepageAllocator backing;
  HashKvs::Config config;
  config.num_buckets = 1 << 10;
  config.max_values = 1 << 9;
  config.value_bytes = value_bytes;
  config.slice_aware = slice_aware;
  HashKvs kvs(hierarchy, memory, backing, config);

  std::unordered_map<std::uint64_t, std::vector<std::uint8_t>> model;
  Rng rng(static_cast<std::uint64_t>(value_bytes) * 31 + (slice_aware ? 7 : 0));
  const std::uint64_t key_space = 300;  // overlaps heavily: many overwrites
  std::size_t slots_consumed = 0;

  for (int step = 0; step < 8000; ++step) {
    const std::uint64_t key = rng.UniformU64(0, key_space - 1);
    switch (rng.UniformU64(0, 2)) {
      case 0: {  // SET
        std::vector<std::uint8_t> value(value_bytes);
        for (auto& b : value) {
          b = static_cast<std::uint8_t>(rng.UniformU64(0, 255));
        }
        const bool is_new = model.count(key) == 0;
        const auto r = kvs.Set(0, key, value);
        if (is_new && slots_consumed >= config.max_values) {
          // Value store exhausted (erases leak slots by design).
          ASSERT_FALSE(r.ok) << "step " << step;
        }
        if (r.ok) {
          if (is_new) {
            ++slots_consumed;
          }
          model[key] = std::move(value);
        }
        break;
      }
      case 1: {  // GET
        std::vector<std::uint8_t> out(value_bytes);
        const auto r = kvs.Get(0, key, out);
        ASSERT_EQ(r.ok, model.count(key) == 1) << "step " << step << " key " << key;
        if (r.ok) {
          ASSERT_EQ(out, model[key]) << "step " << step << " key " << key;
        }
        break;
      }
      case 2: {  // ERASE
        const auto r = kvs.Erase(0, key);
        ASSERT_EQ(r.ok, model.erase(key) == 1) << "step " << step << " key " << key;
        break;
      }
    }
    ASSERT_EQ(kvs.size(), model.size()) << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Layouts, HashKvsModelCheck,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Values(std::size_t{64},
                                                              std::size_t{100},
                                                              std::size_t{256})),
                         [](const auto& param_info) {
                           return std::string(std::get<0>(param_info.param) ? "Slice" : "Normal") +
                                  "V" + std::to_string(std::get<1>(param_info.param));
                         });

}  // namespace
}  // namespace cachedir
