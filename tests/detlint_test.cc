// Golden tests for tools/detlint: each bad-snippet fixture must trip exactly
// its rule, the escape-hatch fixture must be clean, and the real tree must
// scan clean — that last assertion is the tripwire every future PR lands on.
#include <array>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "gtest/gtest.h"

namespace cachedir {
namespace {

#ifndef DETLINT_BIN
#error "DETLINT_BIN must point at the detlint executable"
#endif
#ifndef DETLINT_FIXTURES
#error "DETLINT_FIXTURES must point at tools/detlint_fixtures"
#endif
#ifndef DETLINT_REPO_ROOT
#error "DETLINT_REPO_ROOT must point at the repository root"
#endif

struct RunResult {
  int exit_code = -1;
  std::string output;
};

// Runs detlint with `args`, capturing stdout (findings go to stdout).
RunResult RunDetlint(const std::string& args) {
  const std::string cmd = std::string(DETLINT_BIN) + " " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) {
    return {};
  }
  RunResult result;
  std::array<char, 4096> buf;
  std::size_t n = 0;
  while ((n = fread(buf.data(), 1, buf.size(), pipe)) > 0) {
    result.output.append(buf.data(), n);
  }
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

std::string Fixture(const std::string& name) {
  return std::string(DETLINT_FIXTURES) + "/" + name;
}

// How often a rule tag appears in the findings output.
std::size_t CountRule(const std::string& output, const std::string& rule) {
  const std::string tag = "[" + rule + "]";
  std::size_t count = 0;
  for (std::size_t pos = output.find(tag); pos != std::string::npos;
       pos = output.find(tag, pos + tag.size())) {
    ++count;
  }
  return count;
}

TEST(DetlintFixtures, WallClockSnippetTripsWallClockRule) {
  const RunResult r = RunDetlint(Fixture("bad_wallclock.cc"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_EQ(CountRule(r.output, "wall-clock"), 3u) << r.output;
  EXPECT_EQ(CountRule(r.output, "global-rng"), 0u) << r.output;
}

TEST(DetlintFixtures, GlobalRngSnippetTripsGlobalRngRule) {
  const RunResult r = RunDetlint(Fixture("bad_global_rng.cc"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  // srand, rand, random_device, two unseeded engines.
  EXPECT_EQ(CountRule(r.output, "global-rng"), 5u) << r.output;
  EXPECT_EQ(CountRule(r.output, "wall-clock"), 0u) << r.output;
}

TEST(DetlintFixtures, UnorderedIterSnippetTripsUnorderedIterRule) {
  const RunResult r = RunDetlint(Fixture("bad_unordered_iter.cc"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_EQ(CountRule(r.output, "unordered-iter"), 2u) << r.output;
}

TEST(DetlintFixtures, PhysmemBypassSnippetTripsPhysmemRuleInModelPath) {
  const RunResult r = RunDetlint(Fixture("nfv/bad_physmem_bypass.cc"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_EQ(CountRule(r.output, "physmem-bypass"), 2u) << r.output;
}

TEST(DetlintFixtures, EscapeHatchSuppressesEveryRule) {
  const RunResult r = RunDetlint(Fixture("allowed_escapes.cc"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_EQ(r.output, "") << r.output;
}

TEST(DetlintFixtures, WholeFixtureDirectoryAggregatesFindings) {
  const RunResult r = RunDetlint(std::string(DETLINT_FIXTURES));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_GE(CountRule(r.output, "wall-clock"), 3u) << r.output;
  EXPECT_GE(CountRule(r.output, "global-rng"), 5u) << r.output;
  EXPECT_GE(CountRule(r.output, "unordered-iter"), 2u) << r.output;
  EXPECT_GE(CountRule(r.output, "physmem-bypass"), 2u) << r.output;
}

TEST(DetlintTree, RepositoryScansClean) {
  const RunResult r = RunDetlint("--root " + std::string(DETLINT_REPO_ROOT));
  EXPECT_EQ(r.exit_code, 0) << "determinism lint findings in the tree:\n" << r.output;
}

TEST(DetlintCli, ListRulesNamesAllFour) {
  const RunResult r = RunDetlint("--list-rules");
  EXPECT_EQ(r.exit_code, 0);
  for (const char* rule : {"wall-clock", "global-rng", "physmem-bypass", "unordered-iter"}) {
    EXPECT_NE(r.output.find(rule), std::string::npos) << r.output;
  }
}

TEST(DetlintCli, BadUsageExitsTwo) {
  EXPECT_EQ(RunDetlint("").exit_code, 2);
  EXPECT_EQ(RunDetlint("/nonexistent/path/nowhere.cc").exit_code, 2);
}

}  // namespace
}  // namespace cachedir
