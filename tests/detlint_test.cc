// Golden tests for tools/detlint v2: every rule must fire on its positive
// fixture, stay silent on its negative, and honor the allow escape hatch;
// strict mode must enforce annotation hygiene; SARIF/baseline/self-time
// plumbing must work; and the real tree must scan clean under --strict —
// that last assertion is the tripwire every future PR lands on.
#include <array>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "gtest/gtest.h"

namespace cachedir {
namespace {

#ifndef DETLINT_BIN
#error "DETLINT_BIN must point at the detlint executable"
#endif
#ifndef DETLINT_FIXTURES
#error "DETLINT_FIXTURES must point at tools/detlint_fixtures"
#endif
#ifndef DETLINT_REPO_ROOT
#error "DETLINT_REPO_ROOT must point at the repository root"
#endif

struct RunResult {
  int exit_code = -1;
  std::string output;
};

// Runs detlint with `args`, capturing stdout+stderr (findings go to stdout).
RunResult RunDetlint(const std::string& args) {
  const std::string cmd = std::string(DETLINT_BIN) + " " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) {
    return {};
  }
  RunResult result;
  std::array<char, 4096> buf;
  std::size_t n = 0;
  while ((n = fread(buf.data(), 1, buf.size(), pipe)) > 0) {
    result.output.append(buf.data(), n);
  }
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

std::string Fixture(const std::string& name) {
  return std::string(DETLINT_FIXTURES) + "/" + name;
}

// How often a rule tag appears in the findings output.
std::size_t CountRule(const std::string& output, const std::string& rule) {
  const std::string tag = "[" + rule + "]";
  std::size_t count = 0;
  for (std::size_t pos = output.find(tag); pos != std::string::npos;
       pos = output.find(tag, pos + tag.size())) {
    ++count;
  }
  return count;
}

struct RuleCase {
  const char* dir;   // fixture directory under detlint_fixtures/
  const char* rule;  // rule id the positive must fire
  std::size_t positive_count;
};

const RuleCase kRuleCases[] = {
    {"wall_clock", "wall-clock", 4},
    {"global_rng", "global-rng", 7},
    {"unordered_iter", "unordered-iter", 5},
    {"physmem_bypass/nfv", "physmem-bypass", 3},
    {"physmem_bypass/epoch_engine", "physmem-bypass", 3},
    {"uncosted_access/nfv", "uncosted-access", 2},
    {"uncosted_access/epoch_engine", "uncosted-access", 2},
    {"pointer_ordering", "pointer-ordering", 3},
    {"float_merge_order", "float-merge-order", 2},
    {"unseeded_stochastic", "unseeded-stochastic", 3},
    {"nondet_env", "nondet-env", 4},
};

TEST(DetlintFixtures, EveryRuleFiresOnItsPositiveFixture) {
  for (const RuleCase& c : kRuleCases) {
    const RunResult r = RunDetlint(Fixture(std::string(c.dir) + "/positive.cc"));
    EXPECT_EQ(r.exit_code, 1) << c.dir << ":\n" << r.output;
    EXPECT_EQ(CountRule(r.output, c.rule), c.positive_count) << c.dir << ":\n" << r.output;
    // The positive must trip only its own rule, so counts stay meaningful.
    for (const RuleCase& other : kRuleCases) {
      if (other.rule != std::string(c.rule)) {
        EXPECT_EQ(CountRule(r.output, other.rule), 0u) << c.dir << ":\n" << r.output;
      }
    }
  }
}

TEST(DetlintFixtures, EveryRuleStaysSilentOnItsNegativeFixture) {
  for (const RuleCase& c : kRuleCases) {
    const RunResult r = RunDetlint(Fixture(std::string(c.dir) + "/negative.cc"));
    EXPECT_EQ(r.exit_code, 0) << c.dir << ":\n" << r.output;
    EXPECT_EQ(r.output, "") << c.dir << ":\n" << r.output;
  }
}

TEST(DetlintFixtures, EveryRuleHonorsTheAllowEscapeHatch) {
  for (const RuleCase& c : kRuleCases) {
    const RunResult r = RunDetlint(Fixture(std::string(c.dir) + "/allowed.cc"));
    EXPECT_EQ(r.exit_code, 0) << c.dir << ":\n" << r.output;
    // The annotations carry rationale and suppress real findings, so they
    // are also hygienic under --strict.
    const RunResult strict = RunDetlint("--strict " + Fixture(std::string(c.dir) + "/allowed.cc"));
    EXPECT_EQ(strict.exit_code, 0) << c.dir << ":\n" << strict.output;
  }
}

TEST(DetlintFixtures, MemberContainerTypedInHeaderIsFlaggedAcrossFiles) {
  const RunResult r = RunDetlint(Fixture("unordered_iter/cross_header"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_EQ(CountRule(r.output, "unordered-iter"), 1u) << r.output;
  EXPECT_NE(r.output.find("positive.cc"), std::string::npos) << r.output;
}

TEST(DetlintFixtures, AllowTagInsideStringLiteralSuppressesNothing) {
  const std::string path = ::testing::TempDir() + "detlint_string_allow.cc";
  {
    std::ofstream out(path);
    out << "#include <chrono>\n"
        << "const char* kTag = \"detlint: allow(wall-clock)\";\n"
        << "auto Nope() { return std::chrono::steady_clock::now(); }\n";
  }
  const RunResult r = RunDetlint(path);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_EQ(CountRule(r.output, "wall-clock"), 1u) << r.output;
  std::remove(path.c_str());
}

TEST(DetlintStrict, BareAllowIsCleanNormallyButFlaggedStrict) {
  const std::string f = Fixture("strict/missing_why.cc");
  EXPECT_EQ(RunDetlint(f).exit_code, 0);
  const RunResult strict = RunDetlint("--strict " + f);
  EXPECT_EQ(strict.exit_code, 1) << strict.output;
  EXPECT_EQ(CountRule(strict.output, "allow-missing-why"), 1u) << strict.output;
}

TEST(DetlintStrict, UnknownRuleNameIsFlaggedStrict) {
  const std::string f = Fixture("strict/unknown_rule.cc");
  EXPECT_EQ(RunDetlint(f).exit_code, 0);
  const RunResult strict = RunDetlint("--strict " + f);
  EXPECT_EQ(strict.exit_code, 1) << strict.output;
  EXPECT_EQ(CountRule(strict.output, "allow-unknown-rule"), 1u) << strict.output;
}

TEST(DetlintStrict, StaleAllowIsFlaggedStrict) {
  const std::string f = Fixture("strict/unused_allow.cc");
  EXPECT_EQ(RunDetlint(f).exit_code, 0);
  const RunResult strict = RunDetlint("--strict " + f);
  EXPECT_EQ(strict.exit_code, 1) << strict.output;
  EXPECT_EQ(CountRule(strict.output, "allow-unused"), 1u) << strict.output;
}

TEST(DetlintSarif, FindingsAreMirroredIntoTheSarifFile) {
  const std::string sarif = ::testing::TempDir() + "detlint_out.sarif";
  const RunResult r =
      RunDetlint("--sarif=" + sarif + " " + Fixture("wall_clock/positive.cc"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  std::ifstream in(sarif);
  ASSERT_TRUE(in) << "SARIF file not written";
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();
  EXPECT_NE(json.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(json.find("\"ruleId\": \"wall-clock\""), std::string::npos);
  EXPECT_NE(json.find("positive.cc"), std::string::npos);
  std::remove(sarif.c_str());
}

TEST(DetlintBaseline, SavedReportSuppressesKnownFindings) {
  const RunResult first = RunDetlint(Fixture("global_rng/positive.cc"));
  ASSERT_EQ(first.exit_code, 1) << first.output;
  const std::string baseline = ::testing::TempDir() + "detlint_baseline.txt";
  {
    std::ofstream out(baseline);
    out << first.output;
  }
  const RunResult second =
      RunDetlint("--baseline=" + baseline + " " + Fixture("global_rng/positive.cc"));
  EXPECT_EQ(second.exit_code, 0) << second.output;
  std::remove(baseline.c_str());
}

TEST(DetlintSelfTime, GenerousBudgetPassesAndReports) {
  const RunResult r = RunDetlint("--self-time-budget-ms=60000 --root " +
                                 std::string(DETLINT_REPO_ROOT));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("scanned"), std::string::npos) << r.output;
}

TEST(DetlintSelfTime, ZeroBudgetFailsWithExitThree) {
  const RunResult r =
      RunDetlint("--self-time-budget-ms=0 --root " + std::string(DETLINT_REPO_ROOT));
  EXPECT_EQ(r.exit_code, 3) << r.output;
}

TEST(DetlintTree, RepositoryScansCleanUnderStrict) {
  const RunResult r = RunDetlint("--strict --root " + std::string(DETLINT_REPO_ROOT));
  EXPECT_EQ(r.exit_code, 0) << "determinism lint findings in the tree:\n" << r.output;
}

TEST(DetlintTree, DetlintScansItsOwnSourcesCleanUnderStrict) {
  const std::string tools = std::string(DETLINT_REPO_ROOT) + "/tools/";
  const RunResult r = RunDetlint("--strict " + tools + "detlint.cc " + tools +
                                 "detlint_lexer.h " + tools + "detlint_lexer.cc " + tools +
                                 "detlint_rules.h " + tools + "detlint_rules.cc");
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST(DetlintCli, ListRulesNamesAllRulesAndMetaRules) {
  const RunResult r = RunDetlint("--list-rules");
  EXPECT_EQ(r.exit_code, 0);
  for (const char* rule :
       {"wall-clock", "global-rng", "unordered-iter", "physmem-bypass", "uncosted-access",
        "pointer-ordering", "float-merge-order", "unseeded-stochastic", "nondet-env",
        "allow-unknown-rule", "allow-missing-why", "allow-unused"}) {
    EXPECT_NE(r.output.find(rule), std::string::npos) << r.output;
  }
}

TEST(DetlintCli, BadUsageExitsTwo) {
  EXPECT_EQ(RunDetlint("").exit_code, 2);
  EXPECT_EQ(RunDetlint("/nonexistent/path/nowhere.cc").exit_code, 2);
  EXPECT_EQ(RunDetlint("--no-such-flag --root .").exit_code, 2);
}

}  // namespace
}  // namespace cachedir
