// Zero-allocation guarantee for the simulator's steady-state hot paths.
//
// The SoA tag store (docs/architecture.md §10) promises that accesses,
// DDIO fills and inclusive back-invalidation chains never touch the heap
// once the hierarchy has warmed up: tags/valid/dirty/replacement metadata
// live in arrays sized at construction, evictions travel by value, and the
// line-state directory only grows until its shards reach the (bounded)
// peak resident-line count. This test enforces the claim with a counting
// global operator new: after a warm-up that reaches steady state, an
// eviction storm — DMA ring wrapping far beyond the DDIO ways, demand
// misses evicting through L1/L2/LLC, flushes, shared-counter upgrades —
// must perform exactly zero heap allocations.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <span>

#include "src/cache/hierarchy.h"
#include "src/hash/presets.h"
#include "src/mem/hugepage.h"
#include "src/mem/physical_memory.h"
#include "src/netio/cache_director.h"
#include "src/netio/mempool.h"
#include "src/netio/nic.h"
#include "src/nfv/chain.h"
#include "src/nfv/elements.h"
#include "src/nfv/runtime.h"
#include "src/sim/epoch_engine.h"
#include "src/sim/machine.h"
#include "src/sim/rng.h"
#include "src/slice/placement.h"
#include "src/trace/latency_recorder.h"
#include "src/trace/traffic_gen.h"

namespace {

// Counts every global operator new since process start. Relaxed is enough:
// the test is single-threaded; the atomic only future-proofs against gtest
// internals.
std::atomic<std::uint64_t> g_allocation_count{0};

}  // namespace

// Counting forwarders for the replaceable global allocation functions. They
// must live at global scope; all forms funnel through malloc/free so ASan
// and TSan still track the memory.
//
// GCC flags free() inside a replaced operator delete as a mismatched pair
// because it cannot see that the matching operator new above is
// malloc-backed; the pairing is correct by construction here.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t size) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) {
    return p;
  }
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, std::align_val_t align) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  const std::size_t alignment = static_cast<std::size_t>(align);
  const std::size_t rounded = (size + alignment - 1) / alignment * alignment;
  if (void* p = std::aligned_alloc(alignment, rounded == 0 ? alignment : rounded)) {
    return p;
  }
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace cachedir {
namespace {

// Shrinks the LLC slices so eviction chains start after a few thousand
// lines instead of a few hundred thousand; geometry stays a power of two
// and keeps the machine's way count (and thus its DDIO/CAT mask shapes).
MachineSpec WithSmallLlc(MachineSpec spec) {
  spec.llc_slice.size_bytes = 128 * spec.llc_slice.ways * kCacheLineSize;  // 128 sets
  return spec;
}

// One lap of the storm: DMA the ring (each line punches out a dirty DDIO
// victim once the partition wrapped, back-invalidating any core copy), read
// the fresh line out of the DDIO ways, demand-read a line DMA'd half a ring
// ago — long since evicted, so it misses the LLC and runs the full
// fill-plus-victim chain — pepper shared-counter upgrades, and flush a line
// now and then.
void StormLap(MemoryHierarchy& hierarchy, Rng& rng, PhysAddr ring, std::size_t ring_lines,
              PhysAddr counters, std::size_t counter_lines) {
  const std::size_t cores = hierarchy.spec().num_cores;
  for (std::size_t i = 0; i < ring_lines; ++i) {
    const PhysAddr line = ring + i * kCacheLineSize;
    hierarchy.DmaWriteLine(line);
    const CoreId core = static_cast<CoreId>(i % cores);
    hierarchy.Read(core, line);
    const std::size_t stale = (i + ring_lines / 2) % ring_lines;
    hierarchy.Read(core, ring + stale * kCacheLineSize);
    if ((i & 7u) == 7u) {
      hierarchy.Write(core, counters + rng.UniformIndex(counter_lines) * kCacheLineSize);
    }
    if ((i & 63u) == 63u) {
      hierarchy.FlushLine(line);
    }
  }
}

class HotPathAllocationProbe : public ::testing::TestWithParam<MachineSpec (*)()> {};

TEST_P(HotPathAllocationProbe, SteadyStateEvictionStormPerformsZeroAllocations) {
  MachineSpec spec = WithSmallLlc(GetParam()());
  const auto hash = spec.inclusion == LlcInclusionPolicy::kInclusive ? HaswellSliceHash()
                                                                     : SkylakeSliceHash();
  MemoryHierarchy hierarchy(spec, hash, /*seed=*/7);

  // Ring sized at ~4x the shrunken LLC: every DMA line and most demand
  // fills displace a victim.
  const std::size_t llc_lines =
      spec.num_slices * spec.llc_slice.num_sets() * spec.llc_slice.ways;
  const std::size_t ring_lines = llc_lines * 4;
  const PhysAddr ring = 1u << 30;
  const PhysAddr counters = 1u << 28;
  constexpr std::size_t kCounterLines = 64;

  Rng rng(21);
  // Two laps of warm-up: caches and DDIO ways reach occupancy, the line
  // directory reaches its peak entry count and shard capacities.
  StormLap(hierarchy, rng, ring, ring_lines, counters, kCounterLines);
  StormLap(hierarchy, rng, ring, ring_lines, counters, kCounterLines);

  const std::uint64_t before = g_allocation_count.load(std::memory_order_relaxed);
  StormLap(hierarchy, rng, ring, ring_lines, counters, kCounterLines);
  StormLap(hierarchy, rng, ring, ring_lines, counters, kCounterLines);
  const std::uint64_t after = g_allocation_count.load(std::memory_order_relaxed);

  EXPECT_EQ(after - before, 0u) << "steady-state access/eviction paths must not allocate";
  // Sanity: the storm actually stormed. The stale-read stream misses the
  // LLC far more often than the LLC holds lines (every miss runs the demand
  // fill-plus-victim chain), and every DMA line wrapped the DDIO ways.
  EXPECT_GT(hierarchy.stats().llc_misses, llc_lines * 4);
  EXPECT_EQ(hierarchy.stats().dma_line_writes, ring_lines * 4);
  EXPECT_GT(hierarchy.stats().dirty_writebacks, llc_lines * 4);
}

// Same storm, driven through the batched fast paths: contiguous
// DmaWriteRange packets, ReadRange over the payload, gather batches with
// caller-provided per-line storage. The batch accumulators live on the
// stack and per-line results in caller storage, so the range paths must be
// exactly as allocation-free as the scalar ones.
void BatchStormLap(MemoryHierarchy& hierarchy, Rng& rng, PhysAddr ring,
                   std::size_t ring_lines, PhysAddr counters, std::size_t counter_lines) {
  const std::size_t cores = hierarchy.spec().num_cores;
  constexpr std::size_t kPacketBytes = 1536;
  constexpr std::size_t kPacketLines = (kPacketBytes + kCacheLineSize - 1) / kCacheLineSize;
  std::array<AccessResult, kPacketLines> per_line{};
  std::array<PhysAddr, 8> gather{};
  const std::size_t packets = ring_lines / kPacketLines;
  for (std::size_t p = 0; p < packets; ++p) {
    const PhysAddr packet = ring + p * kPacketLines * kCacheLineSize;
    hierarchy.DmaWriteRange(packet, kPacketBytes);
    const CoreId core = static_cast<CoreId>(p % cores);
    AccessBatch read_batch;
    read_batch.addr = packet;
    read_batch.bytes = kPacketBytes;
    read_batch.per_line = per_line;
    hierarchy.ReadRange(core, read_batch);
    // A packet DMA'd half a ring ago is long evicted from the DDIO ways, so
    // this range misses the LLC and runs the demand fill-plus-victim chain.
    const std::size_t stale = (p + packets / 2) % packets;
    hierarchy.ReadRange(core, ring + stale * kPacketLines * kCacheLineSize, kPacketBytes);
    for (PhysAddr& g : gather) {
      g = counters + rng.UniformIndex(counter_lines) * kCacheLineSize;
    }
    AccessBatch gather_batch;
    gather_batch.gather = std::span<const PhysAddr>(gather);
    hierarchy.WriteRange(core, gather_batch);
    hierarchy.DmaReadRange(packet, kPacketBytes);
  }
}

TEST_P(HotPathAllocationProbe, SteadyStateBatchedStormPerformsZeroAllocations) {
  MachineSpec spec = WithSmallLlc(GetParam()());
  const auto hash = spec.inclusion == LlcInclusionPolicy::kInclusive ? HaswellSliceHash()
                                                                     : SkylakeSliceHash();
  MemoryHierarchy hierarchy(spec, hash, /*seed=*/7);

  const std::size_t llc_lines =
      spec.num_slices * spec.llc_slice.num_sets() * spec.llc_slice.ways;
  const std::size_t ring_lines = llc_lines * 4;
  const PhysAddr ring = 1u << 30;
  const PhysAddr counters = 1u << 28;
  constexpr std::size_t kCounterLines = 64;

  Rng rng(22);
  BatchStormLap(hierarchy, rng, ring, ring_lines, counters, kCounterLines);
  BatchStormLap(hierarchy, rng, ring, ring_lines, counters, kCounterLines);

  const std::uint64_t before = g_allocation_count.load(std::memory_order_relaxed);
  BatchStormLap(hierarchy, rng, ring, ring_lines, counters, kCounterLines);
  BatchStormLap(hierarchy, rng, ring, ring_lines, counters, kCounterLines);
  const std::uint64_t after = g_allocation_count.load(std::memory_order_relaxed);

  EXPECT_EQ(after - before, 0u) << "batched access paths must not allocate";
  EXPECT_GT(hierarchy.stats().llc_misses, llc_lines);
  EXPECT_GT(hierarchy.stats().dma_line_writes, ring_lines * 2);
  EXPECT_GT(hierarchy.stats().dirty_writebacks, llc_lines);
}

// Specialized-kernel probe (docs/architecture.md §13): the storms above run
// whatever kernel_mode selects by default; this one pins the claim to the
// fused HierarchyKernel path specifically — asserts a specialized kernel is
// actually engaged (unless the tree was built CACHEDIR_GENERIC_ONLY, where
// the generic path carries the same guarantee) and that batched eviction
// storms through it stay allocation-free on BOTH inclusion modes of the
// same machine, not just each preset's native one.
TEST(SpecializedKernelAllocationProbe, BatchedEvictionStormBothInclusionModes) {
  for (const LlcInclusionPolicy inclusion :
       {LlcInclusionPolicy::kInclusive, LlcInclusionPolicy::kVictim}) {
    MachineSpec spec = WithSmallLlc(HaswellXeonE52667V3());
    spec.inclusion = inclusion;
    MemoryHierarchy hierarchy(spec, HaswellSliceHash(), /*seed=*/7);
#ifndef CACHEDIR_GENERIC_ONLY
    ASSERT_TRUE(hierarchy.uses_specialized_kernel())
        << "Haswell XOR hash + LRU is inside the kernel matrix for both inclusion modes";
#endif

    const std::size_t llc_lines =
        spec.num_slices * spec.llc_slice.num_sets() * spec.llc_slice.ways;
    const std::size_t ring_lines = llc_lines * 4;
    const PhysAddr ring = 1u << 30;
    const PhysAddr counters = 1u << 28;
    constexpr std::size_t kCounterLines = 64;

    Rng rng(23);
    BatchStormLap(hierarchy, rng, ring, ring_lines, counters, kCounterLines);
    BatchStormLap(hierarchy, rng, ring, ring_lines, counters, kCounterLines);

    const std::uint64_t before = g_allocation_count.load(std::memory_order_relaxed);
    BatchStormLap(hierarchy, rng, ring, ring_lines, counters, kCounterLines);
    const std::uint64_t after = g_allocation_count.load(std::memory_order_relaxed);

    EXPECT_EQ(after - before, 0u)
        << "fused kernel batch paths must not allocate (" << hierarchy.kernel_name() << ")";
    EXPECT_GT(hierarchy.stats().llc_misses, llc_lines);
    EXPECT_GT(hierarchy.stats().dma_line_writes, ring_lines * 2);
  }
}

// Epoch-engine steady state (docs/architecture.md §14): once the capture
// arena, the per-(worker, slice) micro-op queues, the journals and the
// directory-record scratch have seen their peak window, settling further
// speculative windows must not allocate — capture appends into recycled
// arenas, micro-op queues are window-tagged instead of cleared, journal
// pre-images append into kept-capacity vectors, and the merge tiers reuse
// persistent cursor/output storage. Fixed-size windows so arena peaks are
// reached during warm-up (the adaptive controller's doublings are
// init-phase growth by design, not steady-state work).
TEST(EpochEngineAllocationProbe, SteadyStateSpeculativeWindowsPerformZeroAllocations) {
  MachineSpec spec = WithSmallLlc(HaswellXeonE52667V3());
  MemoryHierarchy hierarchy(spec, HaswellSliceHash(), /*seed=*/7);
  EpochEngineOptions options;
  options.num_threads = 1;
  options.window_line_ops = 2048;
  options.adaptive_window = false;
  EpochEngine engine(hierarchy, options);

  const std::size_t llc_lines =
      spec.num_slices * spec.llc_slice.num_sets() * spec.llc_slice.ways;
  const std::size_t ring_lines = llc_lines * 4;
  const PhysAddr ring = 1u << 30;
  const PhysAddr counters = 1u << 28;
  constexpr std::size_t kCounterLines = 64;

  Rng rng(24);
  // Warm-up: two laps of the same eviction storm the serial probes run, now
  // captured and settled in 2048-op windows. This reaches every peak —
  // caches, directory shards, capture arena, queues, journals — and ends on
  // a window boundary so the measured block starts clean.
  StormLap(hierarchy, rng, ring, ring_lines, counters, kCounterLines);
  StormLap(hierarchy, rng, ring, ring_lines, counters, kCounterLines);
  engine.Flush();

  const std::uint64_t windows_before = engine.engine_stats().windows;
  const std::uint64_t before = g_allocation_count.load(std::memory_order_relaxed);
  StormLap(hierarchy, rng, ring, ring_lines, counters, kCounterLines);
  StormLap(hierarchy, rng, ring, ring_lines, counters, kCounterLines);
  engine.Flush();
  const std::uint64_t after = g_allocation_count.load(std::memory_order_relaxed);

  EXPECT_EQ(after - before, 0u) << "steady-state speculative windows must not allocate";
  // Non-vacuity: the measured block settled many windows through the
  // speculative phases, and the storm really stormed.
  const EpochEngineStats& es = engine.engine_stats();
  EXPECT_GT(es.windows, windows_before + 10);
  EXPECT_EQ(es.speculative_windows, es.windows);
  EXPECT_GT(hierarchy.stats().llc_misses, llc_lines * 4);
  EXPECT_EQ(hierarchy.stats().dma_line_writes, ring_lines * 4);
}

// The no-contention fast-commit path, isolated: windows made purely of L1
// read hits commit without the phase-2 replay pass, and in steady state
// that must also mean without a single heap allocation.
TEST(EpochEngineAllocationProbe, SteadyStateFastCommitWindowsPerformZeroAllocations) {
  MachineSpec spec = WithSmallLlc(HaswellXeonE52667V3());
  MemoryHierarchy hierarchy(spec, HaswellSliceHash(), /*seed=*/7);
  EpochEngineOptions options;
  options.num_threads = 1;
  options.window_line_ops = 1024;
  options.adaptive_window = false;
  EpochEngine engine(hierarchy, options);

  const PhysAddr base = 1u << 30;
  constexpr std::size_t kHotLines = 16;
  // Warm-up: fault the hot lines in (miss windows, full replay), then one
  // lap of pure hits so the fast path has seen its peak state too.
  for (std::size_t lap = 0; lap < 4; ++lap) {
    for (std::size_t i = 0; i < 4096; ++i) {
      hierarchy.Read(/*core=*/0, base + (i % kHotLines) * kCacheLineSize);
    }
  }
  engine.Flush();

  const std::uint64_t fast_before = engine.engine_stats().fast_commit_windows;
  const std::uint64_t before = g_allocation_count.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < 8192; ++i) {
    hierarchy.Read(/*core=*/0, base + (i % kHotLines) * kCacheLineSize);
  }
  engine.Flush();
  const std::uint64_t after = g_allocation_count.load(std::memory_order_relaxed);

  EXPECT_EQ(after - before, 0u) << "fast-commit windows must not allocate";
  const EpochEngineStats& es = engine.engine_stats();
  EXPECT_GE(es.fast_commit_windows, fast_before + 8) << "the measured block must actually "
                                                        "take the no-contention fast path";
}

// The whole NFV dataplane in steady state: once the runtime, pools, NIC
// rings, simulated pages and the (pre-reserved) latency recorder are warm,
// pushing another full wire block through Deliver / burst drain / chain /
// TransmitAt must not touch the heap. Burst formation uses stack arrays,
// RX rings and the TX completion queue are rings that only keep capacity,
// element tables live in simulated memory whose host pages were created
// during warm-up, and staged delivery records flush into reserved storage.
TEST_P(HotPathAllocationProbe, NfvSteadyStateBurstsPerformZeroAllocations) {
  MachineSpec spec = WithSmallLlc(GetParam()());
  const auto hash = spec.inclusion == LlcInclusionPolicy::kInclusive ? HaswellSliceHash()
                                                                     : SkylakeSliceHash();
  MemoryHierarchy hierarchy(spec, hash, /*seed=*/7);
  SlicePlacement placement(hierarchy);
  PhysicalMemory memory;
  HugepageAllocator backing;
  CacheDirector director(hash, placement, /*enabled=*/true);
  Mempool pool(backing, /*num_mbufs=*/2048, director);

  SimNic::Config nic_config;
  nic_config.num_queues = 4;
  nic_config.ring_size = 256;
  SimNic nic(nic_config, hierarchy, memory, pool, director);

  ServiceChain chain;
  chain.Append(std::make_unique<MacSwap>(hierarchy, memory));
  {
    IpRouter::Params router;
    router.num_routes = 512;
    router.seed = 7;
    chain.Append(std::make_unique<IpRouter>(hierarchy, memory, backing, router));
  }
  chain.Append(std::make_unique<Napt>(hierarchy, memory, backing, Napt::Params{}));
  NfvRuntime runtime(NfvRuntime::Config{}, hierarchy, nic, chain);

  // Pre-fault every mbuf buffer's simulated pages, as a real dataplane does
  // (DPDK touches its hugepages at init): PhysicalMemory creates host pages
  // on first write, and which pool depth a run reaches — hence which buffers
  // see their first header write — depends on traffic, so page creation must
  // be init-time work, not steady-state work.
  for (std::size_t i = 0; i < pool.capacity(); ++i) {
    const PhysAddr buf = pool.element(i).buf_pa;
    constexpr std::size_t kBufBytes = kMaxHeadroomBytes + kMbufDataBytes;
    const std::uint8_t zero = 0;
    for (PhysAddr a = buf; a < buf + kBufBytes; a += PhysicalMemory::kPageSize) {
      memory.Write(a, {&zero, 1});
    }
    memory.Write(buf + kBufBytes - 1, {&zero, 1});
  }

  TrafficConfig traffic;
  traffic.rate_gbps = 40.0;
  traffic.num_flows = 256;
  traffic.spacing = TrafficConfig::Spacing::kPoisson;
  traffic.seed = 31;
  TrafficGenerator gen(traffic);
  // Warm-up is twice as long as the measured block: the rings, the TX
  // completion queue, the pool's in-flight depth and every line-directory
  // shard's resident-line count must all see their peaks before measuring
  // (the shrunken LLC keeps those peaks early), every flow must hit the
  // NAPT table, and every simulated page the dataplane can touch must
  // exist. Recorder capacity is reserved for all phases up front. The whole
  // run is deterministic — fixed seeds, no host dependence — so a warm-up
  // that reaches steady state once reaches it on every platform.
  constexpr std::size_t kBlock = 8000;
  const std::vector<WirePacket> warm_a = gen.Generate(kBlock);
  const std::vector<WirePacket> warm_b = gen.Generate(kBlock);
  const std::vector<WirePacket> measured = gen.Generate(kBlock);
  LatencyRecorder recorder;
  recorder.Reserve(3 * kBlock);
  runtime.Run(warm_a, &recorder);
  runtime.Run(warm_b, &recorder);

  const std::uint64_t before = g_allocation_count.load(std::memory_order_relaxed);
  runtime.Run(measured, &recorder);
  const std::uint64_t after = g_allocation_count.load(std::memory_order_relaxed);

  EXPECT_EQ(after - before, 0u) << "warm NFV dataplane bursts must not allocate";
  // Non-vacuity: the measured block really ran the dataplane.
  EXPECT_EQ(runtime.packets_processed() + runtime.packets_dropped(), 3 * kBlock);
  EXPECT_GT(runtime.packets_dropped(), 0u);
  EXPECT_GT(hierarchy.stats().llc_misses, 0u);
}

INSTANTIATE_TEST_SUITE_P(Machines, HotPathAllocationProbe,
                         ::testing::Values(&HaswellXeonE52667V3, &SkylakeXeonGold6134),
                         [](const auto& param_info) {
                           return param_info.param == &HaswellXeonE52667V3
                                      ? std::string("HaswellInclusive")
                                      : std::string("SkylakeVictim");
                         });

}  // namespace
}  // namespace cachedir
