// Property tests of the Complex Addressing models, parameterized over both
// machine presets: line invariance, uniformity, determinism, and the
// structural properties each hash family guarantees.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/hash/presets.h"
#include "src/hash/slice_hash.h"
#include "src/sim/rng.h"

namespace cachedir {
namespace {

struct HashCase {
  const char* name;
  std::shared_ptr<const SliceHash> (*make)();
  std::size_t slices;
};

class SliceHashProperties : public ::testing::TestWithParam<HashCase> {};

TEST_P(SliceHashProperties, EveryByteOfALineSharesItsSlice) {
  const auto hash = GetParam().make();
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    const PhysAddr line = LineBase(rng.UniformU64(0, 1ull << 37));
    const SliceId s = hash->SliceFor(line);
    for (const PhysAddr off : {1ull, 7ull, 31ull, 63ull}) {
      ASSERT_EQ(hash->SliceFor(line + off), s);
    }
  }
}

TEST_P(SliceHashProperties, OutputAlwaysInRange) {
  const auto hash = GetParam().make();
  Rng rng(2);
  for (int i = 0; i < 5000; ++i) {
    ASSERT_LT(hash->SliceFor(rng.UniformU64(0, ~0ull >> 8)), GetParam().slices);
  }
}

TEST_P(SliceHashProperties, DeterministicAcrossInstances) {
  const auto a = GetParam().make();
  const auto b = GetParam().make();
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const PhysAddr addr = rng.UniformU64(0, 1ull << 37);
    ASSERT_EQ(a->SliceFor(addr), b->SliceFor(addr));
  }
}

TEST_P(SliceHashProperties, NearUniformOverContiguousRegions) {
  const auto hash = GetParam().make();
  // Any 16 MB-aligned region must spread close to uniformly: this is the
  // bandwidth property Complex Addressing exists for.
  for (const PhysAddr base : {0ull, 1ull << 30, 3ull << 32}) {
    std::vector<std::size_t> counts(GetParam().slices, 0);
    const std::size_t lines = (16u << 20) / kCacheLineSize;
    for (std::size_t i = 0; i < lines; ++i) {
      ++counts[hash->SliceFor(base + i * kCacheLineSize)];
    }
    const double expect = static_cast<double>(lines) / GetParam().slices;
    for (const std::size_t c : counts) {
      // Within 35% of ideal (the Skylake LUT is legitimately imbalanced
      // 3-vs-4 entries per slice, ~±15%).
      ASSERT_NEAR(static_cast<double>(c), expect, expect * 0.35);
    }
  }
}

TEST_P(SliceHashProperties, SmallWindowsReachManySlices) {
  // CacheDirector depends on finding useful slices within a 14-line
  // headroom window: every window must offer at least 4 distinct slices.
  const auto hash = GetParam().make();
  Rng rng(5);
  for (int i = 0; i < 300; ++i) {
    const PhysAddr base = LineBase(rng.UniformU64(0, 1ull << 36));
    std::set<SliceId> seen;
    for (std::uint32_t k = 0; k <= 13; ++k) {
      seen.insert(hash->SliceFor(base + k * kCacheLineSize));
    }
    ASSERT_GE(seen.size(), 4u) << "window at " << base;
  }
}

INSTANTIATE_TEST_SUITE_P(Machines, SliceHashProperties,
                         ::testing::Values(HashCase{"Haswell8", &HaswellSliceHash, 8},
                                           HashCase{"Skylake18", &SkylakeSliceHash, 18},
                                           HashCase{"SandyBridge4", &SandyBridgeSliceHash, 4}),
                         [](const auto& param_info) { return param_info.param.name; });

TEST(HaswellHashStructure, XorLinearityOverThousandsOfPairs) {
  const auto hash = HaswellSliceHash();
  Rng rng(11);
  for (int i = 0; i < 5000; ++i) {
    const PhysAddr a = LineBase(rng.UniformU64(0, 1ull << 37));
    const PhysAddr b = LineBase(rng.UniformU64(0, 1ull << 37));
    ASSERT_EQ(hash->SliceFor(a ^ b), hash->SliceFor(a) ^ hash->SliceFor(b));
  }
}

TEST(HaswellHashStructure, HaswellWindowCyclesThroughAllEightSlices) {
  // Within any aligned 8-line window the three low hash bits (PA 6,7,8)
  // enumerate all combinations: every slice is reachable — the property
  // that bounds CacheDirector's Haswell headroom at 7 lines.
  const auto hash = HaswellSliceHash();
  Rng rng(13);
  for (int i = 0; i < 500; ++i) {
    const PhysAddr base = LineBase(rng.UniformU64(0, 1ull << 36)) & ~PhysAddr{8 * 64 - 1};
    std::set<SliceId> seen;
    for (std::uint32_t k = 0; k < 8; ++k) {
      seen.insert(hash->SliceFor(base + k * kCacheLineSize));
    }
    ASSERT_EQ(seen.size(), 8u);
  }
}

TEST(SkylakeHashStructure, MatchesDocumentedLutBalance) {
  const auto owner = SkylakeSliceHash();
  const auto* hash = dynamic_cast<const XorLutSliceHash*>(owner.get());
  ASSERT_NE(hash, nullptr);
  std::vector<int> lut_counts(18, 0);
  for (const SliceId s : hash->lut()) {
    ++lut_counts[s];
  }
  int threes = 0;
  int fours = 0;
  for (const int c : lut_counts) {
    ASSERT_TRUE(c == 3 || c == 4);
    (c == 3 ? threes : fours) += 1;
  }
  EXPECT_EQ(threes, 8);
  EXPECT_EQ(fours, 10);
}

}  // namespace
}  // namespace cachedir
