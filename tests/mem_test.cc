#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "src/mem/hugepage.h"
#include "src/mem/physical_memory.h"

namespace cachedir {
namespace {

TEST(PhysicalMemoryTest, ReadsZeroesFromUntouchedMemory) {
  PhysicalMemory mem;
  EXPECT_EQ(mem.ReadU64(0x1234), 0u);
  EXPECT_EQ(mem.ReadU8(0xFFFF'FFFF), 0u);
  EXPECT_EQ(mem.resident_pages(), 0u);
}

TEST(PhysicalMemoryTest, RoundTripsScalars) {
  PhysicalMemory mem;
  mem.WriteU64(0x1000, 0xDEAD'BEEF'CAFE'F00Dull);
  EXPECT_EQ(mem.ReadU64(0x1000), 0xDEAD'BEEF'CAFE'F00Dull);
  mem.WriteU32(0x2000, 0x1234'5678u);
  EXPECT_EQ(mem.ReadU32(0x2000), 0x1234'5678u);
  mem.WriteU8(0x3000, 0xAB);
  EXPECT_EQ(mem.ReadU8(0x3000), 0xAB);
}

TEST(PhysicalMemoryTest, HandlesWritesSpanningPages) {
  PhysicalMemory mem;
  std::vector<std::uint8_t> data(10000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 7);
  }
  const PhysAddr addr = PhysicalMemory::kPageSize - 123;  // crosses 3 pages
  mem.Write(addr, data);
  std::vector<std::uint8_t> back(data.size());
  mem.Read(addr, back);
  EXPECT_EQ(back, data);
  EXPECT_EQ(mem.resident_pages(), 4u);
}

TEST(PhysicalMemoryTest, OverlappingWritesMerge) {
  PhysicalMemory mem;
  mem.WriteU64(0x100, 0x1111'1111'1111'1111ull);
  mem.WriteU32(0x104, 0x2222'2222u);
  EXPECT_EQ(mem.ReadU64(0x100), 0x2222'2222'1111'1111ull);
}

TEST(HugepageAllocatorTest, AllocationsAreAlignedAndSized) {
  HugepageAllocator alloc;
  const Mapping m = alloc.Allocate(100, PageSize::k2M);
  EXPECT_EQ(m.size, 2u * 1024 * 1024);
  EXPECT_EQ(m.pa % (2 * 1024 * 1024), 0u);
  EXPECT_EQ(m.va % (2 * 1024 * 1024), 0u);

  const Mapping g = alloc.Allocate(1, PageSize::k1G);
  EXPECT_EQ(g.size, 1024u * 1024 * 1024);
  EXPECT_EQ(g.pa % (1024 * 1024 * 1024), 0u);
}

TEST(HugepageAllocatorTest, MappingsDoNotOverlap) {
  HugepageAllocator alloc;
  const Mapping a = alloc.Allocate(4096, PageSize::k4K);
  const Mapping b = alloc.Allocate(4096, PageSize::k4K);
  EXPECT_GE(b.pa, a.pa + a.size);
  EXPECT_GE(b.va, a.va + a.size);
}

TEST(HugepageAllocatorTest, ThrowsWhenZoneExhausted) {
  HugepageAllocator::Params p;
  p.phys_base = 0x1'0000'0000;
  p.phys_limit = 0x1'6000'0000;  // 1.5 GB zone: room for exactly one 1 GB page
  HugepageAllocator alloc(p);
  (void)alloc.Allocate(1, PageSize::k1G);
  EXPECT_THROW((void)alloc.Allocate(1, PageSize::k1G), std::bad_alloc);
}

TEST(PagemapTest, TranslatesInsideMappings) {
  HugepageAllocator alloc;
  const Mapping m = alloc.Allocate(1 << 21, PageSize::k2M);
  EXPECT_EQ(alloc.pagemap().Translate(m.va), m.pa);
  EXPECT_EQ(alloc.pagemap().Translate(m.va + 12345), m.pa + 12345);
  EXPECT_EQ(alloc.pagemap().Translate(m.va + m.size - 1), m.pa + m.size - 1);
}

TEST(PagemapTest, RejectsUnmappedAddresses) {
  HugepageAllocator alloc;
  const Mapping m = alloc.Allocate(1 << 21, PageSize::k2M);
  PhysAddr out = 0;
  EXPECT_FALSE(alloc.pagemap().TryTranslate(m.va + m.size, &out));
  EXPECT_FALSE(alloc.pagemap().TryTranslate(m.va == 0 ? 1 : m.va - 1, &out));
  EXPECT_THROW((void)alloc.pagemap().Translate(m.va + m.size), std::out_of_range);
}

TEST(PagemapTest, TranslatesAcrossMultipleMappings) {
  HugepageAllocator alloc;
  const Mapping a = alloc.Allocate(1 << 21, PageSize::k2M);
  const Mapping b = alloc.Allocate(1 << 21, PageSize::k2M);
  EXPECT_EQ(alloc.pagemap().Translate(a.va + 64), a.pa + 64);
  EXPECT_EQ(alloc.pagemap().Translate(b.va + 64), b.pa + 64);
  EXPECT_EQ(alloc.pagemap().num_mappings(), 2u);
}

}  // namespace
}  // namespace cachedir
