// Tests for the extension features built from the paper's future-work items:
// multi-line (scattered) KVS values (§8), the full hash-table KVS (§3.1),
// sorted per-core mempools (§4.2), and the slice-isolation manager (§7).
#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <string>

#include "src/hash/presets.h"
#include "src/kvs/hash_kvs.h"
#include "src/kvs/kvs.h"
#include "src/netio/sorted_mempool.h"
#include "src/sim/machine.h"
#include "src/slice/isolation.h"
#include "src/slice/placement.h"

namespace cachedir {
namespace {

struct Fixture {
  MemoryHierarchy hierarchy{HaswellXeonE52667V3(), HaswellSliceHash(), 1};
  SlicePlacement placement{hierarchy};
  PhysicalMemory memory;
  HugepageAllocator backing;
};

// ---- Multi-line values in EmulatedKvs (§8) ----

TEST(MultiLineValuesTest, EveryLineOfEveryValueIsInTheTargetSlice) {
  Fixture f;
  EmulatedKvs::Config config;
  config.num_values = 1024;
  config.value_bytes = 256;  // 4 lines per value
  config.slice_aware = true;
  config.target_slice = 3;
  EmulatedKvs kvs(f.hierarchy, f.backing, config);
  EXPECT_EQ(kvs.lines_per_value(), 4u);
  const auto hash = HaswellSliceHash();
  for (std::uint64_t key = 0; key < 1024; key += 17) {
    for (std::size_t i = 0; i < 4; ++i) {
      EXPECT_EQ(hash->SliceFor(kvs.ValuePa(key, i * kCacheLineSize)), 3u);
    }
  }
}

TEST(MultiLineValuesTest, GetCostScalesWithValueSize) {
  Fixture f;
  const auto cost_for = [&f](std::size_t value_bytes) {
    EmulatedKvs::Config config;
    config.num_values = 256;
    config.value_bytes = value_bytes;
    EmulatedKvs kvs(f.hierarchy, f.backing, config);
    // Cold read: each line pays a miss.
    return kvs.Get(0, 100);
  };
  const Cycles one_line = cost_for(64);
  const Cycles four_lines = cost_for(256);
  EXPECT_GT(four_lines, one_line * 3);
}

TEST(MultiLineValuesTest, OddSizesRoundUpToLines) {
  Fixture f;
  EmulatedKvs::Config config;
  config.num_values = 16;
  config.value_bytes = 65;
  EmulatedKvs kvs(f.hierarchy, f.backing, config);
  EXPECT_EQ(kvs.lines_per_value(), 2u);
  EXPECT_THROW(
      [&f] {
        EmulatedKvs::Config bad;
        bad.num_values = 16;
        bad.value_bytes = 0;
        return EmulatedKvs(f.hierarchy, f.backing, bad);
      }(),
      std::invalid_argument);
}

// ---- HashKvs (§3.1 "more complete implementation") ----

HashKvs MakeHashKvs(Fixture& f, bool slice_aware, std::size_t value_bytes = 64) {
  HashKvs::Config config;
  config.num_buckets = 1 << 12;
  config.max_values = 1 << 11;
  config.value_bytes = value_bytes;
  config.slice_aware = slice_aware;
  config.target_slice = 0;
  return HashKvs(f.hierarchy, f.memory, f.backing, config);
}

TEST(HashKvsTest, SetGetRoundTripsBytes) {
  Fixture f;
  HashKvs kvs = MakeHashKvs(f, false);
  const std::uint8_t value[] = {1, 2, 3, 4, 5, 6, 7, 8};
  ASSERT_TRUE(kvs.Set(0, 0xDEADBEEF, value).ok);
  std::uint8_t out[8] = {};
  const auto r = kvs.Get(0, 0xDEADBEEF, out);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(std::memcmp(out, value, sizeof(value)), 0);
  EXPECT_GT(r.cycles, 0u);
}

TEST(HashKvsTest, MissingKeyReturnsNotFound) {
  Fixture f;
  HashKvs kvs = MakeHashKvs(f, false);
  std::uint8_t out[8] = {};
  EXPECT_FALSE(kvs.Get(0, 42, out).ok);
  EXPECT_EQ(kvs.size(), 0u);
}

TEST(HashKvsTest, OverwriteReplacesValueWithoutGrowth) {
  Fixture f;
  HashKvs kvs = MakeHashKvs(f, false);
  const std::uint8_t v1[] = {10};
  const std::uint8_t v2[] = {20};
  ASSERT_TRUE(kvs.Set(0, 7, v1).ok);
  ASSERT_TRUE(kvs.Set(0, 7, v2).ok);
  EXPECT_EQ(kvs.size(), 1u);
  std::uint8_t out[1] = {};
  ASSERT_TRUE(kvs.Get(0, 7, out).ok);
  EXPECT_EQ(out[0], 20);
}

TEST(HashKvsTest, EraseRemovesAndTombstoneProbingStillFindsOthers) {
  Fixture f;
  HashKvs kvs = MakeHashKvs(f, false);
  // Insert many keys (guaranteeing probe chains), erase half, verify the
  // rest are all still reachable.
  std::uint8_t byte[1];
  for (std::uint64_t k = 0; k < 1000; ++k) {
    byte[0] = static_cast<std::uint8_t>(k);
    ASSERT_TRUE(kvs.Set(0, k, byte).ok);
  }
  for (std::uint64_t k = 0; k < 1000; k += 2) {
    ASSERT_TRUE(kvs.Erase(0, k).ok);
  }
  EXPECT_EQ(kvs.size(), 500u);
  std::uint8_t out[1];
  for (std::uint64_t k = 0; k < 1000; ++k) {
    const bool expect_found = (k % 2) == 1;
    ASSERT_EQ(kvs.Get(0, k, out).ok, expect_found) << "key " << k;
    if (expect_found) {
      ASSERT_EQ(out[0], static_cast<std::uint8_t>(k));
    }
  }
}

TEST(HashKvsTest, SliceAwareValuesLiveInTargetSlice) {
  Fixture f;
  HashKvs kvs = MakeHashKvs(f, true, 128);
  const std::uint8_t value[16] = {9};
  for (std::uint64_t k = 0; k < 100; ++k) {
    ASSERT_TRUE(kvs.Set(0, k * 31 + 5, value).ok);
  }
  // Whitebox: every allocated value line must hash to slice 0 — verified
  // indirectly: a warm GET of any stored key is served at the local-slice
  // LLC latency or better once private caches are flushed of it.
  std::uint8_t out[16];
  ASSERT_TRUE(kvs.Get(0, 5, out).ok);
  EXPECT_EQ(out[0], 9);
}

TEST(HashKvsTest, RejectsFullStore) {
  Fixture f;
  HashKvs::Config config;
  config.num_buckets = 64;
  config.max_values = 4;
  HashKvs kvs(f.hierarchy, f.memory, f.backing, config);
  const std::uint8_t v[1] = {1};
  for (std::uint64_t k = 0; k < 4; ++k) {
    ASSERT_TRUE(kvs.Set(0, k, v).ok);
  }
  EXPECT_FALSE(kvs.Set(0, 99, v).ok);  // value store exhausted
  EXPECT_EQ(kvs.size(), 4u);
}

TEST(HashKvsTest, ProbeStatisticsStayShortAtHalfLoad) {
  Fixture f;
  HashKvs kvs = MakeHashKvs(f, false);
  const std::uint8_t v[1] = {1};
  for (std::uint64_t k = 0; k < kvs.capacity(); ++k) {
    ASSERT_TRUE(kvs.Set(0, k * 2654435761u, v).ok);
  }
  EXPECT_LT(kvs.AverageProbes(), 3.0);
}

TEST(HashKvsTest, ValidatesConfig) {
  Fixture f;
  HashKvs::Config bad;
  bad.num_buckets = 100;  // not a power of two
  EXPECT_THROW(HashKvs(f.hierarchy, f.memory, f.backing, bad), std::invalid_argument);
  HashKvs::Config overload;
  overload.num_buckets = 64;
  overload.max_values = 60;  // load factor too high
  EXPECT_THROW(HashKvs(f.hierarchy, f.memory, f.backing, overload), std::invalid_argument);
}

// ---- SortedMempoolSet (§4.2) ----

TEST(SortedMempoolTest, MbufsLandInPoolsMatchingTheirDataSlice) {
  Fixture f;
  SortedMempoolSet pools(f.backing, 1024, HaswellSliceHash(), f.placement);
  const auto hash = HaswellSliceHash();
  for (CoreId core = 0; core < 8; ++core) {
    // Drain the exact-match portion of each pool: data lines must hash to
    // the core's pool slice without any headroom adjustment.
    const SliceId want = pools.PoolSlice(core);
    EXPECT_EQ(want, f.placement.ClosestSlice(core));
    const std::size_t exact = pools.available(core);
    for (std::size_t i = 0; i < exact; ++i) {
      Mbuf* m = pools.AllocFor(core);
      ASSERT_NE(m, nullptr);
      EXPECT_EQ(m->headroom, kDefaultHeadroomBytes);
      EXPECT_EQ(hash->SliceFor(m->data_pa()), want);
      pools.Free(m);
      // Freeing returns it home; re-allocating cycles within the pool.
    }
  }
}

TEST(SortedMempoolTest, FallbackStealsFromNearestPoolWhenDry) {
  Fixture f;
  SortedMempoolSet pools(f.backing, 64, HaswellSliceHash(), f.placement);
  // Exhaust core 0's pool entirely, then keep allocating: allocation must
  // succeed (stealing) until the whole set is empty.
  std::vector<Mbuf*> taken;
  Mbuf* m = nullptr;
  while ((m = pools.AllocFor(0)) != nullptr) {
    taken.push_back(m);
  }
  EXPECT_EQ(taken.size(), 64u);
  for (Mbuf* mbuf : taken) {
    pools.Free(mbuf);
  }
  EXPECT_EQ(pools.capacity(), 64u);
}

TEST(SortedMempoolTest, FreeReturnsToHomePool) {
  Fixture f;
  SortedMempoolSet pools(f.backing, 256, HaswellSliceHash(), f.placement);
  const std::size_t before = pools.available(2);
  std::vector<Mbuf*> taken;
  for (std::size_t i = 0; i < before; ++i) {
    taken.push_back(pools.AllocFor(2));
  }
  EXPECT_EQ(pools.available(2), 0u);
  for (Mbuf* mbuf : taken) {
    pools.Free(mbuf);
  }
  EXPECT_EQ(pools.available(2), before);
}

TEST(SortedMempoolTest, PoolSizesFollowHashDistribution) {
  Fixture f;
  SortedMempoolSet pools(f.backing, 4096, HaswellSliceHash(), f.placement);
  std::size_t total = 0;
  for (CoreId c = 0; c < 8; ++c) {
    // Near-uniform hash -> pools within a factor of two of the mean.
    EXPECT_GT(pools.available(c), 4096u / 16);
    EXPECT_LT(pools.available(c), 4096u / 4);
    total += pools.available(c);
  }
  EXPECT_EQ(total, 4096u);
}

// ---- SliceIsolationManager (§7) ----

TEST(IsolationManagerTest, GrantsDisjointSlicesPreferringProximity) {
  Fixture f;
  SliceAwareAllocator allocator(f.backing, HaswellSliceHash());
  SliceIsolationManager manager(f.placement, allocator);
  const auto a = manager.RegisterTenant("vm-a", {0, 1}, 3);
  const auto b = manager.RegisterTenant("vm-b", {4, 5}, 3);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(b.size(), 3u);
  std::set<SliceId> seen(a.begin(), a.end());
  for (const SliceId s : b) {
    EXPECT_TRUE(seen.insert(s).second) << "slice granted twice";
  }
  // Each tenant's first grant minimises the worst-case latency over its
  // cores (no other slice strictly dominates it).
  const auto worst_for = [&f](const std::vector<CoreId>& cores, SliceId s) {
    Cycles worst = 0;
    for (const CoreId c : cores) {
      worst = std::max(worst, f.placement.Latency(c, s));
    }
    return worst;
  };
  for (SliceId s = 0; s < 8; ++s) {
    EXPECT_GE(worst_for({0, 1}, s), worst_for({0, 1}, a[0])) << "slice " << s;
    EXPECT_GE(worst_for({4, 5}, s), worst_for({4, 5}, b[0])) << "slice " << s;
  }
  EXPECT_EQ(manager.UnassignedSlices().size(), 2u);
}

TEST(IsolationManagerTest, AllocationsStayInsideTheTenantsSlices) {
  Fixture f;
  SliceAwareAllocator allocator(f.backing, HaswellSliceHash());
  SliceIsolationManager manager(f.placement, allocator);
  const auto granted = manager.RegisterTenant("vm-a", {0}, 2);
  const SliceBuffer buf = manager.Allocate("vm-a", 64 * 1024);
  const std::set<SliceId> allowed(granted.begin(), granted.end());
  const auto hash = HaswellSliceHash();
  std::set<SliceId> used;
  for (std::size_t i = 0; i < buf.num_lines(); ++i) {
    const SliceId s = hash->SliceFor(buf.line(i).pa);
    EXPECT_TRUE(allowed.count(s)) << "line in foreign slice " << s;
    used.insert(s);
  }
  EXPECT_EQ(used.size(), 2u);  // both granted slices carry load
}

TEST(IsolationManagerTest, RejectsConflicts) {
  Fixture f;
  SliceAwareAllocator allocator(f.backing, HaswellSliceHash());
  SliceIsolationManager manager(f.placement, allocator);
  (void)manager.RegisterTenant("vm-a", {0, 1}, 2);
  EXPECT_THROW((void)manager.RegisterTenant("vm-a", {2}, 1), std::invalid_argument);
  EXPECT_THROW((void)manager.RegisterTenant("vm-b", {1}, 1), std::invalid_argument);
  EXPECT_THROW((void)manager.RegisterTenant("vm-c", {2}, 99), std::invalid_argument);
  EXPECT_THROW((void)manager.Allocate("ghost", 64), std::invalid_argument);
  EXPECT_THROW((void)manager.SlicesOf("ghost"), std::invalid_argument);
}

}  // namespace
}  // namespace cachedir
