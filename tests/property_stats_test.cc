// Property tests of the statistics toolkit: percentile axioms over random
// sample sets, Zipf skew monotonicity across theta, and least-squares
// optimality/robustness sweeps.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/sim/rng.h"
#include "src/stats/fit.h"
#include "src/stats/summary.h"
#include "src/stats/zipf.h"

namespace cachedir {
namespace {

class PercentileProperties : public ::testing::TestWithParam<int> {};

TEST_P(PercentileProperties, AxiomsHoldOnRandomSamples) {
  Rng rng(GetParam());
  Samples s;
  const int n = 1 + static_cast<int>(rng.UniformU64(0, 500));
  for (int i = 0; i < n; ++i) {
    s.Add(rng.UniformDouble() * 1000 - 300);
  }
  // Monotonic in p; bounded by min/max; median between them.
  double prev = s.Percentile(0);
  ASSERT_DOUBLE_EQ(prev, s.Min());
  for (double p = 5; p <= 100; p += 5) {
    const double v = s.Percentile(p);
    ASSERT_GE(v, prev) << "p=" << p;
    prev = v;
  }
  ASSERT_DOUBLE_EQ(s.Percentile(100), s.Max());
  ASSERT_GE(s.Mean(), s.Min());
  ASSERT_LE(s.Mean(), s.Max());
  // CDF is a non-decreasing function reaching 1.
  double cdf_prev = 0;
  for (double x = -400; x <= 800; x += 100) {
    const double c = s.CdfAt(x);
    ASSERT_GE(c, cdf_prev);
    cdf_prev = c;
  }
  ASSERT_DOUBLE_EQ(s.CdfAt(s.Max()), 1.0);
  // CDF and percentile are inverses up to the interpolation granularity
  // (linear interpolation can land the percentile between order statistics,
  // one sample short of the nominal mass).
  for (double p : {10.0, 50.0, 90.0}) {
    ASSERT_GE(s.CdfAt(s.Percentile(p) + 1e-9), p / 100.0 - 1.0 / n - 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PercentileProperties, ::testing::Range(1, 9));

TEST(ZipfProperties, ConcentrationIncreasesWithTheta) {
  double prev_top_share = -1;
  for (const double theta : {0.0, 0.5, 0.9, 0.99}) {
    ZipfGenerator gen(100000, theta, 77);
    int top1000 = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
      top1000 += gen.Next() < 1000 ? 1 : 0;
    }
    const double share = static_cast<double>(top1000) / n;
    ASSERT_GT(share, prev_top_share) << "theta=" << theta;
    prev_top_share = share;
  }
}

TEST(ZipfProperties, MeanRankDecreasesWithTheta) {
  double prev_mean = 1e18;
  for (const double theta : {0.0, 0.6, 0.99}) {
    ZipfGenerator gen(1 << 20, theta, 5);
    double mean = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
      mean += static_cast<double>(gen.Next());
    }
    mean /= n;
    ASSERT_LT(mean, prev_mean) << "theta=" << theta;
    prev_mean = mean;
  }
}

TEST(ZipfProperties, HeadProbabilityMatchesTheory) {
  // P(rank 0) = 1 / (sum_k (k+1)^-theta); check within sampling error for a
  // small key space where the harmonic sum is computable directly.
  const double theta = 0.99;
  const std::uint64_t keys = 1000;
  double harmonic = 0;
  for (std::uint64_t k = 1; k <= keys; ++k) {
    harmonic += std::pow(static_cast<double>(k), -theta);
  }
  ZipfGenerator gen(keys, theta, 31);
  int zeros = 0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) {
    zeros += gen.Next() == 0 ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(zeros) / n, 1.0 / harmonic, 0.01);
}

class FitProperties : public ::testing::TestWithParam<int> {};

TEST_P(FitProperties, LinearFitIsOptimalAgainstPerturbations) {
  Rng rng(100 + GetParam());
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 30; ++i) {
    x.push_back(i);
    y.push_back(3.0 + 1.7 * i + (rng.UniformDouble() - 0.5) * 20);
  }
  const LinearFit fit = FitLinear(x, y);
  const auto sse = [&](double a, double b) {
    double acc = 0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double r = y[i] - (a + b * x[i]);
      acc += r * r;
    }
    return acc;
  };
  const double best = sse(fit.intercept, fit.slope);
  // No nearby parameter pair may beat the least-squares solution.
  for (const double da : {-0.5, 0.5}) {
    for (const double db : {-0.05, 0.05}) {
      ASSERT_GE(sse(fit.intercept + da, fit.slope + db), best);
    }
  }
  ASSERT_LE(fit.r2, 1.0);
}

TEST_P(FitProperties, QuadraticFitReducesResidualVsLinearOnCurvedData) {
  Rng rng(200 + GetParam());
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 30; ++i) {
    x.push_back(i);
    y.push_back(5.0 - 2.0 * i + 0.8 * i * i + (rng.UniformDouble() - 0.5) * 4);
  }
  const LinearFit linear = FitLinear(x, y);
  const QuadraticFit quad = FitQuadratic(x, y);
  ASSERT_GT(quad.r2, linear.r2);
  ASSERT_NEAR(quad.c2, 0.8, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FitProperties, ::testing::Range(1, 7));

}  // namespace
}  // namespace cachedir
