// Integration tests of the full memory hierarchy: latency ordering, NUCA
// effects, inclusive vs victim organisation, DDIO, and flushes.
#include <gtest/gtest.h>

#include <memory>

#include "src/cache/hierarchy.h"
#include "src/hash/presets.h"
#include "src/sim/machine.h"

namespace cachedir {
namespace {

MemoryHierarchy MakeHaswell() {
  return MemoryHierarchy(HaswellXeonE52667V3(), HaswellSliceHash(), /*seed=*/1);
}

MemoryHierarchy MakeSkylake() {
  return MemoryHierarchy(SkylakeXeonGold6134(), SkylakeSliceHash(), /*seed=*/1);
}

TEST(HierarchyTest, ColdReadComesFromDram) {
  auto h = MakeHaswell();
  const auto r = h.Read(0, 0x10000);
  EXPECT_EQ(r.level, ServedBy::kDram);
  EXPECT_GE(r.cycles, h.spec().latency.dram);
}

TEST(HierarchyTest, SecondReadHitsL1) {
  auto h = MakeHaswell();
  (void)h.Read(0, 0x10000);
  const auto r = h.Read(0, 0x10000);
  EXPECT_EQ(r.level, ServedBy::kL1);
  EXPECT_EQ(r.cycles, h.spec().latency.l1_hit);
}

TEST(HierarchyTest, LatenciesAreStrictlyOrderedByLevel) {
  auto h = MakeHaswell();
  const LatencyModel& lat = h.spec().latency;
  EXPECT_LT(lat.l1_hit, lat.l2_hit);
  EXPECT_LT(lat.l2_hit, lat.llc_base);
  EXPECT_LT(lat.llc_base, lat.dram);
}

TEST(HierarchyTest, OtherCoreReadHitsLlcNotPrivateCaches) {
  auto h = MakeHaswell();
  (void)h.Read(0, 0x10000);  // now in core 0's L1/L2 and LLC (inclusive)
  const auto r = h.Read(1, 0x10000);
  EXPECT_EQ(r.level, ServedBy::kLlc);
}

TEST(HierarchyTest, LlcHitLatencyDependsOnSlice) {
  auto h = MakeHaswell();
  // Find lines in the nearest and an odd (far) slice for core 0 and compare
  // LLC hit latency after evicting them from L1/L2 by flushing private
  // caches only — approximate by reading from another core first.
  const auto hash = HaswellSliceHash();
  PhysAddr near_line = 0;
  PhysAddr far_line = 0;
  for (PhysAddr line = 0; (near_line == 0 || far_line == 0); line += 64) {
    if (near_line == 0 && hash->SliceFor(line) == 0 && line != 0) {
      near_line = line;
    }
    if (far_line == 0 && hash->SliceFor(line) == 3) {
      far_line = line;
    }
  }
  // Load both into LLC via core 7 (fills its private caches, not core 0's).
  (void)h.Read(7, near_line);
  (void)h.Read(7, far_line);
  const auto near_r = h.Read(0, near_line);
  const auto far_r = h.Read(0, far_line);
  ASSERT_EQ(near_r.level, ServedBy::kLlc);
  ASSERT_EQ(far_r.level, ServedBy::kLlc);
  EXPECT_LT(near_r.cycles, far_r.cycles);
  EXPECT_EQ(near_r.cycles, h.LlcHitLatency(0, 0));
  EXPECT_EQ(far_r.cycles, h.LlcHitLatency(0, 3));
}

TEST(HierarchyTest, StoreHitInL1IsCheapRegardlessOfSlice) {
  // Fig. 5b: writes complete at L1; slice distance is invisible.
  auto h = MakeHaswell();
  const auto hash = HaswellSliceHash();
  PhysAddr lines[2] = {0, 0};
  for (PhysAddr line = 64; (lines[0] == 0 || lines[1] == 0); line += 64) {
    const SliceId s = hash->SliceFor(line);
    if (s == 0 && lines[0] == 0) {
      lines[0] = line;
    } else if (s == 3 && lines[1] == 0) {
      lines[1] = line;
    }
  }
  for (const PhysAddr line : lines) {
    (void)h.Read(0, line);  // bring to L1
    const auto w = h.Write(0, line);
    EXPECT_EQ(w.level, ServedBy::kL1);
    EXPECT_EQ(w.cycles, h.spec().latency.store_commit);
  }
}

TEST(HierarchyTest, WriteMissPaysRfoLatency) {
  auto h = MakeHaswell();
  const auto w = h.Write(0, 0x40000);
  EXPECT_EQ(w.level, ServedBy::kDram);
  EXPECT_GE(w.cycles, h.spec().latency.dram);
  // Line is now dirty in L1; an eviction chain must eventually write back.
  EXPECT_TRUE(h.Read(0, 0x40000).level == ServedBy::kL1);
}

TEST(HierarchyTest, FlushLineRemovesFromAllLevels) {
  auto h = MakeHaswell();
  (void)h.Read(0, 0x10000);
  h.FlushLine(0x10000);
  const auto r = h.Read(0, 0x10000);
  EXPECT_EQ(r.level, ServedBy::kDram);
}

TEST(HierarchyTest, FlushAllEmptiesEverything) {
  auto h = MakeHaswell();
  for (PhysAddr a = 0; a < 64 * 100; a += 64) {
    (void)h.Read(0, a);
  }
  h.FlushAll();
  EXPECT_EQ(h.Read(0, 0).level, ServedBy::kDram);
}

TEST(HierarchyTest, InclusiveLlcEvictionBackInvalidatesL1) {
  // Fill one LLC set of one slice beyond capacity; the victim line must
  // leave core private caches too.
  auto h = MakeHaswell();
  const auto hash = HaswellSliceHash();
  const std::size_t llc_sets = h.spec().llc_slice.num_sets();
  // Gather 21 lines in slice 0, LLC set 17 (20 ways per slice set).
  std::vector<PhysAddr> lines;
  for (PhysAddr line = 0; lines.size() < 21; line += 64) {
    if (hash->SliceFor(line) == 0 && ((line >> 6) % llc_sets) == 17) {
      lines.push_back(line);
    }
  }
  const PhysAddr first = lines[0];
  (void)h.Read(0, first);
  EXPECT_EQ(h.Read(0, first).level, ServedBy::kL1);
  // Fill the set from another core so core 0's private copy isn't refreshed.
  for (std::size_t i = 1; i < lines.size(); ++i) {
    (void)h.Read(1, lines[i]);
  }
  // `first` was the LRU line of that LLC set -> evicted -> back-invalidated.
  const auto r = h.Read(0, first);
  EXPECT_EQ(r.level, ServedBy::kDram);
}

TEST(HierarchyTest, VictimModeDemandFillBypassesLlc) {
  auto h = MakeSkylake();
  const PhysAddr a = 0x20000;
  (void)h.Read(0, a);
  // The line is in core 0's L1/L2 but NOT in the LLC (non-inclusive fill).
  EXPECT_FALSE(h.llc().Contains(a));
}

TEST(HierarchyTest, VictimModeL2EvictionFillsLlc) {
  auto h = MakeSkylake();
  const std::size_t l2_sets = h.spec().l2.num_sets();
  const std::size_t l2_ways = h.spec().l2.ways;
  const PhysAddr probe = 0x100000;
  (void)h.Read(0, probe);
  EXPECT_FALSE(h.llc().Contains(probe));
  // Evict `probe` from L2 by filling its L2 set with (ways + L1 slack) more
  // conflicting lines.
  const std::size_t probe_set = (probe >> kCacheLineBits) % l2_sets;
  for (std::size_t i = 1; i <= l2_ways + 1; ++i) {
    const PhysAddr conflict = probe + i * l2_sets * kCacheLineSize;
    ASSERT_EQ((conflict >> kCacheLineBits) % l2_sets, probe_set);
    (void)h.Read(0, conflict);
  }
  // The victim should now be resident in the LLC.
  EXPECT_TRUE(h.llc().Contains(probe));
  EXPECT_EQ(h.Read(0, probe).level, ServedBy::kLlc);
}

TEST(HierarchyTest, VictimModeLlcHitMovesLineBackToL2) {
  auto h = MakeSkylake();
  const std::size_t l2_sets = h.spec().l2.num_sets();
  const std::size_t l2_ways = h.spec().l2.ways;
  const PhysAddr probe = 0x200000;
  (void)h.Read(0, probe);
  for (std::size_t i = 1; i <= l2_ways + 1; ++i) {
    (void)h.Read(0, probe + i * l2_sets * kCacheLineSize);
  }
  ASSERT_TRUE(h.llc().Contains(probe));
  const auto hit = h.Read(0, probe);  // LLC hit refills L2...
  EXPECT_EQ(hit.level, ServedBy::kLlc);
  // ...exclusively: the LLC copy is gone, the next read is an L1/L2 hit.
  EXPECT_FALSE(h.llc().Contains(probe));
  EXPECT_EQ(h.Read(0, probe).level, ServedBy::kL1);
}

TEST(HierarchyTest, VictimModeExclusiveRoundTripPreservesDirt) {
  auto h = MakeSkylake();
  const std::size_t l2_sets = h.spec().l2.num_sets();
  const std::size_t l2_ways = h.spec().l2.ways;
  const PhysAddr probe = 0x300000;
  (void)h.Write(0, probe);  // dirty in L1
  // Push it out of L1 and L2: the dirt must travel into the LLC.
  for (std::size_t i = 1; i <= l2_ways + 1; ++i) {
    (void)h.Read(0, probe + i * l2_sets * kCacheLineSize);
  }
  ASSERT_TRUE(h.llc().Contains(probe));
  EXPECT_TRUE(h.llc().IsDirty(probe));
  // Hit moves it back to L2 carrying the dirt; evicting it again must
  // re-insert it dirty (nothing was written back to memory in between).
  (void)h.Read(0, probe);
  EXPECT_FALSE(h.llc().Contains(probe));
  for (std::size_t i = 1; i <= l2_ways + 1; ++i) {
    (void)h.Read(0, probe + i * l2_sets * kCacheLineSize);
  }
  ASSERT_TRUE(h.llc().Contains(probe));
  EXPECT_TRUE(h.llc().IsDirty(probe));
}

TEST(HierarchyTest, DmaWriteAllocatesInLlcAndInvalidatesCores) {
  auto h = MakeHaswell();
  const PhysAddr a = 0x30000;
  (void)h.Read(0, a);
  EXPECT_EQ(h.Read(0, a).level, ServedBy::kL1);
  (void)h.DmaWriteLine(a);
  // DDIO owns the line now: core read must go to LLC, not stale L1.
  const auto r = h.Read(0, a);
  EXPECT_EQ(r.level, ServedBy::kLlc);
}

TEST(HierarchyTest, DmaWriteWorksOnSkylakeToo) {
  auto h = MakeSkylake();
  const PhysAddr a = 0x30000;
  (void)h.DmaWriteLine(a);
  EXPECT_TRUE(h.llc().Contains(a));  // DDIO targets LLC even in victim mode
  EXPECT_EQ(h.Read(0, a).level, ServedBy::kLlc);
}

TEST(HierarchyTest, DmaWriteSpansAllTouchedLines) {
  auto h = MakeHaswell();
  h.ResetStats();
  (void)h.DmaWrite(0x1000 + 10, 128);  // touches lines 0x1000, 0x1040, 0x1080
  EXPECT_EQ(h.stats().dma_line_writes, 3u);
}

TEST(HierarchyTest, DmaReadDoesNotAllocate) {
  auto h = MakeHaswell();
  const PhysAddr a = 0x50000;
  (void)h.DmaReadLine(a);
  EXPECT_FALSE(h.llc().Contains(a));
  EXPECT_EQ(h.Read(0, a).level, ServedBy::kDram);
}

TEST(HierarchyTest, StatsCountHitsAndMisses) {
  auto h = MakeHaswell();
  h.ResetStats();
  (void)h.Read(0, 0x1000);
  (void)h.Read(0, 0x1000);
  EXPECT_EQ(h.stats().l1_misses, 1u);
  EXPECT_EQ(h.stats().l1_hits, 1u);
  EXPECT_EQ(h.stats().llc_misses, 1u);
}

TEST(HierarchyTest, RejectsMismatchedHash) {
  EXPECT_THROW(MemoryHierarchy(HaswellXeonE52667V3(), SkylakeSliceHash()),
               std::invalid_argument);
  EXPECT_THROW(MemoryHierarchy(HaswellXeonE52667V3(), nullptr), std::invalid_argument);
}

TEST(HierarchyTest, WorkingSetLargerThanLlcSpillsToDram) {
  auto h = MakeHaswell();
  // Touch 64 MB (LLC is 20 MB): re-reading the oldest lines must miss.
  const std::size_t lines = (64u << 20) / kCacheLineSize;
  for (std::size_t i = 0; i < lines; ++i) {
    (void)h.Read(0, i * kCacheLineSize);
  }
  h.ResetStats();
  std::uint64_t dram_served = 0;
  for (std::size_t i = 0; i < 1000; ++i) {
    if (h.Read(0, i * kCacheLineSize).level == ServedBy::kDram) {
      ++dram_served;
    }
  }
  EXPECT_GT(dram_served, 900u);
}

}  // namespace
}  // namespace cachedir
