// Tests of the trace serialisation format: round trips, edge cases, and
// rejection of malformed files.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "src/trace/trace_file.h"
#include "src/trace/traffic_gen.h"

namespace cachedir {
namespace {

class TraceFileTest : public ::testing::Test {
 protected:
  std::string Path(const char* name) {
    return testing::TempDir() + "/cachedir_trace_" + name + ".bin";
  }

  void TearDown() override {
    for (const auto& p : created_) {
      std::remove(p.c_str());
    }
  }

  std::string Create(const char* name) {
    std::string p = Path(name);
    created_.push_back(p);
    return p;
  }

  std::vector<std::string> created_;
};

TEST_F(TraceFileTest, RoundTripsGeneratedTraffic) {
  TrafficConfig config;
  config.size_mode = TrafficConfig::SizeMode::kCampusMix;
  config.seed = 99;
  TrafficGenerator gen(config);
  const auto original = gen.Generate(5000);

  const std::string path = Create("roundtrip");
  SaveTrace(path, original);
  const auto loaded = LoadTrace(path);

  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    ASSERT_EQ(loaded[i].id, original[i].id);
    ASSERT_EQ(loaded[i].flow, original[i].flow);
    ASSERT_EQ(loaded[i].size_bytes, original[i].size_bytes);
    ASSERT_DOUBLE_EQ(loaded[i].tx_time_ns, original[i].tx_time_ns);
  }
}

TEST_F(TraceFileTest, RoundTripsEmptyTrace) {
  const std::string path = Create("empty");
  SaveTrace(path, {});
  EXPECT_TRUE(LoadTrace(path).empty());
}

TEST_F(TraceFileTest, RejectsMissingFile) {
  EXPECT_THROW((void)LoadTrace(Path("does_not_exist")), std::runtime_error);
}

TEST_F(TraceFileTest, RejectsBadMagic) {
  const std::string path = Create("badmagic");
  std::ofstream out(path, std::ios::binary);
  out << "this is not a trace file, not even close......";
  out.close();
  EXPECT_THROW((void)LoadTrace(path), std::runtime_error);
}

TEST_F(TraceFileTest, RejectsTruncatedRecords) {
  TrafficConfig config;
  TrafficGenerator gen(config);
  const std::string path = Create("trunc");
  SaveTrace(path, gen.Generate(100));
  // Chop the file mid-record.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 17));
  out.close();
  EXPECT_THROW((void)LoadTrace(path), std::runtime_error);
}

TEST_F(TraceFileTest, RejectsTruncatedHeader) {
  const std::string path = Create("shorthdr");
  std::ofstream out(path, std::ios::binary);
  out << "CD";
  out.close();
  EXPECT_THROW((void)LoadTrace(path), std::runtime_error);
}

}  // namespace
}  // namespace cachedir
