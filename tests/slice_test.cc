// Tests for the slice-aware memory-management library: placement ranking,
// line mapping, the pool allocator, and buffer abstractions.
#include <gtest/gtest.h>

#include <new>
#include <set>

#include "src/cache/hierarchy.h"
#include "src/hash/presets.h"
#include "src/mem/hugepage.h"
#include "src/sim/machine.h"
#include "src/slice/buffers.h"
#include "src/slice/placement.h"
#include "src/slice/slice_allocator.h"
#include "src/slice/slice_mapper.h"

namespace cachedir {
namespace {

TEST(SlicePlacementTest, HaswellClosestSliceIsOwnStop) {
  MemoryHierarchy h(HaswellXeonE52667V3(), HaswellSliceHash());
  SlicePlacement placement(h);
  for (CoreId c = 0; c < 8; ++c) {
    EXPECT_EQ(placement.ClosestSlice(c), c);
  }
}

TEST(SlicePlacementTest, RankedSlicesAreSortedByLatency) {
  MemoryHierarchy h(HaswellXeonE52667V3(), HaswellSliceHash());
  SlicePlacement placement(h);
  for (CoreId c = 0; c < 8; ++c) {
    const auto ranked = placement.RankedSlices(c);
    ASSERT_EQ(ranked.size(), 8u);
    for (std::size_t i = 1; i < ranked.size(); ++i) {
      EXPECT_LE(placement.Latency(c, ranked[i - 1]), placement.Latency(c, ranked[i]));
    }
    EXPECT_EQ(ranked.front(), c);
  }
}

TEST(SlicePlacementTest, SkylakeTable4PrimariesAndSecondaries) {
  MemoryHierarchy h(SkylakeXeonGold6134(), SkylakeSliceHash());
  SlicePlacement placement(h);
  const SliceId primary[8] = {0, 4, 8, 12, 10, 14, 3, 15};
  const std::set<SliceId> secondary[8] = {{2, 6}, {1}, {11}, {13}, {7, 9}, {16}, {5}, {17}};
  for (CoreId c = 0; c < 8; ++c) {
    const auto prim = placement.PrimarySlices(c);
    ASSERT_EQ(prim.size(), 1u) << "core " << c;
    EXPECT_EQ(prim[0], primary[c]);
    const auto sec = placement.SecondarySlices(c);
    EXPECT_EQ(std::set<SliceId>(sec.begin(), sec.end()), secondary[c]) << "core " << c;
  }
}

TEST(SlicePlacementTest, CompromiseSliceMinimisesWorstCase) {
  MemoryHierarchy h(HaswellXeonE52667V3(), HaswellSliceHash());
  SlicePlacement placement(h);
  // Single core: compromise == closest.
  EXPECT_EQ(placement.CompromiseSlice({3}), 3u);
  // A group: the winner must not be dominated by any other slice.
  const std::vector<CoreId> group = {0, 2, 4};
  const SliceId winner = placement.CompromiseSlice(group);
  Cycles winner_max = 0;
  for (const CoreId c : group) {
    winner_max = std::max(winner_max, placement.Latency(c, winner));
  }
  for (SliceId s = 0; s < 8; ++s) {
    Cycles s_max = 0;
    for (const CoreId c : group) {
      s_max = std::max(s_max, placement.Latency(c, s));
    }
    EXPECT_GE(s_max, winner_max) << "slice " << s;
  }
}

TEST(SlicePlacementTest, EmptyGroupThrows) {
  MemoryHierarchy h(HaswellXeonE52667V3(), HaswellSliceHash());
  SlicePlacement placement(h);
  EXPECT_THROW((void)placement.CompromiseSlice({}), std::invalid_argument);
}

TEST(SliceMapperTest, LinesForSliceAllHashToSlice) {
  const auto hash = HaswellSliceHash();
  HugepageAllocator alloc;
  const Mapping m = alloc.Allocate(1 << 22, PageSize::k2M);
  for (SliceId s = 0; s < 8; ++s) {
    const auto lines = LinesForSlice(*hash, m, s, 100);
    EXPECT_EQ(lines.size(), 100u);
    for (const SliceLine& line : lines) {
      EXPECT_EQ(hash->SliceFor(line.pa), s);
      EXPECT_EQ(line.pa - m.pa, line.va - m.va);  // VA/PA offsets correspond
    }
  }
}

TEST(SliceMapperTest, LinesForSliceAndSetFilterBoth) {
  const auto hash = HaswellSliceHash();
  HugepageAllocator alloc;
  const Mapping m = alloc.Allocate(1 << 28, PageSize::k1G);
  const std::size_t num_sets = 2048;
  const auto lines = LinesForSliceAndSet(*hash, m, 5, 100, num_sets, 20);
  EXPECT_EQ(lines.size(), 20u);
  for (const SliceLine& line : lines) {
    EXPECT_EQ(hash->SliceFor(line.pa), 5u);
    EXPECT_EQ((line.pa >> kCacheLineBits) % num_sets, 100u);
  }
}

TEST(SliceAllocatorTest, AllocatedLinesBelongToRequestedSlice) {
  HugepageAllocator backing;
  SliceAwareAllocator alloc(backing, HaswellSliceHash());
  for (SliceId s = 0; s < 8; ++s) {
    const SliceBuffer buf = alloc.AllocateLines(s, 500);
    EXPECT_EQ(buf.num_lines(), 500u);
    for (std::size_t i = 0; i < buf.num_lines(); ++i) {
      EXPECT_EQ(alloc.hash().SliceFor(buf.line(i).pa), s);
    }
  }
}

TEST(SliceAllocatorTest, LinesAreNeverHandedOutTwice) {
  HugepageAllocator backing;
  SliceAwareAllocator alloc(backing, HaswellSliceHash());
  std::set<PhysAddr> seen;
  for (int round = 0; round < 4; ++round) {
    for (SliceId s = 0; s < 8; ++s) {
      const SliceBuffer buf = alloc.AllocateLines(s, 1000);
      for (std::size_t i = 0; i < buf.num_lines(); ++i) {
        EXPECT_TRUE(seen.insert(buf.line(i).pa).second) << "duplicate line";
      }
    }
  }
}

TEST(SliceAllocatorTest, AllocateBytesRoundsUpToLines) {
  HugepageAllocator backing;
  SliceAwareAllocator alloc(backing, HaswellSliceHash());
  const SliceBuffer buf = alloc.AllocateBytes(0, 100);
  EXPECT_EQ(buf.num_lines(), 2u);
  EXPECT_EQ(buf.size_bytes(), 128u);
}

TEST(SliceAllocatorTest, FragmentationAccountingAddsUp) {
  HugepageAllocator backing;
  SliceAwareAllocator::Params params;
  params.page_size = PageSize::k2M;
  params.scan_chunk_lines = 1 << 15;  // one full 2 MB page per refill
  SliceAwareAllocator alloc(backing, HaswellSliceHash(), params);
  const SliceBuffer buf = alloc.AllocateLines(0, 100);
  // Scanned lines either went to the buffer or sit in pools.
  const std::size_t scanned = alloc.TotalFreeLines() + buf.num_lines();
  EXPECT_EQ(scanned % (1 << 15), 0u);
  EXPECT_EQ(alloc.bytes_reserved(), 2u << 20);
}

TEST(SliceAllocatorTest, ExhaustionThrowsBadAlloc) {
  HugepageAllocator::Params zone;
  zone.phys_base = 0x1'0000'0000;
  zone.phys_limit = 0x1'0000'0000 + (4u << 20);  // two 2 MB pages only
  HugepageAllocator backing(zone);
  SliceAwareAllocator::Params params;
  params.page_size = PageSize::k2M;
  SliceAwareAllocator alloc(backing, HaswellSliceHash(), params);
  // A 2 MB page holds 32768 lines, ~4096 per slice; asking for far more
  // than two pages can supply must throw.
  EXPECT_THROW((void)alloc.AllocateLines(0, 20000), std::bad_alloc);
}

TEST(BuffersTest, ContiguousBufferOffsets) {
  ContiguousBuffer buf(0x1000, 4096);
  EXPECT_EQ(buf.size_bytes(), 4096u);
  EXPECT_EQ(buf.PaForOffset(0), 0x1000u);
  EXPECT_EQ(buf.PaForOffset(100), 0x1064u);
}

TEST(BuffersTest, SliceBufferStridesAcrossLines) {
  std::vector<SliceLine> lines = {{0, 0x1000}, {0, 0x8040}, {0, 0x20080}};
  SliceBuffer buf(std::move(lines));
  EXPECT_EQ(buf.size_bytes(), 192u);
  EXPECT_EQ(buf.PaForOffset(0), 0x1000u);
  EXPECT_EQ(buf.PaForOffset(63), 0x103Fu);
  EXPECT_EQ(buf.PaForOffset(64), 0x8040u);
  EXPECT_EQ(buf.PaForOffset(130), 0x20082u);
}

}  // namespace
}  // namespace cachedir
