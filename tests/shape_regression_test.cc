// Shape-regression suite: compact versions of the paper's key experiments,
// asserting the QUALITATIVE claims EXPERIMENTS.md makes. If a substrate
// change breaks a reproduced shape (bimodality, sign pattern, crossover,
// ordering), it fails here rather than silently shipping wrong claims.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "src/cache/hierarchy.h"
#include "src/hash/presets.h"
#include "src/mem/hugepage.h"
#include "src/netio/mempool.h"
#include "src/sim/machine.h"
#include "src/sim/rng.h"
#include "src/slice/placement.h"
#include "src/slice/slice_allocator.h"
#include "src/slice/slice_mapper.h"
#include "src/stats/summary.h"

namespace cachedir {
namespace {

// ---- Fig. 5a: bimodal read latencies, flat writes ----

TEST(ShapeRegression, Fig5SliceReadLatencyIsBimodalAndWritesFlat) {
  MemoryHierarchy h(HaswellXeonE52667V3(), HaswellSliceHash(), 1);
  HugepageAllocator backing;
  const Mapping page = backing.Allocate(std::size_t{1} << 30, PageSize::k1G);
  std::vector<double> read_cycles(8, 0);
  std::vector<double> write_cycles(8, 0);
  for (SliceId s = 0; s < 8; ++s) {
    const auto lines = LinesForSliceAndSet(*HaswellSliceHash(), page, s, 7, 2048, 20);
    ASSERT_EQ(lines.size(), 20u);
    for (const auto& l : lines) {
      (void)h.Write(0, l.pa);
    }
    for (const auto& l : lines) {
      h.FlushLine(l.pa);
    }
    for (const auto& l : lines) {
      (void)h.Read(0, l.pa);
    }
    for (int i = 0; i < 8; ++i) {
      read_cycles[s] += static_cast<double>(h.Read(0, lines[i].pa).cycles) / 8;
    }
    for (int i = 0; i < 8; ++i) {
      write_cycles[s] += static_cast<double>(h.Write(0, lines[i].pa).cycles) / 8;
    }
  }
  // Bimodal: every even slice cheaper than every odd slice from core 0.
  for (SliceId even = 0; even < 8; even += 2) {
    for (SliceId odd = 1; odd < 8; odd += 2) {
      EXPECT_LT(read_cycles[even], read_cycles[odd]);
    }
  }
  // Own slice cheapest; spread in the paper's ballpark (>= 10 cycles).
  EXPECT_EQ(std::min_element(read_cycles.begin(), read_cycles.end()) - read_cycles.begin(),
            0);
  EXPECT_GE(*std::max_element(read_cycles.begin(), read_cycles.end()) - read_cycles[0], 10);
  // Writes flat.
  EXPECT_DOUBLE_EQ(*std::min_element(write_cycles.begin(), write_cycles.end()),
                   *std::max_element(write_cycles.begin(), write_cycles.end()));
}

// ---- Fig. 6: slice-aware speedup sign pattern ----

double MeasureFig6Cycles(bool slice_aware, SliceId slice, std::uint64_t seed) {
  MemoryHierarchy h(HaswellXeonE52667V3(), HaswellSliceHash(), seed);
  HugepageAllocator backing;
  constexpr std::size_t kBytes = 1408 * 1024;
  std::unique_ptr<MemoryBuffer> buf;
  if (slice_aware) {
    SliceAwareAllocator alloc(backing, HaswellSliceHash());
    buf = std::make_unique<SliceBuffer>(alloc.AllocateBytes(slice, kBytes));
  } else {
    buf = std::make_unique<ContiguousBuffer>(backing.Allocate(kBytes, PageSize::k1G).pa,
                                             kBytes);
  }
  const std::size_t lines = kBytes / kCacheLineSize;
  for (std::size_t i = 0; i < lines; ++i) {
    (void)h.Read(0, buf->PaForOffset(i * kCacheLineSize));
  }
  Rng rng(seed);
  Cycles total = 0;
  for (int i = 0; i < 6000; ++i) {
    total += h.Read(0, buf->PaForOffset(rng.UniformIndex(lines) * kCacheLineSize)).cycles;
  }
  return static_cast<double>(total);
}

TEST(ShapeRegression, Fig6NearSlicesWinFarSlicesLose) {
  const double normal = MeasureFig6Cycles(false, 0, 5);
  const double near = MeasureFig6Cycles(true, 0, 5);   // core 0's own slice
  const double far = MeasureFig6Cycles(true, 3, 5);    // cross-parity slice
  EXPECT_LT(near, normal * 0.92);  // clear win
  EXPECT_GT(far, normal * 1.05);   // clear loss
}

// ---- Fig. 7 crossovers: identical in L2, wins in slice region ----

TEST(ShapeRegression, Fig7SliceAwareWinsOnlyBeyondL2) {
  const auto measure = [](std::size_t bytes, bool aware) {
    MemoryHierarchy h(HaswellXeonE52667V3(), HaswellSliceHash(), 9);
    HugepageAllocator backing;
    std::unique_ptr<MemoryBuffer> buf;
    if (aware) {
      SliceAwareAllocator alloc(backing, HaswellSliceHash());
      buf = std::make_unique<SliceBuffer>(alloc.AllocateBytes(0, bytes));
    } else {
      buf = std::make_unique<ContiguousBuffer>(backing.Allocate(bytes, PageSize::k2M).pa,
                                               bytes);
    }
    const std::size_t lines = bytes / kCacheLineSize;
    for (std::size_t i = 0; i < lines; ++i) {
      (void)h.Read(0, buf->PaForOffset(i * kCacheLineSize));
    }
    Rng rng(2);
    Cycles total = 0;
    for (int i = 0; i < 8000; ++i) {
      total += h.Read(0, buf->PaForOffset(rng.UniformIndex(lines) * kCacheLineSize)).cycles;
    }
    return static_cast<double>(total);
  };
  // 128 kB fits L2: no difference.
  EXPECT_NEAR(measure(128u << 10, true), measure(128u << 10, false),
              measure(128u << 10, false) * 0.02);
  // 1 MB exceeds L2, fits a slice: clear slice-aware win.
  EXPECT_LT(measure(1u << 20, true), measure(1u << 20, false) * 0.9);
}

// ---- Table 4 / Fig. 16: Skylake preference structure ----

TEST(ShapeRegression, Table4SkylakePreferences) {
  MemoryHierarchy h(SkylakeXeonGold6134(), SkylakeSliceHash(), 1);
  SlicePlacement placement(h);
  const SliceId primary[8] = {0, 4, 8, 12, 10, 14, 3, 15};
  for (CoreId c = 0; c < 8; ++c) {
    ASSERT_EQ(placement.PrimarySlices(c).size(), 1u);
    EXPECT_EQ(placement.PrimarySlices(c)[0], primary[c]);
  }
}

// ---- §4.2 headroom statistics ----

TEST(ShapeRegression, HeadroomDistributionMatchesPaperStatistics) {
  MemoryHierarchy h(HaswellXeonE52667V3(), HaswellSliceHash(), 1);
  SlicePlacement placement(h);
  HugepageAllocator backing;
  CacheDirector director(HaswellSliceHash(), placement, true);
  Mempool pool(backing, 4096, director);
  Samples headrooms;
  for (std::size_t i = 0; i < pool.capacity(); ++i) {
    Mbuf m = pool.element(i);
    for (CoreId core = 0; core < 8; ++core) {
      director.ApplyHeadroom(m, core);
      headrooms.Add(m.headroom);
    }
  }
  EXPECT_EQ(headrooms.Median(), 256);        // paper: 256 B
  EXPECT_EQ(headrooms.Percentile(95), 512);  // paper: 512 B
  EXPECT_EQ(headrooms.Max(), 832);           // paper: 832 B
}

// ---- Fig. 17 ordering is covered by fig17 bench; assert the primitive:
// CAT confines the neighbor, slice-0 confinement yields local latency ----

TEST(ShapeRegression, IsolatedSliceServesAtLocalLatency) {
  MemoryHierarchy h(SkylakeXeonGold6134(), SkylakeSliceHash(), 3);
  HugepageAllocator backing;
  // Working set in slice 0, small enough to stay LLC/L2-resident.
  const auto lines = GatherSliceLines(backing, *SkylakeSliceHash(), 0, 16384);
  SliceBuffer buf{std::vector<SliceLine>(lines.begin(), lines.end())};
  for (std::size_t i = 0; i < buf.num_lines(); ++i) {
    (void)h.Read(0, buf.line(i).pa);
  }
  // Pollute every slice EXCEPT slice 0 from another core.
  Rng rng(4);
  for (int i = 0; i < 200000; ++i) {
    const PhysAddr a = (std::uint64_t{2} << 30) + rng.UniformU64(0, 63u << 20);
    if (SkylakeSliceHash()->SliceFor(a) != 0) {
      (void)h.Read(5, a);
    }
  }
  // Re-reads beyond L1/L2 come from slice 0 at local latency, never DRAM.
  std::uint64_t dram = 0;
  for (std::size_t i = 0; i < buf.num_lines(); i += 7) {
    const auto r = h.Read(0, buf.line(i).pa);
    dram += r.level == ServedBy::kDram ? 1 : 0;
    if (r.level == ServedBy::kLlc) {
      EXPECT_EQ(r.cycles, h.LlcHitLatency(0, 0));
    }
  }
  EXPECT_LT(dram, buf.num_lines() / 7 / 10);  // <10% residual misses
}

}  // namespace
}  // namespace cachedir
